//! Offline drop-in subset of the `criterion` benchmark harness.
//!
//! The build environment has no network access to crates.io, so the
//! workspace vendors the slice of the `criterion 0.5` API its benches
//! use: [`Criterion::bench_function`], [`Criterion::benchmark_group`]
//! (with `sample_size`, `bench_function`, `bench_with_input` and
//! `finish`), [`BenchmarkId`], and the [`criterion_group!`] /
//! [`criterion_main!`] macros.
//!
//! Measurement is deliberately simple — per-sample wall-clock medians
//! over a fixed iteration budget, printed as a table — but the bench
//! targets compile and run with `cargo bench` exactly as upstream.

#![warn(missing_docs)]

use std::fmt;
use std::time::{Duration, Instant};

/// Prevent the optimizer from discarding a value.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// An identifier for one parameterized benchmark instance.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// An id made of a function name and a parameter.
    pub fn new(name: impl fmt::Display, parameter: impl fmt::Display) -> Self {
        BenchmarkId(format!("{name}/{parameter}"))
    }

    /// An id carrying only a parameter value.
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId(parameter.to_string())
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

/// The timing loop handed to benchmark closures.
pub struct Bencher {
    samples: usize,
    /// Median per-iteration time of the last `iter` call.
    last: Option<Duration>,
}

impl Bencher {
    /// Time `routine`, recording a median over several samples.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // One warm-up call, then `samples` timed batches whose batch size
        // targets ~5 ms so fast routines still measure above timer noise.
        let start = Instant::now();
        black_box(routine());
        let once = start.elapsed().max(Duration::from_nanos(1));
        let per_batch = (5_000_000 / once.as_nanos().max(1)).clamp(1, 10_000) as u64;
        let mut times: Vec<Duration> = Vec::with_capacity(self.samples);
        for _ in 0..self.samples {
            let t0 = Instant::now();
            for _ in 0..per_batch {
                black_box(routine());
            }
            times.push(t0.elapsed() / per_batch as u32);
        }
        times.sort();
        self.last = Some(times[times.len() / 2]);
    }
}

fn run_one(name: &str, samples: usize, f: &mut dyn FnMut(&mut Bencher)) {
    let mut b = Bencher {
        samples,
        last: None,
    };
    f(&mut b);
    match b.last {
        Some(t) => println!("{name:<40} {t:>12.2?}/iter ({samples} samples)"),
        None => println!("{name:<40} (no measurement)"),
    }
}

/// The benchmark driver.
pub struct Criterion {
    samples: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { samples: 20 }
    }
}

impl Criterion {
    /// Run one benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        run_one(name, self.samples, &mut f);
        self
    }

    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let samples = self.samples;
        BenchmarkGroup {
            _parent: self,
            name: name.into(),
            samples,
        }
    }
}

/// A named group of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
    samples: usize,
}

impl BenchmarkGroup<'_> {
    /// Set the number of timing samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.samples = n.max(2);
        self
    }

    /// Run one benchmark in this group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl fmt::Display,
        mut f: F,
    ) -> &mut Self {
        run_one(&format!("{}/{}", self.name, id), self.samples, &mut f);
        self
    }

    /// Run one benchmark parameterized by `input`.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        run_one(&format!("{}/{}", self.name, id), self.samples, &mut |b| {
            f(b, input)
        });
        self
    }

    /// Close the group.
    pub fn finish(self) {}
}

/// Bundle benchmark functions into one runner, as upstream.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Generate `main` for a set of groups, as upstream.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_measures_something() {
        let mut c = Criterion::default();
        c.bench_function("noop", |b| b.iter(|| black_box(1 + 1)));
    }

    #[test]
    fn groups_run_and_finish() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("g");
        g.sample_size(3);
        g.bench_function("f", |b| b.iter(|| black_box(2 * 2)));
        g.bench_with_input(BenchmarkId::from_parameter(7), &7, |b, &n| {
            b.iter(|| black_box(n * n))
        });
        g.finish();
    }
}
