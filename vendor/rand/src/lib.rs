//! Offline drop-in subset of the `rand` crate.
//!
//! The build environment has no network access to crates.io, so the
//! workspace vendors the small slice of the `rand 0.8` API it actually
//! uses: [`rngs::StdRng`], [`SeedableRng::seed_from_u64`], and the
//! [`Rng`] methods `gen_range` (over half-open and inclusive integer and
//! float ranges) and `gen_bool`. The generator is deterministic per seed
//! (xoshiro256**, seeded via SplitMix64), which is all the workspace
//! relies on; streams differ from upstream `rand`, so artifacts derived
//! from a fixed seed (e.g. cached calibration models) are tied to this
//! implementation.

#![warn(missing_docs)]

use std::ops::{Range, RangeInclusive};

/// A random number generator seedable from a `u64`.
pub trait SeedableRng: Sized {
    /// Create a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// User-facing random value generation, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// A uniform random value in `range` (half-open or inclusive).
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        T: SampleUniform,
        R: SampleRange<T>,
    {
        range.sample_single(self)
    }

    /// `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "p={p} outside [0,1]");
        unit_f64(self.next_u64()) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// The raw 64-bit output interface every generator implements.
pub trait RngCore {
    /// The next raw 64 bits from the generator.
    fn next_u64(&mut self) -> u64;
}

/// A `u64` mapped uniformly to `[0, 1)`.
fn unit_f64(bits: u64) -> f64 {
    // 53 high bits give a uniform dyadic rational in [0, 1).
    (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Types that `gen_range` can sample uniformly.
pub trait SampleUniform: Copy + PartialOrd {
    /// A uniform sample from `[lo, hi)`; `inclusive` widens to `[lo, hi]`.
    fn sample_between<R: RngCore + ?Sized>(
        rng: &mut R,
        lo: Self,
        hi: Self,
        inclusive: bool,
    ) -> Self;
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_between<R: RngCore + ?Sized>(
                rng: &mut R,
                lo: Self,
                hi: Self,
                inclusive: bool,
            ) -> Self {
                let (lo_w, hi_w) = (lo as i128, hi as i128);
                let span = (hi_w - lo_w) + if inclusive { 1 } else { 0 };
                assert!(span > 0, "empty range in gen_range");
                // Multiply-shift bounded sampling; the tiny modulo bias of
                // plain `% span` is irrelevant here, but this avoids it.
                let wide = (rng.next_u64() as u128).wrapping_mul(span as u128);
                (lo_w + (wide >> 64) as i128) as $t
            }
        }
    )*};
}

impl_sample_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_sample_uniform_float {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_between<R: RngCore + ?Sized>(
                rng: &mut R,
                lo: Self,
                hi: Self,
                _inclusive: bool,
            ) -> Self {
                assert!(lo < hi || (_inclusive && lo == hi), "empty range in gen_range");
                let u = unit_f64(rng.next_u64()) as $t;
                lo + (hi - lo) * u
            }
        }
    )*};
}

impl_sample_uniform_float!(f32, f64);

/// Range shapes accepted by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draw one uniform sample from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_between(rng, self.start, self.end, false)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_between(rng, *self.start(), *self.end(), true)
    }
}

/// Generator implementations.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The standard deterministic generator: xoshiro256** seeded through
    /// SplitMix64 (the xoshiro authors' recommended seeding procedure).
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let mut next = || {
                sm = sm.wrapping_add(0x9e37_79b9_7f4a_7c15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        let mut c = StdRng::seed_from_u64(8);
        let va: Vec<u64> = (0..8).map(|_| a.gen_range(0..u64::MAX)).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.gen_range(0..u64::MAX)).collect();
        let vc: Vec<u64> = (0..8).map(|_| c.gen_range(0..u64::MAX)).collect();
        assert_eq!(va, vb);
        assert_ne!(va, vc);
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(42);
        for _ in 0..2_000 {
            let v = rng.gen_range(3u32..17);
            assert!((3..17).contains(&v));
            let w = rng.gen_range(1usize..=4);
            assert!((1..=4).contains(&w));
            let x = rng.gen_range(-2.5f64..2.5);
            assert!((-2.5..2.5).contains(&x));
            let y = rng.gen_range(-8i64..-3);
            assert!((-8..-3).contains(&y));
        }
    }

    #[test]
    fn full_width_integer_ranges() {
        let mut rng = StdRng::seed_from_u64(1);
        // The widest range the workspace draws from.
        for _ in 0..100 {
            let _ = rng.gen_range(0..u64::MAX);
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(9);
        let n = 20_000;
        let hits = (0..n).filter(|_| rng.gen_bool(0.25)).count();
        let frac = hits as f64 / n as f64;
        assert!((frac - 0.25).abs() < 0.02, "p=0.25 measured {frac}");
        assert!((0..50).all(|_| !rng.gen_bool(0.0)));
        assert!((0..50).all(|_| rng.gen_bool(1.0)));
    }

    #[test]
    fn uniform_mean_is_centered() {
        let mut rng = StdRng::seed_from_u64(3);
        let n = 20_000;
        let sum: f64 = (0..n).map(|_| rng.gen_range(0.0f64..1.0)).sum();
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }
}
