//! Offline drop-in subset of the `proptest` crate.
//!
//! The build environment has no network access to crates.io, so the
//! workspace vendors the slice of the `proptest 1.x` API its tests use:
//! the [`proptest!`] macro (with `pat in strategy` and `name: Type`
//! parameters and an optional `#![proptest_config(..)]` header),
//! [`prop_assert!`] / [`prop_assert_eq!`], range and tuple strategies,
//! [`any`], `prop::collection::vec`, and [`Strategy::prop_map`].
//!
//! Semantics are simplified relative to upstream: cases are generated
//! from a fixed deterministic seed and failures are reported without
//! shrinking. For the regression-style property tests in this workspace
//! (deterministic code, no persistence files) that is sufficient.

#![warn(missing_docs)]

use std::fmt;
use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};

pub mod collection;

/// Items meant to be glob-imported by tests.
pub mod prelude {
    /// Alias so `prop::collection::vec(..)` resolves, as with upstream's
    /// prelude.
    pub use crate as prop;
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, proptest, Arbitrary, ProptestConfig,
        Strategy, TestCaseError,
    };
}

/// Runner configuration; only the case count is honoured.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProptestConfig {
    /// Number of generated cases per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // Upstream defaults to 256; 64 keeps the heavier workspace
        // properties (which train networks and run simulators) quick
        // while still exercising a spread of inputs.
        ProptestConfig { cases: 64 }
    }
}

/// A failed property-test assertion.
#[derive(Debug, Clone)]
pub struct TestCaseError(String);

impl TestCaseError {
    /// Build a failure carrying `msg`.
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError(msg.into())
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

/// The deterministic generator driving value strategies (SplitMix64).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// A generator for one test case.
    pub fn new(seed: u64) -> Self {
        TestRng {
            state: seed ^ 0x5dee_ce66_d1ce_4e5b,
        }
    }

    /// Next raw 64 bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// A uniform value in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// A uniform integer in `[0, bound)` (`bound > 0`).
    pub fn below(&mut self, bound: u64) -> u64 {
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }
}

/// A generator of test-case values.
pub trait Strategy {
    /// The generated value type.
    type Value;

    /// Produce one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// A strategy applying `f` to every generated value.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }
}

/// The strategy returned by [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, U, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> U,
{
    type Value = U;

    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// Types with a canonical whole-domain strategy, used by [`any`] and the
/// `name: Type` parameter form of [`proptest!`].
pub trait Arbitrary: Sized {
    /// Produce one arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            #[allow(clippy::cast_possible_truncation, clippy::cast_lossless)]
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_arbitrary_float {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                // Finite values across a broad but well-conditioned span.
                ((rng.unit_f64() * 2.0 - 1.0) * 1e9) as $t
            }
        }
    )*};
}

impl_arbitrary_float!(f32, f64);

/// The strategy returned by [`any`].
#[derive(Debug, Clone, Copy)]
pub struct Any<T>(PhantomData<T>);

/// The whole-domain strategy for `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// Numeric types whose ranges act as strategies.
pub trait RangeValue: Copy + PartialOrd {
    /// A uniform value from `[lo, hi)`, or `[lo, hi]` when `inclusive`.
    fn in_range(rng: &mut TestRng, lo: Self, hi: Self, inclusive: bool) -> Self;
}

macro_rules! impl_range_value_int {
    ($($t:ty),*) => {$(
        impl RangeValue for $t {
            fn in_range(rng: &mut TestRng, lo: Self, hi: Self, inclusive: bool) -> Self {
                let (lo_w, hi_w) = (lo as i128, hi as i128);
                let span = (hi_w - lo_w) + if inclusive { 1 } else { 0 };
                assert!(span > 0, "empty range strategy");
                let wide = (rng.next_u64() as u128).wrapping_mul(span as u128);
                (lo_w + (wide >> 64) as i128) as $t
            }
        }
    )*};
}

impl_range_value_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_range_value_float {
    ($($t:ty),*) => {$(
        impl RangeValue for $t {
            fn in_range(rng: &mut TestRng, lo: Self, hi: Self, inclusive: bool) -> Self {
                assert!(lo < hi || (inclusive && lo == hi), "empty range strategy");
                lo + (hi - lo) * (rng.unit_f64() as $t)
            }
        }
    )*};
}

impl_range_value_float!(f32, f64);

impl<T: RangeValue> Strategy for Range<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::in_range(rng, self.start, self.end, false)
    }
}

impl<T: RangeValue> Strategy for RangeInclusive<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::in_range(rng, *self.start(), *self.end(), true)
    }
}

macro_rules! impl_strategy_tuple {
    ($(($($s:ident . $idx:tt),+)),+ $(,)?) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )+};
}

impl_strategy_tuple!(
    (A.0),
    (A.0, B.1),
    (A.0, B.1, C.2),
    (A.0, B.1, C.2, D.3),
    (A.0, B.1, C.2, D.3, E.4),
    (A.0, B.1, C.2, D.3, E.4, F.5),
);

/// Declare property tests.
///
/// Supports the upstream surface used in this workspace: an optional
/// `#![proptest_config(expr)]` header, doc comments and attributes on
/// each test, and parameters written either as `pattern in strategy` or
/// as `name: Type` (shorthand for `name in any::<Type>()`).
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

/// Implementation detail of [`proptest!`]: one test item per recursion.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    ( ($cfg:expr) ) => {};
    ( ($cfg:expr)
      $(#[$meta:meta])*
      fn $name:ident ( $($params:tt)* ) $body:block
      $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __config: $crate::ProptestConfig = $cfg;
            // Per-test deterministic seed, varied per case.
            let __base = {
                let mut h: u64 = 0xcbf2_9ce4_8422_2325;
                for b in concat!(module_path!(), "::", stringify!($name)).bytes() {
                    h ^= u64::from(b);
                    h = h.wrapping_mul(0x1000_0000_01b3);
                }
                h
            };
            for __case in 0..u64::from(__config.cases) {
                let mut __rng = $crate::TestRng::new(__base ^ __case.wrapping_mul(0x9e37_79b9));
                let __outcome: ::std::result::Result<(), $crate::TestCaseError> = (|| {
                    $crate::__proptest_bind!(__rng $($params)*);
                    $body
                    ::std::result::Result::Ok(())
                })();
                if let ::std::result::Result::Err(e) = __outcome {
                    panic!(
                        "property {} failed on case {}/{}: {}",
                        stringify!($name),
                        __case + 1,
                        __config.cases,
                        e
                    );
                }
            }
        }
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
}

/// Implementation detail of [`proptest!`]: bind one parameter at a time.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_bind {
    ($rng:ident) => {};
    ($rng:ident,) => {};
    ($rng:ident $pat:pat in $strat:expr) => {
        let $pat = $crate::Strategy::generate(&($strat), &mut $rng);
    };
    ($rng:ident $pat:pat in $strat:expr, $($rest:tt)*) => {
        let $pat = $crate::Strategy::generate(&($strat), &mut $rng);
        $crate::__proptest_bind!($rng $($rest)*);
    };
    ($rng:ident $name:ident : $ty:ty) => {
        let $name = $crate::Strategy::generate(&$crate::any::<$ty>(), &mut $rng);
    };
    ($rng:ident $name:ident : $ty:ty, $($rest:tt)*) => {
        let $name = $crate::Strategy::generate(&$crate::any::<$ty>(), &mut $rng);
        $crate::__proptest_bind!($rng $($rest)*);
    };
}

/// Assert a condition inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// Assert equality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(
            *__l == *__r,
            "assertion failed: `{:?}` != `{:?}`",
            __l,
            __r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(*__l == *__r, $($fmt)+);
    }};
}

/// Assert inequality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(*__l != *__r, "assertion failed: `{:?}` == `{:?}`", __l, __r);
    }};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_and_tuples_generate_in_bounds() {
        let mut rng = crate::TestRng::new(1);
        for _ in 0..500 {
            let v = (3u32..7).generate(&mut rng);
            assert!((3..7).contains(&v));
            let (a, b) = ((0.0f64..1.0), (10i64..=12)).generate(&mut rng);
            assert!((0.0..1.0).contains(&a));
            assert!((10..=12).contains(&b));
        }
    }

    #[test]
    fn prop_map_applies() {
        let mut rng = crate::TestRng::new(2);
        let s = (1u32..5).prop_map(|v| v * 10);
        for _ in 0..100 {
            let v = s.generate(&mut rng);
            assert!(v % 10 == 0 && (10..50).contains(&v));
        }
    }

    #[test]
    fn vec_strategy_respects_len() {
        let mut rng = crate::TestRng::new(3);
        for _ in 0..100 {
            let v = prop::collection::vec(0.0f64..1.0, 2..6).generate(&mut rng);
            assert!((2..6).contains(&v.len()));
            let w = prop::collection::vec(0u8..10, 3).generate(&mut rng);
            assert_eq!(w.len(), 3);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// The macro itself: mixed parameter forms and assertions.
        #[test]
        fn macro_binds_all_parameter_forms(
            x in 1u64..100,
            flag: bool,
            pair in (0.0f64..1.0, 0u32..4),
        ) {
            prop_assert!(x >= 1);
            prop_assert!(x < 100, "x was {}", x);
            prop_assert_eq!(flag, flag);
            prop_assert_ne!(pair.0, 2.0);
        }
    }
}
