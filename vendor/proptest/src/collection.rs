//! Collection strategies (`prop::collection::vec`).

use std::ops::Range;

use crate::{Strategy, TestRng};

/// Sizes accepted by [`vec()`]: an exact length or a half-open range.
pub trait SizeRange {
    /// Draw a length.
    fn pick(&self, rng: &mut TestRng) -> usize;
}

impl SizeRange for usize {
    fn pick(&self, _rng: &mut TestRng) -> usize {
        *self
    }
}

impl SizeRange for Range<usize> {
    fn pick(&self, rng: &mut TestRng) -> usize {
        assert!(self.start < self.end, "empty vec size range");
        self.start + rng.below((self.end - self.start) as u64) as usize
    }
}

/// The strategy returned by [`vec()`].
#[derive(Debug, Clone)]
pub struct VecStrategy<S, L> {
    element: S,
    len: L,
}

impl<S: Strategy, L: SizeRange> Strategy for VecStrategy<S, L> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let n = self.len.pick(rng);
        (0..n).map(|_| self.element.generate(rng)).collect()
    }
}

/// A strategy producing `Vec`s of values from `element`, with a length
/// drawn from `len` (an exact `usize` or a `Range<usize>`).
pub fn vec<S: Strategy, L: SizeRange>(element: S, len: L) -> VecStrategy<S, L> {
    VecStrategy { element, len }
}
