//! Off-chip memory channel model.
//!
//! The MAIA board exposes DRAM ("LMem") through a burst-oriented command
//! interface: the kernel issues commands, each covering one contiguous
//! run of bursts, and the memory controller streams the data back at the
//! channel's achievable bandwidth. Cycle estimation (§IV-B1) and the
//! timing simulator both price transfers through this model, so its
//! quantities are in *fabric* clock cycles.

/// DRAM channel timing and bandwidth parameters.
#[derive(Debug, Clone, PartialEq)]
pub struct DramModel {
    /// Theoretical peak bandwidth of the memory interface, bytes/second.
    pub peak_bytes_per_sec: f64,
    /// Sustained (achievable) bandwidth seen by the kernel, bytes/second.
    pub achievable_bytes_per_sec: f64,
    /// Bytes delivered to the fabric per fabric cycle at the achievable
    /// bandwidth (`achievable / fabric_clock`).
    pub bytes_per_cycle: f64,
    /// Memory burst size in bytes; transfers round up to whole bursts.
    pub burst_bytes: u64,
    /// Fabric cycles the controller needs to accept one command.
    pub command_issue_cycles: u64,
    /// Fabric cycles from issuing a command to its first data beat
    /// (controller queue + DRAM access + return path).
    pub command_latency_cycles: u64,
}

impl DramModel {
    /// The MAIA board's LMem: 76.8 GB/s peak across six DDR3 channels, of
    /// which a single-kernel streaming pattern sustains about 37.5 GB/s —
    /// 250 bytes per 150 MHz fabric cycle — with 384-byte bursts.
    pub fn maia() -> Self {
        DramModel {
            peak_bytes_per_sec: 76.8e9,
            achievable_bytes_per_sec: 37.5e9,
            bytes_per_cycle: 250.0,
            burst_bytes: 384,
            command_issue_cycles: 4,
            command_latency_cycles: 60,
        }
    }

    /// Number of whole bursts needed to move `bytes` (transfers round up
    /// to burst granularity).
    pub fn transfers(&self, bytes: u64) -> u64 {
        bytes.div_ceil(self.burst_bytes.max(1))
    }

    /// Channel-occupancy cycles for the data phase of one command moving
    /// `bytes`: whole bursts streamed at the achievable bandwidth.
    pub fn burst_cycles(&self, bytes: u64) -> f64 {
        (self.transfers(bytes) * self.burst_bytes) as f64 / self.bytes_per_cycle
    }

    /// Total cycles of one isolated command moving `bytes`: issue and
    /// access latency, then the data phase (which can only hide the issue
    /// slot, not the access latency).
    pub fn request(&self, bytes: u64) -> f64 {
        self.command_latency_cycles as f64
            + self
                .burst_cycles(bytes)
                .max(self.command_issue_cycles as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn maia_bandwidths() {
        let d = DramModel::maia();
        assert_eq!(d.peak_bytes_per_sec, 76.8e9);
        assert_eq!(d.achievable_bytes_per_sec, 37.5e9);
        // 37.5 GB/s at the 150 MHz fabric clock is 250 bytes per cycle.
        assert_eq!(d.achievable_bytes_per_sec / 150e6, d.bytes_per_cycle);
        assert!(d.achievable_bytes_per_sec < d.peak_bytes_per_sec);
    }

    #[test]
    fn burst_arithmetic() {
        let d = DramModel::maia();
        assert_eq!(d.transfers(0), 0);
        assert_eq!(d.transfers(1), 1);
        assert_eq!(d.transfers(384), 1);
        assert_eq!(d.transfers(385), 2);
        assert_eq!(d.transfers(4096), 11); // ceil(4096/384)
        assert_eq!(d.burst_cycles(0), 0.0);
        // One burst: 384 bytes at 250 B/cycle.
        assert!((d.burst_cycles(1) - 384.0 / 250.0).abs() < 1e-12);
        assert!((d.burst_cycles(384) - 384.0 / 250.0).abs() < 1e-12);
        // A 4 KiB tile rounds up to 11 bursts.
        assert!((d.burst_cycles(4096) - 11.0 * 384.0 / 250.0).abs() < 1e-12);
        // Rounding to bursts never undercuts the raw-bandwidth bound.
        assert!(d.burst_cycles(4096) >= 4096.0 / 250.0);
    }

    #[test]
    fn command_cycles() {
        let d = DramModel::maia();
        // A tiny request is latency-bound: issue slot dominates data.
        assert_eq!(
            d.request(1),
            (d.command_latency_cycles + d.command_issue_cycles) as f64
        );
        // A large request is bandwidth-bound past the fixed latency.
        let big = d.request(1 << 20);
        assert!((big - (d.command_latency_cycles as f64 + d.burst_cycles(1 << 20))).abs() < 1e-9);
        assert!(d.request(4096) > d.burst_cycles(4096));
    }
}
