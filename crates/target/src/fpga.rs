//! FPGA fabric model: device capacities, raw resource vectors and
//! post-place-and-route area reports.
//!
//! The paper's experiments target the Altera Stratix V GS D8 on a Maxeler
//! MAIA board (§V). The estimator, the synthesis model and the design
//! space pruner all reason about the same four capacity axes — ALMs, DSP
//! blocks, M20K block RAMs and registers — so they live here, in the one
//! crate every layer depends on.

/// Raw (pre-packing) resource counts of a netlist fragment.
///
/// LUTs are split by packability (§IV-A): "about 80% of functions pack in
/// pairs" — the remainder (carry chains, wide functions) must occupy a
/// whole ALM each. All counts are `f64` because characterized template
/// costs are fractional averages.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Resources {
    /// LUTs that the placer may pack two-per-ALM.
    pub lut_packable: f64,
    /// LUTs that need a full ALM (carry chains, wide functions).
    pub lut_unpackable: f64,
    /// Flip-flops.
    pub regs: f64,
    /// Hard multiplier (DSP) blocks.
    pub dsps: f64,
    /// Physical block RAMs (M20Ks).
    pub brams: f64,
}

impl Resources {
    /// The empty resource vector.
    pub fn zero() -> Self {
        Self::default()
    }

    /// Total LUTs, packable or not.
    pub fn luts(&self) -> f64 {
        self.lut_packable + self.lut_unpackable
    }

    /// Every component scaled by `k` (e.g. lane replication).
    pub fn times(&self, k: f64) -> Self {
        Resources {
            lut_packable: self.lut_packable * k,
            lut_unpackable: self.lut_unpackable * k,
            regs: self.regs * k,
            dsps: self.dsps * k,
            brams: self.brams * k,
        }
    }

    /// Component-wise sum, by reference.
    pub fn plus(&self, other: &Resources) -> Self {
        *self + *other
    }
}

impl std::ops::Add for Resources {
    type Output = Resources;

    fn add(self, other: Resources) -> Resources {
        Resources {
            lut_packable: self.lut_packable + other.lut_packable,
            lut_unpackable: self.lut_unpackable + other.lut_unpackable,
            regs: self.regs + other.regs,
            dsps: self.dsps + other.dsps,
            brams: self.brams + other.brams,
        }
    }
}

impl std::ops::AddAssign for Resources {
    fn add_assign(&mut self, other: Resources) {
        *self = *self + other;
    }
}

impl std::iter::Sum for Resources {
    fn sum<I: Iterator<Item = Resources>>(iter: I) -> Resources {
        iter.fold(Resources::zero(), |a, b| a + b)
    }
}

/// Post-place-and-route area in device units: the quantities Table III
/// compares between the estimator, the synthesis model and the device.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct AreaReport {
    /// Adaptive logic modules.
    pub alms: f64,
    /// Flip-flops (each ALM carries its own; reported for completeness).
    pub regs: f64,
    /// DSP blocks.
    pub dsps: f64,
    /// M20K block RAMs.
    pub brams: f64,
}

impl AreaReport {
    /// Does this design fit on `target`? Registers are not checked
    /// separately: the packing closure already charges excess registers
    /// as ALMs.
    pub fn fits(&self, target: &FpgaTarget) -> bool {
        self.alms <= target.alms as f64
            && self.dsps <= target.dsps as f64
            && self.brams <= target.brams as f64
    }

    /// Fractional utilization of each capacity axis: `(alm, dsp, bram)`.
    pub fn utilization(&self, target: &FpgaTarget) -> (f64, f64, f64) {
        (
            self.alms / target.alms as f64,
            self.dsps / target.dsps as f64,
            self.brams / target.brams as f64,
        )
    }
}

/// An FPGA device preset: capacities, packing geometry and fabric clock.
#[derive(Debug, Clone, PartialEq)]
pub struct FpgaTarget {
    /// Device name; encoded into calibration-model cache filenames.
    pub name: String,
    /// Adaptive logic modules (each holds one fracturable 8-input LUT).
    pub alms: u64,
    /// Registers the packing model assumes per ALM before spilling
    /// registers into their own ALMs (the two "loose" ALM registers).
    pub regs_per_alm: u32,
    /// ALMs per logic array block — the granularity at which the placer
    /// wastes resources ("unavailable" LUTs, §IV-A).
    pub alms_per_lab: u32,
    /// Hard 27×27 multiplier (DSP) blocks.
    pub dsps: u64,
    /// M20K block RAMs.
    pub brams: u64,
    /// Bits per block RAM (M20K = 20 kbit).
    pub bram_bits: u64,
    /// Widest supported block-RAM port in bits (M20K = 512×40).
    pub bram_max_width: u32,
    /// Fabric (kernel) clock in Hz.
    pub fabric_clock_hz: f64,
}

impl FpgaTarget {
    /// The Stratix V GS D8 class device on the Maxeler MAIA board used for
    /// all of the paper's experiments (§V): 262K ALMs, 1963 27×27 DSPs,
    /// 2567 M20Ks, 150 MHz fabric clock.
    pub fn stratix_v() -> Self {
        FpgaTarget {
            name: "Stratix V (MAIA)".to_string(),
            alms: 262_400,
            regs_per_alm: 2,
            alms_per_lab: 10,
            dsps: 1_963,
            brams: 2_567,
            bram_bits: 20 * 1024,
            bram_max_width: 40,
            fabric_clock_hz: 150e6,
        }
    }

    /// A midrange (Arria-V-class) device: same architecture, roughly a
    /// third of the capacity. Used to study how device size constrains
    /// the valid design space.
    pub fn midrange() -> Self {
        FpgaTarget {
            name: "Midrange (Arria V class)".to_string(),
            alms: 76_800,
            regs_per_alm: 2,
            alms_per_lab: 10,
            dsps: 342,
            brams: 557,
            bram_bits: 20 * 1024,
            bram_max_width: 40,
            fabric_clock_hz: 150e6,
        }
    }

    /// Deepest native block-RAM configuration whose port is at least
    /// `word_bits` wide. M20K geometry: 512×40, 1K×20, 2K×10, 4K×5,
    /// 8K×2, 16K×1 (depth caps at 16K — the 8K×2 and 16K×1 modes waste
    /// capacity, as on the real device).
    fn bram_depth_for(&self, word_bits: u32) -> u64 {
        match word_bits {
            1 => 16_384,
            2 => 8_192,
            3..=5 => 4_096,
            6..=10 => 2_048,
            11..=20 => 1_024,
            _ => self.bram_bits / u64::from(self.bram_max_width.max(1)),
        }
    }

    /// Number of physical block RAMs needed for one logical memory of
    /// `depth` words of `word_bits` bits, following the native port
    /// configurations: words wider than the widest port are split across
    /// side-by-side BRAMs at the shallowest depth.
    pub fn brams_for(&self, depth: u64, word_bits: u32) -> u64 {
        if depth == 0 || word_bits == 0 {
            return 0;
        }
        if word_bits > self.bram_max_width {
            let columns = u64::from(word_bits.div_ceil(self.bram_max_width));
            let min_depth = self.bram_bits / u64::from(self.bram_max_width);
            columns * depth.div_ceil(min_depth)
        } else {
            depth.div_ceil(self.bram_depth_for(word_bits))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stratix_v_capacities() {
        let t = FpgaTarget::stratix_v();
        assert_eq!(t.alms, 262_400);
        assert_eq!(t.dsps, 1_963);
        assert_eq!(t.brams, 2_567);
        assert_eq!(t.regs_per_alm, 2);
        assert_eq!(t.fabric_clock_hz, 150e6);
        assert_eq!(t.name, "Stratix V (MAIA)");
    }

    #[test]
    fn midrange_is_smaller_on_every_axis() {
        let big = FpgaTarget::stratix_v();
        let mid = FpgaTarget::midrange();
        assert!(mid.alms < big.alms);
        assert!(mid.dsps < big.dsps);
        assert!(mid.brams < big.brams);
    }

    #[test]
    fn brams_for_boundary_widths() {
        let t = FpgaTarget::stratix_v();
        // One M20K in each native configuration (widths 1, 20, 40).
        assert_eq!(t.brams_for(16_384, 1), 1);
        assert_eq!(t.brams_for(1_024, 20), 1);
        assert_eq!(t.brams_for(512, 40), 1);
        // One word past the native depth spills into a second block.
        assert_eq!(t.brams_for(16_385, 1), 2);
        assert_eq!(t.brams_for(1_025, 20), 2);
        assert_eq!(t.brams_for(513, 40), 2);
        // Intermediate widths round up to the next native port.
        assert_eq!(t.brams_for(1_024, 11), 1);
        assert_eq!(t.brams_for(2_048, 10), 1);
        assert_eq!(t.brams_for(512, 21), 1);
    }

    #[test]
    fn brams_for_typical_tiles() {
        let t = FpgaTarget::stratix_v();
        // A 512-deep 32-bit tile buffer is exactly one M20K (512×40 port).
        assert_eq!(t.brams_for(512, 32), 1);
        assert_eq!(t.brams_for(128, 32), 1);
        assert_eq!(t.brams_for(1_024, 32), 2);
        assert_eq!(t.brams_for(4_096, 32), 8);
    }

    #[test]
    fn wide_words_split_across_columns() {
        let t = FpgaTarget::stratix_v();
        // 64-bit words need two side-by-side M20Ks.
        assert_eq!(t.brams_for(512, 64), 2);
        assert_eq!(t.brams_for(513, 64), 4);
        assert_eq!(t.brams_for(512, 41), 2);
    }

    #[test]
    fn brams_for_degenerate_inputs() {
        let t = FpgaTarget::stratix_v();
        assert_eq!(t.brams_for(0, 32), 0);
        assert_eq!(t.brams_for(512, 0), 0);
        assert_eq!(t.brams_for(1, 1), 1);
    }

    #[test]
    fn resources_helpers() {
        let r = Resources {
            lut_packable: 10.0,
            lut_unpackable: 5.0,
            regs: 20.0,
            dsps: 1.0,
            brams: 2.0,
        };
        assert_eq!(r.luts(), 15.0);
        assert_eq!(r.times(2.0).regs, 40.0);
        assert_eq!(r.plus(&r), r.times(2.0));
        let mut acc = Resources::zero();
        acc += r;
        acc += r;
        assert_eq!(acc, r.times(2.0));
        assert_eq!(vec![r, r, r].into_iter().sum::<Resources>(), r.times(3.0));
    }

    #[test]
    fn fits_and_utilization() {
        let t = FpgaTarget::stratix_v();
        let half = AreaReport {
            alms: t.alms as f64 / 2.0,
            regs: 1000.0,
            dsps: t.dsps as f64 / 2.0,
            brams: t.brams as f64 / 2.0,
        };
        assert!(half.fits(&t));
        let (a, d, b) = half.utilization(&t);
        assert!((a - 0.5).abs() < 1e-12);
        assert!((d - 0.5).abs() < 1e-12);
        assert!((b - 0.5).abs() < 1e-12);
        let over = AreaReport {
            brams: t.brams as f64 + 1.0,
            ..half
        };
        assert!(!over.fits(&t));
    }
}
