//! # dhdl-target — target platform models
//!
//! Device models for the platform the toolchain generates accelerators
//! for: the FPGA fabric ([`FpgaTarget`]), the off-chip memory channel
//! ([`DramModel`]) and the chip power model ([`PowerModel`]), bundled as a
//! [`Platform`]. The paper's experiments (§V) run on an Altera Stratix V
//! GS D8 on a Maxeler MAIA board at a 150 MHz fabric clock; that preset
//! is [`Platform::maia`]. Multi-board systems add an inter-board link
//! model ([`BoardLink`]) and a bundle of N identical devices
//! ([`MultiFpgaPlatform`]) for the partitioning pass.
//!
//! Every layer of the toolchain consumes these numbers: template
//! characterization and the synthesis model (`dhdl-synth`) price
//! resources against [`FpgaTarget`], cycle estimation and the timing
//! simulator price transfers against [`DramModel`], and the design space
//! pruner rejects points whose [`AreaReport`] does not fit the device.
//!
//! ```
//! use dhdl_target::Platform;
//!
//! let p = Platform::maia();
//! assert_eq!(p.fpga.fabric_clock_hz, 150e6);
//! // 150 M cycles is one second of fabric time.
//! assert_eq!(p.cycles_to_seconds(150e6), 1.0);
//! ```

#![deny(missing_docs)]

mod dram;
mod fpga;
mod link;
mod power;

pub use dram::DramModel;
pub use fpga::{AreaReport, FpgaTarget, Resources};
pub use link::{BoardLink, MultiFpgaPlatform, LINK_WORD_BITS};
pub use power::PowerModel;

/// A complete target platform: FPGA fabric, DRAM channel and power model.
#[derive(Debug, Clone, PartialEq)]
pub struct Platform {
    /// The FPGA device.
    pub fpga: FpgaTarget,
    /// The off-chip memory channel.
    pub dram: DramModel,
    /// The device power model.
    pub power: PowerModel,
}

impl Platform {
    /// The Maxeler MAIA platform of the paper's experiments: Stratix V
    /// fabric, 37.5 GB/s achievable LMem bandwidth, Stratix V power.
    pub fn maia() -> Self {
        Platform {
            fpga: FpgaTarget::stratix_v(),
            dram: DramModel::maia(),
            power: PowerModel::stratix_v(),
        }
    }

    /// Wall-clock seconds of `cycles` fabric cycles.
    pub fn cycles_to_seconds(&self, cycles: f64) -> f64 {
        cycles / self.fpga.fabric_clock_hz
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn maia_wires_the_presets_together() {
        let p = Platform::maia();
        assert_eq!(p.fpga, FpgaTarget::stratix_v());
        assert_eq!(p.dram, DramModel::maia());
        assert_eq!(p.power, PowerModel::stratix_v());
    }

    #[test]
    fn cycles_to_seconds_at_150_mhz() {
        let p = Platform::maia();
        assert_eq!(p.cycles_to_seconds(150e6), 1.0);
        assert_eq!(p.cycles_to_seconds(0.0), 0.0);
        // One cycle is 6.67 ns.
        assert!((p.cycles_to_seconds(1.0) - 1.0 / 150e6).abs() < 1e-18);
        // 1.5 M cycles at 150 MHz is 10 ms.
        assert!((p.cycles_to_seconds(1.5e6) - 0.01).abs() < 1e-12);
    }

    #[test]
    fn platform_is_cloneable_and_comparable() {
        let p = Platform::maia();
        let q = p.clone();
        assert_eq!(p, q);
        let mut r = p.clone();
        r.fpga = FpgaTarget::midrange();
        assert_ne!(p, r);
    }
}
