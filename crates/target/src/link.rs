//! Inter-board link and multi-device platform models.
//!
//! Multi-FPGA systems connect boards with point-to-point serial links
//! (MaxRing on Maxeler systems; partial crossbars on emulation platforms
//! such as the BEE family). A partitioned design streams intermediate
//! tiles across these links, so the partitioning pass and the estimator
//! price inter-partition traffic through [`BoardLink`] exactly the way
//! single-chip transfers are priced through the DRAM model: calibrated
//! constants in *fabric* clock cycles.

use crate::{FpgaTarget, Platform};

/// Number of bits in one link word: links are characterized in 32-bit
/// words to match the suite's dominant `F32` element type.
pub const LINK_WORD_BITS: u32 = 32;

/// Inter-board channel timing and bandwidth parameters.
///
/// Quantities are in fabric clock cycles, like [`crate::DramModel`]: the
/// latency is the full serialize → transceiver → deserialize round trip
/// for the first word of a stream, and the bandwidth is the sustained
/// streaming rate once the pipe is full.
#[derive(Debug, Clone, PartialEq)]
pub struct BoardLink {
    /// Fabric cycles from the first word entering the sender's channel
    /// FIFO to it leaving the receiver's (serdes, protocol framing and
    /// clock-domain crossings).
    pub latency_cycles: u64,
    /// Sustained bandwidth in 32-bit words per fabric cycle.
    pub words_per_cycle: f64,
    /// Depth (in words) of the channel FIFO at each endpoint; sets the
    /// BRAM cost of a channel endpoint.
    pub fifo_depth: u64,
}

impl BoardLink {
    /// The MAIA-class inter-board ring link: a 2.4 GB/s sustained serial
    /// stream — 16 bytes (4 words) per 150 MHz fabric cycle — with a
    /// 40-cycle end-to-end first-word latency and 512-word endpoint
    /// FIFOs. An order of magnitude below the 250 B/cycle DRAM channel,
    /// which is what makes cut placement a real DSE trade-off.
    pub fn maia_interlink() -> Self {
        BoardLink {
            latency_cycles: 40,
            words_per_cycle: 4.0,
            fifo_depth: 512,
        }
    }

    /// Streaming occupancy (cycles) of moving `words` values of
    /// `word_bits` bits each: wider elements consume proportionally more
    /// of the 32-bit-word budget, narrower ones are not packed (each
    /// element still occupies one link word, as in the real framing).
    pub fn stream_cycles(&self, words: u64, word_bits: u32) -> f64 {
        if words == 0 || self.words_per_cycle <= 0.0 {
            return 0.0;
        }
        let link_words = words * u64::from(word_bits.div_ceil(LINK_WORD_BITS).max(1));
        link_words as f64 / self.words_per_cycle
    }

    /// Total cycles of one isolated transfer of `words` values: the
    /// first-word latency, then the stream.
    pub fn request(&self, words: u64, word_bits: u32) -> f64 {
        if words == 0 {
            return 0.0;
        }
        self.latency_cycles as f64 + self.stream_cycles(words, word_bits)
    }
}

/// A platform of `num_devices` identical FPGAs connected by point-to-point
/// [`BoardLink`]s, each device with its own DRAM channel.
///
/// `num_devices == 1` degenerates to the single-chip [`Platform`]: no
/// links exist and every model in the toolchain behaves bit-identically
/// to the unpartitioned path.
#[derive(Debug, Clone, PartialEq)]
pub struct MultiFpgaPlatform {
    /// The per-device platform (fabric, DRAM, power) — all devices are
    /// identical.
    pub base: Platform,
    /// Number of devices (K in the DSE parameter `num_fpgas`).
    pub num_devices: u32,
    /// The inter-board link connecting adjacent devices.
    pub link: BoardLink,
}

impl MultiFpgaPlatform {
    /// `k` identical copies of `base` connected by the MAIA-class
    /// interlink.
    ///
    /// # Panics
    ///
    /// Panics if `k == 0`.
    pub fn from_platform(base: &Platform, k: u32) -> Self {
        assert!(k > 0, "a multi-FPGA platform needs at least one device");
        MultiFpgaPlatform {
            base: base.clone(),
            num_devices: k,
            link: BoardLink::maia_interlink(),
        }
    }

    /// `k` MAIA boards (the paper's platform) on a ring.
    pub fn maia(k: u32) -> Self {
        Self::from_platform(&Platform::maia(), k)
    }

    /// The (identical) FPGA device model of every board.
    pub fn device(&self) -> &FpgaTarget {
        &self.base.fpga
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn maia_interlink_is_much_slower_than_dram() {
        let link = BoardLink::maia_interlink();
        let dram = crate::DramModel::maia();
        // 4 words/cycle = 16 B/cycle, far below the 250 B/cycle channel.
        assert_eq!(link.words_per_cycle * 4.0, 16.0);
        assert!(link.words_per_cycle * 4.0 < dram.bytes_per_cycle / 10.0);
        assert!(link.latency_cycles > 0);
        assert!(link.fifo_depth > 0);
    }

    #[test]
    fn stream_cycles_scale_with_words_and_width() {
        let link = BoardLink::maia_interlink();
        assert_eq!(link.stream_cycles(0, 32), 0.0);
        // 4 words per cycle: 1024 32-bit words take 256 cycles.
        assert!((link.stream_cycles(1024, 32) - 256.0).abs() < 1e-12);
        // 64-bit elements take two link words each.
        assert!((link.stream_cycles(1024, 64) - 512.0).abs() < 1e-12);
        // Narrow elements are not packed: still one link word each.
        assert_eq!(link.stream_cycles(1024, 1), link.stream_cycles(1024, 32));
    }

    #[test]
    fn request_adds_first_word_latency() {
        let link = BoardLink::maia_interlink();
        assert_eq!(link.request(0, 32), 0.0);
        let r = link.request(1024, 32);
        assert!((r - (40.0 + 256.0)).abs() < 1e-12);
        // Tiny transfers are latency-bound.
        assert!(link.request(1, 32) >= link.latency_cycles as f64);
    }

    #[test]
    fn multi_platform_degenerates_at_k1() {
        let p = Platform::maia();
        let m = MultiFpgaPlatform::from_platform(&p, 1);
        assert_eq!(m.num_devices, 1);
        assert_eq!(m.base, p);
        assert_eq!(m.device(), &p.fpga);
    }

    #[test]
    fn maia_preset_wires_the_parts() {
        let m = MultiFpgaPlatform::maia(4);
        assert_eq!(m.num_devices, 4);
        assert_eq!(m.base, Platform::maia());
        assert_eq!(m.link, BoardLink::maia_interlink());
    }

    #[test]
    #[should_panic(expected = "at least one device")]
    fn zero_devices_is_rejected() {
        let _ = MultiFpgaPlatform::maia(0);
    }
}
