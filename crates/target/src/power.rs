//! Device power model.
//!
//! The paper motivates accelerators with "orders of magnitude improvements
//! in performance and energy efficiency" (§I); this model prices that
//! claim. FPGA power is the standard two-term decomposition: a static
//! floor (leakage plus board overhead) and dynamic power linear in the
//! active resources and the clock rate — CMOS dynamic power is `α·C·V²·f`,
//! and each occupied ALM/register/DSP/BRAM contributes its switched
//! capacitance.

use crate::fpga::AreaReport;

/// Linear-in-resources power model for a target device.
#[derive(Debug, Clone, PartialEq)]
pub struct PowerModel {
    /// Static power in watts: leakage plus always-on board support.
    pub static_watts: f64,
    /// Dynamic watts per occupied ALM per GHz of fabric clock.
    pub alm_watts_per_ghz: f64,
    /// Dynamic watts per register per GHz.
    pub reg_watts_per_ghz: f64,
    /// Dynamic watts per DSP block per GHz.
    pub dsp_watts_per_ghz: f64,
    /// Dynamic watts per block RAM per GHz.
    pub bram_watts_per_ghz: f64,
}

impl PowerModel {
    /// Stratix-V-class 28 nm coefficients. Calibrated so a near-full
    /// device at the 150 MHz fabric clock draws a few watts on top of a
    /// ~1.3 W static floor — the regime in which the paper's best designs
    /// deliver two to three orders of magnitude better energy efficiency
    /// than a 95 W CPU.
    pub fn stratix_v() -> Self {
        PowerModel {
            static_watts: 1.3,
            alm_watts_per_ghz: 38e-6,
            reg_watts_per_ghz: 2.2e-6,
            dsp_watts_per_ghz: 1.8e-3,
            bram_watts_per_ghz: 1.6e-3,
        }
    }

    /// Total power in watts for a design occupying `area` at `clock_hz`.
    pub fn watts(&self, area: &AreaReport, clock_hz: f64) -> f64 {
        let ghz = clock_hz / 1e9;
        self.static_watts
            + ghz
                * (self.alm_watts_per_ghz * area.alms
                    + self.reg_watts_per_ghz * area.regs
                    + self.dsp_watts_per_ghz * area.dsps
                    + self.bram_watts_per_ghz * area.brams)
    }

    /// Energy in joules for one execution of `seconds` at `clock_hz`.
    pub fn joules(&self, area: &AreaReport, clock_hz: f64, seconds: f64) -> f64 {
        self.watts(area, clock_hz) * seconds
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn full_device() -> AreaReport {
        AreaReport {
            alms: 262_400.0,
            regs: 524_800.0,
            dsps: 1_963.0,
            brams: 2_567.0,
        }
    }

    #[test]
    fn empty_design_draws_only_static() {
        let p = PowerModel::stratix_v();
        let w = p.watts(&AreaReport::default(), 150e6);
        assert_eq!(w, p.static_watts);
    }

    #[test]
    fn full_device_draws_single_digit_watts() {
        let p = PowerModel::stratix_v();
        let w = p.watts(&full_device(), 150e6);
        assert!((2.0..10.0).contains(&w), "full-device power {w} W");
    }

    #[test]
    fn power_scales_with_clock_and_area() {
        let p = PowerModel::stratix_v();
        let slow = p.watts(&full_device(), 100e6);
        let fast = p.watts(&full_device(), 200e6);
        assert!(fast > slow);
        let half = AreaReport {
            alms: 131_200.0,
            regs: 262_400.0,
            dsps: 981.5,
            brams: 1_283.5,
        };
        let dyn_full = p.watts(&full_device(), 150e6) - p.static_watts;
        let dyn_half = p.watts(&half, 150e6) - p.static_watts;
        assert!((dyn_half - dyn_full / 2.0).abs() < 1e-9);
    }

    #[test]
    fn joules_is_watts_times_seconds() {
        let p = PowerModel::stratix_v();
        let a = full_device();
        let w = p.watts(&a, 150e6);
        assert!((p.joules(&a, 150e6, 2.5) - 2.5 * w).abs() < 1e-12);
        assert_eq!(p.joules(&a, 150e6, 0.0), 0.0);
    }
}
