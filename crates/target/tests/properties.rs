//! Property tests for the device models: algebraic laws of the resource
//! vector and monotonicity of the BRAM/DRAM geometry.

use dhdl_target::{DramModel, FpgaTarget, Resources};
use proptest::prelude::*;

fn resources() -> impl Strategy<Value = Resources> {
    (
        0.0..1e6f64,
        0.0..1e6f64,
        0.0..1e6f64,
        0.0..1e4f64,
        0.0..1e4f64,
    )
        .prop_map(
            |(lut_packable, lut_unpackable, regs, dsps, brams)| Resources {
                lut_packable,
                lut_unpackable,
                regs,
                dsps,
                brams,
            },
        )
}

fn close(a: &Resources, b: &Resources) -> bool {
    let eq = |x: f64, y: f64| (x - y).abs() <= 1e-6 * (1.0 + x.abs() + y.abs());
    eq(a.lut_packable, b.lut_packable)
        && eq(a.lut_unpackable, b.lut_unpackable)
        && eq(a.regs, b.regs)
        && eq(a.dsps, b.dsps)
        && eq(a.brams, b.brams)
}

proptest! {
    #[test]
    fn resource_addition_is_commutative(a in resources(), b in resources()) {
        prop_assert_eq!(a + b, b + a);
    }

    #[test]
    fn resource_addition_is_associative(a in resources(), b in resources(), c in resources()) {
        prop_assert!(close(&((a + b) + c), &(a + (b + c))));
    }

    #[test]
    fn zero_is_the_additive_identity(a in resources()) {
        prop_assert_eq!(a + Resources::zero(), a);
        prop_assert_eq!(Resources::zero() + a, a);
        let mut acc = a;
        acc += Resources::zero();
        prop_assert_eq!(acc, a);
    }

    #[test]
    fn plus_matches_operator(a in resources(), b in resources()) {
        prop_assert_eq!(a.plus(&b), a + b);
    }

    #[test]
    fn brams_hold_at_least_the_requested_bits(depth in 1u64..100_000, bits in 1u32..256) {
        let t = FpgaTarget::stratix_v();
        let n = t.brams_for(depth, bits);
        prop_assert!(n >= 1);
        // Total capacity of the allocated blocks covers the logical memory.
        prop_assert!(n * t.bram_bits >= depth * u64::from(bits));
    }

    #[test]
    fn brams_for_is_monotone(depth in 1u64..50_000, bits in 1u32..128) {
        let t = FpgaTarget::stratix_v();
        let n = t.brams_for(depth, bits);
        prop_assert!(t.brams_for(depth + 1, bits) >= n);
        prop_assert!(t.brams_for(depth, bits + 1) >= n);
    }

    #[test]
    fn burst_cycles_round_up_to_bursts(bytes in 0u64..10_000_000) {
        let d = DramModel::maia();
        let cycles = d.burst_cycles(bytes);
        // Never faster than the achievable bandwidth allows...
        prop_assert!(cycles >= bytes as f64 / d.bytes_per_cycle - 1e-9);
        // ...and never more than one extra burst of rounding.
        prop_assert!(cycles <= (bytes + d.burst_bytes) as f64 / d.bytes_per_cycle);
        prop_assert_eq!(d.transfers(bytes), bytes.div_ceil(d.burst_bytes));
    }
}
