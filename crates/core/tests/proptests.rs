//! Property tests over the core IR: builder/analysis invariants and
//! parameter-space algebra.

use dhdl_core::{by, DType, DesignBuilder, NodeKind, ParamKind, ParamSpace, ParamValues};
use proptest::prelude::*;

/// Build a representative tiled design from arbitrary-ish knobs.
fn tiled_design(n_pow: u32, tile_pow: u32, par_pow: u32, toggle: bool) -> dhdl_core::Design {
    let n = 1u64 << n_pow;
    let tile = 1u64 << tile_pow.min(n_pow);
    let par = 1u32 << par_pow;
    let mut b = DesignBuilder::new("prop");
    let x = b.off_chip("x", DType::F32, &[n]);
    let y = b.off_chip("y", DType::F32, &[n]);
    b.sequential(|b| {
        b.outer(toggle, &[by(n, tile)], 1, |b, iters| {
            let i = iters[0];
            let xt = b.bram("xT", DType::F32, &[tile]);
            let yt = b.bram("yT", DType::F32, &[tile]);
            b.tile_load(x, xt, &[i], &[tile], par);
            b.pipe(&[by(tile, 1)], par, |b, it| {
                let v = b.load(xt, &[it[0]]);
                let w = b.mul(v, v);
                b.store(yt, &[it[0]], w);
            });
            b.tile_store(y, yt, &[i], &[tile], par);
        });
    });
    b.finish().expect("valid by construction")
}

proptest! {
    /// Banking always equals the maximum access parallelism.
    #[test]
    fn banking_matches_parallelism(n in 6u32..14, t in 3u32..10, p in 0u32..5, tog: bool) {
        let d = tiled_design(n, t, p, tog);
        for id in d.find_all(|nd| matches!(nd.kind, NodeKind::Bram(_))) {
            let NodeKind::Bram(spec) = d.kind(id) else { unreachable!() };
            prop_assert_eq!(spec.banks, 1u32 << p);
        }
    }

    /// Double-buffering tracks the MetaPipe toggle exactly.
    #[test]
    fn double_buffering_tracks_toggle(n in 6u32..12, t in 3u32..8, tog: bool) {
        let d = tiled_design(n, t, 1, tog);
        for id in d.find_all(|nd| matches!(nd.kind, NodeKind::Bram(_))) {
            let NodeKind::Bram(spec) = d.kind(id) else { unreachable!() };
            prop_assert_eq!(spec.double_buf, tog);
        }
    }

    /// Controller counts and nesting depth are structure-determined.
    #[test]
    fn hierarchy_shape_is_stable(n in 6u32..12, t in 3u32..8, p in 0u32..4, tog: bool) {
        let d = tiled_design(n, t, p, tog);
        // Sequential -> outer -> {TileLd, Pipe, TileSt}.
        prop_assert_eq!(d.controllers().len(), 5);
        prop_assert_eq!(d.nesting_depth(), 3);
        // Rebuilding yields an identical graph (determinism).
        let d2 = tiled_design(n, t, p, tog);
        prop_assert_eq!(d, d2);
    }

    /// Parameter spaces: defaults are always legal, size matches the
    /// product of per-parameter counts, and every enumerated point is
    /// legal.
    #[test]
    fn param_space_algebra(n in 1u64..4096, max_par in 1u64..64) {
        let mut s = ParamSpace::new();
        s.tile("ts", n, 1, n);
        s.par("p", n, max_par);
        s.toggle("m");
        let d = s.defaults();
        prop_assert!(s.is_legal(&d));
        let sizes: u128 = s
            .defs()
            .iter()
            .map(|d| d.kind.legal_values().len() as u128)
            .product();
        prop_assert_eq!(s.size(), sizes);
    }

    /// Tile legal values are closed under the divides relation.
    #[test]
    fn divisor_product_roundtrip(n in 1u64..100_000) {
        let kind = ParamKind::Tile { divides: n, min: 1, max: n };
        let vals = kind.legal_values();
        // 1 and n always present; all divide; sorted and unique.
        prop_assert!(vals.contains(&1));
        prop_assert!(vals.contains(&n));
        prop_assert!(vals.windows(2).all(|w| w[0] < w[1]));
        for v in vals {
            prop_assert_eq!(n % v, 0);
        }
    }

    /// ParamValues text form is stable and parseable back by key lookup.
    #[test]
    fn param_values_display(va in 0u64..1000, vb in 0u64..1000) {
        let v = ParamValues::new().with("a", va).with("b", vb);
        let s = v.to_string();
        let key_a = format!("a={va}");
        let key_b = format!("b={vb}");
        prop_assert!(s.contains(&key_a));
        prop_assert!(s.contains(&key_b));
        prop_assert_eq!(v.get("a"), Some(va));
    }
}
