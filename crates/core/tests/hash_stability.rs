//! Golden-value regression tests for [`dhdl_core::structural_hash`].
//!
//! The structural hash keys on-disk estimate caches (`results/cache/`)
//! and recorded fault-injection schedules. If its byte stream ever
//! changes — a renamed `Node` field, a reordered enum variant, a tweak
//! to `Debug` formatting — previously cached artifacts would silently
//! stop matching. These tests pin exact hash values for fixed designs
//! so any such drift fails loudly; if one fails, either revert the
//! formatting change or bump the cache format version *and* these
//! golden values together.

use dhdl_core::{by, structural_hash, DType, DesignBuilder, ReduceOp};

fn dotproduct(tile: u64, par: u32) -> dhdl_core::Design {
    let mut b = DesignBuilder::new("dotproduct");
    let va = b.off_chip("a", DType::F32, &[4096]);
    let vb = b.off_chip("b", DType::F32, &[4096]);
    b.sequential(|b| {
        let acc = b.reg("acc", DType::F32, 0.0);
        b.meta_pipe(&[by(4096, tile)], 1, |b, iters| {
            let i = iters[0];
            let at = b.bram("aT", DType::F32, &[tile]);
            let bt = b.bram("bT", DType::F32, &[tile]);
            b.parallel(|b| {
                b.tile_load(va, at, &[i], &[tile], par);
                b.tile_load(vb, bt, &[i], &[tile], par);
            });
            b.pipe_reduce(&[by(tile, 1)], par, acc, ReduceOp::Add, |b, it| {
                let x = b.load(at, &[it[0]]);
                let y = b.load(bt, &[it[0]]);
                b.mul(x, y)
            });
        });
    });
    b.finish().unwrap()
}

fn scalar(name: &str) -> dhdl_core::Design {
    let mut b = DesignBuilder::new(name);
    b.sequential(|b| {
        let acc = b.reg("r", DType::i32(), 0.0);
        b.pipe_reduce(&[by(16, 1)], 1, acc, ReduceOp::Add, |b, it| {
            let c = b.constant(2.0, DType::i32());
            b.mul(it[0], c)
        });
    });
    b.finish().unwrap()
}

/// Golden values. Computed once and pinned; see module docs for the
/// upgrade procedure if these legitimately need to change.
#[test]
fn structural_hash_golden_values() {
    let cases: [(&str, u64, u64); 4] = [
        (
            "dot-64-4",
            structural_hash(&dotproduct(64, 4)),
            GOLD_DOT_64_4,
        ),
        (
            "dot-128-4",
            structural_hash(&dotproduct(128, 4)),
            GOLD_DOT_128_4,
        ),
        (
            "dot-64-8",
            structural_hash(&dotproduct(64, 8)),
            GOLD_DOT_64_8,
        ),
        ("scalar", structural_hash(&scalar("s")), GOLD_SCALAR),
    ];
    for (name, got, want) in cases {
        assert_eq!(
            got, want,
            "structural_hash drifted for {name}: got {got:#018x}, want {want:#018x} \
             (cached artifacts keyed by the old stream will no longer match)"
        );
    }
}

const GOLD_DOT_64_4: u64 = 0x1159_5a0a_0add_69c9;
const GOLD_DOT_128_4: u64 = 0xcd74_2daf_8606_5ea3;
const GOLD_DOT_64_8: u64 = 0x4601_ad48_b6c1_fbb9;
const GOLD_SCALAR: u64 = 0xc106_5445_562e_aad3;

/// The hash must be a pure function of the design, not of process state.
#[test]
fn structural_hash_is_reproducible_within_process() {
    assert_eq!(
        structural_hash(&dotproduct(64, 4)),
        structural_hash(&dotproduct(64, 4))
    );
    assert_ne!(
        structural_hash(&dotproduct(64, 4)),
        structural_hash(&dotproduct(64, 2))
    );
}
