//! # dhdl-core — the Delite Hardware Definition Language IR
//!
//! DHDL is an intermediate language for describing hardware datapaths as
//! hierarchical dataflow graphs of *parameterizable architectural templates*
//! (Koeplinger et al., ISCA 2016, §III). A DHDL program describes a dataflow
//! graph whose nodes are the templates of Table I: primitive operations,
//! on-/off-chip memories, controllers (`Pipe`, `MetaPipe`, `Sequential`,
//! `Parallel`) and memory command generators (`TileLd`, `TileSt`).
//!
//! Designs are built with the [`DesignBuilder`] embedded DSL. A benchmark is
//! a Rust metaprogram over the builder: calling it with concrete
//! [`ParamValues`] instantiates every template and yields a [`Design`],
//! which downstream crates estimate (`dhdl-estimate`), synthesize
//! (`dhdl-synth`), simulate (`dhdl-sim`) and explore (`dhdl-dse`).
//!
//! ```
//! use dhdl_core::{by, DType, DesignBuilder, ReduceOp};
//!
//! # fn main() -> dhdl_core::Result<()> {
//! // A dot-product accelerator skeleton, parameterized by tile size.
//! let (n, tile, par) = (4096, 64, 4);
//! let mut b = DesignBuilder::new("dotproduct");
//! let va = b.off_chip("a", DType::F32, &[n]);
//! let vb = b.off_chip("b", DType::F32, &[n]);
//! b.sequential(|b| {
//!     let acc = b.reg("acc", DType::F32, 0.0);
//!     b.meta_pipe(&[by(n, tile)], 1, |b, iters| {
//!         let i = iters[0];
//!         let at = b.bram("aT", DType::F32, &[tile]);
//!         let bt = b.bram("bT", DType::F32, &[tile]);
//!         b.parallel(|b| {
//!             b.tile_load(va, at, &[i], &[tile], par);
//!             b.tile_load(vb, bt, &[i], &[tile], par);
//!         });
//!         b.pipe_reduce(&[by(tile, 1)], par as u32, acc, ReduceOp::Add, |b, it| {
//!             let x = b.load(at, &[it[0]]);
//!             let y = b.load(bt, &[it[0]]);
//!             b.mul(x, y)
//!         });
//!     });
//! });
//! let design = b.finish()?;
//! assert_eq!(design.name(), "dotproduct");
//! # Ok(())
//! # }
//! ```

#![deny(missing_docs)]

pub mod analysis;
mod builder;
mod design;
mod error;
pub mod export;
mod hash;
mod node;
mod params;
pub mod serialize;
mod types;

pub use builder::DesignBuilder;
pub use design::Design;
pub use error::{DhdlError, Result};
pub use hash::{structural_hash, Fnv64};
pub use node::{
    by, BramSpec, CounterChain, CounterDim, Interleaving, MemFold, Node, NodeId, NodeKind,
    OuterSpec, Pattern, PipeSpec, PrimOp, QueueSpec, ReduceOp, RegReduce, RegSpec, TileSpec,
};
pub use params::{ParamDef, ParamKind, ParamSpace, ParamValues, NUM_FPGAS};
pub use types::DType;

pub use analysis::stats::DesignStats;
