//! Scalar data types supported by DHDL.
//!
//! DHDL supports variable bit-width fixed-point types, floating point types,
//! and booleans (paper §III-B). Every node that produces or stores data has
//! an associated [`DType`].

use std::fmt;

/// A DHDL scalar element type.
///
/// # Examples
///
/// ```
/// use dhdl_core::DType;
///
/// let f = DType::F32;
/// assert_eq!(f.bits(), 32);
/// let q = DType::fixed(true, 15, 16);
/// assert_eq!(q.bits(), 32);
/// assert!(!q.is_float());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub enum DType {
    /// Fixed-point number with a sign bit flag, integer bits and fraction bits.
    Fix {
        /// Whether the value is signed (adds one sign bit to the width).
        sign: bool,
        /// Number of integer bits.
        int: u16,
        /// Number of fractional bits.
        frac: u16,
    },
    /// IEEE-754 single-precision floating point.
    #[default]
    F32,
    /// IEEE-754 double-precision floating point.
    F64,
    /// Single-bit boolean.
    Bool,
}

impl DType {
    /// Convenience constructor for a fixed-point type.
    ///
    /// # Examples
    ///
    /// ```
    /// use dhdl_core::DType;
    /// assert_eq!(DType::fixed(false, 32, 0).bits(), 32);
    /// ```
    pub fn fixed(sign: bool, int: u16, frac: u16) -> Self {
        DType::Fix { sign, int, frac }
    }

    /// A signed 32-bit integer, represented as `Fix{sign, 31, 0}`.
    pub fn i32() -> Self {
        DType::Fix {
            sign: true,
            int: 31,
            frac: 0,
        }
    }

    /// An unsigned 32-bit index type.
    pub fn index() -> Self {
        DType::Fix {
            sign: false,
            int: 32,
            frac: 0,
        }
    }

    /// Total storage width of the type in bits.
    pub fn bits(&self) -> u32 {
        match *self {
            DType::Fix { sign, int, frac } => u32::from(sign) + u32::from(int) + u32::from(frac),
            DType::F32 => 32,
            DType::F64 => 64,
            DType::Bool => 1,
        }
    }

    /// Whether this type is a floating point type.
    pub fn is_float(&self) -> bool {
        matches!(self, DType::F32 | DType::F64)
    }

    /// Whether this type is a fixed-point (integer-like) type.
    pub fn is_fixed(&self) -> bool {
        matches!(self, DType::Fix { .. })
    }

    /// Quantize an `f64` working value to this type's representable set.
    ///
    /// The functional simulator computes in `f64` and calls this after every
    /// operation so results match what the generated hardware would produce
    /// (to within the fidelity of the model).
    #[inline]
    pub fn quantize(&self, x: f64) -> f64 {
        match *self {
            DType::F32 => x as f32 as f64,
            DType::F64 => x,
            DType::Bool => {
                if x != 0.0 {
                    1.0
                } else {
                    0.0
                }
            }
            DType::Fix { sign, int, frac } => {
                let scale = (2.0f64).powi(i32::from(frac));
                let scaled = (x * scale).round();
                let max = (2.0f64).powi(i32::from(int) + i32::from(frac)) - 1.0;
                let min = if sign { -max - 1.0 } else { 0.0 };
                scaled.clamp(min, max) / scale
            }
        }
    }
}

impl fmt::Display for DType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            DType::Fix { sign, int, frac } => {
                write!(f, "{}fix{}.{}", if sign { "s" } else { "u" }, int, frac)
            }
            DType::F32 => write!(f, "f32"),
            DType::F64 => write!(f, "f64"),
            DType::Bool => write!(f, "bool"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bit_widths() {
        assert_eq!(DType::F32.bits(), 32);
        assert_eq!(DType::F64.bits(), 64);
        assert_eq!(DType::Bool.bits(), 1);
        assert_eq!(DType::fixed(true, 15, 16).bits(), 32);
        assert_eq!(DType::fixed(false, 8, 8).bits(), 16);
    }

    #[test]
    fn quantize_f32_rounds() {
        let x = 1.000000001234567_f64;
        assert_eq!(DType::F32.quantize(x), x as f32 as f64);
        assert_eq!(DType::F64.quantize(x), x);
    }

    #[test]
    fn quantize_bool() {
        assert_eq!(DType::Bool.quantize(3.5), 1.0);
        assert_eq!(DType::Bool.quantize(0.0), 0.0);
        assert_eq!(DType::Bool.quantize(-1.0), 1.0);
    }

    #[test]
    fn quantize_fixed_saturates() {
        let q = DType::fixed(false, 4, 0); // range [0, 15]
        assert_eq!(q.quantize(20.0), 15.0);
        assert_eq!(q.quantize(-3.0), 0.0);
        assert_eq!(q.quantize(7.4), 7.0);
    }

    #[test]
    fn quantize_fixed_fraction() {
        let q = DType::fixed(true, 3, 2); // step 0.25
        assert_eq!(q.quantize(1.13), 1.25);
        assert_eq!(q.quantize(-1.13), -1.25);
    }

    #[test]
    fn display_forms() {
        assert_eq!(DType::F32.to_string(), "f32");
        assert_eq!(DType::fixed(true, 15, 16).to_string(), "sfix15.16");
        assert_eq!(DType::Bool.to_string(), "bool");
    }
}
