//! Node definitions for the DHDL dataflow graph.
//!
//! Each node corresponds to one of the architectural templates of Table I in
//! the paper: primitive operations, memories, controllers, and memory command
//! generators.

use std::fmt;

use crate::types::DType;

/// Identifier of a node inside a [`crate::Design`]'s arena.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(u32);

impl NodeId {
    /// Create a `NodeId` from a raw index. Intended for arena internals and
    /// deserialization; regular users obtain ids from the builder.
    pub fn from_raw(raw: u32) -> Self {
        NodeId(raw)
    }

    /// The raw arena index of this id.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "%{}", self.0)
    }
}

/// Primitive arithmetic, logic and control operations (Table I, row 1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PrimOp {
    /// Addition.
    Add,
    /// Subtraction.
    Sub,
    /// Multiplication.
    Mul,
    /// Division.
    Div,
    /// Remainder.
    Rem,
    /// Less-than comparison.
    Lt,
    /// Less-or-equal comparison.
    Le,
    /// Greater-than comparison.
    Gt,
    /// Greater-or-equal comparison.
    Ge,
    /// Equality comparison.
    Eq,
    /// Inequality comparison.
    Ne,
    /// Logical/bitwise and.
    And,
    /// Logical/bitwise or.
    Or,
    /// Logical negation.
    Not,
    /// Arithmetic negation.
    Neg,
    /// Absolute value (multi-cycle complex primitive).
    Abs,
    /// Square root (multi-cycle complex primitive).
    Sqrt,
    /// Natural exponential (multi-cycle complex primitive).
    Exp,
    /// Natural logarithm (multi-cycle complex primitive).
    Ln,
    /// Minimum of two values.
    Min,
    /// Maximum of two values.
    Max,
}

impl PrimOp {
    /// Number of operands the operation consumes.
    pub fn arity(self) -> usize {
        match self {
            PrimOp::Not | PrimOp::Neg | PrimOp::Abs | PrimOp::Sqrt | PrimOp::Exp | PrimOp::Ln => 1,
            _ => 2,
        }
    }

    /// Whether the op is one of the "complex multi-cycle" primitives
    /// called out in §III-B.
    pub fn is_complex(self) -> bool {
        matches!(
            self,
            PrimOp::Div | PrimOp::Rem | PrimOp::Sqrt | PrimOp::Exp | PrimOp::Ln
        )
    }

    /// Whether the result of the op is a boolean regardless of input type.
    pub fn is_predicate(self) -> bool {
        matches!(
            self,
            PrimOp::Lt | PrimOp::Le | PrimOp::Gt | PrimOp::Ge | PrimOp::Eq | PrimOp::Ne
        )
    }

    /// All primitive ops, for characterization sweeps.
    pub fn all() -> &'static [PrimOp] {
        use PrimOp::*;
        &[
            Add, Sub, Mul, Div, Rem, Lt, Le, Gt, Ge, Eq, Ne, And, Or, Not, Neg, Abs, Sqrt, Exp, Ln,
            Min, Max,
        ]
    }
}

impl fmt::Display for PrimOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            PrimOp::Add => "+",
            PrimOp::Sub => "-",
            PrimOp::Mul => "*",
            PrimOp::Div => "/",
            PrimOp::Rem => "%",
            PrimOp::Lt => "<",
            PrimOp::Le => "<=",
            PrimOp::Gt => ">",
            PrimOp::Ge => ">=",
            PrimOp::Eq => "==",
            PrimOp::Ne => "!=",
            PrimOp::And => "&&",
            PrimOp::Or => "||",
            PrimOp::Not => "!",
            PrimOp::Neg => "neg",
            PrimOp::Abs => "abs",
            PrimOp::Sqrt => "sqrt",
            PrimOp::Exp => "exp",
            PrimOp::Ln => "ln",
            PrimOp::Min => "min",
            PrimOp::Max => "max",
        };
        f.write_str(s)
    }
}

/// Commutative, associative reduction operators used by `reduce`-patterned
/// controllers and fold accumulators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ReduceOp {
    /// Summation (`{_+_}` in the paper's surface syntax).
    Add,
    /// Minimum.
    Min,
    /// Maximum.
    Max,
}

impl ReduceOp {
    /// Identity element of the reduction.
    pub fn identity(self) -> f64 {
        match self {
            ReduceOp::Add => 0.0,
            ReduceOp::Min => f64::INFINITY,
            ReduceOp::Max => f64::NEG_INFINITY,
        }
    }

    /// Apply the reduction to two values.
    #[inline]
    pub fn apply(self, a: f64, b: f64) -> f64 {
        match self {
            ReduceOp::Add => a + b,
            ReduceOp::Min => a.min(b),
            ReduceOp::Max => a.max(b),
        }
    }

    /// The primitive op that implements one combiner node of the tree.
    pub fn prim(self) -> PrimOp {
        match self {
            ReduceOp::Add => PrimOp::Add,
            ReduceOp::Min => PrimOp::Min,
            ReduceOp::Max => PrimOp::Max,
        }
    }
}

/// The parallel pattern a controller was generated from (§III-B3).
///
/// Nodes associated with `Map` are replicated and connected in parallel;
/// nodes associated with `Reduce` are replicated and connected as a balanced
/// tree.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Pattern {
    /// Independent parallel iterations.
    #[default]
    Map,
    /// Iterations combined through a balanced reduction tree.
    Reduce(ReduceOp),
}

/// One dimension of a counter chain: iterates `0, step, 2*step, ...` up to
/// (but excluding) `end`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CounterDim {
    /// Exclusive upper bound of the iterator.
    pub end: u64,
    /// Step between consecutive iterator values.
    pub step: u64,
}

impl CounterDim {
    /// Number of iterations of this dimension.
    pub fn trip_count(&self) -> u64 {
        if self.step == 0 {
            0
        } else {
            self.end.div_ceil(self.step)
        }
    }
}

/// Shorthand constructor for a counter dimension, mirroring the paper's
/// `end by step` syntax.
///
/// # Examples
///
/// ```
/// use dhdl_core::by;
/// let d = by(96, 1);
/// assert_eq!(d.trip_count(), 96);
/// ```
pub fn by(end: u64, step: u64) -> CounterDim {
    CounterDim { end, step }
}

/// A chain of counters producing loop iterators (the `Counter` template).
///
/// The chain is attached directly to the controller it drives; its vector
/// width equals the controller's parallelization factor.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default)]
pub struct CounterChain {
    /// Counter dimensions, outermost first.
    pub dims: Vec<CounterDim>,
}

impl CounterChain {
    /// A chain with no dimensions: the controller runs exactly once.
    pub fn unit() -> Self {
        CounterChain { dims: Vec::new() }
    }

    /// Build a chain from dimension descriptors.
    pub fn new(dims: &[CounterDim]) -> Self {
        CounterChain {
            dims: dims.to_vec(),
        }
    }

    /// Total number of iterations (product of per-dimension trip counts).
    pub fn total_iters(&self) -> u64 {
        self.dims.iter().map(CounterDim::trip_count).product()
    }

    /// Whether the chain is the trivial single-iteration chain.
    pub fn is_unit(&self) -> bool {
        self.dims.is_empty()
    }
}

/// How a banked memory maps addresses onto banks (Table I's
/// "interleaving scheme" parameter).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Interleaving {
    /// Address `a` lives in bank `a % banks` — consecutive elements land
    /// in different banks, serving unit-stride vector accesses. The
    /// automatic banking analysis picks this for parallel `Pipe` lanes.
    #[default]
    Cyclic,
    /// Address `a` lives in bank `a / (size / banks)` — contiguous blocks
    /// per bank, serving banked tile transfers.
    Blocked,
}

/// Configuration of an on-chip scratchpad (`BRAM` template).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct BramSpec {
    /// Logical dimensions in elements.
    pub dims: Vec<u64>,
    /// Whether the buffer is double-buffered (set by analysis for buffers
    /// that communicate between MetaPipe stages).
    pub double_buf: bool,
    /// Banking factor (set by the automatic banking analysis).
    pub banks: u32,
    /// Word width in bits of each physical port (defaults to element width).
    pub word_width: u32,
    /// Bank interleaving scheme (set by the automatic banking analysis).
    pub interleave: Interleaving,
}

impl BramSpec {
    /// Total number of logical elements.
    pub fn elements(&self) -> u64 {
        self.dims.iter().product()
    }
}

/// Configuration of a non-pipeline register (`Reg` template).
#[derive(Debug, Clone, PartialEq)]
pub struct RegSpec {
    /// Reset/initial value.
    pub init: f64,
    /// Whether the register is double-buffered.
    pub double_buf: bool,
}

/// Configuration of a hardware sorting queue (`Priority Queue` template).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct QueueSpec {
    /// Maximum number of entries.
    pub depth: u64,
    /// Whether the queue is double-buffered.
    pub double_buf: bool,
}

/// A register-accumulating reduction attached to a `Pipe` (reduce pattern).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct RegReduce {
    /// Body node producing the per-iteration value.
    pub value: NodeId,
    /// The accumulator register.
    pub reg: NodeId,
    /// Combining operator.
    pub op: ReduceOp,
}

/// A memory-accumulating fold attached to an outer controller, e.g.
/// `MetaPipe(n by 1, accum){ ... src }{_+_}` in Figure 4.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct MemFold {
    /// The buffer produced by the controller body each iteration.
    pub src: NodeId,
    /// The accumulator buffer, element-wise combined with `src`.
    pub accum: NodeId,
    /// Combining operator.
    pub op: ReduceOp,
}

/// Body and schedule of an innermost dataflow pipeline (`Pipe` template).
#[derive(Debug, Clone, PartialEq)]
pub struct PipeSpec {
    /// Counter chain producing the loop iterators.
    pub ctr: CounterChain,
    /// Parallelization factor (vector width of the body).
    pub par: u32,
    /// Parallel pattern the pipe was generated from.
    pub pattern: Pattern,
    /// Primitive body nodes in topological order.
    pub body: Vec<NodeId>,
    /// Optional register reduction (present iff `pattern` is `Reduce`).
    pub reduce: Option<RegReduce>,
}

/// Body of an outer controller (`MetaPipe` and `Sequential` templates).
#[derive(Debug, Clone, PartialEq)]
pub struct OuterSpec {
    /// Counter chain producing the loop iterators.
    pub ctr: CounterChain,
    /// Parallelization factor (number of concurrent loop bodies).
    pub par: u32,
    /// Parallel pattern the controller was generated from.
    pub pattern: Pattern,
    /// Child controllers executed as stages, in program order.
    pub stages: Vec<NodeId>,
    /// Memories declared in this controller's scope.
    pub locals: Vec<NodeId>,
    /// Optional element-wise fold of a stage-produced buffer into an
    /// accumulator buffer.
    pub fold: Option<MemFold>,
}

/// Off-chip tile transfer descriptor (`TileLd`/`TileSt` templates).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct TileSpec {
    /// The off-chip memory being accessed.
    pub offchip: NodeId,
    /// The on-chip buffer filled (TileLd) or drained (TileSt).
    pub local: NodeId,
    /// Offset value nodes, one per off-chip dimension (constants or
    /// enclosing-controller iterators).
    pub offsets: Vec<NodeId>,
    /// Tile extent per off-chip dimension, in elements.
    pub tile: Vec<u64>,
    /// Parallelization factor of the on-chip write/read port.
    pub par: u32,
}

impl TileSpec {
    /// Number of elements moved by one execution of the transfer.
    pub fn elements(&self) -> u64 {
        self.tile.iter().product()
    }
}

/// The template a node instantiates (Table I).
#[derive(Debug, Clone, PartialEq)]
pub enum NodeKind {
    /// A compile-time scalar constant.
    Const(f64),
    /// A primitive vector operation.
    Prim {
        /// Operation code.
        op: PrimOp,
        /// Operand nodes.
        inputs: Vec<NodeId>,
    },
    /// A 2:1 multiplexer.
    Mux {
        /// Select input (boolean).
        sel: NodeId,
        /// Value produced when `sel` is true.
        if_true: NodeId,
        /// Value produced when `sel` is false.
        if_false: NodeId,
    },
    /// Load from an on-chip memory.
    Load {
        /// The memory node (Bram, Reg or PriorityQueue).
        mem: NodeId,
        /// Address nodes, one per memory dimension (empty for Reg).
        addr: Vec<NodeId>,
    },
    /// Store to an on-chip memory.
    Store {
        /// The memory node.
        mem: NodeId,
        /// Address nodes, one per memory dimension (empty for Reg).
        addr: Vec<NodeId>,
        /// Value node.
        value: NodeId,
    },
    /// A loop iterator value produced by a controller's counter chain.
    Iter {
        /// The controller owning the counter chain.
        ctrl: NodeId,
        /// Which chain dimension this iterator reads.
        dim: usize,
    },
    /// An N-dimensional off-chip memory region (`OffChipMem`).
    OffChip {
        /// Dimensions in elements.
        dims: Vec<u64>,
    },
    /// On-chip scratchpad memory (`BRAM`).
    Bram(BramSpec),
    /// Non-pipeline register (`Reg`).
    Reg(RegSpec),
    /// Hardware sorting queue (`Priority Queue`).
    PriorityQueue(QueueSpec),
    /// Innermost dataflow pipeline of primitives (`Pipe`).
    Pipe(PipeSpec),
    /// Coarse-grained pipeline of controllers (`MetaPipe`).
    MetaPipe(OuterSpec),
    /// Unpipelined sequential execution of controllers (`Sequential`).
    Sequential(OuterSpec),
    /// Fork-join parallel container with a synchronizing barrier (`Parallel`).
    ParallelCtrl {
        /// Concurrent child controllers.
        stages: Vec<NodeId>,
        /// Memories declared in this scope.
        locals: Vec<NodeId>,
    },
    /// Load a tile of data from an off-chip array (`TileLd`).
    TileLoad(TileSpec),
    /// Store a tile of data to an off-chip array (`TileSt`).
    TileStore(TileSpec),
}

impl NodeKind {
    /// Whether the node is a controller (schedulable stage).
    pub fn is_controller(&self) -> bool {
        matches!(
            self,
            NodeKind::Pipe(_)
                | NodeKind::MetaPipe(_)
                | NodeKind::Sequential(_)
                | NodeKind::ParallelCtrl { .. }
                | NodeKind::TileLoad(_)
                | NodeKind::TileStore(_)
        )
    }

    /// Whether the node is an on-chip memory.
    pub fn is_onchip_mem(&self) -> bool {
        matches!(
            self,
            NodeKind::Bram(_) | NodeKind::Reg(_) | NodeKind::PriorityQueue(_)
        )
    }

    /// Whether the node is a primitive dataflow node (lives in Pipe bodies).
    pub fn is_primitive(&self) -> bool {
        matches!(
            self,
            NodeKind::Const(_)
                | NodeKind::Prim { .. }
                | NodeKind::Mux { .. }
                | NodeKind::Load { .. }
                | NodeKind::Store { .. }
        )
    }

    /// Short template name for diagnostics and codegen.
    pub fn template_name(&self) -> &'static str {
        match self {
            NodeKind::Const(_) => "Const",
            NodeKind::Prim { .. } => "Prim",
            NodeKind::Mux { .. } => "Mux",
            NodeKind::Load { .. } => "Ld",
            NodeKind::Store { .. } => "St",
            NodeKind::Iter { .. } => "Iter",
            NodeKind::OffChip { .. } => "OffChipMem",
            NodeKind::Bram(_) => "BRAM",
            NodeKind::Reg(_) => "Reg",
            NodeKind::PriorityQueue(_) => "PriorityQueue",
            NodeKind::Pipe(_) => "Pipe",
            NodeKind::MetaPipe(_) => "MetaPipe",
            NodeKind::Sequential(_) => "Sequential",
            NodeKind::ParallelCtrl { .. } => "Parallel",
            NodeKind::TileLoad(_) => "TileLd",
            NodeKind::TileStore(_) => "TileSt",
        }
    }
}

/// A node of the DHDL graph: a template instance plus its element type,
/// vector width and optional debug name.
#[derive(Debug, Clone, PartialEq)]
pub struct Node {
    /// The template this node instantiates.
    pub kind: NodeKind,
    /// Element type of the value produced/stored.
    pub ty: DType,
    /// Vector width of the node (primitives) — scalar operations have
    /// width 1 (§III-B1).
    pub width: u32,
    /// Optional debug name.
    pub name: Option<String>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_trip_counts() {
        assert_eq!(by(96, 1).trip_count(), 96);
        assert_eq!(by(100, 10).trip_count(), 10);
        assert_eq!(by(101, 10).trip_count(), 11);
        assert_eq!(by(5, 0).trip_count(), 0);
    }

    #[test]
    fn chain_total() {
        let c = CounterChain::new(&[by(4, 1), by(6, 2)]);
        assert_eq!(c.total_iters(), 12);
        assert!(CounterChain::unit().is_unit());
        assert_eq!(CounterChain::unit().total_iters(), 1);
    }

    #[test]
    fn prim_arity() {
        assert_eq!(PrimOp::Add.arity(), 2);
        assert_eq!(PrimOp::Sqrt.arity(), 1);
        assert!(PrimOp::Exp.is_complex());
        assert!(!PrimOp::Add.is_complex());
        assert!(PrimOp::Lt.is_predicate());
    }

    #[test]
    fn reduce_identities() {
        assert_eq!(ReduceOp::Add.identity(), 0.0);
        assert_eq!(ReduceOp::Add.apply(2.0, 3.0), 5.0);
        assert_eq!(ReduceOp::Min.apply(2.0, 3.0), 2.0);
        assert_eq!(ReduceOp::Max.apply(2.0, 3.0), 3.0);
        assert_eq!(ReduceOp::Min.identity(), f64::INFINITY);
    }

    #[test]
    fn kind_classification() {
        let k = NodeKind::Const(1.0);
        assert!(k.is_primitive());
        assert!(!k.is_controller());
        let b = NodeKind::Bram(BramSpec {
            dims: vec![16],
            double_buf: false,
            banks: 1,
            word_width: 32,
            interleave: Interleaving::Cyclic,
        });
        assert!(b.is_onchip_mem());
        assert_eq!(b.template_name(), "BRAM");
    }

    #[test]
    fn all_prim_ops_have_consistent_arity() {
        for &op in PrimOp::all() {
            assert!(op.arity() == 1 || op.arity() == 2, "{op}");
        }
    }
}
