//! The [`Design`]: an arena-allocated, hierarchical dataflow graph.

use std::fmt;

use crate::error::{DhdlError, Result};
use crate::node::{Node, NodeId, NodeKind};
use crate::types::DType;

/// A complete DHDL design instance: a hierarchical dataflow graph with one
/// root controller and a set of off-chip memory declarations.
///
/// A `Design` is produced by a [`crate::DesignBuilder`] metaprogram for a
/// concrete set of parameter values; different parameter values produce
/// different `Design` instances from the same source (§III).
#[derive(Debug, Clone, PartialEq)]
pub struct Design {
    name: String,
    nodes: Vec<Node>,
    top: NodeId,
    offchips: Vec<NodeId>,
}

impl Design {
    pub(crate) fn from_parts(
        name: String,
        nodes: Vec<Node>,
        top: NodeId,
        offchips: Vec<NodeId>,
    ) -> Self {
        Design {
            name,
            nodes,
            top,
            offchips,
        }
    }

    /// The design's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The root controller node.
    pub fn top(&self) -> NodeId {
        self.top
    }

    /// Off-chip memories declared by the design, in declaration order.
    pub fn offchips(&self) -> &[NodeId] {
        &self.offchips
    }

    /// Number of nodes in the arena.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the design has no nodes (never true for built designs).
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Access a node by id.
    ///
    /// # Panics
    ///
    /// Panics if `id` does not belong to this design.
    pub fn node(&self, id: NodeId) -> &Node {
        &self.nodes[id.index()]
    }

    /// Mutable access to a node, used by analysis passes that annotate the
    /// graph (banking, double-buffering).
    pub fn node_mut(&mut self, id: NodeId) -> &mut Node {
        &mut self.nodes[id.index()]
    }

    /// The template kind of a node.
    pub fn kind(&self, id: NodeId) -> &NodeKind {
        &self.node(id).kind
    }

    /// The element type of a node.
    pub fn ty(&self, id: NodeId) -> DType {
        self.node(id).ty
    }

    /// Iterate over all `(id, node)` pairs in creation order.
    pub fn iter(&self) -> impl Iterator<Item = (NodeId, &Node)> {
        self.nodes
            .iter()
            .enumerate()
            .map(|(i, n)| (NodeId::from_raw(i as u32), n))
    }

    /// Ids of all nodes matching a predicate.
    pub fn find_all(&self, mut pred: impl FnMut(&Node) -> bool) -> Vec<NodeId> {
        self.iter()
            .filter(|(_, n)| pred(n))
            .map(|(id, _)| id)
            .collect()
    }

    /// Look up an off-chip memory by name.
    ///
    /// # Errors
    ///
    /// Returns [`DhdlError::InvalidReference`] if no off-chip memory has the
    /// given name.
    pub fn offchip_by_name(&self, name: &str) -> Result<NodeId> {
        self.offchips
            .iter()
            .copied()
            .find(|&id| self.node(id).name.as_deref() == Some(name))
            .ok_or_else(|| DhdlError::InvalidReference {
                node: self.top,
                reason: format!("no off-chip memory named `{name}`"),
            })
    }

    /// Direct child controllers (stages) of a controller node.
    ///
    /// Returns an empty slice for leaf controllers (`Pipe`, `TileLd`,
    /// `TileSt`) and non-controllers.
    pub fn stages(&self, id: NodeId) -> &[NodeId] {
        match &self.node(id).kind {
            NodeKind::MetaPipe(s) | NodeKind::Sequential(s) => &s.stages,
            NodeKind::ParallelCtrl { stages, .. } => stages,
            _ => &[],
        }
    }

    /// Memories declared in a controller's scope.
    pub fn locals(&self, id: NodeId) -> &[NodeId] {
        match &self.node(id).kind {
            NodeKind::MetaPipe(s) | NodeKind::Sequential(s) => &s.locals,
            NodeKind::ParallelCtrl { locals, .. } => locals,
            _ => &[],
        }
    }

    /// Walk the controller hierarchy depth-first (pre-order) starting at
    /// `root`, invoking `f` with `(depth, id)`.
    pub fn walk_controllers(&self, root: NodeId, f: &mut impl FnMut(usize, NodeId)) {
        fn rec(d: &Design, depth: usize, id: NodeId, f: &mut impl FnMut(usize, NodeId)) {
            f(depth, id);
            for &s in d.stages(id) {
                rec(d, depth + 1, s, f);
            }
        }
        rec(self, 0, root, f);
    }

    /// All controllers in the design in pre-order from the top.
    pub fn controllers(&self) -> Vec<NodeId> {
        let mut out = Vec::new();
        self.walk_controllers(self.top, &mut |_, id| out.push(id));
        out
    }

    /// Maximum controller nesting depth of the design.
    pub fn nesting_depth(&self) -> usize {
        let mut max = 0;
        self.walk_controllers(self.top, &mut |d, _| max = max.max(d));
        max + 1
    }

    /// All on-chip memories declared anywhere in the design.
    pub fn onchip_mems(&self) -> Vec<NodeId> {
        self.find_all(|n| n.kind.is_onchip_mem())
    }

    /// Value operand ids of a primitive body node (for dataflow traversal
    /// inside `Pipe` bodies). Memory references are *not* included; loop
    /// iterators and constants are.
    pub fn prim_inputs(&self, id: NodeId) -> Vec<NodeId> {
        match &self.node(id).kind {
            NodeKind::Prim { inputs, .. } => inputs.clone(),
            NodeKind::Mux {
                sel,
                if_true,
                if_false,
            } => vec![*sel, *if_true, *if_false],
            NodeKind::Load { addr, .. } => addr.clone(),
            NodeKind::Store { addr, value, .. } => {
                let mut v = addr.clone();
                v.push(*value);
                v
            }
            _ => Vec::new(),
        }
    }
}

impl fmt::Display for Design {
    /// Pretty-print the controller hierarchy, one line per controller.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "design {} ({} nodes)", self.name, self.len())?;
        let mut lines = Vec::new();
        self.walk_controllers(self.top, &mut |depth, id| {
            let n = self.node(id);
            let label = n.name.as_deref().unwrap_or("");
            lines.push(format!(
                "{}{} {} {}",
                "  ".repeat(depth + 1),
                n.kind.template_name(),
                id,
                label
            ));
        });
        for l in lines {
            writeln!(f, "{l}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use crate::builder::DesignBuilder;
    use crate::node::by;
    use crate::types::DType;

    #[test]
    fn walk_and_depth() {
        let mut b = DesignBuilder::new("t");
        let x = b.off_chip("x", DType::F32, &[64]);
        b.sequential(|b| {
            let t = b.bram("t", DType::F32, &[16]);
            b.meta_pipe(&[by(64, 16)], 1, |b, iters| {
                let i = iters[0];
                b.tile_load(x, t, &[i], &[16], 1);
            });
        });
        let d = b.finish().unwrap();
        assert_eq!(d.nesting_depth(), 3); // Sequential -> MetaPipe -> TileLd
        assert_eq!(d.controllers().len(), 3);
        assert_eq!(d.offchips().len(), 1);
        assert!(d.offchip_by_name("x").is_ok());
        assert!(d.offchip_by_name("nope").is_err());
        let s = d.to_string();
        assert!(s.contains("MetaPipe"));
        assert!(s.contains("TileLd"));
    }
}
