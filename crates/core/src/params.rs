//! Design parameters and parameter spaces.
//!
//! A DHDL program is a metaprogram: concrete parameter values are passed as
//! arguments to instantiate a design (§III). The paper's design space is
//! spanned by three kinds of parameters (§III-C): **tile sizes** controlling
//! on-chip buffer extents, **parallelization factors** controlling the
//! number of parallel iterations, and **MetaPipe toggles** controlling
//! whether an outer loop is implemented as a `Sequential` or a `MetaPipe`.

use std::collections::BTreeMap;
use std::fmt;

use crate::error::{DhdlError, Result};

/// The kind and legal range of one design parameter.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ParamKind {
    /// A tile size. Legal values are divisors of `divides` (the annotated
    /// data dimension), bounded by `min..=max` (§IV-C pruning heuristics).
    Tile {
        /// The data dimension the tile must divide.
        divides: u64,
        /// Minimum tile size considered.
        min: u64,
        /// Maximum tile size considered.
        max: u64,
    },
    /// A parallelization factor. Legal values are divisors of `divides`
    /// (the loop trip count) up to `max`.
    Par {
        /// The iteration count the factor must divide.
        divides: u64,
        /// Maximum factor considered.
        max: u64,
    },
    /// A MetaPipe toggle: 0 (Sequential) or 1 (MetaPipe).
    Toggle,
    /// A device-count parameter for multi-FPGA partitioning. Legal
    /// values are the powers of two `1..=max` (1 means single-chip).
    Devices {
        /// Maximum number of devices considered.
        max: u64,
    },
}

/// The conventional name of the device-count parameter a multi-FPGA
/// design space carries (see [`ParamSpace::devices`]).
pub const NUM_FPGAS: &str = "num_fpgas";

impl ParamKind {
    /// Enumerate the legal values of this parameter, applying the divisor
    /// pruning heuristics of §IV-C.
    pub fn legal_values(&self) -> Vec<u64> {
        match *self {
            ParamKind::Tile { divides, min, max } => divisors_in(divides, min, max),
            ParamKind::Par { divides, max } => divisors_in(divides, 1, max),
            ParamKind::Toggle => vec![0, 1],
            ParamKind::Devices { max } => {
                let mut out = vec![];
                let mut k = 1u64;
                while k <= max {
                    out.push(k);
                    k *= 2;
                }
                out
            }
        }
    }
}

fn divisors_in(n: u64, min: u64, max: u64) -> Vec<u64> {
    if n == 0 {
        return vec![];
    }
    let mut out: Vec<u64> = (1..=n)
        .take_while(|d| d * d <= n)
        .filter(|d| n.is_multiple_of(*d))
        .flat_map(|d| [d, n / d])
        .filter(|&d| d >= min && d <= max)
        .collect();
    out.sort_unstable();
    out.dedup();
    out
}

/// A named design parameter.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParamDef {
    /// Parameter name, unique within a [`ParamSpace`].
    pub name: String,
    /// Kind and legal range.
    pub kind: ParamKind,
}

/// The declared parameter space of a benchmark.
///
/// # Examples
///
/// ```
/// use dhdl_core::{ParamSpace, ParamValues};
///
/// let mut space = ParamSpace::new();
/// space.tile("ts", 96, 8, 96);
/// space.par("p", 16, 8);
/// space.toggle("mp");
/// assert_eq!(space.len(), 3);
/// let defaults = space.defaults();
/// assert!(space.is_legal(&defaults));
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct ParamSpace {
    defs: Vec<ParamDef>,
}

impl ParamSpace {
    /// An empty parameter space.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add a tile-size parameter dividing `divides`, in `min..=max`.
    pub fn tile(&mut self, name: &str, divides: u64, min: u64, max: u64) -> &mut Self {
        self.defs.push(ParamDef {
            name: name.to_string(),
            kind: ParamKind::Tile { divides, min, max },
        });
        self
    }

    /// Add a parallelization-factor parameter dividing `divides`, `<= max`.
    pub fn par(&mut self, name: &str, divides: u64, max: u64) -> &mut Self {
        self.defs.push(ParamDef {
            name: name.to_string(),
            kind: ParamKind::Par { divides, max },
        });
        self
    }

    /// Add a MetaPipe toggle parameter.
    pub fn toggle(&mut self, name: &str) -> &mut Self {
        self.defs.push(ParamDef {
            name: name.to_string(),
            kind: ParamKind::Toggle,
        });
        self
    }

    /// Add the device-count parameter [`NUM_FPGAS`] with up to `max`
    /// devices (legal values: powers of two `1..=max`).
    pub fn devices(&mut self, max: u64) -> &mut Self {
        self.defs.push(ParamDef {
            name: NUM_FPGAS.to_string(),
            kind: ParamKind::Devices { max },
        });
        self
    }

    /// The parameter definitions, in declaration order.
    pub fn defs(&self) -> &[ParamDef] {
        &self.defs
    }

    /// Number of parameters.
    pub fn len(&self) -> usize {
        self.defs.len()
    }

    /// Whether the space has no parameters.
    pub fn is_empty(&self) -> bool {
        self.defs.is_empty()
    }

    /// Total number of legal points (product of per-parameter counts).
    pub fn size(&self) -> u128 {
        self.defs
            .iter()
            .map(|d| d.kind.legal_values().len() as u128)
            .product()
    }

    /// A default (smallest-legal-value, toggles on) assignment.
    pub fn defaults(&self) -> ParamValues {
        let mut v = ParamValues::new();
        for d in &self.defs {
            let val = match &d.kind {
                ParamKind::Toggle => 1,
                k => *k.legal_values().first().unwrap_or(&1),
            };
            v.set(&d.name, val);
        }
        v
    }

    /// Whether `values` assigns a legal value to every parameter.
    pub fn is_legal(&self, values: &ParamValues) -> bool {
        self.defs.iter().all(|d| {
            values
                .get(&d.name)
                .is_some_and(|v| d.kind.legal_values().contains(&v))
        })
    }
}

/// A concrete assignment of values to parameters.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct ParamValues {
    map: BTreeMap<String, u64>,
}

impl ParamValues {
    /// An empty assignment.
    pub fn new() -> Self {
        Self::default()
    }

    /// Set a parameter value, returning `self` for chaining.
    pub fn set(&mut self, name: &str, value: u64) -> &mut Self {
        self.map.insert(name.to_string(), value);
        self
    }

    /// Builder-style `set`.
    pub fn with(mut self, name: &str, value: u64) -> Self {
        self.map.insert(name.to_string(), value);
        self
    }

    /// Get a parameter value if present.
    pub fn get(&self, name: &str) -> Option<u64> {
        self.map.get(name).copied()
    }

    /// Get a required tile-size/index parameter.
    ///
    /// # Errors
    ///
    /// Returns [`DhdlError::Parameter`] if the parameter is missing.
    pub fn dim(&self, name: &str) -> Result<u64> {
        self.get(name)
            .ok_or_else(|| DhdlError::Parameter(format!("missing parameter `{name}`")))
    }

    /// Get a required parallelization factor as `u32`.
    ///
    /// # Errors
    ///
    /// Returns [`DhdlError::Parameter`] if missing or zero.
    pub fn par(&self, name: &str) -> Result<u32> {
        let v = self.dim(name)?;
        if v == 0 || v > u64::from(u32::MAX) {
            return Err(DhdlError::Parameter(format!(
                "parallelization factor `{name}` = {v} out of range"
            )));
        }
        Ok(v as u32)
    }

    /// Get a required toggle as `bool`.
    ///
    /// # Errors
    ///
    /// Returns [`DhdlError::Parameter`] if the parameter is missing.
    pub fn toggle(&self, name: &str) -> Result<bool> {
        Ok(self.dim(name)? != 0)
    }

    /// Iterate over `(name, value)` pairs in name order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, u64)> {
        self.map.iter().map(|(k, &v)| (k.as_str(), v))
    }
}

impl fmt::Display for ParamValues {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let parts: Vec<String> = self.iter().map(|(k, v)| format!("{k}={v}")).collect();
        write!(f, "{{{}}}", parts.join(", "))
    }
}

impl FromIterator<(String, u64)> for ParamValues {
    fn from_iter<T: IntoIterator<Item = (String, u64)>>(iter: T) -> Self {
        ParamValues {
            map: iter.into_iter().collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn divisor_enumeration() {
        assert_eq!(
            divisors_in(96, 1, 96),
            vec![1, 2, 3, 4, 6, 8, 12, 16, 24, 32, 48, 96]
        );
        assert_eq!(divisors_in(96, 8, 48), vec![8, 12, 16, 24, 32, 48]);
        assert_eq!(divisors_in(7, 1, 7), vec![1, 7]);
        assert!(divisors_in(0, 1, 10).is_empty());
    }

    #[test]
    fn legal_values_by_kind() {
        let t = ParamKind::Tile {
            divides: 64,
            min: 4,
            max: 32,
        };
        assert_eq!(t.legal_values(), vec![4, 8, 16, 32]);
        let p = ParamKind::Par {
            divides: 12,
            max: 6,
        };
        assert_eq!(p.legal_values(), vec![1, 2, 3, 4, 6]);
        assert_eq!(ParamKind::Toggle.legal_values(), vec![0, 1]);
    }

    #[test]
    fn space_size_and_defaults() {
        let mut s = ParamSpace::new();
        s.tile("ts", 64, 4, 64).par("p", 16, 16).toggle("m");
        assert_eq!(s.size(), 5 * 5 * 2);
        let d = s.defaults();
        assert_eq!(d.get("ts"), Some(4));
        assert_eq!(d.get("m"), Some(1));
        assert!(s.is_legal(&d));
        let bad = ParamValues::new().with("ts", 5).with("p", 1).with("m", 0);
        assert!(!s.is_legal(&bad));
    }

    #[test]
    fn devices_legal_values_are_powers_of_two() {
        assert_eq!(ParamKind::Devices { max: 1 }.legal_values(), vec![1]);
        assert_eq!(ParamKind::Devices { max: 4 }.legal_values(), vec![1, 2, 4]);
        assert_eq!(
            ParamKind::Devices { max: 6 }.legal_values(),
            vec![1, 2, 4],
            "non-power-of-two maxima round down"
        );
        let mut s = ParamSpace::new();
        s.devices(8);
        assert_eq!(s.defs()[0].name, NUM_FPGAS);
        // Single-chip is the default: partitioning is strictly opt-in.
        assert_eq!(s.defaults().get(NUM_FPGAS), Some(1));
        assert!(s.is_legal(&s.defaults()));
    }

    #[test]
    fn value_accessors() {
        let v = ParamValues::new().with("a", 8).with("t", 0);
        assert_eq!(v.dim("a").unwrap(), 8);
        assert_eq!(v.par("a").unwrap(), 8);
        assert!(!v.toggle("t").unwrap());
        assert!(v.dim("missing").is_err());
        assert_eq!(v.to_string(), "{a=8, t=0}");
    }
}
