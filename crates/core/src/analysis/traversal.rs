//! Memory access-set and hierarchy queries shared by the other analyses,
//! the estimators and the simulator.

use std::collections::{BTreeMap, BTreeSet};

use crate::design::Design;
use crate::node::{NodeId, NodeKind};

/// The set of on-chip memories read (transitively) by a controller subtree.
pub fn mem_reads(design: &Design, ctrl: NodeId) -> BTreeSet<NodeId> {
    let mut out = BTreeSet::new();
    collect(design, ctrl, &mut out, &mut BTreeSet::new());
    out
}

/// The set of on-chip memories written (transitively) by a controller
/// subtree.
pub fn mem_writes(design: &Design, ctrl: NodeId) -> BTreeSet<NodeId> {
    let mut out = BTreeSet::new();
    collect(design, ctrl, &mut BTreeSet::new(), &mut out);
    out
}

/// Both access sets in one traversal: `(reads, writes)`.
pub fn mem_accesses(design: &Design, ctrl: NodeId) -> (BTreeSet<NodeId>, BTreeSet<NodeId>) {
    let mut reads = BTreeSet::new();
    let mut writes = BTreeSet::new();
    collect(design, ctrl, &mut reads, &mut writes);
    (reads, writes)
}

fn collect(
    design: &Design,
    ctrl: NodeId,
    reads: &mut BTreeSet<NodeId>,
    writes: &mut BTreeSet<NodeId>,
) {
    match design.kind(ctrl) {
        NodeKind::Pipe(p) => {
            for &n in &p.body {
                match design.kind(n) {
                    NodeKind::Load { mem, .. } => {
                        reads.insert(*mem);
                    }
                    NodeKind::Store { mem, .. } => {
                        writes.insert(*mem);
                    }
                    _ => {}
                }
            }
            if let Some(r) = &p.reduce {
                writes.insert(r.reg);
                reads.insert(r.reg);
            }
        }
        NodeKind::MetaPipe(s) | NodeKind::Sequential(s) => {
            for &st in &s.stages {
                collect(design, st, reads, writes);
            }
            if let Some(f) = &s.fold {
                reads.insert(f.src);
                reads.insert(f.accum);
                writes.insert(f.accum);
            }
        }
        NodeKind::ParallelCtrl { stages, .. } => {
            for &st in stages {
                collect(design, st, reads, writes);
            }
        }
        NodeKind::TileLoad(t) => {
            writes.insert(t.local);
        }
        NodeKind::TileStore(t) => {
            reads.insert(t.local);
        }
        _ => {}
    }
}

/// Map from each controller to its parent controller (the top maps to
/// itself).
pub fn parent_map(design: &Design) -> BTreeMap<NodeId, NodeId> {
    let mut map = BTreeMap::new();
    map.insert(design.top(), design.top());
    design.walk_controllers(design.top(), &mut |_, id| {
        for &s in design.stages(id) {
            map.insert(s, id);
        }
    });
    map
}

/// Whether controller `anc` is `node` or one of its ancestors, given a
/// parent map from [`parent_map`].
pub fn is_ancestor(parents: &BTreeMap<NodeId, NodeId>, anc: NodeId, mut node: NodeId) -> bool {
    loop {
        if node == anc {
            return true;
        }
        match parents.get(&node) {
            Some(&p) if p != node => node = p,
            _ => return false,
        }
    }
}

/// All `Pipe`/`TileLd`/`TileSt` accessors of each on-chip memory, with
/// their parallelization factors. Used by banking and by the off-chip
/// contention model.
pub fn accessors(design: &Design) -> BTreeMap<NodeId, Vec<(NodeId, u32)>> {
    let mut out: BTreeMap<NodeId, Vec<(NodeId, u32)>> = BTreeMap::new();
    for ctrl in design.controllers() {
        match design.kind(ctrl) {
            NodeKind::Pipe(p) => {
                let (reads, writes) = mem_accesses(design, ctrl);
                for m in reads.union(&writes) {
                    out.entry(*m).or_default().push((ctrl, p.par));
                }
            }
            NodeKind::TileLoad(t) | NodeKind::TileStore(t) => {
                out.entry(t.local).or_default().push((ctrl, t.par));
            }
            NodeKind::MetaPipe(s) | NodeKind::Sequential(s) => {
                if let Some(f) = &s.fold {
                    out.entry(f.src).or_default().push((ctrl, s.par));
                    out.entry(f.accum).or_default().push((ctrl, s.par));
                }
            }
            _ => {}
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::DesignBuilder;
    use crate::node::{by, ReduceOp};
    use crate::types::DType;

    fn sample() -> Design {
        let mut b = DesignBuilder::new("t");
        let x = b.off_chip("x", DType::F32, &[64]);
        b.sequential(|b| {
            let acc = b.reg("acc", DType::F32, 0.0);
            b.meta_pipe(&[by(64, 16)], 1, |b, iters| {
                let i = iters[0];
                let t = b.bram("t", DType::F32, &[16]);
                b.tile_load(x, t, &[i], &[16], 2);
                b.pipe_reduce(&[by(16, 1)], 4, acc, ReduceOp::Add, |b, it| {
                    b.load(t, &[it[0]])
                });
            });
        });
        b.finish().unwrap()
    }

    #[test]
    fn read_write_sets() {
        let d = sample();
        let top = d.top();
        let reads = mem_reads(&d, top);
        let writes = mem_writes(&d, top);
        // The tile BRAM is read by the pipe and written by the TileLd.
        let brams = d.find_all(|n| matches!(n.kind, NodeKind::Bram(_)));
        assert_eq!(brams.len(), 1);
        assert!(reads.contains(&brams[0]));
        assert!(writes.contains(&brams[0]));
        // The accumulator register is written (and read) by the reduce pipe.
        let regs = d.find_all(|n| matches!(n.kind, NodeKind::Reg(_)));
        assert!(writes.contains(&regs[0]));
    }

    #[test]
    fn accessor_pars() {
        let d = sample();
        let brams = d.find_all(|n| matches!(n.kind, NodeKind::Bram(_)));
        let acc = accessors(&d);
        let pars: Vec<u32> = acc[&brams[0]].iter().map(|&(_, p)| p).collect();
        assert!(pars.contains(&2)); // TileLd par
        assert!(pars.contains(&4)); // Pipe par
    }

    #[test]
    fn parent_and_ancestor() {
        let d = sample();
        let parents = parent_map(&d);
        let ctrls = d.controllers();
        // top is its own parent; every other controller reaches top.
        for c in &ctrls {
            assert!(is_ancestor(&parents, d.top(), *c));
        }
        let pipe = *ctrls.last().unwrap();
        assert!(!is_ancestor(&parents, pipe, d.top()));
    }
}
