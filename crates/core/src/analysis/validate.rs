//! Structural validation of finished designs.

use crate::analysis::traversal::{is_ancestor, parent_map};
use crate::design::Design;
use crate::error::{DhdlError, Result};
use crate::node::{NodeId, NodeKind, TileSpec};
use crate::types::DType;

/// Check structural legality of a design.
///
/// Verifies that:
/// * the top node is a controller;
/// * outer controllers have at least one stage (or a fold);
/// * loads/stores address memories with the right number of dimensions;
/// * tile transfers are dimensionally consistent and their offsets are
///   constants or in-scope loop iterators;
/// * mux selects are boolean;
/// * fold sources/accumulators are BRAMs of equal element count;
/// * parallelization factors are nonzero.
///
/// # Errors
///
/// Returns a [`DhdlError`] describing the first violation found.
pub fn check(design: &Design) -> Result<()> {
    if !design.kind(design.top()).is_controller() {
        return Err(DhdlError::Validation("top node is not a controller".into()));
    }
    let parents = parent_map(design);
    for ctrl in design.controllers() {
        match design.kind(ctrl) {
            NodeKind::Pipe(p) => {
                if p.par == 0 {
                    return Err(DhdlError::Validation(format!(
                        "Pipe {ctrl} has parallelization factor 0"
                    )));
                }
                if p.body.is_empty() {
                    return Err(DhdlError::Validation(format!("Pipe {ctrl} has empty body")));
                }
                for &n in &p.body {
                    check_primitive(design, &parents, ctrl, n)?;
                }
                if let Some(r) = &p.reduce {
                    if !matches!(design.kind(r.reg), NodeKind::Reg(_)) {
                        return Err(DhdlError::InvalidReference {
                            node: r.reg,
                            reason: "reduce accumulator must be a Reg".into(),
                        });
                    }
                }
            }
            NodeKind::MetaPipe(s) | NodeKind::Sequential(s) => {
                if s.par == 0 {
                    return Err(DhdlError::Validation(format!(
                        "controller {ctrl} has parallelization factor 0"
                    )));
                }
                if s.stages.is_empty() {
                    return Err(DhdlError::Validation(format!(
                        "outer controller {ctrl} has no stages"
                    )));
                }
                if let Some(f) = &s.fold {
                    check_fold(design, f.src, f.accum)?;
                }
            }
            NodeKind::ParallelCtrl { stages, .. } if stages.is_empty() => {
                return Err(DhdlError::Validation(format!(
                    "Parallel container {ctrl} has no stages"
                )));
            }
            NodeKind::TileLoad(t) | NodeKind::TileStore(t) => {
                check_tile(design, &parents, ctrl, t)?;
            }
            _ => {}
        }
    }
    Ok(())
}

fn check_fold(design: &Design, src: NodeId, accum: NodeId) -> Result<()> {
    match (design.kind(src), design.kind(accum)) {
        (NodeKind::Bram(a), NodeKind::Bram(b)) => {
            if a.elements() != b.elements() {
                return Err(DhdlError::Validation(format!(
                    "fold source {src} has {} elements but accumulator {accum} has {}",
                    a.elements(),
                    b.elements()
                )));
            }
            Ok(())
        }
        (NodeKind::Reg(_), NodeKind::Reg(_)) => Ok(()),
        _ => Err(DhdlError::InvalidReference {
            node: accum,
            reason: "fold source and accumulator must both be BRAMs or both Regs".into(),
        }),
    }
}

fn check_tile(
    design: &Design,
    parents: &std::collections::BTreeMap<NodeId, NodeId>,
    ctrl: NodeId,
    t: &TileSpec,
) -> Result<()> {
    let NodeKind::OffChip { dims } = design.kind(t.offchip) else {
        return Err(DhdlError::InvalidReference {
            node: t.offchip,
            reason: "tile transfer target is not an OffChipMem".into(),
        });
    };
    if t.offsets.len() != dims.len() || t.tile.len() != dims.len() {
        return Err(DhdlError::Validation(format!(
            "tile transfer {ctrl}: offsets/tile rank must match off-chip rank {}",
            dims.len()
        )));
    }
    if t.par == 0 {
        return Err(DhdlError::Validation(format!(
            "tile transfer {ctrl} has parallelization factor 0"
        )));
    }
    let NodeKind::Bram(local) = design.kind(t.local) else {
        return Err(DhdlError::InvalidReference {
            node: t.local,
            reason: "tile transfer local buffer must be a BRAM".into(),
        });
    };
    if t.elements() > local.elements() {
        return Err(DhdlError::Validation(format!(
            "tile transfer {ctrl} moves {} elements into a {}-element buffer",
            t.elements(),
            local.elements()
        )));
    }
    for &off in &t.offsets {
        match design.kind(off) {
            NodeKind::Const(_) => {}
            NodeKind::Iter { ctrl: owner, .. } => {
                if !is_ancestor(parents, *owner, ctrl) {
                    return Err(DhdlError::InvalidReference {
                        node: off,
                        reason: format!("iterator of {owner} is not in scope at {ctrl}"),
                    });
                }
            }
            _ => {
                return Err(DhdlError::InvalidReference {
                    node: off,
                    reason: "tile offsets must be constants or loop iterators".into(),
                })
            }
        }
    }
    Ok(())
}

fn check_primitive(
    design: &Design,
    parents: &std::collections::BTreeMap<NodeId, NodeId>,
    pipe: NodeId,
    n: NodeId,
) -> Result<()> {
    match design.kind(n) {
        NodeKind::Load { mem, addr } => check_addr(design, *mem, addr),
        NodeKind::Store { mem, addr, .. } => check_addr(design, *mem, addr),
        NodeKind::Mux { sel, .. } => {
            if design.ty(*sel) != DType::Bool {
                return Err(DhdlError::Type(format!(
                    "mux {n} select must be bool, got {}",
                    design.ty(*sel)
                )));
            }
            Ok(())
        }
        NodeKind::Prim { inputs, op } => {
            for &i in inputs {
                if let NodeKind::Iter { ctrl: owner, .. } = design.kind(i) {
                    if !is_ancestor(parents, *owner, pipe) {
                        return Err(DhdlError::InvalidReference {
                            node: i,
                            reason: format!("iterator used by `{op}` is out of scope in {pipe}"),
                        });
                    }
                }
            }
            Ok(())
        }
        _ => Ok(()),
    }
}

fn check_addr(design: &Design, mem: NodeId, addr: &[NodeId]) -> Result<()> {
    let expected = match design.kind(mem) {
        NodeKind::Bram(b) => b.dims.len(),
        NodeKind::Reg(_) => 0,
        NodeKind::PriorityQueue(_) => 0,
        _ => {
            return Err(DhdlError::InvalidReference {
                node: mem,
                reason: "memory access target is not an on-chip memory".into(),
            })
        }
    };
    if addr.len() != expected {
        return Err(DhdlError::Validation(format!(
            "access to {mem} uses {} address dims, memory has {expected}",
            addr.len()
        )));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use crate::builder::DesignBuilder;
    use crate::error::DhdlError;
    use crate::node::by;
    use crate::types::DType;

    #[test]
    fn wrong_address_rank_rejected() {
        let mut b = DesignBuilder::new("bad");
        b.sequential(|b| {
            let m = b.bram("m", DType::F32, &[4, 4]);
            b.pipe(&[by(4, 1)], 1, |b, it| {
                let v = b.load(m, &[it[0]]); // rank 1 access to rank 2 memory
                b.store(m, &[it[0], it[0]], v);
            });
        });
        assert!(matches!(b.finish(), Err(DhdlError::Validation(_))));
    }

    #[test]
    fn tile_rank_mismatch_rejected() {
        let mut b = DesignBuilder::new("bad");
        let x = b.off_chip("x", DType::F32, &[8, 8]);
        b.sequential(|b| {
            let m = b.bram("m", DType::F32, &[8]);
            let z = b.index_const(0);
            b.tile_load(x, m, &[z], &[8], 1); // rank 1 offsets for rank 2 mem
        });
        assert!(matches!(b.finish(), Err(DhdlError::Validation(_))));
    }

    #[test]
    fn tile_overflow_rejected() {
        let mut b = DesignBuilder::new("bad");
        let x = b.off_chip("x", DType::F32, &[64]);
        b.sequential(|b| {
            let m = b.bram("m", DType::F32, &[8]);
            let z = b.index_const(0);
            b.tile_load(x, m, &[z], &[16], 1); // 16 elements into 8-slot BRAM
        });
        assert!(matches!(b.finish(), Err(DhdlError::Validation(_))));
    }

    #[test]
    fn out_of_scope_iterator_rejected() {
        let mut b = DesignBuilder::new("bad");
        let x = b.off_chip("x", DType::F32, &[64]);
        let mut leaked = None;
        b.sequential(|b| {
            b.meta_pipe(&[by(64, 16)], 1, |b, iters| {
                leaked = Some(iters[0]);
                let t = b.bram("t", DType::F32, &[16]);
                b.tile_load(x, t, &[iters[0]], &[16], 1);
            });
            // Use the leaked iterator outside its controller.
            let t2 = b.bram("t2", DType::F32, &[16]);
            b.tile_load(x, t2, &[leaked.unwrap()], &[16], 1);
        });
        // The leaked iterator's owner is a sibling, not an ancestor.
        assert!(matches!(
            b.finish(),
            Err(DhdlError::InvalidReference { .. })
        ));
    }
}
