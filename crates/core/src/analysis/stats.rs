//! Whole-design statistics, used as features by the hybrid area estimator
//! and for reporting.

use crate::design::Design;
use crate::node::NodeKind;

/// Summary statistics of a design instance.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct DesignStats {
    /// Total nodes in the arena.
    pub nodes: usize,
    /// Primitive dataflow nodes (including loads/stores/constants).
    pub primitives: usize,
    /// On-chip memories.
    pub memories: usize,
    /// Controllers of all kinds.
    pub controllers: usize,
    /// Off-chip tile transfers.
    pub transfers: usize,
    /// Maximum controller nesting depth.
    pub depth: usize,
    /// Dataflow edges between primitives.
    pub edges: usize,
    /// Sum of primitive vector widths (a proxy for replicated compute).
    pub total_width: u64,
    /// Total on-chip BRAM bits (logical, before banking/duplication).
    pub bram_bits: u64,
    /// Number of double-buffered memories.
    pub double_buffered: usize,
    /// Sum of BRAM banking factors.
    pub total_banks: u64,
}

impl DesignStats {
    /// Compute statistics for a design.
    pub fn of(design: &Design) -> Self {
        let mut s = DesignStats {
            nodes: design.len(),
            depth: design.nesting_depth(),
            ..Default::default()
        };
        for (id, node) in design.iter() {
            match &node.kind {
                k if k.is_primitive() => {
                    s.primitives += 1;
                    s.total_width += u64::from(node.width);
                    s.edges += design.prim_inputs(id).len();
                }
                NodeKind::Bram(b) => {
                    s.memories += 1;
                    s.bram_bits += b.elements() * u64::from(node.ty.bits());
                    s.total_banks += u64::from(b.banks);
                    if b.double_buf {
                        s.double_buffered += 1;
                    }
                }
                NodeKind::Reg(r) => {
                    s.memories += 1;
                    if r.double_buf {
                        s.double_buffered += 1;
                    }
                }
                NodeKind::PriorityQueue(q) => {
                    s.memories += 1;
                    if q.double_buf {
                        s.double_buffered += 1;
                    }
                }
                NodeKind::TileLoad(_) | NodeKind::TileStore(_) => {
                    s.transfers += 1;
                    s.controllers += 1;
                }
                k if k.is_controller() => s.controllers += 1,
                _ => {}
            }
        }
        s
    }

    /// Average vector width of primitives (1.0 for an empty design).
    pub fn avg_width(&self) -> f64 {
        if self.primitives == 0 {
            1.0
        } else {
            self.total_width as f64 / self.primitives as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::DesignBuilder;
    use crate::node::by;
    use crate::types::DType;

    #[test]
    fn stats_count_expected_shapes() {
        let mut b = DesignBuilder::new("t");
        let x = b.off_chip("x", DType::F32, &[64]);
        b.sequential(|b| {
            let t = b.bram("t", DType::F32, &[16]);
            let z = b.index_const(0);
            b.tile_load(x, t, &[z], &[16], 1);
            b.pipe(&[by(16, 1)], 2, |b, it| {
                let v = b.load(t, &[it[0]]);
                let w = b.mul(v, v);
                b.store(t, &[it[0]], w);
            });
        });
        let d = b.finish().unwrap();
        let s = DesignStats::of(&d);
        assert_eq!(s.memories, 1);
        assert_eq!(s.transfers, 1);
        assert_eq!(s.controllers, 3); // Sequential, TileLd, Pipe
        assert_eq!(s.bram_bits, 16 * 32);
        assert!(s.primitives >= 3);
        assert!(s.avg_width() > 1.0); // pipe body is width 2
        assert_eq!(s.depth, 2);
    }
}
