//! Analysis passes over finished designs.
//!
//! [`validate`] checks structural legality; [`banking`] computes BRAM
//! banking factors from access parallelism (§III-B2); [`double_buffer`]
//! converts MetaPipe inter-stage buffers to double buffers (§III-B3);
//! [`traversal`] provides memory access-set queries; [`stats`] computes
//! whole-design statistics used as estimator features.

pub mod banking;
pub mod double_buffer;
pub mod stats;
pub mod traversal;
pub mod validate;
