//! Automatic banking of on-chip memories.
//!
//! The banking factor for a BRAM node is calculated automatically using the
//! vector widths and access patterns of all the `Ld` and `St` nodes accessing
//! it, such that the required memory bandwidth can be met (§III-B2). This
//! eliminates banks as an independent design-space variable (§IV-C).

use crate::analysis::traversal::accessors;
use crate::design::Design;
use crate::node::{Interleaving, NodeKind};

/// Infer and set the banking factor and interleaving scheme of every BRAM
/// in the design.
///
/// Each BRAM's banking factor is the maximum access parallelism over all of
/// its accessors: `Pipe` accessors contribute their parallelization factor,
/// and tile transfers contribute their port parallelization factor. The
/// interleaving scheme is cyclic when parallel `Pipe` lanes touch the
/// memory (unit-stride vector access) and blocked when only tile transfers
/// do (streaming bursts).
pub fn infer(design: &mut Design) {
    let acc = accessors(design);
    let brams = design.find_all(|n| matches!(n.kind, NodeKind::Bram(_)));
    for bram in brams {
        let accs = acc.get(&bram);
        let banks = accs
            .map(|v| v.iter().map(|&(_, p)| p).max().unwrap_or(1))
            .unwrap_or(1)
            .max(1);
        let pipe_parallel = accs.is_some_and(|v| {
            v.iter()
                .any(|&(c, p)| p > 1 && matches!(design.kind(c), NodeKind::Pipe(_)))
        });
        let interleave = if pipe_parallel {
            Interleaving::Cyclic
        } else {
            Interleaving::Blocked
        };
        if let NodeKind::Bram(spec) = &mut design.node_mut(bram).kind {
            spec.banks = banks;
            spec.interleave = interleave;
        }
    }
}

#[cfg(test)]
mod tests {
    use crate::builder::DesignBuilder;
    use crate::node::{by, NodeKind, ReduceOp};
    use crate::types::DType;

    #[test]
    fn banks_match_max_parallelism() {
        let mut b = DesignBuilder::new("t");
        let x = b.off_chip("x", DType::F32, &[64]);
        b.sequential(|b| {
            let acc = b.reg("acc", DType::F32, 0.0);
            let t = b.bram("t", DType::F32, &[64]);
            let z = b.index_const(0);
            b.tile_load(x, t, &[z], &[64], 4);
            b.pipe_reduce(&[by(64, 1)], 8, acc, ReduceOp::Add, |b, it| {
                b.load(t, &[it[0]])
            });
        });
        let d = b.finish().unwrap();
        let bram = d.find_all(|n| matches!(n.kind, NodeKind::Bram(_)))[0];
        match d.kind(bram) {
            NodeKind::Bram(s) => {
                assert_eq!(s.banks, 8);
                // Parallel pipe lanes demand cyclic interleaving.
                assert_eq!(s.interleave, crate::node::Interleaving::Cyclic);
            }
            _ => unreachable!(),
        }
    }

    #[test]
    fn unaccessed_bram_has_one_bank() {
        let mut b = DesignBuilder::new("t");
        b.sequential(|b| {
            let _unused = b.bram("u", DType::F32, &[16]);
            let m = b.bram("m", DType::F32, &[16]);
            b.pipe(&[by(16, 1)], 1, |b, it| {
                let c = b.constant(0.0, DType::F32);
                b.store(m, &[it[0]], c);
            });
        });
        let d = b.finish().unwrap();
        for bram in d.find_all(|n| matches!(n.kind, NodeKind::Bram(_))) {
            if let NodeKind::Bram(s) = d.kind(bram) {
                assert_eq!(s.banks, 1);
            }
        }
    }
}
