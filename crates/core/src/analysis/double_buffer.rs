//! Double-buffering inference for MetaPipe inter-stage communication.
//!
//! "Communication buffers used in between stages are converted to double
//! buffers" (§III-B3). The MetaPipe toggle parameters thereby also control
//! whether the buffers internal to a controller are double-buffered
//! (§III-C): the same program built with `toggle = false` produces
//! `Sequential` controllers whose buffers stay single-buffered.

use crate::analysis::traversal::mem_accesses;
use crate::design::Design;
use crate::node::{NodeId, NodeKind};

/// Infer and set the `double_buf` flag on memories that communicate between
/// MetaPipe stages (including fold sources and accumulators).
pub fn infer(design: &mut Design) {
    let mut to_mark: Vec<NodeId> = Vec::new();
    for ctrl in design.controllers() {
        let NodeKind::MetaPipe(spec) = design.kind(ctrl) else {
            continue;
        };
        // Per-stage access sets, in stage order.
        let stage_accesses: Vec<_> = spec
            .stages
            .iter()
            .map(|&s| mem_accesses(design, s))
            .collect();
        for &mem in &spec.locals {
            let writers: Vec<usize> = stage_accesses
                .iter()
                .enumerate()
                .filter(|(_, (_, w))| w.contains(&mem))
                .map(|(i, _)| i)
                .collect();
            let readers: Vec<usize> = stage_accesses
                .iter()
                .enumerate()
                .filter(|(_, (r, _))| r.contains(&mem))
                .map(|(i, _)| i)
                .collect();
            // A buffer written in one stage and read in a later stage holds
            // live data across the stage boundary of a pipelined controller,
            // so it must be double-buffered.
            let crosses = writers.iter().any(|&w| readers.iter().any(|&r| r > w));
            if crosses {
                to_mark.push(mem);
            }
        }
        // The fold source buffer is produced by the body while the previous
        // iteration's value is still being accumulated.
        if let Some(f) = &spec.fold {
            to_mark.push(f.src);
            to_mark.push(f.accum);
        }
    }
    for mem in to_mark {
        match &mut design.node_mut(mem).kind {
            NodeKind::Bram(s) => s.double_buf = true,
            NodeKind::Reg(s) => s.double_buf = true,
            NodeKind::PriorityQueue(s) => s.double_buf = true,
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use crate::builder::DesignBuilder;
    use crate::design::Design;
    use crate::node::{by, NodeKind, ReduceOp};
    use crate::types::DType;

    fn build(toggle: bool) -> Design {
        let mut b = DesignBuilder::new("t");
        let x = b.off_chip("x", DType::F32, &[64]);
        let y = b.off_chip("y", DType::F32, &[64]);
        b.sequential(|b| {
            b.outer(toggle, &[by(64, 16)], 1, |b, iters| {
                let i = iters[0];
                let t = b.bram("t", DType::F32, &[16]);
                let o = b.bram("o", DType::F32, &[16]);
                b.tile_load(x, t, &[i], &[16], 1); // stage 0 writes t
                b.pipe(&[by(16, 1)], 1, |b, it| {
                    let v = b.load(t, &[it[0]]); // stage 1 reads t
                    let w = b.mul(v, v);
                    b.store(o, &[it[0]], w); // stage 1 writes o
                });
                b.tile_store(y, o, &[i], &[16], 1); // stage 2 reads o
            });
        });
        b.finish().unwrap()
    }

    fn double_buffered(d: &Design) -> Vec<bool> {
        d.find_all(|n| matches!(n.kind, NodeKind::Bram(_)))
            .iter()
            .map(|&id| match d.kind(id) {
                NodeKind::Bram(s) => s.double_buf,
                _ => unreachable!(),
            })
            .collect()
    }

    #[test]
    fn metapipe_buffers_are_double() {
        let d = build(true);
        assert!(double_buffered(&d).iter().all(|&x| x));
    }

    #[test]
    fn sequential_buffers_stay_single() {
        let d = build(false);
        assert!(double_buffered(&d).iter().all(|&x| !x));
    }

    #[test]
    fn fold_buffers_are_double() {
        let mut b = DesignBuilder::new("t");
        b.sequential(|b| {
            let acc = b.bram("acc", DType::F32, &[4]);
            b.outer_fold(true, &[by(8, 1)], 1, acc, ReduceOp::Add, |b, _| {
                let t = b.bram("t", DType::F32, &[4]);
                b.pipe(&[by(4, 1)], 1, |b, it| {
                    let c = b.constant(1.0, DType::F32);
                    b.store(t, &[it[0]], c);
                });
                t
            });
        });
        let d = b.finish().unwrap();
        assert!(double_buffered(&d).iter().all(|&x| x));
    }
}
