//! The DHDL embedded DSL: a scope-stack design builder.
//!
//! A benchmark is written as a Rust *metaprogram* over a [`DesignBuilder`]:
//! calling the metaprogram with concrete parameter values instantiates all
//! templates and yields a concrete [`Design`], exactly as DHDL programs are
//! instantiated from parameter arguments in the paper (§III).
//!
//! # Examples
//!
//! A tiled vector sum (compare Figure 4 of the paper):
//!
//! ```
//! use dhdl_core::{by, DType, DesignBuilder, ReduceOp};
//!
//! # fn main() -> dhdl_core::Result<()> {
//! let n = 1024;
//! let tile = 64;
//! let mut b = DesignBuilder::new("vecsum");
//! let v = b.off_chip("v", DType::F32, &[n]);
//! let out = b.off_chip("out", DType::F32, &[1]);
//! b.sequential(|b| {
//!     let acc = b.reg("acc", DType::F32, 0.0);
//!     b.meta_pipe(&[by(n, tile)], 1, |b, iters| {
//!         let i = iters[0];
//!         let vt = b.bram("vT", DType::F32, &[tile]);
//!         b.tile_load(v, vt, &[i], &[tile], 1);
//!         b.pipe_reduce(&[by(tile, 1)], 1, acc, ReduceOp::Add, |b, it| {
//!             b.load(vt, &[it[0]])
//!         });
//!     });
//!     let ot = b.bram("outT", DType::F32, &[1]);
//!     b.pipe(&[by(1, 1)], 1, |b, it| {
//!         let a = b.load_reg(acc);
//!         b.store(ot, &[it[0]], a);
//!     });
//!     let zero = b.index_const(0);
//!     b.tile_store(out, ot, &[zero], &[1], 1);
//! });
//! let design = b.finish()?;
//! assert_eq!(design.name(), "vecsum");
//! # Ok(())
//! # }
//! ```

use crate::analysis;
use crate::design::Design;
use crate::error::{DhdlError, Result};
use crate::node::{
    BramSpec, CounterChain, CounterDim, MemFold, Node, NodeId, NodeKind, OuterSpec, Pattern,
    PipeSpec, PrimOp, QueueSpec, ReduceOp, RegReduce, RegSpec, TileSpec,
};
use crate::types::DType;

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ScopeKind {
    Sequential,
    MetaPipe,
    Parallel,
    Pipe,
}

#[derive(Debug)]
struct Scope {
    kind: ScopeKind,
    ctr: CounterChain,
    par: u32,
    pattern: Pattern,
    stages: Vec<NodeId>,
    locals: Vec<NodeId>,
    body: Vec<NodeId>,
}

/// Builder for [`Design`]s; the DHDL embedded DSL.
///
/// Controller-creating methods take closures that receive the builder and
/// the loop iterator nodes of the new controller. Misuse (e.g. creating a
/// nested controller inside a `Pipe` body) is recorded and reported by
/// [`DesignBuilder::finish`], so the construction code itself stays free of
/// error plumbing.
#[derive(Debug)]
pub struct DesignBuilder {
    name: String,
    nodes: Vec<Node>,
    offchips: Vec<NodeId>,
    scopes: Vec<Scope>,
    root: Option<NodeId>,
    errors: Vec<DhdlError>,
}

impl DesignBuilder {
    /// Start building a design with the given name.
    pub fn new(name: impl Into<String>) -> Self {
        DesignBuilder {
            name: name.into(),
            nodes: Vec::new(),
            offchips: Vec::new(),
            scopes: Vec::new(),
            root: None,
            errors: Vec::new(),
        }
    }

    fn push_node(&mut self, node: Node) -> NodeId {
        let id = NodeId::from_raw(self.nodes.len() as u32);
        self.nodes.push(node);
        id
    }

    fn reserve(&mut self, name: Option<String>) -> NodeId {
        self.push_node(Node {
            kind: NodeKind::Const(0.0), // placeholder, overwritten on scope pop
            ty: DType::Bool,
            width: 1,
            name,
        })
    }

    fn error(&mut self, e: DhdlError) {
        self.errors.push(e);
    }

    /// Record `id` as a stage of the current scope (or as the design root).
    fn attach_stage(&mut self, id: NodeId) {
        match self.scopes.last_mut() {
            Some(s) if s.kind == ScopeKind::Pipe => {
                self.error(DhdlError::ScopeViolation(format!(
                    "controller {id} created inside a Pipe body"
                )));
            }
            Some(s) => s.stages.push(id),
            None => {
                if self.root.is_some() {
                    self.error(DhdlError::ScopeViolation(format!(
                        "second root controller {id}; a design has exactly one root"
                    )));
                } else {
                    self.root = Some(id);
                }
            }
        }
    }

    fn attach_local(&mut self, id: NodeId) {
        match self.scopes.last_mut() {
            Some(s) if s.kind == ScopeKind::Pipe => self.error(DhdlError::ScopeViolation(format!(
                "memory {id} declared inside a Pipe body"
            ))),
            Some(s) => s.locals.push(id),
            None => self.error(DhdlError::ScopeViolation(format!(
                "on-chip memory {id} declared outside any controller"
            ))),
        }
    }

    fn attach_body(&mut self, id: NodeId) {
        match self.scopes.last_mut() {
            Some(s) if s.kind == ScopeKind::Pipe => s.body.push(id),
            _ => self.error(DhdlError::ScopeViolation(format!(
                "primitive {id} created outside a Pipe body"
            ))),
        }
    }

    fn make_iters(&mut self, ctrl: NodeId, ndims: usize) -> Vec<NodeId> {
        (0..ndims)
            .map(|dim| {
                self.push_node(Node {
                    kind: NodeKind::Iter { ctrl, dim },
                    ty: DType::index(),
                    width: 1,
                    name: None,
                })
            })
            .collect()
    }

    // ------------------------------------------------------------------
    // Memories
    // ------------------------------------------------------------------

    /// Declare an N-dimensional off-chip memory region (`OffChipMem`).
    pub fn off_chip(&mut self, name: &str, ty: DType, dims: &[u64]) -> NodeId {
        let id = self.push_node(Node {
            kind: NodeKind::OffChip {
                dims: dims.to_vec(),
            },
            ty,
            width: 1,
            name: Some(name.to_string()),
        });
        self.offchips.push(id);
        id
    }

    /// Declare an on-chip scratchpad (`BRAM`) in the current scope.
    ///
    /// Banking and double-buffering are inferred automatically by analysis
    /// passes when the design is finished (§III-B2, §IV).
    pub fn bram(&mut self, name: &str, ty: DType, dims: &[u64]) -> NodeId {
        let id = self.push_node(Node {
            kind: NodeKind::Bram(BramSpec {
                dims: dims.to_vec(),
                double_buf: false,
                banks: 1,
                word_width: ty.bits(),
                interleave: Default::default(),
            }),
            ty,
            width: 1,
            name: Some(name.to_string()),
        });
        self.attach_local(id);
        id
    }

    /// Declare a non-pipeline register (`Reg`) in the current scope.
    pub fn reg(&mut self, name: &str, ty: DType, init: f64) -> NodeId {
        let id = self.push_node(Node {
            kind: NodeKind::Reg(RegSpec {
                init,
                double_buf: false,
            }),
            ty,
            width: 1,
            name: Some(name.to_string()),
        });
        self.attach_local(id);
        id
    }

    /// Declare a hardware priority queue in the current scope.
    pub fn priority_queue(&mut self, name: &str, ty: DType, depth: u64) -> NodeId {
        let id = self.push_node(Node {
            kind: NodeKind::PriorityQueue(QueueSpec {
                depth,
                double_buf: false,
            }),
            ty,
            width: 1,
            name: Some(name.to_string()),
        });
        self.attach_local(id);
        id
    }

    // ------------------------------------------------------------------
    // Controllers
    // ------------------------------------------------------------------

    fn outer_ctrl<R>(
        &mut self,
        kind: ScopeKind,
        ctrs: &[CounterDim],
        par: u32,
        pattern: Pattern,
        fold: Option<(NodeId, ReduceOp)>,
        f: impl FnOnce(&mut Self, &[NodeId]) -> R,
    ) -> (NodeId, R)
    where
        R: FoldSource,
    {
        let id = self.reserve(None);
        let iters = self.make_iters(id, ctrs.len());
        self.scopes.push(Scope {
            kind,
            ctr: CounterChain::new(ctrs),
            par,
            pattern,
            stages: Vec::new(),
            locals: Vec::new(),
            body: Vec::new(),
        });
        let ret = f(self, &iters);
        let scope = self.scopes.pop().expect("builder scope stack imbalance");
        let mem_fold = fold.map(|(accum, op)| MemFold {
            src: ret.fold_src().unwrap_or(accum),
            accum,
            op,
        });
        if fold.is_some() && ret.fold_src().is_none() {
            self.error(DhdlError::Validation(format!(
                "fold controller {id} body did not return a source buffer"
            )));
        }
        let spec = OuterSpec {
            ctr: scope.ctr,
            par: scope.par,
            pattern: scope.pattern,
            stages: scope.stages,
            locals: scope.locals,
            fold: mem_fold,
        };
        self.nodes[id.index()].kind = match kind {
            ScopeKind::Sequential => NodeKind::Sequential(spec),
            ScopeKind::MetaPipe => NodeKind::MetaPipe(spec),
            _ => unreachable!("outer_ctrl only builds Sequential/MetaPipe"),
        };
        self.attach_stage(id);
        (id, ret)
    }

    /// Create a `Sequential` controller with no loop (runs once).
    pub fn sequential(&mut self, f: impl FnOnce(&mut Self)) -> NodeId {
        self.sequential_ctr(&[], 1, |b, _| f(b))
    }

    /// Create a `Sequential` controller iterating over a counter chain.
    pub fn sequential_ctr(
        &mut self,
        ctrs: &[CounterDim],
        par: u32,
        f: impl FnOnce(&mut Self, &[NodeId]),
    ) -> NodeId {
        self.outer_ctrl(ScopeKind::Sequential, ctrs, par, Pattern::Map, None, f)
            .0
    }

    /// Create a `MetaPipe` (coarse-grained pipeline) controller.
    pub fn meta_pipe(
        &mut self,
        ctrs: &[CounterDim],
        par: u32,
        f: impl FnOnce(&mut Self, &[NodeId]),
    ) -> NodeId {
        self.outer_ctrl(ScopeKind::MetaPipe, ctrs, par, Pattern::Map, None, f)
            .0
    }

    /// Create an outer controller that is a `MetaPipe` when `toggle` is true
    /// and a `Sequential` otherwise — the *MetaPipe toggle* design parameter
    /// of §III-C.
    pub fn outer(
        &mut self,
        toggle: bool,
        ctrs: &[CounterDim],
        par: u32,
        f: impl FnOnce(&mut Self, &[NodeId]),
    ) -> NodeId {
        if toggle {
            self.meta_pipe(ctrs, par, f)
        } else {
            self.sequential_ctr(ctrs, par, f)
        }
    }

    /// Create an outer controller whose body produces a buffer that is
    /// element-wise folded into `accum` each iteration, mirroring the
    /// `MetaPipe(n by t, accum){ ... src }{_+_}` form of Figure 4.
    ///
    /// The closure must return the source buffer to fold.
    pub fn outer_fold(
        &mut self,
        toggle: bool,
        ctrs: &[CounterDim],
        par: u32,
        accum: NodeId,
        op: ReduceOp,
        f: impl FnOnce(&mut Self, &[NodeId]) -> NodeId,
    ) -> NodeId {
        let kind = if toggle {
            ScopeKind::MetaPipe
        } else {
            ScopeKind::Sequential
        };
        self.outer_ctrl(kind, ctrs, par, Pattern::Reduce(op), Some((accum, op)), f)
            .0
    }

    /// Create a fork-join `Parallel` container.
    pub fn parallel(&mut self, f: impl FnOnce(&mut Self)) -> NodeId {
        let id = self.reserve(None);
        self.scopes.push(Scope {
            kind: ScopeKind::Parallel,
            ctr: CounterChain::unit(),
            par: 1,
            pattern: Pattern::Map,
            stages: Vec::new(),
            locals: Vec::new(),
            body: Vec::new(),
        });
        f(self);
        let scope = self.scopes.pop().expect("builder scope stack imbalance");
        self.nodes[id.index()].kind = NodeKind::ParallelCtrl {
            stages: scope.stages,
            locals: scope.locals,
        };
        self.attach_stage(id);
        id
    }

    /// Create an innermost `Pipe` of primitive operations (map pattern).
    pub fn pipe(
        &mut self,
        ctrs: &[CounterDim],
        par: u32,
        f: impl FnOnce(&mut Self, &[NodeId]),
    ) -> NodeId {
        self.pipe_inner(ctrs, par, Pattern::Map, None, |b, it| {
            f(b, it);
            None
        })
    }

    /// Create an innermost `Pipe` with the reduce pattern, accumulating the
    /// closure's returned value into `reg` with `op`.
    pub fn pipe_reduce(
        &mut self,
        ctrs: &[CounterDim],
        par: u32,
        reg: NodeId,
        op: ReduceOp,
        f: impl FnOnce(&mut Self, &[NodeId]) -> NodeId,
    ) -> NodeId {
        self.pipe_inner(ctrs, par, Pattern::Reduce(op), Some((reg, op)), |b, it| {
            Some(f(b, it))
        })
    }

    fn pipe_inner(
        &mut self,
        ctrs: &[CounterDim],
        par: u32,
        pattern: Pattern,
        reduce_to: Option<(NodeId, ReduceOp)>,
        f: impl FnOnce(&mut Self, &[NodeId]) -> Option<NodeId>,
    ) -> NodeId {
        let id = self.reserve(None);
        let iters = self.make_iters(id, ctrs.len());
        self.scopes.push(Scope {
            kind: ScopeKind::Pipe,
            ctr: CounterChain::new(ctrs),
            par,
            pattern,
            stages: Vec::new(),
            locals: Vec::new(),
            body: Vec::new(),
        });
        let value = f(self, &iters);
        let scope = self.scopes.pop().expect("builder scope stack imbalance");
        let reduce = match (reduce_to, value) {
            (Some((reg, op)), Some(value)) => Some(RegReduce { value, reg, op }),
            (Some((reg, op)), None) => {
                self.error(DhdlError::Validation(format!(
                    "reduce pipe {id} body did not return a value"
                )));
                Some(RegReduce {
                    value: reg,
                    reg,
                    op,
                })
            }
            (None, _) => None,
        };
        self.nodes[id.index()].kind = NodeKind::Pipe(PipeSpec {
            ctr: scope.ctr,
            par: scope.par,
            pattern: scope.pattern,
            body: scope.body,
            reduce,
        });
        self.attach_stage(id);
        id
    }

    /// Create a `TileLd` transferring a tile of `offchip` into `local`.
    ///
    /// `offsets` holds one value node per off-chip dimension (constants or
    /// enclosing loop iterators); `tile` the extent per dimension.
    pub fn tile_load(
        &mut self,
        offchip: NodeId,
        local: NodeId,
        offsets: &[NodeId],
        tile: &[u64],
        par: u32,
    ) -> NodeId {
        self.tile_xfer(true, offchip, local, offsets, tile, par)
    }

    /// Create a `TileSt` transferring `local` into a tile of `offchip`.
    pub fn tile_store(
        &mut self,
        offchip: NodeId,
        local: NodeId,
        offsets: &[NodeId],
        tile: &[u64],
        par: u32,
    ) -> NodeId {
        self.tile_xfer(false, offchip, local, offsets, tile, par)
    }

    fn tile_xfer(
        &mut self,
        load: bool,
        offchip: NodeId,
        local: NodeId,
        offsets: &[NodeId],
        tile: &[u64],
        par: u32,
    ) -> NodeId {
        let ty = self.nodes[offchip.index()].ty;
        let spec = TileSpec {
            offchip,
            local,
            offsets: offsets.to_vec(),
            tile: tile.to_vec(),
            par,
        };
        let id = self.push_node(Node {
            kind: if load {
                NodeKind::TileLoad(spec)
            } else {
                NodeKind::TileStore(spec)
            },
            ty,
            width: par,
            name: None,
        });
        self.attach_stage(id);
        id
    }

    // ------------------------------------------------------------------
    // Primitives (Pipe bodies only)
    // ------------------------------------------------------------------

    /// A scalar constant of the given type, usable inside Pipe bodies.
    pub fn constant(&mut self, value: f64, ty: DType) -> NodeId {
        // Constants are context-free: usable as tile offsets outside pipes
        // too, so no body attachment.
        self.push_node(Node {
            kind: NodeKind::Const(value),
            ty,
            width: 1,
            name: None,
        })
    }

    /// An index-typed constant (for tile offsets and addresses).
    pub fn index_const(&mut self, value: u64) -> NodeId {
        self.constant(value as f64, DType::index())
    }

    fn promote(&self, inputs: &[NodeId]) -> DType {
        inputs
            .iter()
            .map(|&i| self.nodes[i.index()].ty)
            .max_by_key(|t| (t.is_float(), t.bits()))
            .unwrap_or(DType::F32)
    }

    /// Create a primitive operation node in the current Pipe body.
    pub fn prim(&mut self, op: PrimOp, inputs: &[NodeId]) -> NodeId {
        if inputs.len() != op.arity() {
            self.error(DhdlError::Type(format!(
                "{op} expects {} operands, got {}",
                op.arity(),
                inputs.len()
            )));
        }
        let ty = if op.is_predicate() {
            DType::Bool
        } else {
            self.promote(inputs)
        };
        let par = self.scopes.last().map_or(1, |s| s.par);
        let id = self.push_node(Node {
            kind: NodeKind::Prim {
                op,
                inputs: inputs.to_vec(),
            },
            ty,
            width: par,
            name: None,
        });
        self.attach_body(id);
        id
    }

    /// Addition.
    pub fn add(&mut self, a: NodeId, b: NodeId) -> NodeId {
        self.prim(PrimOp::Add, &[a, b])
    }

    /// Subtraction.
    pub fn sub(&mut self, a: NodeId, b: NodeId) -> NodeId {
        self.prim(PrimOp::Sub, &[a, b])
    }

    /// Multiplication.
    pub fn mul(&mut self, a: NodeId, b: NodeId) -> NodeId {
        self.prim(PrimOp::Mul, &[a, b])
    }

    /// Division.
    pub fn div(&mut self, a: NodeId, b: NodeId) -> NodeId {
        self.prim(PrimOp::Div, &[a, b])
    }

    /// Less-than comparison.
    pub fn lt(&mut self, a: NodeId, b: NodeId) -> NodeId {
        self.prim(PrimOp::Lt, &[a, b])
    }

    /// Less-or-equal comparison.
    pub fn le(&mut self, a: NodeId, b: NodeId) -> NodeId {
        self.prim(PrimOp::Le, &[a, b])
    }

    /// Greater-than comparison.
    pub fn gt(&mut self, a: NodeId, b: NodeId) -> NodeId {
        self.prim(PrimOp::Gt, &[a, b])
    }

    /// Equality comparison.
    pub fn eq(&mut self, a: NodeId, b: NodeId) -> NodeId {
        self.prim(PrimOp::Eq, &[a, b])
    }

    /// Logical and.
    pub fn and(&mut self, a: NodeId, b: NodeId) -> NodeId {
        self.prim(PrimOp::And, &[a, b])
    }

    /// Logical or.
    pub fn or(&mut self, a: NodeId, b: NodeId) -> NodeId {
        self.prim(PrimOp::Or, &[a, b])
    }

    /// Square root.
    pub fn sqrt(&mut self, a: NodeId) -> NodeId {
        self.prim(PrimOp::Sqrt, &[a])
    }

    /// Natural exponential.
    pub fn exp(&mut self, a: NodeId) -> NodeId {
        self.prim(PrimOp::Exp, &[a])
    }

    /// Natural logarithm.
    pub fn ln(&mut self, a: NodeId) -> NodeId {
        self.prim(PrimOp::Ln, &[a])
    }

    /// Absolute value.
    pub fn abs(&mut self, a: NodeId) -> NodeId {
        self.prim(PrimOp::Abs, &[a])
    }

    /// Arithmetic negation.
    pub fn neg(&mut self, a: NodeId) -> NodeId {
        self.prim(PrimOp::Neg, &[a])
    }

    /// Elementwise maximum.
    pub fn max(&mut self, a: NodeId, b: NodeId) -> NodeId {
        self.prim(PrimOp::Max, &[a, b])
    }

    /// Elementwise minimum.
    pub fn min(&mut self, a: NodeId, b: NodeId) -> NodeId {
        self.prim(PrimOp::Min, &[a, b])
    }

    /// 2:1 multiplexer: `sel ? if_true : if_false`.
    pub fn mux(&mut self, sel: NodeId, if_true: NodeId, if_false: NodeId) -> NodeId {
        let ty = self.promote(&[if_true, if_false]);
        let par = self.scopes.last().map_or(1, |s| s.par);
        let id = self.push_node(Node {
            kind: NodeKind::Mux {
                sel,
                if_true,
                if_false,
            },
            ty,
            width: par,
            name: None,
        });
        self.attach_body(id);
        id
    }

    /// Load an element of an on-chip memory (Pipe bodies only).
    pub fn load(&mut self, mem: NodeId, addr: &[NodeId]) -> NodeId {
        let ty = self.nodes[mem.index()].ty;
        if !self.nodes[mem.index()].kind.is_onchip_mem() {
            self.error(DhdlError::InvalidReference {
                node: mem,
                reason: "load target is not an on-chip memory".into(),
            });
        }
        let par = self.scopes.last().map_or(1, |s| s.par);
        let id = self.push_node(Node {
            kind: NodeKind::Load {
                mem,
                addr: addr.to_vec(),
            },
            ty,
            width: par,
            name: None,
        });
        self.attach_body(id);
        id
    }

    /// Read the current value of a register (Pipe bodies only).
    pub fn load_reg(&mut self, reg: NodeId) -> NodeId {
        self.load(reg, &[])
    }

    /// Store a value to an on-chip memory (Pipe bodies only).
    pub fn store(&mut self, mem: NodeId, addr: &[NodeId], value: NodeId) -> NodeId {
        if !self.nodes[mem.index()].kind.is_onchip_mem() {
            self.error(DhdlError::InvalidReference {
                node: mem,
                reason: "store target is not an on-chip memory".into(),
            });
        }
        let ty = self.nodes[mem.index()].ty;
        let par = self.scopes.last().map_or(1, |s| s.par);
        let id = self.push_node(Node {
            kind: NodeKind::Store {
                mem,
                addr: addr.to_vec(),
                value,
            },
            ty,
            width: par,
            name: None,
        });
        self.attach_body(id);
        id
    }

    /// Write a register (Pipe bodies only).
    pub fn store_reg(&mut self, reg: NodeId, value: NodeId) -> NodeId {
        self.store(reg, &[], value)
    }

    // ------------------------------------------------------------------
    // Finalization
    // ------------------------------------------------------------------

    /// Finish the design: check builder errors, run structural validation
    /// and the automatic banking and double-buffering analyses.
    ///
    /// # Errors
    ///
    /// Returns the first builder misuse error, or a validation error if the
    /// finished graph is structurally illegal.
    pub fn finish(mut self) -> Result<Design> {
        if let Some(e) = self.errors.into_iter().next() {
            return Err(e);
        }
        if !self.scopes.is_empty() {
            return Err(DhdlError::ScopeViolation(
                "builder finished with open scopes".into(),
            ));
        }
        let top = self
            .root
            .take()
            .ok_or_else(|| DhdlError::Validation("design has no root controller".into()))?;
        let mut design = Design::from_parts(self.name, self.nodes, top, self.offchips);
        analysis::validate::check(&design)?;
        analysis::banking::infer(&mut design);
        analysis::double_buffer::infer(&mut design);
        Ok(design)
    }
}

/// Internal trait letting `outer_ctrl` accept closures that return either
/// nothing or a fold-source buffer.
trait FoldSource {
    fn fold_src(&self) -> Option<NodeId>;
}

impl FoldSource for () {
    fn fold_src(&self) -> Option<NodeId> {
        None
    }
}

impl FoldSource for NodeId {
    fn fold_src(&self) -> Option<NodeId> {
        Some(*self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::node::by;

    #[test]
    fn empty_design_fails() {
        let b = DesignBuilder::new("empty");
        assert!(matches!(b.finish(), Err(DhdlError::Validation(_))));
    }

    #[test]
    fn controller_inside_pipe_rejected() {
        let mut b = DesignBuilder::new("bad");
        b.sequential(|b| {
            b.pipe(&[by(4, 1)], 1, |b, _| {
                b.parallel(|_| {});
            });
        });
        assert!(matches!(b.finish(), Err(DhdlError::ScopeViolation(_))));
    }

    #[test]
    fn memory_outside_controller_rejected() {
        let mut b = DesignBuilder::new("bad");
        b.bram("t", DType::F32, &[8]);
        b.sequential(|_| {});
        assert!(matches!(b.finish(), Err(DhdlError::ScopeViolation(_))));
    }

    #[test]
    fn two_roots_rejected() {
        let mut b = DesignBuilder::new("bad");
        b.sequential(|_| {});
        b.sequential(|_| {});
        assert!(matches!(b.finish(), Err(DhdlError::ScopeViolation(_))));
    }

    #[test]
    fn primitive_outside_pipe_rejected() {
        let mut b = DesignBuilder::new("bad");
        b.sequential(|b| {
            let c = b.index_const(1);
            b.prim(PrimOp::Add, &[c, c]);
        });
        assert!(matches!(b.finish(), Err(DhdlError::ScopeViolation(_))));
    }

    #[test]
    fn predicate_type_is_bool() {
        let mut b = DesignBuilder::new("t");
        b.sequential(|b| {
            let m = b.bram("m", DType::F32, &[4]);
            b.pipe(&[by(4, 1)], 1, |b, it| {
                let x = b.load(m, &[it[0]]);
                let c = b.lt(x, x);
                let z = b.constant(0.0, DType::F32);
                let v = b.mux(c, x, z);
                b.store(m, &[it[0]], v);
            });
        });
        let d = b.finish().unwrap();
        let preds = d.find_all(|n| matches!(n.kind, NodeKind::Prim { op: PrimOp::Lt, .. }));
        assert_eq!(preds.len(), 1);
        assert_eq!(d.ty(preds[0]), DType::Bool);
    }

    #[test]
    fn fold_requires_source() {
        let mut b = DesignBuilder::new("t");
        b.sequential(|b| {
            let acc = b.bram("acc", DType::F32, &[4]);
            // outer_fold used correctly
            b.outer_fold(true, &[by(8, 4)], 1, acc, ReduceOp::Add, |b, _| {
                let t = b.bram("t", DType::F32, &[4]);
                b.pipe(&[by(4, 1)], 1, |b, it| {
                    let c = b.constant(1.0, DType::F32);
                    b.store(t, &[it[0]], c);
                });
                t
            });
        });
        assert!(b.finish().is_ok());
    }

    #[test]
    fn wrong_arity_reported() {
        let mut b = DesignBuilder::new("t");
        b.sequential(|b| {
            b.pipe(&[by(4, 1)], 1, |b, _| {
                let c = b.constant(1.0, DType::F32);
                b.prim(PrimOp::Add, &[c]);
            });
        });
        assert!(matches!(b.finish(), Err(DhdlError::Type(_))));
    }
}
