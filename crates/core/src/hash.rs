//! Canonical structural hashing of designs.
//!
//! Two distinct design hashes exist in the workspace and they serve
//! different masters:
//!
//! * [`structural_hash`] (this module) — the *canonical* hash over the
//!   full node-level structure of a [`Design`], including every template
//!   parameter (tile sizes, loop bounds, parallelization factors,
//!   banking). Any two designs that could estimate differently hash
//!   differently. This is the key for estimate caches and for
//!   seed-driven fault schedules in `dhdl-dse`.
//! * `dhdl_synth::design_hash` — a deliberately *coarse* hash that
//!   models per-design place-and-route tool noise; it collapses many
//!   distinct design points onto one key and must stay that way (cached
//!   calibration artifacts under `results/` are keyed by its stream).
//!
//! Both are FNV-1a at heart; [`Fnv64`] is the shared primitive. The
//! byte stream consumed by [`structural_hash`] is part of the on-disk
//! cache format and of recorded fault schedules: it must never change
//! silently. `crates/core/tests/hash_stability.rs` pins golden values.

use std::fmt::{self, Write as _};

use crate::{Design, Node, NodeId};

/// Incremental 64-bit FNV-1a hasher.
///
/// Byte-oriented writes ([`Fnv64::write`]) implement textbook FNV-1a;
/// [`Fnv64::write_u64`] mixes a whole 64-bit word per round (the coarser
/// variant `dhdl_synth::design_hash` is built on). The two must not be
/// interleaved carelessly — they produce different streams by design.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Fnv64(u64);

/// FNV-1a 64-bit offset basis.
const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
/// FNV-1a 64-bit prime.
const FNV_PRIME: u64 = 0x1000_0000_01b3;

impl Fnv64 {
    /// A fresh hasher at the FNV-1a offset basis.
    pub fn new() -> Self {
        Fnv64(FNV_OFFSET)
    }

    /// Mix `bytes` one byte per round (textbook FNV-1a).
    pub fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(FNV_PRIME);
        }
    }

    /// Mix one 64-bit word per round.
    pub fn write_u64(&mut self, v: u64) {
        self.0 ^= v;
        self.0 = self.0.wrapping_mul(FNV_PRIME);
    }

    /// The current hash value.
    pub fn finish(&self) -> u64 {
        self.0
    }
}

impl Default for Fnv64 {
    fn default() -> Self {
        Fnv64::new()
    }
}

/// `write!` support so callers can hash `Debug`/`Display` output without
/// allocating intermediate strings.
impl fmt::Write for Fnv64 {
    fn write_str(&mut self, s: &str) -> fmt::Result {
        self.write(s.as_bytes());
        Ok(())
    }
}

/// The canonical structural hash of a design: FNV-1a over the design
/// name followed by the `Debug` rendering of every `(NodeId, Node)`
/// pair in arena order.
///
/// `Debug` formatting is deterministic and covers every field of every
/// template spec, so designs differing in *any* parameter — tile size,
/// loop bound, parallelization factor, memory geometry — key different
/// values. Collisions are those of a 64-bit hash: for a 75 000-point
/// sweep the birthday bound is ≈ 1.5e-10, which the estimate cache and
/// fault injector accept by design.
pub fn structural_hash(design: &Design) -> u64 {
    let mut h = Fnv64::new();
    h.write(design.name().as_bytes());
    for (id, node) in design.iter() {
        hash_node(&mut h, id, node);
    }
    h.finish()
}

/// Mix one `(NodeId, Node)` pair into `h` exactly as
/// `format!("{id:?}{node:?}")` would, without the allocation.
fn hash_node(h: &mut Fnv64, id: NodeId, node: &Node) {
    // Infallible: Fnv64's `fmt::Write` never errors.
    let _ = write!(h, "{id:?}{node:?}");
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{by, DType, DesignBuilder, ReduceOp};

    fn toy(name: &str, tile: u64, par: u32) -> Design {
        let mut b = DesignBuilder::new(name);
        let va = b.off_chip("a", DType::F32, &[4096]);
        let vb = b.off_chip("b", DType::F32, &[4096]);
        b.sequential(|b| {
            let acc = b.reg("acc", DType::F32, 0.0);
            b.meta_pipe(&[by(4096, tile)], 1, |b, iters| {
                let i = iters[0];
                let at = b.bram("aT", DType::F32, &[tile]);
                let bt = b.bram("bT", DType::F32, &[tile]);
                b.parallel(|b| {
                    b.tile_load(va, at, &[i], &[tile], par);
                    b.tile_load(vb, bt, &[i], &[tile], par);
                });
                b.pipe_reduce(&[by(tile, 1)], par, acc, ReduceOp::Add, |b, it| {
                    let x = b.load(at, &[it[0]]);
                    let y = b.load(bt, &[it[0]]);
                    b.mul(x, y)
                });
            });
        });
        b.finish().unwrap()
    }

    #[test]
    fn hash_matches_the_string_formulation() {
        // The no-alloc writer must produce exactly the bytes of
        // `format!("{id:?}{node:?}")` — the historical definition.
        let design = toy("fmt", 64, 4);
        let mut h: u64 = FNV_OFFSET;
        let mut mix = |bytes: &[u8]| {
            for &b in bytes {
                h ^= u64::from(b);
                h = h.wrapping_mul(FNV_PRIME);
            }
        };
        mix(design.name().as_bytes());
        for (id, node) in design.iter() {
            mix(format!("{id:?}{node:?}").as_bytes());
        }
        assert_eq!(structural_hash(&design), h);
    }

    #[test]
    fn params_change_the_hash() {
        let a = structural_hash(&toy("t", 64, 4));
        assert_eq!(a, structural_hash(&toy("t", 64, 4)));
        assert_ne!(a, structural_hash(&toy("t", 128, 4)));
        assert_ne!(a, structural_hash(&toy("t", 64, 8)));
        assert_ne!(a, structural_hash(&toy("u", 64, 4)));
    }

    #[test]
    fn fnv_word_and_byte_streams_are_independent() {
        // A multi-byte word mixes as one round, not one round per byte.
        let mut a = Fnv64::new();
        a.write(&0x0102u16.to_be_bytes());
        let mut b = Fnv64::new();
        b.write_u64(0x0102);
        assert_ne!(a.finish(), b.finish());
        assert_eq!(Fnv64::new().finish(), FNV_OFFSET);
    }
}
