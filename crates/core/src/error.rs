//! Error types for DHDL design construction and analysis.

use std::error::Error as StdError;
use std::fmt;

use crate::node::NodeId;

/// Error produced while building, validating, or analyzing a DHDL design.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DhdlError {
    /// A builder operation was used in a scope where it is not allowed
    /// (for example, creating a controller inside a `Pipe` body).
    ScopeViolation(String),
    /// A node reference was used in a context it does not fit
    /// (for example, storing to a node that is not a memory).
    InvalidReference {
        /// The offending node.
        node: NodeId,
        /// Human-readable explanation.
        reason: String,
    },
    /// Structural validation of a finished design failed.
    Validation(String),
    /// A required design parameter was missing or out of range.
    Parameter(String),
    /// Mismatched or unsupported data types.
    Type(String),
}

impl fmt::Display for DhdlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DhdlError::ScopeViolation(msg) => write!(f, "scope violation: {msg}"),
            DhdlError::InvalidReference { node, reason } => {
                write!(f, "invalid reference to node {node}: {reason}")
            }
            DhdlError::Validation(msg) => write!(f, "validation failed: {msg}"),
            DhdlError::Parameter(msg) => write!(f, "invalid parameter: {msg}"),
            DhdlError::Type(msg) => write!(f, "type error: {msg}"),
        }
    }
}

impl StdError for DhdlError {}

/// Convenience result alias used throughout the DHDL crates.
pub type Result<T> = std::result::Result<T, DhdlError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_nonempty() {
        let e = DhdlError::Validation("empty stage list".into());
        assert!(e.to_string().contains("empty stage list"));
        let e = DhdlError::InvalidReference {
            node: NodeId::from_raw(3),
            reason: "not a memory".into(),
        };
        assert!(e.to_string().contains("node %3"));
    }
}
