//! Graphviz (DOT) export of designs.
//!
//! Renders the controller hierarchy as nested clusters with memories and
//! dataflow edges — the visual form of the paper's Figure 3 — for
//! inspection with `dot -Tsvg`.

use std::fmt::Write as _;

use crate::design::Design;
use crate::node::{NodeId, NodeKind};

/// Render the design as a Graphviz `digraph`.
///
/// Controllers become nested clusters; memories are cylinders; primitive
/// dataflow inside `Pipe` bodies is drawn with solid edges and memory
/// accesses with dashed edges.
pub fn to_dot(design: &Design) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "digraph \"{}\" {{", design.name());
    let _ = writeln!(out, "  rankdir=TB; compound=true;");
    let _ = writeln!(out, "  node [fontsize=10, fontname=\"monospace\"];");
    for &off in design.offchips() {
        let _ = writeln!(
            out,
            "  n{} [label=\"{}\", shape=box3d];",
            off.index(),
            label(design, off)
        );
    }
    emit_ctrl(design, design.top(), &mut out, 1);
    // Dataflow edges for every pipe body.
    for (id, node) in design.iter() {
        if let NodeKind::Pipe(p) = &node.kind {
            for &n in &p.body {
                for inp in design.prim_inputs(n) {
                    if matches!(design.kind(inp), NodeKind::Const(_)) {
                        continue;
                    }
                    let _ = writeln!(out, "  n{} -> n{};", inp.index(), n.index());
                }
                match design.kind(n) {
                    NodeKind::Load { mem, .. } => {
                        let _ =
                            writeln!(out, "  n{} -> n{} [style=dashed];", mem.index(), n.index());
                    }
                    NodeKind::Store { mem, .. } => {
                        let _ =
                            writeln!(out, "  n{} -> n{} [style=dashed];", n.index(), mem.index());
                    }
                    _ => {}
                }
            }
            let _ = id;
        }
    }
    // Tile transfer edges.
    for (id, node) in design.iter() {
        if let NodeKind::TileLoad(t) = &node.kind {
            let _ = writeln!(
                out,
                "  n{} -> n{} [style=bold, label=\"tile\"];",
                t.offchip.index(),
                t.local.index()
            );
            let _ = id;
        } else if let NodeKind::TileStore(t) = &node.kind {
            let _ = writeln!(
                out,
                "  n{} -> n{} [style=bold, label=\"tile\"];",
                t.local.index(),
                t.offchip.index()
            );
        }
    }
    out.push_str("}\n");
    out
}

fn label(design: &Design, id: NodeId) -> String {
    let node = design.node(id);
    match node.name.as_deref() {
        Some(n) => format!("{} {}", node.kind.template_name(), n),
        None => format!("{} {}", node.kind.template_name(), id),
    }
}

fn emit_ctrl(design: &Design, ctrl: NodeId, out: &mut String, depth: usize) {
    let pad = "  ".repeat(depth);
    let _ = writeln!(out, "{pad}subgraph cluster_{} {{", ctrl.index());
    let _ = writeln!(out, "{pad}  label=\"{}\";", label(design, ctrl));
    // Anchor node so edges can target the cluster.
    let _ = writeln!(
        out,
        "{pad}  n{} [label=\"ctl\", shape=point];",
        ctrl.index()
    );
    for &m in design.locals(ctrl) {
        let _ = writeln!(
            out,
            "{pad}  n{} [label=\"{}\", shape=cylinder];",
            m.index(),
            label(design, m)
        );
    }
    match design.kind(ctrl) {
        NodeKind::Pipe(p) => {
            for &n in &p.body {
                let _ = writeln!(
                    out,
                    "{pad}  n{} [label=\"{}\", shape=ellipse];",
                    n.index(),
                    body_label(design, n)
                );
            }
        }
        _ => {
            for &s in design.stages(ctrl) {
                emit_ctrl(design, s, out, depth + 1);
            }
        }
    }
    let _ = writeln!(out, "{pad}}}");
}

fn body_label(design: &Design, n: NodeId) -> String {
    match design.kind(n) {
        NodeKind::Prim { op, .. } => op.to_string(),
        NodeKind::Mux { .. } => "mux".to_string(),
        NodeKind::Load { .. } => "ld".to_string(),
        NodeKind::Store { .. } => "st".to_string(),
        other => other.template_name().to_string(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::DesignBuilder;
    use crate::node::by;
    use crate::types::DType;

    fn sample() -> Design {
        let mut b = DesignBuilder::new("viz");
        let x = b.off_chip("x", DType::F32, &[64]);
        b.sequential(|b| {
            let t = b.bram("t", DType::F32, &[16]);
            b.meta_pipe(&[by(64, 16)], 1, |b, iters| {
                b.tile_load(x, t, &[iters[0]], &[16], 1);
                b.pipe(&[by(16, 1)], 1, |b, it| {
                    let v = b.load(t, &[it[0]]);
                    let w = b.mul(v, v);
                    b.store(t, &[it[0]], w);
                });
            });
        });
        b.finish().unwrap()
    }

    #[test]
    fn dot_is_structurally_sound() {
        let dot = to_dot(&sample());
        assert!(dot.starts_with("digraph"));
        assert_eq!(dot.matches('{').count(), dot.matches('}').count());
        assert!(dot.contains("subgraph cluster_"));
        assert!(dot.contains("shape=cylinder")); // the BRAM
        assert!(dot.contains("shape=box3d")); // the OffChipMem
        assert!(dot.contains("style=dashed")); // memory access edges
        assert!(dot.contains("label=\"tile\"")); // the TileLd edge
    }

    #[test]
    fn dot_names_every_controller() {
        let d = sample();
        let dot = to_dot(&d);
        for c in d.controllers() {
            assert!(dot.contains(&format!("cluster_{}", c.index())));
        }
    }
}
