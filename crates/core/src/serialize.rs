//! Textual serialization of design instances.
//!
//! A stable line-oriented format for persisting elaborated designs —
//! caching DSE winners, shipping designs between the estimator and
//! generator processes, or diffing design instances. Round-trips exactly:
//! `parse(print(d)) == d`.

use crate::design::Design;
use crate::error::{DhdlError, Result};
use crate::node::{
    BramSpec, CounterChain, CounterDim, Interleaving, MemFold, Node, NodeId, NodeKind, OuterSpec,
    Pattern, PipeSpec, PrimOp, QueueSpec, RegReduce, RegSpec, TileSpec,
};
use crate::types::DType;

/// Serialize a design to the textual format.
pub fn to_text(design: &Design) -> String {
    let mut out = String::new();
    out.push_str(&format!("dhdl v1 {}\n", escape(design.name())));
    out.push_str(&format!("top {}\n", design.top().index()));
    let offs: Vec<String> = design
        .offchips()
        .iter()
        .map(|o| o.index().to_string())
        .collect();
    out.push_str(&format!("offchips {}\n", offs.join(" ")));
    for (id, node) in design.iter() {
        out.push_str(&format!(
            "node {} ty={} w={} name={} {}\n",
            id.index(),
            node.ty,
            node.width,
            node.name.as_deref().map(escape).unwrap_or_default(),
            kind_text(&node.kind)
        ));
    }
    out
}

/// Parse a design from [`to_text`] output.
///
/// # Errors
///
/// Returns [`DhdlError::Validation`] describing the first malformed line.
pub fn from_text(text: &str) -> Result<Design> {
    let mut lines = text.lines();
    let header = lines.next().ok_or_else(|| bad("empty input"))?;
    let name = header
        .strip_prefix("dhdl v1 ")
        .ok_or_else(|| bad("bad header"))?;
    let top_line = lines.next().ok_or_else(|| bad("missing top"))?;
    let top = NodeId::from_raw(
        top_line
            .strip_prefix("top ")
            .ok_or_else(|| bad("bad top line"))?
            .parse::<u32>()
            .map_err(|e| bad(&e.to_string()))?,
    );
    let off_line = lines.next().ok_or_else(|| bad("missing offchips"))?;
    let offchips: Vec<NodeId> = off_line
        .strip_prefix("offchips")
        .ok_or_else(|| bad("bad offchips line"))?
        .split_whitespace()
        .map(|s| s.parse::<u32>().map(NodeId::from_raw))
        .collect::<std::result::Result<_, _>>()
        .map_err(|e| bad(&e.to_string()))?;
    let mut nodes: Vec<(u32, Node)> = Vec::new();
    for line in lines {
        if line.trim().is_empty() {
            continue;
        }
        let rest = line
            .strip_prefix("node ")
            .ok_or_else(|| bad(&format!("expected node line, got `{line}`")))?;
        let mut parts = Tok::new(rest);
        let id: u32 = parts.next()?.parse().map_err(|e| bad(&format!("{e}")))?;
        let ty = parse_ty(parts.kv("ty")?)?;
        let width: u32 = parts.kv("w")?.parse().map_err(|e| bad(&format!("{e}")))?;
        let name_raw = parts.kv("name")?;
        let name = if name_raw.is_empty() {
            None
        } else {
            Some(unescape(name_raw))
        };
        let kind = parse_kind(&mut parts)?;
        nodes.push((
            id,
            Node {
                kind,
                ty,
                width,
                name,
            },
        ));
    }
    nodes.sort_by_key(|(id, _)| *id);
    for (i, (id, _)) in nodes.iter().enumerate() {
        if *id as usize != i {
            return Err(bad(&format!("non-contiguous node id {id}")));
        }
    }
    let nodes = nodes.into_iter().map(|(_, n)| n).collect();
    Ok(Design::from_parts(unescape(name), nodes, top, offchips))
}

fn bad(msg: &str) -> DhdlError {
    DhdlError::Validation(format!("deserialize: {msg}"))
}

fn escape(s: &str) -> String {
    s.replace('\\', "\\\\")
        .replace(' ', "\\s")
        .replace('\n', "\\n")
}

fn unescape(s: &str) -> String {
    s.replace("\\n", "\n")
        .replace("\\s", " ")
        .replace("\\\\", "\\")
}

fn ids(v: &[NodeId]) -> String {
    v.iter()
        .map(|i| i.index().to_string())
        .collect::<Vec<_>>()
        .join(",")
}

fn dims_text(v: &[u64]) -> String {
    v.iter()
        .map(ToString::to_string)
        .collect::<Vec<_>>()
        .join(",")
}

fn ctr_text(c: &CounterChain) -> String {
    c.dims
        .iter()
        .map(|d| format!("{}x{}", d.end, d.step))
        .collect::<Vec<_>>()
        .join(",")
}

fn kind_text(kind: &NodeKind) -> String {
    match kind {
        NodeKind::Const(v) => format!("Const v={v:e}"),
        NodeKind::Prim { op, inputs } => format!("Prim op={op:?} in={}", ids(inputs)),
        NodeKind::Mux {
            sel,
            if_true,
            if_false,
        } => format!(
            "Mux sel={} t={} f={}",
            sel.index(),
            if_true.index(),
            if_false.index()
        ),
        NodeKind::Load { mem, addr } => format!("Load mem={} addr={}", mem.index(), ids(addr)),
        NodeKind::Store { mem, addr, value } => format!(
            "Store mem={} addr={} val={}",
            mem.index(),
            ids(addr),
            value.index()
        ),
        NodeKind::Iter { ctrl, dim } => format!("Iter ctrl={} dim={}", ctrl.index(), dim),
        NodeKind::OffChip { dims } => format!("OffChip dims={}", dims_text(dims)),
        NodeKind::Bram(b) => format!(
            "Bram dims={} db={} banks={} ww={} il={}",
            dims_text(&b.dims),
            u8::from(b.double_buf),
            b.banks,
            b.word_width,
            match b.interleave {
                Interleaving::Cyclic => "cyclic",
                Interleaving::Blocked => "blocked",
            }
        ),
        NodeKind::Reg(r) => format!("Reg init={:e} db={}", r.init, u8::from(r.double_buf)),
        NodeKind::PriorityQueue(q) => {
            format!("PQueue depth={} db={}", q.depth, u8::from(q.double_buf))
        }
        NodeKind::Pipe(p) => format!(
            "Pipe ctr={} par={} pat={} body={} red={}",
            ctr_text(&p.ctr),
            p.par,
            pattern_text(p.pattern),
            ids(&p.body),
            p.reduce
                .map(|r| format!("{}:{}:{:?}", r.value.index(), r.reg.index(), r.op))
                .unwrap_or_default()
        ),
        NodeKind::MetaPipe(s) => outer_text("MetaPipe", s),
        NodeKind::Sequential(s) => outer_text("Sequential", s),
        NodeKind::ParallelCtrl { stages, locals } => {
            format!("Parallel stages={} locals={}", ids(stages), ids(locals))
        }
        NodeKind::TileLoad(t) => tile_text("TileLoad", t),
        NodeKind::TileStore(t) => tile_text("TileStore", t),
    }
}

fn pattern_text(p: Pattern) -> String {
    match p {
        Pattern::Map => "map".to_string(),
        Pattern::Reduce(op) => format!("reduce-{op:?}"),
    }
}

fn outer_text(tag: &str, s: &OuterSpec) -> String {
    format!(
        "{tag} ctr={} par={} pat={} stages={} locals={} fold={}",
        ctr_text(&s.ctr),
        s.par,
        pattern_text(s.pattern),
        ids(&s.stages),
        ids(&s.locals),
        s.fold
            .map(|f| format!("{}:{}:{:?}", f.src.index(), f.accum.index(), f.op))
            .unwrap_or_default()
    )
}

fn tile_text(tag: &str, t: &TileSpec) -> String {
    format!(
        "{tag} off={} local={} offsets={} tile={} par={}",
        t.offchip.index(),
        t.local.index(),
        ids(&t.offsets),
        dims_text(&t.tile),
        t.par
    )
}

/// Whitespace tokenizer with `key=value` access.
struct Tok<'a> {
    parts: std::str::SplitWhitespace<'a>,
}

impl<'a> Tok<'a> {
    fn new(s: &'a str) -> Self {
        Tok {
            parts: s.split_whitespace(),
        }
    }

    fn next(&mut self) -> Result<&'a str> {
        self.parts
            .next()
            .ok_or_else(|| bad("unexpected end of line"))
    }

    fn kv(&mut self, key: &str) -> Result<&'a str> {
        let tok = self.next()?;
        tok.strip_prefix(key)
            .and_then(|r| r.strip_prefix('='))
            .ok_or_else(|| bad(&format!("expected `{key}=`, got `{tok}`")))
    }
}

fn parse_ty(s: &str) -> Result<DType> {
    match s {
        "f32" => Ok(DType::F32),
        "f64" => Ok(DType::F64),
        "bool" => Ok(DType::Bool),
        other => {
            let sign = other.starts_with('s');
            let rest = other
                .strip_prefix(if sign { "sfix" } else { "ufix" })
                .ok_or_else(|| bad(&format!("bad type `{other}`")))?;
            let (int, frac) = rest
                .split_once('.')
                .ok_or_else(|| bad(&format!("bad fixed type `{other}`")))?;
            Ok(DType::fixed(
                sign,
                int.parse().map_err(|e| bad(&format!("{e}")))?,
                frac.parse().map_err(|e| bad(&format!("{e}")))?,
            ))
        }
    }
}

fn parse_ids(s: &str) -> Result<Vec<NodeId>> {
    if s.is_empty() {
        return Ok(Vec::new());
    }
    s.split(',')
        .map(|p| {
            p.parse::<u32>()
                .map(NodeId::from_raw)
                .map_err(|e| bad(&format!("{e}")))
        })
        .collect()
}

fn parse_dims(s: &str) -> Result<Vec<u64>> {
    if s.is_empty() {
        return Ok(Vec::new());
    }
    s.split(',')
        .map(|p| p.parse::<u64>().map_err(|e| bad(&format!("{e}"))))
        .collect()
}

fn parse_ctr(s: &str) -> Result<CounterChain> {
    if s.is_empty() {
        return Ok(CounterChain::unit());
    }
    let dims = s
        .split(',')
        .map(|p| {
            let (end, step) = p
                .split_once('x')
                .ok_or_else(|| bad(&format!("bad counter `{p}`")))?;
            Ok(CounterDim {
                end: end.parse().map_err(|e| bad(&format!("{e}")))?,
                step: step.parse().map_err(|e| bad(&format!("{e}")))?,
            })
        })
        .collect::<Result<Vec<_>>>()?;
    Ok(CounterChain { dims })
}

fn parse_pattern(s: &str) -> Result<Pattern> {
    match s {
        "map" => Ok(Pattern::Map),
        other => {
            let op = other
                .strip_prefix("reduce-")
                .ok_or_else(|| bad(&format!("bad pattern `{other}`")))?;
            Ok(Pattern::Reduce(parse_reduce_op(op)?))
        }
    }
}

fn parse_reduce_op(s: &str) -> Result<crate::node::ReduceOp> {
    use crate::node::ReduceOp;
    match s {
        "Add" => Ok(ReduceOp::Add),
        "Min" => Ok(ReduceOp::Min),
        "Max" => Ok(ReduceOp::Max),
        other => Err(bad(&format!("bad reduce op `{other}`"))),
    }
}

fn parse_prim_op(s: &str) -> Result<PrimOp> {
    PrimOp::all()
        .iter()
        .copied()
        .find(|op| format!("{op:?}") == s)
        .ok_or_else(|| bad(&format!("bad prim op `{s}`")))
}

fn parse_triple(s: &str) -> Result<Option<(NodeId, NodeId, crate::node::ReduceOp)>> {
    if s.is_empty() {
        return Ok(None);
    }
    let mut it = s.split(':');
    let a: u32 = it
        .next()
        .ok_or_else(|| bad("bad fold"))?
        .parse()
        .map_err(|e| bad(&format!("{e}")))?;
    let b: u32 = it
        .next()
        .ok_or_else(|| bad("bad fold"))?
        .parse()
        .map_err(|e| bad(&format!("{e}")))?;
    let op = parse_reduce_op(it.next().ok_or_else(|| bad("bad fold"))?)?;
    Ok(Some((NodeId::from_raw(a), NodeId::from_raw(b), op)))
}

fn parse_kind(parts: &mut Tok<'_>) -> Result<NodeKind> {
    let tag = parts.next()?;
    match tag {
        "Const" => Ok(NodeKind::Const(
            parts.kv("v")?.parse().map_err(|e| bad(&format!("{e}")))?,
        )),
        "Prim" => {
            let op = parse_prim_op(parts.kv("op")?)?;
            let inputs = parse_ids(parts.kv("in")?)?;
            Ok(NodeKind::Prim { op, inputs })
        }
        "Mux" => Ok(NodeKind::Mux {
            sel: NodeId::from_raw(parts.kv("sel")?.parse().map_err(|e| bad(&format!("{e}")))?),
            if_true: NodeId::from_raw(parts.kv("t")?.parse().map_err(|e| bad(&format!("{e}")))?),
            if_false: NodeId::from_raw(parts.kv("f")?.parse().map_err(|e| bad(&format!("{e}")))?),
        }),
        "Load" => Ok(NodeKind::Load {
            mem: NodeId::from_raw(parts.kv("mem")?.parse().map_err(|e| bad(&format!("{e}")))?),
            addr: parse_ids(parts.kv("addr")?)?,
        }),
        "Store" => Ok(NodeKind::Store {
            mem: NodeId::from_raw(parts.kv("mem")?.parse().map_err(|e| bad(&format!("{e}")))?),
            addr: parse_ids(parts.kv("addr")?)?,
            value: NodeId::from_raw(parts.kv("val")?.parse().map_err(|e| bad(&format!("{e}")))?),
        }),
        "Iter" => Ok(NodeKind::Iter {
            ctrl: NodeId::from_raw(
                parts
                    .kv("ctrl")?
                    .parse()
                    .map_err(|e| bad(&format!("{e}")))?,
            ),
            dim: parts.kv("dim")?.parse().map_err(|e| bad(&format!("{e}")))?,
        }),
        "OffChip" => Ok(NodeKind::OffChip {
            dims: parse_dims(parts.kv("dims")?)?,
        }),
        "Bram" => Ok(NodeKind::Bram(BramSpec {
            dims: parse_dims(parts.kv("dims")?)?,
            double_buf: parts.kv("db")? == "1",
            banks: parts
                .kv("banks")?
                .parse()
                .map_err(|e| bad(&format!("{e}")))?,
            word_width: parts.kv("ww")?.parse().map_err(|e| bad(&format!("{e}")))?,
            interleave: match parts.kv("il")? {
                "cyclic" => Interleaving::Cyclic,
                "blocked" => Interleaving::Blocked,
                other => return Err(bad(&format!("bad interleave `{other}`"))),
            },
        })),
        "Reg" => Ok(NodeKind::Reg(RegSpec {
            init: parts
                .kv("init")?
                .parse()
                .map_err(|e| bad(&format!("{e}")))?,
            double_buf: parts.kv("db")? == "1",
        })),
        "PQueue" => Ok(NodeKind::PriorityQueue(QueueSpec {
            depth: parts
                .kv("depth")?
                .parse()
                .map_err(|e| bad(&format!("{e}")))?,
            double_buf: parts.kv("db")? == "1",
        })),
        "Pipe" => {
            let ctr = parse_ctr(parts.kv("ctr")?)?;
            let par = parts.kv("par")?.parse().map_err(|e| bad(&format!("{e}")))?;
            let pattern = parse_pattern(parts.kv("pat")?)?;
            let body = parse_ids(parts.kv("body")?)?;
            let reduce = parse_triple(parts.kv("red")?)?.map(|(value, reg, op)| RegReduce {
                value,
                reg,
                op,
            });
            Ok(NodeKind::Pipe(PipeSpec {
                ctr,
                par,
                pattern,
                body,
                reduce,
            }))
        }
        "MetaPipe" | "Sequential" => {
            let ctr = parse_ctr(parts.kv("ctr")?)?;
            let par = parts.kv("par")?.parse().map_err(|e| bad(&format!("{e}")))?;
            let pattern = parse_pattern(parts.kv("pat")?)?;
            let stages = parse_ids(parts.kv("stages")?)?;
            let locals = parse_ids(parts.kv("locals")?)?;
            let fold =
                parse_triple(parts.kv("fold")?)?.map(|(src, accum, op)| MemFold { src, accum, op });
            let spec = OuterSpec {
                ctr,
                par,
                pattern,
                stages,
                locals,
                fold,
            };
            Ok(if tag == "MetaPipe" {
                NodeKind::MetaPipe(spec)
            } else {
                NodeKind::Sequential(spec)
            })
        }
        "Parallel" => Ok(NodeKind::ParallelCtrl {
            stages: parse_ids(parts.kv("stages")?)?,
            locals: parse_ids(parts.kv("locals")?)?,
        }),
        "TileLoad" | "TileStore" => {
            let spec = TileSpec {
                offchip: NodeId::from_raw(
                    parts.kv("off")?.parse().map_err(|e| bad(&format!("{e}")))?,
                ),
                local: NodeId::from_raw(
                    parts
                        .kv("local")?
                        .parse()
                        .map_err(|e| bad(&format!("{e}")))?,
                ),
                offsets: parse_ids(parts.kv("offsets")?)?,
                tile: parse_dims(parts.kv("tile")?)?,
                par: parts.kv("par")?.parse().map_err(|e| bad(&format!("{e}")))?,
            };
            Ok(if tag == "TileLoad" {
                NodeKind::TileLoad(spec)
            } else {
                NodeKind::TileStore(spec)
            })
        }
        other => Err(bad(&format!("unknown node tag `{other}`"))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::DesignBuilder;
    use crate::node::{by, ReduceOp};

    fn sample() -> Design {
        let mut b = DesignBuilder::new("round trip");
        let x = b.off_chip("x", DType::F32, &[128]);
        let y = b.off_chip("y", DType::Bool, &[128]);
        b.sequential(|b| {
            let acc = b.reg("acc", DType::F32, 1.5);
            let q = b.priority_queue("q", DType::F32, 16);
            let _ = q;
            b.outer_fold(true, &[by(128, 32)], 2, acc, ReduceOp::Max, |b, iters| {
                let i = iters[0];
                let xt = b.bram("xT", DType::F32, &[32]);
                let yt = b.bram("yT", DType::Bool, &[32]);
                let partial = b.reg("p", DType::F32, 0.0);
                b.parallel(|b| {
                    b.tile_load(x, xt, &[i], &[32], 2);
                    b.tile_load(y, yt, &[i], &[32], 1);
                });
                b.pipe_reduce(&[by(32, 1)], 2, partial, ReduceOp::Max, |b, it| {
                    let v = b.load(xt, &[it[0]]);
                    let lbl = b.load(yt, &[it[0]]);
                    let z = b.constant(0.0, DType::F32);
                    b.mux(lbl, v, z)
                });
                partial
            });
        });
        b.finish().unwrap()
    }

    #[test]
    fn roundtrip_is_exact() {
        let d = sample();
        let text = to_text(&d);
        let back = from_text(&text).expect("parses");
        assert_eq!(d, back);
        // Second round trip is also stable.
        assert_eq!(to_text(&back), text);
    }

    #[test]
    fn names_with_spaces_survive() {
        let d = sample();
        let back = from_text(&to_text(&d)).unwrap();
        assert_eq!(back.name(), "round trip");
    }

    #[test]
    fn malformed_inputs_are_rejected() {
        assert!(from_text("").is_err());
        assert!(from_text("nope").is_err());
        assert!(from_text("dhdl v1 x\ntop 0\noffchips\nnode 0 garbage").is_err());
        let d = sample();
        let text = to_text(&d);
        // Drop a node: ids become non-contiguous.
        let broken: Vec<&str> = text.lines().filter(|l| !l.contains("node 3 ")).collect();
        assert!(from_text(&broken.join("\n")).is_err());
    }
}
