//! Scalar expression trees for pattern kernel bodies.
//!
//! A pattern's per-element function is a pure expression over the zipped
//! input elements. Expressions can be evaluated directly (the pattern
//! interpreter / reference semantics) or emitted into a DHDL `Pipe` body
//! during lowering.

use dhdl_core::{DType, DesignBuilder, NodeId, PrimOp};

/// A pure scalar expression over `In(i)` element inputs.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// The element of the i-th zipped input array.
    In(usize),
    /// A literal constant.
    Const(f64),
    /// Unary primitive.
    Un(PrimOp, Box<Expr>),
    /// Binary primitive.
    Bin(PrimOp, Box<Expr>, Box<Expr>),
    /// Select: `cond ? then : else`.
    Mux(Box<Expr>, Box<Expr>, Box<Expr>),
}

impl Expr {
    /// Input reference.
    pub fn input(i: usize) -> Expr {
        Expr::In(i)
    }

    /// Constant.
    pub fn lit(v: f64) -> Expr {
        Expr::Const(v)
    }

    /// Apply a unary primitive.
    pub fn un(op: PrimOp, a: Expr) -> Expr {
        Expr::Un(op, Box::new(a))
    }

    /// Apply a binary primitive.
    pub fn bin(op: PrimOp, a: Expr, b: Expr) -> Expr {
        Expr::Bin(op, Box::new(a), Box::new(b))
    }

    // These are plain constructors named after the PrimOps they wrap,
    // not operator implementations — they take both operands by value
    // and no `self`, so the `std::ops` traits do not apply.
    /// Addition.
    #[allow(clippy::should_implement_trait)]
    pub fn add(a: Expr, b: Expr) -> Expr {
        Expr::bin(PrimOp::Add, a, b)
    }

    /// Subtraction.
    #[allow(clippy::should_implement_trait)]
    pub fn sub(a: Expr, b: Expr) -> Expr {
        Expr::bin(PrimOp::Sub, a, b)
    }

    /// Multiplication.
    #[allow(clippy::should_implement_trait)]
    pub fn mul(a: Expr, b: Expr) -> Expr {
        Expr::bin(PrimOp::Mul, a, b)
    }

    /// Select.
    pub fn mux(c: Expr, t: Expr, f: Expr) -> Expr {
        Expr::Mux(Box::new(c), Box::new(t), Box::new(f))
    }

    /// Number of distinct inputs referenced (max index + 1).
    pub fn arity(&self) -> usize {
        match self {
            Expr::In(i) => i + 1,
            Expr::Const(_) => 0,
            Expr::Un(_, a) => a.arity(),
            Expr::Bin(_, a, b) => a.arity().max(b.arity()),
            Expr::Mux(c, t, f) => c.arity().max(t.arity()).max(f.arity()),
        }
    }

    /// Number of operation nodes in the expression.
    pub fn size(&self) -> usize {
        match self {
            Expr::In(_) | Expr::Const(_) => 0,
            Expr::Un(_, a) => 1 + a.size(),
            Expr::Bin(_, a, b) => 1 + a.size() + b.size(),
            Expr::Mux(c, t, f) => 1 + c.size() + t.size() + f.size(),
        }
    }

    /// Evaluate the expression over element values `x`, quantizing every
    /// intermediate to `ty` (matching the hardware datapath).
    ///
    /// # Panics
    ///
    /// Panics if the expression references an input beyond `x.len()`.
    pub fn eval(&self, x: &[f64], ty: DType) -> f64 {
        let v = match self {
            Expr::In(i) => x[*i],
            Expr::Const(c) => *c,
            Expr::Un(op, a) => apply(*op, a.eval(x, ty), 0.0),
            Expr::Bin(op, a, b) => apply(*op, a.eval(x, ty), b.eval(x, ty)),
            Expr::Mux(c, t, f) => {
                if c.eval(x, ty) != 0.0 {
                    t.eval(x, ty)
                } else {
                    f.eval(x, ty)
                }
            }
        };
        match self {
            // Predicates stay 0/1; everything else quantizes to the
            // element type.
            Expr::Bin(op, _, _) if op.is_predicate() => v,
            _ => ty.quantize(v),
        }
    }

    /// Substitute the `In(i)` leaves with the given expressions (used by
    /// fusion to inline a producer map into its consumer).
    pub fn substitute(&self, subs: &[Expr]) -> Expr {
        match self {
            Expr::In(i) => subs.get(*i).cloned().unwrap_or(Expr::In(*i)),
            Expr::Const(c) => Expr::Const(*c),
            Expr::Un(op, a) => Expr::un(*op, a.substitute(subs)),
            Expr::Bin(op, a, b) => Expr::bin(*op, a.substitute(subs), b.substitute(subs)),
            Expr::Mux(c, t, f) => {
                Expr::mux(c.substitute(subs), t.substitute(subs), f.substitute(subs))
            }
        }
    }

    /// Emit the expression into the current `Pipe` body; `inputs[i]` is
    /// the node holding the i-th zipped element.
    pub fn emit(&self, b: &mut DesignBuilder, inputs: &[NodeId], ty: DType) -> NodeId {
        match self {
            Expr::In(i) => inputs[*i],
            Expr::Const(c) => b.constant(*c, ty),
            Expr::Un(op, a) => {
                let av = a.emit(b, inputs, ty);
                b.prim(*op, &[av])
            }
            Expr::Bin(op, a, e) => {
                let av = a.emit(b, inputs, ty);
                let ev = e.emit(b, inputs, ty);
                b.prim(*op, &[av, ev])
            }
            Expr::Mux(c, t, f) => {
                let cv = c.emit(b, inputs, ty);
                let tv = t.emit(b, inputs, ty);
                let fv = f.emit(b, inputs, ty);
                b.mux(cv, tv, fv)
            }
        }
    }
}

fn apply(op: PrimOp, a: f64, b: f64) -> f64 {
    match op {
        PrimOp::Add => a + b,
        PrimOp::Sub => a - b,
        PrimOp::Mul => a * b,
        PrimOp::Div => a / b,
        PrimOp::Rem => a % b,
        PrimOp::Lt => f64::from(a < b),
        PrimOp::Le => f64::from(a <= b),
        PrimOp::Gt => f64::from(a > b),
        PrimOp::Ge => f64::from(a >= b),
        PrimOp::Eq => f64::from(a == b),
        PrimOp::Ne => f64::from(a != b),
        PrimOp::And => f64::from(a != 0.0 && b != 0.0),
        PrimOp::Or => f64::from(a != 0.0 || b != 0.0),
        PrimOp::Not => f64::from(a == 0.0),
        PrimOp::Neg => -a,
        PrimOp::Abs => a.abs(),
        PrimOp::Sqrt => a.sqrt(),
        PrimOp::Exp => a.exp(),
        PrimOp::Ln => a.ln(),
        PrimOp::Min => a.min(b),
        PrimOp::Max => a.max(b),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arity_and_size() {
        let e = Expr::add(Expr::mul(Expr::input(0), Expr::input(1)), Expr::lit(1.0));
        assert_eq!(e.arity(), 2);
        assert_eq!(e.size(), 2);
        assert_eq!(Expr::lit(3.0).arity(), 0);
    }

    #[test]
    fn eval_quantizes() {
        let e = Expr::mul(Expr::input(0), Expr::input(0));
        let x = 1.000000119; // not exactly representable squared
        let v = e.eval(&[x], DType::F32);
        assert_eq!(v, ((x as f32) * (x as f32)) as f64);
    }

    #[test]
    fn mux_and_predicates() {
        let e = Expr::mux(
            Expr::bin(PrimOp::Lt, Expr::input(0), Expr::lit(0.0)),
            Expr::un(PrimOp::Neg, Expr::input(0)),
            Expr::input(0),
        );
        assert_eq!(e.eval(&[-3.0], DType::F32), 3.0);
        assert_eq!(e.eval(&[4.0], DType::F32), 4.0);
    }

    #[test]
    fn substitution_inlines_producers() {
        // consumer: In(0) + 1; producer for In(0): In(2) * In(3)
        let consumer = Expr::add(Expr::input(0), Expr::lit(1.0));
        let fused = consumer.substitute(&[Expr::mul(Expr::input(2), Expr::input(3))]);
        assert_eq!(fused.eval(&[0.0, 0.0, 2.0, 5.0], DType::F32), 11.0);
        assert_eq!(fused.arity(), 4);
    }
}
