//! The parallel-pattern program IR.
//!
//! Programs are sequences of array-level parallel patterns over named
//! collections — the abstraction level of the paper's input languages
//! (OptiML/Delite, §I and §III-A): `map` (over any number of zipped
//! inputs), `reduce`, and `filterReduce` (the `filter` pattern fused with
//! its consuming reduction, as in TPC-H Q6).

use std::collections::BTreeMap;

use dhdl_core::{DType, ReduceOp};

use crate::expr::Expr;

/// Identifier of an array within a [`PatternProgram`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ArrayId(pub(crate) usize);

/// A named collection (lowered to an `OffChipMem` unless fused away).
#[derive(Debug, Clone, PartialEq)]
pub struct ArraySpec {
    /// Name (also the off-chip memory name after lowering).
    pub name: String,
    /// Element count.
    pub len: u64,
    /// Element type.
    pub ty: DType,
    /// Whether the array is a program input (bound externally).
    pub is_input: bool,
}

/// One parallel pattern.
#[derive(Debug, Clone, PartialEq)]
pub enum PatternOp {
    /// `out[i] = f(ins[0][i], ins[1][i], ...)` — an n-ary zipWith.
    Map {
        /// Zipped input arrays (equal lengths).
        ins: Vec<ArrayId>,
        /// Per-element function.
        f: Expr,
        /// Output array.
        out: ArrayId,
    },
    /// `out[0] = reduce(op, f(ins...[i]))`.
    Reduce {
        /// Zipped input arrays.
        ins: Vec<ArrayId>,
        /// Per-element function.
        f: Expr,
        /// Combining operator.
        op: ReduceOp,
        /// Length-1 output array.
        out: ArrayId,
    },
    /// `out[0] = reduce(op, f(ins...[i]) for i where cond(ins...[i]))` —
    /// a filter fused into its consuming reduction.
    FilterReduce {
        /// Zipped input arrays.
        ins: Vec<ArrayId>,
        /// Filter predicate.
        cond: Expr,
        /// Per-element value.
        f: Expr,
        /// Combining operator.
        op: ReduceOp,
        /// Length-1 output array.
        out: ArrayId,
    },
    /// `out[key(x)] = reduce(op, value(x))` over all elements — a groupBy
    /// fused with a per-group reduction (the pattern §II singles out as
    /// hard for trace-based tools). Keys are clamped into `[0, groups)`.
    GroupByReduce {
        /// Zipped input arrays.
        ins: Vec<ArrayId>,
        /// Group index expression.
        key: Expr,
        /// Per-element value expression.
        value: Expr,
        /// Combining operator.
        op: ReduceOp,
        /// Number of groups (output length).
        groups: u64,
        /// Length-`groups` output array.
        out: ArrayId,
    },
}

impl PatternOp {
    /// The output array of this op.
    pub fn out(&self) -> ArrayId {
        match self {
            PatternOp::Map { out, .. }
            | PatternOp::Reduce { out, .. }
            | PatternOp::FilterReduce { out, .. }
            | PatternOp::GroupByReduce { out, .. } => *out,
        }
    }

    /// The input arrays of this op.
    pub fn ins(&self) -> &[ArrayId] {
        match self {
            PatternOp::Map { ins, .. }
            | PatternOp::Reduce { ins, .. }
            | PatternOp::FilterReduce { ins, .. }
            | PatternOp::GroupByReduce { ins, .. } => ins,
        }
    }
}

/// A straight-line program of parallel patterns.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct PatternProgram {
    pub(crate) arrays: Vec<ArraySpec>,
    pub(crate) ops: Vec<PatternOp>,
}

impl PatternProgram {
    /// An empty program.
    pub fn new() -> Self {
        Self::default()
    }

    /// Declare an input array.
    pub fn input(&mut self, name: &str, len: u64, ty: DType) -> ArrayId {
        self.array(name, len, ty, true)
    }

    fn array(&mut self, name: &str, len: u64, ty: DType, is_input: bool) -> ArrayId {
        let id = ArrayId(self.arrays.len());
        self.arrays.push(ArraySpec {
            name: name.to_string(),
            len,
            ty,
            is_input,
        });
        id
    }

    /// Append an n-ary map producing a new array.
    ///
    /// # Panics
    ///
    /// Panics if `ins` is empty, input lengths differ, or `f` references
    /// more inputs than given.
    pub fn map(&mut self, name: &str, ins: &[ArrayId], f: Expr) -> ArrayId {
        let len = self.check_zip(ins, &f);
        let ty = self.arrays[ins[0].0].ty;
        let out = self.array(name, len, ty, false);
        self.ops.push(PatternOp::Map {
            ins: ins.to_vec(),
            f,
            out,
        });
        out
    }

    /// Append a reduction producing a length-1 array.
    ///
    /// # Panics
    ///
    /// Panics under the same conditions as [`PatternProgram::map`].
    pub fn reduce(&mut self, name: &str, ins: &[ArrayId], f: Expr, op: ReduceOp) -> ArrayId {
        self.check_zip(ins, &f);
        let ty = self.arrays[ins[0].0].ty;
        let out = self.array(name, 1, ty, false);
        self.ops.push(PatternOp::Reduce {
            ins: ins.to_vec(),
            f,
            op,
            out,
        });
        out
    }

    /// Append a filtered reduction producing a length-1 array.
    ///
    /// # Panics
    ///
    /// Panics under the same conditions as [`PatternProgram::map`].
    pub fn filter_reduce(
        &mut self,
        name: &str,
        ins: &[ArrayId],
        cond: Expr,
        f: Expr,
        op: ReduceOp,
    ) -> ArrayId {
        self.check_zip(ins, &f);
        assert!(
            cond.arity() <= ins.len(),
            "predicate references more inputs than given"
        );
        let ty = self.arrays[ins[0].0].ty;
        let out = self.array(name, 1, ty, false);
        self.ops.push(PatternOp::FilterReduce {
            ins: ins.to_vec(),
            cond,
            f,
            op,
            out,
        });
        out
    }

    /// Append a grouped reduction producing a `groups`-element array.
    ///
    /// # Panics
    ///
    /// Panics under the same conditions as [`PatternProgram::map`], or if
    /// `groups` is zero.
    pub fn group_by_reduce(
        &mut self,
        name: &str,
        ins: &[ArrayId],
        key: Expr,
        value: Expr,
        op: ReduceOp,
        groups: u64,
    ) -> ArrayId {
        self.check_zip(ins, &value);
        assert!(groups > 0, "need at least one group");
        assert!(
            key.arity() <= ins.len(),
            "key references more inputs than given"
        );
        let ty = self.arrays[ins[0].0].ty;
        let out = self.array(name, groups, ty, false);
        self.ops.push(PatternOp::GroupByReduce {
            ins: ins.to_vec(),
            key,
            value,
            op,
            groups,
            out,
        });
        out
    }

    fn check_zip(&self, ins: &[ArrayId], f: &Expr) -> u64 {
        assert!(!ins.is_empty(), "patterns need at least one input");
        let len = self.arrays[ins[0].0].len;
        for i in ins {
            assert_eq!(self.arrays[i.0].len, len, "zipped inputs must align");
        }
        assert!(
            f.arity() <= ins.len(),
            "kernel references more inputs than given"
        );
        len
    }

    /// Array metadata.
    pub fn spec(&self, id: ArrayId) -> &ArraySpec {
        &self.arrays[id.0]
    }

    /// The program's patterns in order.
    pub fn ops(&self) -> &[PatternOp] {
        &self.ops
    }

    /// Interpret the program over named input arrays: the reference
    /// semantics every lowering must preserve.
    ///
    /// # Panics
    ///
    /// Panics if a required input is missing or has the wrong length.
    // The element loops below gather lane `i` from several arrays at
    // once, which `needless_range_loop` cannot express as an iterator.
    #[allow(clippy::needless_range_loop)]
    pub fn interpret(&self, inputs: &BTreeMap<String, Vec<f64>>) -> BTreeMap<String, Vec<f64>> {
        let mut store: Vec<Vec<f64>> = Vec::with_capacity(self.arrays.len());
        for spec in &self.arrays {
            if spec.is_input {
                let data = inputs
                    .get(&spec.name)
                    .unwrap_or_else(|| panic!("missing input `{}`", spec.name));
                assert_eq!(data.len() as u64, spec.len, "input `{}` length", spec.name);
                store.push(data.iter().map(|&v| spec.ty.quantize(v)).collect());
            } else {
                store.push(vec![0.0; spec.len as usize]);
            }
        }
        for op in &self.ops {
            let ty = self.arrays[op.out().0].ty;
            match op {
                PatternOp::Map { ins, f, out } => {
                    let len = self.arrays[ins[0].0].len as usize;
                    let mut result = vec![0.0; len];
                    for (i, r) in result.iter_mut().enumerate() {
                        let x: Vec<f64> = ins.iter().map(|a| store[a.0][i]).collect();
                        *r = f.eval(&x, ty);
                    }
                    store[out.0] = result;
                }
                PatternOp::Reduce { ins, f, op, out } => {
                    let len = self.arrays[ins[0].0].len as usize;
                    let mut acc = op.identity();
                    for i in 0..len {
                        let x: Vec<f64> = ins.iter().map(|a| store[a.0][i]).collect();
                        acc = ty.quantize(op.apply(acc, f.eval(&x, ty)));
                    }
                    store[out.0] = vec![acc];
                }
                PatternOp::FilterReduce {
                    ins,
                    cond,
                    f,
                    op,
                    out,
                } => {
                    let len = self.arrays[ins[0].0].len as usize;
                    let mut acc = op.identity();
                    for i in 0..len {
                        let x: Vec<f64> = ins.iter().map(|a| store[a.0][i]).collect();
                        if cond.eval(&x, ty) != 0.0 {
                            acc = ty.quantize(op.apply(acc, f.eval(&x, ty)));
                        }
                    }
                    store[out.0] = vec![acc];
                }
                PatternOp::GroupByReduce {
                    ins,
                    key,
                    value,
                    op,
                    groups,
                    out,
                } => {
                    let len = self.arrays[ins[0].0].len as usize;
                    let mut acc = vec![op.identity(); *groups as usize];
                    for i in 0..len {
                        let x: Vec<f64> = ins.iter().map(|a| store[a.0][i]).collect();
                        let k = (key.eval(&x, ty).max(0.0) as u64).min(groups - 1) as usize;
                        acc[k] = ty.quantize(op.apply(acc[k], value.eval(&x, ty)));
                    }
                    store[out.0] = acc;
                }
            }
        }
        self.arrays
            .iter()
            .zip(store)
            .filter(|(s, _)| !s.is_input)
            .map(|(s, v)| (s.name.clone(), v))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dhdl_core::PrimOp;

    #[test]
    fn dot_product_interprets() {
        let mut p = PatternProgram::new();
        let a = p.input("a", 4, DType::F32);
        let b = p.input("b", 4, DType::F32);
        let prod = Expr::mul(Expr::input(0), Expr::input(1));
        p.reduce("dot", &[a, b], prod, ReduceOp::Add);
        let mut inputs = BTreeMap::new();
        inputs.insert("a".to_string(), vec![1.0, 2.0, 3.0, 4.0]);
        inputs.insert("b".to_string(), vec![4.0, 3.0, 2.0, 1.0]);
        let out = p.interpret(&inputs);
        assert_eq!(out["dot"], vec![20.0]);
    }

    #[test]
    fn filter_reduce_interprets() {
        let mut p = PatternProgram::new();
        let a = p.input("a", 5, DType::F32);
        let cond = Expr::bin(PrimOp::Gt, Expr::input(0), Expr::lit(2.0));
        p.filter_reduce("sum", &[a], cond, Expr::input(0), ReduceOp::Add);
        let mut inputs = BTreeMap::new();
        inputs.insert("a".to_string(), vec![1.0, 3.0, 2.0, 5.0, 4.0]);
        let out = p.interpret(&inputs);
        assert_eq!(out["sum"], vec![12.0]);
    }

    #[test]
    #[should_panic(expected = "zipped inputs must align")]
    fn mismatched_zip_rejected() {
        let mut p = PatternProgram::new();
        let a = p.input("a", 4, DType::F32);
        let b = p.input("b", 8, DType::F32);
        p.map("m", &[a, b], Expr::add(Expr::input(0), Expr::input(1)));
    }

    #[test]
    fn chained_maps_interpret() {
        let mut p = PatternProgram::new();
        let a = p.input("a", 3, DType::F32);
        let sq = p.map("sq", &[a], Expr::mul(Expr::input(0), Expr::input(0)));
        p.map("plus1", &[sq], Expr::add(Expr::input(0), Expr::lit(1.0)));
        let mut inputs = BTreeMap::new();
        inputs.insert("a".to_string(), vec![1.0, 2.0, 3.0]);
        let out = p.interpret(&inputs);
        assert_eq!(out["plus1"], vec![2.0, 5.0, 10.0]);
        assert_eq!(out["sq"], vec![1.0, 4.0, 9.0]);
    }
}
