//! Pattern fusion.
//!
//! The paper's Step 1 performs "high-level optimizations like loop
//! fusion" before lowering to DHDL. This pass fuses producer `map`s into
//! their consumers (map-map and map-reduce fusion): the intermediate
//! array is never materialized off-chip, the consumer's kernel expression
//! inlines the producer's, and the zipped input lists merge.

use std::collections::BTreeMap;

use crate::expr::Expr;
use crate::ir::{ArrayId, PatternOp, PatternProgram};

/// Fuse producer maps into their consumers. Intermediate arrays consumed
/// by at least one later pattern are eliminated (not materialized);
/// terminal arrays are kept.
pub fn fuse(prog: &PatternProgram) -> PatternProgram {
    // Count consumers of each array among the ops.
    let mut consumers: BTreeMap<ArrayId, usize> = BTreeMap::new();
    for op in prog.ops() {
        for &a in op.ins() {
            *consumers.entry(a).or_insert(0) += 1;
        }
    }
    let mut out = PatternProgram::new();
    // Copy array table verbatim (unused intermediates simply never get
    // written; lowering materializes only arrays referenced by the fused
    // ops).
    out.arrays = prog.arrays.clone();
    // Producer table: arrays produced by fusable maps.
    let mut producers: BTreeMap<ArrayId, (Vec<ArrayId>, Expr)> = BTreeMap::new();
    for op in prog.ops() {
        let (ins, f) = inline(op.ins(), kernel_of(op), &producers);
        match op {
            PatternOp::Map { out: o, .. } => {
                if consumers.get(o).copied().unwrap_or(0) > 0 {
                    // Consumed later: fuse away, do not emit.
                    producers.insert(*o, (ins, f));
                } else {
                    out.ops.push(PatternOp::Map { ins, f, out: *o });
                }
            }
            PatternOp::Reduce {
                op: rop, out: o, ..
            } => {
                out.ops.push(PatternOp::Reduce {
                    ins,
                    f,
                    op: *rop,
                    out: *o,
                });
            }
            PatternOp::FilterReduce {
                cond,
                op: rop,
                out: o,
                ..
            } => {
                let (_, cond) = inline(op.ins(), cond.clone(), &producers);
                out.ops.push(PatternOp::FilterReduce {
                    ins,
                    cond,
                    f,
                    op: *rop,
                    out: *o,
                });
            }
            PatternOp::GroupByReduce {
                key,
                op: rop,
                groups,
                out: o,
                ..
            } => {
                let (_, key) = inline(op.ins(), key.clone(), &producers);
                out.ops.push(PatternOp::GroupByReduce {
                    ins,
                    key,
                    value: f,
                    op: *rop,
                    groups: *groups,
                    out: *o,
                });
            }
        }
    }
    out
}

fn kernel_of(op: &PatternOp) -> Expr {
    match op {
        PatternOp::Map { f, .. }
        | PatternOp::Reduce { f, .. }
        | PatternOp::FilterReduce { f, .. } => f.clone(),
        PatternOp::GroupByReduce { value, .. } => value.clone(),
    }
}

/// Inline fused producers into `(ins, f)`: every input that is a fused
/// map's output is replaced by that map's own inputs and expression.
fn inline(
    ins: &[ArrayId],
    f: Expr,
    producers: &BTreeMap<ArrayId, (Vec<ArrayId>, Expr)>,
) -> (Vec<ArrayId>, Expr) {
    let mut new_ins: Vec<ArrayId> = Vec::new();
    let mut subs: Vec<Expr> = Vec::new();
    for &a in ins {
        if let Some((p_ins, p_expr)) = producers.get(&a) {
            let base = new_ins.len();
            new_ins.extend_from_slice(p_ins);
            // Shift the producer's input indices by `base`.
            let shift: Vec<Expr> = (0..p_ins.len()).map(|j| Expr::In(base + j)).collect();
            subs.push(p_expr.substitute(&shift));
        } else {
            subs.push(Expr::In(new_ins.len()));
            new_ins.push(a);
        }
    }
    (new_ins, f.substitute(&subs))
}

#[cfg(test)]
mod tests {
    use super::*;
    use dhdl_core::{DType, PrimOp, ReduceOp};
    use std::collections::BTreeMap as Map;

    /// sum((a[i]-b[i])^2): map(sub) -> map(square) -> reduce(+).
    fn distance_program() -> PatternProgram {
        let mut p = PatternProgram::new();
        let a = p.input("a", 8, DType::F32);
        let b = p.input("b", 8, DType::F32);
        let diff = p.map("diff", &[a, b], Expr::sub(Expr::input(0), Expr::input(1)));
        let sq = p.map("sq", &[diff], Expr::mul(Expr::input(0), Expr::input(0)));
        p.reduce("dist", &[sq], Expr::input(0), ReduceOp::Add);
        p
    }

    #[test]
    fn fusion_collapses_to_single_reduce() {
        let p = distance_program();
        assert_eq!(p.ops().len(), 3);
        let fused = fuse(&p);
        assert_eq!(fused.ops().len(), 1, "{:?}", fused.ops());
        let PatternOp::Reduce { ins, f, .. } = &fused.ops()[0] else {
            panic!("expected a fused reduce");
        };
        // Inputs trace all the way back to a and b; the producer chain is
        // inlined once even though the square references it twice.
        assert_eq!(ins.len(), 2);
        assert!(f.size() >= 3); // sub (x2, shared) + mul at least
    }

    #[test]
    fn fusion_preserves_semantics() {
        let p = distance_program();
        let fused = fuse(&p);
        let mut inputs = Map::new();
        inputs.insert(
            "a".to_string(),
            vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0],
        );
        inputs.insert(
            "b".to_string(),
            vec![8.0, 7.0, 6.0, 5.0, 4.0, 3.0, 2.0, 1.0],
        );
        let full = p.interpret(&inputs);
        let short = fused.interpret(&inputs);
        assert_eq!(full["dist"], short["dist"]);
    }

    #[test]
    fn terminal_map_is_not_fused_away() {
        let mut p = PatternProgram::new();
        let a = p.input("a", 4, DType::F32);
        p.map("out", &[a], Expr::add(Expr::input(0), Expr::lit(1.0)));
        let fused = fuse(&p);
        assert_eq!(fused.ops().len(), 1);
        assert!(matches!(fused.ops()[0], PatternOp::Map { .. }));
    }

    #[test]
    fn filter_reduce_cond_is_inlined_too() {
        let mut p = PatternProgram::new();
        let a = p.input("a", 4, DType::F32);
        let scaled = p.map("s", &[a], Expr::mul(Expr::input(0), Expr::lit(2.0)));
        p.filter_reduce(
            "sum",
            &[scaled],
            Expr::bin(PrimOp::Gt, Expr::input(0), Expr::lit(4.0)),
            Expr::input(0),
            ReduceOp::Add,
        );
        let fused = fuse(&p);
        assert_eq!(fused.ops().len(), 1);
        let mut inputs = Map::new();
        inputs.insert("a".to_string(), vec![1.0, 2.0, 3.0, 4.0]);
        // scaled = [2,4,6,8]; > 4 -> 6+8 = 14.
        assert_eq!(fused.interpret(&inputs)["sum"], vec![14.0]);
    }
}
