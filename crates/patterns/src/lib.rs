//! # dhdl-patterns — the parallel-pattern frontend
//!
//! The "Step 1" of the paper's Figure 1: applications written with
//! high-level parallel patterns (map, zipWith, reduce, filter) are fused
//! and lowered onto DHDL's parameterized templates, following the
//! explicit per-pattern generation rules of §III-A. Nodes generated from
//! `map` replicate in parallel; nodes generated from `reduce` replicate
//! as balanced trees with cross-tile register folds; `filter` fuses into
//! its consuming reduction as a multiplexer.
//!
//! ```
//! use dhdl_core::{DType, ReduceOp};
//! use dhdl_patterns::{default_params, fuse, lower, Expr, PatternProgram};
//!
//! # fn main() -> dhdl_core::Result<()> {
//! // sum((a - b)^2), written as three patterns...
//! let mut p = PatternProgram::new();
//! let a = p.input("a", 1024, DType::F32);
//! let b = p.input("b", 1024, DType::F32);
//! let d = p.map("d", &[a, b], Expr::sub(Expr::input(0), Expr::input(1)));
//! let sq = p.map("sq", &[d], Expr::mul(Expr::input(0), Expr::input(0)));
//! p.reduce("dist", &[sq], Expr::input(0), ReduceOp::Add);
//! // ...fused into one reduction and lowered to hardware.
//! let fused = fuse(&p);
//! assert_eq!(fused.ops().len(), 1);
//! let design = lower(&fused, "sqdist", &default_params(&fused))?;
//! assert_eq!(design.name(), "sqdist");
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]

mod expr;
mod fuse;
mod ir;
mod lower;

pub use expr::Expr;
pub use fuse::fuse;
pub use ir::{ArrayId, ArraySpec, PatternOp, PatternProgram};
pub use lower::{default_params, lower, param_space};
