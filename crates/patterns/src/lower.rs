//! Lowering parallel patterns to DHDL (§III-A).
//!
//! "The templates in DHDL are inspired from these well-known parallel
//! patterns. This makes it possible to define explicit rules to generate
//! DHDL for each parallel pattern": each pattern lowers to a tiled
//! template skeleton — tile loads of the zipped inputs, a `Pipe` body
//! emitted from the kernel expression (map) or a `Pipe` reduction with a
//! cross-tile register fold (reduce / filterReduce), under an outer
//! controller whose MetaPipe toggle, tile size and parallelization factor
//! are the design parameters of §III-C.

use dhdl_core::{by, Design, DesignBuilder, NodeId, ParamSpace, ParamValues, Result};

use crate::ir::{ArrayId, PatternOp, PatternProgram};

/// Declare the design parameters of a lowered program: per pattern `i`,
/// a tile size `ts{i}`, an inner parallelization factor `ip{i}`, and a
/// MetaPipe toggle `mp{i}`.
pub fn param_space(prog: &PatternProgram) -> ParamSpace {
    let mut space = ParamSpace::new();
    for (i, op) in prog.ops().iter().enumerate() {
        let len = prog.spec(op.ins()[0]).len;
        space.tile(&format!("ts{i}"), len, 16.min(len), 8_192.min(len));
        space.par(&format!("ip{i}"), 96, 16);
        space.toggle(&format!("mp{i}"));
    }
    space
}

/// Default mid-range parameters for a lowered program.
pub fn default_params(prog: &PatternProgram) -> ParamValues {
    let mut v = ParamValues::new();
    for (i, def) in param_space(prog).defs().iter().enumerate() {
        let _ = i;
        let val = match &def.kind {
            dhdl_core::ParamKind::Toggle => 1,
            k => {
                let legal = k.legal_values();
                legal[legal.len() / 2]
            }
        };
        v.set(&def.name, val);
    }
    v
}

/// Lower a pattern program to a DHDL design instance.
///
/// Every input array and every (surviving) pattern output becomes an
/// `OffChipMem` with the array's name; fused-away intermediates are never
/// materialized.
///
/// # Errors
///
/// Returns an error if parameters are missing or the generated design is
/// structurally invalid (which would indicate a lowering bug).
pub fn lower(prog: &PatternProgram, name: &str, params: &ParamValues) -> Result<Design> {
    let mut b = DesignBuilder::new(name);
    // Materialize off-chip memories for inputs and op outputs that the
    // fused program still references.
    let mut mems: Vec<Option<NodeId>> = vec![None; prog.arrays.len()];
    let mut referenced: Vec<bool> = vec![false; prog.arrays.len()];
    for op in prog.ops() {
        referenced[op.out().0] = true;
        for &a in op.ins() {
            referenced[a.0] = true;
        }
    }
    for (i, spec) in prog.arrays.iter().enumerate() {
        if referenced[i] {
            mems[i] = Some(b.off_chip(&spec.name, spec.ty, &[spec.len]));
        }
    }
    let mem = |mems: &Vec<Option<NodeId>>, a: ArrayId| mems[a.0].expect("referenced array");

    // One top-level stage per pattern, in program order.
    let ops = prog.ops().to_vec();
    let mut err = None;
    b.sequential(|b| {
        for (i, op) in ops.iter().enumerate() {
            let (Ok(ts), Ok(ip), Ok(mp)) = (
                params.dim(&format!("ts{i}")),
                params.par(&format!("ip{i}")),
                params.toggle(&format!("mp{i}")),
            ) else {
                err = Some(dhdl_core::DhdlError::Parameter(format!(
                    "missing parameters for pattern {i}"
                )));
                return;
            };
            let len = prog.spec(op.ins()[0]).len;
            let ty = prog.spec(op.out()).ty;
            let ts = ts.min(len);
            match op {
                PatternOp::Map { ins, f, out } => {
                    let out_mem = mem(&mems, *out);
                    let in_mems: Vec<NodeId> = ins.iter().map(|&a| mem(&mems, a)).collect();
                    b.outer(mp, &[by(len, ts)], 1, |b, iters| {
                        let base = iters[0];
                        let tiles: Vec<NodeId> = in_mems
                            .iter()
                            .enumerate()
                            .map(|(k, &m)| {
                                let t = b.bram(&format!("in{i}_{k}"), ty, &[ts]);
                                t_load(b, m, t, base, ts, ip);
                                t
                            })
                            .collect();
                        let ot = b.bram(&format!("out{i}"), ty, &[ts]);
                        b.pipe(&[by(ts, 1)], ip, |b, it| {
                            let elems: Vec<NodeId> =
                                tiles.iter().map(|&t| b.load(t, &[it[0]])).collect();
                            let v = f.emit(b, &elems, ty);
                            b.store(ot, &[it[0]], v);
                        });
                        b.tile_store(out_mem, ot, &[base], &[ts], ip);
                    });
                }
                PatternOp::Reduce {
                    ins,
                    f,
                    op: rop,
                    out,
                }
                | PatternOp::FilterReduce {
                    ins,
                    f,
                    op: rop,
                    out,
                    ..
                } => {
                    let cond = match op {
                        PatternOp::FilterReduce { cond, .. } => Some(cond.clone()),
                        _ => None,
                    };
                    let out_mem = mem(&mems, *out);
                    let in_mems: Vec<NodeId> = ins.iter().map(|&a| mem(&mems, a)).collect();
                    let acc = b.reg(&format!("acc{i}"), ty, 0.0);
                    let rop = *rop;
                    b.outer_fold(mp, &[by(len, ts)], 1, acc, rop, |b, iters| {
                        let base = iters[0];
                        let tiles: Vec<NodeId> = in_mems
                            .iter()
                            .enumerate()
                            .map(|(k, &m)| {
                                let t = b.bram(&format!("in{i}_{k}"), ty, &[ts]);
                                t_load(b, m, t, base, ts, ip);
                                t
                            })
                            .collect();
                        let partial = b.reg(&format!("part{i}"), ty, 0.0);
                        b.pipe_reduce(&[by(ts, 1)], ip, partial, rop, |b, it| {
                            let elems: Vec<NodeId> =
                                tiles.iter().map(|&t| b.load(t, &[it[0]])).collect();
                            let v = f.emit(b, &elems, ty);
                            match &cond {
                                Some(c) => {
                                    let cv = c.emit(b, &elems, ty);
                                    let ident = b.constant(rop.identity(), ty);
                                    b.mux(cv, v, ident)
                                }
                                None => v,
                            }
                        });
                        partial
                    });
                    let ot = b.bram(&format!("outb{i}"), ty, &[1]);
                    b.pipe(&[by(1, 1)], 1, |b, it| {
                        let v = b.load_reg(acc);
                        b.store(ot, &[it[0]], v);
                    });
                    let z = b.index_const(0);
                    b.tile_store(out_mem, ot, &[z], &[1], 1);
                }
                PatternOp::GroupByReduce {
                    ins,
                    key,
                    value,
                    op: rop,
                    groups,
                    out,
                } => {
                    let out_mem = mem(&mems, *out);
                    let in_mems: Vec<NodeId> = ins.iter().map(|&a| mem(&mems, a)).collect();
                    let groups = *groups;
                    let rop = *rop;
                    let gacc = b.bram(&format!("gacc{i}"), ty, &[groups]);
                    b.outer_fold(mp, &[by(len, ts)], 1, gacc, rop, |b, iters| {
                        let base = iters[0];
                        let tiles: Vec<NodeId> = in_mems
                            .iter()
                            .enumerate()
                            .map(|(k, &m)| {
                                let t = b.bram(&format!("in{i}_{k}"), ty, &[ts]);
                                t_load(b, m, t, base, ts, ip);
                                t
                            })
                            .collect();
                        let partial = b.bram(&format!("gpart{i}"), ty, &[groups]);
                        // Reset per-tile partials to the reduction identity.
                        b.pipe(&[by(groups, 1)], 1, |b, it| {
                            let ident = b.constant(rop.identity(), ty);
                            b.store(partial, &[it[0]], ident);
                        });
                        // Scatter-accumulate: the read-modify-write to a
                        // key-dependent address serializes (par 1), exactly
                        // the hazard that makes groupBy hard for static
                        // pipelining.
                        b.pipe(&[by(ts, 1)], 1, |b, it| {
                            let elems: Vec<NodeId> =
                                tiles.iter().map(|&t| b.load(t, &[it[0]])).collect();
                            let k_raw = key.emit(b, &elems, ty);
                            let zero = b.index_const(0);
                            let kmax = b.index_const(groups - 1);
                            let k_lo = b.max(k_raw, zero);
                            let k = b.min(k_lo, kmax);
                            let v = value.emit(b, &elems, ty);
                            let prev = b.load(partial, &[k]);
                            let combined = b.prim(rop.prim(), &[prev, v]);
                            b.store(partial, &[k], combined);
                        });
                        partial
                    });
                    let z = b.index_const(0);
                    b.tile_store(out_mem, gacc, &[z], &[groups], 1);
                }
            }
        }
    });
    if let Some(e) = err {
        return Err(e);
    }
    b.finish()
}

fn t_load(b: &mut DesignBuilder, m: NodeId, t: NodeId, base: NodeId, ts: u64, ip: u32) {
    b.tile_load(m, t, &[base], &[ts], ip);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::Expr;
    use crate::fuse::fuse;
    use dhdl_core::{DType, NodeKind, PrimOp};

    fn saxpy_program(n: u64) -> PatternProgram {
        let mut p = PatternProgram::new();
        let x = p.input("x", n, DType::F32);
        let y = p.input("y", n, DType::F32);
        let ax = p.map("ax", &[x], Expr::mul(Expr::lit(2.5), Expr::input(0)));
        p.map("out", &[ax, y], Expr::add(Expr::input(0), Expr::input(1)));
        p
    }

    #[test]
    fn lowered_design_builds() {
        let p = saxpy_program(256);
        let d = lower(&p, "saxpy_pat", &default_params(&p)).unwrap();
        assert_eq!(d.name(), "saxpy_pat");
        assert!(d.offchips().len() >= 3);
    }

    #[test]
    fn fusion_shrinks_lowered_design() {
        let p = saxpy_program(256);
        let fused = fuse(&p);
        let d_full = lower(&p, "full", &default_params(&p)).unwrap();
        let d_fused = lower(&fused, "fused", &default_params(&fused)).unwrap();
        // The fused program has one pattern instead of two: fewer
        // controllers and no materialized intermediate.
        assert!(d_fused.controllers().len() < d_full.controllers().len());
        let xfers = |d: &Design| {
            d.find_all(|n| matches!(n.kind, NodeKind::TileLoad(_) | NodeKind::TileStore(_)))
                .len()
        };
        assert!(xfers(&d_fused) < xfers(&d_full));
        // The fused program no longer materializes `ax` off-chip.
        assert!(d_fused.offchip_by_name("ax").is_err());
    }

    #[test]
    fn param_space_covers_every_pattern() {
        let p = saxpy_program(512);
        let space = param_space(&p);
        assert_eq!(space.defs().len(), 3 * p.ops().len());
        assert!(space.is_legal(&default_params(&p)));
    }

    #[test]
    fn filter_reduce_lowers_to_mux() {
        let mut p = PatternProgram::new();
        let a = p.input("a", 64, DType::F32);
        p.filter_reduce(
            "sum",
            &[a],
            Expr::bin(PrimOp::Gt, Expr::input(0), Expr::lit(0.0)),
            Expr::input(0),
            dhdl_core::ReduceOp::Add,
        );
        let d = lower(&p, "fr", &default_params(&p)).unwrap();
        let muxes = d.find_all(|n| matches!(n.kind, NodeKind::Mux { .. }));
        assert!(!muxes.is_empty());
    }
}
