//! Property tests for the pattern frontend: fusion preserves semantics for
//! randomly generated expression chains, and arity/size bookkeeping holds
//! under substitution.

use dhdl_core::{DType, PrimOp, ReduceOp};
use dhdl_patterns::{fuse, Expr, PatternProgram};
use proptest::prelude::*;
use std::collections::BTreeMap;

/// NaN-safe op pool for random kernels.
const OPS: &[PrimOp] = &[
    PrimOp::Add,
    PrimOp::Sub,
    PrimOp::Mul,
    PrimOp::Min,
    PrimOp::Max,
];

fn random_expr(choices: &[u8], consts: &[f64], arity: usize) -> Expr {
    let mut e = Expr::input(0);
    for (i, &c) in choices.iter().enumerate() {
        let op = OPS[c as usize % OPS.len()];
        let rhs = if c % 2 == 0 {
            Expr::input((i + 1) % arity.max(1))
        } else {
            Expr::lit(consts[i % consts.len()])
        };
        e = Expr::bin(op, e, rhs);
    }
    e
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Fusing a random map-map-reduce chain never changes the final
    /// reduction value.
    #[test]
    fn fusion_preserves_random_chains(
        choices1 in prop::collection::vec(0u8..10, 1..6),
        choices2 in prop::collection::vec(0u8..10, 1..6),
        consts in prop::collection::vec(-4.0f64..4.0, 3),
        data in prop::collection::vec(-16.0f64..16.0, 8..64)
    ) {
        let n = data.len() as u64;
        let mut p = PatternProgram::new();
        let a = p.input("a", n, DType::F32);
        let b = p.input("b", n, DType::F32);
        let m1 = p.map("m1", &[a, b], random_expr(&choices1, &consts, 2));
        let m2 = p.map("m2", &[m1, a], random_expr(&choices2, &consts, 2));
        p.reduce("out", &[m2], Expr::input(0), ReduceOp::Add);
        let fused = fuse(&p);
        prop_assert!(fused.ops().len() < p.ops().len());
        let mut inputs = BTreeMap::new();
        let f32data: Vec<f64> = data.iter().map(|&v| v as f32 as f64).collect();
        inputs.insert("a".to_string(), f32data.clone());
        inputs.insert("b".to_string(), f32data.iter().rev().cloned().collect());
        let full = p.interpret(&inputs);
        let short = fused.interpret(&inputs);
        prop_assert_eq!(&full["out"], &short["out"]);
    }

    /// Substitution arity arithmetic: substituting expressions of arity k
    /// into a kernel yields arity <= k (inputs can only come from the
    /// substitutes).
    #[test]
    fn substitution_bounds_arity(
        choices in prop::collection::vec(0u8..10, 1..8),
        consts in prop::collection::vec(-2.0f64..2.0, 3),
        k in 1usize..5
    ) {
        let e = random_expr(&choices, &consts, 2);
        let subs: Vec<Expr> = (0..2).map(|_| random_expr(&choices, &consts, k)).collect();
        let sub = e.substitute(&subs);
        prop_assert!(sub.arity() <= k);
        // Size grows at most multiplicatively.
        prop_assert!(sub.size() <= e.size() * (subs[0].size() + 1) + subs.iter().map(Expr::size).sum::<usize>());
    }

    /// Interpretation only depends on referenced inputs.
    #[test]
    fn eval_ignores_unused_inputs(
        x in -100.0f64..100.0,
        junk in -100.0f64..100.0
    ) {
        let e = Expr::mul(Expr::input(0), Expr::lit(2.0));
        let a = e.eval(&[x, junk], DType::F32);
        let b = e.eval(&[x, -junk], DType::F32);
        prop_assert_eq!(a, b);
    }
}
