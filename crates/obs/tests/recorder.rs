//! Recorder correctness: lossless concurrent counters (proptest over
//! thread counts), span nesting reconstructing a valid tree, and the
//! Chrome-trace JSON round-tripping through a minimal parser.
//!
//! The recorder is process-global, so every test takes `obs_lock()` and
//! uses test-unique metric/span names; the lock serializes mode changes
//! (`init`) that would otherwise race between tests.

use std::collections::BTreeMap;
use std::sync::{Mutex, MutexGuard, OnceLock};

use dhdl_obs::{init, recorder, ChromeSink, Mode, Report, Sink, SpanEvent, SummarySink};
use proptest::proptest;

/// Serialize tests that touch the global recorder mode.
fn obs_lock() -> MutexGuard<'static, ()> {
    static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
    LOCK.get_or_init(|| Mutex::new(()))
        .lock()
        .unwrap_or_else(|e| e.into_inner())
}

/// A test-unique `&'static str` (counter registration leaks storage
/// anyway, so leaking names in tests is consistent with production).
fn unique_name(prefix: &str, tag: u64) -> &'static str {
    Box::leak(format!("{prefix}.{tag}").into_boxed_str())
}

#[test]
fn disabled_primitives_record_nothing() {
    let _guard = obs_lock();
    init(Mode::Off);
    let c = dhdl_obs::counter("test.disabled.counter");
    let h = dhdl_obs::histogram("test.disabled.hist");
    c.add(5);
    h.record(100);
    {
        let _span = dhdl_obs::span!("test.disabled.span");
    }
    assert_eq!(c.get(), 0);
    assert_eq!(h.snapshot().count, 0);
    let report = recorder().snapshot();
    assert!(!report.spans.iter().any(|s| s.name == "test.disabled.span"));
}

#[test]
fn mode_parsing_is_strict() {
    assert_eq!(Mode::parse("off"), Ok(Mode::Off));
    assert_eq!(Mode::parse("0"), Ok(Mode::Off));
    assert_eq!(Mode::parse("summary"), Ok(Mode::Summary));
    assert_eq!(Mode::parse("json"), Ok(Mode::Json));
    assert_eq!(Mode::parse("chrome"), Ok(Mode::Chrome));
    for bad in ["", "sumary", "Chrome", "on", "trace"] {
        let r = Mode::parse(bad);
        assert!(r.is_err(), "`{bad}` should be rejected");
        assert!(r.unwrap_err().contains("off|summary|json|chrome"));
    }
    assert_eq!("json".parse::<Mode>(), Ok(Mode::Json));
}

proptest! {
    #![proptest_config(proptest::ProptestConfig::with_cases(16))]
    /// Concurrent increments from a work-stealing-shaped pool are
    /// lossless for any thread count: the counter ends at exactly the
    /// sum of all per-thread contributions.
    #[test]
    fn concurrent_counter_increments_are_lossless(
        threads in 1usize..9,
        per_thread in 1u64..2_000,
        tag in 0u64..u64::MAX,
    ) {
        let _guard = obs_lock();
        init(Mode::Summary);
        let name = unique_name("test.prop.counter", tag);
        let counter = dhdl_obs::counter(name);
        std::thread::scope(|s| {
            for _ in 0..threads {
                s.spawn(|| {
                    for _ in 0..per_thread {
                        counter.incr();
                    }
                });
            }
        });
        init(Mode::Off);
        proptest::prop_assert_eq!(counter.get(), threads as u64 * per_thread);
    }

    /// Histogram totals are likewise lossless under concurrency, and the
    /// aggregate invariants (count, sum, min/max bounds) hold.
    #[test]
    fn concurrent_histogram_records_are_lossless(
        threads in 1usize..9,
        per_thread in 1u64..500,
        tag in 0u64..u64::MAX,
    ) {
        let _guard = obs_lock();
        init(Mode::Summary);
        let name = unique_name("test.prop.hist", tag);
        let hist = dhdl_obs::histogram(name);
        std::thread::scope(|s| {
            for t in 0..threads {
                s.spawn(move || {
                    for i in 0..per_thread {
                        hist.record(t as u64 * 1_000 + i);
                    }
                });
            }
        });
        init(Mode::Off);
        let snap = hist.snapshot();
        proptest::prop_assert_eq!(snap.count, threads as u64 * per_thread);
        let expected_sum: u64 = (0..threads as u64)
            .map(|t| (0..per_thread).map(|i| t * 1_000 + i).sum::<u64>())
            .sum();
        proptest::prop_assert_eq!(snap.sum, expected_sum);
        proptest::prop_assert_eq!(snap.min, 0);
        proptest::prop_assert_eq!(snap.max, (threads as u64 - 1) * 1_000 + per_thread - 1);
        proptest::prop_assert!(snap.quantile(0.5) >= snap.min);
        proptest::prop_assert!(snap.quantile(0.99) <= snap.max.max(1));
    }
}

/// Reconstruct the span forest of one thread and check validity: every
/// span at depth d has a full chain of d open ancestors, and each span's
/// interval is contained in its parent's.
fn check_thread_forest(spans: &[&SpanEvent]) {
    let mut ordered: Vec<&SpanEvent> = spans.to_vec();
    // Order by start time, parents before children on a timestamp tie
    // (sub-ns spans can share a start).
    ordered.sort_by_key(|s| (s.start_ns, s.depth));
    let mut stack: Vec<&SpanEvent> = Vec::new();
    for s in ordered {
        stack.truncate(s.depth as usize);
        assert_eq!(
            stack.len(),
            s.depth as usize,
            "span {s:?} is missing ancestors"
        );
        if let Some(parent) = stack.last() {
            assert!(
                s.start_ns >= parent.start_ns
                    && s.start_ns + s.dur_ns <= parent.start_ns + parent.dur_ns,
                "child span {s:?} escapes parent {parent:?}"
            );
        }
        stack.push(s);
    }
}

#[test]
fn span_nesting_reconstructs_a_valid_tree() {
    let _guard = obs_lock();
    init(Mode::Summary);
    std::thread::scope(|s| {
        for _ in 0..4 {
            s.spawn(|| {
                let _outer = dhdl_obs::span!("test.tree.outer");
                for i in 0..3 {
                    let _mid = dhdl_obs::span!("test.tree.mid", i);
                    let _inner = dhdl_obs::span!("test.tree.inner");
                }
            });
        }
    });
    init(Mode::Off);
    let report = recorder().snapshot();
    let ours: Vec<&SpanEvent> = report
        .spans
        .iter()
        .filter(|s| s.name.starts_with("test.tree."))
        .collect();
    assert_eq!(
        ours.len(),
        4 * (1 + 3 + 3),
        "4 threads x (1 outer + 3 mid + 3 inner)"
    );
    let tids: std::collections::BTreeSet<u32> = ours.iter().map(|s| s.tid).collect();
    assert_eq!(tids.len(), 4, "each worker thread gets its own tid");
    for tid in tids {
        let per_thread: Vec<&SpanEvent> = ours.iter().copied().filter(|s| s.tid == tid).collect();
        check_thread_forest(&per_thread);
        // Exactly one top-level span per thread, covering all others.
        let top: Vec<&&SpanEvent> = per_thread.iter().filter(|s| s.depth == 0).collect();
        assert_eq!(top.len(), 1);
        assert_eq!(top[0].name, "test.tree.outer");
    }
    // The `span!(name, expr)` form captured the argument name and value.
    let with_arg = ours
        .iter()
        .find(|s| s.name == "test.tree.mid")
        .expect("mid spans recorded");
    let (key, _value) = with_arg.arg.expect("mid span carries an argument");
    assert_eq!(key, "i");
}

// ---------------------------------------------------------------------
// A minimal JSON parser: just enough for the documents our sinks emit
// (objects, arrays, strings with the escapes we produce, f64 numbers,
// and bare words). Used to prove the Chrome trace is well-formed JSON
// and round-trips the span data.
// ---------------------------------------------------------------------

#[derive(Debug, Clone, PartialEq)]
enum Json {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<Json>),
    Obj(BTreeMap<String, Json>),
}

impl Json {
    fn get(&self, key: &str) -> &Json {
        match self {
            Json::Obj(m) => m.get(key).unwrap_or_else(|| panic!("missing key {key}")),
            other => panic!("not an object: {other:?}"),
        }
    }

    fn as_str(&self) -> &str {
        match self {
            Json::Str(s) => s,
            other => panic!("not a string: {other:?}"),
        }
    }

    fn as_num(&self) -> f64 {
        match self {
            Json::Num(n) => *n,
            other => panic!("not a number: {other:?}"),
        }
    }

    fn as_arr(&self) -> &[Json] {
        match self {
            Json::Arr(v) => v,
            other => panic!("not an array: {other:?}"),
        }
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn parse(text: &'a str) -> Json {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        let v = p.value();
        p.skip_ws();
        assert_eq!(p.pos, p.bytes.len(), "trailing bytes after JSON value");
        v
    }

    fn skip_ws(&mut self) {
        while self.pos < self.bytes.len() && self.bytes[self.pos].is_ascii_whitespace() {
            self.pos += 1;
        }
    }

    fn peek(&mut self) -> u8 {
        self.skip_ws();
        self.bytes[self.pos]
    }

    fn eat(&mut self, c: u8) {
        assert_eq!(self.peek(), c, "expected {} at {}", c as char, self.pos);
        self.pos += 1;
    }

    fn value(&mut self) -> Json {
        match self.peek() {
            b'{' => self.object(),
            b'[' => self.array(),
            b'"' => Json::Str(self.string()),
            b't' => self.word("true", Json::Bool(true)),
            b'f' => self.word("false", Json::Bool(false)),
            b'n' => self.word("null", Json::Null),
            _ => self.number(),
        }
    }

    fn word(&mut self, w: &str, v: Json) -> Json {
        assert!(self.bytes[self.pos..].starts_with(w.as_bytes()));
        self.pos += w.len();
        v
    }

    fn object(&mut self) -> Json {
        self.eat(b'{');
        let mut map = BTreeMap::new();
        if self.peek() == b'}' {
            self.pos += 1;
            return Json::Obj(map);
        }
        loop {
            let key = {
                assert_eq!(self.peek(), b'"');
                self.string()
            };
            self.eat(b':');
            map.insert(key, self.value());
            match self.peek() {
                b',' => self.pos += 1,
                b'}' => {
                    self.pos += 1;
                    return Json::Obj(map);
                }
                c => panic!("unexpected {} in object", c as char),
            }
        }
    }

    fn array(&mut self) -> Json {
        self.eat(b'[');
        let mut items = Vec::new();
        if self.peek() == b']' {
            self.pos += 1;
            return Json::Arr(items);
        }
        loop {
            items.push(self.value());
            match self.peek() {
                b',' => self.pos += 1,
                b']' => {
                    self.pos += 1;
                    return Json::Arr(items);
                }
                c => panic!("unexpected {} in array", c as char),
            }
        }
    }

    fn string(&mut self) -> String {
        self.eat(b'"');
        let mut out = String::new();
        loop {
            match self.bytes[self.pos] {
                b'"' => {
                    self.pos += 1;
                    return out;
                }
                b'\\' => {
                    self.pos += 1;
                    match self.bytes[self.pos] {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hex = std::str::from_utf8(&self.bytes[self.pos + 1..self.pos + 5])
                                .unwrap();
                            let code = u32::from_str_radix(hex, 16).unwrap();
                            out.push(char::from_u32(code).unwrap());
                            self.pos += 4;
                        }
                        c => panic!("unsupported escape \\{}", c as char),
                    }
                    self.pos += 1;
                }
                _ => {
                    // Consume one UTF-8 scalar.
                    let rest = std::str::from_utf8(&self.bytes[self.pos..]).unwrap();
                    let c = rest.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Json {
        self.skip_ws();
        let start = self.pos;
        while self.pos < self.bytes.len()
            && matches!(
                self.bytes[self.pos],
                b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E'
            )
        {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        Json::Num(text.parse().unwrap_or_else(|_| panic!("bad number {text}")))
    }
}

/// Build a synthetic report (the `Report` type is plain data) so the
/// round-trip check is exact rather than timing-dependent.
fn synthetic_report() -> Report {
    let spans = vec![
        SpanEvent {
            name: "sweep",
            label: Some("dot\"product".to_string()), // exercise escaping
            arg: None,
            tid: 0,
            depth: 0,
            start_ns: 1_000,
            dur_ns: 500_000,
        },
        SpanEvent {
            name: "elaborate",
            label: None,
            arg: Some(("shape", 0xBEEF)),
            tid: 0,
            depth: 1,
            start_ns: 2_000,
            dur_ns: 10_500,
        },
        SpanEvent {
            name: "estimate_net",
            label: None,
            arg: None,
            tid: 1,
            depth: 0,
            start_ns: 3_000,
            dur_ns: 7_250,
        },
    ];
    let mut counters = BTreeMap::new();
    counters.insert("cache.l1.hit", 42u64);
    counters.insert("sim.cycles", 1_000_000u64);
    Report {
        counters,
        histograms: BTreeMap::new(),
        spans,
        dropped_spans: 0,
    }
}

#[test]
fn chrome_trace_round_trips_through_a_parser() {
    let report = synthetic_report();
    let mut out = Vec::new();
    ChromeSink::new(&mut out).emit(&report).unwrap();
    let text = String::from_utf8(out).unwrap();
    let doc = Parser::parse(&text);

    assert_eq!(doc.get("displayTimeUnit").as_str(), "ms");
    let events = doc.get("traceEvents").as_arr();
    // Leading process_name metadata + 3 spans + trailing counter metadata.
    assert_eq!(events.len(), 5);
    assert_eq!(events[0].get("ph").as_str(), "M");
    assert_eq!(
        events[0].get("args").get("name").as_str(),
        "dhdl",
        "process metadata names the process"
    );

    // Every span round-trips: name (with label), tid, µs timestamps, args.
    let span_events = &events[1..4];
    for (ev, src) in span_events.iter().zip(&report.spans) {
        assert_eq!(ev.get("ph").as_str(), "X");
        assert_eq!(ev.get("cat").as_str(), "dhdl");
        let expect_name = match &src.label {
            Some(label) => format!("{}:{}", src.name, label),
            None => src.name.to_string(),
        };
        assert_eq!(ev.get("name").as_str(), expect_name);
        assert_eq!(ev.get("tid").as_num() as u32, src.tid);
        let ts_ns = ev.get("ts").as_num() * 1e3;
        let dur_ns = ev.get("dur").as_num() * 1e3;
        assert!(
            (ts_ns - src.start_ns as f64).abs() < 1.0,
            "ts {ts_ns} vs {}",
            src.start_ns
        );
        assert!((dur_ns - src.dur_ns as f64).abs() < 1.0);
        if let Some((key, value)) = src.arg {
            assert_eq!(ev.get("args").get(key).as_num() as u64, value);
        }
    }

    // The counter metadata event carries every counter.
    let meta = &events[4];
    assert_eq!(meta.get("name").as_str(), "dhdl_counters");
    assert_eq!(meta.get("args").get("cache.l1.hit").as_num() as u64, 42);
    assert_eq!(
        meta.get("args").get("sim.cycles").as_num() as u64,
        1_000_000
    );
}

#[test]
fn json_sink_round_trips_through_the_parser() {
    let report = synthetic_report();
    let mut out = Vec::new();
    dhdl_obs::JsonSink::new(&mut out).emit(&report).unwrap();
    let doc = Parser::parse(&String::from_utf8(out).unwrap());
    assert_eq!(doc.get("counters").get("cache.l1.hit").as_num() as u64, 42);
    assert_eq!(doc.get("span_events").as_num() as usize, 3);
    assert_eq!(doc.get("dropped_spans").as_num() as u64, 0);
    let rollup = doc.get("spans").as_arr();
    assert_eq!(rollup.len(), 3);
    // Rollup is sorted by descending total time: sweep dominates.
    assert_eq!(rollup[0].get("name").as_str(), "sweep");
    assert_eq!(rollup[0].get("total_ns").as_num() as u64, 500_000);
}

#[test]
fn summary_sink_renders_all_sections() {
    let _guard = obs_lock();
    init(Mode::Summary);
    dhdl_obs::counter!("test.summary.counter").add(7);
    dhdl_obs::histogram!("test.summary.hist_ns").record(1_500);
    {
        let _span = dhdl_obs::span!("test.summary.span");
    }
    init(Mode::Off);
    let report = recorder().snapshot();
    let mut out = Vec::new();
    SummarySink::new(&mut out).emit(&report).unwrap();
    let text = String::from_utf8(out).unwrap();
    for needle in [
        "dhdl-obs summary",
        "test.summary.counter",
        "test.summary.hist_ns",
        "test.summary.span",
    ] {
        assert!(text.contains(needle), "summary missing {needle}:\n{text}");
    }
}

#[test]
fn toplevel_coverage_counts_only_depth_zero() {
    let report = synthetic_report();
    // sweep (500_000) + estimate_net (7_250); the nested elaborate span
    // must not double-count.
    assert_eq!(report.toplevel_coverage_ns(), 507_250);
}

#[test]
fn timer_records_into_histogram() {
    let _guard = obs_lock();
    init(Mode::Summary);
    let h = dhdl_obs::histogram("test.timer.hist_ns");
    {
        let _t = h.timer();
        std::hint::black_box(1 + 1);
    }
    init(Mode::Off);
    let snap = h.snapshot();
    assert_eq!(snap.count, 1);
    assert!(snap.max >= snap.min);
}
