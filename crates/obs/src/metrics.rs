//! Counters and histograms: the aggregate (non-event) metric primitives.
//!
//! Both hand out `Copy` handles wrapping `&'static` atomics, so the
//! recording fast path is a relaxed `fetch_add` behind the global
//! enabled check — no locks, no allocation. Registration (first use of a
//! name) takes the registry lock once; the [`crate::counter!`] and
//! [`crate::histogram!`] macros cache the handle at the call site so
//! steady-state use never touches the registry again.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

/// A named monotonic counter. Cheap to copy; obtain via
/// [`crate::counter!`] (call-site cached) or [`crate::counter()`].
#[derive(Debug, Clone, Copy)]
pub struct Counter(pub(crate) &'static AtomicU64);

impl Counter {
    /// Add `n` to the counter (no-op while observation is disabled).
    #[inline]
    pub fn add(self, n: u64) {
        if crate::enabled() {
            self.0.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Add 1 to the counter (no-op while observation is disabled).
    #[inline]
    pub fn incr(self) {
        self.add(1);
    }

    /// The current counter value.
    pub fn get(self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Number of log₂ value buckets a histogram tracks: bucket `i` counts
/// values `v` with `bit_width(v) == i`, so bucket 0 is exactly 0, bucket
/// 1 is 1, bucket 11 is 1024–2047 ns, and so on up to `u64::MAX`.
pub(crate) const HIST_BUCKETS: usize = 65;

/// The shared storage behind a [`Histogram`] handle.
#[derive(Debug)]
pub(crate) struct HistCore {
    pub(crate) buckets: [AtomicU64; HIST_BUCKETS],
    pub(crate) count: AtomicU64,
    pub(crate) sum: AtomicU64,
    pub(crate) min: AtomicU64,
    pub(crate) max: AtomicU64,
}

impl HistCore {
    pub(crate) fn new() -> Self {
        HistCore {
            buckets: [0u64; HIST_BUCKETS].map(AtomicU64::new),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
            max: AtomicU64::new(0),
        }
    }
}

/// A named log₂-bucketed histogram, conventionally of nanosecond
/// durations (suffix the name `_ns`). Cheap to copy; obtain via
/// [`crate::histogram!`] (call-site cached) or [`crate::histogram()`].
#[derive(Debug, Clone, Copy)]
pub struct Histogram(pub(crate) &'static HistCore);

impl Histogram {
    /// Record one value (no-op while observation is disabled).
    #[inline]
    pub fn record(self, value: u64) {
        if !crate::enabled() {
            return;
        }
        let h = self.0;
        let bucket = (u64::BITS - value.leading_zeros()) as usize;
        h.buckets[bucket].fetch_add(1, Ordering::Relaxed);
        h.count.fetch_add(1, Ordering::Relaxed);
        h.sum.fetch_add(value, Ordering::Relaxed);
        h.min.fetch_min(value, Ordering::Relaxed);
        h.max.fetch_max(value, Ordering::Relaxed);
    }

    /// Start a guard that records the elapsed nanoseconds into this
    /// histogram when dropped. While observation is disabled the guard
    /// is inert and no clock is read.
    #[inline]
    pub fn timer(self) -> Timer {
        Timer {
            hist: self,
            start: crate::enabled().then(Instant::now),
        }
    }

    /// Snapshot the current aggregate state.
    pub fn snapshot(self) -> HistSnapshot {
        let h = self.0;
        let count = h.count.load(Ordering::Relaxed);
        let buckets: Vec<u64> = h
            .buckets
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .collect();
        HistSnapshot {
            count,
            sum: h.sum.load(Ordering::Relaxed),
            min: if count == 0 {
                0
            } else {
                h.min.load(Ordering::Relaxed)
            },
            max: h.max.load(Ordering::Relaxed),
            buckets,
        }
    }

    pub(crate) fn reset(self) {
        let h = self.0;
        for b in &h.buckets {
            b.store(0, Ordering::Relaxed);
        }
        h.count.store(0, Ordering::Relaxed);
        h.sum.store(0, Ordering::Relaxed);
        h.min.store(u64::MAX, Ordering::Relaxed);
        h.max.store(0, Ordering::Relaxed);
    }
}

/// RAII guard from [`Histogram::timer`]: records elapsed nanoseconds on
/// drop (saturating to `u64::MAX`, which a 584-year span would need).
#[derive(Debug)]
pub struct Timer {
    hist: Histogram,
    start: Option<Instant>,
}

impl Drop for Timer {
    fn drop(&mut self) {
        if let Some(start) = self.start {
            let ns = u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX);
            self.hist.record(ns);
        }
    }
}

/// A point-in-time aggregate view of one histogram.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistSnapshot {
    /// Values recorded.
    pub count: u64,
    /// Sum of all recorded values.
    pub sum: u64,
    /// Smallest recorded value (0 when empty).
    pub min: u64,
    /// Largest recorded value.
    pub max: u64,
    /// Per-log₂-bucket counts (see [`Histogram`]).
    pub buckets: Vec<u64>,
}

impl HistSnapshot {
    /// Mean recorded value (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Approximate quantile `q` in `[0, 1]`: the upper bound of the
    /// bucket containing the `q`-th ranked value. Log₂ buckets make this
    /// accurate to within 2×, which is plenty for a latency summary.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= rank {
                // Upper bound of bucket i is 2^i - 1 (bucket 0 holds 0,
                // the last bucket tops out at u64::MAX).
                let upper = match i {
                    0 => 0,
                    64.. => u64::MAX,
                    _ => (1u64 << i) - 1,
                };
                return upper.min(self.max);
            }
        }
        self.max
    }
}
