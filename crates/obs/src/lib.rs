//! # dhdl-obs — observability for the DHDL toolchain
//!
//! The paper's core claim is *speed of evaluation*: any design point can
//! be estimated in milliseconds, so design space exploration can sweep
//! millions of points (§V). This crate is how the toolchain sees where
//! those milliseconds go. It provides three primitives —
//!
//! * [`span!`] — a lightweight RAII timing span (`span!("elaborate")`,
//!   or `span!("elaborate", shape)` to attach a numeric argument);
//! * [`counter!`] — a named monotonic counter
//!   (`counter!("cache.l1.hit").incr()`);
//! * [`histogram!`] — a named log₂-bucketed latency histogram
//!   (`histogram!("estimate.area_ns").timer()` records on drop) —
//!
//! all recorded into a process-global, thread-safe [`Recorder`] and
//! drained through pluggable [`Sink`]s: a human-readable summary table,
//! machine-readable JSON, and Chrome `trace_event` JSON loadable in
//! `chrome://tracing` or [Perfetto](https://ui.perfetto.dev).
//!
//! ## Off by default, near-zero overhead
//!
//! Recording is disabled until [`init`] (or [`init_from_env`], reading
//! `DHDL_OBS=off|summary|json|chrome`) selects a mode other than
//! [`Mode::Off`]. While disabled, every primitive costs one relaxed
//! atomic load and a branch — no clock reads, no allocation, no locks —
//! so instrumented hot paths (`elaborate`, `estimate_net`, the DSE
//! runner, the estimate cache, the simulator) are unperturbed; the
//! `obs_overhead` criterion bench in `dhdl-bench` pins this below 2% on
//! the estimate-net hot path. Observation never changes results either
//! way: sweeps are byte-identical with recording on or off (tested in
//! `dhdl-dse`'s `cache_consistency` suite).
//!
//! ## Wiring
//!
//! Binaries call [`init_from_env`] first and [`finish`] last:
//!
//! ```
//! dhdl_obs::init_from_env(); // honors DHDL_OBS, default off
//! {
//!     let _span = dhdl_obs::span!("work");
//!     dhdl_obs::counter!("work.items").add(3);
//! }
//! dhdl_obs::finish("my-binary"); // summary table / results/obs/ files
//! ```
//!
//! Output files land under `results/obs/` (respecting
//! `DHDL_RESULTS_DIR`): `<label>.obs.json` for [`Mode::Json`] and
//! `<label>.trace.json` for [`Mode::Chrome`].

#![deny(missing_docs)]

mod metrics;
mod recorder;
mod sink;
mod span;

pub use metrics::{Counter, HistSnapshot, Histogram, Timer};
pub use recorder::{Recorder, Report, SpanRollup};
pub use sink::{ChromeSink, JsonSink, Sink, SummarySink};
pub use span::{Span, SpanEvent};

use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU8, Ordering};
use std::sync::OnceLock;

/// What the process does with recorded observations, selected once at
/// startup via [`init`] / [`init_from_env`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Mode {
    /// No recording (the default): primitives cost one atomic load and
    /// a branch, and [`finish`] is a no-op.
    #[default]
    Off,
    /// Record, and print a human-readable summary table to stderr on
    /// [`finish`].
    Summary,
    /// Record, and write `results/obs/<label>.obs.json` on [`finish`].
    Json,
    /// Record, and write Chrome `trace_event` JSON to
    /// `results/obs/<label>.trace.json` on [`finish`] — open it in
    /// `chrome://tracing` or Perfetto.
    Chrome,
}

impl Mode {
    /// Parse a mode string: `off`/`0`, `summary`, `json`, or `chrome`.
    ///
    /// # Errors
    ///
    /// Returns the offending string for anything else — a typo'd
    /// `DHDL_OBS=sumary` must not silently disable observation.
    pub fn parse(s: &str) -> Result<Self, String> {
        match s {
            "off" | "0" => Ok(Mode::Off),
            "summary" => Ok(Mode::Summary),
            "json" => Ok(Mode::Json),
            "chrome" => Ok(Mode::Chrome),
            other => Err(format!(
                "unrecognized observation mode `{other}` (expected off|summary|json|chrome)"
            )),
        }
    }
}

impl std::str::FromStr for Mode {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        Mode::parse(s)
    }
}

/// Fast-path gate: `true` while a recording mode is active.
static ENABLED: AtomicBool = AtomicBool::new(false);
/// The active [`Mode`], as a `u8` (`Off`=0, `Summary`=1, `Json`=2,
/// `Chrome`=3).
static MODE: AtomicU8 = AtomicU8::new(0);

/// Whether observation is currently recording. Inlined into every
/// primitive; this load-plus-branch *is* the disabled-path overhead.
#[inline(always)]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Select the process observation mode. Usually called once at startup
/// (see [`init_from_env`]); tests may toggle it, which only affects
/// whether observations are recorded, never what instrumented code
/// computes.
pub fn init(mode: Mode) {
    MODE.store(mode as u8, Ordering::Relaxed);
    ENABLED.store(mode != Mode::Off, Ordering::Relaxed);
}

/// The currently selected [`Mode`].
pub fn mode() -> Mode {
    match MODE.load(Ordering::Relaxed) {
        1 => Mode::Summary,
        2 => Mode::Json,
        3 => Mode::Chrome,
        _ => Mode::Off,
    }
}

/// Initialize from the `DHDL_OBS` environment variable and return the
/// selected mode. Unset means [`Mode::Off`]; an unrecognized value warns
/// on stderr and stays off rather than masquerading as a valid mode.
pub fn init_from_env() -> Mode {
    let mode = match std::env::var("DHDL_OBS") {
        Ok(v) => Mode::parse(&v).unwrap_or_else(|e| {
            eprintln!("warning: DHDL_OBS: {e}; observation stays off");
            Mode::Off
        }),
        Err(_) => Mode::Off,
    };
    init(mode);
    mode
}

/// The process-global recorder every [`span!`], [`counter!`] and
/// [`histogram!`] records into.
pub fn recorder() -> &'static Recorder {
    static RECORDER: OnceLock<Recorder> = OnceLock::new();
    RECORDER.get_or_init(Recorder::new)
}

/// Register (or look up) the global counter `name`. Prefer the
/// [`counter!`] macro, which caches the handle at the call site.
pub fn counter(name: &'static str) -> Counter {
    recorder().counter(name)
}

/// Register (or look up) the global histogram `name`. Prefer the
/// [`histogram!`] macro, which caches the handle at the call site.
pub fn histogram(name: &'static str) -> Histogram {
    recorder().histogram(name)
}

/// Start a span named `name` on the global recorder; the returned guard
/// records the span when dropped. Prefer the [`span!`] macro.
#[inline]
pub fn span(name: &'static str) -> Span {
    Span::start(name, None, None)
}

/// [`span()`] with one numeric argument (shown in trace viewers and the
/// JSON dump as `{key: value}`).
#[inline]
pub fn span_arg(name: &'static str, key: &'static str, value: u64) -> Span {
    Span::start(name, Some((key, value)), None)
}

/// [`span()`] with a dynamic label (e.g. a benchmark name). The label is
/// only materialized while recording is enabled.
#[inline]
pub fn span_labeled(name: &'static str, label: &str) -> Span {
    if !enabled() {
        return Span::disabled();
    }
    Span::start(name, None, Some(label.to_string()))
}

/// Drain the global recorder through the sink the active [`Mode`]
/// selects: a summary table on stderr, or a JSON/Chrome-trace file named
/// after `label` under `results/obs/`. Returns the path written, if any.
/// A no-op (returning `None`) when observation is off.
pub fn finish(label: &str) -> Option<PathBuf> {
    let mode = mode();
    if mode == Mode::Off {
        return None;
    }
    let report = recorder().snapshot();
    match mode {
        Mode::Off => None,
        Mode::Summary => {
            let mut out = Vec::new();
            if SummarySink::new(&mut out).emit(&report).is_ok() {
                eprint!("{}", String::from_utf8_lossy(&out));
            }
            None
        }
        Mode::Json => write_report(label, "obs.json", |w| JsonSink::new(w).emit(&report)),
        Mode::Chrome => write_report(label, "trace.json", |w| ChromeSink::new(w).emit(&report)),
    }
}

/// The observation output directory, `<results>/obs/`, where `<results>`
/// honors `DHDL_RESULTS_DIR` (default `results`) like the bench harness.
pub fn obs_dir() -> PathBuf {
    let results = std::env::var("DHDL_RESULTS_DIR").unwrap_or_else(|_| "results".to_string());
    PathBuf::from(results).join("obs")
}

fn write_report(
    label: &str,
    ext: &str,
    emit: impl FnOnce(&mut Vec<u8>) -> std::io::Result<()>,
) -> Option<PathBuf> {
    let dir = obs_dir();
    if let Err(e) = std::fs::create_dir_all(&dir) {
        eprintln!("warning: could not create {}: {e}", dir.display());
        return None;
    }
    let path = dir.join(format!("{label}.{ext}"));
    let mut out = Vec::new();
    if let Err(e) = emit(&mut out) {
        eprintln!("warning: could not render observation report: {e}");
        return None;
    }
    match std::fs::write(&path, out) {
        Ok(()) => {
            eprintln!("observation report: {}", path.display());
            Some(path)
        }
        Err(e) => {
            eprintln!("warning: could not write {}: {e}", path.display());
            None
        }
    }
}

/// Start (or fetch) a named global counter, caching the handle in a
/// call-site static so repeated executions cost one atomic load.
///
/// ```
/// dhdl_obs::counter!("demo.widgets").add(2);
/// ```
#[macro_export]
macro_rules! counter {
    ($name:expr) => {{
        static __DHDL_OBS_COUNTER: ::std::sync::OnceLock<$crate::Counter> =
            ::std::sync::OnceLock::new();
        *__DHDL_OBS_COUNTER.get_or_init(|| $crate::counter($name))
    }};
}

/// Start (or fetch) a named global histogram, caching the handle in a
/// call-site static so repeated executions cost one atomic load.
///
/// ```
/// dhdl_obs::histogram!("demo.latency_ns").record(1_250);
/// ```
#[macro_export]
macro_rules! histogram {
    ($name:expr) => {{
        static __DHDL_OBS_HIST: ::std::sync::OnceLock<$crate::Histogram> =
            ::std::sync::OnceLock::new();
        *__DHDL_OBS_HIST.get_or_init(|| $crate::histogram($name))
    }};
}

/// Open a timing span that records when the returned guard drops. Bind
/// it (`let _span = ...`) so it lives to the end of the scope; a second
/// expression argument attaches `stringify!(arg) = arg as u64` to the
/// span.
///
/// ```
/// let shape = 0xBEEFu64;
/// let _span = dhdl_obs::span!("elaborate", shape);
/// ```
#[macro_export]
macro_rules! span {
    ($name:expr) => {
        $crate::span($name)
    };
    ($name:expr, $arg:expr) => {
        $crate::span_arg($name, stringify!($arg), ($arg) as u64)
    };
}
