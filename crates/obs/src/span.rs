//! Timing spans: RAII-scoped events with thread identity and nesting.
//!
//! A [`Span`] guard reads the clock twice (open and drop) and pushes one
//! [`SpanEvent`] into the global recorder's sharded buffers; shards are
//! picked by thread id, so concurrent workers almost never contend on a
//! lock. While observation is disabled the guard is inert: no clock
//! read, no allocation, no lock.

use std::cell::Cell;
use std::sync::atomic::{AtomicU32, Ordering};
use std::time::Instant;

/// One completed span, as stored by the recorder and rendered by sinks.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanEvent {
    /// Static span name (the first [`crate::span!`] argument).
    pub name: &'static str,
    /// Dynamic annotation from [`crate::span_labeled`] (e.g. a benchmark
    /// name); rendered as `name:label` in trace viewers.
    pub label: Option<String>,
    /// Optional numeric argument (`stringify!(arg)`, value).
    pub arg: Option<(&'static str, u64)>,
    /// Dense per-process thread id (0, 1, 2, … in order of first span).
    pub tid: u32,
    /// Nesting depth on its thread at open time (0 = top level).
    pub depth: u32,
    /// Open time in nanoseconds since the recorder's epoch.
    pub start_ns: u64,
    /// Duration in nanoseconds.
    pub dur_ns: u64,
}

thread_local! {
    static THREAD_ID: Cell<u32> = const { Cell::new(u32::MAX) };
    static DEPTH: Cell<u32> = const { Cell::new(0) };
}

/// Dense id of the calling thread, assigned on first use.
pub(crate) fn thread_id() -> u32 {
    static NEXT: AtomicU32 = AtomicU32::new(0);
    THREAD_ID.with(|id| {
        let v = id.get();
        if v != u32::MAX {
            return v;
        }
        let v = NEXT.fetch_add(1, Ordering::Relaxed);
        id.set(v);
        v
    })
}

/// An open timing span; records a [`SpanEvent`] into the global recorder
/// when dropped. Construct with [`crate::span!`], [`crate::span_arg`] or
/// [`crate::span_labeled`], and bind the guard (`let _span = …`) so it
/// spans the intended scope.
#[derive(Debug)]
pub struct Span {
    /// `None` when observation was disabled at open time: drop is free.
    open: Option<OpenSpan>,
}

#[derive(Debug)]
struct OpenSpan {
    name: &'static str,
    label: Option<String>,
    arg: Option<(&'static str, u64)>,
    depth: u32,
    start: Instant,
}

impl Span {
    /// An inert span (what every constructor returns while disabled).
    #[inline]
    pub(crate) fn disabled() -> Span {
        Span { open: None }
    }

    #[inline]
    pub(crate) fn start(
        name: &'static str,
        arg: Option<(&'static str, u64)>,
        label: Option<String>,
    ) -> Span {
        if !crate::enabled() {
            return Span::disabled();
        }
        let depth = DEPTH.with(|d| {
            let v = d.get();
            d.set(v + 1);
            v
        });
        Span {
            open: Some(OpenSpan {
                name,
                label,
                arg,
                depth,
                start: Instant::now(),
            }),
        }
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        let Some(open) = self.open.take() else {
            return;
        };
        let dur = open.start.elapsed();
        DEPTH.with(|d| d.set(d.get().saturating_sub(1)));
        let recorder = crate::recorder();
        let start_ns = u64::try_from(
            open.start
                .saturating_duration_since(recorder.epoch())
                .as_nanos(),
        )
        .unwrap_or(u64::MAX);
        recorder.push_span(SpanEvent {
            name: open.name,
            label: open.label,
            arg: open.arg,
            tid: thread_id(),
            depth: open.depth,
            start_ns,
            dur_ns: u64::try_from(dur.as_nanos()).unwrap_or(u64::MAX),
        });
    }
}
