//! Pluggable report sinks: summary table, machine-readable JSON, and
//! Chrome `trace_event` JSON.
//!
//! A [`Sink`] consumes a [`Report`] snapshot and renders it somewhere.
//! The three shipped sinks cover the `DHDL_OBS` modes; custom harnesses
//! can implement the trait to ship reports elsewhere (a metrics service,
//! a test assertion, …).

use std::io::{self, Write};

use crate::recorder::Report;

/// Render a [`Report`] to some destination.
pub trait Sink {
    /// Consume one report snapshot.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from the underlying writer.
    fn emit(&mut self, report: &Report) -> io::Result<()>;
}

/// Human-readable fixed-width summary table (the `DHDL_OBS=summary`
/// output): counters, histogram latency digests, and a span rollup by
/// total time.
#[derive(Debug)]
pub struct SummarySink<W: Write> {
    out: W,
}

impl<W: Write> SummarySink<W> {
    /// A summary sink writing to `out`.
    pub fn new(out: W) -> Self {
        SummarySink { out }
    }
}

/// Format nanoseconds with a human-scale unit.
fn fmt_ns(ns: u64) -> String {
    match ns {
        0..=9_999 => format!("{ns}ns"),
        10_000..=9_999_999 => format!("{:.1}us", ns as f64 / 1e3),
        10_000_000..=9_999_999_999 => format!("{:.1}ms", ns as f64 / 1e6),
        _ => format!("{:.2}s", ns as f64 / 1e9),
    }
}

impl<W: Write> Sink for SummarySink<W> {
    fn emit(&mut self, report: &Report) -> io::Result<()> {
        let w = &mut self.out;
        writeln!(w, "== dhdl-obs summary ==")?;
        if !report.spans.is_empty() {
            writeln!(
                w,
                "spans ({} recorded{}):",
                report.spans.len(),
                if report.dropped_spans > 0 {
                    format!(", {} dropped at cap", report.dropped_spans)
                } else {
                    String::new()
                }
            )?;
            writeln!(
                w,
                "  {:<28} {:>9} {:>12} {:>12} {:>12}",
                "name", "count", "total", "mean", "max"
            )?;
            for r in report.span_rollup() {
                writeln!(
                    w,
                    "  {:<28} {:>9} {:>12} {:>12} {:>12}",
                    r.name,
                    r.count,
                    fmt_ns(r.total_ns),
                    fmt_ns(r.total_ns / r.count.max(1)),
                    fmt_ns(r.max_ns)
                )?;
            }
        }
        if !report.histograms.is_empty() {
            writeln!(w, "histograms:")?;
            writeln!(
                w,
                "  {:<28} {:>9} {:>12} {:>12} {:>12} {:>12}",
                "name", "count", "mean", "p50", "p99", "max"
            )?;
            for (name, h) in &report.histograms {
                writeln!(
                    w,
                    "  {:<28} {:>9} {:>12} {:>12} {:>12} {:>12}",
                    name,
                    h.count,
                    fmt_ns(h.mean() as u64),
                    fmt_ns(h.quantile(0.5)),
                    fmt_ns(h.quantile(0.99)),
                    fmt_ns(h.max)
                )?;
            }
        }
        if !report.counters.is_empty() {
            writeln!(w, "counters:")?;
            for (name, value) in &report.counters {
                writeln!(w, "  {name:<28} {value:>12}")?;
            }
        }
        Ok(())
    }
}

/// Escape a string for embedding in a JSON string literal.
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Machine-readable JSON dump (the `DHDL_OBS=json` output): counters,
/// histogram digests, span rollups and the dropped-span count. The
/// format is a single flat object; see EXPERIMENTS.md for a sample.
#[derive(Debug)]
pub struct JsonSink<W: Write> {
    out: W,
}

impl<W: Write> JsonSink<W> {
    /// A JSON sink writing to `out`.
    pub fn new(out: W) -> Self {
        JsonSink { out }
    }
}

impl<W: Write> Sink for JsonSink<W> {
    fn emit(&mut self, report: &Report) -> io::Result<()> {
        let w = &mut self.out;
        writeln!(w, "{{")?;
        writeln!(w, "  \"counters\": {{")?;
        let n = report.counters.len();
        for (i, (name, value)) in report.counters.iter().enumerate() {
            let comma = if i + 1 < n { "," } else { "" };
            writeln!(w, "    \"{}\": {value}{comma}", json_escape(name))?;
        }
        writeln!(w, "  }},")?;
        writeln!(w, "  \"histograms\": {{")?;
        let n = report.histograms.len();
        for (i, (name, h)) in report.histograms.iter().enumerate() {
            let comma = if i + 1 < n { "," } else { "" };
            writeln!(
                w,
                "    \"{}\": {{\"count\": {}, \"sum\": {}, \"min\": {}, \"max\": {}, \
                 \"mean\": {:.1}, \"p50\": {}, \"p99\": {}}}{comma}",
                json_escape(name),
                h.count,
                h.sum,
                h.min,
                h.max,
                h.mean(),
                h.quantile(0.5),
                h.quantile(0.99)
            )?;
        }
        writeln!(w, "  }},")?;
        writeln!(w, "  \"spans\": [")?;
        let rollup = report.span_rollup();
        for (i, r) in rollup.iter().enumerate() {
            let comma = if i + 1 < rollup.len() { "," } else { "" };
            writeln!(
                w,
                "    {{\"name\": \"{}\", \"count\": {}, \"total_ns\": {}, \"max_ns\": {}}}{comma}",
                json_escape(r.name),
                r.count,
                r.total_ns,
                r.max_ns
            )?;
        }
        writeln!(w, "  ],")?;
        writeln!(w, "  \"span_events\": {},", report.spans.len())?;
        writeln!(w, "  \"dropped_spans\": {}", report.dropped_spans)?;
        writeln!(w, "}}")
    }
}

/// Chrome `trace_event` JSON (the `DHDL_OBS=chrome` output): one
/// complete (`"ph": "X"`) event per span, timestamps in microseconds
/// since the recorder epoch, counters attached as a final metadata
/// event. Load the file in `chrome://tracing` or Perfetto.
#[derive(Debug)]
pub struct ChromeSink<W: Write> {
    out: W,
}

impl<W: Write> ChromeSink<W> {
    /// A Chrome-trace sink writing to `out`.
    pub fn new(out: W) -> Self {
        ChromeSink { out }
    }
}

impl<W: Write> Sink for ChromeSink<W> {
    fn emit(&mut self, report: &Report) -> io::Result<()> {
        let w = &mut self.out;
        writeln!(w, "{{\"displayTimeUnit\": \"ms\", \"traceEvents\": [")?;
        writeln!(
            w,
            "  {{\"ph\": \"M\", \"pid\": 1, \"tid\": 0, \"name\": \"process_name\", \
             \"args\": {{\"name\": \"dhdl\"}}}},"
        )?;
        for s in &report.spans {
            let name = match &s.label {
                Some(label) => format!("{}:{}", s.name, label),
                None => s.name.to_string(),
            };
            let args = match s.arg {
                Some((key, value)) => format!("{{\"{}\": {value}}}", json_escape(key)),
                None => "{}".to_string(),
            };
            writeln!(
                w,
                "  {{\"name\": \"{}\", \"cat\": \"dhdl\", \"ph\": \"X\", \"pid\": 1, \
                 \"tid\": {}, \"ts\": {:.3}, \"dur\": {:.3}, \"args\": {args}}},",
                json_escape(&name),
                s.tid,
                s.start_ns as f64 / 1e3,
                s.dur_ns as f64 / 1e3
            )?;
        }
        // Final (comma-terminating) metadata event carrying the counters.
        let counters: Vec<String> = report
            .counters
            .iter()
            .map(|(name, value)| format!("\"{}\": {value}", json_escape(name)))
            .collect();
        writeln!(
            w,
            "  {{\"ph\": \"M\", \"pid\": 1, \"tid\": 0, \"name\": \"dhdl_counters\", \
             \"args\": {{{}}}}}",
            counters.join(", ")
        )?;
        writeln!(w, "]}}")
    }
}
