//! The in-memory recorder: registries for counters and histograms plus
//! sharded span buffers, snapshotting into a [`Report`] for the sinks.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::Instant;

use crate::metrics::{Counter, HistCore, HistSnapshot, Histogram};
use crate::span::SpanEvent;

/// Span-buffer shards; a power of two indexed by thread id, so worker
/// threads in the DSE pool each append to their own lock.
const SPAN_SHARDS: usize = 16;

/// Retained-span cap. A fig5 sweep at the paper's 75 000 points per
/// benchmark opens roughly half a million spans; the cap is comfortably
/// above that but bounds memory for pathological loops. Spans past the
/// cap are counted in [`Report::dropped_spans`], never silently lost.
const MAX_SPANS: usize = 1 << 20;

/// The thread-safe in-memory store behind the [`crate::span!`],
/// [`crate::counter!`] and [`crate::histogram!`] primitives.
///
/// One process-global instance exists ([`crate::recorder`]); the type is
/// public so tests and custom harnesses can snapshot and render it
/// through any [`crate::Sink`]. Counter and histogram storage is leaked
/// on registration to hand out `&'static` handles — the registry is
/// bounded by the (static) set of metric names in the codebase.
#[derive(Debug)]
pub struct Recorder {
    counters: Mutex<BTreeMap<&'static str, Counter>>,
    histograms: Mutex<BTreeMap<&'static str, Histogram>>,
    spans: Vec<Mutex<Vec<SpanEvent>>>,
    span_count: AtomicUsize,
    dropped_spans: AtomicU64,
    epoch: Instant,
}

impl Recorder {
    /// An empty recorder whose epoch (span timestamp zero) is now.
    pub fn new() -> Self {
        Recorder {
            counters: Mutex::new(BTreeMap::new()),
            histograms: Mutex::new(BTreeMap::new()),
            spans: (0..SPAN_SHARDS).map(|_| Mutex::new(Vec::new())).collect(),
            span_count: AtomicUsize::new(0),
            dropped_spans: AtomicU64::new(0),
            epoch: Instant::now(),
        }
    }

    /// The instant span timestamps are measured from.
    pub fn epoch(&self) -> Instant {
        self.epoch
    }

    /// Register (or fetch) the counter `name`.
    pub fn counter(&self, name: &'static str) -> Counter {
        let mut map = self.counters.lock().unwrap_or_else(|e| e.into_inner());
        *map.entry(name)
            .or_insert_with(|| Counter(Box::leak(Box::new(AtomicU64::new(0)))))
    }

    /// Register (or fetch) the histogram `name`.
    pub fn histogram(&self, name: &'static str) -> Histogram {
        let mut map = self.histograms.lock().unwrap_or_else(|e| e.into_inner());
        *map.entry(name)
            .or_insert_with(|| Histogram(Box::leak(Box::new(HistCore::new()))))
    }

    /// Append a completed span event (called from [`crate::Span`]'s
    /// drop). Applies the retained-span cap.
    pub(crate) fn push_span(&self, event: SpanEvent) {
        if self.span_count.fetch_add(1, Ordering::Relaxed) >= MAX_SPANS {
            self.span_count.fetch_sub(1, Ordering::Relaxed);
            self.dropped_spans.fetch_add(1, Ordering::Relaxed);
            return;
        }
        let shard = (event.tid as usize) & (SPAN_SHARDS - 1);
        self.spans[shard]
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .push(event);
    }

    /// Snapshot everything recorded so far into a [`Report`]. Spans are
    /// returned sorted by `(start_ns, tid)` so output is stable for a
    /// given set of events.
    pub fn snapshot(&self) -> Report {
        let counters: BTreeMap<&'static str, u64> = self
            .counters
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .iter()
            .map(|(&name, c)| (name, c.get()))
            .collect();
        let histograms: BTreeMap<&'static str, HistSnapshot> = self
            .histograms
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .iter()
            .map(|(&name, h)| (name, h.snapshot()))
            .collect();
        let mut spans: Vec<SpanEvent> = Vec::with_capacity(self.span_count.load(Ordering::Relaxed));
        for shard in &self.spans {
            spans.extend(
                shard
                    .lock()
                    .unwrap_or_else(|e| e.into_inner())
                    .iter()
                    .cloned(),
            );
        }
        spans.sort_by_key(|s| (s.start_ns, s.tid));
        Report {
            counters,
            histograms,
            spans,
            dropped_spans: self.dropped_spans.load(Ordering::Relaxed),
        }
    }

    /// Zero every counter and histogram and discard all spans. Metric
    /// registrations (and the handles pointing at them) stay valid. For
    /// tests and multi-phase harnesses that want per-phase reports.
    pub fn reset(&self) {
        for c in self
            .counters
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .values()
        {
            c.0.store(0, Ordering::Relaxed);
        }
        for h in self
            .histograms
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .values()
        {
            h.reset();
        }
        for shard in &self.spans {
            shard.lock().unwrap_or_else(|e| e.into_inner()).clear();
        }
        self.span_count.store(0, Ordering::Relaxed);
        self.dropped_spans.store(0, Ordering::Relaxed);
    }
}

impl Default for Recorder {
    fn default() -> Self {
        Recorder::new()
    }
}

/// A point-in-time snapshot of a [`Recorder`], consumed by sinks.
#[derive(Debug, Clone)]
pub struct Report {
    /// Counter values by name.
    pub counters: BTreeMap<&'static str, u64>,
    /// Histogram aggregates by name.
    pub histograms: BTreeMap<&'static str, HistSnapshot>,
    /// Completed spans, sorted by start time then thread.
    pub spans: Vec<SpanEvent>,
    /// Spans discarded after the retained-span cap was hit.
    pub dropped_spans: u64,
}

impl Report {
    /// Aggregate spans by name: count and total/max duration per name,
    /// sorted by descending total time (what the summary table prints).
    pub fn span_rollup(&self) -> Vec<SpanRollup> {
        let mut by_name: BTreeMap<&'static str, SpanRollup> = BTreeMap::new();
        for s in &self.spans {
            let e = by_name.entry(s.name).or_insert(SpanRollup {
                name: s.name,
                count: 0,
                total_ns: 0,
                max_ns: 0,
            });
            e.count += 1;
            e.total_ns = e.total_ns.saturating_add(s.dur_ns);
            e.max_ns = e.max_ns.max(s.dur_ns);
        }
        let mut rollup: Vec<SpanRollup> = by_name.into_values().collect();
        rollup.sort_by(|a, b| b.total_ns.cmp(&a.total_ns).then(a.name.cmp(b.name)));
        rollup
    }

    /// Wall-clock nanoseconds covered by top-level (`depth == 0`) spans,
    /// per thread, summed. Nested spans are excluded so time is not
    /// double-counted; this is the numerator of the "spans cover ≥ 90%
    /// of sweep wall-clock" acceptance check.
    pub fn toplevel_coverage_ns(&self) -> u64 {
        self.spans
            .iter()
            .filter(|s| s.depth == 0)
            .map(|s| s.dur_ns)
            .sum()
    }
}

/// Per-name span aggregate (see [`Report::span_rollup`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpanRollup {
    /// Span name.
    pub name: &'static str,
    /// Number of completed spans with this name.
    pub count: u64,
    /// Sum of their durations in nanoseconds.
    pub total_ns: u64,
    /// Longest single span in nanoseconds.
    pub max_ns: u64,
}
