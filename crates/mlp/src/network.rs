//! Feed-forward multilayer perceptron.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Activation function of a layer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Activation {
    /// Logistic sigmoid, `1 / (1 + e^-x)`.
    Sigmoid,
    /// Hyperbolic tangent.
    Tanh,
    /// Identity (used for regression output layers).
    Linear,
    /// Rectified linear unit.
    Relu,
}

impl Activation {
    /// Apply the activation.
    pub fn apply(self, x: f64) -> f64 {
        match self {
            Activation::Sigmoid => 1.0 / (1.0 + (-x).exp()),
            Activation::Tanh => x.tanh(),
            Activation::Linear => x,
            Activation::Relu => x.max(0.0),
        }
    }

    /// Derivative of the activation expressed in terms of the *output* `y`.
    pub fn derivative_from_output(self, y: f64) -> f64 {
        match self {
            Activation::Sigmoid => y * (1.0 - y),
            Activation::Tanh => 1.0 - y * y,
            Activation::Linear => 1.0,
            Activation::Relu => {
                if y > 0.0 {
                    1.0
                } else {
                    0.0
                }
            }
        }
    }

    fn tag(self) -> &'static str {
        match self {
            Activation::Sigmoid => "sigmoid",
            Activation::Tanh => "tanh",
            Activation::Linear => "linear",
            Activation::Relu => "relu",
        }
    }

    fn from_tag(s: &str) -> Option<Self> {
        match s {
            "sigmoid" => Some(Activation::Sigmoid),
            "tanh" => Some(Activation::Tanh),
            "linear" => Some(Activation::Linear),
            "relu" => Some(Activation::Relu),
            _ => None,
        }
    }
}

/// One fully connected layer: `outputs × (inputs + 1)` weights, the last
/// column being the bias.
#[derive(Debug, Clone, PartialEq)]
pub struct Layer {
    pub(crate) inputs: usize,
    pub(crate) outputs: usize,
    pub(crate) activation: Activation,
    /// Row-major `[out][in+1]` weight matrix.
    pub(crate) weights: Vec<f64>,
}

impl Layer {
    fn new(inputs: usize, outputs: usize, activation: Activation, rng: &mut StdRng) -> Self {
        // Xavier-style uniform initialization.
        let scale = (6.0 / (inputs + outputs) as f64).sqrt();
        let weights = (0..outputs * (inputs + 1))
            .map(|_| rng.gen_range(-scale..scale))
            .collect();
        Layer {
            inputs,
            outputs,
            activation,
            weights,
        }
    }

    fn forward(&self, x: &[f64], out: &mut Vec<f64>) {
        out.clear();
        for o in 0..self.outputs {
            let row = &self.weights[o * (self.inputs + 1)..(o + 1) * (self.inputs + 1)];
            let mut acc = row[self.inputs]; // bias
            for (w, xi) in row[..self.inputs].iter().zip(x) {
                acc += w * xi;
            }
            out.push(self.activation.apply(acc));
        }
    }
}

/// A fully connected feed-forward network.
///
/// The paper's area estimator uses three-layer networks with eleven input
/// nodes, six hidden nodes and one output node (§IV-B2); this type supports
/// arbitrary layer shapes.
///
/// # Examples
///
/// ```
/// use dhdl_mlp::{Activation, Mlp};
///
/// let net = Mlp::new(&[11, 6, 1], Activation::Sigmoid, 42);
/// let y = net.forward(&[0.5; 11]);
/// assert_eq!(y.len(), 1);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Mlp {
    pub(crate) layers: Vec<Layer>,
}

impl Mlp {
    /// Create a network with the given layer sizes (first entry is the
    /// input width), hidden activation, and RNG seed. The output layer is
    /// linear.
    ///
    /// # Panics
    ///
    /// Panics if fewer than two sizes are given or any size is zero.
    pub fn new(sizes: &[usize], hidden: Activation, seed: u64) -> Self {
        assert!(sizes.len() >= 2, "need at least input and output sizes");
        assert!(sizes.iter().all(|&s| s > 0), "layer sizes must be nonzero");
        let mut rng = StdRng::seed_from_u64(seed);
        let layers = sizes
            .windows(2)
            .enumerate()
            .map(|(i, w)| {
                let act = if i + 2 == sizes.len() {
                    Activation::Linear
                } else {
                    hidden
                };
                Layer::new(w[0], w[1], act, &mut rng)
            })
            .collect();
        Mlp { layers }
    }

    /// Input width of the network.
    pub fn input_size(&self) -> usize {
        self.layers.first().map_or(0, |l| l.inputs)
    }

    /// Output width of the network.
    pub fn output_size(&self) -> usize {
        self.layers.last().map_or(0, |l| l.outputs)
    }

    /// Total number of trainable weights (including biases).
    pub fn weight_count(&self) -> usize {
        self.layers.iter().map(|l| l.weights.len()).sum()
    }

    /// Run the network on one input vector.
    ///
    /// # Panics
    ///
    /// Panics if `x.len()` differs from [`Mlp::input_size`].
    pub fn forward(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.input_size(), "input width mismatch");
        let mut cur = x.to_vec();
        let mut next = Vec::new();
        for layer in &self.layers {
            layer.forward(&cur, &mut next);
            std::mem::swap(&mut cur, &mut next);
        }
        cur
    }

    /// Forward pass retaining every layer's output (for backpropagation).
    /// Index 0 is the input itself.
    pub(crate) fn forward_trace(&self, x: &[f64]) -> Vec<Vec<f64>> {
        let mut acts = Vec::with_capacity(self.layers.len() + 1);
        acts.push(x.to_vec());
        for layer in &self.layers {
            let mut out = Vec::new();
            layer.forward(acts.last().expect("nonempty"), &mut out);
            acts.push(out);
        }
        acts
    }

    /// Serialize the network to a plain-text format.
    pub fn to_text(&self) -> String {
        let mut s = String::from("mlp v1\n");
        for l in &self.layers {
            s.push_str(&format!(
                "layer {} {} {}\n",
                l.inputs,
                l.outputs,
                l.activation.tag()
            ));
            for w in &l.weights {
                s.push_str(&format!("{w:e}\n"));
            }
        }
        s
    }

    /// Deserialize a network from [`Mlp::to_text`] output.
    ///
    /// # Errors
    ///
    /// Returns a description of the first malformed line.
    pub fn from_text(text: &str) -> Result<Self, String> {
        let mut lines = text.lines();
        let header = lines.next().ok_or("empty input")?;
        if header != "mlp v1" {
            return Err(format!("bad header `{header}`"));
        }
        let mut layers = Vec::new();
        let mut line = lines.next();
        while let Some(l) = line {
            let parts: Vec<&str> = l.split_whitespace().collect();
            if parts.len() != 4 || parts[0] != "layer" {
                return Err(format!("expected layer header, got `{l}`"));
            }
            let inputs: usize = parts[1].parse().map_err(|e| format!("{e}"))?;
            let outputs: usize = parts[2].parse().map_err(|e| format!("{e}"))?;
            let activation =
                Activation::from_tag(parts[3]).ok_or_else(|| format!("bad activation {l}"))?;
            let n = outputs * (inputs + 1);
            let mut weights = Vec::with_capacity(n);
            for _ in 0..n {
                let w = lines.next().ok_or("truncated weights")?;
                weights.push(w.trim().parse::<f64>().map_err(|e| format!("{e}"))?);
            }
            layers.push(Layer {
                inputs,
                outputs,
                activation,
                weights,
            });
            line = lines.next();
        }
        if layers.is_empty() {
            return Err("no layers".into());
        }
        Ok(Mlp { layers })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shapes() {
        let net = Mlp::new(&[11, 6, 1], Activation::Sigmoid, 1);
        assert_eq!(net.input_size(), 11);
        assert_eq!(net.output_size(), 1);
        assert_eq!(net.weight_count(), 6 * 12 + 7);
        assert_eq!(net.forward(&[0.0; 11]).len(), 1);
    }

    #[test]
    fn deterministic_by_seed() {
        let a = Mlp::new(&[4, 3, 2], Activation::Tanh, 7);
        let b = Mlp::new(&[4, 3, 2], Activation::Tanh, 7);
        let c = Mlp::new(&[4, 3, 2], Activation::Tanh, 8);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn roundtrip_text() {
        let net = Mlp::new(&[5, 4, 1], Activation::Sigmoid, 3);
        let text = net.to_text();
        let back = Mlp::from_text(&text).unwrap();
        let x = [0.1, -0.2, 0.3, 0.4, -0.5];
        assert_eq!(net.forward(&x), back.forward(&x));
    }

    #[test]
    fn from_text_rejects_garbage() {
        assert!(Mlp::from_text("").is_err());
        assert!(Mlp::from_text("mlp v1\nlayer x y z\n").is_err());
        assert!(Mlp::from_text("nope").is_err());
        assert!(Mlp::from_text("mlp v1\n").is_err());
    }

    #[test]
    fn activations() {
        assert_eq!(Activation::Linear.apply(3.5), 3.5);
        assert_eq!(Activation::Relu.apply(-1.0), 0.0);
        assert!((Activation::Sigmoid.apply(0.0) - 0.5).abs() < 1e-12);
        assert!((Activation::Tanh.derivative_from_output(0.0) - 1.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "input width mismatch")]
    fn forward_checks_width() {
        let net = Mlp::new(&[3, 2], Activation::Sigmoid, 0);
        net.forward(&[1.0]);
    }
}
