//! # dhdl-mlp — a small neural network library
//!
//! Substitute for the Encog machine-learning library used by the paper's
//! hybrid area estimator (§IV-B2): fully connected feed-forward networks
//! with RPROP training and min-max feature normalization.
//!
//! The paper's estimator uses "a set of small artificial neural networks
//! ... three fully connected layers with eleven input nodes, six hidden
//! layer nodes, and a single output node", trained once per target device
//! and toolchain on ~200 design samples.
//!
//! ```
//! use dhdl_mlp::{train_rprop, Activation, Dataset, Mlp, TrainConfig};
//!
//! // Fit y = x^2 on [0, 1].
//! let mut data = Dataset::new();
//! for i in 0..=20 {
//!     let x = i as f64 / 20.0;
//!     data.push(&[x], &[x * x]);
//! }
//! let mut net = Mlp::new(&[1, 6, 1], Activation::Sigmoid, 42);
//! let report = train_rprop(&mut net, &data, &TrainConfig::default());
//! assert!(report.mse < 1e-3);
//! ```

#![warn(missing_docs)]

mod network;
mod norm;
mod train;

pub use network::{Activation, Mlp};
pub use norm::Normalizer;
pub use train::{mse, train_rprop, train_sgd, Dataset, SgdConfig, TrainConfig, TrainReport};

/// A regression model bundling a network with its input/output normalizers,
/// predicting a single scalar from a feature vector.
#[derive(Debug, Clone, PartialEq)]
pub struct Regressor {
    net: Mlp,
    inputs: Normalizer,
    outputs: Normalizer,
}

impl Regressor {
    /// Fit a regressor on `(features, target)` samples using a
    /// `[n_features, hidden, 1]` network.
    ///
    /// # Panics
    ///
    /// Panics if `samples` is empty.
    pub fn fit(samples: &[(Vec<f64>, f64)], hidden: usize, seed: u64, cfg: &TrainConfig) -> Self {
        assert!(!samples.is_empty(), "cannot fit a regressor to no data");
        let xs: Vec<Vec<f64>> = samples.iter().map(|(x, _)| x.clone()).collect();
        let ys: Vec<Vec<f64>> = samples.iter().map(|&(_, y)| vec![y]).collect();
        let inputs = Normalizer::fit(&xs);
        let outputs = Normalizer::fit(&ys);
        let mut data = Dataset::new();
        for ((x, _), y) in samples.iter().zip(&ys) {
            data.push(&inputs.apply(x), &outputs.apply(y));
        }
        let mut net = Mlp::new(&[xs[0].len(), hidden, 1], Activation::Sigmoid, seed);
        train_rprop(&mut net, &data, cfg);
        Regressor {
            net,
            inputs,
            outputs,
        }
    }

    /// Predict the target for one feature vector.
    pub fn predict(&self, features: &[f64]) -> f64 {
        let x = self.inputs.apply(features);
        let y = self.net.forward(&x);
        self.outputs.invert(0, y[0])
    }

    /// Serialize to plain text.
    pub fn to_text(&self) -> String {
        format!(
            "{}--\n{}--\n{}",
            self.net.to_text(),
            self.inputs.to_text(),
            self.outputs.to_text()
        )
    }

    /// Deserialize from [`Regressor::to_text`] output.
    ///
    /// # Errors
    ///
    /// Returns a description of the malformed section.
    pub fn from_text(text: &str) -> Result<Self, String> {
        let mut parts = text.split("--\n");
        let net = Mlp::from_text(parts.next().ok_or("missing network")?)?;
        let inputs = Normalizer::from_text(parts.next().ok_or("missing input norm")?)?;
        let outputs = Normalizer::from_text(parts.next().ok_or("missing output norm")?)?;
        Ok(Regressor {
            net,
            inputs,
            outputs,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn regressor_fits_polynomial() {
        // §IV-B2 cites universal approximation of polynomials as the
        // rationale for three-layer networks; verify on a cubic.
        let samples: Vec<(Vec<f64>, f64)> = (0..40)
            .map(|i| {
                let x = i as f64 / 40.0;
                (vec![x], 3.0 * x * x * x - 2.0 * x + 1.0)
            })
            .collect();
        let cfg = TrainConfig {
            max_epochs: 6000,
            ..TrainConfig::default()
        };
        let r = Regressor::fit(&samples, 8, 9, &cfg);
        for (x, y) in &samples {
            assert!((r.predict(x) - y).abs() < 0.08, "x={x:?} y={y}");
        }
    }

    #[test]
    fn regressor_roundtrip() {
        let samples: Vec<(Vec<f64>, f64)> = (0..10)
            .map(|i| (vec![i as f64, (10 - i) as f64], i as f64 * 2.0))
            .collect();
        let r = Regressor::fit(&samples, 4, 2, &TrainConfig::default());
        let back = Regressor::from_text(&r.to_text()).unwrap();
        assert_eq!(r.predict(&[3.0, 7.0]), back.predict(&[3.0, 7.0]));
    }
}
