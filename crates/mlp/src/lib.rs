//! # dhdl-mlp — a small neural network library
//!
//! Substitute for the Encog machine-learning library used by the paper's
//! hybrid area estimator (§IV-B2): fully connected feed-forward networks
//! with RPROP training and min-max feature normalization.
//!
//! The paper's estimator uses "a set of small artificial neural networks
//! ... three fully connected layers with eleven input nodes, six hidden
//! layer nodes, and a single output node", trained once per target device
//! and toolchain on ~200 design samples.
//!
//! ```
//! use dhdl_mlp::{train_rprop, Activation, Dataset, Mlp, TrainConfig};
//!
//! // Fit y = x^2 on [0, 1].
//! let mut data = Dataset::new();
//! for i in 0..=20 {
//!     let x = i as f64 / 20.0;
//!     data.push(&[x], &[x * x]);
//! }
//! let mut net = Mlp::new(&[1, 6, 1], Activation::Sigmoid, 42);
//! let report = train_rprop(&mut net, &data, &TrainConfig::default());
//! assert!(report.mse < 1e-3);
//! ```

#![warn(missing_docs)]

mod network;
mod norm;
mod train;

pub use network::{Activation, Mlp};
pub use norm::Normalizer;
pub use train::{mse, train_rprop, train_sgd, Dataset, SgdConfig, TrainConfig, TrainReport};

/// A regression model bundling a network with its input/output normalizers,
/// predicting a single scalar from a feature vector.
#[derive(Debug, Clone, PartialEq)]
pub struct Regressor {
    net: Mlp,
    inputs: Normalizer,
    outputs: Normalizer,
}

impl Regressor {
    /// Fit a regressor on `(features, target)` samples using a
    /// `[n_features, hidden, 1]` network.
    ///
    /// Samples with a non-finite feature or target are skipped (and
    /// counted on the `mlp.train.skipped_nonfinite` obs counter) rather
    /// than fitted: a single NaN target would otherwise poison every
    /// gradient and silently ruin the whole network — exactly what an
    /// injected estimator fault must not be able to do to a DSE
    /// surrogate.
    ///
    /// # Panics
    ///
    /// Panics if no finite sample remains; use [`Regressor::try_fit`]
    /// for untrusted data.
    pub fn fit(samples: &[(Vec<f64>, f64)], hidden: usize, seed: u64, cfg: &TrainConfig) -> Self {
        Self::try_fit(samples, hidden, seed, cfg)
            .expect("cannot fit a regressor to no (finite) data")
    }

    /// The non-panicking form of [`Regressor::fit`]: `None` when
    /// `samples` contains no finite sample to train on.
    pub fn try_fit(
        samples: &[(Vec<f64>, f64)],
        hidden: usize,
        seed: u64,
        cfg: &TrainConfig,
    ) -> Option<Self> {
        let finite: Vec<&(Vec<f64>, f64)> = samples
            .iter()
            .filter(|(x, y)| y.is_finite() && x.iter().all(|v| v.is_finite()))
            .collect();
        let skipped = samples.len() - finite.len();
        if skipped > 0 {
            dhdl_obs::counter!("mlp.train.skipped_nonfinite").add(skipped as u64);
        }
        if finite.is_empty() {
            return None;
        }
        let xs: Vec<Vec<f64>> = finite.iter().map(|(x, _)| x.clone()).collect();
        let ys: Vec<Vec<f64>> = finite.iter().map(|&&(_, y)| vec![y]).collect();
        let inputs = Normalizer::fit(&xs);
        let outputs = Normalizer::fit(&ys);
        let mut data = Dataset::new();
        for ((x, _), y) in finite.iter().zip(&ys) {
            data.push(&inputs.apply(x), &outputs.apply(y));
        }
        let mut net = Mlp::new(&[xs[0].len(), hidden, 1], Activation::Sigmoid, seed);
        train_rprop(&mut net, &data, cfg);
        Some(Regressor {
            net,
            inputs,
            outputs,
        })
    }

    /// Predict the target for one feature vector.
    pub fn predict(&self, features: &[f64]) -> f64 {
        let x = self.inputs.apply(features);
        let y = self.net.forward(&x);
        self.outputs.invert(0, y[0])
    }

    /// Serialize to plain text.
    pub fn to_text(&self) -> String {
        format!(
            "{}--\n{}--\n{}",
            self.net.to_text(),
            self.inputs.to_text(),
            self.outputs.to_text()
        )
    }

    /// Deserialize from [`Regressor::to_text`] output.
    ///
    /// # Errors
    ///
    /// Returns a description of the malformed section.
    pub fn from_text(text: &str) -> Result<Self, String> {
        let mut parts = text.split("--\n");
        let net = Mlp::from_text(parts.next().ok_or("missing network")?)?;
        let inputs = Normalizer::from_text(parts.next().ok_or("missing input norm")?)?;
        let outputs = Normalizer::from_text(parts.next().ok_or("missing output norm")?)?;
        Ok(Regressor {
            net,
            inputs,
            outputs,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn regressor_fits_polynomial() {
        // §IV-B2 cites universal approximation of polynomials as the
        // rationale for three-layer networks; verify on a cubic.
        let samples: Vec<(Vec<f64>, f64)> = (0..40)
            .map(|i| {
                let x = i as f64 / 40.0;
                (vec![x], 3.0 * x * x * x - 2.0 * x + 1.0)
            })
            .collect();
        let cfg = TrainConfig {
            max_epochs: 6000,
            ..TrainConfig::default()
        };
        let r = Regressor::fit(&samples, 8, 9, &cfg);
        for (x, y) in &samples {
            assert!((r.predict(x) - y).abs() < 0.08, "x={x:?} y={y}");
        }
    }

    #[test]
    fn training_is_bit_identical_per_seed() {
        // The DSE surrogate's determinism story rests on this: the same
        // seed and data must yield byte-identical weights — so the whole
        // serialized model, and every prediction, must match bit for bit.
        let samples: Vec<(Vec<f64>, f64)> = (0..30)
            .map(|i| {
                let x = i as f64 / 30.0;
                (vec![x, 1.0 - x], (2.0 * x - 0.3).sin())
            })
            .collect();
        let cfg = TrainConfig::default();
        let a = Regressor::fit(&samples, 6, 1234, &cfg);
        let b = Regressor::fit(&samples, 6, 1234, &cfg);
        assert_eq!(a, b);
        assert_eq!(a.to_text(), b.to_text());
        assert_eq!(
            a.predict(&[0.4, 0.6]).to_bits(),
            b.predict(&[0.4, 0.6]).to_bits()
        );
        // A different seed initializes differently.
        let c = Regressor::fit(&samples, 6, 1235, &cfg);
        assert_ne!(a.to_text(), c.to_text());
    }

    #[test]
    fn non_finite_samples_are_skipped_not_propagated() {
        let mut samples: Vec<(Vec<f64>, f64)> = (0..20)
            .map(|i| {
                let x = i as f64 / 20.0;
                (vec![x], 2.0 * x + 0.5)
            })
            .collect();
        let clean = Regressor::fit(&samples, 4, 7, &TrainConfig::default());
        // Poison the set with NaN/inf targets and a NaN feature: the fit
        // must match a fit on the clean subset exactly.
        samples.push((vec![0.3], f64::NAN));
        samples.push((vec![0.6], f64::INFINITY));
        samples.push((vec![f64::NAN], 1.0));
        let guarded = Regressor::fit(&samples, 4, 7, &TrainConfig::default());
        assert_eq!(clean, guarded);
        assert!(guarded.predict(&[0.5]).is_finite());
        // All-poison data refuses to fit instead of panicking.
        let poison = vec![(vec![0.1], f64::NAN)];
        assert!(Regressor::try_fit(&poison, 4, 7, &TrainConfig::default()).is_none());
        assert!(Regressor::try_fit(&[], 4, 7, &TrainConfig::default()).is_none());
    }

    #[test]
    fn regressor_roundtrip() {
        let samples: Vec<(Vec<f64>, f64)> = (0..10)
            .map(|i| (vec![i as f64, (10 - i) as f64], i as f64 * 2.0))
            .collect();
        let r = Regressor::fit(&samples, 4, 2, &TrainConfig::default());
        let back = Regressor::from_text(&r.to_text()).unwrap();
        assert_eq!(r.predict(&[3.0, 7.0]), back.predict(&[3.0, 7.0]));
    }
}
