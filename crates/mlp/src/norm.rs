//! Feature normalization for network inputs and outputs.

/// Per-column min-max normalizer mapping observed ranges to `[0, 1]`.
///
/// Neural regression over raw resource counts (which span several orders of
/// magnitude) requires normalization; the normalizer is fitted on the
/// training set and stored alongside the network.
#[derive(Debug, Clone, PartialEq)]
pub struct Normalizer {
    mins: Vec<f64>,
    maxs: Vec<f64>,
}

impl Normalizer {
    /// Fit a normalizer to a set of sample rows.
    ///
    /// # Panics
    ///
    /// Panics if `rows` is empty or rows have inconsistent widths.
    pub fn fit(rows: &[Vec<f64>]) -> Self {
        assert!(!rows.is_empty(), "cannot fit a normalizer to no data");
        let width = rows[0].len();
        let mut mins = vec![f64::INFINITY; width];
        let mut maxs = vec![f64::NEG_INFINITY; width];
        for row in rows {
            assert_eq!(row.len(), width, "ragged rows");
            for (i, &v) in row.iter().enumerate() {
                mins[i] = mins[i].min(v);
                maxs[i] = maxs[i].max(v);
            }
        }
        Normalizer { mins, maxs }
    }

    /// Number of columns.
    pub fn width(&self) -> usize {
        self.mins.len()
    }

    /// Normalize one row into `[0, 1]` per column (constant columns map to
    /// 0.5; out-of-range values extrapolate linearly).
    pub fn apply(&self, row: &[f64]) -> Vec<f64> {
        assert_eq!(row.len(), self.width(), "row width mismatch");
        row.iter()
            .enumerate()
            .map(|(i, &v)| {
                let span = self.maxs[i] - self.mins[i];
                if span <= 0.0 {
                    0.5
                } else {
                    (v - self.mins[i]) / span
                }
            })
            .collect()
    }

    /// Invert [`Normalizer::apply`] for one column.
    pub fn invert(&self, col: usize, v: f64) -> f64 {
        let span = self.maxs[col] - self.mins[col];
        if span <= 0.0 {
            self.mins[col]
        } else {
            self.mins[col] + v * span
        }
    }

    /// Serialize to plain text.
    pub fn to_text(&self) -> String {
        let mut s = format!("norm v1 {}\n", self.width());
        for i in 0..self.width() {
            s.push_str(&format!("{:e} {:e}\n", self.mins[i], self.maxs[i]));
        }
        s
    }

    /// Deserialize from [`Normalizer::to_text`] output.
    ///
    /// # Errors
    ///
    /// Returns a description of the first malformed line.
    pub fn from_text(text: &str) -> Result<Self, String> {
        let mut lines = text.lines();
        let header = lines.next().ok_or("empty input")?;
        let parts: Vec<&str> = header.split_whitespace().collect();
        if parts.len() != 3 || parts[0] != "norm" || parts[1] != "v1" {
            return Err(format!("bad header `{header}`"));
        }
        let width: usize = parts[2].parse().map_err(|e| format!("{e}"))?;
        let mut mins = Vec::with_capacity(width);
        let mut maxs = Vec::with_capacity(width);
        for _ in 0..width {
            let line = lines.next().ok_or("truncated")?;
            let mut it = line.split_whitespace();
            let lo: f64 = it
                .next()
                .ok_or("missing min")?
                .parse()
                .map_err(|e| format!("{e}"))?;
            let hi: f64 = it
                .next()
                .ok_or("missing max")?
                .parse()
                .map_err(|e| format!("{e}"))?;
            mins.push(lo);
            maxs.push(hi);
        }
        Ok(Normalizer { mins, maxs })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fit_apply_invert() {
        let rows = vec![vec![0.0, 10.0], vec![5.0, 20.0], vec![10.0, 30.0]];
        let n = Normalizer::fit(&rows);
        assert_eq!(n.apply(&[5.0, 20.0]), vec![0.5, 0.5]);
        assert_eq!(n.apply(&[0.0, 30.0]), vec![0.0, 1.0]);
        assert!((n.invert(0, 0.5) - 5.0).abs() < 1e-12);
        assert!((n.invert(1, 1.0) - 30.0).abs() < 1e-12);
    }

    #[test]
    fn constant_column_maps_to_half() {
        let rows = vec![vec![7.0], vec![7.0]];
        let n = Normalizer::fit(&rows);
        assert_eq!(n.apply(&[7.0]), vec![0.5]);
        assert_eq!(n.invert(0, 0.3), 7.0);
    }

    #[test]
    fn text_roundtrip() {
        let rows = vec![vec![1.0, -2.0, 3.5], vec![4.0, 8.0, -1.0]];
        let n = Normalizer::fit(&rows);
        let back = Normalizer::from_text(&n.to_text()).unwrap();
        assert_eq!(n, back);
        assert!(Normalizer::from_text("junk").is_err());
    }

    #[test]
    #[should_panic(expected = "cannot fit")]
    fn fit_rejects_empty() {
        Normalizer::fit(&[]);
    }
}
