//! Network training: backpropagated gradients with the RPROP+ update rule
//! (the default trainer of the Encog library the paper used).

use crate::network::Mlp;

/// A supervised training set of `(input, target)` pairs.
#[derive(Debug, Clone, Default)]
pub struct Dataset {
    inputs: Vec<Vec<f64>>,
    targets: Vec<Vec<f64>>,
}

impl Dataset {
    /// An empty dataset.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add one sample.
    ///
    /// # Panics
    ///
    /// Panics if the sample's shape differs from previous samples.
    pub fn push(&mut self, input: &[f64], target: &[f64]) {
        if let Some(first) = self.inputs.first() {
            assert_eq!(input.len(), first.len(), "inconsistent input width");
            assert_eq!(
                target.len(),
                self.targets[0].len(),
                "inconsistent target width"
            );
        }
        self.inputs.push(input.to_vec());
        self.targets.push(target.to_vec());
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.inputs.len()
    }

    /// Whether the dataset is empty.
    pub fn is_empty(&self) -> bool {
        self.inputs.is_empty()
    }

    /// Iterate over `(input, target)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (&[f64], &[f64])> {
        self.inputs
            .iter()
            .zip(&self.targets)
            .map(|(i, t)| (i.as_slice(), t.as_slice()))
    }
}

/// Configuration for [`train_rprop`].
#[derive(Debug, Clone, PartialEq)]
pub struct TrainConfig {
    /// Maximum number of epochs.
    pub max_epochs: usize,
    /// Stop once mean squared error falls below this threshold.
    pub target_mse: f64,
    /// RPROP step increase factor (η⁺).
    pub eta_plus: f64,
    /// RPROP step decrease factor (η⁻).
    pub eta_minus: f64,
    /// Initial per-weight step size.
    pub initial_delta: f64,
    /// Maximum per-weight step size.
    pub max_delta: f64,
    /// Minimum per-weight step size.
    pub min_delta: f64,
}

impl Default for TrainConfig {
    fn default() -> Self {
        TrainConfig {
            max_epochs: 2000,
            target_mse: 1e-5,
            eta_plus: 1.2,
            eta_minus: 0.5,
            initial_delta: 0.1,
            max_delta: 50.0,
            min_delta: 1e-8,
        }
    }
}

/// Result of a training run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TrainReport {
    /// Epochs actually executed.
    pub epochs: usize,
    /// Final mean squared error over the training set.
    pub mse: f64,
}

/// Mean squared error of `net` over `data`.
pub fn mse(net: &Mlp, data: &Dataset) -> f64 {
    if data.is_empty() {
        return 0.0;
    }
    let mut total = 0.0;
    let mut count = 0usize;
    for (x, t) in data.iter() {
        let y = net.forward(x);
        for (yi, ti) in y.iter().zip(t) {
            total += (yi - ti) * (yi - ti);
            count += 1;
        }
    }
    total / count as f64
}

/// Accumulate full-batch gradients of the MSE loss into `grads`
/// (flattened in the same order as the network's weights).
fn batch_gradients(net: &Mlp, data: &Dataset, grads: &mut [f64]) {
    for g in grads.iter_mut() {
        *g = 0.0;
    }
    for (x, t) in data.iter() {
        let acts = net.forward_trace(x);
        // Backward pass: delta for the output layer is (y - t) * f'(y).
        let mut deltas: Vec<f64> = acts
            .last()
            .expect("trace nonempty")
            .iter()
            .zip(t)
            .map(|(&y, &ti)| y - ti)
            .collect();
        let mut offset = grads.len();
        for (li, layer) in net.layers.iter().enumerate().rev() {
            let input = &acts[li];
            let output = &acts[li + 1];
            offset -= layer.weights.len();
            // Apply activation derivative to deltas.
            for (d, &y) in deltas.iter_mut().zip(output.iter()) {
                *d *= layer.activation.derivative_from_output(y);
            }
            // Weight gradients.
            for (o, &delta) in deltas.iter().enumerate().take(layer.outputs) {
                let row = offset + o * (layer.inputs + 1);
                for i in 0..layer.inputs {
                    grads[row + i] += delta * input[i];
                }
                grads[row + layer.inputs] += delta; // bias
            }
            // Propagate deltas to the previous layer.
            if li > 0 {
                let mut prev = vec![0.0; layer.inputs];
                for (o, &delta) in deltas.iter().enumerate().take(layer.outputs) {
                    let row = o * (layer.inputs + 1);
                    for (i, p) in prev.iter_mut().enumerate() {
                        *p += delta * layer.weights[row + i];
                    }
                }
                deltas = prev;
            }
        }
    }
}

/// Configuration for [`train_sgd`].
#[derive(Debug, Clone, PartialEq)]
pub struct SgdConfig {
    /// Maximum number of epochs.
    pub max_epochs: usize,
    /// Stop once mean squared error falls below this threshold.
    pub target_mse: f64,
    /// Learning rate.
    pub learning_rate: f64,
    /// Momentum coefficient.
    pub momentum: f64,
}

impl Default for SgdConfig {
    fn default() -> Self {
        SgdConfig {
            max_epochs: 2000,
            target_mse: 1e-5,
            learning_rate: 0.05,
            momentum: 0.9,
        }
    }
}

/// Train `net` with full-batch gradient descent plus momentum — the
/// classical baseline the RPROP default is compared against (RPROP's
/// sign-based steps make it insensitive to feature scaling, which is why
/// Encog and this crate default to it).
pub fn train_sgd(net: &mut Mlp, data: &Dataset, cfg: &SgdConfig) -> TrainReport {
    let n = net.weight_count();
    let mut grads = vec![0.0; n];
    let mut velocity = vec![0.0; n];
    let mut final_mse = mse(net, data);
    let mut epochs = 0;
    if data.is_empty() {
        return TrainReport {
            epochs,
            mse: final_mse,
        };
    }
    let scale = 1.0 / data.len() as f64;
    for epoch in 0..cfg.max_epochs {
        batch_gradients(net, data, &mut grads);
        let mut w = 0usize;
        for layer in net.layers.iter_mut() {
            for weight in layer.weights.iter_mut() {
                velocity[w] = cfg.momentum * velocity[w] - cfg.learning_rate * grads[w] * scale;
                *weight += velocity[w];
                w += 1;
            }
        }
        epochs = epoch + 1;
        final_mse = mse(net, data);
        if final_mse < cfg.target_mse {
            break;
        }
    }
    TrainReport {
        epochs,
        mse: final_mse,
    }
}

/// Train `net` on `data` with resilient backpropagation (RPROP+).
///
/// RPROP adapts a per-weight step size from the *sign* of successive
/// gradients, which makes it robust to feature scaling — the reason Encog
/// uses it as the default trainer.
pub fn train_rprop(net: &mut Mlp, data: &Dataset, cfg: &TrainConfig) -> TrainReport {
    let n = net.weight_count();
    let mut grads = vec![0.0; n];
    let mut prev_grads = vec![0.0; n];
    let mut deltas = vec![cfg.initial_delta; n];
    let mut final_mse = mse(net, data);
    let mut epochs = 0;
    if data.is_empty() {
        return TrainReport {
            epochs,
            mse: final_mse,
        };
    }
    for epoch in 0..cfg.max_epochs {
        batch_gradients(net, data, &mut grads);
        let mut w = 0usize;
        for layer in net.layers.iter_mut() {
            for weight in layer.weights.iter_mut() {
                let sign = grads[w] * prev_grads[w];
                if sign > 0.0 {
                    deltas[w] = (deltas[w] * cfg.eta_plus).min(cfg.max_delta);
                    *weight -= grads[w].signum() * deltas[w];
                    prev_grads[w] = grads[w];
                } else if sign < 0.0 {
                    deltas[w] = (deltas[w] * cfg.eta_minus).max(cfg.min_delta);
                    // RPROP+: revert is skipped; just reset gradient memory.
                    prev_grads[w] = 0.0;
                } else {
                    *weight -= grads[w].signum() * deltas[w];
                    prev_grads[w] = grads[w];
                }
                w += 1;
            }
        }
        epochs = epoch + 1;
        final_mse = mse(net, data);
        if final_mse < cfg.target_mse {
            break;
        }
    }
    TrainReport {
        epochs,
        mse: final_mse,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::network::Activation;

    #[test]
    fn learns_xor() {
        let mut data = Dataset::new();
        for (a, b) in [(0.0, 0.0), (0.0, 1.0), (1.0, 0.0), (1.0, 1.0)] {
            let t = if (a != 0.0) ^ (b != 0.0) { 1.0 } else { 0.0 };
            data.push(&[a, b], &[t]);
        }
        let mut net = Mlp::new(&[2, 6, 1], Activation::Sigmoid, 11);
        let before = mse(&net, &data);
        let report = train_rprop(&mut net, &data, &TrainConfig::default());
        assert!(report.mse < before, "training must reduce error");
        assert!(report.mse < 0.01, "xor should be learnable: {report:?}");
    }

    #[test]
    fn learns_linear_function() {
        let mut data = Dataset::new();
        for i in 0..20 {
            let x = i as f64 / 20.0;
            data.push(&[x], &[2.0 * x + 0.25]);
        }
        let mut net = Mlp::new(&[1, 4, 1], Activation::Sigmoid, 5);
        let report = train_rprop(&mut net, &data, &TrainConfig::default());
        assert!(report.mse < 1e-4, "{report:?}");
    }

    #[test]
    fn sgd_learns_and_rprop_converges_faster() {
        let mut data = Dataset::new();
        for i in 0..20 {
            let x = i as f64 / 20.0;
            data.push(&[x], &[0.5 * x + 0.1]);
        }
        let mut sgd_net = Mlp::new(&[1, 4, 1], Activation::Sigmoid, 2);
        let mut rprop_net = sgd_net.clone();
        let sgd = train_sgd(
            &mut sgd_net,
            &data,
            &SgdConfig {
                max_epochs: 400,
                target_mse: 0.0,
                ..SgdConfig::default()
            },
        );
        let rp = train_rprop(
            &mut rprop_net,
            &data,
            &TrainConfig {
                max_epochs: 400,
                target_mse: 0.0,
                ..TrainConfig::default()
            },
        );
        assert!(sgd.mse < 0.05, "sgd must learn: {sgd:?}");
        // RPROP reaches a lower error in the same epoch budget (the reason
        // it is the default).
        assert!(rp.mse <= sgd.mse * 1.5, "rprop {rp:?} vs sgd {sgd:?}");
    }

    #[test]
    fn empty_dataset_is_noop() {
        let mut net = Mlp::new(&[2, 2, 1], Activation::Sigmoid, 0);
        let orig = net.clone();
        let report = train_rprop(&mut net, &Dataset::new(), &TrainConfig::default());
        assert_eq!(report.epochs, 0);
        assert_eq!(net, orig);
    }

    #[test]
    #[should_panic(expected = "inconsistent input width")]
    fn dataset_rejects_ragged_inputs() {
        let mut d = Dataset::new();
        d.push(&[1.0, 2.0], &[1.0]);
        d.push(&[1.0], &[1.0]);
    }
}
