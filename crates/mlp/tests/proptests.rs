//! Property tests for the neural network library.

use dhdl_mlp::{mse, train_rprop, Activation, Dataset, Mlp, Normalizer, TrainConfig};
use proptest::prelude::*;

proptest! {
    /// Text serialization round-trips the network bit-exactly.
    #[test]
    fn network_text_roundtrip(inputs in 1usize..8, hidden in 1usize..8, seed: u64) {
        let net = Mlp::new(&[inputs, hidden, 1], Activation::Sigmoid, seed);
        let back = Mlp::from_text(&net.to_text()).expect("parses");
        let x = vec![0.25; inputs];
        prop_assert_eq!(net.forward(&x), back.forward(&x));
    }

    /// Normalizer: apply is bounded on in-range data and invert is the
    /// exact inverse on every column.
    #[test]
    fn normalizer_inverts(rows in prop::collection::vec(
        prop::collection::vec(-1e6f64..1e6, 3), 2..20
    )) {
        let n = Normalizer::fit(&rows);
        for row in &rows {
            let scaled = n.apply(row);
            for (c, (&s, &orig)) in scaled.iter().zip(row).enumerate() {
                prop_assert!((-1e-9..=1.0 + 1e-9).contains(&s));
                let back = n.invert(c, s);
                prop_assert!((back - orig).abs() < 1e-6 * orig.abs().max(1.0));
            }
        }
    }

    /// Training never increases the final training error relative to the
    /// untrained network (RPROP on a learnable linear target).
    #[test]
    fn training_reduces_error(seed: u64, slope in -2.0f64..2.0) {
        let mut data = Dataset::new();
        for i in 0..16 {
            let x = i as f64 / 16.0;
            data.push(&[x], &[slope * x]);
        }
        let mut net = Mlp::new(&[1, 4, 1], Activation::Sigmoid, seed);
        let before = mse(&net, &data);
        let cfg = TrainConfig { max_epochs: 150, ..TrainConfig::default() };
        let report = train_rprop(&mut net, &data, &cfg);
        prop_assert!(report.mse <= before + 1e-12, "{} -> {}", before, report.mse);
    }

    /// Forward output is finite for any finite input.
    #[test]
    fn forward_is_finite(x in prop::collection::vec(-1e3f64..1e3, 4), seed: u64) {
        let net = Mlp::new(&[4, 6, 1], Activation::Tanh, seed);
        let y = net.forward(&x);
        prop_assert!(y[0].is_finite());
    }
}
