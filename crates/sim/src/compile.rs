//! One-time lowering of an elaborated design to a straight-line tape.
//!
//! [`compile`] runs two passes over the controller hierarchy:
//!
//! 1. **Emission** flattens the hierarchy into a [`crate::tape::Tape`] in
//!    the interpreter's exact execution order: outer controllers become a
//!    single linearized loop (members execute sequentially in linear
//!    order, as the interpreter runs them), pipes become nested counted
//!    loops with iterator-decode instructions, and every body node
//!    lowers to one instruction over arena slots. Structural errors the
//!    interpreter would raise mid-run (`ZeroTripLoop`, `Malformed`,
//!    `Unevaluated`) compile to an `Abort` at the exact position the
//!    interpreter would first discover them; data-dependent errors
//!    (out-of-bounds addresses) stay runtime checks inside the
//!    instructions.
//! 2. **Timing** exploits the fact that for any design the emitter
//!    accepts, the interpreter's timing model is *data-independent*:
//!    pipe and fold durations are closed-form in static shapes, tile
//!    transfers occupy the DRAM channel for shape-derived times, and the
//!    MetaPipe recurrence composes those. The walk replays the
//!    interpreter's timed schedule (same f64 operation order, same
//!    [`DramTimeline`] request order) once at compile time, capturing
//!    cycles, transfer counts, the profile and the trace. A run of the
//!    compiled design then only executes the functional tape and stamps
//!    the precomputed timing onto the result.
//!
//! Constructs whose interpretation is dynamically sized (priority queues
//! as fold/reduce/tile endpoints, more iterators than counter
//! dimensions) are rejected with [`CompileError::Unsupported`];
//! [`simulate_compiled`] falls back to the interpreter for those.
//!
//! The contract — enforced by the differential test suites and the
//! conformance oracle — is that [`Compiled::run`] is *bit-identical* to
//! [`simulate`]: same outputs, same cycles, same profile and trace, same
//! errors.

use std::collections::BTreeMap;
use std::fmt;

use dhdl_core::{Design, MemFold, NodeId, NodeKind, OuterSpec, Pattern, PipeSpec, TileSpec};
use dhdl_synth::chardata::{prim_cost, reduce_tree_latency};
use dhdl_synth::pipe_depth;
use dhdl_target::Platform;

use crate::arena::Layout;
use crate::error::{Result, SimError};
use crate::interp::STAGE_OVERHEAD;
use crate::interp::{build_profile, error_counter, simulate, Bindings, ProfileEntry, SimResult};
use crate::memory::DramTimeline;
use crate::tape::{Instr, KOp, KSrc, Kernel, Tape, TileDesc};
use crate::trace::{Trace, TraceEvent};

/// Why a design could not be compiled to a tape.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CompileError {
    /// The design uses a construct whose size or timing is only known
    /// dynamically (e.g. a priority queue as a fold endpoint). The
    /// interpreter remains the reference for these.
    Unsupported(String),
}

impl fmt::Display for CompileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CompileError::Unsupported(what) => {
                write!(f, "design not compilable to a tape: {what}")
            }
        }
    }
}

impl std::error::Error for CompileError {}

/// Precomputed timing of one full design execution (valid because timing
/// is data-independent for every compilable design).
#[derive(Debug, Clone, Default)]
struct Timing {
    cycles: f64,
    transfers: usize,
    profile: Vec<ProfileEntry>,
    trace: Trace,
}

/// A design lowered to an instruction tape, ready to run many times.
///
/// Compile once, run per input set — the per-run cost is one arena
/// `clone` plus straight-line tape execution with zero per-cycle map
/// lookups or graph walks.
#[derive(Debug, Clone)]
pub struct Compiled {
    layout: Layout,
    tape: Tape,
    timing: Timing,
}

/// Lower `design` into a [`Compiled`] tape for `platform`.
///
/// # Errors
///
/// Returns [`CompileError::Unsupported`] when the design uses a
/// dynamically-sized construct the tape cannot express; callers should
/// fall back to [`simulate`] (as [`simulate_compiled`] does).
pub fn compile(
    design: &Design,
    platform: &Platform,
) -> std::result::Result<Compiled, CompileError> {
    let _span = dhdl_obs::span!("sim.compile");
    let layout = Layout::new(design);
    let mut em = Emitter {
        design,
        layout: &layout,
        tape: Tape::default(),
        depth: 0,
        aborted: false,
    };
    em.emit_ctrl(design.top())?;
    let aborted = em.aborted;
    let tape = em.tape;
    // A tape that starts with (or reaches) an Abort never reports
    // timing, exactly as an interpreter run that errors; skip the walk.
    let timing = if aborted {
        Timing::default()
    } else {
        TimingWalk::run(design, platform)
    };
    dhdl_obs::counter!("sim.compile.count").incr();
    dhdl_obs::counter!("sim.compile.kernels").add(tape.kernels.len() as u64);
    Ok(Compiled {
        layout,
        tape,
        timing,
    })
}

impl Compiled {
    /// Execute the tape against `bindings`.
    ///
    /// # Errors
    ///
    /// Returns the same [`SimError`]s the interpreter would for the same
    /// design and inputs.
    pub fn run(&self, bindings: &Bindings) -> Result<SimResult> {
        let _span = dhdl_obs::span!("sim.tape");
        let result = self.run_inner(bindings);
        match &result {
            Ok(r) => {
                dhdl_obs::counter!("sim.tape.runs").incr();
                dhdl_obs::counter!("sim.tape.cycles").add(r.cycles as u64);
            }
            Err(e) => {
                dhdl_obs::counter!("sim.errors").incr();
                dhdl_obs::counter(error_counter(e)).incr();
            }
        }
        result
    }

    /// Number of tape instructions (diagnostic).
    pub fn instruction_count(&self) -> usize {
        self.tape.instrs.len()
    }

    fn run_inner(&self, bindings: &Bindings) -> Result<SimResult> {
        // Binding validation mirrors the interpreter's `Sim::new` exactly:
        // shape checks in off-chip declaration order first, then the
        // unknown-binding sweep in sorted binding order.
        for r in &self.layout.offchips {
            if !r.real {
                continue;
            }
            if let Some(d) = bindings.get(&r.lookup_name) {
                if d.len() != r.len {
                    return Err(SimError::ShapeMismatch {
                        name: r.lookup_name.clone(),
                        expected: r.len as u64,
                        actual: d.len(),
                    });
                }
            }
        }
        for name in bindings.names() {
            let known = self
                .layout
                .offchips
                .iter()
                .any(|r| r.named && r.lookup_name == name);
            if !known {
                return Err(SimError::UnknownBinding(name.to_string()));
            }
        }
        let mut arena = self.layout.template.clone();
        for r in &self.layout.offchips {
            if r.real {
                if let Some(d) = bindings.get(&r.lookup_name) {
                    arena[r.base..r.base + r.len].copy_from_slice(d);
                }
            }
        }
        let mut queues = vec![Vec::new(); self.layout.n_queues];
        self.tape.execute(&mut arena, &mut queues)?;
        let mut offchip = BTreeMap::new();
        for r in &self.layout.offchips {
            offchip.insert(
                r.output_name.clone(),
                arena[r.base..r.base + r.len].to_vec(),
            );
        }
        Ok(SimResult {
            cycles: self.timing.cycles,
            transfers: self.timing.transfers,
            offchip,
            profile: self.timing.profile.clone(),
            trace: self.timing.trace.clone(),
        })
    }
}

/// Iterator nodes owned by a controller, ordered by dimension — the
/// interpreter's `iter_nodes`, run once at compile time instead of once
/// per controller execution.
fn iter_nodes(design: &Design, ctrl: NodeId) -> Vec<NodeId> {
    let mut iters: Vec<(usize, NodeId)> = design
        .iter()
        .filter_map(|(id, n)| match n.kind {
            NodeKind::Iter { ctrl: c, dim } if c == ctrl => Some((dim, id)),
            _ => None,
        })
        .collect();
    iters.sort_unstable();
    iters.into_iter().map(|(_, id)| id).collect()
}

type EmitResult = std::result::Result<(), CompileError>;

/// Pass 1: flatten the controller hierarchy into the functional tape.
struct Emitter<'a> {
    design: &'a Design,
    layout: &'a Layout,
    tape: Tape,
    /// Static loop-nesting depth at the current emission point.
    depth: usize,
    /// Set once a structural `Abort` has been emitted; all further
    /// emission is dead code the interpreter would never reach.
    aborted: bool,
}

/// Memory and reduction hazard analysis for a candidate fused kernel
/// (the cross-op half of the fusion safety conditions; dataflow is
/// checked during op construction in `try_build_kernel`).
fn kernel_hazards_ok(ops: &[KOp]) -> bool {
    // Per-memory address-term lists, plus every loaded/stored arena
    // range and every reduction accumulator.
    let mut stores: BTreeMap<NodeId, Vec<&[(KSrc, u64)]>> = BTreeMap::new();
    let mut loads: BTreeMap<NodeId, Vec<&[(KSrc, u64)]>> = BTreeMap::new();
    let mut ranges: Vec<(usize, u64)> = Vec::new();
    let mut accs: Vec<usize> = Vec::new();
    for op in ops {
        match op {
            KOp::Load {
                mem,
                terms,
                base,
                size,
                ..
            } => {
                loads.entry(*mem).or_default().push(terms);
                ranges.push((*base, *size));
            }
            KOp::Store {
                mem,
                terms,
                base,
                size,
                ..
            } => {
                stores.entry(*mem).or_default().push(terms);
                ranges.push((*base, *size));
            }
            KOp::Reduce { acc, .. } => accs.push(*acc),
            _ => {}
        }
    }
    // Accumulators: pairwise distinct (two reductions into one slot
    // would interleave differently under lane-major order) and outside
    // every accessed memory range (a load/store hitting the live
    // accumulator would observe mid-block state).
    for (i, &a) in accs.iter().enumerate() {
        if accs[..i].contains(&a) {
            return false;
        }
        if ranges.iter().any(|&(b, s)| a >= b && ((a - b) as u64) < s) {
            return false;
        }
    }
    for (mem, st) in &stores {
        // All stores to one memory must agree on the address, so the
        // per-address last writer is the textually last store op at the
        // highest lane under both orders.
        let first = st[0];
        if st[1..].iter().any(|t| *t != first) {
            return false;
        }
        if let Some(ld) = loads.get(mem) {
            // A memory both loaded and stored: same address for every
            // access, and the address must be strictly monotone in the
            // innermost counter (each term loop-invariant or
            // innermost-linear, at least one linear with nonzero step)
            // so lane `l` can only ever observe lane `l`'s own store.
            if ld.iter().any(|t| *t != first) {
                return false;
            }
            let mut linear = false;
            for (src, _) in first {
                match src {
                    KSrc::Slot(_) => {}
                    KSrc::Lane(i) => match &ops[*i] {
                        KOp::Outer { .. } => {}
                        KOp::Lin { step, .. } => {
                            if *step != 0 {
                                linear = true;
                            }
                        }
                        _ => return false,
                    },
                }
            }
            if !linear {
                return false;
            }
        }
    }
    true
}

impl<'a> Emitter<'a> {
    fn unsupported(&self, what: String) -> CompileError {
        CompileError::Unsupported(what)
    }

    fn abort(&mut self, e: SimError) {
        if self.aborted {
            return;
        }
        let i = self.tape.errors.len();
        self.tape.errors.push(e);
        self.tape.instrs.push(Instr::Abort(i));
        self.aborted = true;
    }

    fn push(&mut self, i: Instr) {
        if !self.aborted {
            self.tape.instrs.push(i);
        }
    }

    fn slot(&self, id: NodeId) -> usize {
        self.layout.slot(id)
    }

    /// `Bram`/`Reg` storage length, in elements.
    fn mem_len(&self, id: NodeId) -> usize {
        match self.design.kind(id) {
            NodeKind::Bram(b) => b.elements() as usize,
            NodeKind::Reg(_) => 1,
            _ => 0,
        }
    }

    fn emit_ctrl(&mut self, ctrl: NodeId) -> EmitResult {
        if self.aborted {
            return Ok(());
        }
        let design = self.design;
        match design.kind(ctrl) {
            NodeKind::Pipe(p) => self.emit_pipe(ctrl, p),
            NodeKind::Sequential(s) | NodeKind::MetaPipe(s) => self.emit_outer(ctrl, s),
            NodeKind::ParallelCtrl { stages, .. } => {
                // Functionally, parallel stages execute in program order.
                for &st in stages {
                    self.emit_ctrl(st)?;
                }
                Ok(())
            }
            NodeKind::TileLoad(t) => self.emit_tile(t, true),
            NodeKind::TileStore(t) => self.emit_tile(t, false),
            other => {
                self.abort(SimError::Malformed(format!(
                    "{} is not an executable controller",
                    other.template_name()
                )));
                Ok(())
            }
        }
    }

    /// Lower an outer controller (`Sequential`/`MetaPipe`): one
    /// linearized loop over all members, since functionally the
    /// interpreter runs members sequentially in linear order (waves only
    /// shape the timing, which pass 2 handles).
    fn emit_outer(&mut self, ctrl: NodeId, s: &OuterSpec) -> EmitResult {
        let total = s.ctr.total_iters();
        if total == 0 {
            self.abort(SimError::ZeroTripLoop(ctrl));
            return Ok(());
        }
        let n_stages = s.stages.len() + usize::from(s.fold.is_some());
        if n_stages == 0 {
            self.abort(SimError::Malformed(format!(
                "outer controller {ctrl} has no stages"
            )));
            return Ok(());
        }
        if let Some(f) = s.fold {
            // The accumulator resets to the reduction identity once per
            // controller execution (silently skipped for non-memories,
            // as in the interpreter).
            match self.design.kind(f.accum) {
                NodeKind::Bram(_) | NodeKind::Reg(_) => {
                    let base = self.layout.mem_base(f.accum).expect("memory laid out");
                    let len = self.mem_len(f.accum);
                    self.push(Instr::Fill {
                        base,
                        len,
                        val: f.op.identity(),
                    });
                }
                NodeKind::PriorityQueue(_) => {
                    return Err(self
                        .unsupported(format!("fold accumulator {} is a priority queue", f.accum)))
                }
                _ => {}
            }
        }
        let iters = iter_nodes(self.design, ctrl);
        self.push(Instr::LoopStart { trips: total });
        let depth = self.depth;
        self.depth += 1;
        // Per-dimension trip counts with the interpreter's `.max(1)`
        // guard; iterator k decodes as `(lin / suffix_product) % trips`.
        let trips: Vec<u64> = s.ctr.dims.iter().map(|d| d.trip_count().max(1)).collect();
        for (k, &it) in iters.iter().enumerate() {
            let instr = if k < s.ctr.dims.len() {
                Instr::Iter {
                    dst: self.slot(it),
                    depth,
                    div: trips[k + 1..].iter().product(),
                    modu: trips[k],
                    step: s.ctr.dims[k].step,
                }
            } else {
                // Iterators beyond the chain's rank read as zero.
                Instr::Iter {
                    dst: self.slot(it),
                    depth,
                    div: 1,
                    modu: 1,
                    step: 0,
                }
            };
            self.push(instr);
        }
        for &stage in &s.stages {
            self.emit_ctrl(stage)?;
        }
        if let Some(f) = s.fold {
            self.emit_fold(&f)?;
        }
        self.push(Instr::LoopEnd);
        self.depth -= 1;
        Ok(())
    }

    fn emit_fold(&mut self, f: &MemFold) -> EmitResult {
        if self.aborted {
            return Ok(());
        }
        // Source first, then accumulator — the interpreter's lookup order
        // determines which `Unevaluated` error wins.
        let (src, src_len) = match self.design.kind(f.src) {
            NodeKind::Bram(_) | NodeKind::Reg(_) => (
                self.layout.mem_base(f.src).expect("laid out"),
                self.mem_len(f.src),
            ),
            NodeKind::PriorityQueue(_) => {
                return Err(self.unsupported(format!("fold source {} is a priority queue", f.src)))
            }
            _ => {
                self.abort(SimError::Unevaluated(f.src));
                return Ok(());
            }
        };
        let (acc, acc_len) = match self.design.kind(f.accum) {
            NodeKind::Bram(_) | NodeKind::Reg(_) => (
                self.layout.mem_base(f.accum).expect("laid out"),
                self.mem_len(f.accum),
            ),
            NodeKind::PriorityQueue(_) => {
                return Err(
                    self.unsupported(format!("fold accumulator {} is a priority queue", f.accum))
                )
            }
            _ => {
                self.abort(SimError::Unevaluated(f.accum));
                return Ok(());
            }
        };
        self.push(Instr::Fold {
            src,
            acc,
            len: src_len.min(acc_len),
            op: f.op,
            ty: self.design.ty(f.accum),
        });
        Ok(())
    }

    fn emit_pipe(&mut self, ctrl: NodeId, p: &PipeSpec) -> EmitResult {
        let total = p.ctr.total_iters();
        if total == 0 {
            self.abort(SimError::ZeroTripLoop(ctrl));
            return Ok(());
        }
        if let Some(r) = &p.reduce {
            // The reduce register resets element 0 to the identity once
            // per pipe execution.
            match self.design.kind(r.reg) {
                NodeKind::Reg(_) => {
                    let base = self.layout.mem_base(r.reg).expect("laid out");
                    self.push(Instr::Fill {
                        base,
                        len: 1,
                        val: r.op.identity(),
                    });
                }
                NodeKind::Bram(b) if b.elements() >= 1 => {
                    let base = self.layout.mem_base(r.reg).expect("laid out");
                    self.push(Instr::Fill {
                        base,
                        len: 1,
                        val: r.op.identity(),
                    });
                }
                NodeKind::Bram(_) | NodeKind::PriorityQueue(_) => {
                    return Err(
                        self.unsupported(format!("reduce register {} has no element 0", r.reg))
                    )
                }
                _ => {} // skipped silently; the reduce step aborts below
            }
        }
        let iters = iter_nodes(self.design, ctrl);
        let dims: Vec<(u64, u64)> = p
            .ctr
            .dims
            .iter()
            .map(|d| (d.trip_count(), d.step))
            .collect();
        if iters.len() > dims.len() {
            return Err(self.unsupported(format!(
                "pipe {ctrl} has more iterators than counter dimensions"
            )));
        }
        let base_depth = self.depth;
        for &(t, _) in &dims {
            self.push(Instr::LoopStart { trips: t });
            self.depth += 1;
        }
        // Index of the first innermost-body instruction (right after the
        // innermost `LoopStart`), for the fusion attempt below.
        let body_start = self.tape.instrs.len();
        // Re-bind every iterator at the top of the innermost body: the
        // interpreter rebinds all dimensions each iteration, which
        // matters when an `Iter` node inside the body re-quantizes its
        // own slot.
        for (d, &it) in iters.iter().enumerate() {
            // Each pipe dimension's counter is driven directly by its own
            // loop (div 1, modulus == trips), so the decode reduces to a
            // multiply.
            self.push(Instr::IterLin {
                dst: self.slot(it),
                depth: base_depth + d,
                step: dims[d].1,
            });
        }
        for &n in &p.body {
            self.emit_node(n)?;
        }
        if let Some(r) = &p.reduce {
            match self.design.kind(r.reg) {
                NodeKind::Bram(_) | NodeKind::Reg(_) => {
                    let acc = self.layout.mem_base(r.reg).expect("laid out");
                    self.push(Instr::ReduceStep {
                        acc,
                        val: self.slot(r.value),
                        op: r.op,
                        ty: self.design.ty(r.reg),
                    });
                }
                _ => self.abort(SimError::Unevaluated(r.reg)),
            }
        }
        // Fuse the innermost loop into a block-vectorized kernel when the
        // body passes the safety analysis; the unfused form remains the
        // fallback for bodies with cross-iteration hazards.
        let mut fused = false;
        if !self.aborted && !dims.is_empty() {
            let innermost = base_depth + dims.len() - 1;
            if let Some(kernel) =
                self.try_build_kernel(body_start, dims[dims.len() - 1].0, innermost)
            {
                let ki = self.tape.kernels.len();
                self.tape.kernels.push(kernel);
                // Drop the innermost `LoopStart` and its body; the
                // kernel instruction replaces the whole loop.
                self.tape.instrs.truncate(body_start - 1);
                self.tape.instrs.push(Instr::Kernel(ki));
                fused = true;
            }
        }
        let ends = dims.len() - usize::from(fused);
        for _ in 0..ends {
            self.push(Instr::LoopEnd);
        }
        self.depth = base_depth;
        Ok(())
    }

    /// Try to convert the innermost-loop body `instrs[start..]` into a
    /// fused [`Kernel`].
    ///
    /// Fusion evaluates the body op-by-op over blocks of iterations
    /// (lane-major) instead of iteration-by-iteration, so it is only
    /// performed when that reordering is provably unobservable:
    ///
    /// * the body contains only lane-safe instruction kinds (no queues,
    ///   tiles, fills, folds, nested loops or aborts);
    /// * dataflow is strictly forward — every operand slot is either
    ///   written by an *earlier* body instruction or by none at all
    ///   (loop-invariant), so no op reads a previous iteration's value;
    /// * for any memory both loaded and stored in the body, every access
    ///   uses the same address terms, those terms are invariant or
    ///   driven by the innermost iterator, and at least one term has a
    ///   nonzero step — the address is then strictly monotone in the
    ///   iteration counter, so a load can never observe (or miss) a
    ///   different iteration's store;
    /// * a memory stored by more than one instruction (and never loaded)
    ///   must use identical address terms for all of them, keeping the
    ///   per-address last-writer identical under the reordering;
    /// * reduction accumulators are disjoint from every loaded or stored
    ///   memory range and from each other (the reduction itself is
    ///   evaluated sequentially per lane, preserving the exact chain).
    fn try_build_kernel(&self, start: usize, trips: u64, innermost_depth: usize) -> Option<Kernel> {
        let body = &self.tape.instrs[start..];
        if body.is_empty() || body.len() > 64 {
            return None;
        }
        // Every arena slot written by any body instruction (forward-
        // dataflow guard: reading one of these before it is written this
        // iteration would observe the previous iteration's value).
        let mut all_dsts: std::collections::BTreeSet<usize> = std::collections::BTreeSet::new();
        for i in body {
            match i {
                Instr::IterLin { dst, .. }
                | Instr::Bin { dst, .. }
                | Instr::Un { dst, .. }
                | Instr::Mux { dst, .. }
                | Instr::Load { dst, .. }
                | Instr::Store { dst, .. } => {
                    all_dsts.insert(*dst);
                }
                Instr::Requant { slot, .. } => {
                    all_dsts.insert(*slot);
                }
                Instr::ReduceStep { .. } => {}
                _ => return None, // queues, tiles, fills, folds, loops, aborts
            }
        }
        let mut ops: Vec<KOp> = Vec::with_capacity(body.len());
        // Latest micro-op writing each slot so far (readers see the most
        // recent producer, exactly as slot reads do in the unfused loop).
        let mut producer: BTreeMap<usize, usize> = BTreeMap::new();
        let resolve = |producer: &BTreeMap<usize, usize>, slot: usize| -> Option<KSrc> {
            if let Some(&i) = producer.get(&slot) {
                Some(KSrc::Lane(i))
            } else if all_dsts.contains(&slot) {
                None // written later in the body: a loop-carried read
            } else {
                Some(KSrc::Slot(slot))
            }
        };
        let resolve_terms =
            |producer: &BTreeMap<usize, usize>, (ts, tl): (u32, u32)| -> Option<Vec<(KSrc, u64)>> {
                self.tape.addr_pool[ts as usize..(ts + tl) as usize]
                    .iter()
                    .map(|&(slot, dim)| resolve(producer, slot).map(|s| (s, dim)))
                    .collect()
            };
        for instr in body {
            let j = ops.len();
            match instr {
                Instr::IterLin { dst, depth, step } => {
                    ops.push(if *depth == innermost_depth {
                        KOp::Lin {
                            dst: *dst,
                            step: *step,
                        }
                    } else {
                        KOp::Outer {
                            dst: *dst,
                            depth: *depth,
                            step: *step,
                        }
                    });
                    producer.insert(*dst, j);
                }
                Instr::Bin { op, a, b, dst, ty } => {
                    ops.push(KOp::Bin {
                        op: *op,
                        a: resolve(&producer, *a)?,
                        b: resolve(&producer, *b)?,
                        dst: *dst,
                        ty: *ty,
                    });
                    producer.insert(*dst, j);
                }
                Instr::Un { op, a, dst, ty } => {
                    ops.push(KOp::Un {
                        op: *op,
                        a: resolve(&producer, *a)?,
                        dst: *dst,
                        ty: *ty,
                    });
                    producer.insert(*dst, j);
                }
                Instr::Mux { sel, t, f, dst, ty } => {
                    ops.push(KOp::Mux {
                        sel: resolve(&producer, *sel)?,
                        t: resolve(&producer, *t)?,
                        f: resolve(&producer, *f)?,
                        dst: *dst,
                        ty: *ty,
                    });
                    producer.insert(*dst, j);
                }
                Instr::Requant { slot, ty } => {
                    // Only meaningful on a slot an earlier body op wrote;
                    // re-quantizing an external slot in place mutates
                    // loop-invariant state and blocks fusion.
                    let a = match resolve(&producer, *slot)? {
                        KSrc::Lane(i) => KSrc::Lane(i),
                        KSrc::Slot(_) => return None,
                    };
                    ops.push(KOp::Requant {
                        a,
                        dst: *slot,
                        ty: *ty,
                    });
                    producer.insert(*slot, j);
                }
                Instr::Load {
                    base,
                    terms,
                    size,
                    mem,
                    dst,
                    ty,
                } => {
                    ops.push(KOp::Load {
                        base: *base,
                        terms: resolve_terms(&producer, *terms)?,
                        size: *size,
                        mem: *mem,
                        dst: *dst,
                        ty: *ty,
                    });
                    producer.insert(*dst, j);
                }
                Instr::Store {
                    base,
                    terms,
                    size,
                    mem,
                    val,
                    mem_ty,
                    dst,
                    dst_ty,
                } => {
                    ops.push(KOp::Store {
                        base: *base,
                        terms: resolve_terms(&producer, *terms)?,
                        size: *size,
                        mem: *mem,
                        val: resolve(&producer, *val)?,
                        mem_ty: *mem_ty,
                        dst: *dst,
                        dst_ty: *dst_ty,
                    });
                    producer.insert(*dst, j);
                }
                Instr::ReduceStep { acc, val, op, ty } => {
                    ops.push(KOp::Reduce {
                        acc: *acc,
                        val: resolve(&producer, *val)?,
                        op: *op,
                        ty: *ty,
                    });
                }
                _ => return None,
            }
        }
        kernel_hazards_ok(&ops).then_some(Kernel { trips, ops })
    }

    /// Append address terms `(slot, dim)` for a Bram access to the pool.
    fn addr_terms(&mut self, addr: &[NodeId], dims: &[u64]) -> (u32, u32) {
        let start = self.tape.addr_pool.len() as u32;
        for (d, &a) in addr.iter().enumerate() {
            let slot = self.slot(a);
            self.tape.addr_pool.push((slot, dims[d]));
        }
        (start, addr.len() as u32)
    }

    fn emit_node(&mut self, n: NodeId) -> EmitResult {
        if self.aborted {
            return Ok(());
        }
        let design = self.design;
        let node = design.node(n);
        let ty = node.ty;
        let dst = self.slot(n);
        match &node.kind {
            // Constants are pre-quantized into the arena template; the
            // interpreter's re-store of the same value is a no-op.
            NodeKind::Const(_) => {}
            // An iterator read back through the body re-quantizes in
            // place.
            NodeKind::Iter { .. } => self.push(Instr::Requant { slot: dst, ty }),
            NodeKind::Prim { op, inputs } => {
                if inputs.is_empty() {
                    self.abort(SimError::Malformed(format!(
                        "primitive {op:?} at {n} has no operands"
                    )));
                    return Ok(());
                }
                if inputs.len() == 1 {
                    self.push(Instr::Un {
                        op: *op,
                        a: self.slot(inputs[0]),
                        dst,
                        ty,
                    });
                } else {
                    self.push(Instr::Bin {
                        op: *op,
                        a: self.slot(inputs[0]),
                        b: self.slot(inputs[1]),
                        dst,
                        ty,
                    });
                }
            }
            NodeKind::Mux {
                sel,
                if_true,
                if_false,
            } => self.push(Instr::Mux {
                sel: self.slot(*sel),
                t: self.slot(*if_true),
                f: self.slot(*if_false),
                dst,
                ty,
            }),
            NodeKind::Load { mem, addr } => match design.kind(*mem) {
                NodeKind::PriorityQueue(_) => {
                    let q = self.layout.queue(*mem).expect("laid out");
                    self.push(Instr::QPop { q, dst, ty });
                }
                NodeKind::Reg(_) => {
                    let base = self.layout.mem_base(*mem).expect("laid out");
                    self.push(Instr::Load {
                        base,
                        terms: (self.tape.addr_pool.len() as u32, 0),
                        size: 1,
                        mem: *mem,
                        dst,
                        ty,
                    });
                }
                NodeKind::Bram(b) => {
                    if addr.len() != b.dims.len() {
                        self.abort(SimError::Malformed(format!(
                            "access to {mem}: address rank {} != memory rank {}",
                            addr.len(),
                            b.dims.len()
                        )));
                        return Ok(());
                    }
                    let base = self.layout.mem_base(*mem).expect("laid out");
                    let size = b.dims.iter().product();
                    let terms = self.addr_terms(addr, &b.dims);
                    self.push(Instr::Load {
                        base,
                        terms,
                        size,
                        mem: *mem,
                        dst,
                        ty,
                    });
                }
                _ => self.abort(SimError::Malformed(format!("access to non-memory {mem}"))),
            },
            NodeKind::Store { mem, addr, value } => match design.kind(*mem) {
                NodeKind::PriorityQueue(_) => {
                    let q = self.layout.queue(*mem).expect("laid out");
                    self.push(Instr::QPush {
                        q,
                        val: self.slot(*value),
                        mem_ty: design.ty(*mem),
                        dst,
                        dst_ty: ty,
                    });
                }
                NodeKind::Reg(_) => {
                    let base = self.layout.mem_base(*mem).expect("laid out");
                    self.push(Instr::Store {
                        base,
                        terms: (self.tape.addr_pool.len() as u32, 0),
                        size: 1,
                        mem: *mem,
                        val: self.slot(*value),
                        mem_ty: design.ty(*mem),
                        dst,
                        dst_ty: ty,
                    });
                }
                NodeKind::Bram(b) => {
                    if addr.len() != b.dims.len() {
                        self.abort(SimError::Malformed(format!(
                            "access to {mem}: address rank {} != memory rank {}",
                            addr.len(),
                            b.dims.len()
                        )));
                        return Ok(());
                    }
                    let base = self.layout.mem_base(*mem).expect("laid out");
                    let size = b.dims.iter().product();
                    let terms = self.addr_terms(addr, &b.dims);
                    self.push(Instr::Store {
                        base,
                        terms,
                        size,
                        mem: *mem,
                        val: self.slot(*value),
                        mem_ty: design.ty(*mem),
                        dst,
                        dst_ty: ty,
                    });
                }
                _ => self.abort(SimError::Malformed(format!("access to non-memory {mem}"))),
            },
            other => self.abort(SimError::Malformed(format!(
                "{} cannot appear in a pipe body",
                other.template_name()
            ))),
        }
        Ok(())
    }

    fn emit_tile(&mut self, t: &TileSpec, load: bool) -> EmitResult {
        if self.aborted {
            return Ok(());
        }
        let design = self.design;
        let dims = match design.kind(t.offchip) {
            NodeKind::OffChip { dims } => dims,
            _ => {
                self.abort(SimError::Malformed("tile target is not off-chip".into()));
                return Ok(());
            }
        };
        if t.tile.len() != dims.len() || t.offsets.len() != dims.len() {
            self.abort(SimError::Malformed(format!(
                "tile transfer on {}: tile rank {} / offset rank {} != memory rank {}",
                t.offchip,
                t.tile.len(),
                t.offsets.len(),
                dims.len()
            )));
            return Ok(());
        }
        let local_len = match design.kind(t.local) {
            NodeKind::Bram(b) => b.elements() as usize,
            NodeKind::Reg(_) => 1,
            NodeKind::PriorityQueue(_) => {
                return Err(self.unsupported(format!("tile buffer {} is a priority queue", t.local)))
            }
            _ => {
                self.abort(SimError::Unevaluated(t.local));
                return Ok(());
            }
        };
        let tile_elems: u64 = t.tile.iter().product();
        if local_len == 0 && tile_elems > 0 {
            return Err(self.unsupported(format!("tile buffer {} has no storage", t.local)));
        }
        let strides: Vec<u64> = (0..dims.len())
            .map(|d| dims[d + 1..].iter().product())
            .collect();
        let desc = TileDesc {
            offchip_base: self.layout.offchip_base(t.offchip).expect("laid out"),
            offchip: t.offchip,
            dims: dims.clone(),
            strides,
            local_base: self.layout.mem_base(t.local).expect("laid out"),
            local_len,
            tile: t.tile.clone(),
            tile_elems,
            offsets: t.offsets.iter().map(|&o| self.slot(o)).collect(),
            load,
        };
        let i = self.tape.tiles.len();
        self.tape.tiles.push(desc);
        self.push(Instr::Tile(i));
        Ok(())
    }
}

/// Pass 2: replay the interpreter's timed schedule without touching
/// data. Every f64 expression and every [`DramTimeline`] request below
/// is copied from the interpreter's timing code verbatim, so the
/// resulting cycles/profile/trace are bitwise identical.
struct TimingWalk<'a> {
    design: &'a Design,
    platform: &'a Platform,
    dram: DramTimeline,
    profile: BTreeMap<NodeId, (u64, f64)>,
    trace: Trace,
}

impl<'a> TimingWalk<'a> {
    fn run(design: &'a Design, platform: &'a Platform) -> Timing {
        let mut w = TimingWalk {
            design,
            platform,
            dram: DramTimeline::new(),
            profile: BTreeMap::new(),
            trace: Trace::default(),
        };
        let cycles = w.walk(design.top(), 0.0, 1.0);
        Timing {
            cycles,
            transfers: w.dram.transfers(),
            profile: build_profile(design, &w.profile),
            trace: w.trace,
        }
    }

    fn walk(&mut self, ctrl: NodeId, start: f64, conc: f64) -> f64 {
        let dur = self.walk_inner(ctrl, start, conc);
        let e = self.profile.entry(ctrl).or_insert((0, 0.0));
        e.0 += 1;
        e.1 += dur;
        self.trace.events.push(TraceEvent {
            ctrl,
            start,
            end: start + dur,
        });
        dur
    }

    fn walk_inner(&mut self, ctrl: NodeId, start: f64, conc: f64) -> f64 {
        let design = self.design;
        match design.kind(ctrl) {
            NodeKind::Pipe(p) => self.pipe_duration(p),
            NodeKind::Sequential(s) => self.walk_outer(s, false, start, conc),
            NodeKind::MetaPipe(s) => self.walk_outer(s, true, start, conc),
            NodeKind::ParallelCtrl { stages, .. } => {
                let mut max = 0.0f64;
                for &st in stages {
                    let d = self.walk(st, start, conc);
                    max = max.max(d);
                }
                max + STAGE_OVERHEAD
            }
            NodeKind::TileLoad(t) => self.tile_duration(t, start, conc),
            NodeKind::TileStore(t) => self.tile_duration(t, start, conc),
            _ => unreachable!("emission rejected non-controllers"),
        }
    }

    /// The `run_outer` pipeline recurrence over timed members only (the
    /// first member of each wave; the rest are functional-only and have
    /// no timing side effects in the interpreter).
    fn walk_outer(&mut self, s: &OuterSpec, pipelined: bool, start: f64, conc: f64) -> f64 {
        let total = s.ctr.total_iters();
        let n_stages = s.stages.len() + usize::from(s.fold.is_some());
        let par = u64::from(s.par.max(1));
        let waves = total.div_ceil(par);
        let mut finish = vec![start; n_stages];
        for wave in 0..waves {
            let members = ((wave + 1) * par).min(total) - wave * par;
            let member_conc = conc * members as f64;
            let mut cur = vec![0.0f64; n_stages];
            for (st, &stage) in s.stages.iter().enumerate() {
                let ready = if st == 0 {
                    finish[0]
                } else if pipelined {
                    cur[st - 1].max(finish[st])
                } else {
                    cur[st - 1]
                };
                let d = self.walk(stage, ready, member_conc);
                cur[st] = ready + d + STAGE_OVERHEAD;
            }
            if let Some(f) = s.fold {
                let st = n_stages - 1;
                let ready = if st == 0 {
                    finish[0]
                } else if pipelined {
                    cur[st - 1].max(finish[st])
                } else {
                    cur[st - 1]
                };
                let d = self.fold_duration(&f);
                cur[st] = ready + d + STAGE_OVERHEAD;
            }
            if !pipelined {
                let end = cur[n_stages - 1];
                finish = vec![end; n_stages];
            } else {
                finish = cur;
            }
        }
        finish[n_stages - 1] - start + STAGE_OVERHEAD
    }

    fn fold_duration(&self, f: &MemFold) -> f64 {
        let src_len = match self.design.kind(f.src) {
            NodeKind::Bram(b) => b.elements() as usize,
            _ => 1,
        };
        let ty = self.design.ty(f.accum);
        let banks = match self.design.kind(f.accum) {
            NodeKind::Bram(b) => b.banks.max(1),
            _ => 1,
        };
        let lat = prim_cost(f.op.prim(), ty).latency as f64;
        src_len as f64 / f64::from(banks) + lat
    }

    fn pipe_duration(&self, p: &PipeSpec) -> f64 {
        let mut depth = pipe_depth(self.design, p) as f64;
        if let (Some(r), Pattern::Reduce(op)) = (&p.reduce, p.pattern) {
            let ty = self.design.ty(r.reg);
            depth += reduce_tree_latency(op.prim(), ty, p.par) as f64;
            depth += prim_cost(op.prim(), ty).latency as f64;
        }
        let total = p.ctr.total_iters();
        let eff_iters = (total as f64 / f64::from(p.par.max(1))).ceil().max(1.0);
        let outer_wraps: f64 = if p.ctr.dims.len() > 1 {
            p.ctr.dims[..p.ctr.dims.len() - 1]
                .iter()
                .map(|d| d.trip_count() as f64)
                .product()
        } else {
            1.0
        };
        depth + eff_iters + outer_wraps + STAGE_OVERHEAD
    }

    fn tile_duration(&mut self, t: &TileSpec, start: f64, conc: f64) -> f64 {
        let design = self.design;
        let dims = match design.kind(t.offchip) {
            NodeKind::OffChip { dims } => dims,
            _ => unreachable!("emission validated the tile target"),
        };
        let elem_bytes = u64::from(design.ty(t.offchip).bits()).div_ceil(8);
        let inner = *t.tile.last().unwrap_or(&1);
        let full_row = dims.last().is_some_and(|&d| d == inner);
        let outer: u64 = t.tile[..t.tile.len().saturating_sub(1)].iter().product();
        let (commands, run_elems) = if full_row || t.tile.len() == 1 {
            (1, inner * outer.max(1))
        } else {
            (outer.max(1), inner)
        };
        let dram = &self.platform.dram;
        let data = dram.burst_cycles(run_elems * elem_bytes) * commands as f64;
        let issue = (dram.command_issue_cycles * commands) as f64;
        let channel = data.max(issue) * conc.max(1.0);
        let queued = self.dram.request(start, channel);
        dram.command_latency_cycles as f64 + queued
    }
}

/// Which simulator implementation executes a design.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Backend {
    /// The tree-walking reference interpreter ([`simulate`]).
    #[default]
    Interp,
    /// The tape-compiled executor ([`simulate_compiled`]).
    Tape,
}

impl fmt::Display for Backend {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Backend::Interp => write!(f, "interp"),
            Backend::Tape => write!(f, "tape"),
        }
    }
}

/// Read the simulation backend from the `DHDL_SIM_BACKEND` environment
/// variable (`interp` | `tape`; default `interp`). An unrecognized value
/// warns on stderr and falls back to the interpreter — silently ignoring
/// a typo'd knob would fake a comparison.
pub fn backend_from_env() -> Backend {
    match std::env::var("DHDL_SIM_BACKEND") {
        Ok(v) => match v.as_str() {
            "tape" | "compiled" => Backend::Tape,
            "interp" | "interpreter" | "" => Backend::Interp,
            other => {
                eprintln!(
                    "dhdl-sim: unknown DHDL_SIM_BACKEND `{other}` \
                     (expected `interp` or `tape`); using interp"
                );
                Backend::Interp
            }
        },
        Err(_) => Backend::Interp,
    }
}

/// Simulate with an explicit backend choice.
///
/// # Errors
///
/// Exactly the errors of [`simulate`] — both backends produce identical
/// results, including error cases.
pub fn simulate_with(
    backend: Backend,
    design: &Design,
    platform: &Platform,
    bindings: &Bindings,
) -> Result<SimResult> {
    match backend {
        Backend::Interp => simulate(design, platform, bindings),
        Backend::Tape => simulate_compiled(design, platform, bindings),
    }
}

/// Simulate via the tape-compiled backend, falling back to the
/// interpreter for designs the compiler does not support.
///
/// # Errors
///
/// Exactly the errors of [`simulate`].
pub fn simulate_compiled(
    design: &Design,
    platform: &Platform,
    bindings: &Bindings,
) -> Result<SimResult> {
    match compile(design, platform) {
        Ok(c) => c.run(bindings),
        Err(CompileError::Unsupported(_)) => simulate(design, platform, bindings),
    }
}

#[cfg(test)]
mod profiling {
    use super::*;
    use dhdl_core::{by, DType, DesignBuilder, ReduceOp};
    use std::time::Instant;

    #[test]
    #[ignore = "manual profiling breakdown"]
    fn run_breakdown() {
        let n = 9_600u64;
        let tile = 192u64;
        let mut b = DesignBuilder::new("dot");
        let x = b.off_chip("x", DType::F32, &[n]);
        let y = b.off_chip("y", DType::F32, &[n]);
        let out = b.off_chip("out", DType::F32, &[1]);
        b.sequential(|b| {
            let acc = b.reg("acc", DType::F32, 0.0);
            b.outer_fold(true, &[by(n, tile)], 1, acc, ReduceOp::Add, |b, iters| {
                let i = iters[0];
                let xt = b.bram("xT", DType::F32, &[tile]);
                let yt = b.bram("yT", DType::F32, &[tile]);
                let partial = b.reg("partial", DType::F32, 0.0);
                b.parallel(|b| {
                    b.tile_load(x, xt, &[i], &[tile], 1);
                    b.tile_load(y, yt, &[i], &[tile], 1);
                });
                b.pipe_reduce(&[by(tile, 1)], 2, partial, ReduceOp::Add, |b, it| {
                    let a = b.load(xt, &[it[0]]);
                    let c = b.load(yt, &[it[0]]);
                    b.mul(a, c)
                });
                partial
            });
            let ot = b.bram("outT", DType::F32, &[1]);
            b.pipe(&[by(1, 1)], 1, |b, it| {
                let a = b.load_reg(acc);
                b.store(ot, &[it[0]], a);
            });
            let z = b.index_const(0);
            b.tile_store(out, ot, &[z], &[1], 1);
        });
        let d = b.finish().unwrap();
        let p = Platform::maia();
        let bindings = Bindings::new()
            .bind("x", (0..n).map(|i| i as f64).collect())
            .bind("y", (0..n).map(|i| (i % 7) as f64).collect());
        let c = compile(&d, &p).unwrap();
        let reps = 200;
        let time = |f: &mut dyn FnMut()| {
            let t = Instant::now();
            for _ in 0..reps {
                f();
            }
            t.elapsed().as_secs_f64() / reps as f64 * 1e6
        };
        let full = time(&mut || {
            std::hint::black_box(c.run(&bindings).unwrap());
        });
        let clone_t = time(&mut || {
            std::hint::black_box(c.layout.template.clone());
        });
        let mut arena = c.layout.template.clone();
        let mut queues = vec![Vec::new(); c.layout.n_queues];
        let exec = time(&mut || {
            arena.copy_from_slice(&c.layout.template);
            c.tape.execute(&mut arena, &mut queues).unwrap();
        });
        let timing_t = time(&mut || {
            std::hint::black_box((c.timing.profile.clone(), c.timing.trace.clone()));
        });
        let interp_t = time(&mut || {
            std::hint::black_box(simulate(&d, &p, &bindings).unwrap());
        });
        eprintln!("interp      {interp_t:9.1} us");
        eprintln!("full run    {full:9.1} us");
        eprintln!("arena clone {clone_t:9.1} us");
        eprintln!("execute     {exec:9.1} us");
        eprintln!("timing cln  {timing_t:9.1} us");
        eprintln!(
            "instrs {} trace_events {} profile {}",
            c.tape.instrs.len(),
            c.timing.trace.events().len(),
            c.timing.profile.len()
        );
    }
}
