//! Simulation errors.

use std::error::Error as StdError;
use std::fmt;

use dhdl_core::NodeId;

/// Error raised while simulating a design.
#[derive(Debug, Clone, PartialEq)]
pub enum SimError {
    /// An off-chip memory was not bound to input data.
    MissingBinding(String),
    /// Bound data has the wrong length for its memory.
    ShapeMismatch {
        /// Memory name.
        name: String,
        /// Expected element count.
        expected: u64,
        /// Provided element count.
        actual: usize,
    },
    /// A memory access evaluated to an out-of-range address.
    OutOfBounds {
        /// The memory node.
        mem: NodeId,
        /// The flattened index.
        index: i64,
        /// The memory size.
        size: u64,
    },
    /// A binding named an off-chip memory that does not exist in the
    /// design (a typo'd or stale binding would otherwise be silently
    /// ignored while the memory it meant to feed runs zeroed).
    UnknownBinding(String),
    /// [`crate::SimResult::output`] was asked for an off-chip memory that
    /// does not exist in the simulated design. Distinct from
    /// [`SimError::MissingBinding`] (an *input* that was never bound):
    /// this is a read-side lookup error, and the message lists the
    /// outputs that do exist.
    UnknownOutput {
        /// The requested output name.
        name: String,
        /// The off-chip memory names the result actually holds.
        available: Vec<String>,
    },
    /// A controller's counter chain has zero total iterations (an `end`
    /// of 0 or a `step` of 0), so its body can never execute.
    ZeroTripLoop(NodeId),
    /// The graph referenced a value that was never computed.
    Unevaluated(NodeId),
    /// Malformed design reached the simulator (validation should prevent
    /// this).
    Malformed(String),
}

impl SimError {
    /// A short stable identifier for the error variant, independent of
    /// the variant's payload — the key used for per-error-path
    /// observation counters (`sim.errors.<kind>`).
    pub fn kind(&self) -> &'static str {
        match self {
            SimError::MissingBinding(_) => "missing_binding",
            SimError::ShapeMismatch { .. } => "shape_mismatch",
            SimError::OutOfBounds { .. } => "out_of_bounds",
            SimError::UnknownBinding(_) => "unknown_binding",
            SimError::UnknownOutput { .. } => "unknown_output",
            SimError::ZeroTripLoop(_) => "zero_trip_loop",
            SimError::Unevaluated(_) => "unevaluated",
            SimError::Malformed(_) => "malformed",
        }
    }
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::MissingBinding(name) => {
                write!(f, "off-chip memory `{name}` has no bound data")
            }
            SimError::ShapeMismatch {
                name,
                expected,
                actual,
            } => write!(
                f,
                "off-chip memory `{name}` expects {expected} elements, got {actual}"
            ),
            SimError::OutOfBounds { mem, index, size } => {
                write!(f, "access to {mem} at flattened index {index}, size {size}")
            }
            SimError::UnknownBinding(name) => {
                write!(
                    f,
                    "binding `{name}` matches no off-chip memory in the design"
                )
            }
            SimError::UnknownOutput { name, available } => {
                write!(
                    f,
                    "no output named `{name}`; available outputs: [{}]",
                    available.join(", ")
                )
            }
            SimError::ZeroTripLoop(ctrl) => {
                write!(f, "controller {ctrl} has a zero-trip counter chain")
            }
            SimError::Unevaluated(id) => write!(f, "node {id} used before evaluation"),
            SimError::Malformed(msg) => write!(f, "malformed design: {msg}"),
        }
    }
}

impl StdError for SimError {}

/// Result alias for simulator operations.
pub type Result<T> = std::result::Result<T, SimError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_mentions_details() {
        let e = SimError::ShapeMismatch {
            name: "x".into(),
            expected: 10,
            actual: 3,
        };
        assert!(e.to_string().contains("expects 10"));
        let e = SimError::MissingBinding("y".into());
        assert!(e.to_string().contains('y'));
    }

    #[test]
    fn unknown_output_lists_available() {
        let e = SimError::UnknownOutput {
            name: "oops".into(),
            available: vec!["out".into(), "y".into()],
        };
        let msg = e.to_string();
        assert!(msg.contains("`oops`"));
        assert!(msg.contains("out, y"));
        assert_eq!(e.kind(), "unknown_output");
    }
}
