//! Multi-device simulation: execute a partitioned design across a
//! [`MultiFpgaPlatform`] schedule.
//!
//! Partitioning never changes what a design computes — the cut moves
//! controllers onto other devices, and every cut memory edge becomes an
//! explicit inter-board channel that streams exactly the values the
//! on-chip memory would have held. The functional outputs of a
//! partitioned design are therefore **bit-identical** to the
//! unpartitioned run; what changes is timing. [`simulate_partitioned`]
//! runs the ordinary functional simulation (the global controller
//! schedule is unchanged — partitions still synchronize through their
//! parents, now across the link) and adds the exposed link cycles of the
//! partitioning's channels: stream occupancy serialized on the shared
//! link bandwidth, plus first-word latency per refill for channels in
//! sequential scopes.
//!
//! The reference interpreter executes every multi-device schedule. The
//! tape backend compiles single-device schedules only: a non-single
//! partitioning under [`Backend::Tape`] is treated exactly like a design
//! the tape compiler rejects ([`CompileError::Unsupported`] semantics)
//! and falls back to the interpreter — the tape never miscompiles a
//! schedule it does not model.
//!
//! [`CompileError::Unsupported`]: crate::CompileError::Unsupported

use dhdl_core::Design;
use dhdl_synth::partition::{partition, Partitioning};
use dhdl_target::{MultiFpgaPlatform, Platform};

use crate::compile::{simulate_with, Backend};
use crate::error::Result;
use crate::interp::{simulate, Bindings, SimResult};

/// The result of a multi-device simulation.
#[derive(Debug, Clone)]
pub struct MultiSimResult {
    /// The functional simulation result. `result.cycles` includes the
    /// exposed link cycles; outputs are bit-identical to the
    /// unpartitioned run.
    pub result: SimResult,
    /// Exposed inter-board link cycles included in `result.cycles`
    /// (zero when the design was not cut).
    pub link_cycles: f64,
    /// Devices the partitioning actually uses (1 means the design ran
    /// whole on one device).
    pub devices_used: u32,
}

impl MultiSimResult {
    /// Final contents of the off-chip memory named `name` (delegates to
    /// [`SimResult::output`]).
    ///
    /// # Errors
    ///
    /// Exactly the errors of [`SimResult::output`].
    pub fn output(&self, name: &str) -> Result<&[f64]> {
        self.result.output(name)
    }
}

/// Simulate a design on `k` devices, partitioning it first.
///
/// `k <= 1` is identical to [`simulate_with`] on the single-board
/// platform — the partitioning pass is not consulted at all. For
/// `k > 1` the placer cuts the design (or leaves it whole if it fits one
/// device) and the run is scored with [`simulate_partitioned`].
///
/// # Errors
///
/// Exactly the errors of [`simulate`] — partitioning itself cannot fail.
pub fn simulate_multi(
    backend: Backend,
    design: &Design,
    platform: &Platform,
    k: u32,
    bindings: &Bindings,
) -> Result<MultiSimResult> {
    if k <= 1 {
        let result = simulate_with(backend, design, platform, bindings)?;
        return Ok(MultiSimResult {
            result,
            link_cycles: 0.0,
            devices_used: 1,
        });
    }
    let multi = MultiFpgaPlatform::from_platform(platform, k);
    let parts = partition(design, multi.device(), &multi.link, k);
    simulate_partitioned(backend, design, &multi, &parts, bindings)
}

/// Simulate a design under an already-computed [`Partitioning`].
///
/// A single (uncut) partitioning is identical to [`simulate_with`] on
/// the base platform. A real cut runs the same functional schedule —
/// outputs are bit-identical to the unpartitioned design — and adds
/// `parts.link_cycles(&multi.link)` to the cycle count. The tape backend
/// does not model multi-device schedules; a non-single partitioning
/// under [`Backend::Tape`] falls back to the reference interpreter
/// rather than miscompiling.
///
/// # Errors
///
/// Exactly the errors of [`simulate`].
pub fn simulate_partitioned(
    backend: Backend,
    design: &Design,
    multi: &MultiFpgaPlatform,
    parts: &Partitioning,
    bindings: &Bindings,
) -> Result<MultiSimResult> {
    if parts.is_single() {
        let result = simulate_with(backend, design, &multi.base, bindings)?;
        return Ok(MultiSimResult {
            result,
            link_cycles: 0.0,
            devices_used: 1,
        });
    }
    let _span = dhdl_obs::span_arg(
        "simulate_partitioned",
        "devices",
        u64::from(parts.devices_used()),
    );
    // Multi-device schedules run on the reference interpreter for every
    // backend: the tape compiles single-device schedules only, and an
    // unsupported schedule must fall back, never miscompile.
    let mut result = simulate(design, &multi.base, bindings)?;
    let link_cycles = parts.link_cycles(&multi.link);
    result.cycles += link_cycles;
    Ok(MultiSimResult {
        result,
        link_cycles,
        devices_used: parts.devices_used(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use dhdl_core::{by, DType, DesignBuilder};
    use dhdl_synth::partition::{Channel, CutKind, Partition};
    use dhdl_synth::Netlist;
    use dhdl_target::Resources;

    /// A small tiled square-then-double chain with real outputs.
    fn chain() -> Design {
        let n = 256u64;
        let tile = 64u64;
        let mut b = DesignBuilder::new("chain");
        let x = b.off_chip("x", DType::F32, &[n]);
        let y = b.off_chip("y", DType::F32, &[n]);
        b.sequential(|b| {
            b.meta_pipe(&[by(n, tile)], 1, |b, iters| {
                let i = iters[0];
                let xt = b.bram("xT", DType::F32, &[tile]);
                let mt = b.bram("mT", DType::F32, &[tile]);
                b.tile_load(x, xt, &[i], &[tile], 1);
                b.pipe(&[by(tile, 1)], 1, |b, it| {
                    let v = b.load(xt, &[it[0]]);
                    let w = b.mul(v, v);
                    b.store(mt, &[it[0]], w);
                });
                b.pipe(&[by(tile, 1)], 1, |b, it| {
                    let v = b.load(mt, &[it[0]]);
                    let w = b.add(v, v);
                    b.store(mt, &[it[0]], w);
                });
                b.tile_store(y, mt, &[i], &[tile], 1);
            });
        });
        b.finish().unwrap()
    }

    fn inputs() -> Bindings {
        Bindings::new().bind("x", (0..256).map(f64::from).collect())
    }

    /// A hand-built two-device partitioning over `chain()` — small
    /// designs are never cut by the placer, so timing composition is
    /// tested against a synthetic cut with known channel traffic.
    fn synthetic_cut(design: &Design) -> Partitioning {
        let mem = design.find_all(|n| n.name.as_deref() == Some("mT"))[0];
        Partitioning {
            num_devices: 2,
            cut: CutKind::LeafRanges,
            partitions: vec![
                Partition {
                    device: 0,
                    units: vec![],
                    net: Netlist::default(),
                    endpoints: Resources::default(),
                },
                Partition {
                    device: 1,
                    units: vec![],
                    net: Netlist::default(),
                    endpoints: Resources::default(),
                },
            ],
            channels: vec![Channel {
                src: 0,
                dst: 1,
                mem,
                words: 64,
                word_bits: 32,
                transfers: 4,
                overlapped: false,
            }],
        }
    }

    #[test]
    fn k1_is_identical_to_single_board() {
        let d = chain();
        let p = Platform::maia();
        let base = simulate(&d, &p, &inputs()).unwrap();
        let m = simulate_multi(Backend::Interp, &d, &p, 1, &inputs()).unwrap();
        assert_eq!(m.devices_used, 1);
        assert_eq!(m.link_cycles, 0.0);
        assert_eq!(m.result.cycles, base.cycles);
        assert_eq!(m.result.output("y").unwrap(), base.output("y").unwrap());
    }

    #[test]
    fn small_design_stays_whole_at_k4() {
        let d = chain();
        let p = Platform::maia();
        let base = simulate(&d, &p, &inputs()).unwrap();
        let m = simulate_multi(Backend::Interp, &d, &p, 4, &inputs()).unwrap();
        assert_eq!(m.devices_used, 1);
        assert_eq!(m.result.cycles, base.cycles);
        assert_eq!(m.result.output("y").unwrap(), base.output("y").unwrap());
    }

    #[test]
    fn cut_preserves_outputs_and_adds_link_cycles() {
        let d = chain();
        let p = Platform::maia();
        let multi = MultiFpgaPlatform::from_platform(&p, 2);
        let parts = synthetic_cut(&d);
        assert!(!parts.is_single());
        let base = simulate(&d, &p, &inputs()).unwrap();
        let m = simulate_partitioned(Backend::Interp, &d, &multi, &parts, &inputs()).unwrap();
        // Outputs are bit-identical: partitioning never changes values.
        assert_eq!(m.result.output("y").unwrap(), base.output("y").unwrap());
        // Cycles grow by exactly the exposed link cycles.
        let expected = parts.link_cycles(&multi.link);
        assert!(expected > 0.0);
        assert_eq!(m.link_cycles, expected);
        assert_eq!(m.result.cycles, base.cycles + expected);
        assert_eq!(m.devices_used, 2);
    }

    #[test]
    fn tape_backend_falls_back_on_partitioned_schedules() {
        let d = chain();
        let p = Platform::maia();
        let multi = MultiFpgaPlatform::from_platform(&p, 2);
        let parts = synthetic_cut(&d);
        let i = simulate_partitioned(Backend::Interp, &d, &multi, &parts, &inputs()).unwrap();
        let t = simulate_partitioned(Backend::Tape, &d, &multi, &parts, &inputs()).unwrap();
        assert_eq!(t.result.cycles, i.result.cycles);
        assert_eq!(t.result.output("y").unwrap(), i.result.output("y").unwrap());
        assert_eq!(t.link_cycles, i.link_cycles);
    }
}
