//! The DHDL simulator: functional execution plus cycle-level timing.
//!
//! Functionally, the simulator interprets the dataflow graph exactly:
//! controllers iterate their counter chains, pipe bodies evaluate in
//! dataflow order with type quantization, tile transfers move data between
//! off-chip arrays and on-chip buffers, and folds/reductions accumulate.
//!
//! For timing, the simulator resolves what the estimator only
//! approximates: `MetaPipe` stages are scheduled with the full pipeline
//! recurrence over *measured* per-wave stage durations (not the static
//! `(N−1)·max + Σ` bound), off-chip transfers contend on a shared
//! [`DramTimeline`] at their actual issue times, and counters pay a
//! re-initialization bubble per outer iteration. The gap between this and
//! `dhdl_estimate::estimate_cycles` is the runtime-estimation error
//! reported in Table III.

use std::collections::BTreeMap;

use dhdl_core::{
    CounterChain, Design, MemFold, NodeId, NodeKind, Pattern, PipeSpec, PrimOp, TileSpec,
};
use dhdl_synth::chardata::{prim_cost, reduce_tree_latency};
use dhdl_synth::pipe_depth;
use dhdl_target::Platform;

use crate::error::{Result, SimError};
use crate::memory::DramTimeline;
use crate::trace::{Trace, TraceEvent};

/// Per-stage handshake overhead in cycles (matches the generated control).
pub(crate) const STAGE_OVERHEAD: f64 = 2.0;

/// Input data bound to off-chip memories by name.
///
/// Unbound memories are zero-initialized (typical for outputs). A
/// binding whose name matches no off-chip memory is rejected with
/// [`SimError::UnknownBinding`] — silently ignoring it would leave the
/// memory it meant to feed zeroed.
#[derive(Debug, Clone, Default)]
pub struct Bindings {
    map: BTreeMap<String, Vec<f64>>,
}

impl Bindings {
    /// No bindings; all memories start zeroed.
    pub fn new() -> Self {
        Self::default()
    }

    /// Bind `data` to the off-chip memory named `name`.
    pub fn bind(mut self, name: &str, data: Vec<f64>) -> Self {
        self.map.insert(name.to_string(), data);
        self
    }

    pub(crate) fn get(&self, name: &str) -> Option<&Vec<f64>> {
        self.map.get(name)
    }

    /// Bound names in sorted order (the validation order both backends
    /// share).
    pub(crate) fn names(&self) -> impl Iterator<Item = &str> {
        self.map.keys().map(String::as_str)
    }
}

/// Cycle attribution for one controller across a simulation.
#[derive(Debug, Clone, PartialEq)]
pub struct ProfileEntry {
    /// The controller node.
    pub ctrl: NodeId,
    /// Template kind plus debug name (e.g. `"Pipe %12"`).
    pub label: String,
    /// Timed executions of the controller.
    pub executions: u64,
    /// Total cycles across timed executions (children included — entries
    /// of nested controllers overlap their parents').
    pub cycles: f64,
}

/// The outcome of a simulation: total cycles and final off-chip contents.
#[derive(Debug, Clone)]
pub struct SimResult {
    /// Total execution cycles at the fabric clock.
    pub cycles: f64,
    /// Number of off-chip transfers issued.
    pub transfers: usize,
    pub(crate) offchip: BTreeMap<String, Vec<f64>>,
    pub(crate) profile: Vec<ProfileEntry>,
    pub(crate) trace: Trace,
}

impl SimResult {
    /// Final contents of the off-chip memory named `name`.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::UnknownOutput`] (listing the outputs that do
    /// exist) if no such memory exists in the simulated design.
    pub fn output(&self, name: &str) -> Result<&[f64]> {
        self.offchip
            .get(name)
            .map(Vec::as_slice)
            .ok_or_else(|| SimError::UnknownOutput {
                name: name.to_string(),
                available: self.offchip.keys().cloned().collect(),
            })
    }

    /// Names of all off-chip memories in the result, sorted.
    pub fn output_names(&self) -> impl Iterator<Item = &str> {
        self.offchip.keys().map(String::as_str)
    }

    /// Bit-exact comparison against another result (any backend).
    ///
    /// Returns `None` when cycles, transfer counts, every off-chip array,
    /// the profile and the trace are bitwise identical; otherwise a
    /// human-readable description of the first divergence. This is the
    /// contract the tape backend is held to against the interpreter.
    pub fn bit_diff(&self, other: &SimResult) -> Option<String> {
        if self.cycles.to_bits() != other.cycles.to_bits() {
            return Some(format!("cycles {} vs {}", self.cycles, other.cycles));
        }
        if self.transfers != other.transfers {
            return Some(format!(
                "transfers {} vs {}",
                self.transfers, other.transfers
            ));
        }
        let mine: Vec<&String> = self.offchip.keys().collect();
        let theirs: Vec<&String> = other.offchip.keys().collect();
        if mine != theirs {
            return Some(format!("off-chip names {mine:?} vs {theirs:?}"));
        }
        for (name, a) in &self.offchip {
            let b = &other.offchip[name];
            if a.len() != b.len() {
                return Some(format!("`{name}` length {} vs {}", a.len(), b.len()));
            }
            for (i, (x, y)) in a.iter().zip(b).enumerate() {
                if x.to_bits() != y.to_bits() {
                    return Some(format!(
                        "`{name}`[{i}] = {x} ({:#x}) vs {y} ({:#x})",
                        x.to_bits(),
                        y.to_bits()
                    ));
                }
            }
        }
        if self.profile.len() != other.profile.len() {
            return Some(format!(
                "profile length {} vs {}",
                self.profile.len(),
                other.profile.len()
            ));
        }
        for (a, b) in self.profile.iter().zip(&other.profile) {
            if a.ctrl != b.ctrl
                || a.label != b.label
                || a.executions != b.executions
                || a.cycles.to_bits() != b.cycles.to_bits()
            {
                return Some(format!("profile entry {a:?} vs {b:?}"));
            }
        }
        if self.trace.events.len() != other.trace.events.len() {
            return Some(format!(
                "trace length {} vs {}",
                self.trace.events.len(),
                other.trace.events.len()
            ));
        }
        for (a, b) in self.trace.events.iter().zip(&other.trace.events) {
            if a.ctrl != b.ctrl
                || a.start.to_bits() != b.start.to_bits()
                || a.end.to_bits() != b.end.to_bits()
            {
                return Some(format!("trace event {a:?} vs {b:?}"));
            }
        }
        None
    }

    /// Wall-clock seconds on `platform`.
    pub fn seconds(&self, platform: &Platform) -> f64 {
        platform.cycles_to_seconds(self.cycles)
    }

    /// Per-controller cycle attribution, heaviest first. Nested
    /// controllers overlap their parents, so entries do not sum to
    /// [`SimResult::cycles`].
    pub fn profile(&self) -> &[ProfileEntry] {
        &self.profile
    }

    /// The controller activity trace (exportable to VCD via
    /// [`Trace::to_vcd`]).
    pub fn trace(&self) -> &Trace {
        &self.trace
    }

    /// Render the profile as an indented report.
    pub fn profile_report(&self) -> String {
        let mut out = String::new();
        for e in &self.profile {
            out.push_str(&format!(
                "{:>14.0} cycles  {:>8} runs  {}\n",
                e.cycles, e.executions, e.label
            ));
        }
        out
    }
}

/// Simulate a design on a platform with the given input bindings.
///
/// # Errors
///
/// Returns a [`SimError`] for shape mismatches, out-of-bounds accesses, or
/// structurally unsupported graphs.
pub fn simulate(design: &Design, platform: &Platform, bindings: &Bindings) -> Result<SimResult> {
    let _span = dhdl_obs::span!("simulate");
    let result = simulate_inner(design, platform, bindings);
    match &result {
        Ok(r) => {
            dhdl_obs::counter!("sim.runs").incr();
            dhdl_obs::counter!("sim.cycles").add(r.cycles as u64);
        }
        Err(e) => {
            dhdl_obs::counter!("sim.errors").incr();
            dhdl_obs::counter(error_counter(e)).incr();
        }
    }
    result
}

/// The full static counter name for an error path; a match (rather than
/// formatting from [`SimError::kind`]) because counters need `'static`
/// names.
pub(crate) fn error_counter(e: &SimError) -> &'static str {
    match e.kind() {
        "missing_binding" => "sim.errors.missing_binding",
        "shape_mismatch" => "sim.errors.shape_mismatch",
        "out_of_bounds" => "sim.errors.out_of_bounds",
        "unknown_binding" => "sim.errors.unknown_binding",
        "unknown_output" => "sim.errors.unknown_output",
        "zero_trip_loop" => "sim.errors.zero_trip_loop",
        "unevaluated" => "sim.errors.unevaluated",
        _ => "sim.errors.malformed",
    }
}

fn simulate_inner(design: &Design, platform: &Platform, bindings: &Bindings) -> Result<SimResult> {
    let mut sim = Sim::new(design, platform, bindings)?;
    let cycles = sim.run(design.top(), 0.0, true, 1.0)?;
    let mut offchip = BTreeMap::new();
    for &off in design.offchips() {
        let name = design
            .node(off)
            .name
            .clone()
            .unwrap_or_else(|| format!("{off}"));
        offchip.insert(name, sim.offchip.remove(&off).unwrap_or_default());
    }
    Ok(SimResult {
        cycles,
        transfers: sim.dram.transfers(),
        offchip,
        profile: build_profile(design, &sim.profile),
        trace: sim.trace,
    })
}

/// Convert raw per-controller accumulators into the sorted profile —
/// shared by both backends so labels and ordering match bit-for-bit.
pub(crate) fn build_profile(
    design: &Design,
    profile: &BTreeMap<NodeId, (u64, f64)>,
) -> Vec<ProfileEntry> {
    let mut out: Vec<ProfileEntry> = profile
        .iter()
        .map(|(&ctrl, &(executions, cycles))| ProfileEntry {
            ctrl,
            label: format!(
                "{} {}{}",
                design.kind(ctrl).template_name(),
                ctrl,
                design
                    .node(ctrl)
                    .name
                    .as_deref()
                    .map(|n| format!(" ({n})"))
                    .unwrap_or_default()
            ),
            executions,
            cycles,
        })
        .collect();
    out.sort_by(|a, b| b.cycles.total_cmp(&a.cycles));
    out
}

struct Sim<'a> {
    design: &'a Design,
    platform: &'a Platform,
    offchip: BTreeMap<NodeId, Vec<f64>>,
    onchip: BTreeMap<NodeId, Vec<f64>>,
    vals: Vec<f64>,
    dram: DramTimeline,
    profile: BTreeMap<NodeId, (u64, f64)>,
    trace: Trace,
}

impl<'a> Sim<'a> {
    fn new(design: &'a Design, platform: &'a Platform, bindings: &Bindings) -> Result<Self> {
        let mut offchip = BTreeMap::new();
        for &off in design.offchips() {
            let NodeKind::OffChip { dims } = design.kind(off) else {
                continue;
            };
            let elements: u64 = dims.iter().product();
            let name = design.node(off).name.clone().unwrap_or_default();
            let data = match bindings.get(&name) {
                Some(d) => {
                    if d.len() as u64 != elements {
                        return Err(SimError::ShapeMismatch {
                            name,
                            expected: elements,
                            actual: d.len(),
                        });
                    }
                    d.clone()
                }
                None => vec![0.0; elements as usize],
            };
            offchip.insert(off, data);
        }
        for name in bindings.map.keys() {
            let known = design
                .offchips()
                .iter()
                .any(|&off| design.node(off).name.as_deref() == Some(name.as_str()));
            if !known {
                return Err(SimError::UnknownBinding(name.clone()));
            }
        }
        let mut onchip = BTreeMap::new();
        for (id, node) in design.iter() {
            match &node.kind {
                NodeKind::Bram(b) => {
                    onchip.insert(id, vec![0.0; b.elements() as usize]);
                }
                NodeKind::Reg(r) => {
                    onchip.insert(id, vec![r.init]);
                }
                NodeKind::PriorityQueue(_) => {
                    onchip.insert(id, Vec::new());
                }
                _ => {}
            }
        }
        Ok(Sim {
            design,
            platform,
            offchip,
            onchip,
            vals: vec![0.0; design.len()],
            dram: DramTimeline::new(),
            profile: BTreeMap::new(),
            trace: Trace::default(),
        })
    }

    /// Execute controller `ctrl` starting at time `start`.
    ///
    /// `timed` selects whether this execution contributes DRAM traffic and
    /// measured durations (replica members beyond the first run
    /// functional-only); `conc` is the replication concurrency multiplier
    /// applied to transfer durations.
    fn run(&mut self, ctrl: NodeId, start: f64, timed: bool, conc: f64) -> Result<f64> {
        let dur = self.run_inner(ctrl, start, timed, conc)?;
        if timed {
            let e = self.profile.entry(ctrl).or_insert((0, 0.0));
            e.0 += 1;
            e.1 += dur;
            self.trace.events.push(TraceEvent {
                ctrl,
                start,
                end: start + dur,
            });
        }
        Ok(dur)
    }

    fn run_inner(&mut self, ctrl: NodeId, start: f64, timed: bool, conc: f64) -> Result<f64> {
        match self.design.kind(ctrl).clone() {
            NodeKind::Pipe(p) => self.run_pipe(ctrl, &p),
            NodeKind::Sequential(s) => {
                let dur = self.run_outer(
                    ctrl, &s.ctr, s.par, &s.stages, s.fold, false, start, timed, conc,
                )?;
                Ok(dur)
            }
            NodeKind::MetaPipe(s) => {
                let dur = self.run_outer(
                    ctrl, &s.ctr, s.par, &s.stages, s.fold, true, start, timed, conc,
                )?;
                Ok(dur)
            }
            NodeKind::ParallelCtrl { stages, .. } => {
                let mut max = 0.0f64;
                for &st in &stages {
                    let d = self.run(st, start, timed, conc)?;
                    max = max.max(d);
                }
                Ok(max + STAGE_OVERHEAD)
            }
            NodeKind::TileLoad(t) => self.run_tile(&t, true, start, timed, conc),
            NodeKind::TileStore(t) => self.run_tile(&t, false, start, timed, conc),
            other => Err(SimError::Malformed(format!(
                "{} is not an executable controller",
                other.template_name()
            ))),
        }
    }

    /// Execute an outer controller (`Sequential` or `MetaPipe`).
    #[allow(clippy::too_many_arguments)]
    fn run_outer(
        &mut self,
        ctrl: NodeId,
        ctr: &CounterChain,
        par: u32,
        stages: &[NodeId],
        fold: Option<MemFold>,
        pipelined: bool,
        start: f64,
        timed: bool,
        conc: f64,
    ) -> Result<f64> {
        // An empty (unit) chain means "run once"; a chain with real
        // dimensions whose product is zero can never execute its body.
        let total = ctr.total_iters();
        if total == 0 {
            return Err(SimError::ZeroTripLoop(ctrl));
        }
        let n_stages = stages.len() + usize::from(fold.is_some());
        if n_stages == 0 {
            return Err(SimError::Malformed(format!(
                "outer controller {ctrl} has no stages"
            )));
        }
        let par = u64::from(par.max(1));
        let waves = total.div_ceil(par);
        // Fold accumulators start each controller execution at the
        // reduction identity (reduce semantics of the source pattern).
        if let Some(f) = fold {
            let id = f.op.identity();
            if let Some(state) = self.onchip.get_mut(&f.accum) {
                for v in state.iter_mut() {
                    *v = id;
                }
            }
        }
        // Pipeline recurrence state: finish time of each stage in the
        // previous wave (for Sequential, stages within a wave serialize and
        // waves serialize).
        let mut finish = vec![start; n_stages];
        let iters = self.iter_nodes(ctrl);
        for wave in 0..waves {
            let members: Vec<u64> = (wave * par..((wave + 1) * par).min(total)).collect();
            for (mi, &lin) in members.iter().enumerate() {
                self.bind_iters(&iters, ctr, lin);
                let member_timed = timed && mi == 0;
                let member_conc = conc * members.len() as f64;
                if member_timed {
                    let mut cur = vec![0.0f64; n_stages];
                    for (s, &stage) in stages.iter().enumerate() {
                        let ready = if s == 0 {
                            finish[0]
                        } else if pipelined {
                            cur[s - 1].max(finish[s])
                        } else {
                            cur[s - 1]
                        };
                        let d = self.run(stage, ready, true, member_conc)?;
                        cur[s] = ready + d + STAGE_OVERHEAD;
                    }
                    if let Some(f) = fold {
                        let s = n_stages - 1;
                        let ready = if s == 0 {
                            finish[0]
                        } else if pipelined {
                            cur[s - 1].max(finish[s])
                        } else {
                            cur[s - 1]
                        };
                        let d = self.run_fold(&f)?;
                        cur[s] = ready + d + STAGE_OVERHEAD;
                    }
                    if !pipelined {
                        // Sequential: next wave starts after this one ends.
                        let end = cur[n_stages - 1];
                        finish = vec![end; n_stages];
                    } else {
                        finish = cur;
                    }
                } else {
                    for &stage in stages {
                        self.run(stage, 0.0, false, member_conc)?;
                    }
                    if let Some(f) = fold {
                        self.run_fold(&f)?;
                    }
                }
            }
        }
        Ok(finish[n_stages - 1] - start + STAGE_OVERHEAD)
    }

    /// Iterator nodes owned by a controller, ordered by dimension.
    fn iter_nodes(&self, ctrl: NodeId) -> Vec<NodeId> {
        let mut iters: Vec<(usize, NodeId)> = self
            .design
            .iter()
            .filter_map(|(id, n)| match n.kind {
                NodeKind::Iter { ctrl: c, dim } if c == ctrl => Some((dim, id)),
                _ => None,
            })
            .collect();
        iters.sort_unstable();
        iters.into_iter().map(|(_, id)| id).collect()
    }

    /// Decode linear iteration `lin` into per-dimension iterator values.
    fn bind_iters(&mut self, iters: &[NodeId], ctr: &CounterChain, lin: u64) {
        let mut rem = lin;
        let mut coords = vec![0u64; ctr.dims.len()];
        for (d, dim) in ctr.dims.iter().enumerate().rev() {
            let trips = dim.trip_count().max(1);
            coords[d] = (rem % trips) * dim.step;
            rem /= trips;
        }
        for (d, &it) in iters.iter().enumerate() {
            self.vals[it.index()] = coords.get(d).copied().unwrap_or(0) as f64;
        }
    }

    /// Execute one `Pipe`: all counter iterations, functional body
    /// evaluation, plus the timing model (depth + II·iters + counter
    /// bubbles).
    fn run_pipe(&mut self, ctrl: NodeId, p: &PipeSpec) -> Result<f64> {
        let total = p.ctr.total_iters();
        if total == 0 {
            return Err(SimError::ZeroTripLoop(ctrl));
        }
        // A reduce pipe computes the reduction of its own iteration range:
        // the accumulator starts at the identity each execution.
        if let Some(r) = &p.reduce {
            let id = r.op.identity();
            if let Some(state) = self.onchip.get_mut(&r.reg) {
                state[0] = id;
            }
        }
        // Functional execution over the full iteration space.
        let dims: Vec<(u64, u64)> = p
            .ctr
            .dims
            .iter()
            .map(|d| (d.trip_count(), d.step))
            .collect();
        let iters = self.iter_nodes(ctrl);
        let mut coords = vec![0u64; dims.len()];
        for _ in 0..total {
            for (d, &it) in iters.iter().enumerate() {
                self.vals[it.index()] = (coords[d] * dims[d].1) as f64;
            }
            self.eval_body(p)?;
            // Advance the counter chain (row-major, last dim fastest).
            for d in (0..dims.len()).rev() {
                coords[d] += 1;
                if coords[d] < dims[d].0 {
                    break;
                }
                coords[d] = 0;
            }
        }
        // Timing: depth + ceil(iters/par) at II=1, plus a one-cycle counter
        // re-initialization bubble per outer-dimension wrap (a control
        // artifact the analytical model ignores).
        let mut depth = pipe_depth(self.design, p) as f64;
        if let (Some(r), Pattern::Reduce(op)) = (&p.reduce, p.pattern) {
            let ty = self.design.ty(r.reg);
            depth += reduce_tree_latency(op.prim(), ty, p.par) as f64;
            depth += prim_cost(op.prim(), ty).latency as f64;
        }
        let eff_iters = (total as f64 / f64::from(p.par.max(1))).ceil().max(1.0);
        let outer_wraps: f64 = if dims.len() > 1 {
            dims[..dims.len() - 1]
                .iter()
                .map(|&(t, _)| t as f64)
                .product()
        } else {
            1.0
        };
        Ok(depth + eff_iters + outer_wraps + STAGE_OVERHEAD)
    }

    fn eval_body(&mut self, p: &PipeSpec) -> Result<()> {
        for &n in &p.body {
            let v = self.eval_node(n)?;
            self.vals[n.index()] = v;
        }
        if let Some(r) = &p.reduce {
            let v = self.operand(r.value)?;
            let state = self
                .onchip
                .get_mut(&r.reg)
                .ok_or(SimError::Unevaluated(r.reg))?;
            let ty = self.design.ty(r.reg);
            state[0] = ty.quantize(r.op.apply(state[0], v));
        }
        Ok(())
    }

    fn eval_node(&mut self, n: NodeId) -> Result<f64> {
        let node = self.design.node(n);
        let ty = node.ty;
        let v = match &node.kind {
            NodeKind::Const(v) => *v,
            NodeKind::Iter { .. } => self.vals[n.index()],
            NodeKind::Prim { op, inputs } => {
                if inputs.is_empty() {
                    return Err(SimError::Malformed(format!(
                        "primitive {op:?} at {n} has no operands"
                    )));
                }
                let a = self.operand(inputs[0])?;
                let b = if inputs.len() > 1 {
                    self.operand(inputs[1])?
                } else {
                    0.0
                };
                apply_prim(*op, a, b)
            }
            NodeKind::Mux {
                sel,
                if_true,
                if_false,
            } => {
                if self.operand(*sel)? != 0.0 {
                    self.operand(*if_true)?
                } else {
                    self.operand(*if_false)?
                }
            }
            NodeKind::Load { mem, addr } => {
                let idx = self.flat_index(*mem, addr)?;
                match self.design.kind(*mem) {
                    NodeKind::PriorityQueue(_) => {
                        // Pop the minimum element.
                        let q = self
                            .onchip
                            .get_mut(mem)
                            .ok_or(SimError::Unevaluated(*mem))?;
                        if q.is_empty() {
                            0.0
                        } else {
                            // total_cmp so a NaN pushed into the queue
                            // (e.g. from a 0/0 upstream) sorts last
                            // instead of panicking the comparator.
                            let (mi, _) = q
                                .iter()
                                .enumerate()
                                .min_by(|a, b| a.1.total_cmp(b.1))
                                .expect("nonempty");
                            q.remove(mi)
                        }
                    }
                    _ => {
                        let state = self.onchip.get(mem).ok_or(SimError::Unevaluated(*mem))?;
                        state[idx]
                    }
                }
            }
            NodeKind::Store { mem, addr, value } => {
                let v = self.operand(*value)?;
                let mem_ty = self.design.ty(*mem);
                let idx = self.flat_index(*mem, addr)?;
                match self.design.kind(*mem) {
                    NodeKind::PriorityQueue(_) => {
                        let q = self
                            .onchip
                            .get_mut(mem)
                            .ok_or(SimError::Unevaluated(*mem))?;
                        q.push(mem_ty.quantize(v));
                    }
                    _ => {
                        let state = self
                            .onchip
                            .get_mut(mem)
                            .ok_or(SimError::Unevaluated(*mem))?;
                        state[idx] = mem_ty.quantize(v);
                    }
                }
                v
            }
            other => {
                return Err(SimError::Malformed(format!(
                    "{} cannot appear in a pipe body",
                    other.template_name()
                )))
            }
        };
        Ok(ty.quantize(v))
    }

    fn operand(&self, id: NodeId) -> Result<f64> {
        match self.design.kind(id) {
            // Constants are materialized in the datapath at their declared
            // type; quantize so f32 designs do not see f64 literals.
            NodeKind::Const(v) => Ok(self.design.ty(id).quantize(*v)),
            _ => Ok(self.vals[id.index()]),
        }
    }

    fn flat_index(&self, mem: NodeId, addr: &[NodeId]) -> Result<usize> {
        let dims: Vec<u64> = match self.design.kind(mem) {
            NodeKind::Bram(b) => b.dims.clone(),
            NodeKind::Reg(_) | NodeKind::PriorityQueue(_) => return Ok(0),
            _ => return Err(SimError::Malformed(format!("access to non-memory {mem}"))),
        };
        if addr.len() != dims.len() {
            return Err(SimError::Malformed(format!(
                "access to {mem}: address rank {} != memory rank {}",
                addr.len(),
                dims.len()
            )));
        }
        let mut idx: i64 = 0;
        for (d, &a) in addr.iter().enumerate() {
            let v = self.operand(a)? as i64;
            idx = idx * dims[d] as i64 + v;
        }
        let size: u64 = dims.iter().product();
        if idx < 0 || idx as u64 >= size {
            return Err(SimError::OutOfBounds {
                mem,
                index: idx,
                size,
            });
        }
        Ok(idx as usize)
    }

    /// Execute the implicit fold stage of an outer controller.
    fn run_fold(&mut self, f: &MemFold) -> Result<f64> {
        let src = self
            .onchip
            .get(&f.src)
            .ok_or(SimError::Unevaluated(f.src))?
            .clone();
        let ty = self.design.ty(f.accum);
        let banks = match self.design.kind(f.accum) {
            NodeKind::Bram(b) => b.banks.max(1),
            _ => 1,
        };
        let accum = self
            .onchip
            .get_mut(&f.accum)
            .ok_or(SimError::Unevaluated(f.accum))?;
        for (a, &s) in accum.iter_mut().zip(&src) {
            *a = ty.quantize(f.op.apply(*a, s));
        }
        let lat = prim_cost(f.op.prim(), ty).latency as f64;
        Ok(src.len() as f64 / f64::from(banks) + lat)
    }

    /// Execute a tile transfer: functional copy plus a DRAM reservation.
    fn run_tile(
        &mut self,
        t: &TileSpec,
        load: bool,
        start: f64,
        timed: bool,
        conc: f64,
    ) -> Result<f64> {
        let NodeKind::OffChip { dims } = self.design.kind(t.offchip).clone() else {
            return Err(SimError::Malformed("tile target is not off-chip".into()));
        };
        if t.tile.len() != dims.len() || t.offsets.len() != dims.len() {
            return Err(SimError::Malformed(format!(
                "tile transfer on {}: tile rank {} / offset rank {} != memory rank {}",
                t.offchip,
                t.tile.len(),
                t.offsets.len(),
                dims.len()
            )));
        }
        // Resolve offsets.
        let mut offsets = Vec::with_capacity(t.offsets.len());
        for &o in &t.offsets {
            offsets.push(self.operand(o)? as u64);
        }
        // Functional copy, iterating the tile's coordinate space.
        let tile_elems: u64 = t.tile.iter().product();
        let local_len = self
            .onchip
            .get(&t.local)
            .map(Vec::len)
            .ok_or(SimError::Unevaluated(t.local))?;
        for lin in 0..tile_elems {
            // Decode lin into tile coordinates (row-major).
            let mut rem = lin;
            let mut off_idx: u64 = 0;
            for (d, &extent) in t.tile.iter().enumerate().rev() {
                let c = rem % extent;
                rem /= extent;
                let global = offsets[d] + c;
                if global >= dims[d] {
                    return Err(SimError::OutOfBounds {
                        mem: t.offchip,
                        index: global as i64,
                        size: dims[d],
                    });
                }
                // Accumulate with the dimension's stride.
                let stride: u64 = dims[d + 1..].iter().product();
                off_idx += global * stride;
            }
            let li = (lin as usize) % local_len.max(1);
            if load {
                let v = self.offchip[&t.offchip][off_idx as usize];
                self.onchip.get_mut(&t.local).expect("checked")[li] = v;
            } else {
                let v = self.onchip[&t.local][li];
                self.offchip.get_mut(&t.offchip).expect("checked")[off_idx as usize] = v;
            }
        }
        // Timing: reserve the shared channel.
        if !timed {
            return Ok(0.0);
        }
        let elem_bytes = u64::from(self.design.ty(t.offchip).bits()).div_ceil(8);
        let inner = *t.tile.last().unwrap_or(&1);
        let full_row = dims.last().is_some_and(|&d| d == inner);
        let outer: u64 = t.tile[..t.tile.len().saturating_sub(1)].iter().product();
        let (commands, run_elems) = if full_row || t.tile.len() == 1 {
            (1, inner * outer.max(1))
        } else {
            (outer.max(1), inner)
        };
        // Decompose into fixed command latency (pipelined with other
        // traffic, does not occupy the channel) and data/issue time (which
        // queues on the shared channel and scales with the number of
        // replicated transfer units, `conc`).
        let dram = &self.platform.dram;
        let data = dram.burst_cycles(run_elems * elem_bytes) * commands as f64;
        let issue = (dram.command_issue_cycles * commands) as f64;
        let channel = data.max(issue) * conc.max(1.0);
        let queued = self.dram.request(start, channel);
        Ok(dram.command_latency_cycles as f64 + queued)
    }
}

#[inline]
pub(crate) fn apply_prim(op: PrimOp, a: f64, b: f64) -> f64 {
    match op {
        PrimOp::Add => a + b,
        PrimOp::Sub => a - b,
        PrimOp::Mul => a * b,
        PrimOp::Div => a / b,
        PrimOp::Rem => a % b,
        PrimOp::Lt => f64::from(a < b),
        PrimOp::Le => f64::from(a <= b),
        PrimOp::Gt => f64::from(a > b),
        PrimOp::Ge => f64::from(a >= b),
        PrimOp::Eq => f64::from(a == b),
        PrimOp::Ne => f64::from(a != b),
        PrimOp::And => f64::from(a != 0.0 && b != 0.0),
        PrimOp::Or => f64::from(a != 0.0 || b != 0.0),
        PrimOp::Not => f64::from(a == 0.0),
        PrimOp::Neg => -a,
        PrimOp::Abs => a.abs(),
        PrimOp::Sqrt => a.sqrt(),
        PrimOp::Exp => a.exp(),
        PrimOp::Ln => a.ln(),
        PrimOp::Min => a.min(b),
        PrimOp::Max => a.max(b),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dhdl_core::{by, DType, DesignBuilder, ReduceOp};

    fn platform() -> Platform {
        Platform::maia()
    }

    #[test]
    fn dot_product_is_functionally_correct() {
        let n = 256u64;
        let tile = 64u64;
        let mut b = DesignBuilder::new("dot");
        let x = b.off_chip("x", DType::F32, &[n]);
        let y = b.off_chip("y", DType::F32, &[n]);
        let out = b.off_chip("out", DType::F32, &[1]);
        b.sequential(|b| {
            let acc = b.reg("acc", DType::F32, 0.0);
            b.outer_fold(true, &[by(n, tile)], 1, acc, ReduceOp::Add, |b, iters| {
                let i = iters[0];
                let xt = b.bram("xT", DType::F32, &[tile]);
                let yt = b.bram("yT", DType::F32, &[tile]);
                let partial = b.reg("partial", DType::F32, 0.0);
                b.parallel(|b| {
                    b.tile_load(x, xt, &[i], &[tile], 1);
                    b.tile_load(y, yt, &[i], &[tile], 1);
                });
                b.pipe_reduce(&[by(tile, 1)], 2, partial, ReduceOp::Add, |b, it| {
                    let a = b.load(xt, &[it[0]]);
                    let c = b.load(yt, &[it[0]]);
                    b.mul(a, c)
                });
                partial
            });
            let ot = b.bram("outT", DType::F32, &[1]);
            b.pipe(&[by(1, 1)], 1, |b, it| {
                let a = b.load_reg(acc);
                b.store(ot, &[it[0]], a);
            });
            let z = b.index_const(0);
            b.tile_store(out, ot, &[z], &[1], 1);
        });
        let d = b.finish().unwrap();
        let xs: Vec<f64> = (0..n).map(|i| (i % 7) as f64 * 0.5).collect();
        let ys: Vec<f64> = (0..n).map(|i| (i % 5) as f64 - 2.0).collect();
        let expected: f64 = xs.iter().zip(&ys).map(|(a, b)| a * b).sum();
        let bindings = Bindings::new().bind("x", xs).bind("y", ys);
        let r = simulate(&d, &platform(), &bindings).unwrap();
        let got = r.output("out").unwrap()[0];
        assert!((got - expected).abs() < 1e-3, "{got} vs {expected}");
        assert!(r.cycles > 0.0);
        assert!(r.transfers >= 8); // 4 tiles * 2 loads (store may batch)
    }

    #[test]
    fn elementwise_map_roundtrip() {
        let n = 128u64;
        let mut b = DesignBuilder::new("sq");
        let x = b.off_chip("x", DType::F32, &[n]);
        let y = b.off_chip("y", DType::F32, &[n]);
        b.sequential(|b| {
            let xt = b.bram("xT", DType::F32, &[n]);
            let yt = b.bram("yT", DType::F32, &[n]);
            let z = b.index_const(0);
            b.tile_load(x, xt, &[z], &[n], 1);
            b.pipe(&[by(n, 1)], 1, |b, it| {
                let v = b.load(xt, &[it[0]]);
                let w = b.mul(v, v);
                b.store(yt, &[it[0]], w);
            });
            b.tile_store(y, yt, &[z], &[n], 1);
        });
        let d = b.finish().unwrap();
        let xs: Vec<f64> = (0..n).map(|i| i as f64 * 0.25).collect();
        let bindings = Bindings::new().bind("x", xs.clone());
        let r = simulate(&d, &platform(), &bindings).unwrap();
        let out = r.output("y").unwrap();
        for (i, (&o, &xi)) in out.iter().zip(&xs).enumerate() {
            let e = (xi * xi) as f32 as f64;
            assert!((o - e).abs() < 1e-9, "index {i}: {o} vs {e}");
        }
    }

    #[test]
    fn two_d_tile_load_addresses_correctly() {
        let (r, c) = (8u64, 16u64);
        let mut b = DesignBuilder::new("t2d");
        let x = b.off_chip("x", DType::F32, &[r, c]);
        let y = b.off_chip("y", DType::F32, &[r, c]);
        b.sequential(|b| {
            b.sequential_ctr(&[by(r, 4)], 1, |b, iters| {
                let i = iters[0];
                let t = b.bram("t", DType::F32, &[4, c]);
                let z = b.index_const(0);
                b.tile_load(x, t, &[i, z], &[4, c], 1);
                b.pipe(&[by(4, 1), by(c, 1)], 1, |b, it| {
                    let v = b.load(t, &[it[0], it[1]]);
                    let one = b.constant(1.0, DType::F32);
                    let w = b.add(v, one);
                    b.store(t, &[it[0], it[1]], w);
                });
                b.tile_store(y, t, &[i, z], &[4, c], 1);
            });
        });
        let d = b.finish().unwrap();
        let xs: Vec<f64> = (0..r * c).map(|i| i as f64).collect();
        let rr = simulate(&d, &platform(), &Bindings::new().bind("x", xs.clone())).unwrap();
        let out = rr.output("y").unwrap();
        for i in 0..(r * c) as usize {
            assert_eq!(out[i], xs[i] + 1.0, "index {i}");
        }
    }

    #[test]
    fn metapipe_is_faster_than_sequential_in_sim() {
        let build = |toggle: bool| {
            let n = 2048u64;
            let tile = 256u64;
            let mut b = DesignBuilder::new("mp");
            let x = b.off_chip("x", DType::F32, &[n]);
            let y = b.off_chip("y", DType::F32, &[n]);
            b.sequential(|b| {
                b.outer(toggle, &[by(n, tile)], 1, |b, iters| {
                    let i = iters[0];
                    let xt = b.bram("xT", DType::F32, &[tile]);
                    let yt = b.bram("yT", DType::F32, &[tile]);
                    b.tile_load(x, xt, &[i], &[tile], 1);
                    b.pipe(&[by(tile, 1)], 1, |b, it| {
                        let v = b.load(xt, &[it[0]]);
                        let w = b.sqrt(v);
                        b.store(yt, &[it[0]], w);
                    });
                    b.tile_store(y, yt, &[i], &[tile], 1);
                });
            });
            b.finish().unwrap()
        };
        let p = platform();
        let seq = simulate(&build(false), &p, &Bindings::new()).unwrap();
        let meta = simulate(&build(true), &p, &Bindings::new()).unwrap();
        assert!(
            meta.cycles < seq.cycles,
            "meta {} < seq {}",
            meta.cycles,
            seq.cycles
        );
    }

    #[test]
    fn fold_accumulates_elementwise() {
        let mut b = DesignBuilder::new("fold");
        let out = b.off_chip("out", DType::F32, &[4]);
        b.sequential(|b| {
            let acc = b.bram("acc", DType::F32, &[4]);
            b.outer_fold(true, &[by(8, 1)], 1, acc, ReduceOp::Add, |b, iters| {
                let i = iters[0];
                let t = b.bram("t", DType::F32, &[4]);
                b.pipe(&[by(4, 1)], 1, |b, it| {
                    let iv = b.prim(PrimOp::Add, &[i, it[0]]);
                    b.store(t, &[it[0]], iv);
                });
                t
            });
            let z = b.index_const(0);
            b.tile_store(out, acc, &[z], &[4], 1);
        });
        let d = b.finish().unwrap();
        let r = simulate(&d, &platform(), &Bindings::new()).unwrap();
        let out = r.output("out").unwrap();
        // acc[j] = sum_{i=0..8} (i + j) = 28 + 8j.
        for (j, &v) in out.iter().enumerate() {
            assert_eq!(v, 28.0 + 8.0 * j as f64, "j={j}");
        }
    }

    #[test]
    fn shape_mismatch_is_reported() {
        let mut b = DesignBuilder::new("bad");
        let x = b.off_chip("x", DType::F32, &[16]);
        b.sequential(|b| {
            let t = b.bram("t", DType::F32, &[16]);
            let z = b.index_const(0);
            b.tile_load(x, t, &[z], &[16], 1);
        });
        let d = b.finish().unwrap();
        let r = simulate(&d, &platform(), &Bindings::new().bind("x", vec![1.0; 3]));
        assert!(matches!(r, Err(SimError::ShapeMismatch { .. })));
    }

    #[test]
    fn runtime_out_of_bounds_is_reported() {
        // A data-dependent address beyond the memory bounds must surface
        // as SimError::OutOfBounds, not a panic.
        let mut b = DesignBuilder::new("oob");
        let x = b.off_chip("x", DType::F32, &[8]);
        b.sequential(|b| {
            let t = b.bram("t", DType::F32, &[8]);
            let z = b.index_const(0);
            b.tile_load(x, t, &[z], &[8], 1);
            b.pipe(&[by(8, 1)], 1, |b, it| {
                let v = b.load(t, &[it[0]]);
                // Address = value read from memory: 100.0 is out of range.
                let w = b.load(t, &[v]);
                b.store(t, &[it[0]], w);
            });
        });
        let d = b.finish().unwrap();
        let r = simulate(&d, &platform(), &Bindings::new().bind("x", vec![100.0; 8]));
        assert!(matches!(r, Err(SimError::OutOfBounds { .. })), "{r:?}");
    }

    #[test]
    fn priority_queue_pops_minimum() {
        let mut b = DesignBuilder::new("pq");
        let out = b.off_chip("out", DType::F32, &[4]);
        b.sequential(|b| {
            let q = b.priority_queue("q", DType::F32, 8);
            let ot = b.bram("ot", DType::F32, &[4]);
            b.pipe(&[by(4, 1)], 1, |b, it| {
                // Push 4-i: pushes 4,3,2,1.
                let four = b.constant(4.0, DType::F32);
                let v = b.sub(four, it[0]);
                b.store(q, &[], v);
            });
            b.pipe(&[by(4, 1)], 1, |b, it| {
                let v = b.load(q, &[]);
                b.store(ot, &[it[0]], v);
            });
            let z = b.index_const(0);
            b.tile_store(out, ot, &[z], &[4], 1);
        });
        let d = b.finish().unwrap();
        let r = simulate(&d, &platform(), &Bindings::new()).unwrap();
        assert_eq!(r.output("out").unwrap(), &[1.0, 2.0, 3.0, 4.0]);
    }
}
