//! Straight-line instruction tape and its executor.
//!
//! [`crate::compile`] lowers an elaborated design once into a flat
//! `Vec<Instr>` over arena slots (see [`crate::arena`]): loops become
//! `LoopStart`/`LoopEnd` pairs driven by a counter stack, iterator
//! binding becomes integer decode instructions, and every memory access
//! is a bounds-checked offset into the arena. Executing the tape touches
//! no `HashMap`s, walks no graph, clones no `NodeKind`s and allocates
//! nothing per cycle — the per-iteration cost is one `match` per
//! instruction over dense arrays.
//!
//! The executor is *bit-identical* to the interpreter by construction:
//! every instruction replicates the corresponding `eval_node` arm's f64
//! operation order and quantization points, and structural errors the
//! interpreter would raise mid-run are compiled to [`Instr::Abort`] at
//! the exact tape position where the interpreter would first discover
//! them.

use dhdl_core::{DType, NodeId, PrimOp, ReduceOp};

use crate::error::{Result, SimError};
use crate::interp::apply_prim;

/// A compiled tile-transfer descriptor (one per `TileLoad`/`TileStore`
/// site). Offsets are read from the arena at runtime; everything else is
/// static.
#[derive(Debug, Clone)]
pub(crate) struct TileDesc {
    /// Arena base of the off-chip array.
    pub offchip_base: usize,
    /// The off-chip node (for error payloads).
    pub offchip: NodeId,
    /// Off-chip array dimensions.
    pub dims: Vec<u64>,
    /// Suffix-product strides of `dims` (`strides[d] = Π dims[d+1..]`).
    pub strides: Vec<u64>,
    /// Arena base of the on-chip buffer.
    pub local_base: usize,
    /// On-chip buffer length in elements.
    pub local_len: usize,
    /// Tile extent per dimension.
    pub tile: Vec<u64>,
    /// Product of `tile` extents.
    pub tile_elems: u64,
    /// Arena slots holding the per-dimension offsets.
    pub offsets: Vec<usize>,
    /// `true` for a load (off-chip → on-chip), `false` for a store.
    pub load: bool,
}

/// One straight-line instruction over arena slots.
#[derive(Debug, Clone)]
pub(crate) enum Instr {
    /// `arena[dst] = ty.quantize(apply_prim(op, arena[a], arena[b]))`.
    Bin {
        /// Primitive operation.
        op: PrimOp,
        /// Left operand slot.
        a: usize,
        /// Right operand slot.
        b: usize,
        /// Destination slot.
        dst: usize,
        /// Result type.
        ty: DType,
    },
    /// Unary primitive: second operand fixed at `0.0`, as in the
    /// interpreter.
    Un {
        /// Primitive operation.
        op: PrimOp,
        /// Operand slot.
        a: usize,
        /// Destination slot.
        dst: usize,
        /// Result type.
        ty: DType,
    },
    /// 2:1 multiplexer.
    Mux {
        /// Select slot.
        sel: usize,
        /// Slot read when select is nonzero.
        t: usize,
        /// Slot read when select is zero.
        f: usize,
        /// Destination slot.
        dst: usize,
        /// Result type.
        ty: DType,
    },
    /// Re-quantize a slot in place (an `Iter` node appearing in a pipe
    /// body, which the interpreter passes back through `ty.quantize`).
    Requant {
        /// Slot to quantize.
        slot: usize,
        /// Type to quantize at.
        ty: DType,
    },
    /// Bounds-checked memory read.
    Load {
        /// Arena base of the memory.
        base: usize,
        /// `(start, len)` into the address-term pool.
        terms: (u32, u32),
        /// Flattened memory size (for the bounds check).
        size: u64,
        /// Memory node (for error payloads).
        mem: NodeId,
        /// Destination slot.
        dst: usize,
        /// Result type.
        ty: DType,
    },
    /// Bounds-checked memory write (also forwards the raw value to the
    /// store node's own slot at the node's type, like `eval_node`).
    Store {
        /// Arena base of the memory.
        base: usize,
        /// `(start, len)` into the address-term pool.
        terms: (u32, u32),
        /// Flattened memory size (for the bounds check).
        size: u64,
        /// Memory node (for error payloads).
        mem: NodeId,
        /// Slot holding the value to store.
        val: usize,
        /// The memory's element type.
        mem_ty: DType,
        /// The store node's own slot.
        dst: usize,
        /// The store node's type.
        dst_ty: DType,
    },
    /// Pop the minimum element of a priority queue (`0.0` when empty).
    QPop {
        /// Queue index.
        q: usize,
        /// Destination slot.
        dst: usize,
        /// Result type.
        ty: DType,
    },
    /// Push a value into a priority queue.
    QPush {
        /// Queue index.
        q: usize,
        /// Slot holding the value.
        val: usize,
        /// The queue's element type.
        mem_ty: DType,
        /// The store node's own slot.
        dst: usize,
        /// The store node's type.
        dst_ty: DType,
    },
    /// One step of a register reduction:
    /// `arena[acc] = ty.quantize(op.apply(arena[acc], arena[val]))`.
    ReduceStep {
        /// Accumulator slot (element 0 of the reduce register).
        acc: usize,
        /// Operand slot.
        val: usize,
        /// Combining operator.
        op: ReduceOp,
        /// Accumulator type.
        ty: DType,
    },
    /// Fill `len` slots from `base` with a raw value (fold/reduce
    /// identity resets — unquantized, as in the interpreter).
    Fill {
        /// First slot.
        base: usize,
        /// Slot count.
        len: usize,
        /// Raw fill value.
        val: f64,
    },
    /// Element-wise fold of one buffer into an accumulator buffer.
    Fold {
        /// Source buffer base.
        src: usize,
        /// Accumulator buffer base.
        acc: usize,
        /// Elements combined (`min` of the two lengths).
        len: usize,
        /// Combining operator.
        op: ReduceOp,
        /// Accumulator type.
        ty: DType,
    },
    /// Execute the tile transfer described by `tiles[idx]`.
    Tile(usize),
    /// Enter a counted loop (`trips >= 1`; zero-trip loops compile to
    /// `Abort`).
    LoopStart {
        /// Iteration count.
        trips: u64,
    },
    /// Close the innermost loop: jump back while iterations remain.
    LoopEnd,
    /// Bind an iterator slot from a loop counter:
    /// `arena[dst] = ((counter / div) % modu * step) as f64`.
    Iter {
        /// Destination slot.
        dst: usize,
        /// Loop-stack depth of the driving counter.
        depth: usize,
        /// Divisor (suffix trip product for linearized outer loops, 1
        /// for direct pipe loops).
        div: u64,
        /// Modulus (the dimension's trip count).
        modu: u64,
        /// Counter step.
        step: u64,
    },
    /// `Iter` specialized for `div == 1 && modu == trips` of the driving
    /// loop (every direct pipe dimension): the divide and modulo are
    /// identities, so `arena[dst] = (counter * step) as f64` — identical
    /// arithmetic without the per-iteration integer division.
    IterLin {
        /// Destination slot.
        dst: usize,
        /// Loop-stack depth of the driving counter.
        depth: usize,
        /// Counter step.
        step: u64,
    },
    /// Execute the fused innermost loop `kernels[idx]` (replaces a
    /// `LoopStart`/body/`LoopEnd` region whose body passed the fusion
    /// safety checks).
    Kernel(usize),
    /// Raise `errors[idx]` — a structural error the interpreter would
    /// discover at this execution position.
    Abort(usize),
}

/// Iterations processed per fused-kernel block: each micro-op is
/// dispatched once per block instead of once per iteration, amortizing
/// interpreter dispatch ~32x on hot inner loops.
const LANES: usize = 32;

/// Operand source of a fused micro-op: either another micro-op's lane
/// vector (a value produced earlier in the same iteration) or an arena
/// slot that no micro-op writes (invariant across the fused loop).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum KSrc {
    /// Lane vector of the micro-op at this index.
    Lane(usize),
    /// Loop-invariant arena slot.
    Slot(usize),
}

/// One micro-op of a fused innermost loop. Each evaluates a full block
/// of iterations ("lanes") at a time; the f64 operation and quantization
/// order *per lane* is identical to the unfused instruction sequence,
/// and the safety conditions checked at fusion time (see
/// `compile::Emitter::try_build_kernel`) guarantee the lane-major
/// evaluation order is unobservable.
#[derive(Debug, Clone)]
pub(crate) enum KOp {
    /// Innermost-loop iterator: lane `l` holds `((c0 + l) * step) as f64`.
    Lin {
        /// Iterator arena slot (for final write-back).
        dst: usize,
        /// Counter step.
        step: u64,
    },
    /// Iterator of an enclosing loop — constant across the fused loop.
    Outer {
        /// Iterator arena slot (for final write-back).
        dst: usize,
        /// Loop-stack depth of the driving counter.
        depth: usize,
        /// Counter step.
        step: u64,
    },
    /// Lane-wise binary primitive.
    Bin {
        /// Primitive operation.
        op: PrimOp,
        /// Left operand.
        a: KSrc,
        /// Right operand.
        b: KSrc,
        /// Result arena slot (for final write-back).
        dst: usize,
        /// Result type.
        ty: DType,
    },
    /// Lane-wise unary primitive.
    Un {
        /// Primitive operation.
        op: PrimOp,
        /// Operand.
        a: KSrc,
        /// Result arena slot (for final write-back).
        dst: usize,
        /// Result type.
        ty: DType,
    },
    /// Lane-wise 2:1 multiplexer.
    Mux {
        /// Select operand.
        sel: KSrc,
        /// Operand when select is nonzero.
        t: KSrc,
        /// Operand when select is zero.
        f: KSrc,
        /// Result arena slot (for final write-back).
        dst: usize,
        /// Result type.
        ty: DType,
    },
    /// Lane-wise re-quantization of an earlier micro-op's value.
    Requant {
        /// Operand.
        a: KSrc,
        /// Target arena slot (for final write-back).
        dst: usize,
        /// Type to quantize at.
        ty: DType,
    },
    /// Lane-wise bounds-checked memory read.
    Load {
        /// Arena base of the memory.
        base: usize,
        /// Address terms `(source, dim)`.
        terms: Vec<(KSrc, u64)>,
        /// Flattened memory size.
        size: u64,
        /// Memory node (for error payloads).
        mem: NodeId,
        /// Result arena slot (for final write-back).
        dst: usize,
        /// Result type.
        ty: DType,
    },
    /// Lane-wise bounds-checked memory write.
    Store {
        /// Arena base of the memory.
        base: usize,
        /// Address terms `(source, dim)`.
        terms: Vec<(KSrc, u64)>,
        /// Flattened memory size.
        size: u64,
        /// Memory node (for error payloads).
        mem: NodeId,
        /// Value operand.
        val: KSrc,
        /// The memory's element type.
        mem_ty: DType,
        /// The store node's arena slot (for final write-back).
        dst: usize,
        /// The store node's type.
        dst_ty: DType,
    },
    /// Sequential (loop-carried) reduction over the lanes of a block —
    /// evaluated in lane order, preserving the interpreter's exact
    /// accumulation chain.
    Reduce {
        /// Accumulator arena slot (element 0 of the reduce register).
        acc: usize,
        /// Operand.
        val: KSrc,
        /// Combining operator.
        op: ReduceOp,
        /// Accumulator type.
        ty: DType,
    },
}

impl KOp {
    /// The arena slot this micro-op's final-iteration value is written
    /// back to (`None` for `Reduce`, which updates the arena in place).
    fn dst(&self) -> Option<usize> {
        match self {
            KOp::Lin { dst, .. }
            | KOp::Outer { dst, .. }
            | KOp::Bin { dst, .. }
            | KOp::Un { dst, .. }
            | KOp::Mux { dst, .. }
            | KOp::Requant { dst, .. }
            | KOp::Load { dst, .. }
            | KOp::Store { dst, .. } => Some(*dst),
            KOp::Reduce { .. } => None,
        }
    }
}

/// A fused innermost loop: micro-ops dispatched once per block of
/// [`LANES`] iterations.
#[derive(Debug, Clone)]
pub(crate) struct Kernel {
    /// Iteration count of the fused loop.
    pub trips: u64,
    /// The loop body as micro-ops in original instruction order.
    pub ops: Vec<KOp>,
}

/// One live loop on the executor's counter stack.
struct Frame {
    body: usize,
    counter: u64,
    trips: u64,
}

/// The flat program: instruction tape plus its constant pools.
#[derive(Debug, Clone, Default)]
pub(crate) struct Tape {
    /// The instructions.
    pub instrs: Vec<Instr>,
    /// Address-term pool: `(slot, dim)` pairs referenced by
    /// `Load`/`Store` (`idx = idx * dim + arena[slot]` per term).
    pub addr_pool: Vec<(usize, u64)>,
    /// Tile descriptors referenced by `Tile`.
    pub tiles: Vec<TileDesc>,
    /// Fused-loop kernels referenced by `Kernel`.
    pub kernels: Vec<Kernel>,
    /// Error pool referenced by `Abort`.
    pub errors: Vec<SimError>,
}

impl Tape {
    /// Run the tape to completion over `arena` and `queues`.
    pub fn execute(&self, arena: &mut [f64], queues: &mut [Vec<f64>]) -> Result<()> {
        let mut ip = 0usize;
        let mut frames: Vec<Frame> = Vec::with_capacity(16);
        while ip < self.instrs.len() {
            match &self.instrs[ip] {
                Instr::Bin { op, a, b, dst, ty } => {
                    arena[*dst] = ty.quantize(apply_prim(*op, arena[*a], arena[*b]));
                }
                Instr::Un { op, a, dst, ty } => {
                    arena[*dst] = ty.quantize(apply_prim(*op, arena[*a], 0.0));
                }
                Instr::Mux { sel, t, f, dst, ty } => {
                    let v = if arena[*sel] != 0.0 {
                        arena[*t]
                    } else {
                        arena[*f]
                    };
                    arena[*dst] = ty.quantize(v);
                }
                Instr::Requant { slot, ty } => {
                    arena[*slot] = ty.quantize(arena[*slot]);
                }
                Instr::Load {
                    base,
                    terms,
                    size,
                    mem,
                    dst,
                    ty,
                } => {
                    let idx = self.flat_index(arena, *terms, *size, *mem)?;
                    arena[*dst] = ty.quantize(arena[base + idx]);
                }
                Instr::Store {
                    base,
                    terms,
                    size,
                    mem,
                    val,
                    mem_ty,
                    dst,
                    dst_ty,
                } => {
                    let v = arena[*val];
                    let idx = self.flat_index(arena, *terms, *size, *mem)?;
                    arena[base + idx] = mem_ty.quantize(v);
                    arena[*dst] = dst_ty.quantize(v);
                }
                Instr::QPop { q, dst, ty } => {
                    let queue = &mut queues[*q];
                    let v = if queue.is_empty() {
                        0.0
                    } else {
                        // total_cmp, as in the interpreter: NaN sorts
                        // last instead of panicking the comparator.
                        let (mi, _) = queue
                            .iter()
                            .enumerate()
                            .min_by(|a, b| a.1.total_cmp(b.1))
                            .expect("nonempty");
                        queue.remove(mi)
                    };
                    arena[*dst] = ty.quantize(v);
                }
                Instr::QPush {
                    q,
                    val,
                    mem_ty,
                    dst,
                    dst_ty,
                } => {
                    let v = arena[*val];
                    queues[*q].push(mem_ty.quantize(v));
                    arena[*dst] = dst_ty.quantize(v);
                }
                Instr::ReduceStep { acc, val, op, ty } => {
                    arena[*acc] = ty.quantize(op.apply(arena[*acc], arena[*val]));
                }
                Instr::Fill { base, len, val } => {
                    for slot in &mut arena[*base..base + len] {
                        *slot = *val;
                    }
                }
                Instr::Fold {
                    src,
                    acc,
                    len,
                    op,
                    ty,
                } => {
                    // Forward in place: slot `i` is read before any slot
                    // `>= i` is written, so this matches the
                    // interpreter's clone-then-zip even when `src ==
                    // acc`.
                    for i in 0..*len {
                        arena[acc + i] = ty.quantize(op.apply(arena[acc + i], arena[src + i]));
                    }
                }
                Instr::Tile(t) => self.run_tile(&self.tiles[*t], arena)?,
                Instr::LoopStart { trips } => {
                    debug_assert!(*trips >= 1, "zero-trip loops compile to Abort");
                    frames.push(Frame {
                        body: ip + 1,
                        counter: 0,
                        trips: *trips,
                    });
                }
                Instr::LoopEnd => {
                    let f = frames.last_mut().expect("balanced loops");
                    f.counter += 1;
                    if f.counter < f.trips {
                        ip = f.body;
                        continue;
                    }
                    frames.pop();
                }
                Instr::Iter {
                    dst,
                    depth,
                    div,
                    modu,
                    step,
                } => {
                    let counter = frames[*depth].counter;
                    arena[*dst] = (counter / div % modu * step) as f64;
                }
                Instr::IterLin { dst, depth, step } => {
                    arena[*dst] = (frames[*depth].counter * step) as f64;
                }
                Instr::Kernel(k) => self.run_kernel(&self.kernels[*k], &frames, arena)?,
                Instr::Abort(e) => return Err(self.errors[*e].clone()),
            }
            ip += 1;
        }
        Ok(())
    }

    /// Execute a fused innermost loop in blocks of [`LANES`] iterations.
    ///
    /// Per lane, every micro-op performs exactly the f64 operations of
    /// its source instruction; the fusion safety checks guarantee the
    /// reordering across lanes is unobservable. Out-of-bounds accesses
    /// are collected per block and the lexicographically-first one (by
    /// iteration, then instruction position) is raised — the exact error
    /// the unfused loop would hit first. The arena slots of all body
    /// nodes are written back with their final-iteration values, so any
    /// instruction after the loop observes the interpreter's state.
    fn run_kernel(&self, k: &Kernel, frames: &[Frame], arena: &mut [f64]) -> Result<()> {
        #[inline]
        fn get(lanes: &[[f64; LANES]], arena: &[f64], src: KSrc, l: usize) -> f64 {
            match src {
                KSrc::Lane(i) => lanes[i][l],
                KSrc::Slot(s) => arena[s],
            }
        }
        /// Materialize an operand's block: copy the producing op's lane
        /// vector, or splat a loop-invariant arena slot (invariant
        /// because no micro-op writes it and memory regions are disjoint
        /// from node slots). Keeps the per-lane loops below free of
        /// source dispatch so they vectorize.
        #[inline]
        fn mat(lanes: &[[f64; LANES]], arena: &[f64], src: KSrc) -> [f64; LANES] {
            match src {
                KSrc::Lane(i) => lanes[i],
                KSrc::Slot(s) => [arena[s]; LANES],
            }
        }
        /// Flattened address of lane `l`, with the interpreter's exact
        /// term arithmetic.
        #[inline]
        fn addr_at(lanes: &[[f64; LANES]], arena: &[f64], terms: &[(KSrc, u64)], l: usize) -> i64 {
            let mut idx = 0i64;
            for &(src, dim) in terms {
                idx = idx * dim as i64 + get(lanes, arena, src, l) as i64;
            }
            idx
        }
        /// Lane-wise primitive evaluation: one operation dispatch per
        /// block, with the hot arithmetic ops written out so LLVM can
        /// vectorize them.
        fn bin_block(op: PrimOp, a: &[f64; LANES], bb: &[f64; LANES], out: &mut [f64]) {
            macro_rules! lanewise {
                ($f:expr) => {
                    for (l, o) in out.iter_mut().enumerate() {
                        *o = $f(a[l], bb[l]);
                    }
                };
            }
            match op {
                PrimOp::Add => lanewise!(|x: f64, y: f64| x + y),
                PrimOp::Sub => lanewise!(|x: f64, y: f64| x - y),
                PrimOp::Mul => lanewise!(|x: f64, y: f64| x * y),
                PrimOp::Div => lanewise!(|x: f64, y: f64| x / y),
                PrimOp::Lt => lanewise!(|x: f64, y: f64| f64::from(x < y)),
                PrimOp::Le => lanewise!(|x: f64, y: f64| f64::from(x <= y)),
                PrimOp::Gt => lanewise!(|x: f64, y: f64| f64::from(x > y)),
                PrimOp::Ge => lanewise!(|x: f64, y: f64| f64::from(x >= y)),
                PrimOp::Min => lanewise!(|x: f64, y: f64| x.min(y)),
                PrimOp::Max => lanewise!(|x: f64, y: f64| x.max(y)),
                PrimOp::Neg => lanewise!(|x: f64, _: f64| -x),
                PrimOp::Abs => lanewise!(|x: f64, _: f64| x.abs()),
                PrimOp::Sqrt => lanewise!(|x: f64, _: f64| x.sqrt()),
                // exp/ln dominate softmax and blackscholes inner loops:
                // batching them here hoists the op dispatch out of the
                // lane loop while making the exact libm calls apply_prim
                // makes, so results stay bit-identical per lane.
                PrimOp::Exp => lanewise!(|x: f64, _: f64| x.exp()),
                PrimOp::Ln => lanewise!(|x: f64, _: f64| x.ln()),
                _ => lanewise!(|x, y| apply_prim(op, x, y)),
            }
        }
        /// Lane-wise quantization: one type dispatch per block.
        fn quantize_block(ty: DType, out: &mut [f64]) {
            match ty {
                DType::F64 => {}
                DType::F32 => {
                    for o in out.iter_mut() {
                        *o = *o as f32 as f64;
                    }
                }
                DType::Bool => {
                    for o in out.iter_mut() {
                        *o = f64::from(*o != 0.0);
                    }
                }
                fix => {
                    for o in out.iter_mut() {
                        *o = fix.quantize(*o);
                    }
                }
            }
        }
        // Per-block linear coefficient of a load/store address in the
        // lane index. `Some` only when the address is provably affine
        // (every term loop-invariant or innermost-linear) and every
        // intermediate value round-trips exactly through the per-lane
        // path's f64 representation; `None` falls back to the exact
        // per-lane walk.
        let stride_of = |terms: &[(KSrc, u64)]| -> Option<i64> {
            let mut stride = 0i64;
            let mut suffix = 1i64;
            for &(src, dim) in terms.iter().rev() {
                match src {
                    KSrc::Slot(_) => {}
                    KSrc::Lane(i) => match k.ops[i] {
                        KOp::Outer { .. } => {}
                        KOp::Lin { step, .. } => {
                            let max = (k.trips - 1).checked_mul(step)?;
                            if max >= (1u64 << 53) {
                                return None;
                            }
                            stride = stride
                                .checked_add(i64::try_from(step).ok()?.checked_mul(suffix)?)?;
                        }
                        _ => return None,
                    },
                }
                suffix = suffix.checked_mul(i64::try_from(dim).ok()?)?;
            }
            Some(stride)
        };
        let mut lanes = vec![[0.0f64; LANES]; k.ops.len()];
        let mut c0 = 0u64;
        while c0 < k.trips {
            let b = ((k.trips - c0) as usize).min(LANES);
            // Earliest error this block, ordered by (lane, op position) —
            // the interpreter's discovery order.
            let mut err: Option<(usize, usize, SimError)> = None;
            for (j, op) in k.ops.iter().enumerate() {
                // Operands only ever reference earlier micro-ops (forward
                // dataflow, checked at fusion time), so `prev` holds every
                // readable lane vector and `out` is this op's own.
                let (prev, rest) = lanes.split_at_mut(j);
                let out: &mut [f64; LANES] = &mut rest[0];
                match op {
                    KOp::Lin { step, .. } => {
                        for (l, o) in out[..b].iter_mut().enumerate() {
                            *o = ((c0 + l as u64) * step) as f64;
                        }
                    }
                    KOp::Outer { depth, step, .. } => {
                        out[..b].fill((frames[*depth].counter * step) as f64);
                    }
                    KOp::Bin {
                        op, a, b: bb, ty, ..
                    } => {
                        let va = mat(prev, arena, *a);
                        let vb = mat(prev, arena, *bb);
                        bin_block(*op, &va, &vb, &mut out[..b]);
                        quantize_block(*ty, &mut out[..b]);
                    }
                    KOp::Un { op, a, ty, .. } => {
                        let va = mat(prev, arena, *a);
                        bin_block(*op, &va, &[0.0; LANES], &mut out[..b]);
                        quantize_block(*ty, &mut out[..b]);
                    }
                    KOp::Mux { sel, t, f, ty, .. } => {
                        let vs = mat(prev, arena, *sel);
                        let vt = mat(prev, arena, *t);
                        let vf = mat(prev, arena, *f);
                        for (l, o) in out[..b].iter_mut().enumerate() {
                            *o = if vs[l] != 0.0 { vt[l] } else { vf[l] };
                        }
                        quantize_block(*ty, &mut out[..b]);
                    }
                    KOp::Requant { a, ty, .. } => {
                        let va = mat(prev, arena, *a);
                        out[..b].copy_from_slice(&va[..b]);
                        quantize_block(*ty, &mut out[..b]);
                    }
                    KOp::Load {
                        base,
                        terms,
                        size,
                        mem,
                        ty,
                        ..
                    } => {
                        let fast = stride_of(terms).and_then(|s| {
                            let idx0 = addr_at(prev, arena, terms, 0);
                            let last = idx0.checked_add(s.checked_mul(b as i64 - 1)?)?;
                            (idx0 >= 0
                                && last >= 0
                                && (idx0 as u64) < *size
                                && (last as u64) < *size)
                                .then_some((idx0, s))
                        });
                        if let Some((idx0, s)) = fast {
                            // The address is affine in the lane index and
                            // both endpoints are in bounds, so every lane
                            // is: read without per-lane checks.
                            for (l, o) in out[..b].iter_mut().enumerate() {
                                *o = arena[(*base as i64 + idx0 + l as i64 * s) as usize];
                            }
                            quantize_block(*ty, &mut out[..b]);
                        } else {
                            for (l, o) in out[..b].iter_mut().enumerate() {
                                let idx = addr_at(prev, arena, terms, l);
                                if idx < 0 || idx as u64 >= *size {
                                    if err.as_ref().map_or(true, |(el, ej, _)| (l, j) < (*el, *ej))
                                    {
                                        err = Some((
                                            l,
                                            j,
                                            SimError::OutOfBounds {
                                                mem: *mem,
                                                index: idx,
                                                size: *size,
                                            },
                                        ));
                                    }
                                } else {
                                    *o = ty.quantize(arena[base + idx as usize]);
                                }
                            }
                        }
                    }
                    KOp::Store {
                        base,
                        terms,
                        size,
                        mem,
                        val,
                        mem_ty,
                        dst_ty,
                        ..
                    } => {
                        let v = mat(prev, arena, *val);
                        let fast = stride_of(terms).and_then(|s| {
                            let idx0 = addr_at(prev, arena, terms, 0);
                            let last = idx0.checked_add(s.checked_mul(b as i64 - 1)?)?;
                            (idx0 >= 0
                                && last >= 0
                                && (idx0 as u64) < *size
                                && (last as u64) < *size)
                                .then_some((idx0, s))
                        });
                        if let Some((idx0, s)) = fast {
                            let mut q = v;
                            quantize_block(*mem_ty, &mut q[..b]);
                            for (l, &qv) in q[..b].iter().enumerate() {
                                arena[(*base as i64 + idx0 + l as i64 * s) as usize] = qv;
                            }
                            out[..b].copy_from_slice(&v[..b]);
                            quantize_block(*dst_ty, &mut out[..b]);
                        } else {
                            for (l, o) in out[..b].iter_mut().enumerate() {
                                let idx = addr_at(prev, arena, terms, l);
                                if idx < 0 || idx as u64 >= *size {
                                    if err.as_ref().map_or(true, |(el, ej, _)| (l, j) < (*el, *ej))
                                    {
                                        err = Some((
                                            l,
                                            j,
                                            SimError::OutOfBounds {
                                                mem: *mem,
                                                index: idx,
                                                size: *size,
                                            },
                                        ));
                                    }
                                } else {
                                    arena[base + idx as usize] = mem_ty.quantize(v[l]);
                                }
                                *o = dst_ty.quantize(v[l]);
                            }
                        }
                    }
                    KOp::Reduce { acc, val, op, ty } => {
                        // Loop-carried: evaluated sequentially in lane
                        // order, preserving the exact accumulation chain.
                        let v = mat(prev, arena, *val);
                        let mut a = arena[*acc];
                        match (op, ty) {
                            (ReduceOp::Add, DType::F32) => {
                                for &x in &v[..b] {
                                    a = (a + x) as f32 as f64;
                                }
                            }
                            (ReduceOp::Add, DType::F64) => {
                                for &x in &v[..b] {
                                    a += x;
                                }
                            }
                            _ => {
                                for &x in &v[..b] {
                                    a = ty.quantize(op.apply(a, x));
                                }
                            }
                        }
                        arena[*acc] = a;
                    }
                }
            }
            if let Some((_, _, e)) = err {
                return Err(e);
            }
            c0 += b as u64;
            if c0 == k.trips {
                // Final block: leave every body node's slot holding its
                // last-iteration value, as the unfused loop would.
                for (j, op) in k.ops.iter().enumerate() {
                    if let Some(dst) = op.dst() {
                        arena[dst] = lanes[j][b - 1];
                    }
                }
            }
        }
        Ok(())
    }

    /// Compute a flattened memory index with the interpreter's exact
    /// arithmetic and bounds check.
    #[inline]
    fn flat_index(
        &self,
        arena: &[f64],
        (start, len): (u32, u32),
        size: u64,
        mem: NodeId,
    ) -> Result<usize> {
        let mut idx: i64 = 0;
        for &(slot, dim) in &self.addr_pool[start as usize..(start + len) as usize] {
            idx = idx * dim as i64 + arena[slot] as i64;
        }
        if idx < 0 || idx as u64 >= size {
            return Err(SimError::OutOfBounds {
                mem,
                index: idx,
                size,
            });
        }
        Ok(idx as usize)
    }

    /// Execute one tile transfer: a row-wise `copy_within` fast path when
    /// the whole tile is statically in bounds, otherwise an element-wise
    /// replica of the interpreter's loop (identical out-of-bounds error
    /// payloads and wrap-around addressing).
    fn run_tile(&self, d: &TileDesc, arena: &mut [f64]) -> Result<()> {
        if d.tile_elems == 0 {
            return Ok(());
        }
        let rank = d.tile.len();
        let mut offs = [0u64; 8];
        let offs = if rank <= 8 {
            for (o, &slot) in offs.iter_mut().zip(&d.offsets) {
                *o = arena[slot] as u64;
            }
            &offs[..rank]
        } else {
            // Arbitrary-rank fallback (never hit by builder designs).
            return self.run_tile_slow(d, arena, None);
        };
        let fits = d.local_len as u64 >= d.tile_elems
            && rank >= 1
            && offs
                .iter()
                .zip(&d.tile)
                .zip(&d.dims)
                .all(|((&o, &t), &m)| t <= m && o <= m - t);
        if !fits {
            return self.run_tile_slow(d, arena, Some(offs));
        }
        let inner = d.tile[rank - 1] as usize;
        let rows = (d.tile_elems as usize) / inner;
        for row in 0..rows {
            let mut rem = row as u64;
            let mut off = offs[rank - 1] * d.strides[rank - 1];
            for dd in (0..rank - 1).rev() {
                let c = rem % d.tile[dd];
                rem /= d.tile[dd];
                off += (offs[dd] + c) * d.strides[dd];
            }
            let global = d.offchip_base + off as usize;
            let local = d.local_base + row * inner;
            if d.load {
                arena.copy_within(global..global + inner, local);
            } else {
                arena.copy_within(local..local + inner, global);
            }
        }
        Ok(())
    }

    /// Element-wise tile transfer: a faithful replica of the
    /// interpreter's copy loop, including its out-of-bounds check per
    /// dimension (innermost first) and local-index wrap-around.
    fn run_tile_slow(&self, d: &TileDesc, arena: &mut [f64], offs: Option<&[u64]>) -> Result<()> {
        let mut buf;
        let offs = match offs {
            Some(o) => o,
            None => {
                buf = vec![0u64; d.offsets.len()];
                for (o, &slot) in buf.iter_mut().zip(&d.offsets) {
                    *o = arena[slot] as u64;
                }
                &buf
            }
        };
        for lin in 0..d.tile_elems {
            let mut rem = lin;
            let mut off_idx: u64 = 0;
            for (dd, &extent) in d.tile.iter().enumerate().rev() {
                let c = rem % extent;
                rem /= extent;
                let global = offs[dd] + c;
                if global >= d.dims[dd] {
                    return Err(SimError::OutOfBounds {
                        mem: d.offchip,
                        index: global as i64,
                        size: d.dims[dd],
                    });
                }
                off_idx += global * d.strides[dd];
            }
            let li = (lin as usize) % d.local_len.max(1);
            if d.load {
                arena[d.local_base + li] = arena[d.offchip_base + off_idx as usize];
            } else {
                arena[d.offchip_base + off_idx as usize] = arena[d.local_base + li];
            }
        }
        Ok(())
    }
}
