//! # dhdl-sim — functional and timing simulation of DHDL designs
//!
//! The execution substrate replacing the FPGA board of the paper's
//! evaluation (§V-A: designs were "synthesized and run on an Altera 28nm
//! Stratix V FPGA on a Max4 MAIA board"). [`simulate`] interprets a design
//! instance functionally — producing the benchmark's actual numerical
//! outputs — while computing a cycle-level timing ground truth: measured
//! per-wave MetaPipe pipeline schedules, dynamic DRAM bandwidth sharing
//! ([`DramTimeline`]), and counter/control artifacts the analytical
//! estimator does not model. The gap between simulated and estimated
//! cycles reproduces the runtime-estimation error of Table III.
//!
//! Two execution backends share those semantics: [`simulate`] is the
//! per-cycle reference interpreter, and [`compile`]/[`Compiled::run`]
//! lower a design once into a flat-arena instruction tape with
//! precomputed timing and fused inner-loop kernels — bit-identical
//! results (outputs, cycles, profile, trace, errors) at roughly an
//! order of magnitude higher throughput. [`simulate_compiled`] prefers
//! the tape and falls back to the interpreter for designs the compiler
//! rejects ([`CompileError::Unsupported`]); [`simulate_with`] selects a
//! [`Backend`] explicitly, e.g. from the `DHDL_SIM_BACKEND` environment
//! knob via [`backend_from_env`].
//!
//! ```
//! use dhdl_core::{by, DType, DesignBuilder};
//! use dhdl_sim::{simulate, Bindings};
//! use dhdl_target::Platform;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut b = DesignBuilder::new("scale");
//! let x = b.off_chip("x", DType::F32, &[64]);
//! let y = b.off_chip("y", DType::F32, &[64]);
//! b.sequential(|b| {
//!     let t = b.bram("t", DType::F32, &[64]);
//!     let z = b.index_const(0);
//!     b.tile_load(x, t, &[z], &[64], 1);
//!     b.pipe(&[by(64, 1)], 1, |b, it| {
//!         let v = b.load(t, &[it[0]]);
//!         let two = b.constant(2.0, DType::F32);
//!         let w = b.mul(v, two);
//!         b.store(t, &[it[0]], w);
//!     });
//!     b.tile_store(y, t, &[z], &[64], 1);
//! });
//! let design = b.finish()?;
//! let inputs = Bindings::new().bind("x", (0..64).map(f64::from).collect());
//! let result = simulate(&design, &Platform::maia(), &inputs)?;
//! assert_eq!(result.output("y")?[3], 6.0);
//! assert!(result.cycles > 0.0);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]

mod arena;
mod compile;
mod error;
mod interp;
mod memory;
mod multi;
mod tape;
mod trace;

pub use compile::{
    backend_from_env, compile, simulate_compiled, simulate_with, Backend, CompileError, Compiled,
};
pub use error::{Result, SimError};
pub use interp::{simulate, Bindings, ProfileEntry, SimResult};
pub use memory::DramTimeline;
pub use multi::{simulate_multi, simulate_partitioned, MultiSimResult};
pub use trace::{Trace, TraceEvent};
