//! Two-region value arena for the compiled simulation backend.
//!
//! The interpreter keeps simulation state in per-node `BTreeMap`s (one
//! lookup per memory access) plus a `vals` vector. The compiled backend
//! lays *everything* out as offsets into one flat `Vec<f64>`:
//!
//! - **Stable region** (front): every off-chip array (in
//!   [`Design::offchips`] order) followed by every on-chip `Bram`
//!   (`elements()` slots) and `Reg` (one slot), in node-id order. These
//!   slots persist across loop iterations.
//! - **Scratch region** (back): one slot per design node, addressed as
//!   `scratch_base + id.index()` — the compiled analogue of the
//!   interpreter's `vals` vector. `Const` slots are pre-quantized at
//!   layout time so constant operands never need an instruction.
//!
//! Priority queues are the one dynamically-sized structure and live in a
//! small side table of `Vec<f64>`s, indexed densely.
//!
//! [`Layout::template`] is the arena's initial image; each
//! [`crate::Compiled::run`] clones it and overlays the input bindings, so
//! a run never mutates shared state.

use std::collections::BTreeMap;

use dhdl_core::{Design, NodeId, NodeKind};

/// One off-chip memory's slice of the stable region, plus the naming
/// metadata both backends use for binding validation and output
/// extraction.
#[derive(Debug, Clone)]
pub(crate) struct OffchipRegion {
    /// The off-chip node.
    pub node: NodeId,
    /// First arena slot of the array.
    pub base: usize,
    /// Element count (zero for a non-`OffChip` entry in the off-chip
    /// list, which the interpreter skips but still reports as an empty
    /// output).
    pub len: usize,
    /// Whether the node really is an `OffChip` array (bindable).
    pub real: bool,
    /// Whether the node carries a debug name (only named memories can
    /// match a binding).
    pub named: bool,
    /// Key used when looking up a binding: the node's name, or `""` for
    /// unnamed memories — mirroring the interpreter exactly.
    pub lookup_name: String,
    /// Name under which the array appears in `SimResult` outputs (the
    /// node's name, falling back to its id rendering).
    pub output_name: String,
}

/// The complete arena layout for one design.
#[derive(Debug, Clone)]
pub(crate) struct Layout {
    /// Off-chip regions in [`Design::offchips`] order.
    pub offchips: Vec<OffchipRegion>,
    /// Base slot of each on-chip `Bram`/`Reg`.
    mem_base: BTreeMap<NodeId, usize>,
    /// Dense queue index of each `PriorityQueue`.
    queues: BTreeMap<NodeId, usize>,
    /// Number of priority queues.
    pub n_queues: usize,
    /// First slot of the scratch region.
    scratch_base: usize,
    /// Initial arena image: zeros, register inits (raw, unquantized —
    /// matching the interpreter) and pre-quantized constants.
    pub template: Vec<f64>,
}

impl Layout {
    /// Lay out `design` into arena offsets and build the init template.
    pub fn new(design: &Design) -> Self {
        let mut template = Vec::new();
        let mut offchips = Vec::new();
        for &off in design.offchips() {
            let node = design.node(off);
            let (real, len) = match &node.kind {
                NodeKind::OffChip { dims } => (true, dims.iter().product::<u64>() as usize),
                _ => (false, 0),
            };
            let base = template.len();
            template.extend(std::iter::repeat(0.0).take(len));
            offchips.push(OffchipRegion {
                node: off,
                base,
                len,
                real,
                named: node.name.is_some(),
                lookup_name: node.name.clone().unwrap_or_default(),
                output_name: node.name.clone().unwrap_or_else(|| format!("{off}")),
            });
        }
        let mut mem_base = BTreeMap::new();
        let mut queues = BTreeMap::new();
        for (id, node) in design.iter() {
            match &node.kind {
                NodeKind::Bram(b) => {
                    mem_base.insert(id, template.len());
                    template.extend(std::iter::repeat(0.0).take(b.elements() as usize));
                }
                NodeKind::Reg(r) => {
                    mem_base.insert(id, template.len());
                    template.push(r.init);
                }
                NodeKind::PriorityQueue(_) => {
                    let n = queues.len();
                    queues.insert(id, n);
                }
                _ => {}
            }
        }
        let scratch_base = template.len();
        for (_, node) in design.iter() {
            template.push(match &node.kind {
                NodeKind::Const(v) => node.ty.quantize(*v),
                _ => 0.0,
            });
        }
        let n_queues = queues.len();
        Layout {
            offchips,
            mem_base,
            queues,
            n_queues,
            scratch_base,
            template,
        }
    }

    /// Scratch slot of node `id` (the compiled `vals[id]`).
    pub fn slot(&self, id: NodeId) -> usize {
        self.scratch_base + id.index()
    }

    /// Stable-region base of an on-chip `Bram`/`Reg`, if `id` is one.
    pub fn mem_base(&self, id: NodeId) -> Option<usize> {
        self.mem_base.get(&id).copied()
    }

    /// Stable-region base of an off-chip array, if `id` is one.
    pub fn offchip_base(&self, id: NodeId) -> Option<usize> {
        self.offchips
            .iter()
            .find(|r| r.real && r.node == id)
            .map(|r| r.base)
    }

    /// Dense queue index of a `PriorityQueue`, if `id` is one.
    pub fn queue(&self, id: NodeId) -> Option<usize> {
        self.queues.get(&id).copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dhdl_core::{by, DType, DesignBuilder};

    #[test]
    fn layout_covers_memories_and_scratch() {
        let mut b = DesignBuilder::new("l");
        let x = b.off_chip("x", DType::F32, &[8]);
        b.sequential(|b| {
            let t = b.bram("t", DType::F32, &[8]);
            let z = b.index_const(0);
            b.tile_load(x, t, &[z], &[8], 1);
            b.pipe(&[by(8, 1)], 1, |b, it| {
                let v = b.load(t, &[it[0]]);
                let c = b.constant(2.5, DType::F32);
                let w = b.mul(v, c);
                b.store(t, &[it[0]], w);
            });
        });
        let d = b.finish().unwrap();
        let l = Layout::new(&d);
        assert_eq!(l.offchips.len(), 1);
        assert_eq!(l.offchips[0].len, 8);
        assert_eq!(l.offchips[0].output_name, "x");
        assert_eq!(l.template.len(), 8 + 8 + d.len());
        // The constant's scratch slot is pre-quantized.
        let (cid, _) = d
            .iter()
            .find(|(_, n)| matches!(n.kind, dhdl_core::NodeKind::Const(v) if v == 2.5))
            .unwrap();
        assert_eq!(l.template[l.slot(cid)], 2.5f32 as f64);
    }
}
