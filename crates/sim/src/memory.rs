//! Shared DRAM channel timeline.
//!
//! Unlike the estimator's static contention factor, the simulator resolves
//! off-chip contention dynamically: every transfer occupies the shared
//! channel for its data time, and concurrent transfers queue. Because the
//! pipelined MetaPipe schedule discovers stage start times out of
//! chronological order, the timeline places each transfer into the
//! *earliest sufficiently large idle gap* at or after its issue time
//! (first-fit interval reservation), which conserves aggregate bandwidth
//! while modeling queueing delay.

/// A first-fit reservation timeline for the off-chip channel.
///
/// Invariant: `busy` holds disjoint, non-touching intervals sorted by
/// start — any reservation that lands exactly adjacent to an existing
/// interval is merged into it on insert, so back-to-back streaming
/// traffic (the overwhelmingly common case) keeps the list at O(1)
/// intervals instead of growing one entry per transfer.
#[derive(Debug, Clone, Default)]
pub struct DramTimeline {
    /// Busy intervals `(start, end)`, sorted by start, pairwise disjoint.
    busy: Vec<(f64, f64)>,
    /// Transfers serviced (for reporting).
    transfers: usize,
}

impl DramTimeline {
    /// An empty timeline.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of transfers serviced.
    pub fn transfers(&self) -> usize {
        self.transfers
    }

    /// Total busy time reserved on the channel.
    pub fn busy_cycles(&self) -> f64 {
        self.busy.iter().map(|(s, e)| e - s).sum()
    }

    /// The busy intervals `(start, end)`, sorted by start and pairwise
    /// disjoint (exposed for invariant checks and diagnostics).
    pub fn busy_intervals(&self) -> &[(f64, f64)] {
        &self.busy
    }

    /// Reserve a transfer issued at `start` whose channel occupancy is
    /// `ideal` cycles. Returns the effective duration from `start` to the
    /// end of its reservation (ideal plus queueing delay).
    pub fn request(&mut self, start: f64, ideal: f64) -> f64 {
        if ideal <= 0.0 {
            return 0.0;
        }
        // First-fit: earliest idle gap of width `ideal` at or after start.
        // Intervals ending at or before `t` cannot constrain the search;
        // binary-search past them instead of re-scanning them per request
        // (the intervals are disjoint and sorted, so their ends are sorted
        // too — a gap ending exactly at `t` is never revisited).
        let mut t = start.max(0.0);
        let first = self.busy.partition_point(|&(_, e)| e <= t);
        let mut insert_at = self.busy.len();
        for (i, &(s, e)) in self.busy.iter().enumerate().skip(first) {
            if s >= t + ideal {
                // The reservation fits entirely in the gap before interval i.
                insert_at = i;
                break;
            }
            t = t.max(e);
        }
        // One pass found both the placement time `t` and the sorted
        // insertion index: every interval before `insert_at` ends at or
        // before `t` (it was either skipped or bumped `t` to its end).
        self.transfers += 1;
        let end = t + ideal;
        // Merge with exactly-touching neighbours so the list stays short.
        // Only exact adjacency merges — fuzzy merging would change
        // `busy_cycles` and break its conservation against ideals.
        let touches_prev = insert_at > 0 && self.busy[insert_at - 1].1 == t;
        let touches_next = insert_at < self.busy.len() && self.busy[insert_at].0 == end;
        match (touches_prev, touches_next) {
            (true, true) => {
                // Bridge: previous and next intervals fuse into one.
                self.busy[insert_at - 1].1 = self.busy[insert_at].1;
                self.busy.remove(insert_at);
            }
            (true, false) => self.busy[insert_at - 1].1 = end,
            (false, true) => self.busy[insert_at].0 = t,
            (false, false) => self.busy.insert(insert_at, (t, end)),
        }
        end - start
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn isolated_transfer_is_ideal() {
        let mut t = DramTimeline::new();
        assert_eq!(t.request(0.0, 100.0), 100.0);
        assert_eq!(t.transfers(), 1);
    }

    #[test]
    fn concurrent_transfers_queue() {
        let mut t = DramTimeline::new();
        let a = t.request(0.0, 100.0);
        let b = t.request(0.0, 100.0);
        assert_eq!(a, 100.0);
        // The second transfer queues behind the first: 200 from its start.
        assert_eq!(b, 200.0);
        assert_eq!(t.busy_cycles(), 200.0);
    }

    #[test]
    fn out_of_order_request_fills_idle_gap() {
        let mut t = DramTimeline::new();
        // A transfer far in the future is reserved first...
        assert_eq!(t.request(1_000.0, 50.0), 50.0);
        // ...but an earlier transfer still uses the idle channel before it.
        assert_eq!(t.request(0.0, 100.0), 100.0);
        assert_eq!(t.busy_cycles(), 150.0);
    }

    #[test]
    fn gap_too_small_queues_after() {
        let mut t = DramTimeline::new();
        t.request(0.0, 100.0); // busy [0, 100)
        t.request(150.0, 100.0); // busy [150, 250)
                                 // A 100-cycle transfer at 20 does not fit the [100, 150) gap.
        let d = t.request(20.0, 100.0);
        assert_eq!(d, 250.0 + 100.0 - 20.0);
        // A 40-cycle transfer at 20 does fit the gap.
        let d2 = t.request(20.0, 40.0);
        assert_eq!(d2, 100.0 + 40.0 - 20.0);
    }

    #[test]
    fn disjoint_transfers_do_not_interact() {
        let mut t = DramTimeline::new();
        t.request(0.0, 100.0);
        let late = t.request(1_000.0, 100.0);
        assert_eq!(late, 100.0);
    }

    #[test]
    fn zero_duration_is_free() {
        let mut t = DramTimeline::new();
        assert_eq!(t.request(5.0, 0.0), 0.0);
        assert_eq!(t.transfers(), 0);
    }

    #[test]
    fn touching_intervals_merge_on_insert() {
        let mut t = DramTimeline::new();
        for i in 0..10 {
            t.request(i as f64 * 10.0, 10.0);
        }
        // Ten back-to-back transfers occupy one merged interval.
        assert_eq!(t.busy_intervals(), &[(0.0, 100.0)]);
        assert_eq!(t.transfers(), 10);
        assert!((t.busy_cycles() - 100.0).abs() < 1e-9);
    }

    #[test]
    fn bridging_request_fuses_neighbours() {
        let mut t = DramTimeline::new();
        t.request(0.0, 10.0); // [0, 10)
        t.request(20.0, 10.0); // [20, 30)
        assert_eq!(t.busy_intervals().len(), 2);
        // Fits exactly in the [10, 20) gap: all three intervals fuse.
        let d = t.request(10.0, 10.0);
        assert_eq!(d, 10.0);
        assert_eq!(t.busy_intervals(), &[(0.0, 30.0)]);
    }

    #[test]
    fn queued_streaming_traffic_stays_compact() {
        // The regression the merge fixes: a long run of same-issue-time
        // transfers used to grow `busy` linearly and re-scan it per
        // request (quadratic total). Merged, the list stays at one entry.
        let mut t = DramTimeline::new();
        for _ in 0..10_000 {
            t.request(0.0, 3.0);
        }
        assert_eq!(t.busy_intervals().len(), 1);
        assert_eq!(t.busy_intervals()[0], (0.0, 30_000.0));
    }

    #[test]
    fn gap_ending_exactly_at_issue_time_is_skipped() {
        let mut t = DramTimeline::new();
        t.request(0.0, 10.0); // [0, 10)
                              // Issue exactly at the end of the busy interval: no queueing.
        assert_eq!(t.request(10.0, 5.0), 5.0);
        assert_eq!(t.busy_intervals(), &[(0.0, 15.0)]);
    }
}
