//! Shared DRAM channel timeline.
//!
//! Unlike the estimator's static contention factor, the simulator resolves
//! off-chip contention dynamically: every transfer occupies the shared
//! channel for its data time, and concurrent transfers queue. Because the
//! pipelined MetaPipe schedule discovers stage start times out of
//! chronological order, the timeline places each transfer into the
//! *earliest sufficiently large idle gap* at or after its issue time
//! (first-fit interval reservation), which conserves aggregate bandwidth
//! while modeling queueing delay.

/// A first-fit reservation timeline for the off-chip channel.
#[derive(Debug, Clone, Default)]
pub struct DramTimeline {
    /// Busy intervals `(start, end)`, sorted by start.
    busy: Vec<(f64, f64)>,
    /// Transfers serviced (for reporting).
    transfers: usize,
}

impl DramTimeline {
    /// An empty timeline.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of transfers serviced.
    pub fn transfers(&self) -> usize {
        self.transfers
    }

    /// Total busy time reserved on the channel.
    pub fn busy_cycles(&self) -> f64 {
        self.busy.iter().map(|(s, e)| e - s).sum()
    }

    /// Reserve a transfer issued at `start` whose channel occupancy is
    /// `ideal` cycles. Returns the effective duration from `start` to the
    /// end of its reservation (ideal plus queueing delay).
    pub fn request(&mut self, start: f64, ideal: f64) -> f64 {
        if ideal <= 0.0 {
            return 0.0;
        }
        // First-fit: earliest idle gap of width `ideal` at or after start.
        let mut t = start.max(0.0);
        let mut insert_at = self.busy.len();
        for (i, &(s, e)) in self.busy.iter().enumerate() {
            if e <= t {
                continue;
            }
            if s >= t + ideal {
                insert_at = i;
                break;
            }
            t = t.max(e);
        }
        // Re-derive the insertion index for sorted order.
        if insert_at == self.busy.len() {
            insert_at = self
                .busy
                .iter()
                .position(|&(s, _)| s > t)
                .unwrap_or(self.busy.len());
        }
        self.busy.insert(insert_at, (t, t + ideal));
        self.transfers += 1;
        // Safety valve for pathological run lengths: merge adjacent
        // intervals once the list grows large.
        if self.busy.len() > 65_536 {
            self.coalesce();
        }
        t + ideal - start
    }

    fn coalesce(&mut self) {
        let mut merged: Vec<(f64, f64)> = Vec::with_capacity(self.busy.len() / 2);
        for &(s, e) in self.busy.iter() {
            match merged.last_mut() {
                Some(last) if s <= last.1 + 1e-9 => last.1 = last.1.max(e),
                _ => merged.push((s, e)),
            }
        }
        self.busy = merged;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn isolated_transfer_is_ideal() {
        let mut t = DramTimeline::new();
        assert_eq!(t.request(0.0, 100.0), 100.0);
        assert_eq!(t.transfers(), 1);
    }

    #[test]
    fn concurrent_transfers_queue() {
        let mut t = DramTimeline::new();
        let a = t.request(0.0, 100.0);
        let b = t.request(0.0, 100.0);
        assert_eq!(a, 100.0);
        // The second transfer queues behind the first: 200 from its start.
        assert_eq!(b, 200.0);
        assert_eq!(t.busy_cycles(), 200.0);
    }

    #[test]
    fn out_of_order_request_fills_idle_gap() {
        let mut t = DramTimeline::new();
        // A transfer far in the future is reserved first...
        assert_eq!(t.request(1_000.0, 50.0), 50.0);
        // ...but an earlier transfer still uses the idle channel before it.
        assert_eq!(t.request(0.0, 100.0), 100.0);
        assert_eq!(t.busy_cycles(), 150.0);
    }

    #[test]
    fn gap_too_small_queues_after() {
        let mut t = DramTimeline::new();
        t.request(0.0, 100.0); // busy [0, 100)
        t.request(150.0, 100.0); // busy [150, 250)
                                 // A 100-cycle transfer at 20 does not fit the [100, 150) gap.
        let d = t.request(20.0, 100.0);
        assert_eq!(d, 250.0 + 100.0 - 20.0);
        // A 40-cycle transfer at 20 does fit the gap.
        let d2 = t.request(20.0, 40.0);
        assert_eq!(d2, 100.0 + 40.0 - 20.0);
    }

    #[test]
    fn disjoint_transfers_do_not_interact() {
        let mut t = DramTimeline::new();
        t.request(0.0, 100.0);
        let late = t.request(1_000.0, 100.0);
        assert_eq!(late, 100.0);
    }

    #[test]
    fn zero_duration_is_free() {
        let mut t = DramTimeline::new();
        assert_eq!(t.request(5.0, 0.0), 0.0);
        assert_eq!(t.transfers(), 0);
    }

    #[test]
    fn coalesce_preserves_busy_time() {
        let mut t = DramTimeline::new();
        for i in 0..10 {
            t.request(i as f64 * 10.0, 10.0);
        }
        let before = t.busy_cycles();
        t.coalesce();
        assert!((t.busy_cycles() - before).abs() < 1e-6);
    }
}
