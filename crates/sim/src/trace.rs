//! Controller activity traces and VCD (Value Change Dump) export.
//!
//! The timing engine can record when each controller is busy; the trace
//! exports to VCD for inspection in any waveform viewer (GTKWave etc.),
//! showing MetaPipe stage overlap, DRAM queueing and pipeline fills the
//! way an RTL simulation would.

use std::fmt::Write as _;

use dhdl_core::{Design, NodeId};

/// One busy interval of a controller.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TraceEvent {
    /// The controller.
    pub ctrl: NodeId,
    /// Cycle at which this execution started.
    pub start: f64,
    /// Cycle at which it finished.
    pub end: f64,
}

/// An execution trace: busy intervals per controller, in issue order.
#[derive(Debug, Clone, Default)]
pub struct Trace {
    pub(crate) events: Vec<TraceEvent>,
}

/// VCD time units per simulated cycle. Timestamps are quantized once, at
/// this fixed timescale, with round-half-even — not truncated per event —
/// so two events separated by a sub-cycle fraction can never swap order
/// in the dump.
const VCD_UNITS_PER_CYCLE: f64 = 1.0;

/// Round-half-even (banker's rounding), then clamp into `u64`.
///
/// `f64::round` rounds ties away from zero, which quantizes the rising
/// and falling edges of a `x.5`-cycle event inconsistently with its
/// neighbours; half-even is the IEEE default and keeps dense schedules
/// unbiased. (Implemented by hand: `f64::round_ties_even` needs Rust
/// 1.77, above our MSRV.)
fn quantize_cycle(t: f64) -> u64 {
    let x = (t * VCD_UNITS_PER_CYCLE).max(0.0);
    let rounded = x.round();
    let quantized = if (x - x.trunc()).abs() == 0.5 && rounded % 2.0 != 0.0 {
        rounded - 1.0
    } else {
        rounded
    };
    quantized as u64
}

impl Trace {
    /// All recorded events.
    pub fn events(&self) -> &[TraceEvent] {
        &self.events
    }

    /// Total number of recorded controller executions.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether the trace is empty.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Render the trace as a VCD document with one wire per controller
    /// (1 = busy). Overlapping executions of the same controller (pipeline
    /// replicas) are merged into one busy level.
    pub fn to_vcd(&self, design: &Design) -> String {
        let mut ctrls: Vec<NodeId> = self.events.iter().map(|e| e.ctrl).collect();
        ctrls.sort_unstable();
        ctrls.dedup();
        let mut out = String::new();
        out.push_str("$date dhdl-sim $end\n$version dhdl-sim 0.1 $end\n");
        out.push_str("$timescale 1ns $end\n$scope module design $end\n");
        let code = |i: usize| -> String {
            // Printable VCD identifier codes: ! .. ~.
            let mut n = i;
            let mut s = String::new();
            loop {
                s.push((33 + (n % 94)) as u8 as char);
                n /= 94;
                if n == 0 {
                    break;
                }
            }
            s
        };
        for (i, &c) in ctrls.iter().enumerate() {
            let node = design.node(c);
            let name = format!(
                "{}_{}{}",
                node.kind.template_name(),
                c.index(),
                node.name
                    .as_deref()
                    .map(|n| format!("_{}", n.replace(' ', "_")))
                    .unwrap_or_default()
            );
            let _ = writeln!(out, "$var wire 1 {} {} $end", code(i), name);
        }
        out.push_str("$upscope $end\n$enddefinitions $end\n");
        // Build change lists: +1 at start, -1 at end; busy while depth > 0.
        // Both edges are quantized with the same fixed-timescale rounding
        // and an event's fall is clamped to never precede its rise.
        let mut changes: Vec<(u64, usize, i32)> = Vec::new();
        for e in &self.events {
            let ci = ctrls.binary_search(&e.ctrl).expect("collected above");
            let start = quantize_cycle(e.start);
            let end = quantize_cycle(e.end).max(start);
            changes.push((start, ci, 1));
            changes.push((end, ci, -1));
        }
        changes.sort_by_key(|&(t, ci, delta)| (t, ci, -delta));
        let mut depth = vec![0i32; ctrls.len()];
        let mut level = vec![false; ctrls.len()];
        out.push_str("#0\n");
        for (i, _) in ctrls.iter().enumerate() {
            let _ = writeln!(out, "0{}", code(i));
        }
        let mut cur_t = 0u64;
        for (t, ci, delta) in changes {
            depth[ci] += delta;
            let new_level = depth[ci] > 0;
            if new_level != level[ci] {
                // Emitted times are strictly non-decreasing: the list is
                // sorted, and equal-time changes share one `#t` record.
                if t > cur_t {
                    let _ = writeln!(out, "#{t}");
                    cur_t = t;
                }
                let _ = writeln!(out, "{}{}", u8::from(new_level), code(ci));
                level[ci] = new_level;
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dhdl_core::{by, DType, DesignBuilder};

    fn design_and_trace() -> (Design, Trace) {
        let mut b = DesignBuilder::new("t");
        b.sequential(|b| {
            let m = b.bram("m", DType::F32, &[4]);
            b.pipe(&[by(4, 1)], 1, |b, it| {
                let c = b.constant(1.0, DType::F32);
                b.store(m, &[it[0]], c);
            });
        });
        let d = b.finish().unwrap();
        let ctrls = d.controllers();
        let trace = Trace {
            events: vec![
                TraceEvent {
                    ctrl: ctrls[0],
                    start: 0.0,
                    end: 20.0,
                },
                TraceEvent {
                    ctrl: ctrls[1],
                    start: 2.0,
                    end: 12.0,
                },
                TraceEvent {
                    ctrl: ctrls[1],
                    start: 8.0,
                    end: 18.0,
                },
            ],
        };
        (d, trace)
    }

    #[test]
    fn vcd_has_header_and_changes() {
        let (d, trace) = design_and_trace();
        let vcd = trace.to_vcd(&d);
        assert!(vcd.contains("$enddefinitions"));
        assert!(vcd.contains("$var wire 1"));
        assert!(vcd.contains("#0"));
        // Controller 1 has overlapping executions [2,12) and [8,18): one
        // rise at 2 and one fall at 18, no glitch at 12.
        assert!(vcd.contains("#2\n"));
        assert!(vcd.contains("#18\n"));
        assert!(!vcd.contains("#12\n"), "{vcd}");
    }

    #[test]
    fn empty_trace_is_valid_vcd() {
        let (d, _) = design_and_trace();
        let vcd = Trace::default().to_vcd(&d);
        assert!(vcd.contains("$enddefinitions"));
    }

    #[test]
    fn quantize_is_half_even() {
        assert_eq!(quantize_cycle(0.5), 0);
        assert_eq!(quantize_cycle(1.5), 2);
        assert_eq!(quantize_cycle(2.5), 2);
        assert_eq!(quantize_cycle(3.5), 4);
        assert_eq!(quantize_cycle(2.4999), 2);
        assert_eq!(quantize_cycle(2.5001), 3);
        assert_eq!(quantize_cycle(-1.0), 0);
    }

    #[test]
    fn sub_cycle_events_emit_non_decreasing_times() {
        // Two events whose edges differ only by sub-cycle fractions:
        // per-edge truncation used to be able to reorder these. The VCD
        // `#t` records must be strictly increasing.
        let (d, _) = design_and_trace();
        let ctrls = d.controllers();
        let trace = Trace {
            events: vec![
                TraceEvent {
                    ctrl: ctrls[0],
                    start: 0.4,
                    end: 10.6,
                },
                TraceEvent {
                    ctrl: ctrls[1],
                    start: 10.4,
                    end: 10.9,
                },
                TraceEvent {
                    ctrl: ctrls[1],
                    start: 12.5,
                    end: 12.5,
                },
            ],
        };
        let vcd = trace.to_vcd(&d);
        let times: Vec<u64> = vcd
            .lines()
            .filter_map(|l| l.strip_prefix('#').and_then(|t| t.parse().ok()))
            .collect();
        assert!(
            times.windows(2).all(|w| w[0] < w[1]),
            "VCD times not strictly increasing: {times:?}"
        );
        // A zero-width event at a tie point quantizes both edges to the
        // same (even) time and emits no glitch.
        assert!(!vcd.contains("#13\n"), "{vcd}");
    }
}
