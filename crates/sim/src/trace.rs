//! Controller activity traces and VCD (Value Change Dump) export.
//!
//! The timing engine can record when each controller is busy; the trace
//! exports to VCD for inspection in any waveform viewer (GTKWave etc.),
//! showing MetaPipe stage overlap, DRAM queueing and pipeline fills the
//! way an RTL simulation would.

use std::fmt::Write as _;

use dhdl_core::{Design, NodeId};

/// One busy interval of a controller.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TraceEvent {
    /// The controller.
    pub ctrl: NodeId,
    /// Cycle at which this execution started.
    pub start: f64,
    /// Cycle at which it finished.
    pub end: f64,
}

/// An execution trace: busy intervals per controller, in issue order.
#[derive(Debug, Clone, Default)]
pub struct Trace {
    pub(crate) events: Vec<TraceEvent>,
}

impl Trace {
    /// All recorded events.
    pub fn events(&self) -> &[TraceEvent] {
        &self.events
    }

    /// Total number of recorded controller executions.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether the trace is empty.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Render the trace as a VCD document with one wire per controller
    /// (1 = busy). Overlapping executions of the same controller (pipeline
    /// replicas) are merged into one busy level.
    pub fn to_vcd(&self, design: &Design) -> String {
        let mut ctrls: Vec<NodeId> = self.events.iter().map(|e| e.ctrl).collect();
        ctrls.sort_unstable();
        ctrls.dedup();
        let mut out = String::new();
        out.push_str("$date dhdl-sim $end\n$version dhdl-sim 0.1 $end\n");
        out.push_str("$timescale 1ns $end\n$scope module design $end\n");
        let code = |i: usize| -> String {
            // Printable VCD identifier codes: ! .. ~.
            let mut n = i;
            let mut s = String::new();
            loop {
                s.push((33 + (n % 94)) as u8 as char);
                n /= 94;
                if n == 0 {
                    break;
                }
            }
            s
        };
        for (i, &c) in ctrls.iter().enumerate() {
            let node = design.node(c);
            let name = format!(
                "{}_{}{}",
                node.kind.template_name(),
                c.index(),
                node.name
                    .as_deref()
                    .map(|n| format!("_{}", n.replace(' ', "_")))
                    .unwrap_or_default()
            );
            let _ = writeln!(out, "$var wire 1 {} {} $end", code(i), name);
        }
        out.push_str("$upscope $end\n$enddefinitions $end\n");
        // Build change lists: +1 at start, -1 at end; busy while depth > 0.
        let mut changes: Vec<(u64, usize, i32)> = Vec::new();
        for e in &self.events {
            let ci = ctrls.binary_search(&e.ctrl).expect("collected above");
            changes.push((e.start.round() as u64, ci, 1));
            changes.push((e.end.round().max(e.start.round()) as u64, ci, -1));
        }
        changes.sort_by_key(|&(t, ci, delta)| (t, ci, -delta));
        let mut depth = vec![0i32; ctrls.len()];
        let mut level = vec![false; ctrls.len()];
        out.push_str("#0\n");
        for (i, _) in ctrls.iter().enumerate() {
            let _ = writeln!(out, "0{}", code(i));
        }
        let mut cur_t = 0u64;
        for (t, ci, delta) in changes {
            depth[ci] += delta;
            let new_level = depth[ci] > 0;
            if new_level != level[ci] {
                if t != cur_t {
                    let _ = writeln!(out, "#{t}");
                    cur_t = t;
                }
                let _ = writeln!(out, "{}{}", u8::from(new_level), code(ci));
                level[ci] = new_level;
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dhdl_core::{by, DType, DesignBuilder};

    fn design_and_trace() -> (Design, Trace) {
        let mut b = DesignBuilder::new("t");
        b.sequential(|b| {
            let m = b.bram("m", DType::F32, &[4]);
            b.pipe(&[by(4, 1)], 1, |b, it| {
                let c = b.constant(1.0, DType::F32);
                b.store(m, &[it[0]], c);
            });
        });
        let d = b.finish().unwrap();
        let ctrls = d.controllers();
        let trace = Trace {
            events: vec![
                TraceEvent {
                    ctrl: ctrls[0],
                    start: 0.0,
                    end: 20.0,
                },
                TraceEvent {
                    ctrl: ctrls[1],
                    start: 2.0,
                    end: 12.0,
                },
                TraceEvent {
                    ctrl: ctrls[1],
                    start: 8.0,
                    end: 18.0,
                },
            ],
        };
        (d, trace)
    }

    #[test]
    fn vcd_has_header_and_changes() {
        let (d, trace) = design_and_trace();
        let vcd = trace.to_vcd(&d);
        assert!(vcd.contains("$enddefinitions"));
        assert!(vcd.contains("$var wire 1"));
        assert!(vcd.contains("#0"));
        // Controller 1 has overlapping executions [2,12) and [8,18): one
        // rise at 2 and one fall at 18, no glitch at 12.
        assert!(vcd.contains("#2\n"));
        assert!(vcd.contains("#18\n"));
        assert!(!vcd.contains("#12\n"), "{vcd}");
    }

    #[test]
    fn empty_trace_is_valid_vcd() {
        let (d, _) = design_and_trace();
        let vcd = Trace::default().to_vcd(&d);
        assert!(vcd.contains("$enddefinitions"));
    }
}
