//! Differential conformance: the tape-compiled backend must be
//! *bit-identical* to the interpreter — outputs, cycles, transfers,
//! profile, trace, and errors — on every design either can run.

use dhdl_core::{by, DType, DesignBuilder, PrimOp, ReduceOp};
use dhdl_sim::{compile, simulate, simulate_compiled, Bindings, SimError};
use dhdl_target::Platform;

fn assert_identical(d: &dhdl_core::Design, bindings: &Bindings) {
    let p = Platform::maia();
    let interp = simulate(d, &p, bindings);
    let tape = simulate_compiled(d, &p, bindings);
    match (&interp, &tape) {
        (Ok(a), Ok(b)) => {
            assert_eq!(a.bit_diff(b), None, "backends diverge on `{}`", d.name());
        }
        (Err(a), Err(b)) => assert_eq!(a, b, "backends raise different errors"),
        _ => panic!("one backend errored: interp={interp:?} tape={tape:?}"),
    }
}

fn dot_product() -> dhdl_core::Design {
    let n = 256u64;
    let tile = 64u64;
    let mut b = DesignBuilder::new("dot");
    let x = b.off_chip("x", DType::F32, &[n]);
    let y = b.off_chip("y", DType::F32, &[n]);
    let out = b.off_chip("out", DType::F32, &[1]);
    b.sequential(|b| {
        let acc = b.reg("acc", DType::F32, 0.0);
        b.outer_fold(true, &[by(n, tile)], 1, acc, ReduceOp::Add, |b, iters| {
            let i = iters[0];
            let xt = b.bram("xT", DType::F32, &[tile]);
            let yt = b.bram("yT", DType::F32, &[tile]);
            let partial = b.reg("partial", DType::F32, 0.0);
            b.parallel(|b| {
                b.tile_load(x, xt, &[i], &[tile], 1);
                b.tile_load(y, yt, &[i], &[tile], 1);
            });
            b.pipe_reduce(&[by(tile, 1)], 2, partial, ReduceOp::Add, |b, it| {
                let a = b.load(xt, &[it[0]]);
                let c = b.load(yt, &[it[0]]);
                b.mul(a, c)
            });
            partial
        });
        let ot = b.bram("outT", DType::F32, &[1]);
        b.pipe(&[by(1, 1)], 1, |b, it| {
            let a = b.load_reg(acc);
            b.store(ot, &[it[0]], a);
        });
        let z = b.index_const(0);
        b.tile_store(out, ot, &[z], &[1], 1);
    });
    b.finish().unwrap()
}

#[test]
fn dot_product_matches_bitwise() {
    let d = dot_product();
    let xs: Vec<f64> = (0..256).map(|i| (i % 7) as f64 * 0.5).collect();
    let ys: Vec<f64> = (0..256).map(|i| (i % 5) as f64 - 2.0).collect();
    assert_identical(&d, &Bindings::new().bind("x", xs).bind("y", ys));
}

#[test]
fn compile_once_run_many_inputs() {
    let d = dot_product();
    let p = Platform::maia();
    let compiled = compile(&d, &p).unwrap();
    assert!(compiled.instruction_count() > 0);
    for seed in 0..4u64 {
        let xs: Vec<f64> = (0..256).map(|i| ((i + seed) % 11) as f64 * 0.25).collect();
        let ys: Vec<f64> = (0..256)
            .map(|i| ((i * 3 + seed) % 13) as f64 - 6.0)
            .collect();
        let bindings = Bindings::new().bind("x", xs).bind("y", ys);
        let a = simulate(&d, &p, &bindings).unwrap();
        let b = compiled.run(&bindings).unwrap();
        assert_eq!(a.bit_diff(&b), None, "seed {seed}");
    }
}

#[test]
fn elementwise_map_matches_bitwise() {
    let n = 128u64;
    let mut b = DesignBuilder::new("sq");
    let x = b.off_chip("x", DType::F32, &[n]);
    let y = b.off_chip("y", DType::F32, &[n]);
    b.sequential(|b| {
        let xt = b.bram("xT", DType::F32, &[n]);
        let yt = b.bram("yT", DType::F32, &[n]);
        let z = b.index_const(0);
        b.tile_load(x, xt, &[z], &[n], 1);
        b.pipe(&[by(n, 1)], 1, |b, it| {
            let v = b.load(xt, &[it[0]]);
            let w = b.mul(v, v);
            b.store(yt, &[it[0]], w);
        });
        b.tile_store(y, yt, &[z], &[n], 1);
    });
    let d = b.finish().unwrap();
    let xs: Vec<f64> = (0..n).map(|i| i as f64 * 0.25).collect();
    assert_identical(&d, &Bindings::new().bind("x", xs));
}

#[test]
fn two_d_tiles_match_bitwise() {
    let (r, c) = (8u64, 16u64);
    let mut b = DesignBuilder::new("t2d");
    let x = b.off_chip("x", DType::F32, &[r, c]);
    let y = b.off_chip("y", DType::F32, &[r, c]);
    b.sequential(|b| {
        b.sequential_ctr(&[by(r, 4)], 1, |b, iters| {
            let i = iters[0];
            let t = b.bram("t", DType::F32, &[4, c]);
            let z = b.index_const(0);
            b.tile_load(x, t, &[i, z], &[4, c], 1);
            b.pipe(&[by(4, 1), by(c, 1)], 1, |b, it| {
                let v = b.load(t, &[it[0], it[1]]);
                let one = b.constant(1.0, DType::F32);
                let w = b.add(v, one);
                b.store(t, &[it[0], it[1]], w);
            });
            b.tile_store(y, t, &[i, z], &[4, c], 1);
        });
    });
    let d = b.finish().unwrap();
    let xs: Vec<f64> = (0..r * c).map(|i| i as f64).collect();
    assert_identical(&d, &Bindings::new().bind("x", xs));
}

#[test]
fn metapipe_schedule_matches_bitwise() {
    for toggle in [false, true] {
        let n = 2048u64;
        let tile = 256u64;
        let mut b = DesignBuilder::new("mp");
        let x = b.off_chip("x", DType::F32, &[n]);
        let y = b.off_chip("y", DType::F32, &[n]);
        b.sequential(|b| {
            b.outer(toggle, &[by(n, tile)], 1, |b, iters| {
                let i = iters[0];
                let xt = b.bram("xT", DType::F32, &[tile]);
                let yt = b.bram("yT", DType::F32, &[tile]);
                b.tile_load(x, xt, &[i], &[tile], 1);
                b.pipe(&[by(tile, 1)], 1, |b, it| {
                    let v = b.load(xt, &[it[0]]);
                    let w = b.sqrt(v);
                    b.store(yt, &[it[0]], w);
                });
                b.tile_store(y, yt, &[i], &[tile], 1);
            });
        });
        let d = b.finish().unwrap();
        let xs: Vec<f64> = (0..n).map(|i| i as f64 * 0.125).collect();
        assert_identical(&d, &Bindings::new().bind("x", xs));
    }
}

#[test]
fn parallel_outer_fold_matches_bitwise() {
    // par > 1 exercises the wave schedule: untimed replica members must
    // still execute functionally, in the same linear order.
    let mut b = DesignBuilder::new("fold");
    let out = b.off_chip("out", DType::F32, &[4]);
    b.sequential(|b| {
        let acc = b.bram("acc", DType::F32, &[4]);
        b.outer_fold(true, &[by(8, 1)], 2, acc, ReduceOp::Add, |b, iters| {
            let i = iters[0];
            let t = b.bram("t", DType::F32, &[4]);
            b.pipe(&[by(4, 1)], 1, |b, it| {
                let iv = b.prim(PrimOp::Add, &[i, it[0]]);
                b.store(t, &[it[0]], iv);
            });
            t
        });
        let z = b.index_const(0);
        b.tile_store(out, acc, &[z], &[4], 1);
    });
    let d = b.finish().unwrap();
    assert_identical(&d, &Bindings::new());
}

#[test]
fn priority_queue_matches_bitwise() {
    let mut b = DesignBuilder::new("pq");
    let out = b.off_chip("out", DType::F32, &[4]);
    b.sequential(|b| {
        let q = b.priority_queue("q", DType::F32, 8);
        let ot = b.bram("ot", DType::F32, &[4]);
        b.pipe(&[by(4, 1)], 1, |b, it| {
            let four = b.constant(4.0, DType::F32);
            let v = b.sub(four, it[0]);
            b.store(q, &[], v);
        });
        b.pipe(&[by(4, 1)], 1, |b, it| {
            let v = b.load(q, &[]);
            b.store(ot, &[it[0]], v);
        });
        let z = b.index_const(0);
        b.tile_store(out, ot, &[z], &[4], 1);
    });
    let d = b.finish().unwrap();
    assert_identical(&d, &Bindings::new());
}

#[test]
fn mux_and_fixed_point_match_bitwise() {
    let n = 64u64;
    let mut b = DesignBuilder::new("fx");
    let x = b.off_chip("x", DType::fixed(true, 10, 6), &[n]);
    let y = b.off_chip("y", DType::fixed(true, 10, 6), &[n]);
    b.sequential(|b| {
        let ty = DType::fixed(true, 10, 6);
        let xt = b.bram("xT", ty, &[n]);
        let yt = b.bram("yT", ty, &[n]);
        let z = b.index_const(0);
        b.tile_load(x, xt, &[z], &[n], 1);
        b.pipe(&[by(n, 1)], 1, |b, it| {
            let v = b.load(xt, &[it[0]]);
            let thresh = b.constant(3.5, ty);
            let sel = b.prim(PrimOp::Gt, &[v, thresh]);
            let half = b.constant(0.5, ty);
            let scaled = b.mul(v, half);
            let picked = b.mux(sel, scaled, v);
            b.store(yt, &[it[0]], picked);
        });
        b.tile_store(y, yt, &[z], &[n], 1);
    });
    let d = b.finish().unwrap();
    let xs: Vec<f64> = (0..n).map(|i| i as f64 * 0.17 - 3.0).collect();
    assert_identical(&d, &Bindings::new().bind("x", xs));
}

#[test]
fn runtime_out_of_bounds_error_matches() {
    let mut b = DesignBuilder::new("oob");
    let x = b.off_chip("x", DType::F32, &[8]);
    b.sequential(|b| {
        let t = b.bram("t", DType::F32, &[8]);
        let z = b.index_const(0);
        b.tile_load(x, t, &[z], &[8], 1);
        b.pipe(&[by(8, 1)], 1, |b, it| {
            let v = b.load(t, &[it[0]]);
            let w = b.load(t, &[v]);
            b.store(t, &[it[0]], w);
        });
    });
    let d = b.finish().unwrap();
    // Both the failing case (address 100 out of 8) and a passing one.
    assert_identical(&d, &Bindings::new().bind("x", vec![100.0; 8]));
    assert_identical(&d, &Bindings::new().bind("x", vec![3.0; 8]));
}

#[test]
fn binding_errors_match() {
    let mut b = DesignBuilder::new("bad");
    let x = b.off_chip("x", DType::F32, &[16]);
    b.sequential(|b| {
        let t = b.bram("t", DType::F32, &[16]);
        let z = b.index_const(0);
        b.tile_load(x, t, &[z], &[16], 1);
    });
    let d = b.finish().unwrap();
    // Shape mismatch.
    assert_identical(&d, &Bindings::new().bind("x", vec![1.0; 3]));
    // Unknown binding name.
    assert_identical(&d, &Bindings::new().bind("nope", vec![1.0; 16]));
}

#[test]
fn unknown_output_lists_names_on_both_backends() {
    let mut b = DesignBuilder::new("out");
    let x = b.off_chip("x", DType::F32, &[4]);
    b.sequential(|b| {
        let t = b.bram("t", DType::F32, &[4]);
        let z = b.index_const(0);
        b.tile_load(x, t, &[z], &[4], 1);
    });
    let d = b.finish().unwrap();
    let p = Platform::maia();
    for r in [
        simulate(&d, &p, &Bindings::new()).unwrap(),
        simulate_compiled(&d, &p, &Bindings::new()).unwrap(),
    ] {
        let err = r.output("nope").unwrap_err();
        match err {
            SimError::UnknownOutput { name, available } => {
                assert_eq!(name, "nope");
                assert_eq!(available, vec!["x".to_string()]);
            }
            other => panic!("expected UnknownOutput, got {other:?}"),
        }
    }
}
