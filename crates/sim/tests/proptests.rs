//! Property tests for the simulator: determinism, MetaPipe dominance,
//! tile-transfer roundtrips and reduction equivalence on arbitrary data.

use dhdl_core::{by, DType, Design, DesignBuilder};
use dhdl_sim::{simulate, Bindings};
use dhdl_target::Platform;
use proptest::prelude::*;

fn streaming(n: u64, tile: u64, par: u32, toggle: bool) -> Design {
    let mut b = DesignBuilder::new("s");
    let x = b.off_chip("x", DType::F32, &[n]);
    let y = b.off_chip("y", DType::F32, &[n]);
    b.sequential(|b| {
        b.outer(toggle, &[by(n, tile)], 1, |b, iters| {
            let i = iters[0];
            let xt = b.bram("xT", DType::F32, &[tile]);
            let yt = b.bram("yT", DType::F32, &[tile]);
            b.tile_load(x, xt, &[i], &[tile], par);
            b.pipe(&[by(tile, 1)], par, |b, it| {
                let v = b.load(xt, &[it[0]]);
                let w = b.abs(v);
                b.store(yt, &[it[0]], w);
            });
            b.tile_store(y, yt, &[i], &[tile], par);
        });
    });
    b.finish().expect("valid")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Simulation is deterministic and functionally exact for arbitrary
    /// data and tilings.
    #[test]
    fn streaming_roundtrip_is_exact(
        tile_pow in 3u32..7,
        tiles in 1u64..6,
        par_pow in 0u32..3,
        data_seed in 0u64..1000
    ) {
        let tile = 1u64 << tile_pow;
        let n = tile * tiles;
        let d = streaming(n, tile, 1 << par_pow, true);
        let data: Vec<f64> = (0..n)
            .map(|i| ((((i + data_seed) * 97) % 41) as f64 - 20.0) as f32 as f64)
            .collect();
        let p = Platform::maia();
        let bind = Bindings::new().bind("x", data.clone());
        let r1 = simulate(&d, &p, &bind).expect("simulates");
        let r2 = simulate(&d, &p, &bind).expect("simulates");
        prop_assert_eq!(r1.cycles, r2.cycles);
        let out = r1.output("y").expect("y");
        for (o, x) in out.iter().zip(&data) {
            prop_assert_eq!(*o, x.abs());
        }
    }

    /// A MetaPipe never runs slower than the equivalent Sequential on the
    /// same workload (overlap can only help).
    #[test]
    fn metapipe_dominates_sequential(
        tile_pow in 4u32..8,
        tiles in 2u64..8,
        par_pow in 0u32..3
    ) {
        let tile = 1u64 << tile_pow;
        let n = tile * tiles;
        let par = 1 << par_pow;
        let p = Platform::maia();
        let seq = simulate(&streaming(n, tile, par, false), &p, &Bindings::new())
            .expect("simulates");
        let meta = simulate(&streaming(n, tile, par, true), &p, &Bindings::new())
            .expect("simulates");
        prop_assert!(
            meta.cycles <= seq.cycles + 1e-6,
            "meta {} > seq {}",
            meta.cycles,
            seq.cycles
        );
    }

    /// More parallel lanes never slow a compute-heavy design down.
    #[test]
    fn parallelism_is_monotone(tile_pow in 5u32..8, par_pow in 0u32..3) {
        let tile = 1u64 << tile_pow;
        let p = Platform::maia();
        let narrow = simulate(&streaming(tile * 4, tile, 1 << par_pow, true), &p, &Bindings::new())
            .expect("simulates");
        let wide = simulate(
            &streaming(tile * 4, tile, 1 << (par_pow + 1), true),
            &p,
            &Bindings::new(),
        )
        .expect("simulates");
        prop_assert!(wide.cycles <= narrow.cycles + 1e-6);
    }

    /// The activity trace is consistent: events end after they start, and
    /// nothing ends after the reported total.
    #[test]
    fn trace_is_well_formed(tile_pow in 3u32..6, tiles in 1u64..5) {
        let tile = 1u64 << tile_pow;
        let d = streaming(tile * tiles, tile, 1, true);
        let r = simulate(&d, &Platform::maia(), &Bindings::new()).expect("simulates");
        for e in r.trace().events() {
            prop_assert!(e.end >= e.start);
            prop_assert!(e.end <= r.cycles + 1e-6);
        }
        prop_assert!(!r.trace().is_empty());
    }
}
