//! Property tests for the simulator: determinism, MetaPipe dominance,
//! tile-transfer roundtrips, reduction equivalence on arbitrary data, and
//! the first-fit invariants of the shared DRAM channel timeline.

use dhdl_core::{by, DType, Design, DesignBuilder};
use dhdl_sim::{simulate, Bindings, DramTimeline};
use dhdl_target::Platform;
use proptest::prelude::*;

fn streaming(n: u64, tile: u64, par: u32, toggle: bool) -> Design {
    let mut b = DesignBuilder::new("s");
    let x = b.off_chip("x", DType::F32, &[n]);
    let y = b.off_chip("y", DType::F32, &[n]);
    b.sequential(|b| {
        b.outer(toggle, &[by(n, tile)], 1, |b, iters| {
            let i = iters[0];
            let xt = b.bram("xT", DType::F32, &[tile]);
            let yt = b.bram("yT", DType::F32, &[tile]);
            b.tile_load(x, xt, &[i], &[tile], par);
            b.pipe(&[by(tile, 1)], par, |b, it| {
                let v = b.load(xt, &[it[0]]);
                let w = b.abs(v);
                b.store(yt, &[it[0]], w);
            });
            b.tile_store(y, yt, &[i], &[tile], par);
        });
    });
    b.finish().expect("valid")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Simulation is deterministic and functionally exact for arbitrary
    /// data and tilings.
    #[test]
    fn streaming_roundtrip_is_exact(
        tile_pow in 3u32..7,
        tiles in 1u64..6,
        par_pow in 0u32..3,
        data_seed in 0u64..1000
    ) {
        let tile = 1u64 << tile_pow;
        let n = tile * tiles;
        let d = streaming(n, tile, 1 << par_pow, true);
        let data: Vec<f64> = (0..n)
            .map(|i| ((((i + data_seed) * 97) % 41) as f64 - 20.0) as f32 as f64)
            .collect();
        let p = Platform::maia();
        let bind = Bindings::new().bind("x", data.clone());
        let r1 = simulate(&d, &p, &bind).expect("simulates");
        let r2 = simulate(&d, &p, &bind).expect("simulates");
        prop_assert_eq!(r1.cycles, r2.cycles);
        let out = r1.output("y").expect("y");
        for (o, x) in out.iter().zip(&data) {
            prop_assert_eq!(*o, x.abs());
        }
    }

    /// A MetaPipe never runs slower than the equivalent Sequential on the
    /// same workload (overlap can only help).
    #[test]
    fn metapipe_dominates_sequential(
        tile_pow in 4u32..8,
        tiles in 2u64..8,
        par_pow in 0u32..3
    ) {
        let tile = 1u64 << tile_pow;
        let n = tile * tiles;
        let par = 1 << par_pow;
        let p = Platform::maia();
        let seq = simulate(&streaming(n, tile, par, false), &p, &Bindings::new())
            .expect("simulates");
        let meta = simulate(&streaming(n, tile, par, true), &p, &Bindings::new())
            .expect("simulates");
        prop_assert!(
            meta.cycles <= seq.cycles + 1e-6,
            "meta {} > seq {}",
            meta.cycles,
            seq.cycles
        );
    }

    /// More parallel lanes never slow a compute-heavy design down.
    #[test]
    fn parallelism_is_monotone(tile_pow in 5u32..8, par_pow in 0u32..3) {
        let tile = 1u64 << tile_pow;
        let p = Platform::maia();
        let narrow = simulate(&streaming(tile * 4, tile, 1 << par_pow, true), &p, &Bindings::new())
            .expect("simulates");
        let wide = simulate(
            &streaming(tile * 4, tile, 1 << (par_pow + 1), true),
            &p,
            &Bindings::new(),
        )
        .expect("simulates");
        prop_assert!(wide.cycles <= narrow.cycles + 1e-6);
    }

    /// The activity trace is consistent: events end after they start, and
    /// nothing ends after the reported total.
    #[test]
    fn trace_is_well_formed(tile_pow in 3u32..6, tiles in 1u64..5) {
        let tile = 1u64 << tile_pow;
        let d = streaming(tile * tiles, tile, 1, true);
        let r = simulate(&d, &Platform::maia(), &Bindings::new()).expect("simulates");
        for e in r.trace().events() {
            prop_assert!(e.end >= e.start);
            prop_assert!(e.end <= r.cycles + 1e-6);
        }
        prop_assert!(!r.trace().is_empty());
    }

    /// After any sequence of requests the timeline holds disjoint,
    /// sorted, non-touching intervals — the structural invariant the
    /// merge-on-insert coalescing must preserve.
    #[test]
    fn dram_intervals_stay_disjoint_and_sorted(
        reqs in prop::collection::vec((0u32..2_000, 1u32..300), 1..64)
    ) {
        let mut t = DramTimeline::new();
        for &(start, ideal) in &reqs {
            t.request(start as f64, ideal as f64);
        }
        let busy = t.busy_intervals();
        for &(s, e) in busy {
            prop_assert!(s < e, "degenerate interval [{s}, {e})");
        }
        for w in busy.windows(2) {
            // Strictly less: exactly-touching neighbours must have merged.
            prop_assert!(
                w[0].1 < w[1].0,
                "intervals [{}, {}) and [{}, {}) touch or overlap",
                w[0].0, w[0].1, w[1].0, w[1].1
            );
        }
    }

    /// First-fit placement never creates or destroys channel time: the
    /// total reserved busy time equals the sum of the ideal occupancies,
    /// and the transfer count matches the non-zero requests.
    #[test]
    fn dram_busy_cycles_are_conserved(
        reqs in prop::collection::vec((0u32..2_000, 0u32..300), 1..64)
    ) {
        let mut t = DramTimeline::new();
        for &(start, ideal) in &reqs {
            t.request(start as f64, ideal as f64);
        }
        let ideal_sum: f64 = reqs.iter().map(|&(_, i)| i as f64).sum();
        prop_assert!(
            (t.busy_cycles() - ideal_sum).abs() < 1e-6,
            "busy {} != sum of ideals {}",
            t.busy_cycles(),
            ideal_sum
        );
        let nonzero = reqs.iter().filter(|&&(_, i)| i > 0).count();
        prop_assert_eq!(t.transfers(), nonzero);
    }

    /// Each reservation runs for at least its ideal duration from its
    /// issue time (queueing only ever adds delay), and replaying the same
    /// request sequence reproduces the timeline exactly.
    #[test]
    fn dram_requests_are_monotone_and_deterministic(
        reqs in prop::collection::vec((0u32..2_000, 1u32..300), 1..64)
    ) {
        let mut t1 = DramTimeline::new();
        let mut t2 = DramTimeline::new();
        for &(start, ideal) in &reqs {
            let d1 = t1.request(start as f64, ideal as f64);
            let d2 = t2.request(start as f64, ideal as f64);
            prop_assert!(
                d1 >= ideal as f64,
                "duration {d1} below ideal {ideal} for issue at {start}"
            );
            prop_assert_eq!(d1.to_bits(), d2.to_bits());
        }
        prop_assert_eq!(t1.busy_intervals(), t2.busy_intervals());
        prop_assert_eq!(t1.transfers(), t2.transfers());
    }
}
