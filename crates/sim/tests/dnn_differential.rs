//! Differential conformance for the DNN-frontier constructs: line-buffer
//! convolution tiles and attention-shaped GEMM–softmax–GEMM nests must be
//! bit-identical between the interpreter and the tape-compiled backend
//! (outputs, cycles, transfers, profile, trace via `SimResult::bit_diff`),
//! and bodies the tape compiler cannot handle must *fall back* to the
//! interpreter rather than miscompile.

use dhdl_core::{by, DType, Design, DesignBuilder, PrimOp, ReduceOp};
use dhdl_sim::{compile, simulate, simulate_compiled, Bindings, CompileError};
use dhdl_target::Platform;

fn assert_identical(d: &Design, bindings: &Bindings) {
    let p = Platform::maia();
    let interp = simulate(d, &p, bindings);
    let tape = simulate_compiled(d, &p, bindings);
    match (&interp, &tape) {
        (Ok(a), Ok(b)) => {
            assert_eq!(a.bit_diff(b), None, "backends diverge on `{}`", d.name());
        }
        (Err(a), Err(b)) => assert_eq!(a, b, "backends raise different errors"),
        _ => panic!("one backend errored: interp={interp:?} tape={tape:?}"),
    }
}

/// A line-buffer conv2d fragment: row-tiled output with a halo tile load
/// (stride th, extent th + KH - 1) and window accumulation over the two
/// middle (u, v) counters with computed `ii+u` / `j+v` addresses.
fn conv_fragment(size: u64, cout: u64, th: u64, pj: u32, mp: bool) -> Design {
    let (kh, kw) = (3u64, 3u64);
    let (hout, wout) = (size - kh + 1, size - kw + 1);
    let rows = th + kh - 1;
    let mut b = DesignBuilder::new("convfrag");
    let img = b.off_chip("img", DType::F32, &[size, size]);
    let wts = b.off_chip("wt", DType::F32, &[cout, kh, kw]);
    let out = b.off_chip("out", DType::F32, &[cout, hout, wout]);
    b.sequential(|b| {
        let wt = b.bram("wT", DType::F32, &[cout, kh, kw]);
        let z0 = b.index_const(0);
        b.tile_load(wts, wt, &[z0, z0, z0], &[cout, kh, kw], 1);
        b.outer(mp, &[by(hout, th)], 1, |b, iters| {
            let i = iters[0];
            let imt = b.bram("imT", DType::F32, &[rows, size]);
            let ot = b.bram("oT", DType::F32, &[cout, th, wout]);
            let z = b.index_const(0);
            b.tile_load(img, imt, &[i, z], &[rows, size], pj);
            b.sequential_ctr(&[by(cout, 1)], 1, |b, cc| {
                let c = cc[0];
                b.pipe(
                    &[by(th, 1), by(kh, 1), by(kw, 1), by(wout, 1)],
                    pj,
                    |b, it| {
                        let (ii, u, v, j) = (it[0], it[1], it[2], it[3]);
                        let row = b.prim(PrimOp::Add, &[ii, u]);
                        let col = b.prim(PrimOp::Add, &[j, v]);
                        let iv = b.load(imt, &[row, col]);
                        let wv = b.load(wt, &[c, u, v]);
                        let prod = b.mul(iv, wv);
                        let zi = b.index_const(0);
                        let fu = b.eq(u, zi);
                        let fv = b.eq(v, zi);
                        let first = b.and(fu, fv);
                        let zero = b.constant(0.0, DType::F32);
                        let prev_raw = b.load(ot, &[c, ii, j]);
                        let prev = b.mux(first, zero, prev_raw);
                        let sum = b.add(prev, prod);
                        b.store(ot, &[c, ii, j], sum);
                    },
                );
            });
            b.tile_store(out, ot, &[z, i, z], &[cout, th, wout], pj);
        });
    });
    b.finish().unwrap()
}

fn conv_inputs(size: u64, cout: u64) -> (Vec<f64>, Vec<f64>) {
    let img: Vec<f64> = (0..size * size)
        .map(|i| f64::from((i % 13) as f32 * 0.25 - 1.5))
        .collect();
    let wts: Vec<f64> = (0..cout * 9)
        .map(|i| f64::from((i % 7) as f32 * 0.125 - 0.375))
        .collect();
    (img, wts)
}

/// Reference conv with the interpreter's per-op f32 rounding.
fn conv_reference(img: &[f64], wts: &[f64], size: usize, cout: usize) -> Vec<f64> {
    let hout = size - 2;
    let mut out = vec![0.0f64; cout * hout * hout];
    for c in 0..cout {
        for i in 0..hout {
            for j in 0..hout {
                let mut acc = 0.0f64;
                for u in 0..3 {
                    for v in 0..3 {
                        let prod =
                            (img[(i + u) * size + (j + v)] * wts[(c * 3 + u) * 3 + v]) as f32;
                        acc = (acc + f64::from(prod)) as f32 as f64;
                    }
                }
                out[(c * hout + i) * hout + j] = acc;
            }
        }
    }
    out
}

#[test]
fn conv_fragment_matches_bitwise_and_reference() {
    let (size, cout) = (10u64, 2u64);
    let (img, wts) = conv_inputs(size, cout);
    for (th, pj, mp) in [(4, 1, false), (4, 2, true), (8, 4, true), (2, 8, false)] {
        let d = conv_fragment(size, cout, th, pj, mp);
        let bindings = Bindings::new()
            .bind("img", img.clone())
            .bind("wt", wts.clone());
        assert_identical(&d, &bindings);
        let p = Platform::maia();
        let r = simulate(&d, &p, &bindings).unwrap();
        let expected = conv_reference(&img, &wts, size as usize, cout as usize);
        assert_eq!(
            r.output("out").unwrap(),
            &expected[..],
            "th={th} pj={pj} mp={mp}"
        );
    }
}

/// An attention-shaped fragment: chained tiled GEMMs through a per-row
/// log-domain softmax (max-reduce, exp-sum-reduce, ln, normalize).
fn attention_fragment(n: u64, d: u64, tr: u64, pa: u32, mp: bool, mps: bool) -> Design {
    let scale = 1.0 / (d as f64).sqrt();
    let mut b = DesignBuilder::new("attnfrag");
    let q = b.off_chip("q", DType::F32, &[n, d]);
    let k = b.off_chip("k", DType::F32, &[n, d]);
    let v = b.off_chip("v", DType::F32, &[n, d]);
    let o = b.off_chip("out", DType::F32, &[n, d]);
    b.sequential(|b| {
        let kt = b.bram("kT", DType::F32, &[n, d]);
        let vt = b.bram("vT", DType::F32, &[n, d]);
        let z0 = b.index_const(0);
        b.parallel(|b| {
            b.tile_load(k, kt, &[z0, z0], &[n, d], 1);
            b.tile_load(v, vt, &[z0, z0], &[n, d], 1);
        });
        b.outer(mp, &[by(n, tr)], 1, |b, iters| {
            let i = iters[0];
            let qt = b.bram("qT", DType::F32, &[tr, d]);
            let st = b.bram("sT", DType::F32, &[tr, n]);
            let ot = b.bram("oT", DType::F32, &[tr, d]);
            let z = b.index_const(0);
            b.tile_load(q, qt, &[i, z], &[tr, d], 1);
            b.pipe(&[by(tr, 1), by(d, 1), by(n, 1)], pa, |b, it| {
                let (ii, j, r) = (it[0], it[1], it[2]);
                let qv = b.load(qt, &[ii, j]);
                let kv = b.load(kt, &[r, j]);
                let prod = b.mul(qv, kv);
                let zi = b.index_const(0);
                let first = b.eq(j, zi);
                let zero = b.constant(0.0, DType::F32);
                let prev_raw = b.load(st, &[ii, r]);
                let prev = b.mux(first, zero, prev_raw);
                let sum = b.add(prev, prod);
                b.store(st, &[ii, r], sum);
            });
            b.outer(mps, &[by(tr, 1)], 1, |b, rr| {
                let ii = rr[0];
                let mreg = b.reg("rowMax", DType::F32, 0.0);
                b.pipe_reduce(&[by(n, 1)], pa, mreg, ReduceOp::Max, |b, it| {
                    b.load(st, &[ii, it[0]])
                });
                let sreg = b.reg("rowSum", DType::F32, 0.0);
                b.pipe_reduce(&[by(n, 1)], pa, sreg, ReduceOp::Add, |b, it| {
                    let s = b.load(st, &[ii, it[0]]);
                    let m = b.load_reg(mreg);
                    let dlt = b.sub(s, m);
                    let c = b.constant(scale, DType::F32);
                    let sc = b.mul(dlt, c);
                    b.exp(sc)
                });
                let lreg = b.reg("rowLse", DType::F32, 0.0);
                b.pipe(&[by(1, 1)], 1, |b, _it| {
                    let s = b.load_reg(sreg);
                    let l = b.ln(s);
                    b.store_reg(lreg, l);
                });
                b.pipe(&[by(n, 1)], pa, |b, it| {
                    let s = b.load(st, &[ii, it[0]]);
                    let m = b.load_reg(mreg);
                    let dlt = b.sub(s, m);
                    let c = b.constant(scale, DType::F32);
                    let sc = b.mul(dlt, c);
                    let l = b.load_reg(lreg);
                    let e = b.sub(sc, l);
                    let p = b.exp(e);
                    b.store(st, &[ii, it[0]], p);
                });
            });
            b.pipe(&[by(tr, 1), by(n, 1), by(d, 1)], pa, |b, it| {
                let (ii, r, jd) = (it[0], it[1], it[2]);
                let pv = b.load(st, &[ii, r]);
                let vv = b.load(vt, &[r, jd]);
                let prod = b.mul(pv, vv);
                let zi = b.index_const(0);
                let first = b.eq(r, zi);
                let zero = b.constant(0.0, DType::F32);
                let prev_raw = b.load(ot, &[ii, jd]);
                let prev = b.mux(first, zero, prev_raw);
                let sum = b.add(prev, prod);
                b.store(ot, &[ii, jd], sum);
            });
            b.tile_store(o, ot, &[i, z], &[tr, d], 1);
        });
    });
    b.finish().unwrap()
}

fn attn_inputs(n: u64, d: u64) -> (Vec<f64>, Vec<f64>, Vec<f64>) {
    let gen = |salt: u64| -> Vec<f64> {
        (0..n * d)
            .map(|i| f64::from(((i * 7 + salt) % 19) as f32 * 0.125 - 1.0))
            .collect()
    };
    (gen(0), gen(3), gen(11))
}

#[test]
fn attention_fragment_matches_bitwise() {
    let (n, d) = (16u64, 8u64);
    let (q, k, v) = attn_inputs(n, d);
    for (tr, pa, mp, mps) in [
        (4, 1, false, false),
        (4, 2, true, false),
        (8, 4, false, true),
        (16, 8, true, true),
    ] {
        let de = attention_fragment(n, d, tr, pa, mp, mps);
        let bindings = Bindings::new()
            .bind("q", q.clone())
            .bind("k", k.clone())
            .bind("v", v.clone());
        assert_identical(&de, &bindings);
        // Softmax rows must be normalized: each output row is a convex
        // combination of V rows, so row sums of P are 1 and the outputs
        // stay within V's column bounds.
        let p = Platform::maia();
        let r = simulate(&de, &p, &bindings).unwrap();
        let out = r.output("out").unwrap();
        for (i, x) in out.iter().enumerate() {
            let col = i % d as usize;
            let (mut lo, mut hi) = (f64::INFINITY, f64::NEG_INFINITY);
            for row in 0..n as usize {
                lo = lo.min(v[row * d as usize + col]);
                hi = hi.max(v[row * d as usize + col]);
            }
            assert!(
                *x >= lo - 1e-5 && *x <= hi + 1e-5,
                "tr={tr} pa={pa}: out[{i}] = {x} outside [{lo}, {hi}]"
            );
        }
    }
}

/// exp/ln lane batching in the tape backend must make exactly the libm
/// calls the interpreter makes per element: compare a fused exp/ln pipe
/// bitwise against a scalar libm mirror.
#[test]
fn exp_ln_lanes_are_bit_identical_to_libm() {
    let n = 256u64;
    let mut b = DesignBuilder::new("expln");
    let x = b.off_chip("x", DType::F32, &[n]);
    let y = b.off_chip("y", DType::F32, &[n]);
    b.sequential(|b| {
        let xt = b.bram("xT", DType::F32, &[n]);
        let yt = b.bram("yT", DType::F32, &[n]);
        let z = b.index_const(0);
        b.tile_load(x, xt, &[z], &[n], 1);
        b.pipe(&[by(n, 1)], 1, |b, it| {
            let v = b.load(xt, &[it[0]]);
            let e = b.exp(v);
            let one = b.constant(1.0, DType::F32);
            let shifted = b.add(e, one);
            let l = b.ln(shifted);
            b.store(yt, &[it[0]], l);
        });
        b.tile_store(y, yt, &[z], &[n], 1);
    });
    let d = b.finish().unwrap();
    let xs: Vec<f64> = (0..n).map(|i| f64::from(i as f32 * 0.03 - 4.0)).collect();
    let bindings = Bindings::new().bind("x", xs.clone());
    assert_identical(&d, &bindings);
    // Scalar libm mirror with the interpreter's f32 rounding per op.
    let expected: Vec<f64> = xs
        .iter()
        .map(|&v| {
            let e = v.exp() as f32 as f64;
            let s = (e + 1.0) as f32 as f64;
            s.ln() as f32 as f64
        })
        .collect();
    let p = Platform::maia();
    for r in [
        simulate(&d, &p, &bindings).unwrap(),
        simulate_compiled(&d, &p, &bindings).unwrap(),
    ] {
        assert_eq!(r.output("y").unwrap(), &expected[..]);
    }
}

/// A conv-shaped body whose per-row partial sums fold through a priority
/// queue is outside the tape compiler's model: `compile` must refuse
/// with `Unsupported`, and `simulate_compiled` must fall back to
/// interpreter-identical results — never miscompile.
///
/// The builder's structural validation (rightly) refuses to construct a
/// queue-sourced fold, so the design is produced the way a hostile or
/// future frontend could produce it: serialize a valid fold design, then
/// retarget the fold source at the queue before re-parsing (`from_text`
/// is parse-level only).
#[test]
fn unsupported_conv_body_falls_back() {
    let size = 6u64;
    let hout = size - 2;
    let mut qid = None;
    let mut ptid = None;
    let mut b = DesignBuilder::new("convpq");
    let img = b.off_chip("img", DType::F32, &[size, size]);
    let out = b.off_chip("out", DType::F32, &[hout * hout]);
    b.sequential(|b| {
        let imt = b.bram("imT", DType::F32, &[size, size]);
        let z = b.index_const(0);
        b.tile_load(img, imt, &[z, z], &[size, size], 1);
        let acc = b.bram("acc", DType::F32, &[hout * hout]);
        // Horizontal 3-tap sums per kernel row, folded into `acc` over
        // the kernel-row counter; a priority queue shadows the partial
        // buffer and becomes the fold source after the text surgery.
        b.outer_fold(false, &[by(3, 1)], 1, acc, ReduceOp::Add, |b, uu| {
            let u = uu[0];
            let q = b.priority_queue("q", DType::F32, 64);
            let pt = b.bram("pT", DType::F32, &[hout * hout]);
            qid = Some(q);
            ptid = Some(pt);
            b.pipe(&[by(hout, 1), by(hout, 1)], 1, |b, it| {
                let (ii, j) = (it[0], it[1]);
                let row = b.prim(PrimOp::Add, &[ii, u]);
                let one = b.index_const(1);
                let two = b.index_const(2);
                let c1 = b.prim(PrimOp::Add, &[j, one]);
                let c2 = b.prim(PrimOp::Add, &[j, two]);
                let a = b.load(imt, &[row, j]);
                let m = b.load(imt, &[row, c1]);
                let r = b.load(imt, &[row, c2]);
                let s0 = b.add(a, m);
                let s = b.add(s0, r);
                let hh = b.index_const(hout);
                let flat = b.prim(PrimOp::Mul, &[ii, hh]);
                let at = b.prim(PrimOp::Add, &[flat, j]);
                b.store(pt, &[at], s);
                b.store(q, &[], s);
            });
            pt
        });
        b.tile_store(out, acc, &[z], &[hout * hout], 1);
    });
    let d = b.finish().unwrap();
    let (q, pt) = (qid.unwrap(), ptid.unwrap());
    let text = dhdl_core::serialize::to_text(&d);
    let patched = text.replace(
        &format!("fold={}:", pt.index()),
        &format!("fold={}:", q.index()),
    );
    assert_ne!(text, patched, "fold line not found in serialized design");
    let d = dhdl_core::serialize::from_text(&patched).unwrap();
    let p = Platform::maia();
    match compile(&d, &p) {
        Err(CompileError::Unsupported(_)) => {}
        other => panic!(
            "expected Unsupported for a queue-sourced fold, got {:?}",
            other.map(|_| "Ok(Compiled)")
        ),
    }
    let (img_data, _) = conv_inputs(size, 1);
    assert_identical(&d, &Bindings::new().bind("img", img_data));
}
