//! Structured-error hardening tests: every malformed input the fuzzer
//! can reach must surface as a `SimError`, never a panic.

use dhdl_core::{by, DType, DesignBuilder, ReduceOp};
use dhdl_sim::{simulate, Bindings, SimError};
use dhdl_target::Platform;

fn platform() -> Platform {
    Platform::maia()
}

/// A minimal legal design with one bound input `x`.
fn square_design(n: u64) -> dhdl_core::Design {
    let mut b = DesignBuilder::new("sq");
    let x = b.off_chip("x", DType::F32, &[n]);
    let y = b.off_chip("y", DType::F32, &[n]);
    b.sequential(|b| {
        let xt = b.bram("xT", DType::F32, &[n]);
        let yt = b.bram("yT", DType::F32, &[n]);
        let z = b.index_const(0);
        b.tile_load(x, xt, &[z], &[n], 1);
        b.pipe(&[by(n, 1)], 1, |b, it| {
            let v = b.load(xt, &[it[0]]);
            let w = b.mul(v, v);
            b.store(yt, &[it[0]], w);
        });
        b.tile_store(y, yt, &[z], &[n], 1);
    });
    b.finish().unwrap()
}

#[test]
fn unknown_binding_is_reported() {
    let d = square_design(16);
    let bindings = Bindings::new()
        .bind("x", vec![1.0; 16])
        .bind("nope", vec![0.0; 4]);
    let r = simulate(&d, &platform(), &bindings);
    assert_eq!(r.err(), Some(SimError::UnknownBinding("nope".into())));
}

#[test]
fn matching_bindings_still_pass() {
    let d = square_design(16);
    let bindings = Bindings::new().bind("x", vec![2.0; 16]);
    let r = simulate(&d, &platform(), &bindings).unwrap();
    assert_eq!(r.output("y").unwrap()[0], 4.0);
}

#[test]
fn zero_trip_pipe_is_reported() {
    let mut b = DesignBuilder::new("zt");
    b.sequential(|b| {
        let t = b.bram("t", DType::F32, &[8]);
        b.pipe(&[by(0, 1)], 1, |b, it| {
            let v = b.load(t, &[it[0]]);
            b.store(t, &[it[0]], v);
        });
    });
    let d = b.finish().unwrap();
    let r = simulate(&d, &platform(), &Bindings::new());
    assert!(matches!(r, Err(SimError::ZeroTripLoop(_))), "{r:?}");
}

#[test]
fn zero_step_counter_is_reported() {
    // step == 0 makes trip_count() zero: the loop can never advance.
    let mut b = DesignBuilder::new("zs");
    b.sequential(|b| {
        b.sequential_ctr(&[by(8, 0)], 1, |b, _iters| {
            let t = b.bram("t", DType::F32, &[8]);
            b.pipe(&[by(8, 1)], 1, |b, it| {
                let v = b.load(t, &[it[0]]);
                b.store(t, &[it[0]], v);
            });
        });
    });
    let d = b.finish().unwrap();
    let r = simulate(&d, &platform(), &Bindings::new());
    assert!(matches!(r, Err(SimError::ZeroTripLoop(_))), "{r:?}");
}

#[test]
fn zero_trip_outer_loop_is_reported() {
    let mut b = DesignBuilder::new("zo");
    b.sequential(|b| {
        b.sequential_ctr(&[by(0, 1)], 1, |b, _iters| {
            let t = b.bram("t", DType::F32, &[4]);
            b.pipe(&[by(4, 1)], 1, |b, it| {
                let v = b.load(t, &[it[0]]);
                b.store(t, &[it[0]], v);
            });
        });
    });
    let d = b.finish().unwrap();
    let r = simulate(&d, &platform(), &Bindings::new());
    assert!(matches!(r, Err(SimError::ZeroTripLoop(_))), "{r:?}");
}

#[test]
fn nan_in_priority_queue_does_not_panic() {
    // 0/0 pushes a NaN into the queue; popping must use a total order
    // instead of panicking in the comparator.
    let mut b = DesignBuilder::new("pq_nan");
    let out = b.off_chip("out", DType::F32, &[5]);
    b.sequential(|b| {
        let q = b.priority_queue("q", DType::F32, 8);
        let ot = b.bram("ot", DType::F32, &[5]);
        b.pipe(&[by(4, 1)], 1, |b, it| {
            // Pushes 0,1,2,3 — and one explicit NaN below.
            b.store(q, &[], it[0]);
        });
        b.pipe(&[by(1, 1)], 1, |b, _it| {
            let zero = b.constant(0.0, DType::F32);
            let nan = b.div(zero, zero);
            b.store(q, &[], nan);
        });
        b.pipe(&[by(5, 1)], 1, |b, it| {
            let v = b.load(q, &[]);
            b.store(ot, &[it[0]], v);
        });
        let z = b.index_const(0);
        b.tile_store(out, ot, &[z], &[5], 1);
    });
    let d = b.finish().unwrap();
    let r = simulate(&d, &platform(), &Bindings::new()).unwrap();
    // NaN's position in the pop order is a sign-bit artifact; the
    // invariant is that popping is panic-free, deterministic, and
    // loses no element: exactly one NaN and the finite set {0,1,2,3}.
    let popped = r.output("out").unwrap();
    let mut finite: Vec<f64> = popped.iter().copied().filter(|v| v.is_finite()).collect();
    finite.sort_by(f64::total_cmp);
    assert_eq!(finite, vec![0.0, 1.0, 2.0, 3.0], "popped {popped:?}");
    assert_eq!(popped.iter().filter(|v| v.is_nan()).count(), 1);
}

#[test]
fn negative_address_is_out_of_bounds() {
    let mut b = DesignBuilder::new("neg");
    let x = b.off_chip("x", DType::F32, &[8]);
    b.sequential(|b| {
        let t = b.bram("t", DType::F32, &[8]);
        let z = b.index_const(0);
        b.tile_load(x, t, &[z], &[8], 1);
        b.pipe(&[by(8, 1)], 1, |b, it| {
            let five = b.constant(5.0, DType::i32());
            let neg = b.sub(it[0], five);
            let v = b.load(t, &[neg]);
            b.store(t, &[it[0]], v);
        });
    });
    let d = b.finish().unwrap();
    let r = simulate(&d, &platform(), &Bindings::new().bind("x", vec![1.0; 8]));
    match r {
        Err(SimError::OutOfBounds { index, size, .. }) => {
            assert!(index < 0, "index {index}");
            assert_eq!(size, 8);
        }
        other => panic!("expected OutOfBounds, got {other:?}"),
    }
}

#[test]
fn store_out_of_bounds_is_reported() {
    let mut b = DesignBuilder::new("oob_store");
    let x = b.off_chip("x", DType::F32, &[8]);
    b.sequential(|b| {
        let t = b.bram("t", DType::F32, &[8]);
        let z = b.index_const(0);
        b.tile_load(x, t, &[z], &[8], 1);
        b.pipe(&[by(8, 1)], 1, |b, it| {
            let v = b.load(t, &[it[0]]);
            // Address = data value (100.0): far out of range for a store.
            b.store(t, &[v], v);
        });
    });
    let d = b.finish().unwrap();
    let r = simulate(&d, &platform(), &Bindings::new().bind("x", vec![100.0; 8]));
    assert!(matches!(r, Err(SimError::OutOfBounds { .. })), "{r:?}");
}

#[test]
fn rank_mismatch_in_parsed_design_is_structured() {
    // `from_text` skips builder validation, so the simulator must catch
    // rank mismatches itself. Corrupt a serialized design: drop one
    // address dimension from every 2-D load.
    let (r, c) = (4u64, 4u64);
    let mut b = DesignBuilder::new("rank");
    let x = b.off_chip("x", DType::F32, &[r, c]);
    b.sequential(|b| {
        let t = b.bram("t", DType::F32, &[r, c]);
        let z = b.index_const(0);
        b.tile_load(x, t, &[z, z], &[r, c], 1);
        b.pipe(&[by(r, 1), by(c, 1)], 1, |b, it| {
            let v = b.load(t, &[it[0], it[1]]);
            b.store(t, &[it[0], it[1]], v);
        });
    });
    let d = b.finish().unwrap();
    let text = dhdl_core::serialize::to_text(&d);
    // Addresses serialize as `addr=i,j`; truncate to rank 1.
    let corrupt: String = text
        .lines()
        .map(|l| {
            if let Some(pos) = l.find("addr=") {
                let (head, rest) = l.split_at(pos + 5);
                let (addr, tail) = rest.split_once(' ').unwrap_or((rest, ""));
                let first = addr.split(',').next().unwrap_or(addr);
                format!("{head}{first} {tail}\n")
            } else {
                format!("{l}\n")
            }
        })
        .collect();
    let bad = dhdl_core::serialize::from_text(&corrupt).unwrap();
    let res = simulate(&bad, &platform(), &Bindings::new());
    assert!(
        matches!(res, Err(SimError::Malformed(_))),
        "expected structured rank error, got {res:?}"
    );
}

#[test]
fn sim_error_display_is_descriptive() {
    let e = SimError::UnknownBinding("foo".into());
    assert!(e.to_string().contains("foo"));
    let e = SimError::ZeroTripLoop(dhdl_core::NodeId::from_raw(3));
    assert!(e.to_string().contains("zero-trip"));
}

#[test]
fn fold_design_still_simulates_after_hardening() {
    // Regression guard: the new checks must not reject legal designs.
    let mut b = DesignBuilder::new("fold_ok");
    let out = b.off_chip("out", DType::F32, &[1]);
    b.sequential(|b| {
        let acc = b.reg("acc", DType::F32, 0.0);
        b.outer_fold(true, &[by(16, 4)], 1, acc, ReduceOp::Add, |b, _iters| {
            let partial = b.reg("partial", DType::F32, 0.0);
            b.pipe_reduce(&[by(4, 1)], 1, partial, ReduceOp::Add, |b, it| {
                let one = b.constant(1.0, DType::F32);
                b.add(it[0], one)
            });
            partial
        });
        let ot = b.bram("ot", DType::F32, &[1]);
        b.pipe(&[by(1, 1)], 1, |b, it| {
            let a = b.load_reg(acc);
            b.store(ot, &[it[0]], a);
        });
        let z = b.index_const(0);
        b.tile_store(out, ot, &[z], &[1], 1);
    });
    let d = b.finish().unwrap();
    let r = simulate(&d, &platform(), &Bindings::new()).unwrap();
    // Each wave sums (0+1)+(1+1)+(2+1)+(3+1) = 10; 4 waves = 40.
    assert_eq!(r.output("out").unwrap()[0], 40.0);
}
