//! 2-D single-channel convolution with line-buffer tiling (DNN frontier).
//!
//! A post-paper workload: accelerator-generation evaluation moved from the
//! 2016 kernel suite to DNN layers (AutoDNNchip, HybridDNN), and a direct
//! convolution is the canonical first step. The DHDL formulation tiles the
//! output rows and loads a *line buffer* of `th + KH - 1` input rows per
//! tile, so vertically adjacent sliding windows reuse the same on-chip
//! rows; output channels run under a tile-parallel outer controller and
//! the kernel window accumulates gemm-style into the output tile.
//!
//! `out[c, i, j] = Σ_{u,v} img[i+u, j+v] · wt[c, u, v]` (valid padding).

use dhdl_core::{by, DType, Design, DesignBuilder, ParamSpace, ParamValues, PrimOp, Result};

use crate::{data, Arrays, Benchmark, WorkProfile};

/// Fixed kernel height/width: the suite convention is a 3×3 window (the
/// CPU kernel in `dhdl-cpu` infers dimensions from array lengths under
/// this convention, like kmeans' fixed k = 8).
pub const KERNEL: u64 = 3;

/// The conv2d benchmark on a square `size`×`size` image with `cout`
/// output channels and a fixed 3×3 kernel.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Conv2d {
    /// Image height and width (square).
    pub size: u64,
    /// Number of output channels.
    pub cout: u64,
}

impl Default for Conv2d {
    /// The scaled default: a 66×66 image (64×64 valid output) with 16
    /// output channels.
    fn default() -> Self {
        Conv2d { size: 66, cout: 16 }
    }
}

impl Conv2d {
    /// A conv2d over a `size`×`size` image with `cout` output channels.
    ///
    /// # Panics
    ///
    /// Panics if the image is smaller than the 3×3 kernel or `cout` is 0.
    pub fn new(size: u64, cout: u64) -> Self {
        assert!(size >= KERNEL, "image must cover the kernel window");
        assert!(cout > 0, "need at least one output channel");
        Conv2d { size, cout }
    }

    /// Valid-padding output height/width.
    pub fn out_size(&self) -> u64 {
        self.size - KERNEL + 1
    }
}

impl Benchmark for Conv2d {
    fn name(&self) -> &'static str {
        "conv2d"
    }

    fn description(&self) -> &'static str {
        "2-D convolution with line-buffer tiles"
    }

    fn paper_dataset(&self) -> &'static str {
        "- (post-paper DNN workload)"
    }

    fn dataset_desc(&self) -> String {
        format!("H=W={} K={} C={}", self.size, KERNEL, self.cout)
    }

    fn param_space(&self) -> ParamSpace {
        let hout = self.out_size();
        let mut s = ParamSpace::new();
        s.tile("th", hout, 2, 32.min(hout));
        s.par("pc", self.cout, 16);
        s.par("pj", self.out_size(), 16);
        s.toggle("mp");
        s.toggle("mpc");
        s
    }

    fn default_params(&self) -> ParamValues {
        let hout = self.out_size();
        let th = if hout.is_multiple_of(8) { 8 } else { 1 };
        ParamValues::new()
            .with("th", th)
            .with("pc", 1)
            .with("pj", if hout.is_multiple_of(2) { 2 } else { 1 })
            .with("mp", 1)
            .with("mpc", 0)
    }

    fn build(&self, p: &ParamValues) -> Result<Design> {
        let (h, w, kh, kw, cout) = (self.size, self.size, KERNEL, KERNEL, self.cout);
        let (hout, wout) = (self.out_size(), self.out_size());
        let th = p.dim("th")?;
        let pc = p.par("pc")?;
        let pj = p.par("pj")?;
        let mp = p.toggle("mp")?;
        let mpc = p.toggle("mpc")?;
        // Line buffer: the th output rows of one tile read th + KH - 1
        // consecutive input rows; the tile load's stride (th) is smaller
        // than its extent, so adjacent tiles re-read the KH - 1 halo rows.
        let rows = th + kh - 1;
        let mut b = DesignBuilder::new("conv2d");
        let img = b.off_chip("img", DType::F32, &[h, w]);
        let wts = b.off_chip("wt", DType::F32, &[cout, kh, kw]);
        let out = b.off_chip("out", DType::F32, &[cout, hout, wout]);
        b.sequential(|b| {
            let wt = b.bram("wT", DType::F32, &[cout, kh, kw]);
            let z0 = b.index_const(0);
            b.tile_load(wts, wt, &[z0, z0, z0], &[cout, kh, kw], 1);
            b.outer(mp, &[by(hout, th)], 1, |b, iters| {
                let i = iters[0];
                let imt = b.bram("imT", DType::F32, &[rows, w]);
                let ot = b.bram("oT", DType::F32, &[cout, th, wout]);
                let z = b.index_const(0);
                b.tile_load(img, imt, &[i, z], &[rows, w], pj);
                // Output channels are independent: a tile-parallel outer
                // controller replicates the window pipe pc ways.
                b.outer(mpc, &[by(cout, 1)], pc, |b, cc| {
                    let c = cc[0];
                    // oT[c,ii,j] accumulates over the (u,v) kernel window
                    // (middle counters); the first window tap resets the
                    // running value. Lanes vectorize over j (innermost).
                    b.pipe(
                        &[by(th, 1), by(kh, 1), by(kw, 1), by(wout, 1)],
                        pj,
                        |b, it| {
                            let (ii, u, v, j) = (it[0], it[1], it[2], it[3]);
                            let row = b.prim(PrimOp::Add, &[ii, u]);
                            let col = b.prim(PrimOp::Add, &[j, v]);
                            let iv = b.load(imt, &[row, col]);
                            let wv = b.load(wt, &[c, u, v]);
                            let prod = b.mul(iv, wv);
                            let zi = b.index_const(0);
                            let fu = b.eq(u, zi);
                            let fv = b.eq(v, zi);
                            let first = b.and(fu, fv);
                            let zero = b.constant(0.0, DType::F32);
                            let prev_raw = b.load(ot, &[c, ii, j]);
                            let prev = b.mux(first, zero, prev_raw);
                            let sum = b.add(prev, prod);
                            b.store(ot, &[c, ii, j], sum);
                        },
                    );
                });
                b.tile_store(out, ot, &[z, i, z], &[cout, th, wout], pj);
            });
        });
        b.finish()
    }

    fn inputs(&self) -> Arrays {
        let mut arrays = Arrays::new();
        arrays.insert(
            "img".into(),
            data::uniform(321, (self.size * self.size) as usize, -1.0, 1.0),
        );
        arrays.insert(
            "wt".into(),
            data::uniform(322, (self.cout * KERNEL * KERNEL) as usize, -1.0, 1.0),
        );
        arrays
    }

    fn reference(&self) -> Arrays {
        let inputs = self.inputs();
        let (img, wts) = (&inputs["img"], &inputs["wt"]);
        let (w, kh, kw) = (self.size as usize, KERNEL as usize, KERNEL as usize);
        let (hout, wout) = (self.out_size() as usize, self.out_size() as usize);
        let cout = self.cout as usize;
        let mut out = vec![0.0f64; cout * hout * wout];
        // Mirror the accelerator's single-precision datapath per operation
        // (multiply, then accumulate over the window in (u, v) order).
        for c in 0..cout {
            for i in 0..hout {
                for j in 0..wout {
                    let mut acc = 0.0f64;
                    for u in 0..kh {
                        for v in 0..kw {
                            let prod =
                                (img[(i + u) * w + (j + v)] * wts[(c * kh + u) * kw + v]) as f32;
                            acc = (acc + f64::from(prod)) as f32 as f64;
                        }
                    }
                    out[(c * hout + i) * wout + j] = acc;
                }
            }
        }
        let mut arrays = Arrays::new();
        arrays.insert("out".into(), out);
        arrays
    }

    fn work(&self) -> WorkProfile {
        let (hout, k, c) = (self.out_size() as f64, KERNEL as f64, self.cout as f64);
        let (h, w) = (self.size as f64, self.size as f64);
        WorkProfile {
            flops: 2.0 * c * hout * hout * k * k,
            bytes_read: 4.0 * (h * w + c * k * k),
            bytes_written: 4.0 * c * hout * hout,
            ..WorkProfile::default()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_space_and_params_are_legal() {
        let c = Conv2d::default();
        let space = c.param_space();
        assert!(space.size() >= 8);
        assert!(space.is_legal(&c.default_params()));
    }

    #[test]
    fn small_instance_builds_for_all_toggles() {
        let c = Conv2d::new(10, 4);
        for (m1, m2) in [(0, 0), (0, 1), (1, 0), (1, 1)] {
            let p = ParamValues::new()
                .with("th", 4)
                .with("pc", 2)
                .with("pj", 2)
                .with("mp", m1)
                .with("mpc", m2);
            assert!(c.build(&p).is_ok(), "mp={m1} mpc={m2}");
        }
    }

    #[test]
    fn reference_identity_kernel_crops_image() {
        // A kernel with a single centre tap copies the image interior.
        let c = Conv2d::new(6, 1);
        let inputs = c.inputs();
        let img = &inputs["img"];
        let mut delta = [0.0f64; 9];
        delta[4] = 1.0; // centre of the 3x3 window
                        // Recompute with the same per-op algorithm shape.
        let mut out = [0.0f64; 16];
        for i in 0..4 {
            for j in 0..4 {
                let mut acc = 0.0f64;
                for u in 0..3 {
                    for v in 0..3 {
                        let prod = (img[(i + u) * 6 + (j + v)] * delta[u * 3 + v]) as f32;
                        acc = (acc + f64::from(prod)) as f32 as f64;
                    }
                }
                out[i * 4 + j] = acc;
            }
        }
        for i in 0..4 {
            for j in 0..4 {
                assert_eq!(out[i * 4 + j], img[(i + 1) * 6 + (j + 1)]);
            }
        }
    }
}
