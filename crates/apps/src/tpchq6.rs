//! TPC-H Query 6 (Table II: N = 18,720,000).
//!
//! A data-analytics benchmark that "streams through a collection of
//! records and performs a reduction on records filtered by a condition".
//! On the FPGA the data-dependent branches become multiplexers that never
//! stall the dataflow pipeline, which is why the accelerator beats the CPU
//! despite being memory-bound (§V-D).

use dhdl_core::{by, DType, Design, DesignBuilder, ParamSpace, ParamValues, ReduceOp, Result};
use dhdl_hls::{HlsKernel, HlsLoop, HlsOp, HlsOpKind};

use crate::{data, Arrays, Benchmark, WorkProfile};

/// Query constants (the TPC-H Q6 predicate, with ship dates encoded as
/// days since 1970-01-01 so they remain exactly representable in f32).
const DATE_LO: f64 = 8766.0; // 1994-01-01
const DATE_HI: f64 = 9131.0; // 1995-01-01
const DISC_LO: f64 = 0.05;
const DISC_HI: f64 = 0.07;
const QTY_LIMIT: f64 = 24.0;

/// The TPC-H Q6 benchmark at a configurable record count.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TpchQ6 {
    /// Number of lineitem records.
    pub n: u64,
}

impl Default for TpchQ6 {
    /// The scaled default: 98,304 records (paper: 18,720,000, scale
    /// ≈ 1/190).
    fn default() -> Self {
        TpchQ6 { n: 98_304 }
    }
}

impl TpchQ6 {
    /// A Q6 instance over `n` records.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero.
    pub fn new(n: u64) -> Self {
        assert!(n > 0, "record count must be nonzero");
        TpchQ6 { n }
    }

    fn predicate(date: f64, disc: f64, qty: f64) -> bool {
        (DATE_LO..DATE_HI).contains(&date) && (DISC_LO..=DISC_HI).contains(&disc) && qty < QTY_LIMIT
    }
}

impl Benchmark for TpchQ6 {
    fn name(&self) -> &'static str {
        "tpchq6"
    }

    fn description(&self) -> &'static str {
        "TPC-H Query 6"
    }

    fn paper_dataset(&self) -> &'static str {
        "N=18,720,000"
    }

    fn dataset_desc(&self) -> String {
        format!("N={}", self.n)
    }

    fn param_space(&self) -> ParamSpace {
        let mut s = ParamSpace::new();
        s.tile("ts", self.n, 96, 9_600.min(self.n));
        s.par("ip", 96, 32);
        s.par("op", 16, 8);
        s.toggle("mp");
        s
    }

    fn default_params(&self) -> ParamValues {
        ParamValues::new()
            .with(
                "ts",
                if self.n.is_multiple_of(1536) {
                    1536
                } else {
                    96
                },
            )
            .with("ip", 8)
            .with("op", 1)
            .with("mp", 1)
    }

    fn build(&self, p: &ParamValues) -> Result<Design> {
        let n = self.n;
        let ts = p.dim("ts")?;
        let ip = p.par("ip")?;
        let op = p.par("op")?;
        let mp = p.toggle("mp")?;
        let mut b = DesignBuilder::new("tpchq6");
        let price = b.off_chip("price", DType::F32, &[n]);
        let disc = b.off_chip("discount", DType::F32, &[n]);
        let qty = b.off_chip("quantity", DType::F32, &[n]);
        let date = b.off_chip("shipdate", DType::F32, &[n]);
        let out = b.off_chip("revenue", DType::F32, &[1]);
        b.sequential(|b| {
            let acc = b.reg("acc", DType::F32, 0.0);
            b.outer_fold(mp, &[by(n, ts)], op, acc, ReduceOp::Add, |b, iters| {
                let i = iters[0];
                let pt = b.bram("priceT", DType::F32, &[ts]);
                let dt = b.bram("discT", DType::F32, &[ts]);
                let qt = b.bram("qtyT", DType::F32, &[ts]);
                let st = b.bram("dateT", DType::F32, &[ts]);
                let partial = b.reg("partial", DType::F32, 0.0);
                b.parallel(|b| {
                    b.tile_load(price, pt, &[i], &[ts], ip);
                    b.tile_load(disc, dt, &[i], &[ts], ip);
                    b.tile_load(qty, qt, &[i], &[ts], ip);
                    b.tile_load(date, st, &[i], &[ts], ip);
                });
                b.pipe_reduce(&[by(ts, 1)], ip, partial, ReduceOp::Add, |b, it| {
                    let pv = b.load(pt, &[it[0]]);
                    let dv = b.load(dt, &[it[0]]);
                    let qv = b.load(qt, &[it[0]]);
                    let sv = b.load(st, &[it[0]]);
                    let d_lo = b.constant(DATE_LO, DType::F32);
                    let d_hi = b.constant(DATE_HI, DType::F32);
                    let x_lo = b.constant(DISC_LO, DType::F32);
                    let x_hi = b.constant(DISC_HI, DType::F32);
                    let q_lim = b.constant(QTY_LIMIT, DType::F32);
                    let c1 = b.prim(dhdl_core::PrimOp::Ge, &[sv, d_lo]);
                    let c2 = b.lt(sv, d_hi);
                    let c3 = b.prim(dhdl_core::PrimOp::Ge, &[dv, x_lo]);
                    let c4 = b.le(dv, x_hi);
                    let c5 = b.lt(qv, q_lim);
                    let c12 = b.and(c1, c2);
                    let c34 = b.and(c3, c4);
                    let c1234 = b.and(c12, c34);
                    let cond = b.and(c1234, c5);
                    let rev = b.mul(pv, dv);
                    let zero = b.constant(0.0, DType::F32);
                    b.mux(cond, rev, zero)
                });
                partial
            });
            let ot = b.bram("outT", DType::F32, &[1]);
            b.pipe(&[by(1, 1)], 1, |b, it| {
                let v = b.load_reg(acc);
                b.store(ot, &[it[0]], v);
            });
            let z = b.index_const(0);
            b.tile_store(out, ot, &[z], &[1], 1);
        });
        b.finish()
    }

    fn inputs(&self) -> Arrays {
        let n = self.n as usize;
        let mut m = Arrays::new();
        m.insert("price".into(), data::uniform(401, n, 100.0, 10_000.0));
        m.insert("discount".into(), data::uniform(402, n, 0.0, 0.1));
        m.insert("quantity".into(), data::ints(403, n, 1, 50));
        m.insert("shipdate".into(), data::ints(404, n, 8_401, 9_862));
        m
    }

    // Lane `i` is gathered from four input arrays at once; an iterator
    // chain would obscure the predicate, so keep the indexed loop.
    #[allow(clippy::needless_range_loop)]
    fn reference(&self) -> Arrays {
        let inputs = self.inputs();
        let mut revenue = 0.0f64;
        for i in 0..self.n as usize {
            if Self::predicate(
                inputs["shipdate"][i],
                inputs["discount"][i],
                inputs["quantity"][i],
            ) {
                revenue += inputs["price"][i] * inputs["discount"][i];
            }
        }
        let mut m = Arrays::new();
        m.insert("revenue".into(), vec![revenue]);
        m
    }

    fn work(&self) -> WorkProfile {
        let n = self.n as f64;
        WorkProfile {
            flops: 8.0 * n, // five compares, ands, one multiply-add
            bytes_read: 16.0 * n,
            bytes_written: 4.0,
            branchy: true,
            ..WorkProfile::default()
        }
    }

    fn hls_kernel(&self) -> Option<HlsKernel> {
        let body = vec![
            HlsOp::new(HlsOpKind::Load, &[]),
            HlsOp::new(HlsOpKind::Load, &[]),
            HlsOp::new(HlsOpKind::Load, &[]),
            HlsOp::new(HlsOpKind::Load, &[]),
            HlsOp::new(HlsOpKind::Cmp, &[3]),
            HlsOp::new(HlsOpKind::Cmp, &[1]),
            HlsOp::new(HlsOpKind::Cmp, &[2]),
            HlsOp::new(HlsOpKind::Mul, &[0, 1]),
            HlsOp::new(HlsOpKind::Cmp, &[4, 5]),
            HlsOp::new(HlsOpKind::Add, &[7, 8]).accumulating(),
        ];
        Some(
            HlsKernel::new("tpchq6")
                .with_loop(HlsLoop::new("L1", self.n).with_body(body).pipelined(true)),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn predicate_filters() {
        assert!(TpchQ6::predicate(8_900.0, 0.06, 10.0));
        assert!(!TpchQ6::predicate(8_500.0, 0.06, 10.0)); // too early
        assert!(!TpchQ6::predicate(8_900.0, 0.2, 10.0)); // discount high
        assert!(!TpchQ6::predicate(8_900.0, 0.06, 30.0)); // qty high
    }

    #[test]
    fn reference_is_selective() {
        let q = TpchQ6::new(960);
        let rev = q.reference()["revenue"][0];
        // Some but not all records match.
        assert!(rev > 0.0);
        let total: f64 = {
            let i = q.inputs();
            i["price"]
                .iter()
                .zip(&i["discount"])
                .map(|(p, d)| p * d)
                .sum()
        };
        assert!(rev < total);
    }

    #[test]
    fn design_contains_muxes_not_branches() {
        use dhdl_core::NodeKind;
        let q = TpchQ6::new(960);
        let d = q
            .build(
                &ParamValues::new()
                    .with("ts", 96)
                    .with("ip", 4)
                    .with("op", 1)
                    .with("mp", 1),
            )
            .unwrap();
        let muxes = d.find_all(|n| matches!(n.kind, NodeKind::Mux { .. }));
        assert!(!muxes.is_empty());
    }
}
