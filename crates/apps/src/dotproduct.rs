//! Vector dot product (Table II: dataset 187,200,000 elements).
//!
//! A memory-bound streaming benchmark: tiles of both vectors are loaded in
//! parallel, multiplied and summed through a reduction tree, and partial
//! sums fold into a global accumulator across tiles (§V-C1: "Peak
//! execution time is reached by balancing tile loads and computation").

use dhdl_core::{by, DType, Design, DesignBuilder, ParamSpace, ParamValues, ReduceOp, Result};
use dhdl_hls::{HlsKernel, HlsLoop, HlsOp, HlsOpKind};

use crate::{data, Arrays, Benchmark, WorkProfile};

/// The dot-product benchmark at a configurable vector length.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DotProduct {
    /// Vector length.
    pub n: u64,
}

impl Default for DotProduct {
    /// The scaled default: 98,304 elements (paper: 187,200,000; scale
    /// ≈ 1/1900 — the kernel is linear in N so boundedness is preserved).
    fn default() -> Self {
        DotProduct { n: 98_304 }
    }
}

impl DotProduct {
    /// A dot product over vectors of length `n`.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero.
    pub fn new(n: u64) -> Self {
        assert!(n > 0, "vector length must be nonzero");
        DotProduct { n }
    }
}

impl Benchmark for DotProduct {
    fn name(&self) -> &'static str {
        "dotproduct"
    }

    fn description(&self) -> &'static str {
        "Vector dot product"
    }

    fn paper_dataset(&self) -> &'static str {
        "187,200,000"
    }

    fn dataset_desc(&self) -> String {
        format!("N={}", self.n)
    }

    fn param_space(&self) -> ParamSpace {
        let mut s = ParamSpace::new();
        s.tile("ts", self.n, 96, 9_600.min(self.n));
        s.par("ip", 96, 32); // inner pipe parallelization
        s.par("op", 16, 8); // outer (tile-level) parallelization
        s.toggle("mp");
        s
    }

    fn default_params(&self) -> ParamValues {
        ParamValues::new()
            .with(
                "ts",
                if self.n.is_multiple_of(1536) {
                    1536
                } else {
                    96
                },
            )
            .with("ip", 8)
            .with("op", 1)
            .with("mp", 1)
    }

    fn build(&self, p: &ParamValues) -> Result<Design> {
        let n = self.n;
        let ts = p.dim("ts")?;
        let ip = p.par("ip")?;
        let op = p.par("op")?;
        let mp = p.toggle("mp")?;
        let mut b = DesignBuilder::new("dotproduct");
        let va = b.off_chip("a", DType::F32, &[n]);
        let vb = b.off_chip("b", DType::F32, &[n]);
        let out = b.off_chip("out", DType::F32, &[1]);
        b.sequential(|b| {
            let acc = b.reg("acc", DType::F32, 0.0);
            b.outer_fold(mp, &[by(n, ts)], op, acc, ReduceOp::Add, |b, iters| {
                let i = iters[0];
                let at = b.bram("aT", DType::F32, &[ts]);
                let bt = b.bram("bT", DType::F32, &[ts]);
                let partial = b.reg("partial", DType::F32, 0.0);
                b.parallel(|b| {
                    b.tile_load(va, at, &[i], &[ts], ip);
                    b.tile_load(vb, bt, &[i], &[ts], ip);
                });
                b.pipe_reduce(&[by(ts, 1)], ip, partial, ReduceOp::Add, |b, it| {
                    let x = b.load(at, &[it[0]]);
                    let y = b.load(bt, &[it[0]]);
                    b.mul(x, y)
                });
                partial
            });
            let ot = b.bram("outT", DType::F32, &[1]);
            b.pipe(&[by(1, 1)], 1, |b, it| {
                let v = b.load_reg(acc);
                b.store(ot, &[it[0]], v);
            });
            let z = b.index_const(0);
            b.tile_store(out, ot, &[z], &[1], 1);
        });
        b.finish()
    }

    fn inputs(&self) -> Arrays {
        let n = self.n as usize;
        let mut m = Arrays::new();
        m.insert("a".into(), data::uniform(101, n, -1.0, 1.0));
        m.insert("b".into(), data::uniform(102, n, -1.0, 1.0));
        m
    }

    fn reference(&self) -> Arrays {
        let inputs = self.inputs();
        let dot: f64 = inputs["a"]
            .iter()
            .zip(&inputs["b"])
            .map(|(x, y)| x * y)
            .sum();
        let mut m = Arrays::new();
        m.insert("out".into(), vec![dot]);
        m
    }

    fn work(&self) -> WorkProfile {
        let n = self.n as f64;
        WorkProfile {
            flops: 2.0 * n,
            bytes_read: 8.0 * n,
            bytes_written: 4.0,
            ..WorkProfile::default()
        }
    }

    fn hls_kernel(&self) -> Option<HlsKernel> {
        let body = vec![
            HlsOp::new(HlsOpKind::Load, &[]),
            HlsOp::new(HlsOpKind::Load, &[]),
            HlsOp::new(HlsOpKind::Mul, &[0, 1]),
            HlsOp::new(HlsOpKind::Add, &[2]).accumulating(),
        ];
        Some(
            HlsKernel::new("dotproduct")
                .with_loop(HlsLoop::new("L1", self.n).with_body(body).pipelined(true)),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn space_prunes_to_divisors() {
        let b = DotProduct::default();
        let space = b.param_space();
        for def in space.defs() {
            for v in def.kind.legal_values() {
                if def.name == "ts" {
                    assert_eq!(b.n % v, 0, "tile {v} does not divide N");
                }
            }
        }
    }

    #[test]
    fn builds_across_param_combinations() {
        let b = DotProduct::new(768);
        for ts in [96, 384] {
            for mp in [0, 1] {
                let p = ParamValues::new()
                    .with("ts", ts)
                    .with("ip", 4)
                    .with("op", 2)
                    .with("mp", mp);
                assert!(b.build(&p).is_ok(), "ts={ts} mp={mp}");
            }
        }
    }

    #[test]
    fn reference_matches_manual_sum() {
        let b = DotProduct::new(96);
        let r = b.reference();
        assert_eq!(r["out"].len(), 1);
        assert!(r["out"][0].is_finite());
    }
}
