//! Attention-shaped GEMM–softmax–GEMM pipeline (DNN frontier).
//!
//! The transformer building block as a DHDL metaprogram: scores
//! `S = Q·Kᵀ / √d`, a numerically stable row softmax in the log domain
//! (`p = exp((s − m)/√d − ln Σ exp((s − m)/√d))`), and the value
//! contraction `O = P·V`. Q is tiled by rows with K and V resident on
//! chip; the softmax runs as a per-row controller nest (max-reduce,
//! exp-sum-reduce, log, normalize), so the design exercises the exp/ln
//! datapaths and a MetaPipe nest three controllers deep — well outside
//! the Table III calibration set.

use dhdl_core::{by, DType, Design, DesignBuilder, ParamSpace, ParamValues, ReduceOp, Result};

use crate::{data, Arrays, Benchmark, WorkProfile};

/// Fixed head dimension: the suite convention is d = 32 (the CPU kernel
/// in `dhdl-cpu` infers `n` from array lengths under this convention).
pub const HEAD_DIM: u64 = 32;

/// The attention benchmark over `n` rows with the fixed head dimension.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Attention {
    /// Sequence length (rows of Q, K, V).
    pub n: u64,
}

impl Default for Attention {
    /// The scaled default: a 128-row sequence at head dimension 32.
    fn default() -> Self {
        Attention { n: 128 }
    }
}

impl Attention {
    /// An attention block over an `n`-row sequence.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero.
    pub fn new(n: u64) -> Self {
        assert!(n > 0, "sequence must be nonempty");
        Attention { n }
    }
}

impl Benchmark for Attention {
    fn name(&self) -> &'static str {
        "attention"
    }

    fn description(&self) -> &'static str {
        "GEMM-softmax-GEMM attention pipeline"
    }

    fn paper_dataset(&self) -> &'static str {
        "- (post-paper DNN workload)"
    }

    fn dataset_desc(&self) -> String {
        format!("N={} d={}", self.n, HEAD_DIM)
    }

    fn param_space(&self) -> ParamSpace {
        let mut s = ParamSpace::new();
        s.tile("tr", self.n, 2, 32.min(self.n));
        s.par("pa", HEAD_DIM, 8);
        s.par("lp", HEAD_DIM, 4);
        s.toggle("mp");
        s.toggle("mps");
        s
    }

    fn default_params(&self) -> ParamValues {
        let tr = if self.n.is_multiple_of(8) { 8 } else { 1 };
        ParamValues::new()
            .with("tr", tr)
            .with("pa", 2)
            .with("lp", 2)
            .with("mp", 1)
            .with("mps", 0)
    }

    fn build(&self, p: &ParamValues) -> Result<Design> {
        let (n, d) = (self.n, HEAD_DIM);
        let tr = p.dim("tr")?;
        let pa = p.par("pa")?;
        let lp = p.par("lp")?;
        let mp = p.toggle("mp")?;
        let mps = p.toggle("mps")?;
        let scale = 1.0 / (d as f64).sqrt();
        let mut b = DesignBuilder::new("attention");
        let q = b.off_chip("q", DType::F32, &[n, d]);
        let k = b.off_chip("k", DType::F32, &[n, d]);
        let v = b.off_chip("v", DType::F32, &[n, d]);
        let o = b.off_chip("out", DType::F32, &[n, d]);
        b.sequential(|b| {
            let kt = b.bram("kT", DType::F32, &[n, d]);
            let vt = b.bram("vT", DType::F32, &[n, d]);
            let z0 = b.index_const(0);
            b.parallel(|b| {
                b.tile_load(k, kt, &[z0, z0], &[n, d], lp);
                b.tile_load(v, vt, &[z0, z0], &[n, d], lp);
            });
            b.outer(mp, &[by(n, tr)], 1, |b, iters| {
                let i = iters[0];
                let qt = b.bram("qT", DType::F32, &[tr, d]);
                let st = b.bram("sT", DType::F32, &[tr, n]);
                let ot = b.bram("oT", DType::F32, &[tr, d]);
                let z = b.index_const(0);
                b.tile_load(q, qt, &[i, z], &[tr, d], lp);
                // S = Q·Kᵀ: sT[ii,r] accumulates over the middle j
                // counter; lanes vectorize over r (innermost).
                b.pipe(&[by(tr, 1), by(d, 1), by(n, 1)], pa, |b, it| {
                    let (ii, j, r) = (it[0], it[1], it[2]);
                    let qv = b.load(qt, &[ii, j]);
                    let kv = b.load(kt, &[r, j]);
                    let prod = b.mul(qv, kv);
                    let zi = b.index_const(0);
                    let first = b.eq(j, zi);
                    let zero = b.constant(0.0, DType::F32);
                    let prev_raw = b.load(st, &[ii, r]);
                    let prev = b.mux(first, zero, prev_raw);
                    let sum = b.add(prev, prod);
                    b.store(st, &[ii, r], sum);
                });
                // Row softmax in the log domain, one controller execution
                // per score row.
                b.outer(mps, &[by(tr, 1)], 1, |b, rr| {
                    let ii = rr[0];
                    let mreg = b.reg("rowMax", DType::F32, 0.0);
                    b.pipe_reduce(&[by(n, 1)], pa, mreg, ReduceOp::Max, |b, it| {
                        b.load(st, &[ii, it[0]])
                    });
                    let sreg = b.reg("rowSum", DType::F32, 0.0);
                    b.pipe_reduce(&[by(n, 1)], pa, sreg, ReduceOp::Add, |b, it| {
                        let s = b.load(st, &[ii, it[0]]);
                        let m = b.load_reg(mreg);
                        let dlt = b.sub(s, m);
                        let c = b.constant(scale, DType::F32);
                        let sc = b.mul(dlt, c);
                        b.exp(sc)
                    });
                    let lreg = b.reg("rowLse", DType::F32, 0.0);
                    b.pipe(&[by(1, 1)], 1, |b, _it| {
                        let s = b.load_reg(sreg);
                        let l = b.ln(s);
                        b.store_reg(lreg, l);
                    });
                    b.pipe(&[by(n, 1)], pa, |b, it| {
                        let s = b.load(st, &[ii, it[0]]);
                        let m = b.load_reg(mreg);
                        let dlt = b.sub(s, m);
                        let c = b.constant(scale, DType::F32);
                        let sc = b.mul(dlt, c);
                        let l = b.load_reg(lreg);
                        let e = b.sub(sc, l);
                        let p = b.exp(e);
                        b.store(st, &[ii, it[0]], p);
                    });
                });
                // O = P·V: oT[ii,jd] accumulates over the middle r
                // counter; lanes vectorize over jd (innermost).
                b.pipe(&[by(tr, 1), by(n, 1), by(d, 1)], pa, |b, it| {
                    let (ii, r, jd) = (it[0], it[1], it[2]);
                    let pv = b.load(st, &[ii, r]);
                    let vv = b.load(vt, &[r, jd]);
                    let prod = b.mul(pv, vv);
                    let zi = b.index_const(0);
                    let first = b.eq(r, zi);
                    let zero = b.constant(0.0, DType::F32);
                    let prev_raw = b.load(ot, &[ii, jd]);
                    let prev = b.mux(first, zero, prev_raw);
                    let sum = b.add(prev, prod);
                    b.store(ot, &[ii, jd], sum);
                });
                b.tile_store(o, ot, &[i, z], &[tr, d], lp);
            });
        });
        b.finish()
    }

    fn inputs(&self) -> Arrays {
        let len = (self.n * HEAD_DIM) as usize;
        let mut arrays = Arrays::new();
        arrays.insert("q".into(), data::uniform(311, len, -1.0, 1.0));
        arrays.insert("k".into(), data::uniform(312, len, -1.0, 1.0));
        arrays.insert("v".into(), data::uniform(313, len, -1.0, 1.0));
        arrays
    }

    fn reference(&self) -> Arrays {
        let inputs = self.inputs();
        let (q, k, v) = (&inputs["q"], &inputs["k"], &inputs["v"]);
        let (n, d) = (self.n as usize, HEAD_DIM as usize);
        let scale = f64::from((1.0 / (d as f64).sqrt()) as f32);
        let mut out = vec![0.0f64; n * d];
        let mut s = vec![0.0f64; n];
        // Mirror the accelerator's single-precision datapath: every
        // primitive result is rounded to f32, in the same order the
        // design's pipes evaluate (scores over j, softmax over r in the
        // log domain, values over r).
        for i in 0..n {
            for (r, sr) in s.iter_mut().enumerate() {
                let mut acc = 0.0f64;
                for j in 0..d {
                    let prod = (q[i * d + j] * k[r * d + j]) as f32;
                    acc = (acc + f64::from(prod)) as f32 as f64;
                }
                *sr = acc;
            }
            let mut m = f64::NEG_INFINITY;
            for &sr in &s {
                m = m.max(sr) as f32 as f64;
            }
            let mut sum = 0.0f64;
            for &sr in &s {
                let dlt = (sr - m) as f32 as f64;
                let sc = (dlt * scale) as f32 as f64;
                let e = sc.exp() as f32 as f64;
                sum = (sum + e) as f32 as f64;
            }
            let lse = sum.ln() as f32 as f64;
            for sr in s.iter_mut() {
                let dlt = (*sr - m) as f32 as f64;
                let sc = (dlt * scale) as f32 as f64;
                let e = (sc - lse) as f32 as f64;
                *sr = e.exp() as f32 as f64;
            }
            for jd in 0..d {
                let mut acc = 0.0f64;
                for (r, &pr) in s.iter().enumerate() {
                    let prod = (pr * v[r * d + jd]) as f32;
                    acc = (acc + f64::from(prod)) as f32 as f64;
                }
                out[i * d + jd] = acc;
            }
        }
        let mut arrays = Arrays::new();
        arrays.insert("out".into(), out);
        arrays
    }

    fn work(&self) -> WorkProfile {
        let (n, d) = (self.n as f64, HEAD_DIM as f64);
        WorkProfile {
            flops: 4.0 * n * n * d + 5.0 * n * n,
            exps: 2.0 * n * n,
            lns: n,
            bytes_read: 4.0 * 3.0 * n * d,
            bytes_written: 4.0 * n * d,
            ..WorkProfile::default()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_space_and_params_are_legal() {
        let a = Attention::default();
        let space = a.param_space();
        assert!(space.size() >= 8);
        assert!(space.is_legal(&a.default_params()));
    }

    #[test]
    fn small_instance_builds_for_all_toggles() {
        let a = Attention::new(8);
        for (m1, m2) in [(0, 0), (0, 1), (1, 0), (1, 1)] {
            let p = ParamValues::new()
                .with("tr", 4)
                .with("pa", 2)
                .with("lp", 1)
                .with("mp", m1)
                .with("mps", m2);
            assert!(a.build(&p).is_ok(), "mp={m1} mps={m2}");
        }
    }

    #[test]
    fn reference_rows_are_convex_combinations() {
        // Each output row is a softmax-weighted average of V's rows, so
        // it must lie inside V's per-column bounds.
        let a = Attention::new(8);
        let inputs = a.inputs();
        let v = &inputs["v"];
        let out = &a.reference()["out"];
        let d = HEAD_DIM as usize;
        for col in 0..d {
            let (mut lo, mut hi) = (f64::INFINITY, f64::NEG_INFINITY);
            for r in 0..8 {
                lo = lo.min(v[r * d + col]);
                hi = hi.max(v[r * d + col]);
            }
            for i in 0..8 {
                let x = out[i * d + col];
                assert!(x >= lo - 1e-5 && x <= hi + 1e-5, "col {col} row {i}: {x}");
            }
        }
    }
}
