//! Black-Scholes-Merton option pricing (Table II: N = 9,995,328).
//!
//! A financial-analytics benchmark whose core kernel "is amenable to deep
//! pipelining": the FPGA exploits far more instruction-level parallelism
//! than a CPU through its long dataflow pipeline, producing the paper's
//! largest speedup (16.7×, §V-D). The kernel streams through multiple
//! large arrays and performs complex floating point computation per
//! element, including `exp`, `ln`, `sqrt` and divides.

use dhdl_core::{by, DType, Design, DesignBuilder, NodeId, ParamSpace, ParamValues, Result};
use dhdl_hls::{HlsKernel, HlsLoop, HlsOp, HlsOpKind};

use crate::{data, Arrays, Benchmark, WorkProfile};

const INV_SQRT_2PI: f64 = 0.398_942_280_401_432_7;
const CND_A1: f64 = 0.319_381_530;
const CND_A2: f64 = -0.356_563_782;
const CND_A3: f64 = 1.781_477_937;
const CND_A4: f64 = -1.821_255_978;
const CND_A5: f64 = 1.330_274_429;
const CND_K: f64 = 0.231_641_9;

/// The Black-Scholes benchmark at a configurable option count.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BlackScholes {
    /// Number of options priced.
    pub n: u64,
}

impl Default for BlackScholes {
    /// The scaled default: 49,152 options (paper: 9,995,328, scale ≈ 1/200).
    fn default() -> Self {
        BlackScholes { n: 49_152 }
    }
}

impl BlackScholes {
    /// A Black-Scholes instance pricing `n` options.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero.
    pub fn new(n: u64) -> Self {
        assert!(n > 0, "option count must be nonzero");
        BlackScholes { n }
    }

    /// Scalar reference implementation of one option price.
    pub fn price_one(s: f64, k: f64, r: f64, v: f64, t: f64, is_put: bool) -> f64 {
        fn cnd(d: f64) -> f64 {
            let x = d.abs();
            let kk = 1.0 / (1.0 + CND_K * x);
            let poly = kk * (CND_A1 + kk * (CND_A2 + kk * (CND_A3 + kk * (CND_A4 + kk * CND_A5))));
            let n = 1.0 - INV_SQRT_2PI * (-x * x / 2.0).exp() * poly;
            if d < 0.0 {
                1.0 - n
            } else {
                n
            }
        }
        let sqrt_t = t.sqrt();
        let d1 = ((r + v * v / 2.0) * t + (s / k).ln()) / (v * sqrt_t);
        let d2 = d1 - v * sqrt_t;
        let n1 = cnd(d1);
        let n2 = cnd(d2);
        let fut = k * (-r * t).exp();
        if is_put {
            fut * (1.0 - n2) - s * (1.0 - n1)
        } else {
            s * n1 - fut * n2
        }
    }
}

/// Emit the CND dataflow for `d`, returning the result node.
fn build_cnd(b: &mut DesignBuilder, d: NodeId) -> NodeId {
    let x = b.abs(d);
    let one = b.constant(1.0, DType::F32);
    let ck = b.constant(CND_K, DType::F32);
    let kx = b.mul(ck, x);
    let denom = b.add(one, kx);
    let kk = b.div(one, denom);
    // Horner evaluation of the quintic polynomial.
    let a5 = b.constant(CND_A5, DType::F32);
    let a4 = b.constant(CND_A4, DType::F32);
    let a3 = b.constant(CND_A3, DType::F32);
    let a2 = b.constant(CND_A2, DType::F32);
    let a1 = b.constant(CND_A1, DType::F32);
    let mut poly = a5;
    for c in [a4, a3, a2, a1] {
        let m = b.mul(poly, kk);
        poly = b.add(c, m);
    }
    let poly = b.mul(poly, kk);
    let xx = b.mul(x, x);
    let half = b.constant(0.5, DType::F32);
    let e_arg0 = b.mul(xx, half);
    let e_arg = b.neg(e_arg0);
    let e = b.exp(e_arg);
    let inv = b.constant(INV_SQRT_2PI, DType::F32);
    let tail0 = b.mul(inv, e);
    let tail = b.mul(tail0, poly);
    let n = b.sub(one, tail);
    let zero = b.constant(0.0, DType::F32);
    let neg = b.lt(d, zero);
    let flipped = b.sub(one, n);
    b.mux(neg, flipped, n)
}

impl Benchmark for BlackScholes {
    fn name(&self) -> &'static str {
        "blackscholes"
    }

    fn description(&self) -> &'static str {
        "Black-Scholes-Merton model"
    }

    fn paper_dataset(&self) -> &'static str {
        "N=9,995,328"
    }

    fn dataset_desc(&self) -> String {
        format!("N={}", self.n)
    }

    fn param_space(&self) -> ParamSpace {
        let mut s = ParamSpace::new();
        s.tile("ts", self.n, 96, 6_144.min(self.n));
        s.par("ip", 96, 16);
        s.toggle("mp");
        s
    }

    fn default_params(&self) -> ParamValues {
        ParamValues::new()
            .with(
                "ts",
                if self.n.is_multiple_of(1536) {
                    1536
                } else {
                    96
                },
            )
            .with("ip", 2)
            .with("mp", 1)
    }

    fn build(&self, p: &ParamValues) -> Result<Design> {
        let n = self.n;
        let ts = p.dim("ts")?;
        let ip = p.par("ip")?;
        let mp = p.toggle("mp")?;
        let mut b = DesignBuilder::new("blackscholes");
        let sprice = b.off_chip("sptprice", DType::F32, &[n]);
        let strike = b.off_chip("strike", DType::F32, &[n]);
        let rate = b.off_chip("rate", DType::F32, &[n]);
        let vol = b.off_chip("volatility", DType::F32, &[n]);
        let time = b.off_chip("otime", DType::F32, &[n]);
        let otype = b.off_chip("otype", DType::F32, &[n]);
        let out = b.off_chip("price", DType::F32, &[n]);
        b.sequential(|b| {
            b.outer(mp, &[by(n, ts)], 1, |b, iters| {
                let i = iters[0];
                let st = b.bram("sT", DType::F32, &[ts]);
                let kt = b.bram("kT", DType::F32, &[ts]);
                let rt = b.bram("rT", DType::F32, &[ts]);
                let vt = b.bram("vT", DType::F32, &[ts]);
                let tt = b.bram("tT", DType::F32, &[ts]);
                let yt = b.bram("yT", DType::F32, &[ts]);
                let ot = b.bram("oT", DType::F32, &[ts]);
                b.parallel(|b| {
                    b.tile_load(sprice, st, &[i], &[ts], ip);
                    b.tile_load(strike, kt, &[i], &[ts], ip);
                    b.tile_load(rate, rt, &[i], &[ts], ip);
                    b.tile_load(vol, vt, &[i], &[ts], ip);
                    b.tile_load(time, tt, &[i], &[ts], ip);
                    b.tile_load(otype, yt, &[i], &[ts], ip);
                });
                b.pipe(&[by(ts, 1)], ip, |b, it| {
                    let idx = it[0];
                    let s = b.load(st, &[idx]);
                    let k = b.load(kt, &[idx]);
                    let r = b.load(rt, &[idx]);
                    let v = b.load(vt, &[idx]);
                    let t = b.load(tt, &[idx]);
                    let y = b.load(yt, &[idx]);
                    let sqrt_t = b.sqrt(t);
                    let ratio = b.div(s, k);
                    let logv = b.ln(ratio);
                    let vv = b.mul(v, v);
                    let half = b.constant(0.5, DType::F32);
                    let pow = b.mul(vv, half);
                    let rp = b.add(r, pow);
                    let rpt = b.mul(rp, t);
                    let num = b.add(rpt, logv);
                    let vst = b.mul(v, sqrt_t);
                    let d1 = b.div(num, vst);
                    let d2 = b.sub(d1, vst);
                    let n1 = build_cnd(b, d1);
                    let n2 = build_cnd(b, d2);
                    let rt_ = b.mul(r, t);
                    let nrt = b.neg(rt_);
                    let e = b.exp(nrt);
                    let fut = b.mul(k, e);
                    let sn1 = b.mul(s, n1);
                    let fn2 = b.mul(fut, n2);
                    let call = b.sub(sn1, fn2);
                    let one = b.constant(1.0, DType::F32);
                    let om1 = b.sub(one, n1);
                    let om2 = b.sub(one, n2);
                    let fom2 = b.mul(fut, om2);
                    let som1 = b.mul(s, om1);
                    let put = b.sub(fom2, som1);
                    let zero = b.constant(0.0, DType::F32);
                    let is_put = b.gt(y, zero);
                    let price = b.mux(is_put, put, call);
                    b.store(ot, &[idx], price);
                });
                b.tile_store(out, ot, &[i], &[ts], ip);
            });
        });
        b.finish()
    }

    fn inputs(&self) -> Arrays {
        let n = self.n as usize;
        let mut m = Arrays::new();
        m.insert("sptprice".into(), data::uniform(501, n, 20.0, 120.0));
        m.insert("strike".into(), data::uniform(502, n, 20.0, 120.0));
        m.insert("rate".into(), data::uniform(503, n, 0.01, 0.1));
        m.insert("volatility".into(), data::uniform(504, n, 0.05, 0.7));
        m.insert("otime".into(), data::uniform(505, n, 0.1, 2.0));
        m.insert("otype".into(), data::booleans(506, n, 0.5));
        m
    }

    fn reference(&self) -> Arrays {
        let inputs = self.inputs();
        let n = self.n as usize;
        let mut out = vec![0.0; n];
        for i in 0..n {
            out[i] = Self::price_one(
                inputs["sptprice"][i],
                inputs["strike"][i],
                inputs["rate"][i],
                inputs["volatility"][i],
                inputs["otime"][i],
                inputs["otype"][i] != 0.0,
            );
        }
        let mut m = Arrays::new();
        m.insert("price".into(), out);
        m
    }

    fn work(&self) -> WorkProfile {
        let n = self.n as f64;
        WorkProfile {
            flops: 40.0 * n,
            divs: 4.0 * n,
            sqrts: n,
            exps: 3.0 * n,
            lns: n,
            bytes_read: 24.0 * n,
            bytes_written: 4.0 * n,
            ..WorkProfile::default()
        }
    }

    fn hls_kernel(&self) -> Option<HlsKernel> {
        // One option's dataflow in the coarse HLS IR.
        let mut ops = vec![
            HlsOp::new(HlsOpKind::Load, &[]),
            HlsOp::new(HlsOpKind::Load, &[]),
            HlsOp::new(HlsOpKind::Load, &[]),
            HlsOp::new(HlsOpKind::Div, &[0, 1]),
            HlsOp::new(HlsOpKind::Mul, &[2, 2]),
        ];
        for k in 0..12 {
            let d = ops.len();
            ops.push(HlsOp::new(
                if k % 3 == 0 {
                    HlsOpKind::Div
                } else {
                    HlsOpKind::Mul
                },
                &[d - 1, d - 2],
            ));
            ops.push(HlsOp::new(HlsOpKind::Add, &[d, d - 1]));
        }
        let last = ops.len() - 1;
        ops.push(HlsOp::new(HlsOpKind::Store, &[last]));
        Some(
            HlsKernel::new("blackscholes")
                .with_loop(HlsLoop::new("L1", self.n).with_body(ops).pipelined(true)),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn call_put_parity_roughly_holds() {
        // call - put = S - K e^{-rT}.
        let (s, k, r, v, t) = (100.0, 95.0, 0.05, 0.3, 1.0);
        let call = BlackScholes::price_one(s, k, r, v, t, false);
        let put = BlackScholes::price_one(s, k, r, v, t, true);
        let parity = s - k * (-r * t).exp();
        assert!((call - put - parity).abs() < 1e-9);
    }

    #[test]
    fn prices_are_positive_and_bounded() {
        let b = BlackScholes::new(96);
        let r = b.reference();
        for &p in &r["price"] {
            assert!(p > -1e-6, "price {p}");
            assert!(p < 200.0, "price {p}");
        }
    }

    #[test]
    fn deep_pipeline_body() {
        let b = BlackScholes::new(96);
        let d = b
            .build(
                &ParamValues::new()
                    .with("ts", 96)
                    .with("ip", 1)
                    .with("mp", 1),
            )
            .unwrap();
        use dhdl_core::NodeKind;
        let pipes = d.find_all(|n| matches!(n.kind, NodeKind::Pipe(_)));
        let NodeKind::Pipe(spec) = d.kind(pipes[0]) else {
            unreachable!()
        };
        assert!(spec.body.len() > 50, "body has {} nodes", spec.body.len());
    }
}
