//! # dhdl-apps — the evaluation benchmark suite (Table II)
//!
//! The seven benchmarks of the paper's evaluation, each expressed as a
//! DHDL metaprogram with its declared parameter space, deterministic
//! dataset, reference outputs and CPU work profile:
//!
//! | Benchmark | Description | Paper dataset |
//! |---|---|---|
//! | `dotproduct` | Vector dot product | 187,200,000 |
//! | `outerprod` | Vector outer product | 38,400 × 38,400 |
//! | `gemm` | Tiled matrix multiplication | 1536 × 1536 |
//! | `tpchq6` | TPC-H Query 6 | N = 18,720,000 |
//! | `blackscholes` | Black-Scholes-Merton model | N = 9,995,328 |
//! | `gda` | Gaussian discriminant analysis | R = 360,000, D = 96 |
//! | `kmeans` | k-means clustering | 960,000 pts, k = 8, dim = 384 |
//!
//! Beyond the paper's suite, the [`dnn`] registry adds the post-paper
//! DNN workload frontier: `conv2d` (line-buffer tiles, tile-parallel
//! output channels) and `attention` (GEMM–softmax–GEMM), benchmarked by
//! the `dnnbench` binary.
//!
//! Default dataset sizes are scaled down uniformly so the whole evaluation
//! runs on a laptop-class machine; every benchmark type also has a
//! size-parameterized constructor for tests. All benchmarks operate on
//! single-precision floating point except where the kernel requires
//! integer or boolean inputs (§V-A).
//!
//! ```
//! use dhdl_apps::{all, Benchmark};
//!
//! for b in all() {
//!     let design = b.build(&b.default_params()).unwrap();
//!     assert_eq!(design.name(), b.name());
//! }
//! ```

#![warn(missing_docs)]

pub mod attention;
pub mod blackscholes;
pub mod conv2d;
pub mod data;
pub mod dotproduct;
pub mod gda;
pub mod gemm;
pub mod kmeans;
pub mod outerprod;
pub mod pattern_bench;
pub mod saxpy;
pub mod tpchq6;

use std::collections::BTreeMap;

use dhdl_core::{Design, ParamSpace, ParamValues, Result};
use dhdl_hls::HlsKernel;

pub use attention::Attention;
pub use blackscholes::BlackScholes;
pub use conv2d::Conv2d;
pub use dotproduct::DotProduct;
pub use gda::Gda;
pub use gemm::Gemm;
pub use kmeans::KMeans;
pub use outerprod::OuterProduct;
pub use pattern_bench::PatternBenchmark;
pub use saxpy::Saxpy;
pub use tpchq6::TpchQ6;

/// Named input/output arrays keyed by off-chip memory name.
pub type Arrays = BTreeMap<String, Vec<f64>>;

/// Analytic work profile of one benchmark execution, consumed by the CPU
/// performance model for the Figure 6 comparison.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct WorkProfile {
    /// Simple floating point operations (add/sub/mul/compare).
    pub flops: f64,
    /// Divisions.
    pub divs: f64,
    /// Square roots.
    pub sqrts: f64,
    /// Exponentials.
    pub exps: f64,
    /// Logarithms.
    pub lns: f64,
    /// Bytes read from main memory (cold).
    pub bytes_read: f64,
    /// Bytes written to main memory.
    pub bytes_written: f64,
    /// Whether the kernel contains data-dependent branches that stall CPU
    /// pipelines (tpchq6, §V-D).
    pub branchy: bool,
    /// Whether an optimized BLAS-3 library implementation exists (gemm
    /// compares against OpenBLAS, §V-D).
    pub blas3: bool,
    /// Whether the kernel's working set defeats CPU caches and
    /// vectorization (gda rewrites a D x D accumulator per input row,
    /// §V-C1), dropping generated-code throughput to scalar rates.
    pub cache_hostile: bool,
}

impl WorkProfile {
    /// Total bytes moved.
    pub fn bytes(&self) -> f64 {
        self.bytes_read + self.bytes_written
    }

    /// Total floating point operations including the complex ones.
    pub fn total_flops(&self) -> f64 {
        self.flops + self.divs + self.sqrts + self.exps + self.lns
    }
}

/// A benchmark of the evaluation suite: a DHDL metaprogram plus everything
/// needed to evaluate it (parameter space, data, reference, work profile).
pub trait Benchmark: Send + Sync {
    /// Benchmark name (also the generated design's name).
    fn name(&self) -> &'static str;

    /// One-line description (Table II).
    fn description(&self) -> &'static str;

    /// The paper's dataset size (Table II), for reporting.
    fn paper_dataset(&self) -> &'static str;

    /// The scaled dataset used by this instance, for reporting.
    fn dataset_desc(&self) -> String;

    /// The tunable design parameters (§III-C: tile sizes, parallelization
    /// factors, MetaPipe toggles).
    fn param_space(&self) -> ParamSpace;

    /// A reasonable mid-range parameter assignment (used by tests and
    /// quick demos; DSE finds better ones).
    fn default_params(&self) -> ParamValues;

    /// Instantiate the design for a parameter assignment.
    ///
    /// # Errors
    ///
    /// Returns an error if the parameters are incomplete or the resulting
    /// design is structurally invalid.
    fn build(&self, p: &ParamValues) -> Result<Design>;

    /// Deterministic input arrays keyed by off-chip memory name.
    fn inputs(&self) -> Arrays;

    /// Expected output arrays keyed by off-chip memory name.
    fn reference(&self) -> Arrays;

    /// Analytic work profile for the CPU model.
    fn work(&self) -> WorkProfile;

    /// The benchmark expressed in the C-like HLS IR, when available
    /// (GDA drives the Table IV comparison).
    fn hls_kernel(&self) -> Option<HlsKernel> {
        None
    }
}

/// The seven benchmarks of Table II at their default (scaled) sizes.
pub fn all() -> Vec<Box<dyn Benchmark>> {
    vec![
        Box::new(DotProduct::default()),
        Box::new(OuterProduct::default()),
        Box::new(Gemm::default()),
        Box::new(TpchQ6::default()),
        Box::new(BlackScholes::default()),
        Box::new(Gda::default()),
        Box::new(KMeans::default()),
    ]
}

/// The DNN workload frontier (post-paper): conv2d and attention at their
/// default (scaled) sizes. Kept out of [`all`] so the Table II suite
/// stays pinned to the paper's seven kernels.
pub fn dnn() -> Vec<Box<dyn Benchmark>> {
    vec![Box::new(Conv2d::default()), Box::new(Attention::default())]
}

/// Look up a benchmark by name, across the Table II suite and the DNN
/// workload frontier.
pub fn by_name(name: &str) -> Option<Box<dyn Benchmark>> {
    all().into_iter().chain(dnn()).find(|b| b.name() == name)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suite_has_seven_benchmarks() {
        let suite = all();
        assert_eq!(suite.len(), 7);
        let names: Vec<&str> = suite.iter().map(|b| b.name()).collect();
        assert_eq!(
            names,
            vec![
                "dotproduct",
                "outerprod",
                "gemm",
                "tpchq6",
                "blackscholes",
                "gda",
                "kmeans"
            ]
        );
    }

    #[test]
    fn lookup_by_name() {
        assert!(by_name("gda").is_some());
        assert!(by_name("nope").is_none());
    }

    #[test]
    fn dnn_frontier_benchmarks() {
        let suite = dnn();
        let names: Vec<&str> = suite.iter().map(|b| b.name()).collect();
        assert_eq!(names, vec!["conv2d", "attention"]);
        for b in &suite {
            let space = b.param_space();
            let p = b.default_params();
            assert!(space.is_legal(&p), "{}: {p}", b.name());
            assert!(space.size() >= 8, "{} space too small", b.name());
            let d = b.build(&p).unwrap_or_else(|e| panic!("{}: {e}", b.name()));
            assert_eq!(d.name(), b.name());
            assert!(b.work().total_flops() > 0.0, "{}", b.name());
            assert!(b.work().bytes() > 0.0, "{}", b.name());
        }
        assert!(by_name("conv2d").is_some());
        assert!(by_name("attention").is_some());
    }

    #[test]
    fn default_params_are_legal_and_buildable() {
        for b in all() {
            let space = b.param_space();
            let p = b.default_params();
            assert!(space.is_legal(&p), "{}: {p}", b.name());
            let d = b.build(&p).unwrap_or_else(|e| panic!("{}: {e}", b.name()));
            assert_eq!(d.name(), b.name());
        }
    }

    #[test]
    fn work_profiles_are_positive() {
        for b in all() {
            let w = b.work();
            assert!(w.total_flops() > 0.0, "{}", b.name());
            assert!(w.bytes() > 0.0, "{}", b.name());
        }
    }

    #[test]
    fn hls_kernels_are_consistent() {
        for b in all() {
            let Some(k) = b.hls_kernel() else {
                panic!("{}: every suite benchmark has an HLS form", b.name());
            };
            assert!(k.total_ops() > 0, "{}", b.name());
            // HLS dynamic op count roughly tracks the work profile's flop
            // count (same asymptotic workload, small constant factors).
            let ratio = k.total_ops() as f64 / b.work().total_flops();
            assert!(
                (0.05..=20.0).contains(&ratio),
                "{}: ops/flops ratio {ratio}",
                b.name()
            );
        }
    }

    #[test]
    fn spaces_are_nontrivial() {
        for b in all() {
            assert!(b.param_space().size() >= 8, "{} space too small", b.name());
        }
    }
}
