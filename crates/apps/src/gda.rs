//! Gaussian discriminant analysis (Table II: R = 360,000, D = 96).
//!
//! The paper's running example (Figures 2–4): for each input row, subtract
//! the class mean selected by the label and accumulate the outer product
//! of the residual into a covariance matrix. The DHDL formulation nests
//! two MetaPipes with fold accumulators, exactly as in Figure 4, and its
//! parameter bubble diagram (Figure 3) is reproduced by the parameter
//! space here: parallelism factors `P1Par`/`P2Par`/`M1Par`/`M2Par`, tile
//! size `inTileSize`, and MetaPipe toggles `M1toggle`/`M2toggle`.

use dhdl_core::{by, DType, Design, DesignBuilder, ParamSpace, ParamValues, ReduceOp, Result};
use dhdl_hls::{HlsKernel, HlsLoop, HlsOp, HlsOpKind};

use crate::{data, Arrays, Benchmark, WorkProfile};

/// The GDA benchmark at configurable row count and dimension.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Gda {
    /// Number of input rows.
    pub r: u64,
    /// Feature dimension (the paper's `C`/`muSize`).
    pub d: u64,
}

impl Default for Gda {
    /// The scaled default: R = 4608, D = 32 (paper: R = 360,000, D = 96).
    fn default() -> Self {
        Gda { r: 4_608, d: 32 }
    }
}

impl Gda {
    /// A GDA instance over `r` rows of dimension `d`.
    ///
    /// # Panics
    ///
    /// Panics if `r` or `d` is zero.
    pub fn new(r: u64, d: u64) -> Self {
        assert!(r > 0 && d > 0, "dimensions must be nonzero");
        Gda { r, d }
    }
}

impl Benchmark for Gda {
    fn name(&self) -> &'static str {
        "gda"
    }

    fn description(&self) -> &'static str {
        "Gaussian discriminant analysis"
    }

    fn paper_dataset(&self) -> &'static str {
        "R=360,000 D=96"
    }

    fn dataset_desc(&self) -> String {
        format!("R={} D={}", self.r, self.d)
    }

    fn param_space(&self) -> ParamSpace {
        let mut s = ParamSpace::new();
        s.tile("rts", self.r, 4, 192.min(self.r)); // inTileSize
        s.par("p1", self.d, 16.min(self.d)); // P1Par
        s.par("p2", self.d, 16.min(self.d)); // P2Par
        s.par("m2p", 4, 4); // M2Par
        s.par("m1p", 4, 4); // M1Par
        s.toggle("m1"); // M1toggle
        s.toggle("m2"); // M2toggle
        s
    }

    fn default_params(&self) -> ParamValues {
        ParamValues::new()
            .with(
                "rts",
                if self.r.is_multiple_of(96) {
                    96
                } else {
                    4.min(self.r)
                },
            )
            .with("p1", 4.min(self.d))
            .with("p2", 4.min(self.d))
            .with("m2p", 1)
            .with("m1p", 1)
            .with("m1", 1)
            .with("m2", 1)
    }

    fn build(&self, p: &ParamValues) -> Result<Design> {
        let (r, d) = (self.r, self.d);
        let rts = p.dim("rts")?;
        let p1 = p.par("p1")?;
        let p2 = p.par("p2")?;
        let m2p = p.par("m2p")?;
        let m1p = p.par("m1p")?;
        let m1 = p.toggle("m1")?;
        let m2 = p.toggle("m2")?;
        let mut b = DesignBuilder::new("gda");
        let x = b.off_chip("x", DType::F32, &[r, d]);
        let y = b.off_chip("y", DType::Bool, &[r]);
        let mu0 = b.off_chip("mu0", DType::F32, &[d]);
        let mu1 = b.off_chip("mu1", DType::F32, &[d]);
        let sigma = b.off_chip("sigma", DType::F32, &[d, d]);
        b.sequential(|b| {
            let mu0t = b.bram("mu0T", DType::F32, &[d]);
            let mu1t = b.bram("mu1T", DType::F32, &[d]);
            let z = b.index_const(0);
            b.parallel(|b| {
                b.tile_load(mu0, mu0t, &[z], &[d], p1);
                b.tile_load(mu1, mu1t, &[z], &[d], p1);
            });
            let sigt = b.bram("sigT", DType::F32, &[d, d]);
            b.outer_fold(m1, &[by(r, rts)], m1p, sigt, ReduceOp::Add, |b, ri| {
                let rr = ri[0];
                let yt = b.bram("yT", DType::Bool, &[rts]);
                let xt = b.bram("xT", DType::F32, &[rts, d]);
                let z2 = b.index_const(0);
                b.parallel(|b| {
                    b.tile_load(x, xt, &[rr, z2], &[rts, d], p1);
                    b.tile_load(y, yt, &[rr], &[rts], 1);
                });
                let sigma_blk = b.bram("sigmaBlk", DType::F32, &[d, d]);
                b.outer_fold(
                    m2,
                    &[by(rts, 1)],
                    m2p,
                    sigma_blk,
                    ReduceOp::Add,
                    |b, rri| {
                        let row = rri[0];
                        let subt = b.bram("subT", DType::F32, &[d]);
                        let sigma_tile = b.bram("sigmaTile", DType::F32, &[d, d]);
                        b.pipe(&[by(d, 1)], p1, |b, it| {
                            let cc = it[0];
                            let label = b.load(yt, &[row]);
                            let m1v = b.load(mu1t, &[cc]);
                            let m0v = b.load(mu0t, &[cc]);
                            let mu = b.mux(label, m1v, m0v);
                            let xv = b.load(xt, &[row, cc]);
                            let sub = b.sub(xv, mu);
                            b.store(subt, &[cc], sub);
                        });
                        b.pipe(&[by(d, 1), by(d, 1)], p2, |b, it| {
                            let (ii, jj) = (it[0], it[1]);
                            let a = b.load(subt, &[ii]);
                            let c = b.load(subt, &[jj]);
                            let m = b.mul(a, c);
                            b.store(sigma_tile, &[ii, jj], m);
                        });
                        sigma_tile
                    },
                );
                sigma_blk
            });
            let z3 = b.index_const(0);
            b.tile_store(sigma, sigt, &[z3, z3], &[d, d], p2);
        });
        b.finish()
    }

    fn inputs(&self) -> Arrays {
        let (r, d) = (self.r as usize, self.d as usize);
        let mut m = Arrays::new();
        m.insert("x".into(), data::uniform(601, r * d, -1.0, 1.0));
        m.insert("y".into(), data::booleans(602, r, 0.4));
        m.insert("mu0".into(), data::uniform(603, d, -0.5, 0.5));
        m.insert("mu1".into(), data::uniform(604, d, -0.5, 0.5));
        m
    }

    fn reference(&self) -> Arrays {
        let inputs = self.inputs();
        let (r, d) = (self.r as usize, self.d as usize);
        let (x, y, mu0, mu1) = (&inputs["x"], &inputs["y"], &inputs["mu0"], &inputs["mu1"]);
        let mut sigma = vec![0.0f64; d * d];
        let mut sub = vec![0.0f64; d];
        for row in 0..r {
            for c in 0..d {
                let mu = if y[row] != 0.0 { mu1[c] } else { mu0[c] };
                sub[c] = ((x[row * d + c] - mu) as f32) as f64;
            }
            for i in 0..d {
                for j in 0..d {
                    sigma[i * d + j] += ((sub[i] * sub[j]) as f32) as f64;
                }
            }
        }
        let mut m = Arrays::new();
        m.insert("sigma".into(), sigma);
        m
    }

    fn work(&self) -> WorkProfile {
        let (r, d) = (self.r as f64, self.d as f64);
        WorkProfile {
            flops: 2.0 * r * d * d + r * d,
            bytes_read: 4.0 * (r * d + 2.0 * d) + r,
            bytes_written: 4.0 * d * d,
            cache_hostile: true,
            ..WorkProfile::default()
        }
    }

    fn hls_kernel(&self) -> Option<HlsKernel> {
        // Figure 2's loop nest: L1 over rows; L11 computes sub; L121/L122
        // accumulate the outer product.
        let l11 = HlsLoop::new("L11", self.d)
            .with_body(vec![
                HlsOp::new(HlsOpKind::Load, &[]),
                HlsOp::new(HlsOpKind::Load, &[]),
                HlsOp::new(HlsOpKind::Cmp, &[0]),
                HlsOp::new(HlsOpKind::Add, &[1, 2]),
                HlsOp::new(HlsOpKind::Store, &[3]),
            ])
            .pipelined(true);
        let l122 = HlsLoop::new("L122", self.d)
            .with_body(vec![
                HlsOp::new(HlsOpKind::Load, &[]),
                HlsOp::new(HlsOpKind::Load, &[]),
                HlsOp::new(HlsOpKind::Mul, &[0, 1]),
                HlsOp::new(HlsOpKind::Add, &[2]).accumulating(),
                HlsOp::new(HlsOpKind::Store, &[3]),
            ])
            .pipelined(true);
        let l121 = HlsLoop::new("L121", self.d).with_child(l122);
        let l1 = HlsLoop::new("L1", self.r).with_child(l11).with_child(l121);
        Some(HlsKernel::new("gda").with_loop(l1))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure4_structure() {
        use dhdl_core::NodeKind;
        let g = Gda::new(96, 8);
        let d = g
            .build(
                &ParamValues::new()
                    .with("rts", 12)
                    .with("p1", 2)
                    .with("p2", 2)
                    .with("m2p", 1)
                    .with("m1p", 1)
                    .with("m1", 1)
                    .with("m2", 1),
            )
            .unwrap();
        // Two nested MetaPipes with fold accumulators (M1, M2).
        let metas = d.find_all(|n| matches!(n.kind, NodeKind::MetaPipe(_)));
        assert_eq!(metas.len(), 2);
        for m in metas {
            let NodeKind::MetaPipe(spec) = d.kind(m) else {
                unreachable!()
            };
            assert!(spec.fold.is_some());
        }
        // Toggles off turn them into Sequentials.
        let d2 = g
            .build(
                &ParamValues::new()
                    .with("rts", 12)
                    .with("p1", 2)
                    .with("p2", 2)
                    .with("m2p", 1)
                    .with("m1p", 1)
                    .with("m1", 0)
                    .with("m2", 0),
            )
            .unwrap();
        assert!(d2
            .find_all(|n| matches!(n.kind, NodeKind::MetaPipe(_)))
            .is_empty());
    }

    #[test]
    fn reference_sigma_is_symmetric() {
        let g = Gda::new(64, 6);
        let r = g.reference();
        let s = &r["sigma"];
        for i in 0..6 {
            for j in 0..6 {
                assert!((s[i * 6 + j] - s[j * 6 + i]).abs() < 1e-9);
            }
        }
        // Diagonal entries are sums of squares: nonnegative.
        for i in 0..6 {
            assert!(s[i * 6 + i] >= 0.0);
        }
    }
}
