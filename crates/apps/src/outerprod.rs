//! Vector outer product (Table II: 38,400 × 38,400).
//!
//! Both BRAM- and memory-bound (§V-C1): for 2N inputs the design holds
//! 2N + N² tile elements on chip, so BRAM requirements grow quadratically
//! with tile size. The paper observes that the best designs do *not*
//! overlap tile loads and stores with MetaPipes, because main-memory
//! contention costs more than sequential execution — a behaviour the
//! DRAM contention models reproduce.

use dhdl_core::{by, DType, Design, DesignBuilder, ParamSpace, ParamValues, Result};
use dhdl_hls::{HlsKernel, HlsLoop, HlsOp, HlsOpKind};

use crate::{data, Arrays, Benchmark, WorkProfile};

/// The outer-product benchmark at a configurable vector length.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OuterProduct {
    /// Input vector length (output is `n × n`).
    pub n: u64,
}

impl Default for OuterProduct {
    /// The scaled default: 768 × 768 (paper: 38,400 × 38,400, scale 1/50
    /// per dimension).
    fn default() -> Self {
        OuterProduct { n: 768 }
    }
}

impl OuterProduct {
    /// An outer product of two `n`-element vectors.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero.
    pub fn new(n: u64) -> Self {
        assert!(n > 0, "vector length must be nonzero");
        OuterProduct { n }
    }
}

impl Benchmark for OuterProduct {
    fn name(&self) -> &'static str {
        "outerprod"
    }

    fn description(&self) -> &'static str {
        "Vector outer product"
    }

    fn paper_dataset(&self) -> &'static str {
        "38,400 x 38,400"
    }

    fn dataset_desc(&self) -> String {
        format!("N={} (output {}x{})", self.n, self.n, self.n)
    }

    fn param_space(&self) -> ParamSpace {
        let mut s = ParamSpace::new();
        s.tile("ts1", self.n, 32, 384.min(self.n));
        s.tile("ts2", self.n, 32, 384.min(self.n));
        s.par("p", 64, 64);
        s.toggle("mp1");
        s.toggle("mp2");
        s
    }

    fn default_params(&self) -> ParamValues {
        let t = if self.n.is_multiple_of(96) {
            96
        } else {
            32.min(self.n)
        };
        ParamValues::new()
            .with("ts1", t)
            .with("ts2", t)
            .with("p", 4)
            .with("mp1", 0)
            .with("mp2", 0)
    }

    fn build(&self, p: &ParamValues) -> Result<Design> {
        let n = self.n;
        let ts1 = p.dim("ts1")?;
        let ts2 = p.dim("ts2")?;
        let par = p.par("p")?;
        let mp1 = p.toggle("mp1")?;
        let mp2 = p.toggle("mp2")?;
        let mut b = DesignBuilder::new("outerprod");
        let v1 = b.off_chip("v1", DType::F32, &[n]);
        let v2 = b.off_chip("v2", DType::F32, &[n]);
        let out = b.off_chip("out", DType::F32, &[n, n]);
        b.sequential(|b| {
            b.outer(mp1, &[by(n, ts1)], 1, |b, oi| {
                let i = oi[0];
                let v1t = b.bram("v1T", DType::F32, &[ts1]);
                b.tile_load(v1, v1t, &[i], &[ts1], par);
                b.outer(mp2, &[by(n, ts2)], 1, |b, oj| {
                    let j = oj[0];
                    let v2t = b.bram("v2T", DType::F32, &[ts2]);
                    let ot = b.bram("oT", DType::F32, &[ts1, ts2]);
                    b.tile_load(v2, v2t, &[j], &[ts2], par);
                    b.pipe(&[by(ts1, 1), by(ts2, 1)], par, |b, it| {
                        let a = b.load(v1t, &[it[0]]);
                        let c = b.load(v2t, &[it[1]]);
                        let m = b.mul(a, c);
                        b.store(ot, &[it[0], it[1]], m);
                    });
                    b.tile_store(out, ot, &[i, j], &[ts1, ts2], par);
                });
            });
        });
        b.finish()
    }

    fn inputs(&self) -> Arrays {
        let n = self.n as usize;
        let mut m = Arrays::new();
        m.insert("v1".into(), data::uniform(201, n, -2.0, 2.0));
        m.insert("v2".into(), data::uniform(202, n, -2.0, 2.0));
        m
    }

    fn reference(&self) -> Arrays {
        let inputs = self.inputs();
        let (a, c) = (&inputs["v1"], &inputs["v2"]);
        let n = self.n as usize;
        let mut out = vec![0.0; n * n];
        for i in 0..n {
            for j in 0..n {
                out[i * n + j] = (a[i] * c[j]) as f32 as f64;
            }
        }
        let mut m = Arrays::new();
        m.insert("out".into(), out);
        m
    }

    fn work(&self) -> WorkProfile {
        let n = self.n as f64;
        WorkProfile {
            flops: n * n,
            bytes_read: 8.0 * n,
            bytes_written: 4.0 * n * n,
            ..WorkProfile::default()
        }
    }

    fn hls_kernel(&self) -> Option<HlsKernel> {
        let inner = HlsLoop::new("L2", self.n)
            .with_body(vec![
                HlsOp::new(HlsOpKind::Load, &[]),
                HlsOp::new(HlsOpKind::Load, &[]),
                HlsOp::new(HlsOpKind::Mul, &[0, 1]),
                HlsOp::new(HlsOpKind::Store, &[2]),
            ])
            .pipelined(true);
        Some(HlsKernel::new("outerprod").with_loop(HlsLoop::new("L1", self.n).with_child(inner)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bram_grows_quadratically_with_tile() {
        use dhdl_core::NodeKind;
        let b = OuterProduct::new(384);
        let small = b
            .build(
                &ParamValues::new()
                    .with("ts1", 32)
                    .with("ts2", 32)
                    .with("p", 1)
                    .with("mp1", 0)
                    .with("mp2", 0),
            )
            .unwrap();
        let bits = |d: &Design| {
            d.iter()
                .filter_map(|(_, n)| match &n.kind {
                    NodeKind::Bram(s) => Some(s.elements()),
                    _ => None,
                })
                .sum::<u64>()
        };
        let large = b
            .build(
                &ParamValues::new()
                    .with("ts1", 128)
                    .with("ts2", 128)
                    .with("p", 1)
                    .with("mp1", 0)
                    .with("mp2", 0),
            )
            .unwrap();
        // 4x tile => ~16x output tile elements.
        assert!(bits(&large) > bits(&small) * 8);
    }

    #[test]
    fn reference_is_rank_one() {
        let b = OuterProduct::new(8);
        let r = b.reference();
        let inputs = b.inputs();
        let out = &r["out"];
        assert_eq!(out.len(), 64);
        let expected = (inputs["v1"][3] * inputs["v2"][5]) as f32 as f64;
        assert_eq!(out[3 * 8 + 5], expected);
    }
}
