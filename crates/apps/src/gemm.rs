//! Tiled matrix multiplication (Table II: 1536 × 1536).
//!
//! A compute- and locality-rich kernel: the paper finds Pareto-optimal
//! gemm designs "occupy almost all BRAM resources on the board" because
//! good designs retain large two-dimensional chunks on chip (§V-C1). The
//! DHDL formulation tiles all three loops, accumulating partial tile
//! products into a C tile with a MetaPipe fold over the K dimension.

use dhdl_core::{by, DType, Design, DesignBuilder, ParamSpace, ParamValues, ReduceOp, Result};
use dhdl_hls::{HlsKernel, HlsLoop, HlsOp, HlsOpKind};

use crate::{data, Arrays, Benchmark, WorkProfile};

/// The gemm benchmark at configurable dimensions (`C[M,N] = A[M,K]·B[K,N]`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Gemm {
    /// Rows of A and C.
    pub m: u64,
    /// Columns of B and C.
    pub n: u64,
    /// Inner dimension.
    pub k: u64,
}

impl Default for Gemm {
    /// The scaled default: 192³ (paper: 1536³, scale 1/8 per dimension).
    fn default() -> Self {
        Gemm {
            m: 192,
            n: 192,
            k: 192,
        }
    }
}

impl Gemm {
    /// A gemm of the given dimensions.
    ///
    /// # Panics
    ///
    /// Panics if any dimension is zero.
    pub fn new(m: u64, n: u64, k: u64) -> Self {
        assert!(m > 0 && n > 0 && k > 0, "dimensions must be nonzero");
        Gemm { m, n, k }
    }
}

impl Benchmark for Gemm {
    fn name(&self) -> &'static str {
        "gemm"
    }

    fn description(&self) -> &'static str {
        "Tiled matrix multiplication"
    }

    fn paper_dataset(&self) -> &'static str {
        "1536 x 1536"
    }

    fn dataset_desc(&self) -> String {
        format!("M={} N={} K={}", self.m, self.n, self.k)
    }

    fn param_space(&self) -> ParamSpace {
        let mut s = ParamSpace::new();
        s.tile("tm", self.m, 8, 192.min(self.m));
        s.tile("tn", self.n, 8, 192.min(self.n));
        s.tile("tk", self.k, 8, 192.min(self.k));
        s.par("p", 48, 48);
        s.toggle("mp1");
        s.toggle("mp2");
        s
    }

    fn default_params(&self) -> ParamValues {
        let t = |d: u64| if d.is_multiple_of(48) { 48 } else { 8.min(d) };
        ParamValues::new()
            .with("tm", t(self.m))
            .with("tn", t(self.n))
            .with("tk", t(self.k))
            .with("p", 2)
            .with("mp1", 1)
            .with("mp2", 1)
    }

    fn build(&self, p: &ParamValues) -> Result<Design> {
        let (m, n, k) = (self.m, self.n, self.k);
        let tm = p.dim("tm")?;
        let tn = p.dim("tn")?;
        let tk = p.dim("tk")?;
        let par = p.par("p")?;
        let mp1 = p.toggle("mp1")?;
        let mp2 = p.toggle("mp2")?;
        let mut b = DesignBuilder::new("gemm");
        let a = b.off_chip("a", DType::F32, &[m, k]);
        let bb = b.off_chip("b", DType::F32, &[k, n]);
        let c = b.off_chip("c", DType::F32, &[m, n]);
        b.sequential(|b| {
            b.outer(mp1, &[by(m, tm), by(n, tn)], 1, |b, ij| {
                let (i, j) = (ij[0], ij[1]);
                let ct = b.bram("cT", DType::F32, &[tm, tn]);
                b.outer_fold(mp2, &[by(k, tk)], 1, ct, ReduceOp::Add, |b, kk| {
                    let kt = kk[0];
                    let at = b.bram("aT", DType::F32, &[tm, tk]);
                    let bt = b.bram("bT", DType::F32, &[tk, tn]);
                    let pt = b.bram("pT", DType::F32, &[tm, tn]);
                    b.parallel(|b| {
                        b.tile_load(a, at, &[i, kt], &[tm, tk], par);
                        b.tile_load(bb, bt, &[kt, j], &[tk, tn], par);
                    });
                    // pT[ii,jj] accumulates over the kk2 (middle) counter;
                    // the first kk2 iteration resets the running value.
                    b.pipe(&[by(tm, 1), by(tk, 1), by(tn, 1)], par, |b, it| {
                        let (ii, kk2, jj) = (it[0], it[1], it[2]);
                        let av = b.load(at, &[ii, kk2]);
                        let bv = b.load(bt, &[kk2, jj]);
                        let prod = b.mul(av, bv);
                        let zero_idx = b.index_const(0);
                        let first = b.eq(kk2, zero_idx);
                        let zero = b.constant(0.0, DType::F32);
                        let prev_raw = b.load(pt, &[ii, jj]);
                        let prev = b.mux(first, zero, prev_raw);
                        let sum = b.add(prev, prod);
                        b.store(pt, &[ii, jj], sum);
                    });
                    pt
                });
                b.tile_store(c, ct, &[i, j], &[tm, tn], par);
            });
        });
        b.finish()
    }

    fn inputs(&self) -> Arrays {
        let mut arrays = Arrays::new();
        arrays.insert(
            "a".into(),
            data::uniform(301, (self.m * self.k) as usize, -1.0, 1.0),
        );
        arrays.insert(
            "b".into(),
            data::uniform(302, (self.k * self.n) as usize, -1.0, 1.0),
        );
        arrays
    }

    fn reference(&self) -> Arrays {
        let inputs = self.inputs();
        let (a, b) = (&inputs["a"], &inputs["b"]);
        let (m, n, k) = (self.m as usize, self.n as usize, self.k as usize);
        let mut c = vec![0.0f64; m * n];
        for i in 0..m {
            for kk in 0..k {
                let av = a[i * k + kk];
                for j in 0..n {
                    c[i * n + j] += av * b[kk * n + j];
                }
            }
        }
        let mut out = Arrays::new();
        out.insert("c".into(), c);
        out
    }

    fn work(&self) -> WorkProfile {
        let (m, n, k) = (self.m as f64, self.n as f64, self.k as f64);
        WorkProfile {
            flops: 2.0 * m * n * k,
            bytes_read: 4.0 * (m * k + k * n),
            bytes_written: 4.0 * m * n,
            blas3: true,
            ..WorkProfile::default()
        }
    }

    fn hls_kernel(&self) -> Option<HlsKernel> {
        let inner = HlsLoop::new("L3", self.k)
            .with_body(vec![
                HlsOp::new(HlsOpKind::Load, &[]),
                HlsOp::new(HlsOpKind::Load, &[]),
                HlsOp::new(HlsOpKind::Mul, &[0, 1]),
                HlsOp::new(HlsOpKind::Add, &[2]).accumulating(),
            ])
            .pipelined(true);
        Some(HlsKernel::new("gemm").with_loop(
            HlsLoop::new("L1", self.m).with_child(HlsLoop::new("L2", self.n).with_child(inner)),
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_tiles_divide_dimensions() {
        let g = Gemm::default();
        let p = g.default_params();
        assert_eq!(g.m % p.dim("tm").unwrap(), 0);
        assert_eq!(g.n % p.dim("tn").unwrap(), 0);
        assert_eq!(g.k % p.dim("tk").unwrap(), 0);
    }

    #[test]
    fn small_instance_builds_for_all_toggles() {
        let g = Gemm::new(16, 16, 16);
        for (m1, m2) in [(0, 0), (0, 1), (1, 0), (1, 1)] {
            let p = ParamValues::new()
                .with("tm", 8)
                .with("tn", 8)
                .with("tk", 8)
                .with("p", 2)
                .with("mp1", m1)
                .with("mp2", m2);
            assert!(g.build(&p).is_ok(), "m1={m1} m2={m2}");
        }
    }

    #[test]
    fn reference_matches_identity() {
        // A = I => C = B.
        let g = Gemm::new(4, 4, 4);
        let mut inputs = g.inputs();
        let ident: Vec<f64> = (0..16).map(|i| f64::from(u8::from(i % 5 == 0))).collect();
        inputs.insert("a".into(), ident);
        // Manual check with the same algorithm shape.
        let b = &inputs["b"];
        let mut c = [0.0f64; 16];
        for i in 0..4 {
            for kk in 0..4 {
                let av = inputs["a"][i * 4 + kk];
                for j in 0..4 {
                    c[i * 4 + j] += av * b[kk * 4 + j];
                }
            }
        }
        assert_eq!(&c[..], &b[..]);
    }
}
