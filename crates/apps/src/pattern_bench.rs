//! Pattern programs as first-class benchmarks.
//!
//! [`PatternBenchmark`] adapts a fused [`PatternProgram`] to the
//! [`Benchmark`] trait: the design metaprogram is the pattern lowering of
//! §III-A, the reference outputs come from the pattern interpreter, the
//! work profile is derived from the pattern operations, and an HLS loop
//! nest is generated for the exploration-speed comparison. This closes
//! the loop of the paper's Figure 1: write patterns, get an explorable
//! accelerator.

use dhdl_core::{Design, ParamSpace, ParamValues, Result};
use dhdl_hls::{HlsKernel, HlsLoop, HlsOp, HlsOpKind};
use dhdl_patterns::{default_params, fuse, lower, param_space, PatternOp, PatternProgram};

use crate::{Arrays, Benchmark, WorkProfile};

/// A benchmark defined by a parallel-pattern program.
#[derive(Debug, Clone)]
pub struct PatternBenchmark {
    name: &'static str,
    description: &'static str,
    program: PatternProgram,
    inputs: Arrays,
}

impl PatternBenchmark {
    /// Wrap a pattern program and its input data as a benchmark. The
    /// program is fused before lowering (the paper's Step 1 high-level
    /// optimizations).
    ///
    /// # Panics
    ///
    /// Panics if `inputs` is missing an input array of the program.
    pub fn new(
        name: &'static str,
        description: &'static str,
        program: PatternProgram,
        inputs: Arrays,
    ) -> Self {
        let fused = fuse(&program);
        // Validate inputs eagerly (interpret panics on missing arrays).
        let _ = fused.interpret(&inputs);
        PatternBenchmark {
            name,
            description,
            program: fused,
            inputs,
        }
    }

    /// The fused program.
    pub fn program(&self) -> &PatternProgram {
        &self.program
    }
}

impl Benchmark for PatternBenchmark {
    fn name(&self) -> &'static str {
        self.name
    }

    fn description(&self) -> &'static str {
        self.description
    }

    fn paper_dataset(&self) -> &'static str {
        "(user-defined pattern program)"
    }

    fn dataset_desc(&self) -> String {
        let total: u64 = self
            .program
            .ops()
            .iter()
            .map(|op| self.program.spec(op.ins()[0]).len)
            .sum();
        format!(
            "{} patterns over {} elements",
            self.program.ops().len(),
            total
        )
    }

    fn param_space(&self) -> ParamSpace {
        param_space(&self.program)
    }

    fn default_params(&self) -> ParamValues {
        default_params(&self.program)
    }

    fn build(&self, p: &ParamValues) -> Result<Design> {
        lower(&self.program, self.name, p)
    }

    fn inputs(&self) -> Arrays {
        self.inputs.clone()
    }

    fn reference(&self) -> Arrays {
        self.program.interpret(&self.inputs)
    }

    fn work(&self) -> WorkProfile {
        // Derived from the pattern IR: each op applies its kernel
        // expression once per element; every input element is read and
        // every materialized output element written.
        let mut w = WorkProfile::default();
        for op in self.program.ops() {
            let len = self.program.spec(op.ins()[0]).len as f64;
            let (kernel_ops, extra) = match op {
                PatternOp::Map { f, .. } | PatternOp::Reduce { f, .. } => (f.size(), 1),
                PatternOp::FilterReduce { cond, f, .. } => (cond.size() + f.size(), 2),
                PatternOp::GroupByReduce { key, value, .. } => (key.size() + value.size(), 2),
            };
            w.flops += len * (kernel_ops + extra) as f64;
            w.bytes_read += len * 4.0 * op.ins().len() as f64;
            let out_len = self.program.spec(op.out()).len as f64;
            w.bytes_written += out_len * 4.0;
        }
        w
    }

    fn hls_kernel(&self) -> Option<HlsKernel> {
        let mut kernel = HlsKernel::new(self.name);
        for (i, op) in self.program.ops().iter().enumerate() {
            let len = self.program.spec(op.ins()[0]).len;
            let loads = op.ins().len();
            let (n_ops, stores, accumulate) = match op {
                PatternOp::Map { f, .. } => (f.size(), 1, false),
                PatternOp::Reduce { f, .. } => (f.size(), 0, true),
                PatternOp::FilterReduce { cond, f, .. } => (cond.size() + f.size() + 1, 0, true),
                PatternOp::GroupByReduce { key, value, .. } => {
                    (key.size() + value.size() + 1, 1, true)
                }
            };
            let mut body = Vec::new();
            for _ in 0..loads {
                body.push(HlsOp::new(HlsOpKind::Load, &[]));
            }
            for k in 0..n_ops.max(1) {
                let dep = if k == 0 { 0 } else { loads + k - 1 };
                body.push(HlsOp::new(HlsOpKind::Mul, &[dep]));
            }
            let last = body.len() - 1;
            if accumulate {
                body.push(HlsOp::new(HlsOpKind::Add, &[last]).accumulating());
            }
            for _ in 0..stores {
                let v = body.len() - 1;
                body.push(HlsOp::new(HlsOpKind::Store, &[v]));
            }
            kernel = kernel.with_loop(
                HlsLoop::new(&format!("L{i}"), len)
                    .with_body(body)
                    .pipelined(true),
            );
        }
        Some(kernel)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::data;
    use dhdl_core::{DType, ReduceOp};
    use dhdl_patterns::Expr;

    fn sq_dist_bench() -> PatternBenchmark {
        let n = 768u64;
        let mut p = PatternProgram::new();
        let a = p.input("a", n, DType::F32);
        let b = p.input("b", n, DType::F32);
        let d = p.map("d", &[a, b], Expr::sub(Expr::input(0), Expr::input(1)));
        let sq = p.map("sq", &[d], Expr::mul(Expr::input(0), Expr::input(0)));
        p.reduce("dist", &[sq], Expr::input(0), ReduceOp::Add);
        let mut inputs = Arrays::new();
        inputs.insert("a".into(), data::uniform(11, n as usize, -1.0, 1.0));
        inputs.insert("b".into(), data::uniform(12, n as usize, -1.0, 1.0));
        PatternBenchmark::new("sqdist", "Squared distance via patterns", p, inputs)
    }

    #[test]
    fn behaves_like_a_benchmark() {
        let b = sq_dist_bench();
        assert_eq!(b.program().ops().len(), 1, "fused to one reduce");
        let space = b.param_space();
        assert!(space.is_legal(&b.default_params()));
        let design = b.build(&b.default_params()).unwrap();
        assert_eq!(design.name(), "sqdist");
        let w = b.work();
        assert!(w.flops > 0.0 && w.bytes_read > 0.0);
        let k = b.hls_kernel().unwrap();
        assert!(k.total_ops() > 0);
    }

    #[test]
    fn reference_is_the_interpreter() {
        let b = sq_dist_bench();
        let r = b.reference();
        let manual: f64 = {
            let i = b.inputs();
            i["a"]
                .iter()
                .zip(&i["b"])
                .map(|(x, y)| (x - y) * (x - y))
                .sum()
        };
        assert!((r["dist"][0] - manual).abs() < 1e-3 * manual.abs());
    }

    #[test]
    #[should_panic(expected = "missing input")]
    fn missing_inputs_rejected_eagerly() {
        let mut p = PatternProgram::new();
        let a = p.input("a", 8, DType::F32);
        p.map("out", &[a], Expr::input(0));
        PatternBenchmark::new("x", "y", p, Arrays::new());
    }
}
