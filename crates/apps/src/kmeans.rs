//! k-means clustering (Table II: 960,000 points, k = 8, dim = 384).
//!
//! One Lloyd iteration: assign every point to its nearest centroid and
//! produce the new centroids. The paper finds kmeans ALM-bound — the
//! distance computation needs `K × D` floating point operations per point
//! to keep up with memory bandwidth — and BRAM-limited from banking
//! under-utilization (§V-C1).

use dhdl_core::{by, DType, Design, DesignBuilder, ParamSpace, ParamValues, ReduceOp, Result};
use dhdl_hls::{HlsKernel, HlsLoop, HlsOp, HlsOpKind};

use crate::{data, Arrays, Benchmark, WorkProfile};

/// The k-means benchmark at configurable sizes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct KMeans {
    /// Number of points.
    pub points: u64,
    /// Number of clusters.
    pub k: u64,
    /// Point dimensionality.
    pub dim: u64,
}

impl Default for KMeans {
    /// The scaled default: 6144 points, k = 8, dim = 32 (paper: 960,000
    /// points, k = 8, dim = 384).
    fn default() -> Self {
        KMeans {
            points: 6_144,
            k: 8,
            dim: 32,
        }
    }
}

impl KMeans {
    /// A k-means instance.
    ///
    /// # Panics
    ///
    /// Panics if any size is zero.
    pub fn new(points: u64, k: u64, dim: u64) -> Self {
        assert!(points > 0 && k > 0 && dim > 0, "sizes must be nonzero");
        KMeans { points, k, dim }
    }

    fn assign(&self, x: &[f64], cents: &[f64], p: usize) -> usize {
        let (k, d) = (self.k as usize, self.dim as usize);
        let mut best = 0usize;
        let mut best_dist = f64::INFINITY;
        for c in 0..k {
            let mut dist = 0.0;
            for j in 0..d {
                let diff = ((x[p * d + j] - cents[c * d + j]) as f32) as f64;
                dist += ((diff * diff) as f32) as f64;
            }
            if dist < best_dist {
                best_dist = dist;
                best = c;
            }
        }
        best
    }
}

impl Benchmark for KMeans {
    fn name(&self) -> &'static str {
        "kmeans"
    }

    fn description(&self) -> &'static str {
        "k-means clustering"
    }

    fn paper_dataset(&self) -> &'static str {
        "#points=960,000 k=8 dim=384"
    }

    fn dataset_desc(&self) -> String {
        format!("#points={} k={} dim={}", self.points, self.k, self.dim)
    }

    fn param_space(&self) -> ParamSpace {
        let mut s = ParamSpace::new();
        s.tile("pts", self.points, 8, 384.min(self.points));
        s.par("dp", self.dim, 16.min(self.dim)); // distance-lane parallelism
        s.par("pp", 24, 24); // concurrent points in flight
        s.toggle("mp");
        s.toggle("mp2"); // pipeline the per-point stages
        s
    }

    fn default_params(&self) -> ParamValues {
        ParamValues::new()
            .with(
                "pts",
                if self.points.is_multiple_of(96) {
                    96
                } else {
                    8.min(self.points)
                },
            )
            .with("dp", 4.min(self.dim))
            .with("pp", 2)
            .with("mp", 1)
            .with("mp2", 1)
    }

    fn build(&self, p: &ParamValues) -> Result<Design> {
        let (n, k, d) = (self.points, self.k, self.dim);
        let pts = p.dim("pts")?;
        let dp = p.par("dp")?;
        let pp = p.par("pp")?;
        let mp = p.toggle("mp")?;
        let mp2 = p.toggle("mp2")?;
        let mut b = DesignBuilder::new("kmeans");
        let x = b.off_chip("points", DType::F32, &[n, d]);
        let cin = b.off_chip("centroids", DType::F32, &[k, d]);
        let cout = b.off_chip("newCentroids", DType::F32, &[k, d]);
        b.sequential(|b| {
            let ct = b.bram("centT", DType::F32, &[k, d]);
            let z = b.index_const(0);
            b.tile_load(cin, ct, &[z, z], &[k, d], dp);
            // acc[c][0..d] = coordinate sums; acc[c][d] = count.
            let acc = b.bram("accT", DType::F32, &[k, d + 1]);
            b.outer_fold(mp, &[by(n, pts)], 1, acc, ReduceOp::Add, |b, oi| {
                let tile0 = oi[0];
                let xt = b.bram("xT", DType::F32, &[pts, d]);
                let z2 = b.index_const(0);
                b.tile_load(x, xt, &[tile0, z2], &[pts, d], dp);
                let partial = b.bram("partial", DType::F32, &[k, d + 1]);
                // Zero the partial accumulator.
                b.pipe(&[by(k, 1), by(d + 1, 1)], 1, |b, it| {
                    let zero = b.constant(0.0, DType::F32);
                    b.store(partial, &[it[0], it[1]], zero);
                });
                // Per point: distances, argmin, scatter-accumulate.
                b.outer(mp2, &[by(pts, 1)], pp, |b, pi| {
                    let pp = pi[0];
                    let dist = b.bram("dist", DType::F32, &[k]);
                    // dist[c] = sum_j (x - cent)^2, reset at j == 0.
                    b.pipe(&[by(k, 1), by(d, 1)], dp, |b, it| {
                        let (c, j) = (it[0], it[1]);
                        let xv = b.load(xt, &[pp, j]);
                        let cv = b.load(ct, &[c, j]);
                        let diff = b.sub(xv, cv);
                        let sq = b.mul(diff, diff);
                        let zero_idx = b.index_const(0);
                        let first = b.eq(j, zero_idx);
                        let zero = b.constant(0.0, DType::F32);
                        let prev_raw = b.load(dist, &[c]);
                        let prev = b.mux(first, zero, prev_raw);
                        let sum = b.add(prev, sq);
                        b.store(dist, &[c], sum);
                    });
                    // Sequential argmin over the k distances.
                    let best_d = b.reg("bestDist", DType::F32, 0.0);
                    let best_i = b.reg("bestIdx", DType::F32, 0.0);
                    b.pipe(&[by(k, 1)], 1, |b, it| {
                        let c = it[0];
                        let dv = b.load(dist, &[c]);
                        let zero_idx = b.index_const(0);
                        let first = b.eq(c, zero_idx);
                        let huge = b.constant(f64::MAX / 2.0, DType::F32);
                        let prev_raw = b.load_reg(best_d);
                        let prev = b.mux(first, huge, prev_raw);
                        let better = b.lt(dv, prev);
                        let new_d = b.mux(better, dv, prev);
                        let prev_i_raw = b.load_reg(best_i);
                        let ci = b.prim(dhdl_core::PrimOp::Add, &[c, zero_idx]);
                        let prev_i = b.mux(first, ci, prev_i_raw);
                        let new_i = b.mux(better, ci, prev_i);
                        b.store_reg(best_d, new_d);
                        b.store_reg(best_i, new_i);
                    });
                    // Scatter the point into partial[best][*] (+1 count).
                    b.pipe(&[by(d + 1, 1)], 1, |b, it| {
                        let j = it[0];
                        let dlim = b.index_const(d);
                        let is_coord = b.lt(j, dlim);
                        // Clamp the coordinate address so the count column
                        // (j == d) reads a valid (ignored) location.
                        let zero_idx = b.index_const(0);
                        let jc = b.mux(is_coord, j, zero_idx);
                        let xv = b.load(xt, &[pp, jc]);
                        let one = b.constant(1.0, DType::F32);
                        let v = b.mux(is_coord, xv, one);
                        let c = b.load_reg(best_i);
                        let prev = b.load(partial, &[c, j]);
                        let sum = b.add(prev, v);
                        b.store(partial, &[c, j], sum);
                    });
                });
                partial
            });
            // New centroids: sums / counts.
            let newc = b.bram("newC", DType::F32, &[k, d]);
            b.pipe(&[by(k, 1), by(d, 1)], dp, |b, it| {
                let (c, j) = (it[0], it[1]);
                let s = b.load(acc, &[c, j]);
                let didx = b.index_const(d);
                let cnt = b.load(acc, &[c, didx]);
                let one = b.constant(1.0, DType::F32);
                let zero = b.constant(0.0, DType::F32);
                let empty = b.eq(cnt, zero);
                let denom = b.mux(empty, one, cnt);
                let mean = b.div(s, denom);
                b.store(newc, &[c, j], mean);
            });
            let z4 = b.index_const(0);
            b.tile_store(cout, newc, &[z4, z4], &[k, d], dp);
        });
        b.finish()
    }

    fn inputs(&self) -> Arrays {
        let (n, k, d) = (self.points as usize, self.k as usize, self.dim as usize);
        let mut m = Arrays::new();
        m.insert("points".into(), data::uniform(701, n * d, -5.0, 5.0));
        m.insert("centroids".into(), data::uniform(702, k * d, -5.0, 5.0));
        m
    }

    fn reference(&self) -> Arrays {
        let inputs = self.inputs();
        let (n, k, d) = (self.points as usize, self.k as usize, self.dim as usize);
        let (x, cents) = (&inputs["points"], &inputs["centroids"]);
        let mut sums = vec![0.0f64; k * d];
        let mut counts = vec![0.0f64; k];
        for p in 0..n {
            let c = self.assign(x, cents, p);
            for j in 0..d {
                sums[c * d + j] += x[p * d + j];
            }
            counts[c] += 1.0;
        }
        let mut newc = vec![0.0f64; k * d];
        for c in 0..k {
            let denom = if counts[c] == 0.0 { 1.0 } else { counts[c] };
            for j in 0..d {
                newc[c * d + j] = sums[c * d + j] / denom;
            }
        }
        let mut m = Arrays::new();
        m.insert("newCentroids".into(), newc);
        m
    }

    fn work(&self) -> WorkProfile {
        let (n, k, d) = (self.points as f64, self.k as f64, self.dim as f64);
        WorkProfile {
            flops: 3.0 * n * k * d + n * (d + 1.0) + k * d,
            divs: k * d,
            bytes_read: 4.0 * (n * d + k * d),
            bytes_written: 4.0 * k * d,
            ..WorkProfile::default()
        }
    }

    fn hls_kernel(&self) -> Option<HlsKernel> {
        let dist = HlsLoop::new("L3", self.dim)
            .with_body(vec![
                HlsOp::new(HlsOpKind::Load, &[]),
                HlsOp::new(HlsOpKind::Load, &[]),
                HlsOp::new(HlsOpKind::Add, &[0, 1]),
                HlsOp::new(HlsOpKind::Mul, &[2, 2]),
                HlsOp::new(HlsOpKind::Add, &[3]).accumulating(),
            ])
            .pipelined(true);
        let per_cluster = HlsLoop::new("L2", self.k).with_child(dist);
        Some(
            HlsKernel::new("kmeans")
                .with_loop(HlsLoop::new("L1", self.points).with_child(per_cluster)),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reference_counts_all_points() {
        let km = KMeans::new(128, 4, 8);
        let inputs = km.inputs();
        let mut counts = [0usize; 4];
        for p in 0..128 {
            counts[km.assign(&inputs["points"], &inputs["centroids"], p)] += 1;
        }
        assert_eq!(counts.iter().sum::<usize>(), 128);
    }

    #[test]
    fn design_builds_with_toggles() {
        let km = KMeans::new(96, 4, 8);
        for mp in [0, 1] {
            let p = ParamValues::new()
                .with("pts", 12)
                .with("dp", 2)
                .with("pp", 2)
                .with("mp", mp)
                .with("mp2", 1);
            assert!(km.build(&p).is_ok(), "mp={mp}");
        }
    }

    #[test]
    fn centroid_means_are_bounded_by_data() {
        let km = KMeans::new(256, 4, 4);
        let r = km.reference();
        for &v in &r["newCentroids"] {
            assert!((-5.0..=5.0).contains(&v), "{v}");
        }
    }
}
