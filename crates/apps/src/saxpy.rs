//! SAXPY (`y ← a·x + y`): a user-authored kernel outside the paper's
//! benchmark suite, used by the `custom_kernel` example to show how a new
//! accelerator is built, explored and simulated with the public API.

use dhdl_core::{by, DType, Design, DesignBuilder, ParamSpace, ParamValues, Result};

use crate::{data, Arrays, Benchmark, WorkProfile};

/// The SAXPY kernel at a configurable length and scalar.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Saxpy {
    /// Vector length.
    pub n: u64,
    /// The scalar `a`.
    pub a: f64,
}

impl Default for Saxpy {
    fn default() -> Self {
        Saxpy { n: 24_576, a: 2.5 }
    }
}

impl Saxpy {
    /// A SAXPY over vectors of length `n` with scalar `a`.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero.
    pub fn new(n: u64, a: f64) -> Self {
        assert!(n > 0, "vector length must be nonzero");
        Saxpy { n, a }
    }
}

impl Benchmark for Saxpy {
    fn name(&self) -> &'static str {
        "saxpy"
    }

    fn description(&self) -> &'static str {
        "Scalar a times x plus y"
    }

    fn paper_dataset(&self) -> &'static str {
        "(not in the paper)"
    }

    fn dataset_desc(&self) -> String {
        format!("N={} a={}", self.n, self.a)
    }

    fn param_space(&self) -> ParamSpace {
        let mut s = ParamSpace::new();
        s.tile("ts", self.n, 96, 6_144.min(self.n));
        s.par("ip", 96, 16);
        s.toggle("mp");
        s
    }

    fn default_params(&self) -> ParamValues {
        ParamValues::new()
            .with(
                "ts",
                if self.n.is_multiple_of(1536) {
                    1536
                } else {
                    96
                },
            )
            .with("ip", 4)
            .with("mp", 1)
    }

    fn build(&self, p: &ParamValues) -> Result<Design> {
        let n = self.n;
        let ts = p.dim("ts")?;
        let ip = p.par("ip")?;
        let mp = p.toggle("mp")?;
        let a = self.a;
        let mut b = DesignBuilder::new("saxpy");
        let x = b.off_chip("x", DType::F32, &[n]);
        let y = b.off_chip("y", DType::F32, &[n]);
        let out = b.off_chip("out", DType::F32, &[n]);
        b.sequential(|b| {
            b.outer(mp, &[by(n, ts)], 1, |b, iters| {
                let i = iters[0];
                let xt = b.bram("xT", DType::F32, &[ts]);
                let yt = b.bram("yT", DType::F32, &[ts]);
                let ot = b.bram("oT", DType::F32, &[ts]);
                b.parallel(|b| {
                    b.tile_load(x, xt, &[i], &[ts], ip);
                    b.tile_load(y, yt, &[i], &[ts], ip);
                });
                b.pipe(&[by(ts, 1)], ip, |b, it| {
                    let xv = b.load(xt, &[it[0]]);
                    let yv = b.load(yt, &[it[0]]);
                    let av = b.constant(a, DType::F32);
                    let ax = b.mul(av, xv);
                    let s = b.add(ax, yv);
                    b.store(ot, &[it[0]], s);
                });
                b.tile_store(out, ot, &[i], &[ts], ip);
            });
        });
        b.finish()
    }

    fn inputs(&self) -> Arrays {
        let n = self.n as usize;
        let mut m = Arrays::new();
        m.insert("x".into(), data::uniform(801, n, -10.0, 10.0));
        m.insert("y".into(), data::uniform(802, n, -10.0, 10.0));
        m
    }

    fn reference(&self) -> Arrays {
        let inputs = self.inputs();
        let a32 = self.a as f32 as f64;
        let out: Vec<f64> = inputs["x"]
            .iter()
            .zip(&inputs["y"])
            .map(|(x, y)| ((a32 * x) as f32 as f64 + y) as f32 as f64)
            .collect();
        let mut m = Arrays::new();
        m.insert("out".into(), out);
        m
    }

    fn work(&self) -> WorkProfile {
        let n = self.n as f64;
        WorkProfile {
            flops: 2.0 * n,
            bytes_read: 8.0 * n,
            bytes_written: 4.0 * n,
            ..WorkProfile::default()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_and_references() {
        let s = Saxpy::new(192, 3.0);
        let d = s.build(
            &ParamValues::new()
                .with("ts", 96)
                .with("ip", 2)
                .with("mp", 1),
        );
        assert!(d.is_ok());
        let r = s.reference();
        let i = s.inputs();
        assert_eq!(r["out"].len(), 192);
        let expected = ((3.0f32 * i["x"][7] as f32) as f64 + i["y"][7]) as f32 as f64;
        assert!((r["out"][7] - expected).abs() < 1e-12);
    }
}
