//! Deterministic dataset generators for the benchmark suite.
//!
//! All generators are seeded so every run of the evaluation uses identical
//! data; values are rounded to `f32` to match what the accelerator's
//! single-precision datapaths consume.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Uniform values in `[lo, hi)`, rounded to f32.
pub fn uniform(seed: u64, n: usize, lo: f64, hi: f64) -> Vec<f64> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|_| rng.gen_range(lo..hi) as f32 as f64)
        .collect()
}

/// Uniform integer values in `[lo, hi)`, as f64.
pub fn ints(seed: u64, n: usize, lo: i64, hi: i64) -> Vec<f64> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n).map(|_| rng.gen_range(lo..hi) as f64).collect()
}

/// Bernoulli 0/1 values with probability `p` of 1.
pub fn booleans(seed: u64, n: usize, p: f64) -> Vec<f64> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n).map(|_| f64::from(rng.gen_bool(p))).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic() {
        assert_eq!(uniform(1, 10, 0.0, 1.0), uniform(1, 10, 0.0, 1.0));
        assert_ne!(uniform(1, 10, 0.0, 1.0), uniform(2, 10, 0.0, 1.0));
    }

    #[test]
    fn ranges_respected() {
        for v in uniform(3, 100, -2.0, 2.0) {
            assert!((-2.0..2.0).contains(&v));
        }
        for v in ints(4, 100, 5, 10) {
            assert!((5.0..10.0).contains(&v));
            assert_eq!(v.fract(), 0.0);
        }
        for v in booleans(5, 100, 0.5) {
            assert!(v == 0.0 || v == 1.0);
        }
    }

    #[test]
    fn values_are_f32_representable() {
        for v in uniform(6, 50, 0.0, 1000.0) {
            assert_eq!(v, v as f32 as f64);
        }
    }
}
