//! The chaos suite: seeded connection faults plus injected evaluation
//! panics, driven through a real server over real sockets, asserting
//! the client-visible result is **bit-identical** to a fault-free
//! in-process sweep — faults may cost retries, never correctness.

use std::time::Duration;

use dhdl_dse::{explore, DesignPoint, DseOptions};
use dhdl_estimate::Estimator;
use dhdl_serve::json::Json;
use dhdl_serve::{
    parse_faults, ChaosConfig, Client, Op, Request, RetryPolicy, Server, ServerConfig,
};
use dhdl_target::Platform;

/// The server's calibration recipe, repeated in-process so both sides
/// hold the *same* estimator (calibration is deterministic in the
/// seed).
fn estimator() -> Estimator {
    Estimator::calibrate_with(&Platform::maia(), 20, 7).0
}

fn temp_dir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("dhdl-serve-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// Render a sweep result as the CSV the figure pipeline consumes: one
/// bit-pattern row per point plus the Pareto index list. Byte equality
/// of two renderings is bit-identity of the results.
fn sweep_csv(points: &[DesignPoint], pareto: &[usize]) -> String {
    let mut out = String::from("params,cycles,alms,regs,dsps,brams,valid\n");
    for p in points {
        let params: Vec<String> = p
            .params
            .iter()
            .map(|(name, value)| format!("{name}={value}"))
            .collect();
        out.push_str(&format!(
            "{};{:016x};{:016x};{:016x};{:016x};{:016x};{}\n",
            params.join(" "),
            p.cycles.to_bits(),
            p.area.alms.to_bits(),
            p.area.regs.to_bits(),
            p.area.dsps.to_bits(),
            p.area.brams.to_bits(),
            u8::from(p.valid),
        ));
    }
    out.push_str(&format!(
        "pareto,{}\n",
        pareto
            .iter()
            .map(usize::to_string)
            .collect::<Vec<_>>()
            .join(" ")
    ));
    out
}

/// Parse a server sweep response into the same shape `explore` returns.
fn parse_sweep(resp: &Json) -> (Vec<DesignPoint>, Vec<usize>) {
    let points: Vec<DesignPoint> = resp
        .get("points")
        .and_then(Json::as_arr)
        .expect("points array")
        .iter()
        .map(|v| dhdl_serve::point_from_json(v).expect("well-formed point"))
        .collect();
    let pareto: Vec<usize> = resp
        .get("pareto")
        .and_then(Json::as_arr)
        .expect("pareto array")
        .iter()
        .map(|v| v.as_u64().expect("pareto index") as usize)
        .collect();
    (points, pareto)
}

#[test]
fn chaotic_server_sweep_is_bit_identical_to_fault_free_in_process() {
    const BENCH: &str = "dotproduct";
    const POINTS: usize = 200;
    const SEED: u64 = 0xF1675;

    // Fault-free, in-process reference.
    let bench = dhdl_apps::by_name(BENCH).unwrap();
    let space = bench.param_space();
    let opts = DseOptions {
        max_points: POINTS,
        seed: SEED,
        ..DseOptions::default()
    };
    let reference = explore(|p| bench.build(p), &space, &estimator(), &opts);
    assert!(!reference.points.is_empty());
    let reference_csv = sweep_csv(&reference.points, &reference.pareto);

    // A server under fire: connection drops, truncated responses and
    // stalls at the transport layer, plus 5% transient evaluation
    // panics underneath the runner.
    let ckpt_dir = temp_dir("chaos-ckpt");
    let cfg = ServerConfig {
        addr: "127.0.0.1:0".to_string(),
        chaos: ChaosConfig::parse("drop=0.15,trunc=0.1,stall=0.05,stall_ms=3,seed=11").unwrap(),
        faults: Some(parse_faults("panic=0.05,seed=9").unwrap()),
        checkpoint_dir: ckpt_dir.clone(),
        read_timeout: Duration::from_secs(2),
        write_timeout: Duration::from_secs(2),
        ..ServerConfig::default()
    };
    let (addr, handle) = Server::spawn(cfg).unwrap();
    let mut client = Client::new(
        addr,
        RetryPolicy {
            max_attempts: 10,
            base: Duration::from_millis(5),
            cap: Duration::from_millis(100),
            seed: 3,
        },
    )
    .with_timeout(Duration::from_secs(30));

    // Rattle the connection layer with a burst of small requests so the
    // seeded chaos demonstrably fires before the sweep goes through.
    for _ in 0..30 {
        let resp = client.request_ok(&Request::new(Op::Health)).unwrap();
        assert_eq!(resp.get("status").and_then(Json::as_str), Some("ok"));
    }

    let mut sweep = Request::new(Op::Sweep {
        bench: BENCH.to_string(),
        points: POINTS,
        seed: SEED,
        strategy: None,
        num_fpgas: None,
    });
    // The idempotency key: every chaos-forced retry resumes the same
    // server-side checkpoint instead of restarting the sweep.
    sweep.header.key = Some("chaos-sweep-1".to_string());
    let resp = client.request_ok(&sweep).expect("sweep survives chaos");
    assert_eq!(resp.get("truncated").and_then(Json::as_bool), Some(false));
    let (points, pareto) = parse_sweep(&resp);
    let served_csv = sweep_csv(&points, &pareto);
    assert_eq!(
        served_csv, reference_csv,
        "sweep through a chaotic server must be byte-identical to the fault-free in-process run"
    );

    // The run must actually have been chaotic: the client absorbed
    // transport faults, and the server counted injected ones.
    let stats = client.request_ok(&Request::new(Op::Stats)).unwrap();
    let n = |field: &str| stats.get(field).and_then(Json::as_u64).unwrap_or(0);
    assert!(
        n("chaos_drops") + n("chaos_truncations") + n("chaos_stalls") > 0,
        "chaos layer never fired; the test proved nothing"
    );
    assert!(
        client.transport_retries > 0,
        "client never had to retry; the test proved nothing"
    );

    // Graceful drain: shutdown op, server thread exits cleanly.
    let resp = client.request_ok(&Request::new(Op::Shutdown)).unwrap();
    assert_eq!(resp.get("state").and_then(Json::as_str), Some("draining"));
    drop(client);
    handle.join().unwrap().unwrap();
    let _ = std::fs::remove_dir_all(&ckpt_dir);
}

#[test]
fn deadline_truncates_and_idempotent_retry_resumes() {
    const BENCH: &str = "gemm";
    const POINTS: usize = 120;
    const SEED: u64 = 0xDEAD;

    let bench = dhdl_apps::by_name(BENCH).unwrap();
    let space = bench.param_space();
    let opts = DseOptions {
        max_points: POINTS,
        seed: SEED,
        ..DseOptions::default()
    };
    let reference = explore(|p| bench.build(p), &space, &estimator(), &opts);
    let reference_csv = sweep_csv(&reference.points, &reference.pareto);

    let ckpt_dir = temp_dir("deadline-ckpt");
    let cfg = ServerConfig {
        addr: "127.0.0.1:0".to_string(),
        checkpoint_dir: ckpt_dir.clone(),
        ..ServerConfig::default()
    };
    let (addr, handle) = Server::spawn(cfg).unwrap();
    let mut client = Client::new(addr, RetryPolicy::default());

    // An expired deadline cancels the sweep — it comes back flagged
    // `truncated`, never silently completed — and leaves a checkpoint.
    let mut first = Request::new(Op::Sweep {
        bench: BENCH.to_string(),
        points: POINTS,
        seed: SEED,
        strategy: None,
        num_fpgas: None,
    });
    first.header.key = Some("resume-me".to_string());
    first.header.deadline_ms = Some(0);
    let resp = client.request_ok(&first).unwrap();
    assert_eq!(
        resp.get("truncated").and_then(Json::as_bool),
        Some(true),
        "a 0ms deadline must truncate, not silently complete"
    );

    // The retry with the same idempotency key and no deadline resumes
    // the checkpoint and completes, matching the reference exactly.
    let mut retry = first.clone();
    retry.header.deadline_ms = None;
    let resp = client.request_ok(&retry).unwrap();
    assert_eq!(resp.get("truncated").and_then(Json::as_bool), Some(false));
    let (points, pareto) = parse_sweep(&resp);
    assert_eq!(sweep_csv(&points, &pareto), reference_csv);

    // An expired deadline on an estimate *miss* is likewise cancelled
    // (a benchmark this test has not swept, so the cache cannot answer).
    let cold = dhdl_apps::by_name("tpchq6").unwrap();
    let mut est = Request::new(Op::Estimate {
        bench: "tpchq6".to_string(),
        params: cold.default_params(),
    });
    est.header.deadline_ms = Some(0);
    let resp = client.request(&est).unwrap();
    assert_eq!(resp.get("status").and_then(Json::as_str), Some("error"));
    assert_eq!(
        resp.get("code").and_then(Json::as_str),
        Some("deadline_exceeded")
    );

    client.request_ok(&Request::new(Op::Shutdown)).unwrap();
    drop(client);
    handle.join().unwrap().unwrap();
    let _ = std::fs::remove_dir_all(&ckpt_dir);
}
