//! Overload behavior over real sockets: bounded queues reject instead
//! of growing, saturation degrades to cache-only service with the
//! `degraded` flag, and drain flushes state and exits cleanly.

use std::time::Duration;

use dhdl_serve::json::Json;
use dhdl_serve::{
    AdmissionConfig, Client, ClientError, Op, Request, RetryPolicy, Server, ServerConfig,
};

fn temp_dir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("dhdl-serve-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

#[test]
fn overloaded_sweeps_are_rejected_explicitly_and_queues_stay_bounded() {
    const GLOBAL_CAP: usize = 3;
    let ckpt_dir = temp_dir("overload-ckpt");
    let cfg = ServerConfig {
        addr: "127.0.0.1:0".to_string(),
        admission: AdmissionConfig {
            tenant_cap: 2,
            global_cap: GLOBAL_CAP,
            sweep_cap: 1,
            retry_after_ms: 20,
        },
        max_sweep_points: 150,
        sweep_threads: 1,
        checkpoint_dir: ckpt_dir.clone(),
        ..ServerConfig::default()
    };
    let (addr, handle) = Server::spawn(cfg).unwrap();

    // Six tenants fire sweeps at once against a sweep cap of one, with
    // no retry budget: the excess must come back as explicit 429-style
    // rejections carrying retry_after_ms — not queue, not OOM, not hang.
    let outcomes: Vec<Result<bool, ClientError>> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..6)
            .map(|i| {
                s.spawn(move || {
                    let mut client = Client::new(
                        addr,
                        RetryPolicy {
                            max_attempts: 1,
                            ..RetryPolicy::default()
                        },
                    )
                    .with_timeout(Duration::from_secs(60));
                    let mut req = Request::new(Op::Sweep {
                        bench: "dotproduct".to_string(),
                        points: 150,
                        seed: 0x0DD + i,
                        strategy: None,
                        num_fpgas: None,
                    });
                    req.header.tenant = format!("tenant-{i}");
                    req.header.priority = 2;
                    client
                        .request(&req)
                        .map(|r| r.get("status").and_then(Json::as_str) == Some("ok"))
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    let completed = outcomes.iter().filter(|o| matches!(o, Ok(true))).count();
    let rejected = outcomes
        .iter()
        .filter(|o| matches!(o, Err(ClientError::Rejected(_))))
        .count();
    assert!(completed >= 1, "at least one sweep must get through");
    assert!(
        rejected >= 1,
        "a sweep cap of 1 against 6 concurrent sweeps must reject some ({outcomes:?})"
    );
    assert_eq!(completed + rejected, 6, "no third outcome: {outcomes:?}");

    // The bounded-queue invariant, from the server's own accounting:
    // in-flight work never exceeded the global cap.
    let mut client = Client::new(addr, RetryPolicy::default());
    let stats = client.request_ok(&Request::new(Op::Stats)).unwrap();
    let peak = stats.get("peak_inflight").and_then(Json::as_u64).unwrap();
    assert!(
        peak as usize <= GLOBAL_CAP,
        "peak {peak} > cap {GLOBAL_CAP}"
    );
    assert!(
        stats
            .get("rejected_overload")
            .and_then(Json::as_u64)
            .unwrap()
            >= 1
    );

    client.request_ok(&Request::new(Op::Shutdown)).unwrap();
    drop(client);
    handle.join().unwrap().unwrap();
    let _ = std::fs::remove_dir_all(&ckpt_dir);
}

#[test]
fn saturation_serves_warm_cache_hits_degraded_and_drain_flushes() {
    let ckpt_dir = temp_dir("degraded-ckpt");
    let cache_dir = temp_dir("degraded-cache");
    let cfg = ServerConfig {
        addr: "127.0.0.1:0".to_string(),
        checkpoint_dir: ckpt_dir.clone(),
        cache_dir: Some(cache_dir.clone()),
        ..ServerConfig::default()
    };
    let (addr, handle) = Server::spawn(cfg).unwrap();
    let mut client = Client::new(addr, RetryPolicy::default());

    // Warm one estimate: first ask misses (real work), second hits.
    let bench = dhdl_apps::by_name("dotproduct").unwrap();
    let warm = Request::new(Op::Estimate {
        bench: "dotproduct".to_string(),
        params: bench.default_params(),
    });
    let first = client.request_ok(&warm).unwrap();
    assert_eq!(first.get("cached").and_then(Json::as_bool), Some(false));
    assert_eq!(first.get("degraded").and_then(Json::as_bool), Some(false));
    let second = client.request_ok(&warm).unwrap();
    assert_eq!(second.get("cached").and_then(Json::as_bool), Some(true));
    assert_eq!(second.get("degraded").and_then(Json::as_bool), Some(false));
    // The cached answer is bit-identical to the computed one.
    for field in ["cycles", "alms", "regs", "dsps", "brams"] {
        assert_eq!(first.get(field), second.get(field), "{field}");
    }

    // Put the server in its most degraded state (draining: no new work
    // at all) on this same connection, which stays serviced.
    client.request_ok(&Request::new(Op::Shutdown)).unwrap();

    // Warm hits are still served — flagged degraded — while anything
    // needing real work is rejected outright.
    let hit = client.request_ok(&warm).unwrap();
    assert_eq!(hit.get("cached").and_then(Json::as_bool), Some(true));
    assert_eq!(
        hit.get("degraded").and_then(Json::as_bool),
        Some(true),
        "a possibly-stale answer during drain must be flagged"
    );
    let cold_bench = dhdl_apps::by_name("gemm").unwrap();
    let cold = Request::new(Op::Estimate {
        bench: "gemm".to_string(),
        params: cold_bench.default_params(),
    });
    match client.request(&cold) {
        Err(ClientError::Rejected(code)) => assert_eq!(code, "draining"),
        other => panic!("cold estimate during drain must be rejected, got {other:?}"),
    }

    // Drain completes cleanly and flushes the estimate cache to disk.
    drop(client);
    handle.join().unwrap().unwrap();
    let files: Vec<_> = std::fs::read_dir(&cache_dir)
        .unwrap()
        .filter_map(|e| e.ok())
        .map(|e| e.file_name().to_string_lossy().into_owned())
        .collect();
    assert!(
        files.iter().any(|f| f.starts_with("estimates_")),
        "drain must flush the estimate cache, found {files:?}"
    );
    let _ = std::fs::remove_dir_all(&ckpt_dir);
    let _ = std::fs::remove_dir_all(&cache_dir);
}
