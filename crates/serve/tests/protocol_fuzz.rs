//! Seeded protocol fuzzing over a live server: malformed, truncated and
//! oversized frames must each produce either a structured error
//! response or a clean connection close — never a hang, a torn healthy
//! response, or a dead server.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::Duration;

use dhdl_serve::json::Json;
use dhdl_serve::{read_frame, write_frame, Client, Op, Request, RetryPolicy, Server, ServerConfig};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const MAX_FRAME: usize = 64 * 1024;

fn spawn_server() -> (
    std::net::SocketAddr,
    std::thread::JoinHandle<std::io::Result<()>>,
) {
    let cfg = ServerConfig {
        addr: "127.0.0.1:0".to_string(),
        max_frame: MAX_FRAME,
        read_timeout: Duration::from_millis(500),
        write_timeout: Duration::from_millis(500),
        checkpoint_dir: std::env::temp_dir().join(format!("dhdl-fuzz-ckpt-{}", std::process::id())),
        ..ServerConfig::default()
    };
    Server::spawn(cfg).unwrap()
}

/// One malformed payload, drawn from a seeded generator in the style of
/// the conformance harness: structured mutations of valid requests plus
/// raw garbage, so the fuzz walks both near-misses and noise.
fn hostile_payload(rng: &mut StdRng) -> Vec<u8> {
    let valid = Request::new(Op::Estimate {
        bench: "dotproduct".to_string(),
        params: dhdl_core::ParamValues::new()
            .with("tile", 64)
            .with("par", 4),
    })
    .render();
    match rng.gen_range(0..10u32) {
        // Raw bytes, possibly invalid UTF-8.
        0 => (0..rng.gen_range(0..200usize))
            .map(|_| rng.gen_range(0..=255u32) as u8)
            .collect(),
        // Truncated valid request.
        1 => {
            let cut = rng.gen_range(0..valid.len());
            valid[..cut].to_vec()
        }
        // Valid JSON, wrong shape.
        2 => b"[1,2,3]".to_vec(),
        3 => b"42".to_vec(),
        4 => br#"{"not_op":"health"}"#.to_vec(),
        // Unknown / mistyped ops and fields.
        5 => br#"{"op":"warp_drive"}"#.to_vec(),
        6 => br#"{"op":"sweep","bench":"dotproduct","points":"many"}"#.to_vec(),
        7 => br#"{"op":"estimate","bench":"no-such-bench","params":{}}"#.to_vec(),
        // Deep nesting (must hit the parser's depth guard, not the stack).
        8 => {
            let depth = rng.gen_range(100..2000usize);
            let mut v = vec![b'['; depth];
            v.extend(vec![b']'; depth]);
            v
        }
        // A huge (but in-limit) string body.
        _ => {
            let mut v = br#"{"op":""#.to_vec();
            v.extend(vec![b'x'; rng.gen_range(0..8192usize)]);
            v.extend(br#""}"#);
            v
        }
    }
}

fn connect(addr: std::net::SocketAddr) -> TcpStream {
    let s = TcpStream::connect(addr).unwrap();
    s.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
    s.set_write_timeout(Some(Duration::from_secs(5))).unwrap();
    s
}

fn assert_healthy(addr: std::net::SocketAddr) {
    let mut client = Client::new(addr, RetryPolicy::default());
    let resp = client
        .request_ok(&Request::new(Op::Health))
        .expect("server must stay healthy under fuzzing");
    assert_eq!(resp.get("state").and_then(Json::as_str), Some("accepting"));
}

#[test]
fn malformed_frames_get_structured_errors_and_server_survives() {
    let (addr, handle) = spawn_server();
    let mut rng = StdRng::seed_from_u64(0xF022);
    for batch in 0..20 {
        let mut stream = connect(addr);
        for _ in 0..15 {
            let payload = hostile_payload(&mut rng);
            if write_frame(&mut stream, &payload, MAX_FRAME).is_err() {
                // The server closed on an earlier hostile frame (its
                // right); reconnect and keep fuzzing.
                stream = connect(addr);
                continue;
            }
            match read_frame(&mut stream, dhdl_serve::DEFAULT_MAX_RESPONSE) {
                Ok(resp) => {
                    // Whatever came back must be a well-formed protocol
                    // answer: parseable JSON with a status field, and
                    // malformed requests specifically get `error` plus a
                    // machine-readable code.
                    let v = Json::parse(&resp).expect("response must be valid JSON");
                    let status = v.get("status").and_then(Json::as_str);
                    assert!(
                        matches!(status, Some("ok") | Some("error")),
                        "unexpected status in {v:?}"
                    );
                    if status == Some("error") {
                        assert!(
                            v.get("code").and_then(Json::as_str).is_some(),
                            "error without code: {v:?}"
                        );
                    }
                }
                Err(_) => {
                    // Clean close is acceptable; a fresh connection must
                    // work again immediately.
                    stream = connect(addr);
                }
            }
        }
        // After every batch the server still answers health from a
        // clean connection.
        assert_healthy(addr);
        let _ = batch;
    }
    let mut client = Client::new(addr, RetryPolicy::default());
    client.request_ok(&Request::new(Op::Shutdown)).unwrap();
    drop(client);
    handle.join().unwrap().unwrap();
}

#[test]
fn oversized_and_torn_frames_are_bounded_and_survivable() {
    let (addr, handle) = spawn_server();

    // A frame declaring more than the limit: the server answers with a
    // structured `frame_too_large` error and closes — without ever
    // allocating the declared size.
    let mut stream = connect(addr);
    stream
        .write_all(&((MAX_FRAME as u32) + 1).to_be_bytes())
        .unwrap();
    stream
        .write_all(b"garbage that will never be read")
        .unwrap();
    let resp = read_frame(&mut stream, dhdl_serve::DEFAULT_MAX_RESPONSE)
        .expect("oversized frame gets a structured answer");
    let v = Json::parse(&resp).unwrap();
    assert_eq!(v.get("status").and_then(Json::as_str), Some("error"));
    assert_eq!(
        v.get("code").and_then(Json::as_str),
        Some("frame_too_large")
    );
    // ...and the connection is closed afterwards.
    let mut buf = [0u8; 1];
    assert_eq!(stream.read(&mut buf).unwrap_or(0), 0);

    // A declared-4GiB frame likewise costs nothing.
    let mut stream = connect(addr);
    stream.write_all(&u32::MAX.to_be_bytes()).unwrap();
    let resp = read_frame(&mut stream, dhdl_serve::DEFAULT_MAX_RESPONSE).unwrap();
    let v = Json::parse(&resp).unwrap();
    assert_eq!(
        v.get("code").and_then(Json::as_str),
        Some("frame_too_large")
    );
    drop(stream);

    // A torn prefix (2 of 4 length bytes, then silence): the slow-client
    // read timeout reaps the connection instead of wedging the worker.
    let mut stream = connect(addr);
    stream.write_all(&[0u8, 0]).unwrap();
    std::thread::sleep(Duration::from_millis(800));
    let mut buf = [0u8; 8];
    // The server has closed on us (read returns 0) or reset the
    // connection (Err); either is a clean, bounded outcome.
    if let Ok(n) = stream.read(&mut buf) {
        assert_eq!(n, 0, "no healthy response can follow a torn prefix");
    }

    // A torn payload (frame promises 100 bytes, delivers 10, closes).
    let mut stream = connect(addr);
    stream.write_all(&100u32.to_be_bytes()).unwrap();
    stream.write_all(&[b'x'; 10]).unwrap();
    drop(stream);

    assert_healthy(addr);
    let mut client = Client::new(addr, RetryPolicy::default());
    client.request_ok(&Request::new(Op::Shutdown)).unwrap();
    drop(client);
    handle.join().unwrap().unwrap();
}
