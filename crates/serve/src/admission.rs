//! Admission control and backpressure: bounded queues, explicit
//! rejection, and a deterministic degradation ladder.
//!
//! Every unit of work (an estimate or a sweep) must take a [`Permit`]
//! before touching the runner. Permits are bounded three ways:
//!
//! * **per tenant** — each tenant gets an independent bounded queue
//!   ([`AdmissionConfig::tenant_cap`]), so one noisy client saturates
//!   its own queue, not the server;
//! * **globally** — total in-flight work is capped
//!   ([`AdmissionConfig::global_cap`]); the occupancy fraction drives
//!   the degradation ladder;
//! * **per kind** — concurrent sweeps (the expensive kind) have their
//!   own cap ([`AdmissionConfig::sweep_cap`]).
//!
//! When a bound is hit the request is **rejected explicitly** (the
//! 429-style `status: "rejected"` response with `retry_after_ms`) —
//! never queued unboundedly, never dropped silently. The ladder:
//!
//! | level | trigger | behavior |
//! |---|---|---|
//! | `Normal` | occupancy < ½ | admit everything within caps |
//! | `Busy` | occupancy ≥ ½ | shed priority-0 sweeps |
//! | `Saturated` | occupancy = cap | reject sweeps and estimate *misses*; cache hits still answered, flagged `degraded` |
//! | draining | SIGTERM/shutdown | reject all new work (`draining`) |
//!
//! Rejections are instantaneous and allocation-free, which is what keeps
//! the overload test's p99 for cache-hit estimates in single-digit
//! milliseconds while the runner is saturated.

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

/// Queue bounds for an [`Admission`] gate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AdmissionConfig {
    /// Maximum in-flight requests per tenant.
    pub tenant_cap: usize,
    /// Maximum in-flight requests across all tenants.
    pub global_cap: usize,
    /// Maximum concurrent sweeps.
    pub sweep_cap: usize,
    /// `retry_after_ms` hint attached to rejections.
    pub retry_after_ms: u64,
}

impl Default for AdmissionConfig {
    fn default() -> Self {
        AdmissionConfig {
            tenant_cap: 32,
            global_cap: 128,
            sweep_cap: 4,
            retry_after_ms: 50,
        }
    }
}

/// The degradation-ladder level implied by current occupancy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LoadLevel {
    /// Occupancy below half the global cap.
    Normal,
    /// Occupancy at or above half the global cap: priority-0 sweeps are
    /// shed.
    Busy,
    /// Occupancy at the global cap: only cache hits are served (flagged
    /// `degraded`).
    Saturated,
}

/// Why a request was not admitted.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Rejection {
    /// Stable rejection code (`draining`, `tenant_queue_full`,
    /// `overloaded`, `shed_low_priority`).
    pub code: &'static str,
    /// How long the client should back off before retrying.
    pub retry_after_ms: u64,
}

/// The kind of work asking for admission.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WorkKind {
    /// A single-point estimate (cheap).
    Estimate,
    /// A DSE sweep (expensive; separately capped and shed first).
    Sweep,
}

#[derive(Debug, Default)]
struct Counters {
    rejected_tenant: AtomicUsize,
    rejected_overload: AtomicUsize,
    rejected_shed: AtomicUsize,
    rejected_draining: AtomicUsize,
    admitted: AtomicUsize,
    peak_inflight: AtomicUsize,
}

#[derive(Debug)]
struct Inner {
    cfg: AdmissionConfig,
    per_tenant: Mutex<HashMap<String, usize>>,
    inflight: AtomicUsize,
    sweeps: AtomicUsize,
    draining: AtomicBool,
    counters: Counters,
}

/// The admission gate. Cheap to clone (an `Arc`); one per server.
#[derive(Debug, Clone)]
pub struct Admission {
    inner: Arc<Inner>,
}

/// A successfully admitted unit of work; releases its tenant/global/
/// sweep slots on drop, so a panicking handler can never leak capacity.
#[derive(Debug)]
pub struct Permit {
    inner: Arc<Inner>,
    tenant: String,
    kind: WorkKind,
}

impl Drop for Permit {
    fn drop(&mut self) {
        self.inner.inflight.fetch_sub(1, Ordering::SeqCst);
        if self.kind == WorkKind::Sweep {
            self.inner.sweeps.fetch_sub(1, Ordering::SeqCst);
        }
        let mut map = self
            .inner
            .per_tenant
            .lock()
            .unwrap_or_else(|e| e.into_inner());
        if let Some(n) = map.get_mut(&self.tenant) {
            *n -= 1;
            if *n == 0 {
                map.remove(&self.tenant);
            }
        }
    }
}

/// A point-in-time snapshot of admission counters, surfaced by the
/// `stats` op.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct AdmissionStats {
    /// Currently in-flight admitted requests.
    pub inflight: usize,
    /// Highest in-flight count ever observed (must never exceed the
    /// global cap — the overload test asserts this).
    pub peak_inflight: usize,
    /// Currently running sweeps.
    pub sweeps: usize,
    /// Total admitted requests.
    pub admitted: usize,
    /// Rejections because the tenant queue was full.
    pub rejected_tenant: usize,
    /// Rejections because the server was overloaded (global/sweep cap).
    pub rejected_overload: usize,
    /// Priority-0 sweeps shed under load.
    pub rejected_shed: usize,
    /// Rejections because the server was draining.
    pub rejected_draining: usize,
}

impl Admission {
    /// A gate with the given bounds.
    pub fn new(cfg: AdmissionConfig) -> Self {
        Admission {
            inner: Arc::new(Inner {
                cfg,
                per_tenant: Mutex::new(HashMap::new()),
                inflight: AtomicUsize::new(0),
                sweeps: AtomicUsize::new(0),
                draining: AtomicBool::new(false),
                counters: Counters::default(),
            }),
        }
    }

    /// The configured bounds.
    pub fn config(&self) -> AdmissionConfig {
        self.inner.cfg
    }

    /// Enter draining mode: every subsequent admission attempt is
    /// rejected with `draining`. Idempotent.
    pub fn drain(&self) {
        self.inner.draining.store(true, Ordering::SeqCst);
    }

    /// Whether the gate is draining.
    pub fn is_draining(&self) -> bool {
        self.inner.draining.load(Ordering::SeqCst)
    }

    /// The current degradation-ladder level.
    pub fn level(&self) -> LoadLevel {
        let inflight = self.inner.inflight.load(Ordering::SeqCst);
        let cap = self.inner.cfg.global_cap;
        if inflight >= cap {
            LoadLevel::Saturated
        } else if inflight * 2 >= cap {
            LoadLevel::Busy
        } else {
            LoadLevel::Normal
        }
    }

    /// Try to admit one unit of work for `tenant` at `priority`.
    ///
    /// # Errors
    ///
    /// Returns a [`Rejection`] (never blocks, never queues) when a bound
    /// is hit or the gate is draining.
    pub fn admit(&self, tenant: &str, priority: u8, kind: WorkKind) -> Result<Permit, Rejection> {
        let inner = &self.inner;
        let reject = |code: &'static str, counter: &AtomicUsize| {
            counter.fetch_add(1, Ordering::Relaxed);
            dhdl_obs::counter!("serve.admission.rejected").incr();
            Err(Rejection {
                code,
                retry_after_ms: inner.cfg.retry_after_ms,
            })
        };
        if inner.draining.load(Ordering::SeqCst) {
            return reject("draining", &inner.counters.rejected_draining);
        }
        // Reserve the global slot first; it is the ladder's input.
        let prev = inner.inflight.fetch_add(1, Ordering::SeqCst);
        if prev >= inner.cfg.global_cap {
            inner.inflight.fetch_sub(1, Ordering::SeqCst);
            return reject("overloaded", &inner.counters.rejected_overload);
        }
        let release_global = || {
            inner.inflight.fetch_sub(1, Ordering::SeqCst);
        };
        if kind == WorkKind::Sweep {
            // Shed lowest-priority sweeps once Busy; reject all sweeps
            // beyond the sweep cap or when Saturated.
            let occupancy = prev + 1;
            if occupancy >= inner.cfg.global_cap {
                release_global();
                return reject("overloaded", &inner.counters.rejected_overload);
            }
            if priority == 0 && occupancy * 2 >= inner.cfg.global_cap {
                release_global();
                return reject("shed_low_priority", &inner.counters.rejected_shed);
            }
            let prev_sweeps = inner.sweeps.fetch_add(1, Ordering::SeqCst);
            if prev_sweeps >= inner.cfg.sweep_cap {
                inner.sweeps.fetch_sub(1, Ordering::SeqCst);
                release_global();
                return reject("overloaded", &inner.counters.rejected_overload);
            }
        }
        {
            let mut map = inner.per_tenant.lock().unwrap_or_else(|e| e.into_inner());
            let n = map.entry(tenant.to_string()).or_insert(0);
            if *n >= inner.cfg.tenant_cap {
                drop(map);
                if kind == WorkKind::Sweep {
                    inner.sweeps.fetch_sub(1, Ordering::SeqCst);
                }
                release_global();
                return reject("tenant_queue_full", &inner.counters.rejected_tenant);
            }
            *n += 1;
        }
        inner.counters.admitted.fetch_add(1, Ordering::Relaxed);
        dhdl_obs::counter!("serve.admission.admitted").incr();
        // Track the high-water mark for the bounded-queues assertion.
        let now = inner.inflight.load(Ordering::SeqCst);
        inner
            .counters
            .peak_inflight
            .fetch_max(now, Ordering::SeqCst);
        Ok(Permit {
            inner: Arc::clone(inner),
            tenant: tenant.to_string(),
            kind,
        })
    }

    /// Snapshot the counters.
    pub fn stats(&self) -> AdmissionStats {
        let c = &self.inner.counters;
        AdmissionStats {
            inflight: self.inner.inflight.load(Ordering::SeqCst),
            peak_inflight: c.peak_inflight.load(Ordering::SeqCst),
            sweeps: self.inner.sweeps.load(Ordering::SeqCst),
            admitted: c.admitted.load(Ordering::Relaxed),
            rejected_tenant: c.rejected_tenant.load(Ordering::Relaxed),
            rejected_overload: c.rejected_overload.load(Ordering::Relaxed),
            rejected_shed: c.rejected_shed.load(Ordering::Relaxed),
            rejected_draining: c.rejected_draining.load(Ordering::Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn gate(tenant_cap: usize, global_cap: usize, sweep_cap: usize) -> Admission {
        Admission::new(AdmissionConfig {
            tenant_cap,
            global_cap,
            sweep_cap,
            retry_after_ms: 25,
        })
    }

    #[test]
    fn per_tenant_queues_are_bounded_independently() {
        let a = gate(2, 100, 100);
        let _p1 = a.admit("alice", 1, WorkKind::Estimate).unwrap();
        let _p2 = a.admit("alice", 1, WorkKind::Estimate).unwrap();
        let r = a.admit("alice", 1, WorkKind::Estimate).unwrap_err();
        assert_eq!(r.code, "tenant_queue_full");
        assert_eq!(r.retry_after_ms, 25);
        // A different tenant is unaffected.
        let _p3 = a.admit("bob", 1, WorkKind::Estimate).unwrap();
        assert_eq!(a.stats().rejected_tenant, 1);
    }

    #[test]
    fn permits_release_on_drop_even_across_kinds() {
        let a = gate(1, 10, 1);
        let p = a.admit("t", 1, WorkKind::Sweep).unwrap();
        assert_eq!(a.stats().inflight, 1);
        assert_eq!(a.stats().sweeps, 1);
        drop(p);
        assert_eq!(a.stats().inflight, 0);
        assert_eq!(a.stats().sweeps, 0);
        // The slot is reusable.
        let _p = a.admit("t", 1, WorkKind::Sweep).unwrap();
    }

    #[test]
    fn global_cap_bounds_total_inflight() {
        let a = gate(100, 3, 100);
        let permits: Vec<Permit> = (0..3)
            .map(|i| a.admit(&format!("t{i}"), 2, WorkKind::Estimate).unwrap())
            .collect();
        let r = a.admit("t9", 2, WorkKind::Estimate).unwrap_err();
        assert_eq!(r.code, "overloaded");
        assert_eq!(a.stats().peak_inflight, 3);
        assert_eq!(a.level(), LoadLevel::Saturated);
        drop(permits);
        assert_eq!(a.level(), LoadLevel::Normal);
    }

    #[test]
    fn ladder_sheds_low_priority_sweeps_first() {
        let a = gate(100, 4, 100);
        // Occupancy 2/4 → Busy: a priority-0 sweep is shed, priority-1
        // is admitted.
        let _keep: Vec<Permit> = (0..2)
            .map(|_| a.admit("bg", 1, WorkKind::Estimate).unwrap())
            .collect();
        assert_eq!(a.level(), LoadLevel::Busy);
        let r = a.admit("low", 0, WorkKind::Sweep).unwrap_err();
        assert_eq!(r.code, "shed_low_priority");
        let ok = a.admit("hi", 1, WorkKind::Sweep);
        assert!(ok.is_ok());
        assert_eq!(a.stats().rejected_shed, 1);
    }

    #[test]
    fn sweep_cap_is_separate_from_global() {
        let a = gate(100, 100, 1);
        let _s1 = a.admit("t", 2, WorkKind::Sweep).unwrap();
        let r = a.admit("t", 2, WorkKind::Sweep).unwrap_err();
        assert_eq!(r.code, "overloaded");
        // Estimates still flow.
        assert!(a.admit("t", 2, WorkKind::Estimate).is_ok());
    }

    #[test]
    fn draining_rejects_everything() {
        let a = gate(10, 10, 10);
        a.drain();
        assert!(a.is_draining());
        let r = a.admit("t", 2, WorkKind::Estimate).unwrap_err();
        assert_eq!(r.code, "draining");
        assert_eq!(a.stats().rejected_draining, 1);
    }

    #[test]
    fn concurrent_admission_never_exceeds_caps() {
        let a = gate(64, 16, 8);
        std::thread::scope(|s| {
            for t in 0..8 {
                let a = a.clone();
                s.spawn(move || {
                    for i in 0..200 {
                        let kind = if i % 3 == 0 {
                            WorkKind::Sweep
                        } else {
                            WorkKind::Estimate
                        };
                        if let Ok(p) = a.admit(&format!("t{t}"), 1, kind) {
                            std::hint::black_box(&p);
                        }
                    }
                });
            }
        });
        let s = a.stats();
        assert!(s.peak_inflight <= 16, "peak {}", s.peak_inflight);
        assert_eq!(s.inflight, 0);
        assert_eq!(s.sweeps, 0);
    }
}
