//! Connection-level chaos: deterministic, seeded fault injection at the
//! transport layer.
//!
//! The sibling of [`dhdl_dse::FaultInjector`] (which injects *evaluation*
//! faults), this layer injects *connection* faults: dropped connections,
//! response stalls, and truncated response frames. Decisions are pure
//! functions of `(seed, connection id, frame index)` — the same mixing
//! discipline as the DSE fault injector — so a chaos run is exactly
//! reproducible: the same seed kills the same frames on every run,
//! regardless of timing or thread interleaving.
//!
//! The chaos suite in `tests/chaos.rs` runs a full sweep through a
//! server configured with this layer plus injected evaluation panics and
//! asserts the client-visible result is *bit-identical* to a fault-free
//! in-process sweep — faults may cost retries, never correctness.

use std::time::Duration;

/// Fault rates for the connection chaos layer.
#[derive(Debug, Clone, PartialEq)]
pub struct ChaosConfig {
    /// Seed mixed into every decision.
    pub seed: u64,
    /// Fraction of request frames answered by dropping the connection
    /// *before* the request is executed (client sees a dead socket and
    /// retries).
    pub drop_rate: f64,
    /// Fraction of responses whose frame is cut off mid-write, then the
    /// connection is closed (client sees a torn frame and retries).
    pub truncate_rate: f64,
    /// Fraction of responses delayed by [`ChaosConfig::stall`] before
    /// writing (exercises client timeouts without killing the request).
    pub stall_rate: f64,
    /// Stall duration for stalled responses.
    pub stall: Duration,
}

impl ChaosConfig {
    /// A disabled configuration (all rates zero).
    pub fn disabled() -> Self {
        ChaosConfig {
            seed: 0xC4A05,
            drop_rate: 0.0,
            truncate_rate: 0.0,
            stall_rate: 0.0,
            stall: Duration::from_millis(5),
        }
    }

    /// Whether any fault can ever fire.
    pub fn is_active(&self) -> bool {
        self.drop_rate > 0.0 || self.truncate_rate > 0.0 || self.stall_rate > 0.0
    }

    /// Parse the `DHDL_SERVE_CHAOS` knob:
    /// `"drop=0.05,trunc=0.05,stall=0.02,stall_ms=5,seed=7"` (any subset
    /// of keys; unknown keys are an error so typos cannot silently
    /// disable chaos).
    ///
    /// # Errors
    ///
    /// Returns a description of the offending clause.
    pub fn parse(s: &str) -> Result<ChaosConfig, String> {
        let mut cfg = ChaosConfig::disabled();
        for clause in s.split(',').filter(|c| !c.trim().is_empty()) {
            let (k, v) = clause
                .split_once('=')
                .ok_or_else(|| format!("chaos clause `{clause}` is not key=value"))?;
            let rate = || -> Result<f64, String> {
                let r: f64 = v
                    .parse()
                    .map_err(|_| format!("chaos rate `{v}` is not a number"))?;
                if !(0.0..=1.0).contains(&r) {
                    return Err(format!("chaos rate `{v}` outside [0,1]"));
                }
                Ok(r)
            };
            match k.trim() {
                "drop" => cfg.drop_rate = rate()?,
                "trunc" => cfg.truncate_rate = rate()?,
                "stall" => cfg.stall_rate = rate()?,
                "stall_ms" => {
                    cfg.stall = Duration::from_millis(
                        v.parse()
                            .map_err(|_| format!("stall_ms `{v}` is not an integer"))?,
                    )
                }
                "seed" => {
                    cfg.seed = v
                        .parse()
                        .map_err(|_| format!("seed `{v}` is not an integer"))?
                }
                other => return Err(format!("unknown chaos key `{other}`")),
            }
        }
        Ok(cfg)
    }

    /// Read `DHDL_SERVE_CHAOS` from the environment; unset means
    /// disabled, a malformed value warns and stays disabled.
    pub fn from_env() -> ChaosConfig {
        match std::env::var("DHDL_SERVE_CHAOS") {
            Ok(v) => ChaosConfig::parse(&v).unwrap_or_else(|e| {
                eprintln!("warning: DHDL_SERVE_CHAOS: {e}; chaos stays off");
                ChaosConfig::disabled()
            }),
            Err(_) => ChaosConfig::disabled(),
        }
    }

    /// The faults planned for frame `frame` of connection `conn` — a
    /// pure function of the config seed and those indices.
    pub fn plan(&self, conn: u64, frame: u64) -> ChaosPlan {
        ChaosPlan {
            drop_conn: decide(self.seed ^ 0xD809, conn, frame, self.drop_rate),
            truncate: decide(self.seed ^ 0x7095, conn, frame, self.truncate_rate),
            stall: decide(self.seed ^ 0x57A1, conn, frame, self.stall_rate),
        }
    }
}

/// The faults planned for one `(connection, frame)` pair.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChaosPlan {
    /// Drop the connection before executing the request.
    pub drop_conn: bool,
    /// Execute, then write only half the response frame and close.
    pub truncate: bool,
    /// Sleep before responding.
    pub stall: bool,
}

impl ChaosPlan {
    /// No faults.
    pub fn none() -> Self {
        ChaosPlan {
            drop_conn: false,
            truncate: false,
            stall: false,
        }
    }

    /// Whether any fault is planned.
    pub fn any(self) -> bool {
        self.drop_conn || self.truncate || self.stall
    }
}

/// SplitMix64-style avalanche of `(seed, conn, frame)`.
fn mix(seed: u64, conn: u64, frame: u64) -> u64 {
    let mut z = seed
        .wrapping_mul(0x9E37_79B9_7F4A_7C15)
        .wrapping_add(conn.wrapping_mul(0xBF58_476D_1CE4_E5B9))
        .wrapping_add(frame.wrapping_mul(0x94D0_49BB_1331_11EB));
    z ^= z >> 30;
    z = z.wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z ^= z >> 27;
    z = z.wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// `true` with probability `rate`, decided purely by the mixed hash of
/// `(salted seed, conn, frame)` — the same discipline as
/// [`dhdl_dse::FaultInjector`]'s per-design decisions.
fn decide(salted_seed: u64, conn: u64, frame: u64, rate: f64) -> bool {
    if rate <= 0.0 {
        return false;
    }
    let h = mix(salted_seed, conn, frame);
    // 53 high bits → uniform dyadic rational in [0, 1).
    let u = (h >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
    u < rate
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_accepts_subsets_and_rejects_garbage() {
        let cfg = ChaosConfig::parse("drop=0.05,trunc=0.1,stall=0.02,stall_ms=9,seed=3").unwrap();
        assert_eq!(cfg.drop_rate, 0.05);
        assert_eq!(cfg.truncate_rate, 0.1);
        assert_eq!(cfg.stall_rate, 0.02);
        assert_eq!(cfg.stall, Duration::from_millis(9));
        assert_eq!(cfg.seed, 3);
        assert!(cfg.is_active());
        assert!(!ChaosConfig::parse("").unwrap().is_active());
        for bad in ["drop", "drop=x", "drop=1.5", "nope=1", "stall_ms=x"] {
            assert!(ChaosConfig::parse(bad).is_err(), "{bad}");
        }
    }

    #[test]
    fn plans_are_deterministic_and_rate_faithful() {
        let cfg = ChaosConfig {
            drop_rate: 0.2,
            truncate_rate: 0.1,
            stall_rate: 0.05,
            ..ChaosConfig::disabled()
        };
        // Pure in (conn, frame): same inputs, same plan, every time.
        for conn in 0..20u64 {
            for frame in 0..20u64 {
                assert_eq!(cfg.plan(conn, frame), cfg.plan(conn, frame));
            }
        }
        // Empirical rates over many decisions land near the configured
        // ones (law of large numbers; wide tolerance keeps this stable).
        let n = 20_000u64;
        let (mut drops, mut truncs, mut stalls) = (0u64, 0u64, 0u64);
        for i in 0..n {
            let p = cfg.plan(i / 64, i % 64);
            drops += u64::from(p.drop_conn);
            truncs += u64::from(p.truncate);
            stalls += u64::from(p.stall);
        }
        let frac = |c: u64| c as f64 / n as f64;
        assert!((frac(drops) - 0.2).abs() < 0.02, "{}", frac(drops));
        assert!((frac(truncs) - 0.1).abs() < 0.02, "{}", frac(truncs));
        assert!((frac(stalls) - 0.05).abs() < 0.02, "{}", frac(stalls));
        // Disabled chaos plans nothing.
        let off = ChaosConfig::disabled();
        for i in 0..100 {
            assert!(!off.plan(i, i).any());
        }
    }
}
