//! The threaded TCP server: accept loop, per-connection workers, op
//! dispatch, and the graceful-drain sequence.
//!
//! One thread per connection reads length-prefixed request frames,
//! dispatches onto the shared estimator + shard-striped
//! [`EstimateCache`], and answers with one response frame per request.
//! Robustness is layered:
//!
//! * **framing** — per-connection read/write timeouts and a max request
//!   frame size enforced before allocation ([`crate::frame`]);
//! * **admission** — bounded per-tenant queues, a global cap, and the
//!   degradation ladder ([`crate::admission`]); rejected work gets an
//!   explicit 429-style response with `retry_after_ms`;
//! * **deadlines** — `deadline_ms` headers propagate into
//!   [`DseOptions::deadline`]; expired sweeps stop claiming points and
//!   return flagged `truncated` with their checkpoint retained, never
//!   silently completed;
//! * **idempotency** — a sweep's `key` header names a server-side
//!   checkpoint, so a client retry after a torn connection resumes the
//!   interrupted sweep instead of restarting it;
//! * **chaos** — the connection-level [`ChaosConfig`] and the
//!   evaluation-level [`FaultInjector`] can be armed from the
//!   environment; the chaos suite asserts results stay bit-identical.
//!
//! Drain (SIGTERM, SIGINT, or the `shutdown` op) stops the accept loop,
//! rejects new work with `draining`, lets in-flight connections finish
//! (bounded by their read timeouts and sweep deadlines), then flushes
//! the estimate cache and obs sinks before returning.

use std::collections::HashMap;
use std::io::{self, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use dhdl_apps::Benchmark;
use dhdl_core::{structural_hash, Fnv64, ParamValues};
use dhdl_dse::{
    explore, model_fingerprint, params_key, with_silent_panics, CachedModel, CostModel, DseOptions,
    EstimateCache, FaultConfig, FaultInjector, LegalSpace, SearchStrategy,
};
use dhdl_estimate::{Estimate, Estimator};
use dhdl_target::Platform;

use crate::admission::{Admission, AdmissionConfig, LoadLevel, WorkKind};
use crate::chaos::ChaosConfig;
use crate::frame::{read_frame, write_frame, FrameError, DEFAULT_MAX_FRAME, DEFAULT_MAX_RESPONSE};
use crate::json::Json;
use crate::protocol::{
    bits_str, error_response, ok_response, params_to_json, point_to_json, rejected_response,
    Header, Op, ProtoError, Request, PROTOCOL_VERSION,
};
use crate::signal;

/// Everything configurable about a [`Server`].
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Listen address (`DHDL_SERVE_ADDR`; `127.0.0.1:0` picks a port).
    pub addr: String,
    /// Admission bounds (`DHDL_SERVE_QUEUE_CAP` sets the per-tenant cap).
    pub admission: AdmissionConfig,
    /// Connection-level chaos (`DHDL_SERVE_CHAOS`).
    pub chaos: ChaosConfig,
    /// Evaluation-level fault injection (`DHDL_SERVE_FAULTS`).
    pub faults: Option<FaultConfig>,
    /// Per-connection socket read timeout: an idle or stalled peer is
    /// disconnected after this long (`DHDL_SERVE_TIMEOUT_MS`).
    pub read_timeout: Duration,
    /// Per-connection socket write timeout.
    pub write_timeout: Duration,
    /// Maximum accepted request frame.
    pub max_frame: usize,
    /// Maximum response frame; larger responses become a structured
    /// `response_too_large` error.
    pub max_response: usize,
    /// Cap on `points` accepted by a sweep request
    /// (`DHDL_SERVE_MAX_POINTS`).
    pub max_sweep_points: usize,
    /// Worker threads per sweep (`0` = all cores).
    pub sweep_threads: usize,
    /// Default deadline applied when a request carries none
    /// (`DHDL_SERVE_DEADLINE_MS`; `None` = unbounded).
    pub default_deadline: Option<Duration>,
    /// Directory for idempotency-key checkpoints
    /// (`DHDL_SERVE_CKPT_DIR`).
    pub checkpoint_dir: PathBuf,
    /// When set, the estimate cache loads from and flushes to this
    /// directory (`DHDL_SERVE_CACHE_DIR`).
    pub cache_dir: Option<PathBuf>,
    /// Estimator calibration sample count (kept small so startup is
    /// fast; calibration is deterministic in the seed).
    pub calib_samples: usize,
    /// Estimator calibration seed.
    pub calib_seed: u64,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            addr: "127.0.0.1:7436".to_string(),
            admission: AdmissionConfig::default(),
            chaos: ChaosConfig::disabled(),
            faults: None,
            read_timeout: Duration::from_secs(5),
            write_timeout: Duration::from_secs(5),
            max_frame: DEFAULT_MAX_FRAME,
            max_response: DEFAULT_MAX_RESPONSE,
            max_sweep_points: 2_000,
            sweep_threads: 0,
            default_deadline: None,
            checkpoint_dir: std::env::temp_dir().join("dhdl-serve-ckpt"),
            cache_dir: None,
            calib_samples: 20,
            calib_seed: 7,
        }
    }
}

impl ServerConfig {
    /// Build a config from the `DHDL_SERVE_*` environment knobs (see the
    /// README's environment table); unset knobs keep their defaults.
    pub fn from_env() -> Self {
        let mut cfg = ServerConfig::default();
        let get = |k: &str| std::env::var(k).ok();
        if let Some(v) = get("DHDL_SERVE_ADDR") {
            cfg.addr = v;
        }
        let parse_usize = |k: &str, into: &mut usize| {
            if let Some(v) = get(k) {
                match v.parse() {
                    Ok(n) => *into = n,
                    Err(_) => eprintln!("warning: {k}={v} is not an integer; keeping default"),
                }
            }
        };
        parse_usize("DHDL_SERVE_QUEUE_CAP", &mut cfg.admission.tenant_cap);
        parse_usize("DHDL_SERVE_GLOBAL_CAP", &mut cfg.admission.global_cap);
        parse_usize("DHDL_SERVE_SWEEP_CAP", &mut cfg.admission.sweep_cap);
        parse_usize("DHDL_SERVE_MAX_POINTS", &mut cfg.max_sweep_points);
        parse_usize("DHDL_SERVE_THREADS", &mut cfg.sweep_threads);
        if let Some(v) = get("DHDL_SERVE_DEADLINE_MS") {
            match v.parse() {
                Ok(ms) => cfg.default_deadline = Some(Duration::from_millis(ms)),
                Err(_) => eprintln!("warning: DHDL_SERVE_DEADLINE_MS={v} is not an integer"),
            }
        }
        if let Some(v) = get("DHDL_SERVE_TIMEOUT_MS") {
            match v.parse() {
                Ok(ms) => {
                    cfg.read_timeout = Duration::from_millis(ms);
                    cfg.write_timeout = Duration::from_millis(ms);
                }
                Err(_) => eprintln!("warning: DHDL_SERVE_TIMEOUT_MS={v} is not an integer"),
            }
        }
        if let Some(v) = get("DHDL_SERVE_CKPT_DIR") {
            cfg.checkpoint_dir = PathBuf::from(v);
        }
        if let Some(v) = get("DHDL_SERVE_CACHE_DIR") {
            cfg.cache_dir = Some(PathBuf::from(v));
        }
        cfg.chaos = ChaosConfig::from_env();
        if let Some(v) = get("DHDL_SERVE_FAULTS") {
            match parse_faults(&v) {
                Ok(f) => cfg.faults = Some(f),
                Err(e) => eprintln!("warning: DHDL_SERVE_FAULTS: {e}; faults stay off"),
            }
        }
        cfg
    }
}

/// Parse the `DHDL_SERVE_FAULTS` knob:
/// `"panic=0.05,nan=0.01,spike=0.02,spike_ms=5,seed=9,hard=1"`.
///
/// # Errors
///
/// Returns a description of the offending clause.
pub fn parse_faults(s: &str) -> Result<FaultConfig, String> {
    let mut cfg = FaultConfig::default();
    for clause in s.split(',').filter(|c| !c.trim().is_empty()) {
        let (k, v) = clause
            .split_once('=')
            .ok_or_else(|| format!("fault clause `{clause}` is not key=value"))?;
        let rate = || -> Result<f64, String> {
            let r: f64 = v
                .parse()
                .map_err(|_| format!("fault rate `{v}` is not a number"))?;
            if !(0.0..=1.0).contains(&r) {
                return Err(format!("fault rate `{v}` outside [0,1]"));
            }
            Ok(r)
        };
        match k.trim() {
            "panic" => cfg.panic_rate = rate()?,
            "nan" => cfg.nan_rate = rate()?,
            "spike" => cfg.spike_rate = rate()?,
            "spike_ms" => {
                cfg.spike = Duration::from_millis(
                    v.parse()
                        .map_err(|_| format!("spike_ms `{v}` is not an integer"))?,
                )
            }
            "seed" => {
                cfg.seed = v
                    .parse()
                    .map_err(|_| format!("seed `{v}` is not an integer"))?
            }
            "hard" => cfg.transient = v != "1" && v != "true",
            other => return Err(format!("unknown fault key `{other}`")),
        }
    }
    Ok(cfg)
}

#[derive(Debug, Default)]
struct ServeCounters {
    requests: AtomicU64,
    protocol_errors: AtomicU64,
    estimates: AtomicU64,
    estimate_cache_hits: AtomicU64,
    sweeps: AtomicU64,
    degraded_hits: AtomicU64,
    chaos_drops: AtomicU64,
    chaos_truncations: AtomicU64,
    chaos_stalls: AtomicU64,
}

struct State {
    cfg: ServerConfig,
    admission: Admission,
    estimator: Estimator,
    cache: EstimateCache,
    salts: Mutex<HashMap<String, u64>>,
    draining: AtomicBool,
    counters: ServeCounters,
}

impl State {
    /// The params-key salt for `bench` — FNV of its name, dataset and the
    /// structural hash of its default-parameter design, memoized per
    /// benchmark. The same derivation an in-process harness uses, so a
    /// cache warmed through the server is valid for in-process sweeps
    /// and vice versa.
    fn salt_for(&self, bench: &dyn Benchmark) -> u64 {
        let mut salts = self.salts.lock().unwrap_or_else(|e| e.into_inner());
        if let Some(&s) = salts.get(bench.name()) {
            return s;
        }
        let mut h = Fnv64::new();
        h.write(bench.name().as_bytes());
        h.write(bench.dataset_desc().as_bytes());
        match bench.build(&bench.default_params()) {
            Ok(design) => h.write_u64(structural_hash(&design)),
            Err(_) => h.write_u64(0),
        }
        let s = h.finish();
        salts.insert(bench.name().to_string(), s);
        s
    }

    fn draining(&self) -> bool {
        self.draining.load(Ordering::SeqCst) || signal::drain_requested()
    }
}

/// The serving process: a bound listener plus the shared estimator,
/// cache and admission state.
pub struct Server {
    listener: TcpListener,
    state: Arc<State>,
}

impl Server {
    /// Calibrate the estimator, load (or create) the estimate cache, and
    /// bind the listen socket.
    ///
    /// # Errors
    ///
    /// Returns any socket bind failure.
    pub fn bind(cfg: ServerConfig) -> io::Result<Server> {
        let _span = dhdl_obs::span!("serve.bind");
        let estimator =
            Estimator::calibrate_with(&Platform::maia(), cfg.calib_samples, cfg.calib_seed).0;
        let fp = model_fingerprint(&estimator);
        let cache = match &cfg.cache_dir {
            Some(dir) => EstimateCache::load(dir, fp),
            None => EstimateCache::new(fp),
        };
        let _ = std::fs::create_dir_all(&cfg.checkpoint_dir);
        let listener = TcpListener::bind(&cfg.addr)?;
        let admission = Admission::new(cfg.admission);
        Ok(Server {
            listener,
            state: Arc::new(State {
                cfg,
                admission,
                estimator,
                cache,
                salts: Mutex::new(HashMap::new()),
                draining: AtomicBool::new(false),
                counters: ServeCounters::default(),
            }),
        })
    }

    /// The bound listen address (resolves `:0` ports).
    ///
    /// # Errors
    ///
    /// Returns any socket introspection failure.
    pub fn local_addr(&self) -> io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// Bind and run on a background thread; returns the bound address
    /// and the join handle (which yields when the server drains).
    ///
    /// # Errors
    ///
    /// Returns any bind failure.
    pub fn spawn(
        cfg: ServerConfig,
    ) -> io::Result<(SocketAddr, std::thread::JoinHandle<io::Result<()>>)> {
        let server = Server::bind(cfg)?;
        let addr = server.local_addr()?;
        let handle = std::thread::spawn(move || server.run());
        Ok((addr, handle))
    }

    /// Serve until drain is requested (SIGTERM/SIGINT, or a `shutdown`
    /// op), then drain gracefully: stop accepting, let in-flight
    /// connections finish, flush the cache and obs sinks.
    ///
    /// # Errors
    ///
    /// Returns fatal listener failures; per-connection failures are
    /// handled (and counted) without stopping the server.
    pub fn run(self) -> io::Result<()> {
        self.listener.set_nonblocking(true)?;
        let mut conns: Vec<std::thread::JoinHandle<()>> = Vec::new();
        let mut conn_seq = 0u64;
        while !self.state.draining() {
            match self.listener.accept() {
                Ok((stream, _peer)) => {
                    let state = Arc::clone(&self.state);
                    let id = conn_seq;
                    conn_seq += 1;
                    conns.push(std::thread::spawn(move || handle_conn(&state, stream, id)));
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                    std::thread::sleep(Duration::from_millis(5));
                }
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(e) => return Err(e),
            }
            // Reap finished connection threads so a long-lived server
            // does not accumulate handles.
            conns.retain(|h| !h.is_finished());
        }
        // Drain: reject new work, let in-flight connections wind down
        // (bounded by read timeouts and sweep deadlines), then flush.
        self.state.admission.drain();
        for h in conns {
            let _ = h.join();
        }
        if let Some(dir) = &self.state.cfg.cache_dir {
            if let Err(e) = self.state.cache.save(dir) {
                eprintln!("warning: estimate cache flush failed: {e}");
            }
        }
        let _ = dhdl_obs::finish("serve");
        Ok(())
    }
}

/// One connection: read a frame, apply the chaos plan, dispatch, write a
/// frame; repeat until the peer closes, errors, or chaos kills it.
fn handle_conn(state: &State, mut stream: TcpStream, conn_id: u64) {
    let _ = stream.set_read_timeout(Some(state.cfg.read_timeout));
    let _ = stream.set_write_timeout(Some(state.cfg.write_timeout));
    let _ = stream.set_nodelay(true);
    let mut frame_idx = 0u64;
    loop {
        let payload = match read_frame(&mut stream, state.cfg.max_frame) {
            Ok(p) => p,
            Err(FrameError::Closed) => return,
            Err(FrameError::TooLarge { declared, max }) => {
                // The oversized payload still sits in the socket; answer
                // with a structured error, then close (the stream is no
                // longer frame-aligned).
                state
                    .counters
                    .protocol_errors
                    .fetch_add(1, Ordering::Relaxed);
                let err = ProtoError::new(
                    "frame_too_large",
                    format!("{declared}-byte frame exceeds the {max}-byte limit"),
                );
                let _ = respond(&mut stream, &error_response(&err), state.cfg.max_response);
                return;
            }
            Err(FrameError::Io(_)) => {
                // Torn frame, reset, or a stalled peer that hit the read
                // timeout: nothing sane to answer on this socket.
                return;
            }
        };
        let plan = state.cfg.chaos.plan(conn_id, frame_idx);
        frame_idx += 1;
        if plan.drop_conn {
            // Injected connection death *before* execution: the client
            // sees a dead socket and retries; no work ran, so a retried
            // non-idempotent request is still executed exactly once.
            state.counters.chaos_drops.fetch_add(1, Ordering::Relaxed);
            return;
        }
        state.counters.requests.fetch_add(1, Ordering::Relaxed);
        let response = match Request::parse(&payload) {
            Ok(req) => dispatch(state, &req),
            Err(e) => {
                state
                    .counters
                    .protocol_errors
                    .fetch_add(1, Ordering::Relaxed);
                error_response(&e)
            }
        };
        if plan.stall {
            state.counters.chaos_stalls.fetch_add(1, Ordering::Relaxed);
            std::thread::sleep(state.cfg.chaos.stall);
        }
        if plan.truncate {
            // Injected torn response: correct length prefix, half the
            // payload, then close. The client must treat this as a
            // failed attempt, not a short response.
            state
                .counters
                .chaos_truncations
                .fetch_add(1, Ordering::Relaxed);
            let bytes = response.render().into_bytes();
            let _ = stream.write_all(&(bytes.len() as u32).to_be_bytes());
            let _ = stream.write_all(&bytes[..bytes.len() / 2]);
            return;
        }
        if respond(&mut stream, &response, state.cfg.max_response).is_err() {
            return;
        }
    }
}

/// Render and write one response frame, downgrading oversized responses
/// to a structured `response_too_large` error.
fn respond(stream: &mut TcpStream, response: &Json, max: usize) -> io::Result<()> {
    let bytes = response.render().into_bytes();
    if bytes.len() > max {
        let err = ProtoError::new(
            "response_too_large",
            format!("{}-byte response exceeds the {max}-byte limit", bytes.len()),
        );
        return write_frame(stream, error_response(&err).render().as_bytes(), max);
    }
    write_frame(stream, &bytes, max)
}

fn dispatch(state: &State, req: &Request) -> Json {
    let t0 = Instant::now();
    let resp = match &req.op {
        Op::Health => handle_health(state),
        Op::Stats => handle_stats(state),
        Op::Shutdown => {
            state.draining.store(true, Ordering::SeqCst);
            state.admission.drain();
            ok_response([("state", Json::Str("draining".to_string()))])
        }
        Op::Submit { bench } => handle_submit(state, bench),
        Op::Estimate { bench, params } => handle_estimate(state, &req.header, bench, params, t0),
        Op::Sweep {
            bench,
            points,
            seed,
            strategy,
            num_fpgas,
        } => handle_sweep(
            state,
            &req.header,
            bench,
            *points,
            *seed,
            strategy.as_ref(),
            num_fpgas.unwrap_or(1),
        ),
    };
    let us = t0.elapsed().as_micros() as u64;
    dhdl_obs::histogram!("serve.req.us").record(us);
    resp
}

fn level_str(level: LoadLevel) -> &'static str {
    match level {
        LoadLevel::Normal => "normal",
        LoadLevel::Busy => "busy",
        LoadLevel::Saturated => "saturated",
    }
}

fn handle_health(state: &State) -> Json {
    ok_response([
        (
            "state",
            Json::Str(
                if state.draining() {
                    "draining"
                } else {
                    "accepting"
                }
                .to_string(),
            ),
        ),
        (
            "level",
            Json::Str(level_str(state.admission.level()).to_string()),
        ),
        ("protocol", Json::Num(PROTOCOL_VERSION as f64)),
        ("cache_entries", Json::Num(state.cache.len() as f64)),
    ])
}

fn handle_stats(state: &State) -> Json {
    let a = state.admission.stats();
    let c = &state.counters;
    let n = |v: u64| Json::Num(v as f64);
    let nu = |v: usize| Json::Num(v as f64);
    ok_response([
        ("requests", n(c.requests.load(Ordering::Relaxed))),
        (
            "protocol_errors",
            n(c.protocol_errors.load(Ordering::Relaxed)),
        ),
        ("estimates", n(c.estimates.load(Ordering::Relaxed))),
        (
            "estimate_cache_hits",
            n(c.estimate_cache_hits.load(Ordering::Relaxed)),
        ),
        ("sweeps", n(c.sweeps.load(Ordering::Relaxed))),
        ("degraded_hits", n(c.degraded_hits.load(Ordering::Relaxed))),
        ("chaos_drops", n(c.chaos_drops.load(Ordering::Relaxed))),
        (
            "chaos_truncations",
            n(c.chaos_truncations.load(Ordering::Relaxed)),
        ),
        ("chaos_stalls", n(c.chaos_stalls.load(Ordering::Relaxed))),
        ("inflight", nu(a.inflight)),
        ("peak_inflight", nu(a.peak_inflight)),
        ("admitted", nu(a.admitted)),
        ("rejected_tenant", nu(a.rejected_tenant)),
        ("rejected_overload", nu(a.rejected_overload)),
        ("rejected_shed", nu(a.rejected_shed)),
        ("rejected_draining", nu(a.rejected_draining)),
        ("cache_entries", nu(state.cache.len())),
        ("cache_params_entries", nu(state.cache.params_len())),
        (
            "level",
            Json::Str(level_str(state.admission.level()).to_string()),
        ),
    ])
}

fn handle_submit(_state: &State, bench_name: &str) -> Json {
    let Some(bench) = dhdl_apps::by_name(bench_name) else {
        return unknown_bench(bench_name);
    };
    let space = bench.param_space();
    let legal = LegalSpace::new(&space);
    match bench.build(&bench.default_params()) {
        Ok(design) => ok_response([
            ("bench", Json::Str(bench.name().to_string())),
            ("space_size", Json::Str(legal.size().to_string())),
            (
                "structural",
                Json::Str(format!("{:016x}", structural_hash(&design))),
            ),
            ("default_params", params_to_json(&bench.default_params())),
        ]),
        Err(e) => error_response(&ProtoError::new(
            "build_failed",
            format!("default parameters do not build: {e}"),
        )),
    }
}

fn unknown_bench(name: &str) -> Json {
    error_response(&ProtoError::new(
        "unknown_bench",
        format!("no benchmark named `{name}`"),
    ))
}

fn estimate_response(state: &State, est: &Estimate, cached: bool, degraded: bool) -> Json {
    ok_response([
        ("cycles", Json::Str(bits_str(est.cycles))),
        ("alms", Json::Str(bits_str(est.area.alms))),
        ("regs", Json::Str(bits_str(est.area.regs))),
        ("dsps", Json::Str(bits_str(est.area.dsps))),
        ("brams", Json::Str(bits_str(est.area.brams))),
        (
            "valid",
            Json::Bool(est.area.fits(&state.estimator.platform().fpga)),
        ),
        ("cached", Json::Bool(cached)),
        ("degraded", Json::Bool(degraded)),
    ])
}

fn handle_estimate(
    state: &State,
    header: &Header,
    bench_name: &str,
    params: &ParamValues,
    received: Instant,
) -> Json {
    state.counters.estimates.fetch_add(1, Ordering::Relaxed);
    let Some(bench) = dhdl_apps::by_name(bench_name) else {
        return unknown_bench(bench_name);
    };
    let pk = params_key(state.salt_for(bench.as_ref()), params);
    let model = CachedModel::new(&state.estimator, &state.cache);
    // The degraded fast path: a memoized answer is served without an
    // admission permit, even when the server is saturated or draining —
    // flagged `degraded` so the client knows it may be stale relative to
    // a recalibrated model.
    if let Some(est) = model.lookup_params(pk) {
        state
            .counters
            .estimate_cache_hits
            .fetch_add(1, Ordering::Relaxed);
        let degraded = state.admission.level() == LoadLevel::Saturated || state.draining();
        if degraded {
            state.counters.degraded_hits.fetch_add(1, Ordering::Relaxed);
        }
        dhdl_obs::histogram!("serve.estimate.hit.us").record(received.elapsed().as_micros() as u64);
        return estimate_response(state, &est, true, degraded);
    }
    // Cache miss: real work, so it must pass admission.
    let _permit = match state
        .admission
        .admit(&header.tenant, header.priority, WorkKind::Estimate)
    {
        Ok(p) => p,
        Err(r) => return rejected_response(r.code, r.retry_after_ms),
    };
    if let Some(deadline_ms) = header.deadline_ms {
        if received.elapsed() >= Duration::from_millis(deadline_ms) {
            // Expired work is cancelled, never silently completed.
            return error_response(&ProtoError::new("deadline_exceeded", "deadline expired"));
        }
    }
    let design = match bench.build(params) {
        Ok(d) => d,
        Err(e) => {
            return error_response(&ProtoError::new(
                "bad_params",
                format!("design does not build: {e}"),
            ))
        }
    };
    let est = model.estimate_keyed(Some(pk), &design);
    dhdl_obs::histogram!("serve.estimate.miss.us").record(received.elapsed().as_micros() as u64);
    estimate_response(state, &est, false, false)
}

/// Turn an idempotency key into a checkpoint filename: a sanitized
/// prefix for debuggability plus an FNV suffix so distinct keys can
/// never collide after sanitization.
fn checkpoint_name(key: &str) -> String {
    let safe: String = key
        .chars()
        .take(32)
        .map(|c| {
            if c.is_ascii_alphanumeric() || c == '-' || c == '_' {
                c
            } else {
                '_'
            }
        })
        .collect();
    let mut h = Fnv64::new();
    h.write(key.as_bytes());
    format!("{safe}-{:016x}.ckpt", h.finish())
}

fn handle_sweep(
    state: &State,
    header: &Header,
    bench_name: &str,
    points: usize,
    seed: u64,
    strategy: Option<&SearchStrategy>,
    num_fpgas: u32,
) -> Json {
    let Some(bench) = dhdl_apps::by_name(bench_name) else {
        return unknown_bench(bench_name);
    };
    let _permit = match state
        .admission
        .admit(&header.tenant, header.priority, WorkKind::Sweep)
    {
        Ok(p) => p,
        Err(r) => return rejected_response(r.code, r.retry_after_ms),
    };
    let t0 = Instant::now();
    state.counters.sweeps.fetch_add(1, Ordering::Relaxed);
    let deadline = header
        .deadline_ms
        .map(Duration::from_millis)
        .or(state.cfg.default_deadline);
    let checkpoint = header
        .key
        .as_ref()
        .map(|k| state.cfg.checkpoint_dir.join(checkpoint_name(k)));
    let opts = DseOptions {
        max_points: points.min(state.cfg.max_sweep_points),
        seed,
        threads: state.cfg.sweep_threads,
        deadline,
        checkpoint,
        cache_salt: Some(state.salt_for(bench.as_ref())),
        // The request's strategy wins; absent one, the server operator's
        // DHDL_DSE_STRATEGY environment decides (default random).
        strategy: strategy.cloned().unwrap_or_else(SearchStrategy::from_env),
        ..DseOptions::default()
    };
    let mut space = bench.param_space();
    if num_fpgas > 1 {
        // Multi-FPGA requests sweep the `num_fpgas` axis too; a request
        // without the field sweeps the bit-identical single-chip space.
        space.devices(u64::from(num_fpgas));
    }
    let model = CachedModel::new(&state.estimator, &state.cache);
    let build = |p: &ParamValues| bench.build(p);
    let result = match &state.cfg.faults {
        Some(fcfg) => {
            let injector = FaultInjector::new(&model, fcfg.clone());
            with_silent_panics(|| explore(build, &space, &injector, &opts))
        }
        None => explore(build, &space, &model, &opts),
    };
    dhdl_obs::histogram!("serve.sweep.ms").record(t0.elapsed().as_millis() as u64);
    ok_response([
        (
            "points",
            Json::Arr(result.points.iter().map(point_to_json).collect()),
        ),
        (
            "pareto",
            Json::Arr(result.pareto.iter().map(|&i| Json::Num(i as f64)).collect()),
        ),
        ("space_size", Json::Str(result.space_size.to_string())),
        ("discarded", Json::Num(result.discarded as f64)),
        ("recovered", Json::Num(result.counts.recovered as f64)),
        ("truncated", Json::Bool(result.truncated)),
    ])
}
