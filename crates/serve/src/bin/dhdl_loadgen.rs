//! `dhdl-loadgen`: replay a Zipf-skewed mixed-benchmark request trace
//! against a running `dhdl-serve` and measure tail latency.
//!
//! Several client threads hammer the server with point-estimate
//! requests drawn Zipf-style over a per-benchmark population of legal
//! design points (a few hot points dominate, a long tail keeps missing
//! the cache — the realistic DSE-frontend access pattern), mixed with
//! occasional small sweeps (carrying idempotency keys) and health
//! probes. Every response is validated; anything that is not a
//! well-formed protocol answer counts as a *protocol violation* and
//! fails the run — this is the assertion the CI smoke job leans on
//! while chaos is armed on the server side.
//!
//! Results (p50/p99 split by cache hit/miss, throughput, retry and
//! rejection counts) are written as JSON to `DHDL_LOADGEN_OUT`
//! (default `results/BENCH_serve.json`).
//!
//! Knobs: first CLI argument or `DHDL_SERVE_ADDR` picks the server;
//! `DHDL_LOADGEN_SECS` (default 10), `DHDL_LOADGEN_CLIENTS` (default
//! 4), `DHDL_LOADGEN_SEED` (default 42), `DHDL_LOADGEN_SWEEP_EVERY`
//! (default 150 requests; 0 disables sweeps),
//! `DHDL_LOADGEN_SHUTDOWN=1` sends a `shutdown` op when done.

use std::collections::BTreeMap;
use std::net::{SocketAddr, ToSocketAddrs};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use dhdl_core::ParamValues;
use dhdl_dse::LegalSpace;
use dhdl_serve::json::Json;
use dhdl_serve::{Client, ClientError, Op, Request, RetryPolicy};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Per-benchmark population of legal points the trace draws from.
struct Population {
    bench: &'static str,
    points: Vec<ParamValues>,
}

fn populations(seed: u64) -> Vec<Population> {
    dhdl_apps::all()
        .into_iter()
        .map(|b| {
            let space = b.param_space();
            let legal = LegalSpace::new(&space);
            Population {
                bench: b.name(),
                points: legal.sample(64, seed ^ 0x9E37),
            }
        })
        .filter(|p| !p.points.is_empty())
        .collect()
}

/// Zipf(s=1) rank sampling over `n` items: rank r has weight 1/(r+1).
fn zipf(rng: &mut StdRng, n: usize) -> usize {
    debug_assert!(n > 0);
    let total: f64 = (1..=n).map(|r| 1.0 / r as f64).sum();
    let mut u = rng.gen_range(0.0f64..total);
    for r in 0..n {
        u -= 1.0 / (r + 1) as f64;
        if u <= 0.0 {
            return r;
        }
    }
    n - 1
}

#[derive(Default)]
struct Tally {
    hit_us: Vec<u64>,
    miss_us: Vec<u64>,
    sweeps: u64,
    sweep_points: u64,
    violations: Vec<String>,
    rejected_final: u64,
    transport_retries: u64,
    rejections: u64,
}

fn percentile(sorted: &[u64], q: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let idx = ((sorted.len() - 1) as f64 * q).round() as usize;
    sorted[idx]
}

fn client_loop(
    addr: SocketAddr,
    pops: &[Population],
    seed: u64,
    until: Instant,
    sweep_every: u64,
    requests: &AtomicU64,
) -> Tally {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut client = Client::new(
        addr,
        RetryPolicy {
            seed,
            ..RetryPolicy::default()
        },
    )
    .with_timeout(Duration::from_secs(10));
    let mut tally = Tally::default();
    let mut n = 0u64;
    while Instant::now() < until {
        n += 1;
        let global = requests.fetch_add(1, Ordering::Relaxed);
        if sweep_every > 0 && n.is_multiple_of(sweep_every) {
            // An occasional small sweep with an idempotency key: any
            // retry resumes the server-side checkpoint.
            let pop = &pops[zipf(&mut rng, pops.len())];
            let mut req = Request::new(Op::Sweep {
                bench: pop.bench.to_string(),
                points: 40,
                seed: seed ^ n,
                strategy: None,
                num_fpgas: None,
            });
            req.header.tenant = format!("loadgen-{}", seed & 0xF);
            req.header.priority = u8::from(n.is_multiple_of(3));
            req.header.key = Some(format!("lg-{seed}-{n}"));
            match client.request(&req) {
                Ok(resp) => match resp.get("status").and_then(Json::as_str) {
                    Some("ok") => {
                        tally.sweeps += 1;
                        tally.sweep_points += resp
                            .get("points")
                            .and_then(Json::as_arr)
                            .map_or(0, |a| a.len() as u64);
                    }
                    Some("error") => tally
                        .violations
                        .push(format!("sweep answered error: {}", resp.render())),
                    _ => tally
                        .violations
                        .push(format!("sweep answered non-status: {}", resp.render())),
                },
                Err(ClientError::Rejected(_)) => tally.rejected_final += 1,
                Err(e) => tally.violations.push(format!("sweep failed: {e}")),
            }
            continue;
        }
        if global.is_multiple_of(501) {
            // Sprinkle health probes through the trace.
            let _ = client.request(&Request::new(Op::Health));
            continue;
        }
        let pop = &pops[zipf(&mut rng, pops.len())];
        let point = &pop.points[zipf(&mut rng, pop.points.len())];
        let mut req = Request::new(Op::Estimate {
            bench: pop.bench.to_string(),
            params: point.clone(),
        });
        req.header.tenant = format!("loadgen-{}", seed & 0xF);
        let t0 = Instant::now();
        match client.request(&req) {
            Ok(resp) => {
                let us = t0.elapsed().as_micros() as u64;
                match resp.get("status").and_then(Json::as_str) {
                    Some("ok") => {
                        if resp.get("cached").and_then(Json::as_bool) == Some(true) {
                            tally.hit_us.push(us);
                        } else {
                            tally.miss_us.push(us);
                        }
                    }
                    Some("error") => {
                        let code = resp.get("code").and_then(Json::as_str).unwrap_or("?");
                        if code != "deadline_exceeded" {
                            tally
                                .violations
                                .push(format!("estimate answered error `{code}`"));
                        }
                    }
                    _ => tally
                        .violations
                        .push(format!("estimate answered non-status: {}", resp.render())),
                }
            }
            Err(ClientError::Rejected(_)) => tally.rejected_final += 1,
            Err(e) => tally.violations.push(format!("estimate failed: {e}")),
        }
    }
    tally.transport_retries = client.transport_retries;
    tally.rejections = client.rejections;
    tally
}

fn env_u64(key: &str, default: u64) -> u64 {
    std::env::var(key)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn main() {
    dhdl_obs::init_from_env();
    let addr_str = std::env::args()
        .nth(1)
        .or_else(|| std::env::var("DHDL_SERVE_ADDR").ok())
        .unwrap_or_else(|| "127.0.0.1:7436".to_string());
    let addr: SocketAddr = match addr_str.to_socket_addrs().ok().and_then(|mut a| a.next()) {
        Some(a) => a,
        None => {
            eprintln!("dhdl-loadgen: cannot resolve `{addr_str}`");
            std::process::exit(1);
        }
    };
    let secs = env_u64("DHDL_LOADGEN_SECS", 10);
    let clients = env_u64("DHDL_LOADGEN_CLIENTS", 4).max(1);
    let seed = env_u64("DHDL_LOADGEN_SEED", 42);
    let sweep_every = env_u64("DHDL_LOADGEN_SWEEP_EVERY", 150);
    let out = std::env::var("DHDL_LOADGEN_OUT")
        .unwrap_or_else(|_| "results/BENCH_serve.json".to_string());

    let pops = Arc::new(populations(seed));
    if pops.is_empty() {
        eprintln!("dhdl-loadgen: no benchmark populations");
        std::process::exit(1);
    }
    println!(
        "dhdl-loadgen: {clients} clients × {secs}s against {addr} ({} benchmarks)",
        pops.len()
    );
    let t0 = Instant::now();
    let until = t0 + Duration::from_secs(secs);
    let requests = Arc::new(AtomicU64::new(0));
    let tallies: Vec<Tally> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..clients)
            .map(|i| {
                let pops = Arc::clone(&pops);
                let requests = Arc::clone(&requests);
                s.spawn(move || client_loop(addr, &pops, seed + i, until, sweep_every, &requests))
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    let wall = t0.elapsed().as_secs_f64();

    let mut merged = Tally::default();
    for t in tallies {
        merged.hit_us.extend(t.hit_us);
        merged.miss_us.extend(t.miss_us);
        merged.sweeps += t.sweeps;
        merged.sweep_points += t.sweep_points;
        merged.violations.extend(t.violations);
        merged.rejected_final += t.rejected_final;
        merged.transport_retries += t.transport_retries;
        merged.rejections += t.rejections;
    }
    merged.hit_us.sort_unstable();
    merged.miss_us.sort_unstable();
    let answered = merged.hit_us.len() + merged.miss_us.len();
    let throughput = answered as f64 / wall.max(1e-9);

    let mut report = BTreeMap::new();
    let num = |v: f64| Json::Num(v);
    report.insert("bench".to_string(), Json::Str("serve-loadgen".to_string()));
    report.insert("duration_s".to_string(), num(wall));
    report.insert("clients".to_string(), num(clients as f64));
    report.insert("seed".to_string(), num(seed as f64));
    report.insert("estimates_answered".to_string(), num(answered as f64));
    report.insert("throughput_rps".to_string(), num(throughput));
    report.insert(
        "estimate_hit_count".to_string(),
        num(merged.hit_us.len() as f64),
    );
    report.insert(
        "estimate_hit_p50_us".to_string(),
        num(percentile(&merged.hit_us, 0.50) as f64),
    );
    report.insert(
        "estimate_hit_p99_us".to_string(),
        num(percentile(&merged.hit_us, 0.99) as f64),
    );
    report.insert(
        "estimate_miss_count".to_string(),
        num(merged.miss_us.len() as f64),
    );
    report.insert(
        "estimate_miss_p50_us".to_string(),
        num(percentile(&merged.miss_us, 0.50) as f64),
    );
    report.insert(
        "estimate_miss_p99_us".to_string(),
        num(percentile(&merged.miss_us, 0.99) as f64),
    );
    report.insert("sweeps_completed".to_string(), num(merged.sweeps as f64));
    report.insert(
        "sweep_points_returned".to_string(),
        num(merged.sweep_points as f64),
    );
    report.insert(
        "transport_retries".to_string(),
        num(merged.transport_retries as f64),
    );
    report.insert(
        "rejections_absorbed".to_string(),
        num(merged.rejections as f64),
    );
    report.insert(
        "rejections_final".to_string(),
        num(merged.rejected_final as f64),
    );
    report.insert(
        "protocol_violations".to_string(),
        num(merged.violations.len() as f64),
    );
    let rendered = Json::Obj(report).render();
    if let Some(dir) = std::path::Path::new(&out).parent() {
        let _ = std::fs::create_dir_all(dir);
    }
    if let Err(e) = std::fs::write(&out, &rendered) {
        eprintln!("dhdl-loadgen: cannot write {out}: {e}");
    } else {
        println!("dhdl-loadgen: wrote {out}");
    }
    println!(
        "dhdl-loadgen: {answered} answered ({:.0} rps), hits p50/p99 {}/{} µs, \
         misses p50/p99 {}/{} µs, {} sweeps, {} retries, {} rejections",
        throughput,
        percentile(&merged.hit_us, 0.50),
        percentile(&merged.hit_us, 0.99),
        percentile(&merged.miss_us, 0.50),
        percentile(&merged.miss_us, 0.99),
        merged.sweeps,
        merged.transport_retries,
        merged.rejections,
    );

    if env_u64("DHDL_LOADGEN_SHUTDOWN", 0) == 1 {
        let mut client = Client::new(addr, RetryPolicy::default());
        match client.request(&Request::new(Op::Shutdown)) {
            Ok(_) => println!("dhdl-loadgen: sent shutdown"),
            Err(e) => eprintln!("dhdl-loadgen: shutdown failed: {e}"),
        }
    }
    if !merged.violations.is_empty() {
        for v in merged.violations.iter().take(10) {
            eprintln!("dhdl-loadgen: violation: {v}");
        }
        eprintln!(
            "dhdl-loadgen: {} protocol violations",
            merged.violations.len()
        );
        std::process::exit(2);
    }
}
