//! `dhdl-serve`: run the DSE-as-a-service server until SIGTERM/SIGINT
//! (or a `shutdown` op), then drain gracefully and exit 0.
//!
//! All configuration comes from `DHDL_SERVE_*` environment knobs (see
//! the README's environment table); `DHDL_OBS` arms the observability
//! layer as everywhere else in the workspace.

use dhdl_serve::{Server, ServerConfig};

fn main() {
    dhdl_obs::init_from_env();
    dhdl_serve::signal::install_handlers();
    let cfg = ServerConfig::from_env();
    let server = match Server::bind(cfg) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("dhdl-serve: bind failed: {e}");
            std::process::exit(1);
        }
    };
    match server.local_addr() {
        Ok(addr) => println!("dhdl-serve: listening on {addr}"),
        Err(e) => eprintln!("dhdl-serve: local_addr: {e}"),
    }
    if let Err(e) = server.run() {
        eprintln!("dhdl-serve: server failed: {e}");
        std::process::exit(1);
    }
    println!("dhdl-serve: drained cleanly");
}
