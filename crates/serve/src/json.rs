//! A minimal, std-only JSON value: recursive-descent parser plus a
//! deterministic renderer.
//!
//! The wire protocol needs exactly this much JSON and no more: objects
//! (rendered with sorted keys so frames are byte-deterministic), arrays,
//! strings with the standard escapes, finite numbers, booleans and null.
//! The parser is written for hostile input — it never panics, it bounds
//! recursion depth, and anything malformed comes back as a structured
//! [`JsonError`] naming the byte offset, which the server turns into a
//! structured protocol error instead of a dead connection.
//!
//! Floating-point payload fields (cycles, areas) are *not* carried as
//! JSON numbers: the protocol transports them as 16-hex-digit IEEE-754
//! bit-pattern strings (see [`crate::protocol::bits_str`]) so every
//! round trip is bit-exact. JSON numbers here are only used for small
//! integers (parameter values, counts, ports), all well under 2^53.

use std::collections::BTreeMap;
use std::fmt;

/// Maximum nesting depth the parser accepts; deeper input is rejected
/// rather than risking stack exhaustion on `[[[[...`-style frames.
const MAX_DEPTH: usize = 64;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A finite number (non-finite values render as `null`).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; `BTreeMap` so rendering is key-sorted and deterministic.
    Obj(BTreeMap<String, Json>),
}

/// A parse failure: what went wrong and the byte offset it happened at.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Human-readable description of the malformation.
    pub message: String,
    /// Byte offset into the input where parsing failed.
    pub offset: usize,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} at byte {}", self.message, self.offset)
    }
}

impl Json {
    /// Parse a complete JSON document; trailing non-whitespace is an
    /// error (a frame carries exactly one value).
    pub fn parse(input: &[u8]) -> Result<Json, JsonError> {
        let mut p = Parser { input, pos: 0 };
        p.skip_ws();
        let v = p.value(0)?;
        p.skip_ws();
        if p.pos != p.input.len() {
            return Err(p.err("trailing data after JSON value"));
        }
        Ok(v)
    }

    /// Render to a compact string (no whitespace, object keys sorted).
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.render_into(&mut out);
        out
    }

    fn render_into(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(n) => {
                if n.is_finite() {
                    // Integers (the only numbers the protocol sends) render
                    // without a fractional part.
                    if n.fract() == 0.0 && n.abs() < 9.0e15 {
                        let _ = write_int(out, *n);
                    } else {
                        out.push_str(&format!("{n}"));
                    }
                } else {
                    out.push_str("null");
                }
            }
            Json::Str(s) => render_string(s, out),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.render_into(out);
                }
                out.push(']');
            }
            Json::Obj(map) => {
                out.push('{');
                for (i, (k, v)) in map.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    render_string(k, out);
                    out.push(':');
                    v.render_into(out);
                }
                out.push('}');
            }
        }
    }

    /// Build an object from `(key, value)` pairs.
    pub fn obj<I: IntoIterator<Item = (&'static str, Json)>>(pairs: I) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    /// Member `key` of an object, if this is an object containing it.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(map) => map.get(key),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric payload as a non-negative integer, if this is a
    /// number holding one exactly.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(n) if n.fract() == 0.0 && (0.0..9.0e15).contains(n) => Some(*n as u64),
            _ => None,
        }
    }

    /// The boolean payload, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// The members, if this is an object.
    pub fn as_obj(&self) -> Option<&BTreeMap<String, Json>> {
        match self {
            Json::Obj(map) => Some(map),
            _ => None,
        }
    }
}

/// Render an integral f64 without a fractional part (`3` not `3.0`).
fn write_int(out: &mut String, n: f64) -> fmt::Result {
    use fmt::Write as _;
    write!(out, "{}", n as i64)
}

fn render_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    input: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, message: &str) -> JsonError {
        JsonError {
            message: message.to_string(),
            offset: self.pos,
        }
    }

    fn peek(&self) -> Option<u8> {
        self.input.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek()?;
        self.pos += 1;
        Some(b)
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        if self.bump() == Some(b) {
            Ok(())
        } else {
            self.pos = self.pos.saturating_sub(1);
            Err(self.err(&format!("expected `{}`", b as char)))
        }
    }

    fn literal(&mut self, lit: &str, value: Json) -> Result<Json, JsonError> {
        if self.input[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(value)
        } else {
            Err(self.err(&format!("invalid literal (expected `{lit}`)")))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Json, JsonError> {
        if depth > MAX_DEPTH {
            return Err(self.err("nesting too deep"));
        }
        match self.peek() {
            Some(b'{') => self.object(depth),
            Some(b'[') => self.array(depth),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(_) => Err(self.err("unexpected character")),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn object(&mut self, depth: usize) -> Result<Json, JsonError> {
        self.expect(b'{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value(depth + 1)?;
            map.insert(key, value);
            self.skip_ws();
            match self.bump() {
                Some(b',') => continue,
                Some(b'}') => return Ok(Json::Obj(map)),
                _ => {
                    self.pos = self.pos.saturating_sub(1);
                    return Err(self.err("expected `,` or `}` in object"));
                }
            }
        }
    }

    fn array(&mut self, depth: usize) -> Result<Json, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.bump() {
                Some(b',') => continue,
                Some(b']') => return Ok(Json::Arr(items)),
                _ => {
                    self.pos = self.pos.saturating_sub(1);
                    return Err(self.err("expected `,` or `]` in array"));
                }
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.bump() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => return Ok(out),
                Some(b'\\') => match self.bump() {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'u') => out.push(self.unicode_escape()?),
                    _ => return Err(self.err("invalid escape")),
                },
                Some(b) if b < 0x20 => return Err(self.err("raw control character in string")),
                Some(b) => {
                    // Re-decode UTF-8 starting at this byte.
                    let start = self.pos - 1;
                    let len = utf8_len(b).ok_or_else(|| self.err("invalid UTF-8"))?;
                    let end = start + len;
                    let slice = self
                        .input
                        .get(start..end)
                        .ok_or_else(|| self.err("truncated UTF-8 sequence"))?;
                    let s = std::str::from_utf8(slice).map_err(|_| self.err("invalid UTF-8"))?;
                    out.push_str(s);
                    self.pos = end;
                }
            }
        }
    }

    fn unicode_escape(&mut self) -> Result<char, JsonError> {
        let code = self.hex4()?;
        // Surrogate pair handling: a high surrogate must be followed by
        // an escaped low surrogate; anything else is replaced rather than
        // crashing the parse (hostile input is the common case here).
        if (0xD800..0xDC00).contains(&code) {
            if self.input[self.pos..].starts_with(b"\\u") {
                self.pos += 2;
                let low = self.hex4()?;
                if (0xDC00..0xE000).contains(&low) {
                    let c = 0x10000 + ((code - 0xD800) << 10) + (low - 0xDC00);
                    return Ok(char::from_u32(c).unwrap_or('\u{FFFD}'));
                }
            }
            return Ok('\u{FFFD}');
        }
        Ok(char::from_u32(code).unwrap_or('\u{FFFD}'))
    }

    fn hex4(&mut self) -> Result<u32, JsonError> {
        let mut code: u32 = 0;
        for _ in 0..4 {
            let d = match self.bump() {
                Some(b @ b'0'..=b'9') => u32::from(b - b'0'),
                Some(b @ b'a'..=b'f') => u32::from(b - b'a') + 10,
                Some(b @ b'A'..=b'F') => u32::from(b - b'A') + 10,
                _ => return Err(self.err("invalid \\u escape")),
            };
            code = code * 16 + d;
        }
        Ok(code)
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(
            self.peek(),
            Some(b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
        ) {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.input[start..self.pos])
            .map_err(|_| self.err("invalid number"))?;
        let n: f64 = text.parse().map_err(|_| self.err("invalid number"))?;
        if !n.is_finite() {
            return Err(self.err("non-finite number"));
        }
        Ok(Json::Num(n))
    }
}

fn utf8_len(first: u8) -> Option<usize> {
    match first {
        0x00..=0x7F => Some(1),
        0xC2..=0xDF => Some(2),
        0xE0..=0xEF => Some(3),
        0xF0..=0xF4 => Some(4),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(v: &Json) {
        let text = v.render();
        let parsed = Json::parse(text.as_bytes()).unwrap_or_else(|e| panic!("{text}: {e}"));
        assert_eq!(&parsed, v, "{text}");
    }

    #[test]
    fn values_round_trip() {
        roundtrip(&Json::Null);
        roundtrip(&Json::Bool(true));
        roundtrip(&Json::Num(0.0));
        roundtrip(&Json::Num(-17.0));
        roundtrip(&Json::Num(3.5));
        roundtrip(&Json::Str("hello \"w\\orld\"\n\t\u{1}".to_string()));
        roundtrip(&Json::Str("unicode: ε 💡".to_string()));
        roundtrip(&Json::Arr(vec![Json::Num(1.0), Json::Null]));
        roundtrip(&Json::obj([
            ("b", Json::Num(2.0)),
            ("a", Json::Arr(vec![Json::obj([("x", Json::Bool(false))])])),
        ]));
    }

    #[test]
    fn object_keys_render_sorted() {
        let v = Json::obj([("zeta", Json::Num(1.0)), ("alpha", Json::Num(2.0))]);
        assert_eq!(v.render(), r#"{"alpha":2,"zeta":1}"#);
    }

    #[test]
    fn malformed_inputs_error_and_never_panic() {
        for bad in [
            &b""[..],
            b"{",
            b"}",
            b"[1,",
            b"[1 2]",
            b"{\"a\":}",
            b"{\"a\" 1}",
            b"{1:2}",
            b"\"unterminated",
            b"\"bad \\q escape\"",
            b"\"\\u12\"",
            b"truer",
            b"nul",
            b"1.2.3",
            b"-",
            b"1e999",
            b"[1] trailing",
            b"\xff\xfe",
            b"\"\xc3\"",
        ] {
            assert!(Json::parse(bad).is_err(), "{:?} should fail", bad);
        }
        // Deep nesting is rejected, not a stack overflow.
        let deep = vec![b'['; 10_000];
        assert!(Json::parse(&deep).is_err());
    }

    #[test]
    fn surrogate_pairs_and_lone_surrogates() {
        assert_eq!(
            Json::parse(br#""\ud83d\udca1""#).unwrap(),
            Json::Str("💡".to_string())
        );
        assert_eq!(
            Json::parse(br#""\ud83d""#).unwrap(),
            Json::Str("\u{FFFD}".to_string())
        );
    }

    #[test]
    fn accessors() {
        let v = Json::obj([
            ("n", Json::Num(42.0)),
            ("s", Json::Str("x".into())),
            ("b", Json::Bool(true)),
            ("a", Json::Arr(vec![])),
        ]);
        assert_eq!(v.get("n").and_then(Json::as_u64), Some(42));
        assert_eq!(v.get("s").and_then(Json::as_str), Some("x"));
        assert_eq!(v.get("b").and_then(Json::as_bool), Some(true));
        assert_eq!(
            v.get("a").and_then(Json::as_arr).map(<[Json]>::len),
            Some(0)
        );
        assert!(v.get("missing").is_none());
        assert_eq!(Json::Num(1.5).as_u64(), None);
        assert_eq!(Json::Num(-1.0).as_u64(), None);
    }
}
