//! Length-prefixed framing over a byte stream.
//!
//! Every protocol message is `u32 big-endian payload length ‖ payload`.
//! The length prefix is validated against a maximum *before* any payload
//! allocation, so a hostile client declaring a 4 GiB frame costs the
//! server a 4-byte read and a closed connection, never memory. Reads
//! honor the socket's read timeout: a client that stalls mid-frame
//! (slowloris) hits the timeout and the connection is dropped rather
//! than wedging the worker thread.

use std::io::{self, Read, Write};

/// Default maximum accepted *request* frame size (1 MiB). Requests are
/// small (an op plus a parameter map); anything bigger is hostile or
/// broken.
pub const DEFAULT_MAX_FRAME: usize = 1 << 20;

/// Default maximum *response* frame size (64 MiB): sweep responses carry
/// thousands of points. A response that would exceed this is reported as
/// a structured error instead of a torn frame.
pub const DEFAULT_MAX_RESPONSE: usize = 64 << 20;

/// Why a frame could not be read.
#[derive(Debug)]
pub enum FrameError {
    /// The peer closed the connection cleanly before a frame started.
    Closed,
    /// The declared length exceeds the configured maximum.
    TooLarge {
        /// Length the prefix declared.
        declared: usize,
        /// The configured maximum.
        max: usize,
    },
    /// The connection died or timed out mid-frame (torn frame, stalled
    /// peer, reset).
    Io(io::Error),
}

impl std::fmt::Display for FrameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FrameError::Closed => write!(f, "connection closed"),
            FrameError::TooLarge { declared, max } => {
                write!(f, "frame of {declared} bytes exceeds the {max}-byte limit")
            }
            FrameError::Io(e) => write!(f, "frame I/O failed: {e}"),
        }
    }
}

impl From<io::Error> for FrameError {
    fn from(e: io::Error) -> Self {
        FrameError::Io(e)
    }
}

/// Read one length-prefixed frame. [`FrameError::Closed`] means the peer
/// shut down cleanly between frames; a torn prefix or payload is
/// [`FrameError::Io`].
pub fn read_frame(r: &mut impl Read, max: usize) -> Result<Vec<u8>, FrameError> {
    let mut prefix = [0u8; 4];
    // Distinguish clean EOF (no bytes at all) from a torn prefix.
    let mut got = 0;
    while got < 4 {
        match r.read(&mut prefix[got..]) {
            Ok(0) => {
                if got == 0 {
                    return Err(FrameError::Closed);
                }
                return Err(FrameError::Io(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "torn length prefix",
                )));
            }
            Ok(n) => got += n,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(FrameError::Io(e)),
        }
    }
    let declared = u32::from_be_bytes(prefix) as usize;
    if declared > max {
        return Err(FrameError::TooLarge { declared, max });
    }
    let mut payload = vec![0u8; declared];
    r.read_exact(&mut payload)?;
    Ok(payload)
}

/// Write one length-prefixed frame.
///
/// # Errors
///
/// Returns an error if the payload exceeds `max` (the caller should send
/// a structured error instead) or on any socket failure.
pub fn write_frame(w: &mut impl Write, payload: &[u8], max: usize) -> io::Result<()> {
    if payload.len() > max {
        return Err(io::Error::new(
            io::ErrorKind::InvalidInput,
            format!("{}-byte frame exceeds the {max}-byte limit", payload.len()),
        ));
    }
    let prefix = (payload.len() as u32).to_be_bytes();
    w.write_all(&prefix)?;
    w.write_all(payload)?;
    w.flush()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frames_round_trip() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"hello", DEFAULT_MAX_FRAME).unwrap();
        write_frame(&mut buf, b"", DEFAULT_MAX_FRAME).unwrap();
        let mut r = &buf[..];
        assert_eq!(read_frame(&mut r, DEFAULT_MAX_FRAME).unwrap(), b"hello");
        assert_eq!(read_frame(&mut r, DEFAULT_MAX_FRAME).unwrap(), b"");
        assert!(matches!(
            read_frame(&mut r, DEFAULT_MAX_FRAME),
            Err(FrameError::Closed)
        ));
    }

    #[test]
    fn oversized_declared_length_is_rejected_before_allocation() {
        let mut buf = Vec::new();
        buf.extend_from_slice(&u32::MAX.to_be_bytes());
        let r = read_frame(&mut &buf[..], 1024);
        match r {
            Err(FrameError::TooLarge { declared, max }) => {
                assert_eq!(declared, u32::MAX as usize);
                assert_eq!(max, 1024);
            }
            other => panic!("expected TooLarge, got {other:?}"),
        }
    }

    #[test]
    fn torn_prefix_and_torn_payload_are_io_errors() {
        assert!(matches!(
            read_frame(&mut &[0u8, 0][..], 1024),
            Err(FrameError::Io(_))
        ));
        let mut buf = Vec::new();
        write_frame(&mut buf, b"hello", 1024).unwrap();
        buf.truncate(buf.len() - 2);
        assert!(matches!(
            read_frame(&mut &buf[..], 1024),
            Err(FrameError::Io(_))
        ));
    }

    #[test]
    fn oversized_write_is_refused() {
        let mut buf = Vec::new();
        assert!(write_frame(&mut buf, &[0u8; 32], 16).is_err());
        assert!(
            buf.is_empty(),
            "refused frame must not be partially written"
        );
    }
}
