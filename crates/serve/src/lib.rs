//! # dhdl-serve — DSE as a service
//!
//! A robustness-first serving layer over the exploration stack: a
//! std-only threaded TCP server that accepts design submissions, point
//! estimates and DSE sweeps over a minimal length-prefixed JSON
//! protocol, dispatching onto the existing work-stealing sweep runner
//! and the shard-striped [`dhdl_dse::EstimateCache`].
//!
//! The design center is *graceful degradation under hostility*, not
//! peak throughput:
//!
//! * [`admission`] — bounded per-tenant queues, a global cap, and a
//!   degradation ladder (shed sheddable sweeps when busy; at
//!   saturation, serve only cache hits, flagged `degraded`); overload
//!   is answered with explicit 429-style rejections, never unbounded
//!   queueing;
//! * [`protocol`] — structured errors for every malformed input, and
//!   bit-exact `f64` transport (IEEE-754 bit-pattern strings) so a
//!   sweep fetched through the server is byte-identical to one run
//!   in-process;
//! * [`frame`] — length-prefixed framing with limits enforced before
//!   allocation, plus socket read/write timeouts against stalled peers;
//! * [`client`] — jittered-exponential retries over transport faults
//!   and rejections, with idempotency keys mapping to server-side sweep
//!   checkpoints so a retried sweep resumes rather than restarts;
//! * [`chaos`] — deterministic seeded connection faults (drops, stalls,
//!   truncated frames) mirroring [`dhdl_dse::FaultInjector`] one layer
//!   down; the chaos suite drives both at once and asserts recovery to
//!   bit-identical results;
//! * [`signal`] — SIGTERM/SIGINT drain: stop accepting, finish or
//!   checkpoint in-flight sweeps, flush the cache and obs sinks, exit 0.
//!
//! Binaries: `dhdl-serve` (the server) and `dhdl-loadgen` (a
//! Zipf-skewed mixed-benchmark load generator measuring p50/p99, used
//! by the CI smoke job and `results/BENCH_serve.json`).

#![warn(missing_docs)]

pub mod admission;
pub mod chaos;
pub mod client;
pub mod frame;
pub mod json;
pub mod protocol;
pub mod server;
pub mod signal;

pub use admission::{Admission, AdmissionConfig, AdmissionStats, LoadLevel, Permit, WorkKind};
pub use chaos::{ChaosConfig, ChaosPlan};
pub use client::{Client, ClientError, RetryPolicy};
pub use frame::{read_frame, write_frame, FrameError, DEFAULT_MAX_FRAME, DEFAULT_MAX_RESPONSE};
pub use json::{Json, JsonError};
pub use protocol::{
    bits_str, parse_bits, point_from_json, point_to_json, Header, Op, ProtoError, Request,
    PROTOCOL_VERSION,
};
pub use server::{parse_faults, Server, ServerConfig};
