//! The request/response vocabulary of the serving protocol.
//!
//! One request frame carries one JSON object with an `op` plus common
//! header fields; one response frame carries one JSON object with a
//! `status`. Every malformed input maps to a *structured* error response
//! ([`ProtoError`]) — the server never answers garbage with silence or a
//! dead socket unless framing itself is broken.
//!
//! | `op` | payload | reply |
//! |---|---|---|
//! | `health` | — | server state (`accepting`/`draining`) |
//! | `stats` | — | request/admission/cache counters |
//! | `submit` | `bench` | design validated; legal-space size |
//! | `estimate` | `bench`, `params` | bit-exact estimate for one point |
//! | `sweep` | `bench`, `points`, `seed`, optional `strategy` and `num_fpgas` | full DSE result (points + front) |
//! | `shutdown` | — | begins graceful drain |
//!
//! Common header fields: `tenant` (admission-queue key, default
//! `"anon"`), `priority` (0 = sheddable … 2 = critical, default 1),
//! `deadline_ms` (propagated into [`dhdl_dse::DseOptions::deadline`];
//! expired work is cancelled, never silently completed), and `key` (an
//! idempotency key: retried sweeps bearing the same key resume from the
//! server-side checkpoint instead of restarting).
//!
//! ## Bit-exact floats
//!
//! Cycle counts and area fields cross the wire as 16-hex-digit IEEE-754
//! bit patterns ([`bits_str`]/[`parse_bits`]), never as JSON numbers, so
//! a sweep fetched through the server is *byte-identical* to one run
//! in-process — the chaos suite asserts exactly that.

use std::collections::BTreeMap;

use dhdl_core::ParamValues;
use dhdl_dse::{DesignPoint, SearchStrategy};
use dhdl_target::AreaReport;

use crate::json::Json;

/// Protocol version, echoed in `health` responses.
pub const PROTOCOL_VERSION: u64 = 1;

/// Render an `f64` as its 16-hex-digit IEEE-754 bit pattern.
pub fn bits_str(v: f64) -> String {
    format!("{:016x}", v.to_bits())
}

/// Parse a 16-hex-digit IEEE-754 bit pattern back to the exact `f64`.
pub fn parse_bits(s: &str) -> Option<f64> {
    if s.len() != 16 {
        return None;
    }
    u64::from_str_radix(s, 16).ok().map(f64::from_bits)
}

/// A structured protocol failure: a stable machine-readable `code` plus
/// a human-readable message. Rendered as a `status: "error"` response.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProtoError {
    /// Stable error code (`bad_json`, `bad_request`, `unknown_bench`, …).
    pub code: &'static str,
    /// Human-readable detail.
    pub message: String,
}

impl ProtoError {
    /// Build an error with `code` and `message`.
    pub fn new(code: &'static str, message: impl Into<String>) -> Self {
        ProtoError {
            code,
            message: message.into(),
        }
    }
}

impl std::fmt::Display for ProtoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}: {}", self.code, self.message)
    }
}

/// Common request header fields.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Header {
    /// Admission-queue key; each tenant gets an independent bounded
    /// queue so one noisy client cannot starve the rest.
    pub tenant: String,
    /// 0 = sheddable, 1 = normal, 2 = critical. Under load the server
    /// sheds priority-0 sweeps first.
    pub priority: u8,
    /// Request deadline in milliseconds, propagated into
    /// [`dhdl_dse::DseOptions::deadline`].
    pub deadline_ms: Option<u64>,
    /// Idempotency key: a retried sweep with the same key resumes from
    /// the server-side checkpoint written by the interrupted attempt.
    pub key: Option<String>,
}

impl Default for Header {
    fn default() -> Self {
        Header {
            tenant: "anon".to_string(),
            priority: 1,
            deadline_ms: None,
            key: None,
        }
    }
}

/// The operation a request asks for.
#[derive(Debug, Clone, PartialEq)]
pub enum Op {
    /// Liveness/state probe.
    Health,
    /// Server counters snapshot.
    Stats,
    /// Validate a design submission (benchmark metaprogram by name) and
    /// report its legal-space size.
    Submit {
        /// Benchmark name (see `dhdl_apps::by_name`).
        bench: String,
    },
    /// Estimate one design point.
    Estimate {
        /// Benchmark name.
        bench: String,
        /// Parameter assignment.
        params: ParamValues,
    },
    /// Run a DSE sweep.
    Sweep {
        /// Benchmark name.
        bench: String,
        /// Points to sample (capped by the server's configured maximum).
        points: usize,
        /// Sampling seed.
        seed: u64,
        /// Search strategy (`random`/`surrogate` on the wire). `None`
        /// leaves the choice to the server (its `DHDL_DSE_STRATEGY`
        /// environment).
        strategy: Option<SearchStrategy>,
        /// Maximum devices for the multi-FPGA partitioning axis. `None`
        /// or `Some(1)` sweeps the single-chip space (bit-identical to
        /// requests predating the field); `Some(k > 1)` adds the
        /// `num_fpgas` parameter to the swept space.
        num_fpgas: Option<u32>,
    },
    /// Begin graceful drain (stop accepting, finish in-flight work,
    /// flush caches, exit).
    Shutdown,
}

impl Op {
    /// The op name on the wire.
    pub fn name(&self) -> &'static str {
        match self {
            Op::Health => "health",
            Op::Stats => "stats",
            Op::Submit { .. } => "submit",
            Op::Estimate { .. } => "estimate",
            Op::Sweep { .. } => "sweep",
            Op::Shutdown => "shutdown",
        }
    }
}

/// One parsed request frame.
#[derive(Debug, Clone, PartialEq)]
pub struct Request {
    /// Common header fields.
    pub header: Header,
    /// The requested operation.
    pub op: Op,
}

impl Request {
    /// A request for `op` with default header fields.
    pub fn new(op: Op) -> Self {
        Request {
            header: Header::default(),
            op,
        }
    }

    /// Parse a request frame.
    ///
    /// # Errors
    ///
    /// Returns a structured [`ProtoError`] (`bad_json`, `bad_request`)
    /// on any malformation; the server renders it as an error response.
    pub fn parse(payload: &[u8]) -> Result<Request, ProtoError> {
        let v = Json::parse(payload).map_err(|e| ProtoError::new("bad_json", e.to_string()))?;
        let obj = v
            .as_obj()
            .ok_or_else(|| ProtoError::new("bad_request", "request must be a JSON object"))?;
        let op_name = obj
            .get("op")
            .and_then(Json::as_str)
            .ok_or_else(|| ProtoError::new("bad_request", "missing string field `op`"))?;
        let header = Header {
            tenant: obj
                .get("tenant")
                .and_then(Json::as_str)
                .unwrap_or("anon")
                .to_string(),
            priority: match obj.get("priority") {
                None => 1,
                Some(p) => {
                    let p = p.as_u64().ok_or_else(|| {
                        ProtoError::new("bad_request", "`priority` must be an integer 0..=2")
                    })?;
                    u8::try_from(p.min(2)).expect("clamped")
                }
            },
            deadline_ms: match obj.get("deadline_ms") {
                None => None,
                Some(d) => Some(d.as_u64().ok_or_else(|| {
                    ProtoError::new(
                        "bad_request",
                        "`deadline_ms` must be a non-negative integer",
                    )
                })?),
            },
            key: obj.get("key").and_then(Json::as_str).map(str::to_string),
        };
        let bench = |field: &str| -> Result<String, ProtoError> {
            obj.get(field)
                .and_then(Json::as_str)
                .map(str::to_string)
                .ok_or_else(|| {
                    ProtoError::new("bad_request", format!("missing string field `{field}`"))
                })
        };
        let op =
            match op_name {
                "health" => Op::Health,
                "stats" => Op::Stats,
                "shutdown" => Op::Shutdown,
                "submit" => Op::Submit {
                    bench: bench("bench")?,
                },
                "estimate" => {
                    let params_obj = obj
                        .get("params")
                        .and_then(Json::as_obj)
                        .ok_or_else(|| ProtoError::new("bad_request", "missing object `params`"))?;
                    Op::Estimate {
                        bench: bench("bench")?,
                        params: params_from_json(params_obj)?,
                    }
                }
                "sweep" => Op::Sweep {
                    bench: bench("bench")?,
                    points: obj
                        .get("points")
                        .and_then(Json::as_u64)
                        .ok_or_else(|| ProtoError::new("bad_request", "missing integer `points`"))?
                        as usize,
                    seed: obj.get("seed").and_then(Json::as_u64).unwrap_or(0xD5E),
                    strategy: match obj.get("strategy") {
                        None => None,
                        Some(s) => {
                            let name = s.as_str().ok_or_else(|| {
                                ProtoError::new("bad_request", "`strategy` must be a string")
                            })?;
                            Some(
                                SearchStrategy::parse(name)
                                    .map_err(|e| ProtoError::new("bad_request", e))?,
                            )
                        }
                    },
                    num_fpgas: match obj.get("num_fpgas") {
                        None => None,
                        Some(k) => {
                            let k = k.as_u64().and_then(|k| u32::try_from(k).ok()).ok_or_else(
                                || ProtoError::new("bad_request", "`num_fpgas` must be an integer"),
                            )?;
                            if k == 0 {
                                return Err(ProtoError::new(
                                    "bad_request",
                                    "`num_fpgas` must be at least 1",
                                ));
                            }
                            Some(k)
                        }
                    },
                },
                other => {
                    return Err(ProtoError::new(
                        "unknown_op",
                        format!("unrecognized op `{other}`"),
                    ))
                }
            };
        Ok(Request { header, op })
    }

    /// Render this request as a frame payload.
    pub fn render(&self) -> Vec<u8> {
        let mut map = BTreeMap::new();
        map.insert("op".to_string(), Json::Str(self.op.name().to_string()));
        map.insert("tenant".to_string(), Json::Str(self.header.tenant.clone()));
        map.insert(
            "priority".to_string(),
            Json::Num(f64::from(self.header.priority)),
        );
        if let Some(d) = self.header.deadline_ms {
            map.insert("deadline_ms".to_string(), Json::Num(d as f64));
        }
        if let Some(k) = &self.header.key {
            map.insert("key".to_string(), Json::Str(k.clone()));
        }
        match &self.op {
            Op::Health | Op::Stats | Op::Shutdown => {}
            Op::Submit { bench } => {
                map.insert("bench".to_string(), Json::Str(bench.clone()));
            }
            Op::Estimate { bench, params } => {
                map.insert("bench".to_string(), Json::Str(bench.clone()));
                map.insert("params".to_string(), params_to_json(params));
            }
            Op::Sweep {
                bench,
                points,
                seed,
                strategy,
                num_fpgas,
            } => {
                map.insert("bench".to_string(), Json::Str(bench.clone()));
                map.insert("points".to_string(), Json::Num(*points as f64));
                map.insert("seed".to_string(), Json::Num(*seed as f64));
                if let Some(s) = strategy {
                    map.insert("strategy".to_string(), Json::Str(s.name().to_string()));
                }
                if let Some(k) = num_fpgas {
                    map.insert("num_fpgas".to_string(), Json::Num(f64::from(*k)));
                }
            }
        }
        Json::Obj(map).render().into_bytes()
    }
}

/// Render a parameter assignment as a JSON object.
pub fn params_to_json(params: &ParamValues) -> Json {
    Json::Obj(
        params
            .iter()
            .map(|(name, value)| (name.to_string(), Json::Num(value as f64)))
            .collect(),
    )
}

/// Parse a parameter assignment from a JSON object.
///
/// # Errors
///
/// Returns `bad_request` when any value is not a small non-negative
/// integer.
pub fn params_from_json(obj: &BTreeMap<String, Json>) -> Result<ParamValues, ProtoError> {
    let mut params = ParamValues::new();
    for (name, value) in obj {
        let v = value.as_u64().ok_or_else(|| {
            ProtoError::new(
                "bad_request",
                format!("parameter `{name}` must be a non-negative integer"),
            )
        })?;
        params.set(name, v);
    }
    Ok(params)
}

/// Render one evaluated design point with bit-exact floats.
pub fn point_to_json(p: &DesignPoint) -> Json {
    Json::obj([
        ("params", params_to_json(&p.params)),
        ("cycles", Json::Str(bits_str(p.cycles))),
        ("alms", Json::Str(bits_str(p.area.alms))),
        ("regs", Json::Str(bits_str(p.area.regs))),
        ("dsps", Json::Str(bits_str(p.area.dsps))),
        ("brams", Json::Str(bits_str(p.area.brams))),
        ("valid", Json::Bool(p.valid)),
    ])
}

/// Parse one evaluated design point (the inverse of [`point_to_json`]).
pub fn point_from_json(v: &Json) -> Option<DesignPoint> {
    let bits = |field: &str| v.get(field).and_then(Json::as_str).and_then(parse_bits);
    Some(DesignPoint {
        params: params_from_json(v.get("params")?.as_obj()?).ok()?,
        cycles: bits("cycles")?,
        area: AreaReport {
            alms: bits("alms")?,
            regs: bits("regs")?,
            dsps: bits("dsps")?,
            brams: bits("brams")?,
        },
        valid: v.get("valid")?.as_bool()?,
    })
}

/// Build a `status: "ok"` response with extra `fields`.
pub fn ok_response<I: IntoIterator<Item = (&'static str, Json)>>(fields: I) -> Json {
    let mut map: BTreeMap<String, Json> = fields
        .into_iter()
        .map(|(k, v)| (k.to_string(), v))
        .collect();
    map.insert("status".to_string(), Json::Str("ok".to_string()));
    Json::Obj(map)
}

/// Build a `status: "error"` response from a [`ProtoError`].
pub fn error_response(err: &ProtoError) -> Json {
    Json::obj([
        ("status", Json::Str("error".to_string())),
        ("code", Json::Str(err.code.to_string())),
        ("message", Json::Str(err.message.clone())),
    ])
}

/// Build a `status: "rejected"` admission response (the 429 analogue):
/// the request was *not* executed; the client should back off for at
/// least `retry_after_ms` and retry.
pub fn rejected_response(code: &str, retry_after_ms: u64) -> Json {
    Json::obj([
        ("status", Json::Str("rejected".to_string())),
        ("code", Json::Str(code.to_string())),
        ("retry_after_ms", Json::Num(retry_after_ms as f64)),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn requests_round_trip() {
        let reqs = [
            Request::new(Op::Health),
            Request::new(Op::Stats),
            Request::new(Op::Shutdown),
            Request {
                header: Header {
                    tenant: "team-a".into(),
                    priority: 0,
                    deadline_ms: Some(250),
                    key: Some("sweep-17".into()),
                },
                op: Op::Sweep {
                    bench: "gemm".into(),
                    points: 300,
                    seed: 42,
                    strategy: None,
                    num_fpgas: None,
                },
            },
            Request::new(Op::Sweep {
                bench: "gemm".into(),
                points: 40,
                seed: 7,
                strategy: Some(SearchStrategy::parse("surrogate").unwrap()),
                num_fpgas: Some(4),
            }),
            Request::new(Op::Estimate {
                bench: "dotproduct".into(),
                params: ParamValues::new().with("tile", 64).with("par", 4),
            }),
            Request::new(Op::Submit {
                bench: "gda".into(),
            }),
        ];
        for req in &reqs {
            let parsed = Request::parse(&req.render()).unwrap();
            assert_eq!(&parsed, req);
        }
    }

    #[test]
    fn malformed_requests_yield_structured_errors() {
        for (payload, code) in [
            (&b"not json"[..], "bad_json"),
            (b"[1,2]", "bad_request"),
            (b"{}", "bad_request"),
            (br#"{"op":42}"#, "bad_request"),
            (br#"{"op":"warp"}"#, "unknown_op"),
            (br#"{"op":"sweep"}"#, "bad_request"),
            (br#"{"op":"sweep","bench":"gemm"}"#, "bad_request"),
            (
                br#"{"op":"sweep","bench":"gemm","points":10,"strategy":"genetic"}"#,
                "bad_request",
            ),
            (
                br#"{"op":"sweep","bench":"gemm","points":10,"strategy":7}"#,
                "bad_request",
            ),
            (br#"{"op":"estimate","bench":"gemm"}"#, "bad_request"),
            (
                br#"{"op":"estimate","bench":"g","params":{"tile":1.5}}"#,
                "bad_request",
            ),
            (br#"{"op":"health","priority":"high"}"#, "bad_request"),
            (br#"{"op":"health","deadline_ms":-1}"#, "bad_request"),
        ] {
            let err = Request::parse(payload).unwrap_err();
            assert_eq!(err.code, code, "{payload:?} → {err}");
        }
    }

    #[test]
    fn float_bits_round_trip_exactly() {
        for v in [
            0.0,
            -0.0,
            1.5,
            f64::MIN_POSITIVE / 2.0,
            1e300,
            f64::NAN,
            f64::INFINITY,
        ] {
            let s = bits_str(v);
            let back = parse_bits(&s).unwrap();
            assert_eq!(back.to_bits(), v.to_bits(), "{v}");
        }
        assert_eq!(parse_bits("xyz"), None);
        assert_eq!(parse_bits("00"), None);
    }

    #[test]
    fn points_round_trip_bit_exactly() {
        let p = DesignPoint {
            params: ParamValues::new().with("tile", 64).with("par", 8),
            cycles: 123456.75,
            area: AreaReport {
                alms: -0.0,
                regs: 1e300,
                dsps: 3.25,
                brams: f64::MIN_POSITIVE,
            },
            valid: true,
        };
        let back = point_from_json(&point_to_json(&p)).unwrap();
        assert_eq!(back.cycles.to_bits(), p.cycles.to_bits());
        assert_eq!(back.area.alms.to_bits(), p.area.alms.to_bits());
        assert_eq!(back, p);
    }

    #[test]
    fn response_builders_set_status() {
        assert_eq!(
            ok_response([]).get("status").and_then(Json::as_str),
            Some("ok")
        );
        let e = error_response(&ProtoError::new("bad_json", "oops"));
        assert_eq!(e.get("status").and_then(Json::as_str), Some("error"));
        assert_eq!(e.get("code").and_then(Json::as_str), Some("bad_json"));
        let r = rejected_response("overloaded", 25);
        assert_eq!(r.get("status").and_then(Json::as_str), Some("rejected"));
        assert_eq!(r.get("retry_after_ms").and_then(Json::as_u64), Some(25));
    }

    #[test]
    fn priority_is_clamped_not_rejected() {
        let req = Request::parse(br#"{"op":"health","priority":9}"#).unwrap();
        assert_eq!(req.header.priority, 2);
    }
}
