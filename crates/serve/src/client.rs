//! A robust client: framing, reconnect, and the retry/backoff policy
//! the protocol prescribes.
//!
//! The client owns the *client half* of the robustness contract:
//!
//! * transport failures (dead socket, torn frame, read timeout) are
//!   retried with **jittered exponential backoff** up to a bounded
//!   attempt budget, reconnecting first;
//! * `status: "rejected"` responses (admission backpressure) are
//!   retried the same way, honoring the server's `retry_after_ms` as a
//!   floor on the backoff delay;
//! * `status: "error"` responses are **never** retried — they are
//!   deterministic verdicts about the request, not about the weather;
//! * sweeps should carry an idempotency `key` so every retry resumes
//!   the server-side checkpoint instead of restarting the sweep.
//!
//! Jitter is seeded ([`RetryPolicy::seed`]) so tests replay identical
//! backoff schedules.

use std::io;
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::frame::{read_frame, write_frame, FrameError, DEFAULT_MAX_RESPONSE};
use crate::json::Json;
use crate::protocol::Request;

/// Retry/backoff policy for [`Client`].
#[derive(Debug, Clone, PartialEq)]
pub struct RetryPolicy {
    /// Total attempts (first try included).
    pub max_attempts: u32,
    /// Base backoff delay; attempt `n` waits `base · 2ⁿ` before jitter.
    pub base: Duration,
    /// Ceiling on the un-jittered delay.
    pub cap: Duration,
    /// Jitter seed: delays are scaled by a uniform factor in
    /// `[0.5, 1.5)` drawn from this seeded stream.
    pub seed: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 6,
            base: Duration::from_millis(10),
            cap: Duration::from_millis(500),
            seed: 0xB0FF,
        }
    }
}

impl RetryPolicy {
    /// The jittered delay before retry number `attempt` (0-based), with
    /// `floor_ms` (the server's `retry_after_ms`, if any) as a lower
    /// bound.
    fn delay(&self, attempt: u32, floor_ms: u64, rng: &mut StdRng) -> Duration {
        let exp = self.base.as_millis() as u64 * (1u64 << attempt.min(16));
        let capped = exp.min(self.cap.as_millis() as u64);
        let jitter: f64 = rng.gen_range(0.5f64..1.5);
        Duration::from_millis(((capped as f64 * jitter) as u64).max(floor_ms))
    }
}

/// Why a request ultimately failed after exhausting retries.
#[derive(Debug)]
pub enum ClientError {
    /// Every attempt failed at the transport layer; the last error.
    Io(io::Error),
    /// Every attempt was rejected by admission control; the last code.
    Rejected(String),
    /// The response frame was not valid protocol JSON.
    BadResponse(String),
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "transport failed after retries: {e}"),
            ClientError::Rejected(code) => write!(f, "rejected after retries: {code}"),
            ClientError::BadResponse(m) => write!(f, "malformed response: {m}"),
        }
    }
}

impl std::error::Error for ClientError {}

/// A connection-caching, retrying protocol client.
pub struct Client {
    addr: SocketAddr,
    policy: RetryPolicy,
    timeout: Duration,
    max_response: usize,
    conn: Option<TcpStream>,
    rng: StdRng,
    /// Transport-level retries performed so far (for reporting).
    pub transport_retries: u64,
    /// Admission rejections absorbed so far (for reporting).
    pub rejections: u64,
}

impl Client {
    /// A client for `addr` with `policy`; connections are opened lazily
    /// and re-opened after any transport failure.
    pub fn new(addr: SocketAddr, policy: RetryPolicy) -> Client {
        let rng = StdRng::seed_from_u64(policy.seed);
        Client {
            addr,
            policy,
            timeout: Duration::from_secs(10),
            max_response: DEFAULT_MAX_RESPONSE,
            conn: None,
            rng,
            transport_retries: 0,
            rejections: 0,
        }
    }

    /// Override the per-attempt socket timeout.
    pub fn with_timeout(mut self, timeout: Duration) -> Client {
        self.timeout = timeout;
        self
    }

    fn connect(&mut self) -> io::Result<&mut TcpStream> {
        if self.conn.is_none() {
            let stream = TcpStream::connect_timeout(&self.addr, self.timeout)?;
            stream.set_read_timeout(Some(self.timeout))?;
            stream.set_write_timeout(Some(self.timeout))?;
            stream.set_nodelay(true)?;
            self.conn = Some(stream);
        }
        Ok(self.conn.as_mut().expect("just connected"))
    }

    fn attempt(&mut self, payload: &[u8]) -> Result<Json, FrameError> {
        let max_response = self.max_response;
        let stream = self.connect()?;
        write_frame(stream, payload, crate::frame::DEFAULT_MAX_FRAME)?;
        let bytes = read_frame(stream, max_response)?;
        Json::parse(&bytes).map_err(|e| {
            FrameError::Io(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("response is not valid JSON: {e}"),
            ))
        })
    }

    /// Send `req`, retrying transport failures and admission rejections
    /// per the policy. `status: "error"` responses are returned as `Ok`
    /// — they are answers, and the caller inspects them.
    ///
    /// # Errors
    ///
    /// Returns [`ClientError`] once the attempt budget is exhausted.
    pub fn request(&mut self, req: &Request) -> Result<Json, ClientError> {
        let payload = req.render();
        let mut last_io: Option<io::Error> = None;
        let mut last_reject: Option<String> = None;
        for attempt in 0..self.policy.max_attempts {
            match self.attempt(&payload) {
                Ok(resp) => match resp.get("status").and_then(Json::as_str) {
                    Some("rejected") => {
                        self.rejections += 1;
                        let code = resp
                            .get("code")
                            .and_then(Json::as_str)
                            .unwrap_or("rejected")
                            .to_string();
                        let floor = resp
                            .get("retry_after_ms")
                            .and_then(Json::as_u64)
                            .unwrap_or(0);
                        // Draining never clears; retrying would only
                        // stretch the drain window.
                        if code == "draining" {
                            return Err(ClientError::Rejected(code));
                        }
                        last_reject = Some(code);
                        let delay = self.policy.delay(attempt, floor, &mut self.rng);
                        std::thread::sleep(delay);
                    }
                    Some(_) => return Ok(resp),
                    None => {
                        return Err(ClientError::BadResponse(
                            "response has no `status` field".to_string(),
                        ))
                    }
                },
                Err(e) => {
                    // Any transport failure poisons the connection:
                    // reconnect on the next attempt.
                    self.conn = None;
                    self.transport_retries += 1;
                    last_io = Some(match e {
                        FrameError::Io(e) => e,
                        other => io::Error::other(other.to_string()),
                    });
                    let delay = self.policy.delay(attempt, 0, &mut self.rng);
                    std::thread::sleep(delay);
                }
            }
        }
        match (last_reject, last_io) {
            (Some(code), _) => Err(ClientError::Rejected(code)),
            (None, Some(e)) => Err(ClientError::Io(e)),
            (None, None) => Err(ClientError::Rejected("exhausted".to_string())),
        }
    }

    /// `request` that additionally treats a `status: "error"` response
    /// as a hard failure — for callers that expect success.
    ///
    /// # Errors
    ///
    /// As [`Client::request`], plus [`ClientError::BadResponse`] on an
    /// error-status reply.
    pub fn request_ok(&mut self, req: &Request) -> Result<Json, ClientError> {
        let resp = self.request(req)?;
        match resp.get("status").and_then(Json::as_str) {
            Some("ok") => Ok(resp),
            _ => Err(ClientError::BadResponse(format!(
                "expected ok, got: {}",
                resp.render()
            ))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_grows_caps_and_honors_floor() {
        let policy = RetryPolicy {
            max_attempts: 8,
            base: Duration::from_millis(8),
            cap: Duration::from_millis(100),
            seed: 1,
        };
        let mut rng = StdRng::seed_from_u64(policy.seed);
        let mut prev_max = 0u128;
        for attempt in 0..8 {
            let d = policy.delay(attempt, 0, &mut rng).as_millis();
            // Jitter in [0.5, 1.5): the delay stays within those bounds
            // of the capped exponential.
            let exp = (8u128 << attempt).min(100);
            assert!(d >= exp / 2, "attempt {attempt}: {d} < {}", exp / 2);
            assert!(d < exp * 3 / 2 + 1, "attempt {attempt}: {d}");
            prev_max = prev_max.max(d);
        }
        assert!(prev_max <= 150);
        // The server's retry_after_ms is a floor.
        let d = policy.delay(0, 400, &mut rng);
        assert!(d >= Duration::from_millis(400));
    }

    #[test]
    fn jitter_is_seeded_and_replayable() {
        let policy = RetryPolicy::default();
        let mut a = StdRng::seed_from_u64(policy.seed);
        let mut b = StdRng::seed_from_u64(policy.seed);
        for attempt in 0..6 {
            assert_eq!(
                policy.delay(attempt, 0, &mut a),
                policy.delay(attempt, 0, &mut b)
            );
        }
    }
}
