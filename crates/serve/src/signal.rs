//! Graceful-drain signal handling, std-only.
//!
//! On unix, a raw `extern "C"` binding to libc's `signal` installs an
//! async-signal-safe handler for `SIGTERM`/`SIGINT` that does exactly
//! one thing: store into a process-global [`AtomicBool`]. The accept
//! loop polls [`drain_requested`] between (nonblocking) accepts and
//! begins the drain sequence when it flips — stop accepting, finish or
//! checkpoint in-flight sweeps, flush the cache and obs sinks, exit 0.
//!
//! On non-unix targets the handler is a no-op and drain is reachable
//! only via the `shutdown` protocol op, which sets the same flag through
//! [`request_drain`].

use std::sync::atomic::{AtomicBool, Ordering};

static DRAIN: AtomicBool = AtomicBool::new(false);

/// Whether a drain has been requested (signal or `shutdown` op).
pub fn drain_requested() -> bool {
    DRAIN.load(Ordering::SeqCst)
}

/// Request a drain programmatically (the `shutdown` op path).
pub fn request_drain() {
    DRAIN.store(true, Ordering::SeqCst);
}

/// Reset the drain flag — test-only, so one process can run several
/// server lifecycles.
pub fn reset_for_tests() {
    DRAIN.store(false, Ordering::SeqCst);
}

#[cfg(unix)]
mod imp {
    use super::DRAIN;
    use std::sync::atomic::Ordering;

    const SIGINT: i32 = 2;
    const SIGTERM: i32 = 15;

    extern "C" {
        fn signal(signum: i32, handler: extern "C" fn(i32)) -> usize;
    }

    extern "C" fn on_signal(_sig: i32) {
        // Only async-signal-safe work is allowed here: one atomic store.
        DRAIN.store(true, Ordering::SeqCst);
    }

    /// Install the SIGTERM/SIGINT drain handler.
    pub fn install() {
        // SAFETY: `signal` with a function pointer of the correct
        // signature is the documented libc contract; the handler body is
        // async-signal-safe (a single atomic store).
        unsafe {
            signal(SIGTERM, on_signal);
            signal(SIGINT, on_signal);
        }
    }
}

#[cfg(not(unix))]
mod imp {
    /// No signal support on this target; drain is reachable only via the
    /// `shutdown` protocol op.
    pub fn install() {}
}

/// Install the platform drain handler (idempotent).
pub fn install_handlers() {
    imp::install();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn drain_flag_round_trips() {
        reset_for_tests();
        assert!(!drain_requested());
        request_drain();
        assert!(drain_requested());
        reset_for_tests();
        assert!(!drain_requested());
        // Installing handlers must not flip the flag.
        install_handlers();
        assert!(!drain_requested());
    }
}
