//! Property tests for the multi-FPGA partitioning pass: the placer is
//! a deterministic function of its inputs, K=1 is bitwise-identical to
//! the unpartitioned elaboration, chosen plans respect the structural
//! invariants (unit coverage, valid channel endpoints), and cutting
//! never produces a partition larger than the whole design.

use dhdl_core::{by, DType, Design, DesignBuilder, NodeKind};
use dhdl_synth::partition::{util_proxy, FIT_MARGIN};
use dhdl_synth::{elaborate, partition, CutKind};
use dhdl_target::{BoardLink, FpgaTarget};
use proptest::prelude::*;

/// The staged streaming design from the pass's unit tests: tile buffers
/// scale with `tile`, so one generator covers trivially-fitting designs
/// and designs several devices wide.
fn staged(tile: u64, par: u32) -> Design {
    let n = 16 * tile;
    let mut b = DesignBuilder::new("staged");
    let x = b.off_chip("x", DType::F32, &[n]);
    let y = b.off_chip("y", DType::F32, &[n]);
    b.sequential(|b| {
        b.meta_pipe(&[by(n, tile)], 1, |b, iters| {
            let i = iters[0];
            let xt = b.bram("xT", DType::F32, &[tile]);
            let mt = b.bram("mT", DType::F32, &[tile]);
            let yt = b.bram("yT", DType::F32, &[tile]);
            b.tile_load(x, xt, &[i], &[tile], par);
            b.pipe(&[by(tile, 1)], par, |b, it| {
                let v = b.load(xt, &[it[0]]);
                let w = b.mul(v, v);
                b.store(mt, &[it[0]], w);
            });
            b.pipe(&[by(tile, 1)], par, |b, it| {
                let v = b.load(mt, &[it[0]]);
                let w = b.add(v, v);
                b.store(yt, &[it[0]], w);
            });
            b.tile_store(y, yt, &[i], &[tile], par);
        });
    });
    b.finish().unwrap()
}

/// Pre-order leaf controllers, mirroring the pass's cut units.
fn leaf_units(design: &Design) -> Vec<dhdl_core::NodeId> {
    let mut out = Vec::new();
    design.walk_controllers(design.top(), &mut |_, id| {
        if matches!(
            design.kind(id),
            NodeKind::Pipe(_) | NodeKind::TileLoad(_) | NodeKind::TileStore(_)
        ) {
            out.push(id);
        }
    });
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The placer is a pure function: the same design, target, link and
    /// K always produce the identical plan — partitions, netlists and
    /// channels alike. (The placer takes no RNG; determinism across
    /// repeated calls is the whole seed-stability story.)
    #[test]
    fn partitioning_is_deterministic(
        tile_pow in 6u32..18,
        par_pow in 0u32..3,
        k in 1u32..8,
    ) {
        let d = staged(1 << tile_pow, 1 << par_pow);
        let t = FpgaTarget::stratix_v();
        let l = BoardLink::maia_interlink();
        prop_assert_eq!(partition(&d, &t, &l, k), partition(&d, &t, &l, k));
    }

    /// K=1 is the degenerate case, not a parallel implementation: one
    /// partition, no channels, and a netlist bitwise-equal to the
    /// ordinary elaboration.
    #[test]
    fn k1_is_bitwise_equal_to_elaborate(
        tile_pow in 6u32..18,
        par_pow in 0u32..3,
    ) {
        let d = staged(1 << tile_pow, 1 << par_pow);
        let t = FpgaTarget::stratix_v();
        let p = partition(&d, &t, &BoardLink::maia_interlink(), 1);
        prop_assert!(p.is_single());
        prop_assert_eq!(p.cut, CutKind::Single);
        prop_assert!(p.channels.is_empty());
        prop_assert_eq!(&p.partitions[0].net, &elaborate(&d, &t));
    }

    /// Structural invariants of every chosen plan: device numbering is
    /// dense and in order, leaf-range cuts tile the pre-order unit list
    /// exactly, channels connect distinct placed devices with nonzero
    /// traffic, and no partition exceeds the whole design (cutting can
    /// only shed area, modulo channel-endpoint FIFOs).
    #[test]
    fn chosen_plans_are_structurally_sound(
        tile_pow in 6u32..18,
        par_pow in 0u32..3,
        k in 2u32..8,
    ) {
        let d = staged(1 << tile_pow, 1 << par_pow);
        let t = FpgaTarget::stratix_v();
        let l = BoardLink::maia_interlink();
        let p = partition(&d, &t, &l, k);
        let used = p.devices_used();
        prop_assert!(used >= 1 && used <= k);
        for (i, part) in p.partitions.iter().enumerate() {
            prop_assert_eq!(part.device as usize, i);
            prop_assert!(!part.units.is_empty());
        }
        if p.cut == CutKind::LeafRanges {
            let concat: Vec<_> = p
                .partitions
                .iter()
                .flat_map(|part| part.units.iter().copied())
                .collect();
            prop_assert_eq!(concat, leaf_units(&d));
        }
        for ch in &p.channels {
            prop_assert!(ch.src < used && ch.dst < used);
            prop_assert_ne!(ch.src, ch.dst);
            prop_assert!(ch.words > 0 && ch.word_bits > 0 && ch.transfers > 0);
        }
        prop_assert!(p.link_cycles(&l) >= 0.0);
        let whole = util_proxy(&elaborate(&d, &t).raw, &t);
        for part in &p.partitions {
            let u = util_proxy(&part.net.raw, &t);
            prop_assert!(
                u <= whole + 0.01,
                "partition util {} exceeds whole-design util {}",
                u,
                whole
            );
        }
    }
}

/// When an oversized design has a plan that fits, the placer finds one:
/// every partition of the chosen plan lands under the fit margin.
#[test]
fn oversized_staged_design_fits_per_device() {
    let t = FpgaTarget::stratix_v();
    let l = BoardLink::maia_interlink();
    let d = staged(262_144, 1);
    let whole = util_proxy(&elaborate(&d, &t).raw, &t);
    assert!(whole > FIT_MARGIN, "test design must overflow one device");
    let p = partition(&d, &t, &l, 8);
    assert!(p.devices_used() > 1, "an overflowing design must be cut");
    for part in &p.partitions {
        let u = util_proxy(&part.net.raw, &t);
        assert!(
            u <= FIT_MARGIN,
            "device {} at {u:.3} exceeds the fit margin",
            part.device
        );
    }
}
