//! Property tests for the synthesis model: determinism, monotonicity and
//! physical sanity of the place-and-route report.

use dhdl_core::{by, DType, DesignBuilder, PrimOp};
use dhdl_synth::{design_hash, elaborate, synthesize};
use dhdl_target::FpgaTarget;
use proptest::prelude::*;

fn compute_design(ops: u32, par: u32, tile_pow: u32) -> dhdl_core::Design {
    let tile = 1u64 << tile_pow;
    let mut b = DesignBuilder::new(format!("p{ops}_{par}_{tile}"));
    let x = b.off_chip("x", DType::F32, &[tile * 4]);
    b.sequential(|b| {
        let t = b.bram("t", DType::F32, &[tile]);
        b.meta_pipe(&[by(tile * 4, tile)], 1, |b, iters| {
            b.tile_load(x, t, &[iters[0]], &[tile], par);
            b.pipe(&[by(tile, 1)], par, |b, it| {
                let mut v = b.load(t, &[it[0]]);
                for _ in 0..ops {
                    v = b.prim(PrimOp::Mul, &[v, v]);
                }
                b.store(t, &[it[0]], v);
            });
        });
    });
    b.finish().expect("valid")
}

proptest! {
    /// Synthesis is deterministic: identical designs get identical reports.
    #[test]
    fn synthesis_is_deterministic(ops in 1u32..10, par in 0u32..5, t in 4u32..9) {
        let target = FpgaTarget::stratix_v();
        let d = compute_design(ops, 1 << par, t);
        prop_assert_eq!(synthesize(&d, &target), synthesize(&d, &target));
        prop_assert_eq!(design_hash(&d), design_hash(&d));
    }

    /// More primitive work never shrinks raw LUTs or DSPs.
    #[test]
    fn elaboration_is_monotone_in_ops(ops in 1u32..10, par in 0u32..4, t in 4u32..8) {
        let target = FpgaTarget::stratix_v();
        let small = elaborate(&compute_design(ops, 1 << par, t), &target);
        let big = elaborate(&compute_design(ops + 1, 1 << par, t), &target);
        prop_assert!(big.raw.luts() > small.raw.luts());
        prop_assert!(big.raw.dsps >= small.raw.dsps);
    }

    /// Doubling parallelism grows datapath resources superlinearly in the
    /// body (replication) but never shrinks anything.
    #[test]
    fn elaboration_is_monotone_in_par(ops in 1u32..8, par in 0u32..4, t in 5u32..9) {
        let target = FpgaTarget::stratix_v();
        let narrow = elaborate(&compute_design(ops, 1 << par, t), &target);
        let wide = elaborate(&compute_design(ops, 1 << (par + 1), t), &target);
        prop_assert!(wide.raw.luts() > narrow.raw.luts());
        prop_assert!(wide.raw.brams >= narrow.raw.brams);
    }

    /// Post-P&R reports are physically sane: nonnegative, packing never
    /// inflates ALMs above raw LUTs + register pressure, duplication
    /// bounded at 100%.
    #[test]
    fn reports_are_physically_sane(ops in 1u32..10, par in 0u32..5, t in 4u32..9) {
        let target = FpgaTarget::stratix_v();
        let d = compute_design(ops, 1 << par, t);
        let net = elaborate(&d, &target);
        let rep = synthesize(&d, &target);
        prop_assert!(rep.alms > 0.0);
        prop_assert!(rep.regs >= net.raw.regs);
        prop_assert!(rep.brams >= net.raw.brams);
        prop_assert!(rep.brams <= net.raw.brams * 2.0 + 1.0);
        prop_assert!(rep.dsps <= net.raw.dsps + 0.5);
        // Packing halves packable LUTs at best: ALMs can't drop below
        // unpackable + packable/2 (minus DSP-softening wiggle).
        let floor = net.raw.lut_unpackable + net.raw.lut_packable / 2.0;
        prop_assert!(rep.alms >= floor * 0.9, "{} vs {}", rep.alms, floor);
    }
}
