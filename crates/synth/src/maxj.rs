//! MaxJ code generation.
//!
//! The DHDL compiler "generates hardware by emitting MaxJ, which is a
//! low-level Java-based hardware generation language" from Maxeler
//! Technologies (§V-A). This module emits a MaxJ-style kernel class for a
//! design instance, completing the Generation requirement of §II: the same
//! toolchain that estimates a design can emit it.

use std::fmt::Write as _;

use dhdl_core::{Design, NodeId, NodeKind, PrimOp};

/// Generate MaxJ-style kernel source for a design instance.
pub fn generate(design: &Design) -> String {
    let mut g = Gen {
        design,
        out: String::new(),
        indent: 1,
    };
    g.emit_header();
    for &off in design.offchips() {
        g.emit_offchip(off);
    }
    g.line("");
    g.emit_ctrl(design.top());
    g.emit_footer();
    g.out
}

struct Gen<'a> {
    design: &'a Design,
    out: String,
    indent: usize,
}

impl Gen<'_> {
    fn class_name(&self) -> String {
        let mut name: String = self
            .design
            .name()
            .chars()
            .filter(|c| c.is_alphanumeric())
            .collect();
        if let Some(c) = name.get_mut(0..1) {
            let upper = c.to_uppercase();
            name.replace_range(0..1, &upper);
        }
        format!("{name}Kernel")
    }

    fn line(&mut self, s: &str) {
        for _ in 0..self.indent {
            self.out.push_str("    ");
        }
        self.out.push_str(s);
        self.out.push('\n');
    }

    fn emit_header(&mut self) {
        let class = self.class_name();
        self.indent = 0;
        self.line("package dhdl.generated;");
        self.line("");
        self.line("import com.maxeler.maxcompiler.v2.kernelcompiler.Kernel;");
        self.line("import com.maxeler.maxcompiler.v2.kernelcompiler.KernelParameters;");
        self.line("import com.maxeler.maxcompiler.v2.kernelcompiler.types.base.DFEVar;");
        self.line("import com.maxeler.maxcompiler.v2.kernelcompiler.stdlib.memory.Memory;");
        self.line("import com.maxeler.maxcompiler.v2.kernelcompiler.stdlib.core.CounterChain;");
        self.line("");
        self.line(&format!("class {class} extends Kernel {{"));
        self.indent = 1;
        self.line(&format!("{class}(KernelParameters parameters) {{"));
        self.indent = 2;
        self.line("super(parameters);");
    }

    fn emit_footer(&mut self) {
        self.indent = 1;
        self.line("}");
        self.indent = 0;
        self.line("}");
    }

    fn var(&self, id: NodeId) -> String {
        match self.design.node(id).name.as_deref() {
            Some(n) => format!("{}_{}", n, id.index()),
            None => format!("v{}", id.index()),
        }
    }

    fn dfe_type(&self, id: NodeId) -> String {
        use dhdl_core::DType;
        match self.design.ty(id) {
            DType::F32 => "dfeFloat(8, 24)".to_string(),
            DType::F64 => "dfeFloat(11, 53)".to_string(),
            DType::Bool => "dfeBool()".to_string(),
            DType::Fix { sign, int, frac } => format!(
                "dfeFix({}, {}, SignMode.{})",
                int,
                frac,
                if sign { "TWOSCOMPLEMENT" } else { "UNSIGNED" }
            ),
        }
    }

    fn emit_offchip(&mut self, id: NodeId) {
        let NodeKind::OffChip { dims } = self.design.kind(id) else {
            return;
        };
        let elems: u64 = dims.iter().product();
        self.line(&format!(
            "// OffChipMem {} : {} elements",
            self.var(id),
            elems
        ));
        self.line(&format!(
            "DFEVar {} = io.input(\"{}\", {});",
            self.var(id),
            self.var(id),
            self.dfe_type(id)
        ));
    }

    fn emit_ctrl(&mut self, id: NodeId) {
        match self.design.kind(id).clone() {
            NodeKind::Sequential(s) | NodeKind::MetaPipe(s) => {
                let kind = self.design.kind(id).template_name();
                self.line(&format!(
                    "// --- {kind} {} (par={}) ---",
                    self.var(id),
                    s.par
                ));
                if !s.ctr.is_unit() {
                    self.emit_counter(id, s.ctr.dims.len());
                }
                for &m in &s.locals {
                    self.emit_memory(m);
                }
                for &st in &s.stages {
                    self.emit_ctrl(st);
                }
                if let Some(f) = s.fold {
                    self.line(&format!(
                        "// fold: {} <- {} ({:?})",
                        self.var(f.accum),
                        self.var(f.src),
                        f.op
                    ));
                }
            }
            NodeKind::ParallelCtrl { stages, locals } => {
                self.line(&format!("// --- Parallel {} ---", self.var(id)));
                for &m in &locals {
                    self.emit_memory(m);
                }
                for &st in &stages {
                    self.emit_ctrl(st);
                }
            }
            NodeKind::Pipe(p) => {
                self.line(&format!(
                    "// --- Pipe {} (par={}, II=1) ---",
                    self.var(id),
                    p.par
                ));
                if !p.ctr.is_unit() {
                    self.emit_counter(id, p.ctr.dims.len());
                }
                for &n in &p.body {
                    self.emit_prim(n);
                }
                if let Some(r) = p.reduce {
                    self.line(&format!(
                        "DFEVar {a} = treeReduce({v}, {par}); // {op:?} into {reg}",
                        a = self.var(r.reg),
                        v = self.var(r.value),
                        par = p.par,
                        op = r.op,
                        reg = self.var(r.reg),
                    ));
                }
            }
            NodeKind::TileLoad(t) => {
                self.line(&format!(
                    "{}.tileLoad({}, /*tile=*/{:?}, /*par=*/{});",
                    self.var(t.local),
                    self.var(t.offchip),
                    t.tile,
                    t.par
                ));
            }
            NodeKind::TileStore(t) => {
                self.line(&format!(
                    "{}.tileStore({}, /*tile=*/{:?}, /*par=*/{});",
                    self.var(t.offchip),
                    self.var(t.local),
                    t.tile,
                    t.par
                ));
            }
            _ => {}
        }
    }

    fn emit_counter(&mut self, ctrl: NodeId, dims: usize) {
        self.line(&format!(
            "CounterChain chain_{} = control.count.makeCounterChain(); // {} dims",
            ctrl.index(),
            dims
        ));
    }

    fn emit_memory(&mut self, id: NodeId) {
        match self.design.kind(id).clone() {
            NodeKind::Bram(b) => {
                let elems = b.elements();
                self.line(&format!(
                    "Memory<DFEVar> {} = mem.alloc({}, {}); // banks={}{}",
                    self.var(id),
                    self.dfe_type(id),
                    elems,
                    b.banks,
                    if b.double_buf {
                        ", double-buffered"
                    } else {
                        ""
                    }
                ));
            }
            NodeKind::Reg(r) => {
                self.line(&format!(
                    "DFEVar {} = Reductions.streamHold(constant.var({}), reset); // Reg{}",
                    self.var(id),
                    r.init,
                    if r.double_buf {
                        " (double-buffered)"
                    } else {
                        ""
                    }
                ));
            }
            NodeKind::PriorityQueue(q) => {
                self.line(&format!(
                    "// PriorityQueue {} depth={}",
                    self.var(id),
                    q.depth
                ));
            }
            _ => {}
        }
    }

    fn emit_prim(&mut self, id: NodeId) {
        let node = self.design.node(id).clone();
        match node.kind {
            NodeKind::Const(v) => {
                self.line(&format!(
                    "DFEVar {} = constant.var({}, {});",
                    self.var(id),
                    self.dfe_type(id),
                    v
                ));
            }
            NodeKind::Prim { op, ref inputs } => {
                let args: Vec<String> = inputs.iter().map(|&i| self.operand(i)).collect();
                let expr = match op {
                    PrimOp::Add => format!("{} + {}", args[0], args[1]),
                    PrimOp::Sub => format!("{} - {}", args[0], args[1]),
                    PrimOp::Mul => format!("{} * {}", args[0], args[1]),
                    PrimOp::Div => format!("{} / {}", args[0], args[1]),
                    PrimOp::Lt => format!("{} < {}", args[0], args[1]),
                    PrimOp::Le => format!("{} <= {}", args[0], args[1]),
                    PrimOp::Gt => format!("{} > {}", args[0], args[1]),
                    PrimOp::Ge => format!("{} >= {}", args[0], args[1]),
                    PrimOp::Eq => format!("{} === {}", args[0], args[1]),
                    PrimOp::Ne => format!("{} !== {}", args[0], args[1]),
                    PrimOp::And => format!("{} & {}", args[0], args[1]),
                    PrimOp::Or => format!("{} | {}", args[0], args[1]),
                    PrimOp::Not => format!("~{}", args[0]),
                    PrimOp::Neg => format!("-{}", args[0]),
                    _ => {
                        let f = format!("KernelMath.{}", op_fn(op));
                        format!("{}({})", f, args.join(", "))
                    }
                };
                let mut line = String::new();
                let _ = write!(line, "DFEVar {} = {};", self.var(id), expr);
                self.line(&line);
            }
            NodeKind::Mux {
                sel,
                if_true,
                if_false,
            } => {
                self.line(&format!(
                    "DFEVar {} = {} ? {} : {};",
                    self.var(id),
                    self.operand(sel),
                    self.operand(if_true),
                    self.operand(if_false)
                ));
            }
            NodeKind::Load { mem, ref addr } => {
                let idx: Vec<String> = addr.iter().map(|&a| self.operand(a)).collect();
                self.line(&format!(
                    "DFEVar {} = {}.read({});",
                    self.var(id),
                    self.var(mem),
                    idx.join(", ")
                ));
            }
            NodeKind::Store {
                mem,
                ref addr,
                value,
            } => {
                let idx: Vec<String> = addr.iter().map(|&a| self.operand(a)).collect();
                self.line(&format!(
                    "{}.write({}, {});",
                    self.var(mem),
                    idx.join(", "),
                    self.operand(value)
                ));
            }
            _ => {}
        }
    }

    fn operand(&self, id: NodeId) -> String {
        match self.design.kind(id) {
            NodeKind::Const(v) => format!("constant.var({v})"),
            NodeKind::Iter { ctrl, dim } => format!("chain_{}.dim({})", ctrl.index(), dim),
            _ => self.var(id),
        }
    }
}

fn op_fn(op: PrimOp) -> &'static str {
    match op {
        PrimOp::Abs => "abs",
        PrimOp::Sqrt => "sqrt",
        PrimOp::Exp => "exp",
        PrimOp::Ln => "log",
        PrimOp::Min => "min",
        PrimOp::Max => "max",
        PrimOp::Rem => "mod",
        _ => "apply",
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dhdl_core::{by, DType, DesignBuilder, ReduceOp};

    fn sample() -> Design {
        let mut b = DesignBuilder::new("gda mini");
        let x = b.off_chip("x", DType::F32, &[64]);
        b.sequential(|b| {
            let acc = b.reg("acc", DType::F32, 0.0);
            b.meta_pipe(&[by(64, 16)], 1, |b, iters| {
                let i = iters[0];
                let t = b.bram("xT", DType::F32, &[16]);
                b.tile_load(x, t, &[i], &[16], 2);
                b.pipe_reduce(&[by(16, 1)], 2, acc, ReduceOp::Add, |b, it| {
                    let v = b.load(t, &[it[0]]);
                    let half = b.constant(0.5, DType::F32);
                    let c = b.lt(v, half);
                    let w = b.mux(c, half, v);
                    b.mul(w, w)
                });
            });
        });
        b.finish().unwrap()
    }

    #[test]
    fn structure_is_complete() {
        let code = generate(&sample());
        assert!(code.contains("class GdaminiKernel extends Kernel"));
        assert!(code.contains("tileLoad"));
        assert!(code.contains("Memory<DFEVar>"));
        assert!(code.contains("treeReduce"));
        assert!(code.contains("? "), "mux missing: {code}");
    }

    #[test]
    fn braces_balance() {
        let code = generate(&sample());
        let open = code.matches('{').count();
        let close = code.matches('}').count();
        assert_eq!(open, close);
    }

    #[test]
    fn deterministic() {
        assert_eq!(generate(&sample()), generate(&sample()));
    }

    #[test]
    fn all_offchip_streams_emitted() {
        let d = sample();
        let code = generate(&d);
        for &off in d.offchips() {
            let name = d.node(off).name.clone().unwrap();
            assert!(code.contains(&format!("io.input(\"{}_{}\"", name, off.index())));
        }
    }
}
