//! Multi-FPGA partitioning: cutting an elaborated design across devices.
//!
//! Designs that exceed single-chip capacity are discarded by the DSE
//! pruner, so the largest tilings never reach a Pareto front. This pass
//! follows the structure of multi-FPGA emulation compilers — partition
//! the netlist at controller boundaries, map partitions to devices with a
//! capacity-aware placer, insert explicit inter-board channels at every
//! cut edge — adapted to the DHDL hierarchy, where the natural cut
//! points are *controller* boundaries rather than individual gates.
//!
//! Two cut rules generate candidate plans:
//!
//! * **Leaf-range cuts** split the pre-order sequence of leaf controllers
//!   (`Pipe`, `TileLd`, `TileSt`) into contiguous ranges, one range per
//!   device. Contiguity preserves program order, so every cut edge is a
//!   produced-then-consumed on-chip memory that becomes a channel.
//! * **Replica cuts** split a parallelized outer controller's `par`
//!   replicas across devices (each device runs a share of the replicas),
//!   which divides replicated datapath area when one controller subtree
//!   dominates.
//!
//! A deterministic placer scores every candidate with the per-device
//! utilization proxy and picks the plan with the fewest devices whose
//! largest partition fits (then minimum utilization; ties broken by plan
//! order). `k == 1` always yields a single partition whose netlist is
//! **bit-identical** to [`elaborate`] — the unpartitioned path is the
//! degenerate case, not a parallel implementation.
//!
//! Per-partition netlists come from *derived designs*: the design is
//! cloned, controllers/locals that the partition does not keep are pruned
//! from the stage/local lists, and the ordinary [`elaborate`] pass runs
//! on the result, so partition areas are priced by exactly the same
//! template models as whole designs. Channel endpoint FIFOs are added
//! analytically on top. (Derived designs share the original arena, so
//! the netlist *features* — used only by the estimator's correction
//! networks — still see whole-design statistics; the resource counts,
//! which drive capacity checks, are exact for the pruned tree.)
//!
//! Cross-device traffic assumes host-broadcast off-chip inputs: every
//! device's DRAM holds the input arrays, so only *on-chip* memories
//! crossing a cut become link channels.

use std::collections::{BTreeMap, BTreeSet};

use dhdl_core::analysis::traversal::{is_ancestor, parent_map};
use dhdl_core::{Design, NodeId, NodeKind};
use dhdl_target::{BoardLink, FpgaTarget, Resources};

use crate::chardata::{bram_cost, counter_cost};
use crate::elaborate::{elaborate, Netlist};

/// Placer fit margin on the raw-utilization proxy: a partition is
/// considered to fit its device when its largest utilization axis is
/// below this fraction, leaving headroom for place-and-route effects
/// (packing waste, duplication). The estimator performs the
/// authoritative post-place-and-route per-partition capacity check.
pub const FIT_MARGIN: f64 = 0.90;

/// Which cut rule produced the chosen plan.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CutKind {
    /// One partition: the whole design on one device (`k == 1`, a
    /// single-leaf design, or a design that already fits one device).
    Single,
    /// Contiguous ranges of the pre-order leaf-controller sequence.
    LeafRanges,
    /// The `par` replicas of one outer controller, split across devices.
    Replicas(NodeId),
}

/// One device's share of a partitioned design.
#[derive(Debug, Clone, PartialEq)]
pub struct Partition {
    /// Device index this partition is placed on (0-based).
    pub device: u32,
    /// Leaf controllers (units) executing on this device, in pre-order.
    pub units: Vec<NodeId>,
    /// Elaborated netlist of the partition's derived design, including
    /// its channel-endpoint FIFOs.
    pub net: Netlist,
    /// Resources of this partition's channel endpoints (already included
    /// in `net`), reported separately for attribution.
    pub endpoints: Resources,
}

/// An inter-board channel: one on-chip memory whose producer and
/// consumer landed on different devices.
#[derive(Debug, Clone, PartialEq)]
pub struct Channel {
    /// Source device (holds the memory's home copy).
    pub src: u32,
    /// Destination device (holds a mirror).
    pub dst: u32,
    /// The on-chip memory crossing the cut.
    pub mem: NodeId,
    /// Elements transferred per refill.
    pub words: u64,
    /// Bits per element.
    pub word_bits: u32,
    /// Static number of refills over the whole run (executions of the
    /// memory's scope body).
    pub transfers: u64,
    /// Whether the memory's scope overlaps its stages (`MetaPipe` /
    /// `Parallel`): overlapped channels hide all but one link latency.
    pub overlapped: bool,
}

/// The result of partitioning a design across up to `k` devices.
#[derive(Debug, Clone, PartialEq)]
pub struct Partitioning {
    /// The requested device budget K.
    pub num_devices: u32,
    /// Which cut rule won.
    pub cut: CutKind,
    /// Per-device partitions, ordered by device index. Always non-empty;
    /// `partitions.len() <= num_devices`.
    pub partitions: Vec<Partition>,
    /// Inter-board channels, in deterministic (memory, device) order.
    pub channels: Vec<Channel>,
}

impl Partitioning {
    /// Number of devices the chosen plan actually uses.
    pub fn devices_used(&self) -> u32 {
        self.partitions.len() as u32
    }

    /// Whether this is the degenerate single-device plan (bit-identical
    /// to the unpartitioned path).
    pub fn is_single(&self) -> bool {
        self.partitions.len() == 1
    }

    /// Total exposed link cycles of all channels on `link`: stream
    /// occupancy serializes on the shared link bandwidth; overlapped
    /// channels (scope is a `MetaPipe`/`Parallel`) pay the first-word
    /// latency once, serialized ones pay it per refill.
    pub fn link_cycles(&self, link: &BoardLink) -> f64 {
        let mut total = 0.0;
        for ch in &self.channels {
            let stream = link.stream_cycles(ch.words, ch.word_bits) * ch.transfers as f64;
            let latency = if ch.overlapped {
                link.latency_cycles as f64
            } else {
                (link.latency_cycles * ch.transfers) as f64
            };
            total += stream + latency;
        }
        total
    }
}

/// Partition `design` across up to `k` identical `target` devices
/// connected by `link`.
///
/// `k == 1` (or a design with at most one leaf controller) returns a
/// single partition whose netlist is bit-identical to
/// [`elaborate`]`(design, target)`. Designs whose utilization proxy
/// already fits one device (under [`FIT_MARGIN`]) also stay single: the
/// placer never pays link traffic it does not need.
///
/// # Panics
///
/// Panics if `k == 0`.
pub fn partition(design: &Design, target: &FpgaTarget, link: &BoardLink, k: u32) -> Partitioning {
    assert!(k > 0, "partitioning needs at least one device");
    let whole = elaborate(design, target);
    let units = leaf_units(design);
    let single = |net: Netlist| Partitioning {
        num_devices: k,
        cut: CutKind::Single,
        partitions: vec![Partition {
            device: 0,
            units: units.clone(),
            net,
            endpoints: Resources::zero(),
        }],
        channels: Vec::new(),
    };
    if k == 1 || units.len() <= 1 || util_proxy(&whole.raw, target) <= FIT_MARGIN {
        return single(whole);
    }
    let _span = dhdl_obs::span_arg("partition", "k", u64::from(k));
    let ctx = Ctx::new(design, target, link);
    let mut candidates: Vec<Partitioning> = Vec::new();
    // Leaf-range plans: one per device count, boundaries from a min-max
    // DP over contiguous range costs.
    for parts in 2..=k.min(units.len() as u32) {
        if let Some(plan) = ctx.best_ranges(parts as usize) {
            candidates.push(ctx.build_ranges(k, &plan));
        }
    }
    // Replica plans: one per parallelized outer controller.
    for ctrl in design.controllers() {
        let (NodeKind::MetaPipe(s) | NodeKind::Sequential(s)) = design.kind(ctrl) else {
            continue;
        };
        if s.par < 2 || s.fold.is_some() || ctx.subtree_has_tile_store(ctrl) {
            continue;
        }
        let devices = k.min(s.par);
        if devices < 2 {
            continue;
        }
        candidates.push(ctx.build_replicas(k, ctrl, s.par, devices));
    }
    if candidates.is_empty() {
        return single(whole);
    }
    // Deterministic selection: fewest devices whose largest partition
    // fits, then minimum peak utilization, then candidate order.
    let score = |p: &Partitioning| -> (bool, usize, f64) {
        let peak = p
            .partitions
            .iter()
            .map(|part| util_proxy(&part.net.raw, target))
            .fold(0.0, f64::max);
        (peak > FIT_MARGIN, p.partitions.len(), peak)
    };
    let mut best = 0;
    for i in 1..candidates.len() {
        let (a_over, a_parts, a_util) = score(&candidates[best]);
        let (b_over, b_parts, b_util) = score(&candidates[i]);
        // Lexicographic: fitting beats overflowing, then fewer devices,
        // then lower peak utilization; ties keep the earlier candidate.
        let better = (b_over, b_parts, b_util.total_cmp(&a_util))
            < (a_over, a_parts, std::cmp::Ordering::Equal);
        if better {
            best = i;
        }
    }
    candidates.swap_remove(best)
}

/// Largest fractional utilization axis of a raw resource vector against
/// a device, using the pre-packing approximation `ALMs ≈ packable/2 +
/// unpackable`. The placer's scoring function; the estimator's
/// post-place-and-route model is the authoritative check.
pub fn util_proxy(raw: &Resources, target: &FpgaTarget) -> f64 {
    let alms = raw.lut_packable / 2.0 + raw.lut_unpackable;
    let a = alms / target.alms as f64;
    let d = raw.dsps / target.dsps as f64;
    let b = raw.brams / target.brams as f64;
    a.max(d).max(b)
}

/// Pre-order leaf controllers: the cut units.
fn leaf_units(design: &Design) -> Vec<NodeId> {
    let mut out = Vec::new();
    design.walk_controllers(design.top(), &mut |_, id| {
        if matches!(
            design.kind(id),
            NodeKind::Pipe(_) | NodeKind::TileLoad(_) | NodeKind::TileStore(_)
        ) {
            out.push(id);
        }
    });
    out
}

/// Per-channel endpoint hardware: the link FIFO plus its flow-control
/// counter, priced by the same characterized models as everything else.
fn endpoint_cost(target: &FpgaTarget, link: &BoardLink, word_bits: u32) -> Resources {
    bram_cost(target, link.fifo_depth, word_bits.max(1), 1, false) + counter_cost()
}

/// Shared analysis state for candidate-plan construction.
struct Ctx<'a> {
    design: &'a Design,
    target: &'a FpgaTarget,
    link: &'a BoardLink,
    units: Vec<NodeId>,
    /// Memories read / written by each unit (fold stages attributed to
    /// the last unit of the folding controller's subtree).
    unit_reads: Vec<BTreeSet<NodeId>>,
    unit_writes: Vec<BTreeSet<NodeId>>,
    /// Controllers whose fold stage each unit owns.
    fold_owned: Vec<BTreeSet<NodeId>>,
    /// Scope (declaring controller) of every on-chip memory.
    scope: BTreeMap<NodeId, NodeId>,
    /// Executions of each controller's body over the whole run.
    body_execs: BTreeMap<NodeId, u64>,
    /// Pre-order leaf-unit index range `[start, end)` of each controller
    /// subtree.
    subtree: BTreeMap<NodeId, (usize, usize)>,
    parents: BTreeMap<NodeId, NodeId>,
}

impl<'a> Ctx<'a> {
    fn new(design: &'a Design, target: &'a FpgaTarget, link: &'a BoardLink) -> Self {
        let units = leaf_units(design);
        let index: BTreeMap<NodeId, usize> =
            units.iter().enumerate().map(|(i, &u)| (u, i)).collect();
        let mut unit_reads = vec![BTreeSet::new(); units.len()];
        let mut unit_writes = vec![BTreeSet::new(); units.len()];
        let mut fold_owned = vec![BTreeSet::new(); units.len()];
        let mut scope = BTreeMap::new();
        let mut subtree = BTreeMap::new();
        // Subtree leaf ranges: pre-order leaves of a subtree are
        // contiguous, so a recursive walk assigns [start, end) ranges.
        fn ranges(
            design: &Design,
            id: NodeId,
            index: &BTreeMap<NodeId, usize>,
            subtree: &mut BTreeMap<NodeId, (usize, usize)>,
        ) -> (usize, usize) {
            if let Some(&i) = index.get(&id) {
                subtree.insert(id, (i, i + 1));
                return (i, i + 1);
            }
            let mut lo = usize::MAX;
            let mut hi = 0;
            for &st in design.stages(id) {
                let (a, b) = ranges(design, st, index, subtree);
                lo = lo.min(a);
                hi = hi.max(b);
            }
            if lo == usize::MAX {
                lo = 0;
                hi = 0;
            }
            subtree.insert(id, (lo, hi));
            (lo, hi)
        }
        ranges(design, design.top(), &index, &mut subtree);
        for ctrl in design.controllers() {
            for &m in design.locals(ctrl) {
                scope.insert(m, ctrl);
            }
            match design.kind(ctrl) {
                NodeKind::Pipe(p) => {
                    let i = index[&ctrl];
                    for &n in &p.body {
                        match design.kind(n) {
                            NodeKind::Load { mem, .. } => {
                                unit_reads[i].insert(*mem);
                            }
                            NodeKind::Store { mem, .. } => {
                                unit_writes[i].insert(*mem);
                            }
                            _ => {}
                        }
                    }
                    if let Some(r) = &p.reduce {
                        unit_reads[i].insert(r.reg);
                        unit_writes[i].insert(r.reg);
                    }
                }
                NodeKind::TileLoad(t) => {
                    unit_writes[index[&ctrl]].insert(t.local);
                }
                NodeKind::TileStore(t) => {
                    unit_reads[index[&ctrl]].insert(t.local);
                }
                NodeKind::MetaPipe(s) | NodeKind::Sequential(s) => {
                    if let Some(f) = &s.fold {
                        // The implicit fold stage runs after the body's
                        // last unit: attribute its accesses (and the
                        // fold itself) there.
                        let (_, end) = subtree[&ctrl];
                        if end > 0 {
                            let owner = end - 1;
                            unit_reads[owner].insert(f.src);
                            unit_reads[owner].insert(f.accum);
                            unit_writes[owner].insert(f.accum);
                            fold_owned[owner].insert(ctrl);
                        }
                    }
                }
                _ => {}
            }
        }
        // Executions of each controller's body: the product of ancestor
        // effective trip counts, matching the latency estimator.
        let mut body_execs = BTreeMap::new();
        fn execs(design: &Design, id: NodeId, runs: u64, out: &mut BTreeMap<NodeId, u64>) {
            let body = match design.kind(id) {
                NodeKind::MetaPipe(s) | NodeKind::Sequential(s) => {
                    runs * s.ctr.total_iters().div_ceil(u64::from(s.par.max(1))).max(1)
                }
                _ => runs,
            };
            out.insert(id, body);
            for &st in design.stages(id) {
                execs(design, st, body, out);
            }
        }
        execs(design, design.top(), 1, &mut body_execs);
        Ctx {
            design,
            target,
            link,
            units,
            unit_reads,
            unit_writes,
            fold_owned,
            scope,
            body_execs,
            subtree,
            parents: parent_map(design),
        }
    }

    fn subtree_has_tile_store(&self, ctrl: NodeId) -> bool {
        let (lo, hi) = self.subtree[&ctrl];
        self.units[lo..hi]
            .iter()
            .any(|&u| matches!(self.design.kind(u), NodeKind::TileStore(_)))
    }

    /// Elements / element bits of an on-chip memory.
    fn mem_shape(&self, m: NodeId) -> (u64, u32) {
        let node = self.design.node(m);
        let words = match &node.kind {
            NodeKind::Bram(b) => b.elements(),
            NodeKind::Reg(_) => 1,
            NodeKind::PriorityQueue(q) => q.depth,
            _ => 0,
        };
        (words, node.ty.bits())
    }

    /// Refill count and overlap flag of a memory, from its scope.
    fn mem_timing(&self, m: NodeId) -> (u64, bool) {
        let Some(&scope) = self.scope.get(&m) else {
            return (1, false);
        };
        let transfers = self.body_execs.get(&scope).copied().unwrap_or(1).max(1);
        let overlapped = matches!(
            self.design.kind(scope),
            NodeKind::MetaPipe(_) | NodeKind::ParallelCtrl { .. }
        );
        (transfers, overlapped)
    }

    /// The derived design of one partition: kept units' ancestors retain
    /// only kept stages and accessed locals; fold stages survive only on
    /// the partition owning their attributed unit; an optional `par`
    /// override implements replica shares.
    fn derive(&self, keep: &BTreeSet<usize>, par_override: Option<(NodeId, u32)>) -> Design {
        let mut kept_mems: BTreeSet<NodeId> = BTreeSet::new();
        let mut kept_units: BTreeSet<NodeId> = BTreeSet::new();
        let mut kept_folds: BTreeSet<NodeId> = BTreeSet::new();
        for &i in keep {
            kept_units.insert(self.units[i]);
            kept_mems.extend(self.unit_reads[i].iter().copied());
            kept_mems.extend(self.unit_writes[i].iter().copied());
            kept_folds.extend(self.fold_owned[i].iter().copied());
        }
        let mut kept_ctrls = kept_units.clone();
        for &u in &kept_units {
            let mut n = u;
            while let Some(&p) = self.parents.get(&n) {
                if p == n {
                    break;
                }
                kept_ctrls.insert(p);
                n = p;
            }
        }
        let mut derived = self.design.clone();
        for ctrl in self.design.controllers() {
            match &mut derived.node_mut(ctrl).kind {
                NodeKind::MetaPipe(s) | NodeKind::Sequential(s) => {
                    s.stages.retain(|st| kept_ctrls.contains(st));
                    s.locals.retain(|m| kept_mems.contains(m));
                    if s.fold.is_some() && !kept_folds.contains(&ctrl) {
                        s.fold = None;
                    }
                    if let Some((c, share)) = par_override {
                        if c == ctrl {
                            s.par = share;
                        }
                    }
                }
                NodeKind::ParallelCtrl { stages, locals } => {
                    stages.retain(|st| kept_ctrls.contains(st));
                    locals.retain(|m| kept_mems.contains(m));
                }
                _ => {}
            }
        }
        derived
    }

    /// Netlist of a partition: derived-design elaboration plus channel
    /// endpoint hardware.
    fn partition_net(
        &self,
        keep: &BTreeSet<usize>,
        par_override: Option<(NodeId, u32)>,
        endpoint_bits: &[u32],
    ) -> (Netlist, Resources) {
        let derived = self.derive(keep, par_override);
        let mut net = elaborate(&derived, self.target);
        let mut endpoints = Resources::zero();
        for &bits in endpoint_bits {
            endpoints += endpoint_cost(self.target, self.link, bits);
        }
        net.raw += endpoints;
        net.breakdown.memories += endpoints;
        (net, endpoints)
    }

    /// Min-max DP over contiguous leaf ranges: boundaries of the best
    /// `parts`-way split, scored by each range's derived-design
    /// utilization proxy.
    fn best_ranges(&self, parts: usize) -> Option<Vec<(usize, usize)>> {
        let u = self.units.len();
        if parts > u {
            return None;
        }
        // cost[i][j] = utilization of the partition keeping units i..j.
        let mut cost = vec![vec![0.0f64; u + 1]; u];
        #[allow(clippy::needless_range_loop)]
        for i in 0..u {
            for j in (i + 1)..=u {
                let keep: BTreeSet<usize> = (i..j).collect();
                let derived = self.derive(&keep, None);
                cost[i][j] = util_proxy(&elaborate(&derived, self.target).raw, self.target);
            }
        }
        // f[d][j] = best max-cost splitting units 0..j into d ranges.
        let inf = f64::INFINITY;
        let mut f = vec![vec![inf; u + 1]; parts + 1];
        let mut cut_at = vec![vec![0usize; u + 1]; parts + 1];
        f[0][0] = 0.0;
        for d in 1..=parts {
            for j in d..=u {
                for i in (d - 1)..j {
                    let c = f[d - 1][i].max(cost[i][j]);
                    if c < f[d][j] {
                        f[d][j] = c;
                        cut_at[d][j] = i;
                    }
                }
            }
        }
        if !f[parts][u].is_finite() {
            return None;
        }
        let mut bounds = Vec::with_capacity(parts);
        let mut j = u;
        for d in (1..=parts).rev() {
            let i = cut_at[d][j];
            bounds.push((i, j));
            j = i;
        }
        bounds.reverse();
        Some(bounds)
    }

    /// Build the full plan for a leaf-range split: partitions in range
    /// order (device = rank), channels wherever a memory's accessors
    /// span partitions.
    fn build_ranges(&self, k: u32, ranges: &[(usize, usize)]) -> Partitioning {
        let part_of = |unit: usize| -> u32 {
            ranges
                .iter()
                .position(|&(a, b)| unit >= a && unit < b)
                .expect("ranges cover all units") as u32
        };
        // Accessor partitions per memory, in unit order.
        let mut readers: BTreeMap<NodeId, BTreeSet<u32>> = BTreeMap::new();
        let mut writers: BTreeMap<NodeId, BTreeSet<u32>> = BTreeMap::new();
        let mut home: BTreeMap<NodeId, u32> = BTreeMap::new();
        for i in 0..self.units.len() {
            let p = part_of(i);
            for &m in &self.unit_writes[i] {
                writers.entry(m).or_default().insert(p);
                home.entry(m).or_insert(p);
            }
            for &m in &self.unit_reads[i] {
                readers.entry(m).or_default().insert(p);
            }
        }
        // Readers-only memories are homed at their first reader.
        for i in 0..self.units.len() {
            let p = part_of(i);
            for &m in &self.unit_reads[i] {
                home.entry(m).or_insert(p);
            }
        }
        let mut channels = Vec::new();
        let mut endpoint_bits: Vec<Vec<u32>> = vec![Vec::new(); ranges.len()];
        let mems: BTreeSet<NodeId> = readers.keys().chain(writers.keys()).copied().collect();
        for m in mems {
            let (words, word_bits) = self.mem_shape(m);
            if words == 0 {
                continue;
            }
            let (transfers, overlapped) = self.mem_timing(m);
            let h = home[&m];
            let empty = BTreeSet::new();
            let rs = readers.get(&m).unwrap_or(&empty);
            let ws = writers.get(&m).unwrap_or(&empty);
            let accessors: BTreeSet<u32> = rs.iter().chain(ws.iter()).copied().collect();
            for p in accessors {
                if p == h {
                    continue;
                }
                if rs.contains(&p) {
                    channels.push(Channel {
                        src: h,
                        dst: p,
                        mem: m,
                        words,
                        word_bits,
                        transfers,
                        overlapped,
                    });
                    endpoint_bits[h as usize].push(word_bits);
                    endpoint_bits[p as usize].push(word_bits);
                }
                if ws.contains(&p) {
                    channels.push(Channel {
                        src: p,
                        dst: h,
                        mem: m,
                        words,
                        word_bits,
                        transfers,
                        overlapped,
                    });
                    endpoint_bits[p as usize].push(word_bits);
                    endpoint_bits[h as usize].push(word_bits);
                }
            }
        }
        let partitions = ranges
            .iter()
            .enumerate()
            .map(|(d, &(a, b))| {
                let keep: BTreeSet<usize> = (a..b).collect();
                let (net, endpoints) = self.partition_net(&keep, None, &endpoint_bits[d]);
                Partition {
                    device: d as u32,
                    units: self.units[a..b].to_vec(),
                    net,
                    endpoints,
                }
            })
            .collect();
        Partitioning {
            num_devices: k,
            cut: CutKind::LeafRanges,
            partitions,
            channels,
        }
    }

    /// Build the full plan for a replica split of `ctrl` (par = `total`)
    /// over `devices` devices: device 0 keeps the whole design with its
    /// share; devices 1.. keep only the replica subtree. Memories read
    /// by the subtree but homed outside broadcast 0→i; memories written
    /// by the subtree gather each device's share i→0.
    fn build_replicas(&self, k: u32, ctrl: NodeId, total: u32, devices: u32) -> Partitioning {
        let (lo, hi) = self.subtree[&ctrl];
        let share = |i: u32| -> u32 { total / devices + u32::from(i < total % devices) };
        let mut sub_reads: BTreeSet<NodeId> = BTreeSet::new();
        let mut sub_writes: BTreeSet<NodeId> = BTreeSet::new();
        for i in lo..hi {
            sub_reads.extend(self.unit_reads[i].iter().copied());
            sub_writes.extend(self.unit_writes[i].iter().copied());
        }
        // Only memories declared *outside* the subtree cross the cut
        // (subtree-local memories are private to each replica share).
        let outside = |m: &NodeId| -> bool {
            match self.scope.get(m) {
                Some(&s) => !is_ancestor(&self.parents, ctrl, s),
                None => true,
            }
        };
        let mut channels = Vec::new();
        let mut endpoint_bits: Vec<Vec<u32>> = vec![Vec::new(); devices as usize];
        let crossing: BTreeSet<NodeId> = sub_reads
            .union(&sub_writes)
            .copied()
            .filter(outside)
            .collect();
        for m in crossing {
            let (words, word_bits) = self.mem_shape(m);
            if words == 0 {
                continue;
            }
            let (transfers, overlapped) = self.mem_timing(m);
            for d in 1..devices {
                if sub_reads.contains(&m) {
                    channels.push(Channel {
                        src: 0,
                        dst: d,
                        mem: m,
                        words,
                        word_bits,
                        transfers,
                        overlapped,
                    });
                    endpoint_bits[0].push(word_bits);
                    endpoint_bits[d as usize].push(word_bits);
                }
                if sub_writes.contains(&m) {
                    // Each device produces its replica share of the
                    // memory's elements.
                    let part_words = (words * u64::from(share(d))).div_ceil(u64::from(total));
                    channels.push(Channel {
                        src: d,
                        dst: 0,
                        mem: m,
                        words: part_words,
                        word_bits,
                        transfers,
                        overlapped,
                    });
                    endpoint_bits[d as usize].push(word_bits);
                    endpoint_bits[0].push(word_bits);
                }
            }
        }
        let partitions = (0..devices)
            .map(|d| {
                let keep: BTreeSet<usize> = if d == 0 {
                    (0..self.units.len()).collect()
                } else {
                    (lo..hi).collect()
                };
                let (net, endpoints) =
                    self.partition_net(&keep, Some((ctrl, share(d))), &endpoint_bits[d as usize]);
                Partition {
                    device: d,
                    units: if d == 0 {
                        self.units.clone()
                    } else {
                        self.units[lo..hi].to_vec()
                    },
                    net,
                    endpoints,
                }
            })
            .collect();
        Partitioning {
            num_devices: k,
            cut: CutKind::Replicas(ctrl),
            partitions,
            channels,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dhdl_core::{by, DType, DesignBuilder};

    fn link() -> BoardLink {
        BoardLink::maia_interlink()
    }

    /// A multi-stage streaming design whose tile buffers can be scaled
    /// past one device's BRAM capacity.
    fn staged(tile: u64, par: u32) -> Design {
        let n = 16 * tile;
        let mut b = DesignBuilder::new("staged");
        let x = b.off_chip("x", DType::F32, &[n]);
        let y = b.off_chip("y", DType::F32, &[n]);
        b.sequential(|b| {
            b.meta_pipe(&[by(n, tile)], 1, |b, iters| {
                let i = iters[0];
                let xt = b.bram("xT", DType::F32, &[tile]);
                let mt = b.bram("mT", DType::F32, &[tile]);
                let yt = b.bram("yT", DType::F32, &[tile]);
                b.tile_load(x, xt, &[i], &[tile], par);
                b.pipe(&[by(tile, 1)], par, |b, it| {
                    let v = b.load(xt, &[it[0]]);
                    let w = b.mul(v, v);
                    b.store(mt, &[it[0]], w);
                });
                b.pipe(&[by(tile, 1)], par, |b, it| {
                    let v = b.load(mt, &[it[0]]);
                    let w = b.add(v, v);
                    b.store(yt, &[it[0]], w);
                });
                b.tile_store(y, yt, &[i], &[tile], par);
            });
        });
        b.finish().unwrap()
    }

    #[test]
    fn k1_is_bit_identical_to_elaborate() {
        let t = FpgaTarget::stratix_v();
        for (tile, par) in [(64, 1), (4096, 8), (65_536, 4)] {
            let d = staged(tile, par);
            let p = partition(&d, &t, &link(), 1);
            assert!(p.is_single());
            assert_eq!(p.cut, CutKind::Single);
            assert!(p.channels.is_empty());
            assert_eq!(p.partitions[0].net, elaborate(&d, &t));
        }
    }

    #[test]
    fn fitting_design_stays_single_at_any_k() {
        let t = FpgaTarget::stratix_v();
        let d = staged(64, 1);
        for k in [2, 4, 8] {
            let p = partition(&d, &t, &link(), k);
            assert!(p.is_single(), "small design must not be cut at k={k}");
            assert_eq!(p.partitions[0].net, elaborate(&d, &t));
        }
    }

    #[test]
    fn oversized_design_splits_and_partitions_shrink() {
        let t = FpgaTarget::stratix_v();
        // 3 × 64K-word double-buffered F32 tiles: way past one device.
        let d = staged(262_144, 1);
        let whole = util_proxy(&elaborate(&d, &t).raw, &t);
        assert!(whole > 1.0, "test design must exceed one device: {whole}");
        let p = partition(&d, &t, &link(), 2);
        assert_eq!(p.devices_used(), 2);
        assert!(!p.channels.is_empty(), "a cut must produce channels");
        for part in &p.partitions {
            let u = util_proxy(&part.net.raw, &t);
            assert!(u < whole, "partition {u} must be smaller than {whole}");
        }
    }

    #[test]
    fn partitioning_is_deterministic() {
        let t = FpgaTarget::stratix_v();
        let d = staged(262_144, 2);
        let a = partition(&d, &t, &link(), 4);
        let b = partition(&d, &t, &link(), 4);
        assert_eq!(a, b);
    }

    #[test]
    fn channels_connect_placed_devices() {
        let t = FpgaTarget::stratix_v();
        let d = staged(262_144, 1);
        let p = partition(&d, &t, &link(), 4);
        let used = p.devices_used();
        for ch in &p.channels {
            assert!(ch.src < used && ch.dst < used);
            assert_ne!(ch.src, ch.dst);
            assert!(ch.words > 0 && ch.word_bits > 0 && ch.transfers > 0);
        }
        // Endpoint hardware is charged on partitions that own channels.
        if !p.channels.is_empty() {
            assert!(p.partitions.iter().any(|q| q.endpoints.brams > 0.0));
        }
    }

    #[test]
    fn link_cycles_scale_with_traffic() {
        let t = FpgaTarget::stratix_v();
        let d = staged(262_144, 1);
        let p = partition(&d, &t, &link(), 2);
        let l = link();
        let cycles = p.link_cycles(&l);
        assert!(cycles > 0.0);
        // A slower link exposes more cycles.
        let slow = BoardLink {
            words_per_cycle: l.words_per_cycle / 4.0,
            ..l.clone()
        };
        assert!(p.link_cycles(&slow) > cycles);
        // The single plan exposes none.
        assert_eq!(partition(&d, &t, &l, 1).link_cycles(&l), 0.0);
    }

    #[test]
    fn replica_cut_splits_outer_par() {
        let t = FpgaTarget::stratix_v();
        // Compute-dominated: one outer controller replicated 8×, each
        // replica multiplying a large F64 tile (DSP-heavy).
        let tile = 2048u64;
        let mut b = DesignBuilder::new("rep");
        let x = b.off_chip("x", DType::F64, &[tile]);
        let d = {
            b.sequential(|b| {
                let xt = b.bram("xT", DType::F64, &[tile]);
                let z = b.index_const(0);
                b.tile_load(x, xt, &[z], &[tile], 1);
                b.meta_pipe(&[by(1024, 1)], 16, |b, _| {
                    let yt = b.bram("yT", DType::F64, &[tile]);
                    b.pipe(&[by(tile, 1)], 32, |b, it| {
                        let v = b.load(xt, &[it[0]]);
                        let w = b.mul(v, v);
                        let u = b.mul(w, v);
                        b.store(yt, &[it[0]], u);
                    });
                });
            });
            b.finish().unwrap()
        };
        let whole = elaborate(&d, &t);
        assert!(
            util_proxy(&whole.raw, &t) > FIT_MARGIN,
            "replica test design must overflow one device"
        );
        let p = partition(&d, &t, &link(), 2);
        assert!(p.devices_used() >= 2);
        let peak = p
            .partitions
            .iter()
            .map(|q| util_proxy(&q.net.raw, &t))
            .fold(0.0, f64::max);
        assert!(peak < util_proxy(&whole.raw, &t));
    }
}
