//! Template characterization harness.
//!
//! The paper characterizes each template by synthesizing "about six"
//! instances per template across its parameter combinations and fitting
//! analytical models (§IV-B). Because the characterization in this
//! reproduction recovers the template tables exactly, this module serves
//! two roles: it *generates* the per-template sweep designs, and it
//! *verifies* that elaborating a single-template design matches the
//! analytical model plus known controller overhead — the consistency check
//! that makes sharing the tables between estimator and synthesis model
//! sound.

use dhdl_core::{by, DType, Design, DesignBuilder, PrimOp};
use dhdl_target::{FpgaTarget, Resources};

use crate::chardata::{access_cost, controller_cost, counter_cost, prim_cost, ControllerKind};
use crate::elaborate::elaborate;

/// A single-primitive microbenchmark design: one `Pipe` applying `op` at
/// the given vector width over a small BRAM.
pub fn primitive_sweep_design(op: PrimOp, ty: DType, width: u32) -> Design {
    let mut b = DesignBuilder::new(format!("char_{op}_{ty}_{width}"));
    b.sequential(|b| {
        let m = b.bram("m", ty, &[64]);
        b.pipe(&[by(64, 1)], width, |b, it| {
            let x = b.load(m, &[it[0]]);
            let y = if op.arity() == 1 {
                b.prim(op, &[x])
            } else {
                b.prim(op, &[x, x])
            };
            b.store(m, &[it[0]], y);
        });
    });
    b.finish().expect("characterization design is legal")
}

/// Measured-minus-modeled residual for one primitive characterization run.
///
/// Elaborates the microbenchmark and subtracts all non-`op` resources
/// (controller, counter, memory, load/store); what remains should equal
/// `width` lanes of the op's table cost.
pub fn primitive_residual(op: PrimOp, ty: DType, width: u32, target: &FpgaTarget) -> Resources {
    let design = primitive_sweep_design(op, ty, width);
    let net = elaborate(&design, target);
    let w = f64::from(width);
    // Known overheads of the harness design.
    let mut overhead = Resources::zero();
    overhead += controller_cost(ControllerKind::Sequential, 1);
    overhead += controller_cost(ControllerKind::Pipe, 0);
    overhead += counter_cost();
    overhead += crate::chardata::bram_cost(target, 64, ty.bits(), width.max(1), false);
    overhead += access_cost(ty, width).res.times(2.0 * w); // load + store
    let modeled = prim_cost(op, ty).res.times(w);
    // Residual = elaborated - overhead - modeled; includes delay-balancing
    // registers, which are part of the design, not the op.
    let mut r = net.raw;
    for part in [overhead, modeled] {
        r = Resources {
            lut_packable: r.lut_packable - part.lut_packable,
            lut_unpackable: r.lut_unpackable - part.lut_unpackable,
            regs: r.regs - part.regs,
            dsps: r.dsps - part.dsps,
            brams: r.brams - part.brams,
        };
    }
    r
}

/// Run the standard six-point sweep (widths 1..=6) for an op and return the
/// worst absolute DSP/LUT residual, as a fraction of the modeled cost.
pub fn sweep_max_residual(op: PrimOp, ty: DType, target: &FpgaTarget) -> f64 {
    let mut worst: f64 = 0.0;
    for width in 1..=6u32 {
        let r = primitive_residual(op, ty, width, target);
        let modeled = prim_cost(op, ty).res.times(f64::from(width));
        let denom = modeled.luts().max(1.0);
        // Delay-balancing registers are legitimate residuals; LUT and DSP
        // residuals must be ~zero.
        worst = worst.max(r.luts().abs() / denom);
        worst = worst.max(r.dsps.abs());
    }
    worst
}

/// A BRAM microbenchmark: one buffer of `words` words at the given
/// banking, loaded from off-chip and read back.
pub fn bram_sweep_design(words: u64, banks: u32, double: bool) -> Design {
    let mut b = DesignBuilder::new(format!("char_bram_{words}_{banks}_{double}"));
    let x = b.off_chip("x", DType::F32, &[words]);
    b.sequential(|b| {
        let t = b.bram("m", DType::F32, &[words]);
        let z = b.index_const(0);
        b.tile_load(x, t, &[z], &[words], banks);
        b.pipe(&[by(words, 1)], banks, |b, it| {
            let v = b.load(t, &[it[0]]);
            let w = b.prim(PrimOp::Add, &[v, v]);
            b.store(t, &[it[0]], w);
        });
    });
    b.finish().expect("characterization design is legal")
}

/// Verify that BRAM counts in elaborated sweep designs scale with
/// capacity and banking exactly as the table model predicts.
pub fn bram_sweep_residual(target: &FpgaTarget) -> f64 {
    let mut worst = 0.0f64;
    for &(words, banks) in &[
        (256u64, 1u32),
        (512, 1),
        (2048, 1),
        (512, 4),
        (2048, 8),
        (4096, 2),
    ] {
        let design = bram_sweep_design(words, banks, false);
        let net = elaborate(&design, target);
        let modeled = crate::chardata::bram_cost(target, words, 32, banks, false).brams;
        // The tile unit contributes its own FIFOs; subtract them.
        let fifo = crate::chardata::tile_unit_cost(target, 32, 1, banks).brams;
        worst = worst.max((net.raw.brams - fifo - modeled).abs());
    }
    worst
}

/// Controller-overhead sweep: Sequential vs MetaPipe control cost must
/// grow linearly with stage count at the characterized slopes.
pub fn controller_sweep_matches(target: &FpgaTarget) -> bool {
    use crate::chardata::{controller_cost, ControllerKind};
    let _ = target;
    for n in 1..=6usize {
        let meta = controller_cost(ControllerKind::MetaPipe, n);
        let seq = controller_cost(ControllerKind::Sequential, n);
        if meta.luts() <= seq.luts() {
            return false; // handshaking must cost more than sequencing
        }
        let meta_next = controller_cost(ControllerKind::MetaPipe, n + 1);
        let delta = meta_next.luts() - meta.luts();
        if (delta - 30.0).abs() > 1e-9 {
            return false; // 24 packable + 6 unpackable per stage
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn characterization_recovers_table_costs() {
        let t = FpgaTarget::stratix_v();
        for op in [PrimOp::Add, PrimOp::Mul, PrimOp::Sqrt, PrimOp::Lt] {
            let worst = sweep_max_residual(op, DType::F32, &t);
            assert!(worst < 1e-6, "{op}: residual {worst}");
        }
    }

    #[test]
    fn fixed_point_characterization() {
        let t = FpgaTarget::stratix_v();
        let worst = sweep_max_residual(PrimOp::Add, DType::i32(), &t);
        assert!(worst < 1e-6, "residual {worst}");
    }

    #[test]
    fn bram_characterization_is_exact() {
        let t = FpgaTarget::stratix_v();
        assert!(bram_sweep_residual(&t) < 1e-9);
    }

    #[test]
    fn controller_characterization_is_consistent() {
        assert!(controller_sweep_matches(&FpgaTarget::stratix_v()));
    }

    #[test]
    fn sweep_designs_are_buildable_for_all_ops() {
        for &op in PrimOp::all() {
            let d = primitive_sweep_design(op, DType::F32, 2);
            assert!(!d.is_empty());
        }
    }
}
