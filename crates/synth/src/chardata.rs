//! Template characterization data.
//!
//! Per-template area and latency models as a function of template
//! parameters, playing the role of the paper's characterization database:
//! "We obtain characterization data by synthesizing multiple instances of
//! each template instantiated for combinations of its parameters ... Since
//! template models are application-independent, each needs only be
//! characterized once for a given target device and logic synthesis
//! toolchain" (§IV-B).
//!
//! The numbers below model a Stratix-V-class fabric at a 150 MHz clock:
//! single-precision floating point is built from ALMs (no hard FP), 27×27
//! multipliers map to DSP blocks, and wide fixed-point adders ride carry
//! chains (which cannot share ALMs, hence "unpackable").

use dhdl_core::{DType, PrimOp};
use dhdl_target::{FpgaTarget, Resources};

/// Characterized cost of one template instance: resources and pipeline
/// latency in fabric cycles.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct OpCost {
    /// FPGA resources of one lane.
    pub res: Resources,
    /// Pipeline latency in cycles at the characterized fabric clock.
    pub latency: u64,
}

fn cost(lut_p: f64, lut_u: f64, regs: f64, dsps: f64, latency: u64) -> OpCost {
    OpCost {
        res: Resources {
            lut_packable: lut_p,
            lut_unpackable: lut_u,
            regs,
            dsps,
            brams: 0.0,
        },
        latency,
    }
}

/// Characterized cost of one lane of a primitive operation on element type
/// `ty` (§III-B1: every primitive is a vector op; multiply by the vector
/// width for the full cost).
pub fn prim_cost(op: PrimOp, ty: DType) -> OpCost {
    let w = f64::from(ty.bits());
    if ty.is_float() {
        // Single-precision models; f64 scales by width ratio.
        let s = w / 32.0;
        let c = match op {
            PrimOp::Add | PrimOp::Sub => cost(390.0, 160.0, 510.0, 0.0, 3),
            PrimOp::Mul => cost(110.0, 40.0, 165.0, 1.0, 4),
            PrimOp::Div => cost(620.0, 280.0, 1350.0, 0.0, 14),
            PrimOp::Rem => cost(700.0, 320.0, 1500.0, 0.0, 16),
            PrimOp::Sqrt => cost(310.0, 140.0, 700.0, 0.0, 14),
            PrimOp::Exp => cost(480.0, 210.0, 820.0, 4.0, 17),
            PrimOp::Ln => cost(540.0, 230.0, 900.0, 4.0, 19),
            PrimOp::Lt | PrimOp::Le | PrimOp::Gt | PrimOp::Ge | PrimOp::Eq | PrimOp::Ne => {
                cost(62.0, 12.0, 40.0, 0.0, 1)
            }
            PrimOp::Min | PrimOp::Max => cost(95.0, 25.0, 72.0, 0.0, 2),
            PrimOp::Abs | PrimOp::Neg => cost(2.0, 0.0, 2.0, 0.0, 1),
            PrimOp::And | PrimOp::Or | PrimOp::Not => cost(1.0, 0.0, 1.0, 0.0, 1),
        };
        OpCost {
            res: c.res.times(s),
            latency: c.latency,
        }
    } else {
        // Fixed-point / boolean.
        match op {
            PrimOp::Add | PrimOp::Sub => cost(0.0, w / 2.0, w, 0.0, 1),
            PrimOp::Mul => {
                let dsps = (ty.bits().div_ceil(27) as f64).powi(2);
                cost(w / 4.0, 0.0, w, dsps, 3)
            }
            PrimOp::Div | PrimOp::Rem => cost(w * 4.0, w * 2.0, w * 8.0, 0.0, ty.bits() as u64 / 2),
            PrimOp::Sqrt => cost(w * 2.0, w, w * 4.0, 0.0, ty.bits() as u64 / 2),
            PrimOp::Exp | PrimOp::Ln => cost(w * 6.0, w * 2.0, w * 8.0, 2.0, 12),
            PrimOp::Lt | PrimOp::Le | PrimOp::Gt | PrimOp::Ge | PrimOp::Eq | PrimOp::Ne => {
                cost(w / 2.0, 2.0, 4.0, 0.0, 1)
            }
            PrimOp::Min | PrimOp::Max => cost(w, 2.0, w, 0.0, 1),
            PrimOp::Abs | PrimOp::Neg => cost(w / 2.0, 0.0, w / 2.0, 0.0, 1),
            PrimOp::And | PrimOp::Or | PrimOp::Not => cost(w.max(1.0) / 2.0, 0.0, 1.0, 0.0, 1),
        }
    }
}

/// Cost of one lane of a 2:1 multiplexer on `ty`.
pub fn mux_cost(ty: DType) -> OpCost {
    cost(
        f64::from(ty.bits()) / 2.0,
        0.0,
        f64::from(ty.bits()) / 4.0,
        0.0,
        1,
    )
}

/// Cost of one lane of an on-chip load/store port: address decode plus the
/// bank crossbar share for a memory with `banks` banks.
pub fn access_cost(ty: DType, banks: u32) -> OpCost {
    let w = f64::from(ty.bits());
    let xbar = (f64::from(banks).log2().max(0.0) + 1.0) * w / 4.0;
    cost(14.0 + xbar, 4.0, 18.0 + w / 2.0, 0.0, 1)
}

/// Resources of a BRAM template instance: `banks` physical banks each
/// holding `elements / banks` words of `word_bits`, doubled when
/// double-buffered, plus per-bank control.
pub fn bram_cost(
    target: &FpgaTarget,
    elements: u64,
    word_bits: u32,
    banks: u32,
    double_buf: bool,
) -> Resources {
    let banks = banks.max(1);
    let words_per_bank = elements.div_ceil(u64::from(banks));
    let copies = if double_buf { 2 } else { 1 };
    let phys = target.brams_for(words_per_bank, word_bits) * u64::from(banks) * copies;
    Resources {
        lut_packable: 11.0 * f64::from(banks),
        lut_unpackable: 3.0 * f64::from(banks),
        regs: 24.0 * f64::from(banks) + if double_buf { 18.0 } else { 0.0 },
        dsps: 0.0,
        brams: phys as f64,
    }
}

/// Resources of a `Reg` template instance.
pub fn reg_cost(ty: DType, double_buf: bool) -> Resources {
    let w = f64::from(ty.bits());
    Resources {
        lut_packable: 2.0,
        lut_unpackable: 0.0,
        regs: w * if double_buf { 2.0 } else { 1.0 } + 4.0,
        dsps: 0.0,
        brams: 0.0,
    }
}

/// Resources of a priority-queue template of the given depth.
pub fn pqueue_cost(target: &FpgaTarget, ty: DType, depth: u64, double_buf: bool) -> Resources {
    let w = f64::from(ty.bits());
    let stages = (depth as f64).log2().ceil().max(1.0);
    let copies = if double_buf { 2.0 } else { 1.0 };
    Resources {
        lut_packable: stages * w * 1.5,
        lut_unpackable: stages * w * 0.5,
        regs: stages * w * 2.0,
        dsps: 0.0,
        brams: target.brams_for(depth, ty.bits()) as f64 * copies,
    }
}

/// Resources of one counter-chain dimension.
pub fn counter_cost() -> Resources {
    Resources {
        lut_packable: 16.0,
        lut_unpackable: 8.0,
        regs: 34.0,
        dsps: 0.0,
        brams: 0.0,
    }
}

/// Control-logic resources of a controller template with `n_stages`
/// children (valid/done handshaking, stage enables).
pub fn controller_cost(kind: ControllerKind, n_stages: usize) -> Resources {
    let n = n_stages as f64;
    match kind {
        ControllerKind::Pipe => Resources {
            lut_packable: 28.0,
            lut_unpackable: 10.0,
            regs: 30.0,
            dsps: 0.0,
            brams: 0.0,
        },
        ControllerKind::MetaPipe => Resources {
            lut_packable: 52.0 + 24.0 * n,
            lut_unpackable: 22.0 + 6.0 * n,
            regs: 58.0 + 30.0 * n,
            dsps: 0.0,
            brams: 0.0,
        },
        ControllerKind::Sequential => Resources {
            lut_packable: 34.0 + 10.0 * n,
            lut_unpackable: 14.0 + 3.0 * n,
            regs: 40.0 + 12.0 * n,
            dsps: 0.0,
            brams: 0.0,
        },
        ControllerKind::Parallel => Resources {
            lut_packable: 20.0 + 7.0 * n,
            lut_unpackable: 8.0 + 2.0 * n,
            regs: 24.0 + 8.0 * n,
            dsps: 0.0,
            brams: 0.0,
        },
    }
}

/// Controller classes with distinct control costs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ControllerKind {
    /// Innermost pipeline control.
    Pipe,
    /// Coarse-grained pipeline with asynchronous handshaking.
    MetaPipe,
    /// Unpipelined stage sequencer.
    Sequential,
    /// Fork-join container.
    Parallel,
}

/// Resources of a tile load/store command generator: command and data
/// queues plus address generation, with `par` on-chip port lanes moving
/// elements of `word_bits` bits over `ndims` address dimensions.
pub fn tile_unit_cost(target: &FpgaTarget, word_bits: u32, ndims: usize, par: u32) -> Resources {
    let data_fifo = target.brams_for(512, 32.max(word_bits)) as f64;
    let cmd_fifo = 1.0;
    Resources {
        lut_packable: 190.0 + 62.0 * ndims as f64 + 24.0 * f64::from(par),
        lut_unpackable: 85.0 + 20.0 * ndims as f64,
        regs: 260.0 + 70.0 * ndims as f64 + 30.0 * f64::from(par),
        dsps: 0.0,
        brams: data_fifo + cmd_fifo,
    }
}

/// Reduction-tree cost for combining `par` lanes of type `ty` with one
/// combiner `op` per tree node (`par - 1` nodes in a balanced tree).
pub fn reduce_tree_cost(op: PrimOp, ty: DType, par: u32) -> Resources {
    if par <= 1 {
        return Resources::zero();
    }
    prim_cost(op, ty).res.times(f64::from(par - 1))
}

/// Latency in cycles of a balanced reduction tree over `par` lanes.
pub fn reduce_tree_latency(op: PrimOp, ty: DType, par: u32) -> u64 {
    if par <= 1 {
        return 0;
    }
    let depth = (f64::from(par)).log2().ceil() as u64;
    depth * prim_cost(op, ty).latency
}

/// Delay lines longer than this many cycles are implemented in block RAM
/// rather than register chains (§IV-B2: "Delays over a synthesis
/// tool-specific threshold are modeled as block RAMs").
pub const DELAY_BRAM_THRESHOLD: u64 = 32;

/// Resources of a delay line of `cycles` cycles and `bits` width.
pub fn delay_cost(target: &FpgaTarget, cycles: u64, bits: u32) -> Resources {
    if cycles == 0 || bits == 0 {
        return Resources::zero();
    }
    if cycles > DELAY_BRAM_THRESHOLD {
        Resources {
            lut_packable: 8.0,
            lut_unpackable: 2.0,
            regs: 12.0,
            dsps: 0.0,
            brams: target.brams_for(cycles, bits) as f64,
        }
    } else {
        Resources {
            lut_packable: 0.0,
            lut_unpackable: 0.0,
            regs: (cycles * u64::from(bits)) as f64,
            dsps: 0.0,
            brams: 0.0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn float_add_uses_no_dsp_float_mul_uses_one() {
        let add = prim_cost(PrimOp::Add, DType::F32);
        assert_eq!(add.res.dsps, 0.0);
        assert!(add.res.luts() > 100.0);
        let mul = prim_cost(PrimOp::Mul, DType::F32);
        assert_eq!(mul.res.dsps, 1.0);
        assert!(mul.latency >= add.latency);
    }

    #[test]
    fn f64_scales_up_from_f32() {
        let a32 = prim_cost(PrimOp::Add, DType::F32);
        let a64 = prim_cost(PrimOp::Add, DType::F64);
        assert!(a64.res.luts() > a32.res.luts());
    }

    #[test]
    fn fixed_mul_dsp_count_by_width() {
        let m32 = prim_cost(PrimOp::Mul, DType::i32());
        assert_eq!(m32.res.dsps, 4.0); // ceil(32/27)^2
        let m16 = prim_cost(PrimOp::Mul, DType::fixed(true, 7, 8));
        assert_eq!(m16.res.dsps, 1.0);
    }

    #[test]
    fn complex_ops_are_multicycle() {
        for op in [PrimOp::Div, PrimOp::Sqrt, PrimOp::Exp, PrimOp::Ln] {
            assert!(prim_cost(op, DType::F32).latency > 4, "{op}");
        }
    }

    #[test]
    fn bram_cost_doubles_when_double_buffered() {
        let t = FpgaTarget::stratix_v();
        let single = bram_cost(&t, 512, 32, 1, false);
        let double = bram_cost(&t, 512, 32, 1, true);
        assert_eq!(double.brams, single.brams * 2.0);
    }

    #[test]
    fn banking_splits_into_physical_brams() {
        let t = FpgaTarget::stratix_v();
        // 512 words in 4 banks of 128: each bank still needs one M20K.
        let banked = bram_cost(&t, 512, 32, 4, false);
        assert_eq!(banked.brams, 4.0);
        // Under-utilization of BRAM capacity with increased banking (§V-C1).
        let flat = bram_cost(&t, 512, 32, 1, false);
        assert!(banked.brams > flat.brams);
    }

    #[test]
    fn reduce_tree_scales() {
        assert_eq!(reduce_tree_cost(PrimOp::Add, DType::F32, 1).luts(), 0.0);
        let t4 = reduce_tree_cost(PrimOp::Add, DType::F32, 4);
        let t8 = reduce_tree_cost(PrimOp::Add, DType::F32, 8);
        assert!(t8.luts() > t4.luts());
        assert_eq!(reduce_tree_latency(PrimOp::Add, DType::F32, 8), 9); // 3 levels * 3 cycles
        assert_eq!(reduce_tree_latency(PrimOp::Add, DType::F32, 1), 0);
    }

    #[test]
    fn long_delays_become_brams() {
        let t = FpgaTarget::stratix_v();
        let short = delay_cost(&t, 8, 32);
        assert_eq!(short.brams, 0.0);
        assert_eq!(short.regs, 256.0);
        let long = delay_cost(&t, 64, 32);
        assert!(long.brams >= 1.0);
        assert_eq!(delay_cost(&t, 0, 32).regs, 0.0);
    }

    #[test]
    fn controller_costs_grow_with_stages() {
        let a = controller_cost(ControllerKind::MetaPipe, 2);
        let b = controller_cost(ControllerKind::MetaPipe, 5);
        assert!(b.luts() > a.luts());
        // MetaPipe handshaking costs more than Sequential sequencing.
        let s = controller_cost(ControllerKind::Sequential, 5);
        assert!(b.luts() > s.luts());
    }

    #[test]
    fn access_cost_grows_with_banks() {
        let one = access_cost(DType::F32, 1);
        let eight = access_cost(DType::F32, 8);
        assert!(eight.res.luts() > one.res.luts());
    }
}
