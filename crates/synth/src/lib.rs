//! # dhdl-synth — synthesis model and hardware generation
//!
//! The ground-truth substrate replacing the vendor toolchain of the paper
//! (Altera Quartus behind Maxeler's MaxCompiler):
//!
//! * [`elaborate()`] flattens a design instance into raw resource counts
//!   using the characterized template models of [`chardata`] (§IV-B);
//! * [`synthesize`] applies the place-and-route effects of §IV-A — LUT
//!   packing, route-through LUTs, register/BRAM duplication, LAB-mapping
//!   waste — producing the "post place-and-route report" ([`SynthReport`])
//!   that the estimator is validated against in Table III;
//! * [`maxj::generate`] emits MaxJ-style kernel code (§V-A), covering the
//!   Generation requirement of §II;
//! * [`characterize`] provides the per-template sweep harness of §IV-B.
//!
//! ```
//! use dhdl_core::{by, DType, DesignBuilder};
//! use dhdl_target::FpgaTarget;
//!
//! # fn main() -> dhdl_core::Result<()> {
//! let mut b = DesignBuilder::new("square");
//! let x = b.off_chip("x", DType::F32, &[256]);
//! b.sequential(|b| {
//!     let t = b.bram("t", DType::F32, &[256]);
//!     let zero = b.index_const(0);
//!     b.tile_load(x, t, &[zero], &[256], 1);
//!     b.pipe(&[by(256, 1)], 2, |b, it| {
//!         let v = b.load(t, &[it[0]]);
//!         let w = b.mul(v, v);
//!         b.store(t, &[it[0]], w);
//!     });
//! });
//! let design = b.finish()?;
//! let report = dhdl_synth::synthesize(&design, &FpgaTarget::stratix_v());
//! assert!(report.alms > 0.0);
//! let code = dhdl_synth::maxj::generate(&design);
//! assert!(code.contains("extends Kernel"));
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]

pub mod characterize;
pub mod chardata;
pub mod elaborate;
pub mod lowlevel;
pub mod maxj;
pub mod partition;

pub use elaborate::{
    elaborate, elaborate_with, pipe_depth, shape_hash, AreaBreakdown, NetFeatures, Netlist,
    Skeleton,
};
pub use lowlevel::{design_hash, place_and_route, synthesize, SynthReport};
pub use partition::{partition, Channel, CutKind, Partition, Partitioning};
