//! The place-and-route model: applies the low-level logic-synthesis effects
//! of §IV-A to an elaborated netlist and produces the "post place-and-route
//! report" the estimator is validated against.
//!
//! Modeled effects, with the magnitudes the paper reports:
//! * **LUT packing** — ~80% of functions pack in pairs, decreasing used
//!   LUTs by ~40%;
//! * **routing resources** — "route-through" LUTs, typically ~10% of LUTs;
//! * **logic duplication** — duplicated registers ~5%; duplicated block
//!   RAMs 10–100% depending on design complexity;
//! * **unavailable resources** — LAB mapping constraints waste ~4% of LUTs.
//!
//! The exact coefficients are *design-dependent and noisy*, exactly like a
//! real vendor tool: they vary nonlinearly with utilization, fanout and
//! memory density, plus a deterministic per-design perturbation keyed by a
//! hash of the design. The estimator never reads these formulas — it learns
//! them from sampled synthesis runs (paper §IV-B2), which is what makes the
//! reproduced Table III estimation errors meaningful.

use dhdl_core::Design;
use dhdl_target::{AreaReport, FpgaTarget};

use crate::elaborate::Netlist;

/// A post-place-and-route synthesis report.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct SynthReport {
    /// ALMs used, after packing, routing and LAB-granularity waste.
    pub alms: f64,
    /// Registers used, including duplicates.
    pub regs: f64,
    /// DSP blocks used.
    pub dsps: f64,
    /// Block RAMs used, including duplicates.
    pub brams: f64,
    /// LUTs used for logic (before packing into ALMs).
    pub luts_logic: f64,
    /// LUTs used as route-throughs.
    pub luts_route: f64,
    /// Registers added by fanout duplication.
    pub regs_dup: f64,
    /// Block RAMs added by duplication.
    pub brams_dup: f64,
    /// LUTs lost to LAB mapping constraints.
    pub luts_unavail: f64,
}

impl SynthReport {
    /// Collapse to the quantities Table III compares.
    pub fn area_report(&self) -> AreaReport {
        AreaReport {
            alms: self.alms,
            regs: self.regs,
            dsps: self.dsps,
            brams: self.brams,
        }
    }
}

/// A deterministic 64-bit hash of a design, used to key the per-design
/// perturbations of the place-and-route model (two different designs get
/// different "tool noise"; re-synthesizing the same design is
/// reproducible).
///
/// This hash is *deliberately coarse*: it keys tool noise, not design
/// identity, and collapses many distinct design points onto one value.
/// For a canonical full-structure hash (estimate caching, fault
/// schedules) use [`dhdl_core::structural_hash`] instead. The word
/// stream mixed here is pinned by cached calibration artifacts under
/// `results/` — it must never change.
pub fn design_hash(design: &Design) -> u64 {
    let mut h = dhdl_core::Fnv64::new();
    for b in design.name().bytes() {
        h.write_u64(u64::from(b));
    }
    h.write_u64(design.len() as u64);
    for (id, node) in design.iter() {
        h.write_u64(id.index() as u64);
        h.write_u64(u64::from(node.width));
        h.write_u64(u64::from(node.ty.bits()));
        // Template kind discriminant via its name.
        for b in node.kind.template_name().bytes() {
            h.write_u64(u64::from(b));
        }
    }
    h.finish()
}

/// A deterministic pseudo-random value in `[-1, 1]` derived from `hash`
/// and a stream index.
fn centered(hash: u64, stream: u64) -> f64 {
    let mut x = hash ^ stream.wrapping_mul(0x9e37_79b9_7f4a_7c15);
    // SplitMix64 finalizer.
    x ^= x >> 30;
    x = x.wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x ^= x >> 27;
    x = x.wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^= x >> 31;
    (x as f64 / u64::MAX as f64) * 2.0 - 1.0
}

fn noise(hash: u64, stream: u64, amplitude: f64) -> f64 {
    1.0 + amplitude * centered(hash, stream)
}

/// Run the place-and-route model on an elaborated netlist.
///
/// `hash` keys the deterministic per-design perturbations; obtain it with
/// [`design_hash`].
pub fn place_and_route(hash: u64, net: &Netlist, target: &FpgaTarget) -> SynthReport {
    let raw = &net.raw;
    let f = &net.features;
    let luts_raw = raw.luts().max(1.0);
    let util = luts_raw / target.alms as f64;
    let bram_density = raw.brams / (raw.brams + 60.0);
    // Average fanout per physical primitive lane (both edges and prims
    // are counted after replication).
    let fanout = if f.prims > 0.0 {
        f.edges / f.prims
    } else {
        1.0
    };

    // Route-through LUTs: grow with utilization, connectivity and memory
    // density (memories are fixed-position blocks that force long routes).
    let route_frac =
        (0.050 + 0.060 * util + 0.010 * (1.0 + f.edges).ln() / 10.0 + 0.055 * bram_density)
            * noise(hash, 1, 0.12);
    let luts_route = luts_raw * route_frac.max(0.0);

    // Register duplication for fanout reduction (~5%).
    let dup_frac = (0.030 + 0.012 * (fanout - 1.0).max(0.0) + 0.020 * util) * noise(hash, 2, 0.18);
    let regs_dup = raw.regs * dup_frac.max(0.0);

    // BRAM duplication: a nonlinear function of routing complexity
    // (10-100% of the raw count, §IV-A).
    let complexity = route_frac / 0.10;
    let bram_dup_frac =
        (0.05 + 0.35 * (complexity - 0.6).max(0.0)).clamp(0.03, 1.0) * noise(hash, 3, 0.28);
    let brams_dup = (raw.brams * bram_dup_frac.max(0.0)).round();

    // DSP implementation: for designs using few DSPs, the tool sometimes
    // implements multipliers in soft logic instead, producing the high
    // relative DSP errors at low utilization the paper observes (§V-B).
    let dsp_soft_frac = (0.22 * (-raw.dsps / 30.0).exp() * centered(hash, 4).abs()).min(0.9);
    let dsps = (raw.dsps * (1.0 - dsp_soft_frac))
        .round()
        .max(if raw.dsps > 0.0 { 1.0 } else { 0.0 });
    let soft_mult_luts = raw.dsps * dsp_soft_frac * 180.0;

    // LUT packing: route-throughs are always packable. The placer packs
    // nearly all *packable* functions in pairs (the "80% of functions"
    // of §IV-A counts packable functions out of all functions; carry
    // chains and wide functions are the unpackable remainder).
    let packable = raw.lut_packable + luts_route + soft_mult_luts * 0.6;
    let unpackable = raw.lut_unpackable + soft_mult_luts * 0.4;
    let pack_rate = (0.96 * noise(hash, 5, 0.030)).clamp(0.0, 1.0);
    let packed_pairs = packable * pack_rate / 2.0;
    let alms_logic = unpackable + packable * (1.0 - pack_rate) + packed_pairs;

    // Registers beyond what logic ALMs provide occupy their own ALMs.
    let regs_total = raw.regs + regs_dup;
    let regs_capacity = alms_logic * f64::from(target.regs_per_alm);
    let alms_regs = (regs_total - regs_capacity).max(0.0) / f64::from(target.regs_per_alm);

    // LAB-granularity waste (~4%).
    let unavail_frac = (0.035 + 0.015 * util) * noise(hash, 6, 0.22);
    let alms_used = alms_logic + alms_regs;
    let luts_unavail = alms_used * unavail_frac.max(0.0);

    SynthReport {
        alms: (alms_used + luts_unavail).round(),
        regs: regs_total.round(),
        dsps,
        brams: (raw.brams + brams_dup).round(),
        luts_logic: luts_raw + soft_mult_luts,
        luts_route,
        regs_dup,
        brams_dup,
        luts_unavail,
    }
}

/// Convenience wrapper: elaborate and place-and-route a design.
pub fn synthesize(design: &Design, target: &FpgaTarget) -> SynthReport {
    let net = crate::elaborate::elaborate(design, target);
    place_and_route(design_hash(design), &net, target)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::elaborate::{elaborate, NetFeatures, Netlist};
    use dhdl_core::{by, DType, DesignBuilder, ReduceOp};
    use dhdl_target::Resources;

    fn sample_design(par: u32) -> Design {
        let mut b = DesignBuilder::new("s");
        let x = b.off_chip("x", DType::F32, &[4096]);
        b.sequential(|b| {
            let acc = b.reg("acc", DType::F32, 0.0);
            b.meta_pipe(&[by(4096, 256)], 1, |b, iters| {
                let i = iters[0];
                let t = b.bram("t", DType::F32, &[256]);
                b.tile_load(x, t, &[i], &[256], par);
                b.pipe_reduce(&[by(256, 1)], par, acc, ReduceOp::Add, |b, it| {
                    let v = b.load(t, &[it[0]]);
                    b.mul(v, v)
                });
            });
        });
        b.finish().unwrap()
    }

    #[test]
    fn deterministic_per_design() {
        let t = FpgaTarget::stratix_v();
        let d = sample_design(4);
        let a = synthesize(&d, &t);
        let b = synthesize(&d, &t);
        assert_eq!(a, b);
    }

    #[test]
    fn different_designs_get_different_noise() {
        let a = design_hash(&sample_design(2));
        let b = design_hash(&sample_design(4));
        assert_ne!(a, b);
    }

    #[test]
    fn effects_have_paper_magnitudes() {
        let t = FpgaTarget::stratix_v();
        let d = sample_design(8);
        let net = elaborate(&d, &t);
        let rep = place_and_route(design_hash(&d), &net, &t);
        // Routing LUTs ~10% of logic LUTs (§IV-A says "about 10%").
        let route_share = rep.luts_route / net.raw.luts();
        assert!(
            (0.02..=0.25).contains(&route_share),
            "route share {route_share}"
        );
        // Duplicated registers around 5%.
        let dup_share = rep.regs_dup / net.raw.regs;
        assert!((0.005..=0.15).contains(&dup_share), "dup share {dup_share}");
        // BRAM duplication within 0-100%.
        assert!(rep.brams >= net.raw.brams);
        assert!(rep.brams <= net.raw.brams * 2.0 + 1.0);
        // Packing shrinks ALMs below raw LUT count.
        assert!(rep.alms < net.raw.luts() * 1.1);
    }

    #[test]
    fn alms_scale_with_parallelism() {
        let t = FpgaTarget::stratix_v();
        let a = synthesize(&sample_design(1), &t);
        let b = synthesize(&sample_design(16), &t);
        assert!(b.alms > a.alms);
        assert!(b.dsps > a.dsps);
    }

    #[test]
    fn zero_netlist_is_finite() {
        let t = FpgaTarget::stratix_v();
        let net = Netlist {
            raw: Resources::zero(),
            breakdown: Default::default(),
            features: NetFeatures::default(),
            pipe_depths: Vec::new(),
        };
        let rep = place_and_route(12345, &net, &t);
        assert!(rep.alms.is_finite());
        assert!(rep.alms >= 0.0);
        assert_eq!(rep.dsps, 0.0);
    }

    #[test]
    fn centered_is_bounded() {
        for s in 0..200 {
            let v = centered(0xdead_beef, s);
            assert!((-1.0..=1.0).contains(&v));
        }
    }
}
