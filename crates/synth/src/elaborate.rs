//! Design elaboration: flattening a DHDL design instance into raw resource
//! counts using the characterized template models.
//!
//! This is the "counting the resource requirements of each node using their
//! pre-characterized area models" step of §IV-B2, shared by the estimator
//! (as its raw area pass) and by the synthesis model (as the input to
//! place-and-route). Replication from parallelization factors, reduction
//! trees, and delay-balancing registers (ASAP schedule) are all applied
//! here.

use std::collections::BTreeMap;

use dhdl_core::{Design, DesignStats, NodeId, NodeKind, Pattern, PipeSpec};
use dhdl_target::{FpgaTarget, Resources};

use crate::chardata::{
    access_cost, bram_cost, controller_cost, counter_cost, delay_cost, mux_cost, pqueue_cost,
    prim_cost, reduce_tree_cost, reg_cost, tile_unit_cost, ControllerKind,
};

/// Structural features of an elaborated netlist, used by the
/// place-and-route model and (via calibration samples) by the estimator's
/// correction networks.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct NetFeatures {
    /// Primitive node instances after replication (physical lanes).
    pub prims: f64,
    /// On-chip memory instances.
    pub mems: f64,
    /// Controller instances.
    pub ctrls: f64,
    /// Maximum controller nesting depth.
    pub depth: f64,
    /// Dataflow edges after replication.
    pub edges: f64,
    /// Average vector width of primitives.
    pub avg_width: f64,
}

/// Raw resources attributed to template classes — the per-class area
/// breakdown used for reporting and bottleneck attribution.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct AreaBreakdown {
    /// Primitive datapath (arithmetic, muxes, loads/stores, reduce trees).
    pub primitives: Resources,
    /// On-chip memories (BRAMs, registers, queues).
    pub memories: Resources,
    /// Controller and counter logic.
    pub control: Resources,
    /// Off-chip tile transfer units (command generators, FIFOs).
    pub transfers: Resources,
    /// Delay-balancing registers/BRAMs from the ASAP schedule.
    pub delays: Resources,
}

impl AreaBreakdown {
    /// Sum of all classes (equals the netlist's raw resources).
    pub fn total(&self) -> Resources {
        self.primitives
            .plus(&self.memories)
            .plus(&self.control)
            .plus(&self.transfers)
            .plus(&self.delays)
    }
}

/// An elaborated design: raw resources plus netlist features.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Netlist {
    /// Raw resource requirements before any low-level tool effects.
    pub raw: Resources,
    /// Per-template-class attribution of `raw`.
    pub breakdown: AreaBreakdown,
    /// Netlist structure features.
    pub features: NetFeatures,
}

/// Elaborate a design into raw resource counts on `target`.
pub fn elaborate(design: &Design, target: &FpgaTarget) -> Netlist {
    let mut acc = Acc::default();
    visit(design, target, design.top(), 1.0, &mut acc);
    let stats = DesignStats::of(design);
    Netlist {
        raw: acc.breakdown.total(),
        breakdown: acc.breakdown,
        features: NetFeatures {
            prims: acc.phys_prims.max(1.0),
            mems: stats.memories as f64,
            ctrls: stats.controllers as f64,
            depth: stats.depth as f64,
            edges: acc.edges,
            avg_width: stats.avg_width(),
        },
    }
}

#[derive(Debug, Default)]
struct Acc {
    breakdown: AreaBreakdown,
    edges: f64,
    phys_prims: f64,
}

fn visit(design: &Design, target: &FpgaTarget, ctrl: NodeId, rep: f64, acc: &mut Acc) {
    match design.kind(ctrl) {
        NodeKind::Pipe(p) => {
            acc.breakdown.control += counter_cost().times(p.ctr.dims.len() as f64 * rep);
            acc.breakdown.control += controller_cost(ControllerKind::Pipe, 0).times(rep);
            let (datapath, delays) = pipe_body_resources(design, target, ctrl, p);
            acc.breakdown.primitives += datapath.times(rep);
            acc.breakdown.delays += delays.times(rep);
            acc.edges += body_edges(design, p) * rep * f64::from(p.par);
            acc.phys_prims += p.body.len() as f64 * rep * f64::from(p.par);
        }
        NodeKind::MetaPipe(s) | NodeKind::Sequential(s) => {
            let is_meta = matches!(design.kind(ctrl), NodeKind::MetaPipe(_));
            let kind = if is_meta {
                ControllerKind::MetaPipe
            } else {
                ControllerKind::Sequential
            };
            acc.breakdown.control += counter_cost().times(s.ctr.dims.len() as f64 * rep);
            acc.breakdown.control += controller_cost(kind, s.stages.len()).times(rep);
            let child_rep = rep * f64::from(s.par);
            for &m in &s.locals {
                acc.breakdown.memories += memory_resources(design, target, m).times(child_rep);
            }
            for &st in &s.stages {
                visit(design, target, st, child_rep, acc);
            }
            if let Some(f) = &s.fold {
                // The implicit fold stage: one combiner lane per port lane,
                // plus read/modify/write ports on the accumulator.
                let ty = design.ty(f.accum);
                let op = f.op.prim();
                acc.breakdown.primitives += prim_cost(op, ty).res.times(child_rep);
                acc.breakdown.primitives += access_cost(ty, 1).res.times(2.0 * child_rep);
            }
        }
        NodeKind::ParallelCtrl { stages, locals } => {
            acc.breakdown.control +=
                controller_cost(ControllerKind::Parallel, stages.len()).times(rep);
            for &m in locals {
                acc.breakdown.memories += memory_resources(design, target, m).times(rep);
            }
            for &st in stages {
                visit(design, target, st, rep, acc);
            }
        }
        NodeKind::TileLoad(t) | NodeKind::TileStore(t) => {
            let ty = design.ty(t.offchip);
            acc.breakdown.transfers +=
                tile_unit_cost(target, ty.bits(), t.tile.len(), t.par).times(rep);
        }
        _ => {}
    }
}

fn memory_resources(design: &Design, target: &FpgaTarget, mem: NodeId) -> Resources {
    let node = design.node(mem);
    match &node.kind {
        NodeKind::Bram(b) => bram_cost(target, b.elements(), b.word_width, b.banks, b.double_buf),
        NodeKind::Reg(r) => reg_cost(node.ty, r.double_buf),
        NodeKind::PriorityQueue(q) => pqueue_cost(target, node.ty, q.depth, q.double_buf),
        _ => Resources::zero(),
    }
}

/// The type at which a primitive's cost is characterized: predicates are
/// costed at their (widest) input type, since a 32-bit comparison produces
/// a 1-bit result but consumes 32-bit datapaths.
fn cost_ty(design: &Design, n: NodeId) -> dhdl_core::DType {
    match design.kind(n) {
        NodeKind::Prim { op, inputs } if op.is_predicate() => inputs
            .iter()
            .map(|&i| design.ty(i))
            .max_by_key(|t| (t.is_float(), t.bits()))
            .unwrap_or(design.ty(n)),
        _ => design.ty(n),
    }
}

/// Per-node latency within a pipe body, used for ASAP delay balancing.
pub(crate) fn body_node_latency(design: &Design, n: NodeId) -> u64 {
    match design.kind(n) {
        NodeKind::Prim { op, .. } => prim_cost(*op, cost_ty(design, n)).latency,
        NodeKind::Mux { .. } => mux_cost(design.ty(n)).latency,
        NodeKind::Load { mem, .. } | NodeKind::Store { mem, .. } => {
            let banks = bank_count(design, *mem);
            access_cost(design.ty(n), banks).latency
        }
        _ => 0,
    }
}

fn bank_count(design: &Design, mem: NodeId) -> u32 {
    match design.kind(mem) {
        NodeKind::Bram(b) => b.banks,
        _ => 1,
    }
}

/// ASAP schedule of a pipe body: start time of each node.
pub(crate) fn asap_schedule(design: &Design, p: &PipeSpec) -> BTreeMap<NodeId, u64> {
    let mut start: BTreeMap<NodeId, u64> = BTreeMap::new();
    for &n in &p.body {
        let t = design
            .prim_inputs(n)
            .iter()
            .filter_map(|&i| start.get(&i).map(|&s| s + body_node_latency(design, i)))
            .max()
            .unwrap_or(0);
        start.insert(n, t);
    }
    start
}

/// Critical-path depth (latency of one iteration) of a pipe body.
pub fn pipe_depth(design: &Design, p: &PipeSpec) -> u64 {
    let sched = asap_schedule(design, p);
    p.body
        .iter()
        .map(|&n| sched[&n] + body_node_latency(design, n))
        .max()
        .unwrap_or(0)
}

fn body_edges(design: &Design, p: &PipeSpec) -> f64 {
    p.body
        .iter()
        .map(|&n| design.prim_inputs(n).len() as f64)
        .sum()
}

/// Datapath and delay-balancing resources of one pipe body (per replica).
fn pipe_body_resources(
    design: &Design,
    target: &FpgaTarget,
    _pipe: NodeId,
    p: &PipeSpec,
) -> (Resources, Resources) {
    let par = f64::from(p.par);
    let mut res = Resources::zero();
    // Datapath nodes, replicated by the vector width.
    for &n in &p.body {
        let node = design.node(n);
        let lane = match &node.kind {
            NodeKind::Prim { op, .. } => prim_cost(*op, cost_ty(design, n)).res,
            NodeKind::Mux { .. } => mux_cost(node.ty).res,
            NodeKind::Load { mem, .. } | NodeKind::Store { mem, .. } => {
                access_cost(node.ty, bank_count(design, *mem)).res
            }
            _ => Resources::zero(),
        };
        res += lane.times(par);
    }
    // Reduction tree and accumulator for reduce-patterned pipes.
    if let Some(r) = &p.reduce {
        if let Pattern::Reduce(op) = p.pattern {
            let ty = design.ty(r.reg);
            res += reduce_tree_cost(op.prim(), ty, p.par);
            // Final accumulator combiner.
            res += prim_cost(op.prim(), ty).res;
        }
    }
    // Delay-balancing resources from the ASAP schedule (§IV-B2): every
    // input edge with slack relative to the consumer's start time delays
    // its full bit width for the slack cycles.
    let mut delays = Resources::zero();
    let sched = asap_schedule(design, p);
    for &n in &p.body {
        let n_start = sched[&n];
        for i in design.prim_inputs(n) {
            let Some(&i_start) = sched.get(&i) else {
                continue; // constants and loop iterators are timing-free
            };
            let ready = i_start + body_node_latency(design, i);
            let slack = n_start.saturating_sub(ready);
            if slack > 0 {
                let bits = design.ty(i).bits() * p.par;
                delays += delay_cost(target, slack, bits);
            }
        }
    }
    (res, delays)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dhdl_core::{by, DType, DesignBuilder, ReduceOp};
    use dhdl_target::FpgaTarget;

    fn dot_design(par: u32, tile: u64) -> Design {
        let mut b = DesignBuilder::new("dot");
        let x = b.off_chip("x", DType::F32, &[1024]);
        let y = b.off_chip("y", DType::F32, &[1024]);
        b.sequential(|b| {
            let acc = b.reg("acc", DType::F32, 0.0);
            b.meta_pipe(&[by(1024, tile)], 1, |b, iters| {
                let i = iters[0];
                let xt = b.bram("xT", DType::F32, &[tile]);
                let yt = b.bram("yT", DType::F32, &[tile]);
                b.parallel(|b| {
                    b.tile_load(x, xt, &[i], &[tile], par);
                    b.tile_load(y, yt, &[i], &[tile], par);
                });
                b.pipe_reduce(&[by(tile, 1)], par, acc, ReduceOp::Add, |b, it| {
                    let a = b.load(xt, &[it[0]]);
                    let c = b.load(yt, &[it[0]]);
                    b.mul(a, c)
                });
            });
        });
        b.finish().unwrap()
    }

    #[test]
    fn elaboration_scales_with_parallelism() {
        let t = FpgaTarget::stratix_v();
        let n1 = elaborate(&dot_design(1, 64), &t);
        let n8 = elaborate(&dot_design(8, 64), &t);
        assert!(n8.raw.luts() > n1.raw.luts());
        assert!(n8.raw.dsps > n1.raw.dsps); // replicated float multipliers
        assert!(n8.raw.brams >= n1.raw.brams); // banking splits BRAMs
    }

    #[test]
    fn elaboration_scales_with_tile_size() {
        let t = FpgaTarget::stratix_v();
        let small = elaborate(&dot_design(1, 64), &t);
        let big = elaborate(&dot_design(1, 512), &t);
        assert!(big.raw.brams >= small.raw.brams);
    }

    #[test]
    fn pipe_depth_counts_critical_path() {
        let d = dot_design(1, 64);
        let pipes = d.find_all(|n| matches!(n.kind, NodeKind::Pipe(_)));
        let NodeKind::Pipe(p) = d.kind(pipes[0]) else {
            unreachable!()
        };
        // load (1) -> mul (4) at minimum.
        assert!(pipe_depth(&d, p) >= 5);
    }

    #[test]
    fn breakdown_sums_to_raw() {
        let t = FpgaTarget::stratix_v();
        let n = elaborate(&dot_design(4, 128), &t);
        let total = n.breakdown.total();
        assert!((total.luts() - n.raw.luts()).abs() < 1e-6);
        assert!((total.regs - n.raw.regs).abs() < 1e-6);
        assert!((total.brams - n.raw.brams).abs() < 1e-6);
        // All major classes are populated for a tiled reduce design.
        assert!(n.breakdown.primitives.luts() > 0.0);
        assert!(n.breakdown.memories.brams > 0.0);
        assert!(n.breakdown.control.luts() > 0.0);
        assert!(n.breakdown.transfers.luts() > 0.0);
    }

    #[test]
    fn features_are_populated() {
        let t = FpgaTarget::stratix_v();
        let n = elaborate(&dot_design(2, 64), &t);
        assert!(n.features.prims > 0.0);
        assert!(n.features.mems >= 3.0);
        assert!(n.features.ctrls >= 4.0);
        assert!(n.features.edges > 0.0);
        assert!(n.features.depth >= 3.0);
    }

    #[test]
    fn replication_by_outer_par() {
        let t = FpgaTarget::stratix_v();
        let build = |mp_par: u32| {
            let mut b = DesignBuilder::new("rep");
            let x = b.off_chip("x", DType::F32, &[256]);
            b.sequential(|b| {
                b.meta_pipe(&[by(256, 32)], mp_par, |b, iters| {
                    let i = iters[0];
                    let t0 = b.bram("t", DType::F32, &[32]);
                    b.tile_load(x, t0, &[i], &[32], 1);
                    b.pipe(&[by(32, 1)], 1, |b, it| {
                        let v = b.load(t0, &[it[0]]);
                        let w = b.mul(v, v);
                        b.store(t0, &[it[0]], w);
                    });
                });
            });
            b.finish().unwrap()
        };
        let r1 = elaborate(&build(1), &t);
        let r4 = elaborate(&build(4), &t);
        // Outer parallelization replicates the whole body including BRAMs.
        assert!(r4.raw.brams >= r1.raw.brams * 3.0);
        assert!(r4.raw.dsps >= r1.raw.dsps * 3.0);
    }
}
