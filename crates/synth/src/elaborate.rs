//! Design elaboration: flattening a DHDL design instance into raw resource
//! counts using the characterized template models.
//!
//! This is the "counting the resource requirements of each node using their
//! pre-characterized area models" step of §IV-B2, shared by the estimator
//! (as its raw area pass) and by the synthesis model (as the input to
//! place-and-route). Replication from parallelization factors, reduction
//! trees, and delay-balancing registers (ASAP schedule) are all applied
//! here.
//!
//! Elaboration is the DSE hot path: a 75 000-point sweep elaborates 75 000
//! designs that share one structure and differ only in parameters (tile
//! sizes, par factors, banking). It is therefore split in two:
//!
//! * a [`Skeleton`] — everything that depends only on the design's
//!   *structure* (controller tree, pipe body topology, per-node cost-model
//!   lookups keyed by op and type), built once per structure and cached
//!   per-thread keyed by [`shape_hash`];
//! * a cheap re-costing pass ([`elaborate_with`]) that reads the
//!   param-dependent values (par factors, replication, memory geometry,
//!   banking, counter lengths) from the concrete design and produces the
//!   [`Netlist`].
//!
//! The split is bit-exact: re-costing performs the same floating-point
//! operations in the same order as a direct walk, so netlists (and
//! everything downstream: estimates, place-and-route, sweeps) are
//! unchanged. Pipe critical-path depths fall out of the ASAP schedule for
//! free and are recorded on the netlist so the latency estimator does not
//! re-schedule the same bodies.

use std::cell::RefCell;
use std::collections::hash_map::Entry;
use std::collections::{BTreeMap, HashMap};
use std::rc::Rc;

use dhdl_core::{DType, Design, DesignStats, Fnv64, NodeId, NodeKind, Pattern, PipeSpec};
use dhdl_target::{FpgaTarget, Resources};

use crate::chardata::{
    access_cost, bram_cost, controller_cost, counter_cost, delay_cost, mux_cost, pqueue_cost,
    prim_cost, reduce_tree_cost, reg_cost, tile_unit_cost, ControllerKind, OpCost,
};

/// Structural features of an elaborated netlist, used by the
/// place-and-route model and (via calibration samples) by the estimator's
/// correction networks.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct NetFeatures {
    /// Primitive node instances after replication (physical lanes).
    pub prims: f64,
    /// On-chip memory instances.
    pub mems: f64,
    /// Controller instances.
    pub ctrls: f64,
    /// Maximum controller nesting depth.
    pub depth: f64,
    /// Dataflow edges after replication.
    pub edges: f64,
    /// Average vector width of primitives.
    pub avg_width: f64,
}

/// Raw resources attributed to template classes — the per-class area
/// breakdown used for reporting and bottleneck attribution.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct AreaBreakdown {
    /// Primitive datapath (arithmetic, muxes, loads/stores, reduce trees).
    pub primitives: Resources,
    /// On-chip memories (BRAMs, registers, queues).
    pub memories: Resources,
    /// Controller and counter logic.
    pub control: Resources,
    /// Off-chip tile transfer units (command generators, FIFOs).
    pub transfers: Resources,
    /// Delay-balancing registers/BRAMs from the ASAP schedule.
    pub delays: Resources,
}

impl AreaBreakdown {
    /// Sum of all classes (equals the netlist's raw resources).
    pub fn total(&self) -> Resources {
        self.primitives
            .plus(&self.memories)
            .plus(&self.control)
            .plus(&self.transfers)
            .plus(&self.delays)
    }
}

/// An elaborated design: raw resources plus netlist features.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Netlist {
    /// Raw resource requirements before any low-level tool effects.
    pub raw: Resources,
    /// Per-template-class attribution of `raw`.
    pub breakdown: AreaBreakdown,
    /// Netlist structure features.
    pub features: NetFeatures,
    /// Critical-path depth of each `Pipe` body, keyed by controller id —
    /// a byproduct of the delay-balancing ASAP schedule, recorded so the
    /// latency estimator can skip re-scheduling (see
    /// [`Netlist::pipe_depth`]).
    pub pipe_depths: Vec<(NodeId, u64)>,
}

impl Netlist {
    /// The recorded critical-path depth of pipe `ctrl`, if it was
    /// elaborated as part of this netlist. Equals
    /// [`pipe_depth`] on the same design.
    pub fn pipe_depth(&self, ctrl: NodeId) -> Option<u64> {
        self.pipe_depths
            .iter()
            .find(|(id, _)| *id == ctrl)
            .map(|&(_, d)| d)
    }
}

/// Elaborate a design into raw resource counts on `target`.
///
/// Skeletons are cached per-thread keyed by [`shape_hash`], so sweeping
/// many parameterizations of one benchmark pays the structural analysis
/// once; use [`elaborate_with`] to manage the skeleton explicitly.
pub fn elaborate(design: &Design, target: &FpgaTarget) -> Netlist {
    thread_local! {
        static SKELETONS: RefCell<HashMap<u64, Rc<Skeleton>>> = RefCell::new(HashMap::new());
    }
    let shape = shape_hash(design);
    let skel = SKELETONS.with(|cache| {
        let mut map = cache.borrow_mut();
        // Bound the per-thread cache; a sweep touches a handful of shapes.
        if map.len() >= 256 {
            map.clear();
        }
        match map.entry(shape) {
            Entry::Occupied(e) => {
                dhdl_obs::counter!("synth.skeleton.reuse").incr();
                e.get().clone()
            }
            Entry::Vacant(e) => {
                dhdl_obs::counter!("synth.skeleton.build").incr();
                let _t = dhdl_obs::histogram!("synth.skeleton.build_ns").timer();
                e.insert(Rc::new(Skeleton::with_shape(design, shape)))
                    .clone()
            }
        }
    });
    elaborate_with(design, target, &skel)
}

/// Elaborate `design` using a pre-built structural [`Skeleton`].
///
/// The skeleton must have been built from a design with the same
/// [`shape_hash`] (same structure; parameters are free to differ) —
/// this is checked in debug builds.
pub fn elaborate_with(design: &Design, target: &FpgaTarget, skel: &Skeleton) -> Netlist {
    debug_assert_eq!(
        skel.shape,
        shape_hash(design),
        "skeleton/design structure mismatch"
    );
    let _span = dhdl_obs::span_arg("elaborate", "shape", skel.shape);
    let _t = dhdl_obs::histogram!("synth.recost_ns").timer();
    let mut acc = Acc::default();
    visit_plan(design, target, &skel.root, 1.0, &mut acc);
    let stats = DesignStats::of(design);
    Netlist {
        raw: acc.breakdown.total(),
        breakdown: acc.breakdown,
        features: NetFeatures {
            prims: acc.phys_prims.max(1.0),
            mems: stats.memories as f64,
            ctrls: stats.controllers as f64,
            depth: stats.depth as f64,
            edges: acc.edges,
            avg_width: stats.avg_width(),
        },
        pipe_depths: acc.pipe_depths,
    }
}

/// A hash of everything about a design that the [`Skeleton`] bakes in:
/// the controller tree, pipe body topology and wiring, node kinds, ops
/// and types — and nothing that varies across DSE points of one
/// benchmark (par factors, counter bounds, tile extents, memory
/// geometry, banking, constant values). Two designs with equal shape
/// hashes can share a skeleton.
pub fn shape_hash(design: &Design) -> u64 {
    let mut h = Fnv64::new();
    h.write(design.name().as_bytes());
    h.write_u64(design.len() as u64);
    let id_list = |h: &mut Fnv64, ids: &[NodeId]| {
        h.write_u64(ids.len() as u64);
        for &i in ids {
            h.write_u64(i.index() as u64);
        }
    };
    for (id, node) in design.iter() {
        h.write_u64(id.index() as u64);
        h.write_u64(ty_code(node.ty));
        match &node.kind {
            NodeKind::Const(_) => h.write_u64(1),
            NodeKind::Prim { op, inputs } => {
                h.write_u64(2);
                h.write_u64(*op as u64);
                id_list(&mut h, inputs);
            }
            NodeKind::Mux {
                sel,
                if_true,
                if_false,
            } => {
                h.write_u64(3);
                id_list(&mut h, &[*sel, *if_true, *if_false]);
            }
            NodeKind::Load { mem, addr } => {
                h.write_u64(4);
                h.write_u64(mem.index() as u64);
                id_list(&mut h, addr);
            }
            NodeKind::Store { mem, addr, value } => {
                h.write_u64(5);
                h.write_u64(mem.index() as u64);
                h.write_u64(value.index() as u64);
                id_list(&mut h, addr);
            }
            NodeKind::Iter { ctrl, dim } => {
                h.write_u64(6);
                h.write_u64(ctrl.index() as u64);
                h.write_u64(*dim as u64);
            }
            NodeKind::OffChip { dims } => {
                h.write_u64(7);
                h.write_u64(dims.len() as u64);
            }
            NodeKind::Bram(b) => {
                h.write_u64(8);
                h.write_u64(b.dims.len() as u64);
            }
            NodeKind::Reg(_) => h.write_u64(9),
            NodeKind::PriorityQueue(_) => h.write_u64(10),
            NodeKind::Pipe(p) => {
                h.write_u64(11);
                h.write_u64(p.ctr.dims.len() as u64);
                h.write_u64(pattern_code(p.pattern));
                id_list(&mut h, &p.body);
                if let Some(r) = &p.reduce {
                    id_list(&mut h, &[r.value, r.reg]);
                } else {
                    h.write_u64(0);
                }
            }
            NodeKind::MetaPipe(s) | NodeKind::Sequential(s) => {
                h.write_u64(if matches!(node.kind, NodeKind::MetaPipe(_)) {
                    12
                } else {
                    13
                });
                h.write_u64(s.ctr.dims.len() as u64);
                h.write_u64(pattern_code(s.pattern));
                id_list(&mut h, &s.stages);
                id_list(&mut h, &s.locals);
                if let Some(f) = &s.fold {
                    id_list(&mut h, &[f.src, f.accum]);
                } else {
                    h.write_u64(0);
                }
            }
            NodeKind::ParallelCtrl { stages, locals } => {
                h.write_u64(14);
                id_list(&mut h, stages);
                id_list(&mut h, locals);
            }
            NodeKind::TileLoad(t) | NodeKind::TileStore(t) => {
                h.write_u64(if matches!(node.kind, NodeKind::TileLoad(_)) {
                    15
                } else {
                    16
                });
                id_list(&mut h, &[t.offchip, t.local]);
                id_list(&mut h, &t.offsets);
                h.write_u64(t.tile.len() as u64);
            }
        }
    }
    h.finish()
}

fn ty_code(ty: DType) -> u64 {
    match ty {
        DType::Fix { sign, int, frac } => {
            (1 << 48) | (u64::from(sign) << 32) | (u64::from(int) << 16) | u64::from(frac)
        }
        DType::F32 => 2 << 48,
        DType::F64 => 3 << 48,
        DType::Bool => 4 << 48,
    }
}

fn pattern_code(p: Pattern) -> u64 {
    match p {
        Pattern::Map => 0,
        Pattern::Reduce(op) => 1 + op as u64,
    }
}

/// The structure-dependent half of elaboration: the controller tree with,
/// per `Pipe`, resolved per-lane cost-model lookups and body wiring.
/// Build once per benchmark structure (see [`shape_hash`]) and re-cost
/// arbitrarily many parameterizations with [`elaborate_with`].
#[derive(Debug, Clone)]
pub struct Skeleton {
    shape: u64,
    root: CtrlPlan,
}

impl Skeleton {
    /// Analyze `design`'s structure.
    pub fn of(design: &Design) -> Skeleton {
        Skeleton::with_shape(design, shape_hash(design))
    }

    fn with_shape(design: &Design, shape: u64) -> Skeleton {
        Skeleton {
            shape,
            root: ctrl_plan(design, design.top()),
        }
    }

    /// The [`shape_hash`] of the structure this skeleton was built from.
    pub fn shape(&self) -> u64 {
        self.shape
    }
}

/// One controller in the skeleton tree.
#[derive(Debug, Clone)]
struct CtrlPlan {
    id: NodeId,
    /// Present iff the controller is an innermost `Pipe`.
    pipe: Option<PipePlan>,
    /// Child stages, in program order (outer controllers only).
    children: Vec<CtrlPlan>,
}

/// Pre-resolved structure of one pipe body.
#[derive(Debug, Clone)]
struct PipePlan {
    body: Vec<BodyPlan>,
    /// Dataflow edges of one body replica (Σ input counts).
    edges: f64,
}

/// One body node: its cost-model resolution and intra-body wiring.
#[derive(Debug, Clone)]
struct BodyPlan {
    cost: BodyCost,
    /// The node's own element type (delay bit-widths, access lanes).
    ty: DType,
    /// Positions (indices into the body) of inputs that are themselves
    /// body nodes, in raw input order. Other inputs (iterators,
    /// out-of-body values) are timing-free.
    sched_inputs: Vec<u32>,
}

#[derive(Debug, Clone)]
enum BodyCost {
    /// Cost fully determined by structure (Prim at its cost type, Mux).
    Fixed(OpCost),
    /// Memory access: banking is a DSE parameter, so the cost-model
    /// lookup happens at re-cost time against the concrete `BramSpec`.
    Access { mem: NodeId },
    /// Constants and other cost-free body nodes.
    Free,
}

fn ctrl_plan(design: &Design, ctrl: NodeId) -> CtrlPlan {
    let (pipe, children) = match design.kind(ctrl) {
        NodeKind::Pipe(p) => (Some(pipe_plan(design, p)), Vec::new()),
        NodeKind::MetaPipe(s) | NodeKind::Sequential(s) => (
            None,
            s.stages.iter().map(|&st| ctrl_plan(design, st)).collect(),
        ),
        NodeKind::ParallelCtrl { stages, .. } => (
            None,
            stages.iter().map(|&st| ctrl_plan(design, st)).collect(),
        ),
        _ => (None, Vec::new()),
    };
    CtrlPlan {
        id: ctrl,
        pipe,
        children,
    }
}

fn pipe_plan(design: &Design, p: &PipeSpec) -> PipePlan {
    let position: HashMap<NodeId, u32> = p
        .body
        .iter()
        .enumerate()
        .map(|(k, &n)| (n, k as u32))
        .collect();
    let mut edges = 0.0;
    let body = p
        .body
        .iter()
        .map(|&n| {
            let node = design.node(n);
            let cost = match &node.kind {
                NodeKind::Prim { op, .. } => BodyCost::Fixed(prim_cost(*op, cost_ty(design, n))),
                NodeKind::Mux { .. } => BodyCost::Fixed(mux_cost(node.ty)),
                NodeKind::Load { mem, .. } | NodeKind::Store { mem, .. } => {
                    BodyCost::Access { mem: *mem }
                }
                _ => BodyCost::Free,
            };
            let inputs = design.prim_inputs(n);
            edges += inputs.len() as f64;
            BodyPlan {
                cost,
                ty: node.ty,
                sched_inputs: inputs
                    .iter()
                    .filter_map(|i| position.get(i).copied())
                    .collect(),
            }
        })
        .collect();
    PipePlan { body, edges }
}

#[derive(Debug, Default)]
struct Acc {
    breakdown: AreaBreakdown,
    edges: f64,
    phys_prims: f64,
    pipe_depths: Vec<(NodeId, u64)>,
}

/// The param-dependent re-costing pass. Mirrors a direct recursive walk
/// of the design *exactly* — same cost lookups, same floating-point
/// accumulation order — so netlists are bit-identical to pre-skeleton
/// elaboration (asserted by tests).
fn visit_plan(design: &Design, target: &FpgaTarget, plan: &CtrlPlan, rep: f64, acc: &mut Acc) {
    let ctrl = plan.id;
    match design.kind(ctrl) {
        NodeKind::Pipe(p) => {
            acc.breakdown.control += counter_cost().times(p.ctr.dims.len() as f64 * rep);
            acc.breakdown.control += controller_cost(ControllerKind::Pipe, 0).times(rep);
            let pipe = plan.pipe.as_ref().expect("pipe plan for Pipe node");
            let (datapath, delays, depth) = pipe_cost(design, target, p, pipe);
            acc.breakdown.primitives += datapath.times(rep);
            acc.breakdown.delays += delays.times(rep);
            acc.edges += pipe.edges * rep * f64::from(p.par);
            acc.phys_prims += p.body.len() as f64 * rep * f64::from(p.par);
            acc.pipe_depths.push((ctrl, depth));
        }
        NodeKind::MetaPipe(s) | NodeKind::Sequential(s) => {
            let is_meta = matches!(design.kind(ctrl), NodeKind::MetaPipe(_));
            let kind = if is_meta {
                ControllerKind::MetaPipe
            } else {
                ControllerKind::Sequential
            };
            acc.breakdown.control += counter_cost().times(s.ctr.dims.len() as f64 * rep);
            acc.breakdown.control += controller_cost(kind, s.stages.len()).times(rep);
            let child_rep = rep * f64::from(s.par);
            for &m in &s.locals {
                acc.breakdown.memories += memory_resources(design, target, m).times(child_rep);
            }
            for child in &plan.children {
                visit_plan(design, target, child, child_rep, acc);
            }
            if let Some(f) = &s.fold {
                // The implicit fold stage: one combiner lane per port lane,
                // plus read/modify/write ports on the accumulator.
                let ty = design.ty(f.accum);
                let op = f.op.prim();
                acc.breakdown.primitives += prim_cost(op, ty).res.times(child_rep);
                acc.breakdown.primitives += access_cost(ty, 1).res.times(2.0 * child_rep);
            }
        }
        NodeKind::ParallelCtrl { stages, locals } => {
            acc.breakdown.control +=
                controller_cost(ControllerKind::Parallel, stages.len()).times(rep);
            for &m in locals {
                acc.breakdown.memories += memory_resources(design, target, m).times(rep);
            }
            for child in &plan.children {
                visit_plan(design, target, child, rep, acc);
            }
        }
        NodeKind::TileLoad(t) | NodeKind::TileStore(t) => {
            let ty = design.ty(t.offchip);
            acc.breakdown.transfers +=
                tile_unit_cost(target, ty.bits(), t.tile.len(), t.par).times(rep);
        }
        _ => {}
    }
}

/// Datapath resources, delay-balancing resources and critical-path depth
/// of one pipe body (per replica), computed from the skeleton plan and
/// the concrete parameters. One array-based ASAP schedule serves both
/// delay balancing and the recorded depth (a direct walk schedules the
/// same body twice, once more via [`pipe_depth`]).
fn pipe_cost(
    design: &Design,
    target: &FpgaTarget,
    p: &PipeSpec,
    plan: &PipePlan,
) -> (Resources, Resources, u64) {
    let par = f64::from(p.par);
    let n = plan.body.len();
    let mut res = Resources::zero();
    let mut lat: Vec<u64> = Vec::with_capacity(n);
    // Datapath nodes, replicated by the vector width. Resolve the
    // param-dependent access costs once, capturing latencies for the
    // schedule below.
    for b in &plan.body {
        let cost = match &b.cost {
            BodyCost::Fixed(c) => *c,
            BodyCost::Access { mem } => access_cost(b.ty, bank_count(design, *mem)),
            BodyCost::Free => OpCost::default(),
        };
        res += cost.res.times(par);
        lat.push(cost.latency);
    }
    // Reduction tree and accumulator for reduce-patterned pipes.
    if let Some(r) = &p.reduce {
        if let Pattern::Reduce(op) = p.pattern {
            let ty = design.ty(r.reg);
            res += reduce_tree_cost(op.prim(), ty, p.par);
            // Final accumulator combiner.
            res += prim_cost(op.prim(), ty).res;
        }
    }
    // ASAP schedule: start[k] = max over already-scheduled body inputs of
    // their ready time (body order is topological; a forward reference
    // would be timing-free here, matching the direct walk).
    let mut start = vec![0u64; n];
    for (k, b) in plan.body.iter().enumerate() {
        start[k] = b
            .sched_inputs
            .iter()
            .map(|&j| j as usize)
            .filter(|&j| j < k)
            .map(|j| start[j] + lat[j])
            .max()
            .unwrap_or(0);
    }
    // Delay-balancing resources (§IV-B2): every input edge with slack
    // relative to the consumer's start time delays its full bit width for
    // the slack cycles.
    let mut delays = Resources::zero();
    for (k, b) in plan.body.iter().enumerate() {
        for &j in &b.sched_inputs {
            let j = j as usize;
            let ready = start[j] + lat[j];
            let slack = start[k].saturating_sub(ready);
            if slack > 0 {
                let bits = plan.body[j].ty.bits() * p.par;
                delays += delay_cost(target, slack, bits);
            }
        }
    }
    let depth = (0..n).map(|k| start[k] + lat[k]).max().unwrap_or(0);
    (res, delays, depth)
}

fn memory_resources(design: &Design, target: &FpgaTarget, mem: NodeId) -> Resources {
    let node = design.node(mem);
    match &node.kind {
        NodeKind::Bram(b) => bram_cost(target, b.elements(), b.word_width, b.banks, b.double_buf),
        NodeKind::Reg(r) => reg_cost(node.ty, r.double_buf),
        NodeKind::PriorityQueue(q) => pqueue_cost(target, node.ty, q.depth, q.double_buf),
        _ => Resources::zero(),
    }
}

/// The type at which a primitive's cost is characterized: predicates are
/// costed at their (widest) input type, since a 32-bit comparison produces
/// a 1-bit result but consumes 32-bit datapaths.
fn cost_ty(design: &Design, n: NodeId) -> DType {
    match design.kind(n) {
        NodeKind::Prim { op, inputs } if op.is_predicate() => inputs
            .iter()
            .map(|&i| design.ty(i))
            .max_by_key(|t| (t.is_float(), t.bits()))
            .unwrap_or(design.ty(n)),
        _ => design.ty(n),
    }
}

/// Per-node latency within a pipe body, used for ASAP delay balancing.
pub(crate) fn body_node_latency(design: &Design, n: NodeId) -> u64 {
    match design.kind(n) {
        NodeKind::Prim { op, .. } => prim_cost(*op, cost_ty(design, n)).latency,
        NodeKind::Mux { .. } => mux_cost(design.ty(n)).latency,
        NodeKind::Load { mem, .. } | NodeKind::Store { mem, .. } => {
            let banks = bank_count(design, *mem);
            access_cost(design.ty(n), banks).latency
        }
        _ => 0,
    }
}

fn bank_count(design: &Design, mem: NodeId) -> u32 {
    match design.kind(mem) {
        NodeKind::Bram(b) => b.banks,
        _ => 1,
    }
}

/// ASAP schedule of a pipe body: start time of each node.
pub(crate) fn asap_schedule(design: &Design, p: &PipeSpec) -> BTreeMap<NodeId, u64> {
    let mut start: BTreeMap<NodeId, u64> = BTreeMap::new();
    for &n in &p.body {
        let t = design
            .prim_inputs(n)
            .iter()
            .filter_map(|&i| start.get(&i).map(|&s| s + body_node_latency(design, i)))
            .max()
            .unwrap_or(0);
        start.insert(n, t);
    }
    start
}

/// Critical-path depth (latency of one iteration) of a pipe body.
///
/// Stand-alone recomputation; an elaborated [`Netlist`] already carries
/// these depths (see [`Netlist::pipe_depth`]).
pub fn pipe_depth(design: &Design, p: &PipeSpec) -> u64 {
    let sched = asap_schedule(design, p);
    p.body
        .iter()
        .map(|&n| sched[&n] + body_node_latency(design, n))
        .max()
        .unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dhdl_core::{by, DesignBuilder, ReduceOp};
    use dhdl_target::FpgaTarget;

    /// The pre-skeleton direct elaboration walk, kept verbatim as the
    /// bit-exactness oracle for the skeleton/re-cost split.
    fn elaborate_direct(design: &Design, target: &FpgaTarget) -> Netlist {
        #[derive(Default)]
        struct DirectAcc {
            breakdown: AreaBreakdown,
            edges: f64,
            phys_prims: f64,
        }

        fn body_edges(design: &Design, p: &PipeSpec) -> f64 {
            p.body
                .iter()
                .map(|&n| design.prim_inputs(n).len() as f64)
                .sum()
        }

        fn pipe_body_resources(
            design: &Design,
            target: &FpgaTarget,
            p: &PipeSpec,
        ) -> (Resources, Resources) {
            let par = f64::from(p.par);
            let mut res = Resources::zero();
            for &n in &p.body {
                let node = design.node(n);
                let lane = match &node.kind {
                    NodeKind::Prim { op, .. } => prim_cost(*op, cost_ty(design, n)).res,
                    NodeKind::Mux { .. } => mux_cost(node.ty).res,
                    NodeKind::Load { mem, .. } | NodeKind::Store { mem, .. } => {
                        access_cost(node.ty, bank_count(design, *mem)).res
                    }
                    _ => Resources::zero(),
                };
                res += lane.times(par);
            }
            if let Some(r) = &p.reduce {
                if let Pattern::Reduce(op) = p.pattern {
                    let ty = design.ty(r.reg);
                    res += reduce_tree_cost(op.prim(), ty, p.par);
                    res += prim_cost(op.prim(), ty).res;
                }
            }
            let mut delays = Resources::zero();
            let sched = asap_schedule(design, p);
            for &n in &p.body {
                let n_start = sched[&n];
                for i in design.prim_inputs(n) {
                    let Some(&i_start) = sched.get(&i) else {
                        continue;
                    };
                    let ready = i_start + body_node_latency(design, i);
                    let slack = n_start.saturating_sub(ready);
                    if slack > 0 {
                        let bits = design.ty(i).bits() * p.par;
                        delays += delay_cost(target, slack, bits);
                    }
                }
            }
            (res, delays)
        }

        fn visit(
            design: &Design,
            target: &FpgaTarget,
            ctrl: NodeId,
            rep: f64,
            acc: &mut DirectAcc,
        ) {
            match design.kind(ctrl) {
                NodeKind::Pipe(p) => {
                    acc.breakdown.control += counter_cost().times(p.ctr.dims.len() as f64 * rep);
                    acc.breakdown.control += controller_cost(ControllerKind::Pipe, 0).times(rep);
                    let (datapath, delays) = pipe_body_resources(design, target, p);
                    acc.breakdown.primitives += datapath.times(rep);
                    acc.breakdown.delays += delays.times(rep);
                    acc.edges += body_edges(design, p) * rep * f64::from(p.par);
                    acc.phys_prims += p.body.len() as f64 * rep * f64::from(p.par);
                }
                NodeKind::MetaPipe(s) | NodeKind::Sequential(s) => {
                    let is_meta = matches!(design.kind(ctrl), NodeKind::MetaPipe(_));
                    let kind = if is_meta {
                        ControllerKind::MetaPipe
                    } else {
                        ControllerKind::Sequential
                    };
                    acc.breakdown.control += counter_cost().times(s.ctr.dims.len() as f64 * rep);
                    acc.breakdown.control += controller_cost(kind, s.stages.len()).times(rep);
                    let child_rep = rep * f64::from(s.par);
                    for &m in &s.locals {
                        acc.breakdown.memories +=
                            memory_resources(design, target, m).times(child_rep);
                    }
                    for &st in &s.stages {
                        visit(design, target, st, child_rep, acc);
                    }
                    if let Some(f) = &s.fold {
                        let ty = design.ty(f.accum);
                        let op = f.op.prim();
                        acc.breakdown.primitives += prim_cost(op, ty).res.times(child_rep);
                        acc.breakdown.primitives += access_cost(ty, 1).res.times(2.0 * child_rep);
                    }
                }
                NodeKind::ParallelCtrl { stages, locals } => {
                    acc.breakdown.control +=
                        controller_cost(ControllerKind::Parallel, stages.len()).times(rep);
                    for &m in locals {
                        acc.breakdown.memories += memory_resources(design, target, m).times(rep);
                    }
                    for &st in stages {
                        visit(design, target, st, rep, acc);
                    }
                }
                NodeKind::TileLoad(t) | NodeKind::TileStore(t) => {
                    let ty = design.ty(t.offchip);
                    acc.breakdown.transfers +=
                        tile_unit_cost(target, ty.bits(), t.tile.len(), t.par).times(rep);
                }
                _ => {}
            }
        }

        let mut acc = DirectAcc::default();
        visit(design, target, design.top(), 1.0, &mut acc);
        let stats = DesignStats::of(design);
        let mut depths = Vec::new();
        for id in design.find_all(|n| matches!(n.kind, NodeKind::Pipe(_))) {
            if let NodeKind::Pipe(p) = design.kind(id) {
                depths.push((id, pipe_depth(design, p)));
            }
        }
        Netlist {
            raw: acc.breakdown.total(),
            breakdown: acc.breakdown,
            features: NetFeatures {
                prims: acc.phys_prims.max(1.0),
                mems: stats.memories as f64,
                ctrls: stats.controllers as f64,
                depth: stats.depth as f64,
                edges: acc.edges,
                avg_width: stats.avg_width(),
            },
            pipe_depths: depths,
        }
    }

    fn dot_design(par: u32, tile: u64) -> Design {
        let mut b = DesignBuilder::new("dot");
        let x = b.off_chip("x", DType::F32, &[1024]);
        let y = b.off_chip("y", DType::F32, &[1024]);
        b.sequential(|b| {
            let acc = b.reg("acc", DType::F32, 0.0);
            b.meta_pipe(&[by(1024, tile)], 1, |b, iters| {
                let i = iters[0];
                let xt = b.bram("xT", DType::F32, &[tile]);
                let yt = b.bram("yT", DType::F32, &[tile]);
                b.parallel(|b| {
                    b.tile_load(x, xt, &[i], &[tile], par);
                    b.tile_load(y, yt, &[i], &[tile], par);
                });
                b.pipe_reduce(&[by(tile, 1)], par, acc, ReduceOp::Add, |b, it| {
                    let a = b.load(xt, &[it[0]]);
                    let c = b.load(yt, &[it[0]]);
                    b.mul(a, c)
                });
            });
        });
        b.finish().unwrap()
    }

    /// Netlists sorted for comparison: direct-walk depths come out in
    /// `find_all` (arena) order, skeleton depths in visit order.
    fn normalized(mut n: Netlist) -> Netlist {
        n.pipe_depths.sort_unstable();
        n
    }

    #[test]
    fn skeleton_recost_is_bit_identical_to_direct_walk() {
        let t = FpgaTarget::stratix_v();
        for (par, tile) in [(1, 64), (2, 64), (4, 128), (8, 512), (16, 32)] {
            let d = dot_design(par, tile);
            let direct = normalized(elaborate_direct(&d, &t));
            let skel = normalized(elaborate(&d, &t));
            assert_eq!(direct, skel, "par={par} tile={tile}");
        }
    }

    #[test]
    fn skeleton_is_shared_across_params() {
        let a = dot_design(1, 64);
        let b = dot_design(8, 512);
        assert_eq!(shape_hash(&a), shape_hash(&b));
        let skel = Skeleton::of(&a);
        let t = FpgaTarget::stratix_v();
        // A skeleton built from one parameterization re-costs another.
        assert_eq!(
            normalized(elaborate_with(&b, &t, &skel)),
            normalized(elaborate_direct(&b, &t))
        );
    }

    #[test]
    fn shape_hash_separates_structures() {
        let dot = dot_design(1, 64);
        let mut b = DesignBuilder::new("dot");
        let x = b.off_chip("x", DType::F32, &[1024]);
        b.sequential(|b| {
            b.meta_pipe(&[by(1024, 64)], 1, |b, iters| {
                let i = iters[0];
                let xt = b.bram("xT", DType::F32, &[64]);
                b.tile_load(x, xt, &[i], &[64], 1);
                b.pipe(&[by(64, 1)], 1, |b, it| {
                    let v = b.load(xt, &[it[0]]);
                    let w = b.mul(v, v);
                    b.store(xt, &[it[0]], w);
                });
            });
        });
        let other = b.finish().unwrap();
        assert_ne!(shape_hash(&dot), shape_hash(&other));
    }

    #[test]
    fn netlist_records_pipe_depths() {
        let t = FpgaTarget::stratix_v();
        let d = dot_design(1, 64);
        let net = elaborate(&d, &t);
        let pipes = d.find_all(|n| matches!(n.kind, NodeKind::Pipe(_)));
        assert!(!pipes.is_empty());
        for id in pipes {
            let NodeKind::Pipe(p) = d.kind(id) else {
                unreachable!()
            };
            assert_eq!(net.pipe_depth(id), Some(pipe_depth(&d, p)));
        }
        assert_eq!(net.pipe_depth(NodeId::from_raw(u32::MAX - 1)), None);
    }

    #[test]
    fn elaboration_scales_with_parallelism() {
        let t = FpgaTarget::stratix_v();
        let n1 = elaborate(&dot_design(1, 64), &t);
        let n8 = elaborate(&dot_design(8, 64), &t);
        assert!(n8.raw.luts() > n1.raw.luts());
        assert!(n8.raw.dsps > n1.raw.dsps); // replicated float multipliers
        assert!(n8.raw.brams >= n1.raw.brams); // banking splits BRAMs
    }

    #[test]
    fn elaboration_scales_with_tile_size() {
        let t = FpgaTarget::stratix_v();
        let small = elaborate(&dot_design(1, 64), &t);
        let big = elaborate(&dot_design(1, 512), &t);
        assert!(big.raw.brams >= small.raw.brams);
    }

    #[test]
    fn pipe_depth_counts_critical_path() {
        let d = dot_design(1, 64);
        let pipes = d.find_all(|n| matches!(n.kind, NodeKind::Pipe(_)));
        let NodeKind::Pipe(p) = d.kind(pipes[0]) else {
            unreachable!()
        };
        // load (1) -> mul (4) at minimum.
        assert!(pipe_depth(&d, p) >= 5);
    }

    #[test]
    fn breakdown_sums_to_raw() {
        let t = FpgaTarget::stratix_v();
        let n = elaborate(&dot_design(4, 128), &t);
        let total = n.breakdown.total();
        assert!((total.luts() - n.raw.luts()).abs() < 1e-6);
        assert!((total.regs - n.raw.regs).abs() < 1e-6);
        assert!((total.brams - n.raw.brams).abs() < 1e-6);
        // All major classes are populated for a tiled reduce design.
        assert!(n.breakdown.primitives.luts() > 0.0);
        assert!(n.breakdown.memories.brams > 0.0);
        assert!(n.breakdown.control.luts() > 0.0);
        assert!(n.breakdown.transfers.luts() > 0.0);
    }

    #[test]
    fn features_are_populated() {
        let t = FpgaTarget::stratix_v();
        let n = elaborate(&dot_design(2, 64), &t);
        assert!(n.features.prims > 0.0);
        assert!(n.features.mems >= 3.0);
        assert!(n.features.ctrls >= 4.0);
        assert!(n.features.edges > 0.0);
        assert!(n.features.depth >= 3.0);
    }

    #[test]
    fn replication_by_outer_par() {
        let t = FpgaTarget::stratix_v();
        let build = |mp_par: u32| {
            let mut b = DesignBuilder::new("rep");
            let x = b.off_chip("x", DType::F32, &[256]);
            b.sequential(|b| {
                b.meta_pipe(&[by(256, 32)], mp_par, |b, iters| {
                    let i = iters[0];
                    let t0 = b.bram("t", DType::F32, &[32]);
                    b.tile_load(x, t0, &[i], &[32], 1);
                    b.pipe(&[by(32, 1)], 1, |b, it| {
                        let v = b.load(t0, &[it[0]]);
                        let w = b.mul(v, v);
                        b.store(t0, &[it[0]], w);
                    });
                });
            });
            b.finish().unwrap()
        };
        let r1 = elaborate(&build(1), &t);
        let r4 = elaborate(&build(4), &t);
        // Outer parallelization replicates the whole body including BRAMs.
        assert!(r4.raw.brams >= r1.raw.brams * 3.0);
        assert!(r4.raw.dsps >= r1.raw.dsps * 3.0);
    }
}
