//! Benchmark-suite differentials: simulator and CPU kernels vs. each
//! benchmark's plain reference implementation.
//!
//! The generated-design oracle has an exact bit-level reference; the
//! hand benchmarks instead carry their own `reference()` arrays, so here
//! the invariants are tolerance-based:
//!
//! - `app-sim-vs-reference`: simulating the benchmark at its default
//!   parameter point reproduces the reference outputs,
//! - `cpu-differential`: the optimized multi-threaded `dhdl-cpu` kernel
//!   reproduces the same reference (catching sim and CPU drifting in
//!   the *same* wrong direction would need a third oracle; catching
//!   either drifting alone only needs these two).

use dhdl_apps::{
    Attention, Benchmark, BlackScholes, Conv2d, DotProduct, Gda, Gemm, KMeans, OuterProduct, Saxpy,
    TpchQ6,
};
use dhdl_sim::{simulate, simulate_compiled, Bindings};

use crate::oracle::{Conformance, Violation};

/// Scale-normalized relative tolerance (matches the functional suite).
const APP_TOL: f64 = 1e-4;

/// The benchmark instances the harness exercises. Sizes stay within the
/// CPU kernels' documented shape assumptions (square `gemm`, the
/// default `saxpy` scalar, `k = d` for `kmeans`) so both oracles apply
/// to every instance.
pub fn default_benchmarks() -> Vec<Box<dyn Benchmark>> {
    vec![
        Box::new(DotProduct::new(1_920)),
        Box::new(OuterProduct::new(128)),
        Box::new(Gemm::new(32, 32, 32)),
        Box::new(TpchQ6::new(1_920)),
        Box::new(BlackScholes::new(192)),
        Box::new(Gda::new(96, 8)),
        Box::new(KMeans::new(192, 8, 8)),
        Box::new(Saxpy::new(384, 2.5)),
        Box::new(Conv2d::new(18, 4)),
        Box::new(Attention::new(16)),
    ]
}

fn compare(
    invariant: &'static str,
    bench_name: &str,
    arr: &str,
    got: &[f64],
    expected: &[f64],
    v: &mut Vec<Violation>,
) {
    if got.len() != expected.len() {
        v.push(Violation {
            invariant,
            detail: format!(
                "{bench_name}: `{arr}` length {} != reference {}",
                got.len(),
                expected.len()
            ),
        });
        return;
    }
    let scale = expected
        .iter()
        .map(|x| x.abs())
        .fold(0.0f64, f64::max)
        .max(1e-30);
    for (i, (g, e)) in got.iter().zip(expected).enumerate() {
        if (g - e).abs() / scale > APP_TOL {
            v.push(Violation {
                invariant,
                detail: format!("{bench_name}: `{arr}`[{i}] = {g}, reference {e}"),
            });
            return;
        }
    }
}

impl Conformance {
    /// Run the simulator and CPU differentials for one benchmark at its
    /// default parameter point.
    pub fn check_benchmark(&self, bench: &dyn Benchmark) -> Vec<Violation> {
        let mut v = Vec::new();
        let name = bench.name();
        let reference = bench.reference();
        match bench.build(&bench.default_params()) {
            Ok(design) => {
                let mut bindings = Bindings::new();
                for (k, data) in bench.inputs() {
                    bindings = bindings.bind(&k, data);
                }
                match simulate(&design, self.platform(), &bindings) {
                    Ok(result) => {
                        for (arr, expected) in &reference {
                            match result.output(arr) {
                                Ok(got) => compare(
                                    "app-sim-vs-reference",
                                    name,
                                    arr,
                                    got,
                                    expected,
                                    &mut v,
                                ),
                                Err(e) => v.push(Violation {
                                    invariant: "app-sim-vs-reference",
                                    detail: format!("{name}: {e}"),
                                }),
                            }
                        }
                        // The tape-compiled backend must agree with the
                        // interpreter bit-for-bit on every benchmark
                        // (outputs, cycles, transfers, profile, trace).
                        match simulate_compiled(&design, self.platform(), &bindings) {
                            Ok(tape) => {
                                if let Some(diff) = result.bit_diff(&tape) {
                                    v.push(Violation {
                                        invariant: "app-backend-differential",
                                        detail: format!("{name}: {diff}"),
                                    });
                                }
                            }
                            Err(e) => v.push(Violation {
                                invariant: "app-backend-differential",
                                detail: format!("{name}: tape backend failed: {e}"),
                            }),
                        }
                    }
                    Err(e) => v.push(Violation {
                        invariant: "app-sim-vs-reference",
                        detail: format!("{name}: simulation failed: {e}"),
                    }),
                }
            }
            Err(e) => v.push(Violation {
                invariant: "app-sim-vs-reference",
                detail: format!("{name}: build failed at default params: {e}"),
            }),
        }
        let cpu = dhdl_cpu::run(bench, 1);
        for (arr, expected) in &reference {
            match cpu.outputs.get(arr) {
                Some(got) => compare("cpu-differential", name, arr, got, expected, &mut v),
                None => v.push(Violation {
                    invariant: "cpu-differential",
                    detail: format!("{name}: CPU kernel produced no `{arr}` array"),
                }),
            }
        }
        v
    }
}
