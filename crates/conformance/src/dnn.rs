//! Seeded generation of DNN-shaped design fragments (conv2d/attention).
//!
//! The elementwise [`crate::gen`] generator never produces the design
//! shapes the DNN frontier relies on: line-buffer tile loads whose halo
//! rows overlap, window accumulation through a mux-reset BRAM, and the
//! exp/ln softmax nest between two chained GEMM pipes. A [`DnnSpec`]
//! samples exactly those shapes — a `conv2d` or `attention` instance at
//! a randomized size with parameters drawn from the benchmark's own
//! [`ParamSpace`] — and carries a bit-exact plain-Rust reference over
//! case-seeded inputs, so the oracle can hold the simulator to bitwise
//! equality (the hand-benchmark differential in [`crate::apps`] is only
//! tolerance-based and only covers the default parameter point).

use dhdl_apps::{attention::HEAD_DIM, conv2d::KERNEL, Arrays, Attention, Benchmark, Conv2d};
use dhdl_core::{DType, Design, ParamKind, ParamSpace, ParamValues};
use dhdl_sim::{compile, simulate, Bindings, CompileError};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::oracle::{compare_bits, Conformance, Violation};

/// Which DNN workload family a spec instantiates.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DnnKind {
    /// 3×3 valid convolution with line-buffer row tiles.
    Conv,
    /// GEMM–softmax–GEMM attention block at head dimension 32.
    Attn,
}

/// A generated DNN-shaped fragment: one benchmark instance plus one
/// sampled parameter point.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DnnSpec {
    /// Case identity (drives naming and input data).
    pub case_id: u64,
    /// The workload family.
    pub kind: DnnKind,
    /// Conv: image side length. Attn: sequence rows.
    pub size: u64,
    /// Conv: output channels. Attn: unused (kept at 1).
    pub cout: u64,
    /// Conv: `th` row tile. Attn: `tr` row tile.
    pub tile: u64,
    /// Conv: `pj` lane parallelism. Attn: `pa` lane parallelism.
    pub par: u32,
    /// Conv: `pc` channel parallelism. Attn: `lp` transfer parallelism.
    pub par2: u32,
    /// The outer row-tile loop is a MetaPipe.
    pub metapipe: bool,
    /// Conv: `mpc` channel-loop toggle. Attn: `mps` softmax-loop toggle.
    pub metapipe2: bool,
}

impl DnnSpec {
    /// The benchmark instance this spec parameterizes.
    pub fn bench(&self) -> Box<dyn Benchmark> {
        match self.kind {
            DnnKind::Conv => Box::new(Conv2d::new(self.size, self.cout)),
            DnnKind::Attn => Box::new(Attention::new(self.size)),
        }
    }

    /// The benchmark's own parameter space at this spec's size.
    pub fn param_space(&self) -> ParamSpace {
        self.bench().param_space()
    }

    /// The sampled parameter point.
    pub fn param_values(&self) -> ParamValues {
        match self.kind {
            DnnKind::Conv => ParamValues::new()
                .with("th", self.tile)
                .with("pc", u64::from(self.par2))
                .with("pj", u64::from(self.par))
                .with("mp", u64::from(self.metapipe))
                .with("mpc", u64::from(self.metapipe2)),
            DnnKind::Attn => ParamValues::new()
                .with("tr", self.tile)
                .with("pa", u64::from(self.par))
                .with("lp", u64::from(self.par2))
                .with("mp", u64::from(self.metapipe))
                .with("mps", u64::from(self.metapipe2)),
        }
    }

    /// Instantiate the fragment through the benchmark's builder.
    ///
    /// # Errors
    ///
    /// Propagates builder validation errors (a generator bug: the oracle
    /// reports any failure here as a violation).
    pub fn build(&self) -> dhdl_core::Result<Design> {
        self.bench().build(&self.param_values())
    }

    /// The same fragment with every parallelism collapsed to 1 (for the
    /// `par-monotonic` estimator check).
    pub fn serial(&self) -> DnnSpec {
        DnnSpec {
            par: 1,
            par2: 1,
            ..*self
        }
    }

    /// Deterministic case-seeded input arrays, pre-quantized to f32 so
    /// the reference's per-op rounding mirrors the datapath exactly.
    pub fn inputs(&self) -> Arrays {
        let mut rng = StdRng::seed_from_u64(self.case_id ^ 0xD44A_5EED);
        let mut draw = |len: u64| -> Vec<f64> {
            (0..len)
                .map(|_| DType::F32.quantize(f64::from(rng.gen_range(-8i32..=8)) * 0.125))
                .collect()
        };
        let mut arrays = Arrays::new();
        match self.kind {
            DnnKind::Conv => {
                arrays.insert("img".into(), draw(self.size * self.size));
                arrays.insert("wt".into(), draw(self.cout * KERNEL * KERNEL));
            }
            DnnKind::Attn => {
                arrays.insert("q".into(), draw(self.size * HEAD_DIM));
                arrays.insert("k".into(), draw(self.size * HEAD_DIM));
                arrays.insert("v".into(), draw(self.size * HEAD_DIM));
            }
        }
        arrays
    }

    /// The expected `out` array: an independent plain-Rust evaluation
    /// mirroring the simulator's per-node f32 rounding in the same order
    /// the design's pipes evaluate.
    pub fn reference(&self, inputs: &Arrays) -> Vec<f64> {
        match self.kind {
            DnnKind::Conv => conv_reference(self.size, self.cout, &inputs["img"], &inputs["wt"]),
            DnnKind::Attn => attn_reference(self.size, &inputs["q"], &inputs["k"], &inputs["v"]),
        }
    }
}

/// `out[c,i,j] = Σ_{u,v} img[i+u, j+v] · wt[c,u,v]`, accumulated in
/// window order with every primitive result rounded to f32.
fn conv_reference(size: u64, cout: u64, img: &[f64], wts: &[f64]) -> Vec<f64> {
    let (w, kh, kw) = (size as usize, KERNEL as usize, KERNEL as usize);
    let hout = (size - KERNEL + 1) as usize;
    let wout = hout;
    let cout = cout as usize;
    let mut out = vec![0.0f64; cout * hout * wout];
    for c in 0..cout {
        for i in 0..hout {
            for j in 0..wout {
                let mut acc = 0.0f64;
                for u in 0..kh {
                    for v in 0..kw {
                        let prod = (img[(i + u) * w + (j + v)] * wts[(c * kh + u) * kw + v]) as f32;
                        acc = (acc + f64::from(prod)) as f32 as f64;
                    }
                }
                out[(c * hout + i) * wout + j] = acc;
            }
        }
    }
    out
}

/// Log-domain softmax attention (`p = exp((s − m)/√d − ln Σ exp)`) with
/// every primitive result rounded to f32: scores over `j`, softmax over
/// `r`, value contraction over `r` — the pipe evaluation order.
fn attn_reference(n: u64, q: &[f64], k: &[f64], v: &[f64]) -> Vec<f64> {
    let (n, d) = (n as usize, HEAD_DIM as usize);
    let scale = f64::from((1.0 / (d as f64).sqrt()) as f32);
    let mut out = vec![0.0f64; n * d];
    let mut s = vec![0.0f64; n];
    for i in 0..n {
        for (r, sr) in s.iter_mut().enumerate() {
            let mut acc = 0.0f64;
            for j in 0..d {
                let prod = (q[i * d + j] * k[r * d + j]) as f32;
                acc = (acc + f64::from(prod)) as f32 as f64;
            }
            *sr = acc;
        }
        let mut m = f64::NEG_INFINITY;
        for &sr in &s {
            m = m.max(sr) as f32 as f64;
        }
        let mut sum = 0.0f64;
        for &sr in &s {
            let dlt = (sr - m) as f32 as f64;
            let sc = (dlt * scale) as f32 as f64;
            let e = sc.exp() as f32 as f64;
            sum = (sum + e) as f32 as f64;
        }
        let lse = sum.ln() as f32 as f64;
        for sr in s.iter_mut() {
            let dlt = (*sr - m) as f32 as f64;
            let sc = (dlt * scale) as f32 as f64;
            let e = (sc - lse) as f32 as f64;
            *sr = e.exp() as f32 as f64;
        }
        for jd in 0..d {
            let mut acc = 0.0f64;
            for (r, &pr) in s.iter().enumerate() {
                let prod = (pr * v[r * d + jd]) as f32;
                acc = (acc + f64::from(prod)) as f32 as f64;
            }
            out[i * d + jd] = acc;
        }
    }
    out
}

impl Conformance {
    /// Run the layered oracle on one DNN-shaped fragment: build,
    /// structural stability, bitwise sim-vs-reference and determinism,
    /// the tape-backend differential, estimator sanity and parallelism
    /// monotonicity, synthesis capacity, cache transparency, and
    /// parameter-space legality.
    pub fn check_dnn(&self, spec: &DnnSpec) -> Vec<Violation> {
        let mut v = Vec::new();
        let design = match spec.build() {
            Ok(d) => d,
            Err(e) => {
                v.push(Violation {
                    invariant: "build",
                    detail: format!("builder rejected generated DNN spec: {e}"),
                });
                return v;
            }
        };
        self.check_structure(&design, spec.build(), &mut v);
        self.check_dnn_simulation(spec, &design, &mut v);
        self.check_estimate_sane(&design, &mut v);
        if spec.par.max(spec.par2) > 1 {
            if let Ok(sd) = spec.serial().build() {
                self.check_par_monotonic(&design, &sd, spec.par.max(spec.par2), &mut v);
            }
        }
        self.check_synth(&design, &mut v);
        self.check_cache(&design, &mut v);
        self.check_params(&spec.param_space(), &spec.param_values(), &mut v);
        v
    }

    fn check_dnn_simulation(&self, spec: &DnnSpec, design: &Design, v: &mut Vec<Violation>) {
        let inputs = spec.inputs();
        let mut bindings = Bindings::new();
        for (name, data) in &inputs {
            bindings = bindings.bind(name, data.clone());
        }
        let first = match simulate(design, self.platform(), &bindings) {
            Ok(r) => r,
            Err(e) => {
                v.push(Violation {
                    invariant: "sim-vs-reference",
                    detail: format!("simulation failed on a legal DNN fragment: {e}"),
                });
                return;
            }
        };
        let expected = spec.reference(&inputs);
        compare_bits(&first, &expected, v);
        match simulate(design, self.platform(), &bindings) {
            Ok(second) => {
                if first.bit_diff(&second).is_some() {
                    v.push(Violation {
                        invariant: "sim-determinism",
                        detail: "re-running the simulator changed outputs or cycles".to_string(),
                    });
                }
            }
            Err(e) => v.push(Violation {
                invariant: "sim-determinism",
                detail: format!("second simulation failed: {e}"),
            }),
        }
        // Backend differential: the tape-compiled backend must be
        // bit-identical to the interpreter on every fragment it accepts.
        match compile(design, self.platform()) {
            Ok(compiled) => match compiled.run(&bindings) {
                Ok(tape) => {
                    if let Some(diff) = first.bit_diff(&tape) {
                        v.push(Violation {
                            invariant: "backend-differential",
                            detail: format!("tape backend diverged from interpreter: {diff}"),
                        });
                    }
                }
                Err(e) => v.push(Violation {
                    invariant: "backend-differential",
                    detail: format!("tape backend failed where the interpreter succeeded: {e}"),
                }),
            },
            // Fragments outside the tape subset fall back to the
            // interpreter in `simulate_compiled`; nothing to cross-check.
            Err(CompileError::Unsupported(_)) => {}
        }
    }
}

fn pick(rng: &mut StdRng, values: &[u64]) -> u64 {
    values[rng.gen_range(0usize..values.len())]
}

/// Generate the DNN fragment for fuzz case `case_id` under `master_seed`.
///
/// Deterministic: the same `(master_seed, case_id)` always yields the
/// same spec, independent of any other case. Every sampled parameter is
/// drawn from the benchmark's own legal values, so the builder must
/// accept the spec.
pub fn generate_dnn(master_seed: u64, case_id: u64) -> DnnSpec {
    let mut rng = StdRng::seed_from_u64(
        master_seed ^ case_id.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ 0xD44E_C0DE,
    );
    if rng.gen_bool(0.5) {
        let size = pick(&mut rng, &[6, 8, 10, 14]);
        let cout = pick(&mut rng, &[2, 3, 4]);
        let hout = size - KERNEL + 1;
        let tiles = ParamKind::Tile {
            divides: hout,
            min: 2,
            max: 32.min(hout),
        }
        .legal_values();
        let pjs = ParamKind::Par {
            divides: hout,
            max: 16,
        }
        .legal_values();
        let pcs = ParamKind::Par {
            divides: cout,
            max: 16,
        }
        .legal_values();
        DnnSpec {
            case_id,
            kind: DnnKind::Conv,
            size,
            cout,
            tile: pick(&mut rng, &tiles),
            par: pick(&mut rng, &pjs) as u32,
            par2: pick(&mut rng, &pcs) as u32,
            metapipe: rng.gen_bool(0.5),
            metapipe2: rng.gen_bool(0.5),
        }
    } else {
        let n = pick(&mut rng, &[4, 8, 12, 16]);
        let tiles = ParamKind::Tile {
            divides: n,
            min: 2,
            max: 32.min(n),
        }
        .legal_values();
        let pas = ParamKind::Par {
            divides: HEAD_DIM,
            max: 8,
        }
        .legal_values();
        let lps = ParamKind::Par {
            divides: HEAD_DIM,
            max: 4,
        }
        .legal_values();
        DnnSpec {
            case_id,
            kind: DnnKind::Attn,
            size: n,
            cout: 1,
            tile: pick(&mut rng, &tiles),
            par: pick(&mut rng, &pas) as u32,
            par2: pick(&mut rng, &lps) as u32,
            metapipe: rng.gen_bool(0.5),
            metapipe2: rng.gen_bool(0.5),
        }
    }
}
